// Package chameleondb is a from-scratch Go implementation of ChameleonDB
// (Zhang et al., EuroSys '21): a key-value store designed for Intel Optane
// DC persistent memory that combines an LSM-style multi-level persistent
// index — giving batched, amplification-free writes and fast restart — with
// an in-DRAM Auxiliary Bypass Index that lets reads skip the levels.
//
// The store runs on a simulated Optane device (package internal/pmem): data
// is stored and recovered for real, while access timing is accounted in
// virtual nanoseconds by a calibrated device model, reproducing the
// performance behaviour the paper reports without Optane hardware. See
// DESIGN.md for the model and EXPERIMENTS.md for the reproduced evaluation.
//
// Basic use:
//
//	db, err := chameleondb.Open(chameleondb.DefaultOptions())
//	...
//	err = db.Put([]byte("key"), []byte("value"))
//	v, ok, err := db.Get([]byte("key"))
//
// DB methods are safe for concurrent use. For throughput-sensitive loops,
// create one Session per goroutine: sessions batch their log writes and
// avoid the internal session pool.
package chameleondb

import (
	"fmt"
	"sync"

	"chameleondb/internal/core"
	"chameleondb/internal/hotcache"
	"chameleondb/internal/kvstore"
	"chameleondb/internal/simclock"
)

// CompactionMode selects how upper-level compactions cascade.
type CompactionMode int

const (
	// DirectCompaction merges all cascading levels in one pass (the paper's
	// Figure 5b, the default).
	DirectCompaction CompactionMode = iota
	// LevelByLevel uses the classic adjacent-level cascade (Figure 5a).
	LevelByLevel
)

// GetProtectOptions configure the dynamic Get-Protect Mode (paper
// Section 2.4): when the windowed P99 get latency exceeds the threshold,
// flushes and compactions are suspended and full Auxiliary Bypass Indexes
// are dumped to persistent memory unmerged, protecting read tail latency
// during put bursts.
type GetProtectOptions struct {
	Enabled          bool
	EnterThresholdNs int64 // engage above this windowed P99 (paper: 2000)
	ExitThresholdNs  int64 // disengage below this (defaults to Enter)
	MaxDumps         int   // unmerged ABI dumps allowed (paper: 1)
}

// Options configure a store. Start from DefaultOptions or PaperOptions.
type Options struct {
	// Shards is the number of index shards (power of two).
	Shards int
	// MemTableSlots is each shard's MemTable capacity in 16-byte slots
	// (power of two).
	MemTableSlots int
	// Levels counts LSM levels including the last; Ratio is the
	// between-level ratio.
	Levels int
	Ratio  int
	// LoadFactorMin/Max bound the randomized per-shard MemTable load-factor
	// thresholds (paper Section 2.5).
	LoadFactorMin float64
	LoadFactorMax float64
	// ABISlots sizes each shard's Auxiliary Bypass Index (0 = derive from
	// the level geometry).
	ABISlots int
	// ArenaBytes sizes the simulated persistent memory; LogBytes the value
	// log region inside it.
	ArenaBytes int64
	LogBytes   int64
	// CompactionMode selects Direct (default) or LevelByLevel.
	CompactionMode CompactionMode
	// WriteIntensive enables Write-Intensive Mode (paper Section 2.3):
	// higher put throughput, longer crash recovery.
	WriteIntensive bool
	// GetProtect configures the dynamic Get-Protect Mode.
	GetProtect GetProtectOptions
	// MaintenanceWorkers sizes the background maintenance pool that runs
	// MemTable flushes, ABI spills, and compactions off the put path
	// (DESIGN.md §5.3). 0 keeps maintenance inline on the writing
	// goroutine — the pre-pipeline behaviour.
	MaintenanceWorkers int
	// HotCacheBytes enables a DRAM hot-key read cache of this capacity in
	// front of the engine (DESIGN.md §9): reads fill it under TinyLFU
	// admission, writes invalidate it, Crash empties it. 0 (the default)
	// disables it.
	HotCacheBytes int64
	// Seed drives load-factor randomization.
	Seed int64
}

// DefaultOptions returns a laptop-scale configuration: the paper's Table 1
// proportions (4 levels, ratio 4, randomized 0.65-0.85 load factors) at 64
// shards with 64-slot MemTables, so a few hundred thousand keys exercise
// the full level hierarchy inside a ~1.5 GB simulated arena.
func DefaultOptions() Options {
	return Options{
		Shards:        64,
		MemTableSlots: 64,
		Levels:        4,
		Ratio:         4,
		LoadFactorMin: 0.65,
		LoadFactorMax: 0.85,
		ArenaBytes:    1536 << 20,
		LogBytes:      1024 << 20,
		Seed:          1,
	}
}

// PaperOptions returns the paper's Table 1 configuration: 16384 shards,
// 8 KB MemTables, 512 KB ABIs (8 GB of DRAM for ABIs alone), a 64 GB arena.
func PaperOptions() Options {
	c := core.DefaultConfig()
	return Options{
		Shards:        c.Shards,
		MemTableSlots: c.MemTableSlots,
		Levels:        c.Levels,
		Ratio:         c.Ratio,
		LoadFactorMin: c.LoadFactorMin,
		LoadFactorMax: c.LoadFactorMax,
		ABISlots:      c.ABISlots,
		ArenaBytes:    c.ArenaBytes,
		LogBytes:      c.LogBytes,
		Seed:          c.Seed,
	}
}

func (o Options) coreConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Shards = o.Shards
	cfg.MemTableSlots = o.MemTableSlots
	cfg.Levels = o.Levels
	cfg.Ratio = o.Ratio
	cfg.LoadFactorMin = o.LoadFactorMin
	cfg.LoadFactorMax = o.LoadFactorMax
	cfg.ABISlots = o.ABISlots
	cfg.ArenaBytes = o.ArenaBytes
	cfg.LogBytes = o.LogBytes
	if o.CompactionMode == LevelByLevel {
		cfg.CompactionMode = core.LevelByLevel
	} else {
		cfg.CompactionMode = core.DirectCompaction
	}
	cfg.WriteIntensive = o.WriteIntensive
	cfg.MaintenanceWorkers = o.MaintenanceWorkers
	cfg.GetProtect = core.GPMConfig{
		Enabled:          o.GetProtect.Enabled,
		EnterThresholdNs: o.GetProtect.EnterThresholdNs,
		ExitThresholdNs:  o.GetProtect.ExitThresholdNs,
		MaxDumps:         o.GetProtect.MaxDumps,
		WindowSize:       4096,
		SampleEvery:      16,
	}
	cfg.Seed = o.Seed
	return cfg
}

// DB is a ChameleonDB instance. All methods are safe for concurrent use.
type DB struct {
	store *core.Store
	kv    kvstore.Store // store, behind the hot cache when one is configured
	cache *hotcache.Cache
	pool  sync.Pool
}

// Open creates a store with the given options.
func Open(opts Options) (*DB, error) {
	s, err := core.Open(opts.coreConfig())
	if err != nil {
		return nil, err
	}
	cache := hotcache.New(opts.HotCacheBytes)
	db := &DB{store: s, kv: hotcache.Wrap(s, cache), cache: cache}
	db.pool.New = func() any { return db.NewSession() }
	return db, nil
}

// Session is a per-goroutine handle: it owns a private write batch and a
// virtual clock accumulating the cost of its operations. Not safe for
// concurrent use.
type Session struct {
	inner kvstore.Session
	vr    kvstore.ValueReader
	bw    kvstore.BatchWriter
	cd    kvstore.ConditionalDeleter
	inc   kvstore.Incrementer
	sc    kvstore.Scanner
	clock *simclock.Clock
}

// NewSession creates a session.
func (db *DB) NewSession() *Session {
	c := simclock.New(0)
	se := db.kv.NewSession(c)
	return &Session{
		inner: se,
		vr:    se.(kvstore.ValueReader),
		bw:    se.(kvstore.BatchWriter),
		cd:    se.(kvstore.ConditionalDeleter),
		inc:   se.(kvstore.Incrementer),
		sc:    se.(kvstore.Scanner),
		clock: c,
	}
}

// Put inserts or updates a key.
func (s *Session) Put(key, value []byte) error { return s.inner.Put(key, value) }

// Get returns the value stored for key and whether it exists. The value is a
// fresh copy; use GetInto to reuse a buffer across gets.
func (s *Session) Get(key []byte) ([]byte, bool, error) { return s.inner.Get(key) }

// GetInto is the allocation-free read: the value is appended to dst (which may
// be nil) and the extended slice returned, strconv.Append style. A caller
// looping `buf, ok, _ = s.GetInto(key, buf[:0])` allocates nothing once buf
// has grown to the working value size. On a miss or error dst is returned
// unchanged. The result is a copy the caller owns — it never aliases store
// memory.
func (s *Session) GetInto(key, dst []byte) ([]byte, bool, error) {
	return s.vr.GetInto(key, dst)
}

// PutBatch applies n independent puts in one call, grouping keys by
// destination shard so each group is applied under a single shard-lock
// acquisition. Final state is identical to n sequential Puts (same-key writes
// keep their order); on error an arbitrary subset may have been applied. See
// kvstore.BatchWriter.
func (s *Session) PutBatch(keys, values [][]byte) error {
	return s.bw.PutBatch(keys, values)
}

// Delete removes a key.
func (s *Session) Delete(key []byte) error { return s.inner.Delete(key) }

// Flush makes the session's acknowledged writes durable (seals its write
// batch).
func (s *Session) Flush() error { return s.inner.Flush() }

// DeleteIfPresent deletes key and reports whether it existed. Probe and
// tombstone run atomically under the store's write path, so the answer is
// exact even with concurrent writers.
func (s *Session) DeleteIfPresent(key []byte) (bool, error) { return s.cd.DeleteIfPresent(key) }

// IncrBy atomically adds delta to the decimal integer stored at key (missing
// keys count from 0) and returns the new value.
func (s *Session) IncrBy(key []byte, delta int64) (int64, error) { return s.inc.IncrBy(key, delta) }

// KV is one key/value pair returned by a scan.
type KV = kvstore.KV

// Snapshot is a stable point-in-time view for multi-call scans; see
// Session.Snapshot. Release it when done.
type Snapshot = kvstore.Snapshot

// Scan pages through the store in hash order: pass cursor 0 to start, feed
// the returned cursor back in, stop when it returns 0. Each call captures its
// own per-shard view (Redis-SCAN guarantees); use Snapshot for a stable view.
func (s *Session) Scan(cursor uint64, limit int) ([]KV, uint64, error) {
	return s.sc.Scan(cursor, limit)
}

// Snapshot captures a stable view of the whole store: scans against it never
// see writes issued after this call. The snapshot pins internal resources
// (epoch reclamation) until released.
func (s *Session) Snapshot() (Snapshot, error) { return s.sc.Snapshot() }

// VirtualNanos returns the simulated time this session's operations have
// consumed on the modeled hardware.
func (s *Session) VirtualNanos() int64 { return s.clock.Now() }

func (db *DB) withSession(fn func(*Session) error) error {
	s := db.pool.Get().(*Session)
	err := fn(s)
	db.pool.Put(s)
	return err
}

// Put inserts or updates a key.
func (db *DB) Put(key, value []byte) error {
	return db.withSession(func(s *Session) error { return s.Put(key, value) })
}

// Get returns the value stored for key and whether it exists.
func (db *DB) Get(key []byte) (val []byte, ok bool, err error) {
	err = db.withSession(func(s *Session) error {
		val, ok, err = s.Get(key)
		return err
	})
	return val, ok, err
}

// Delete removes a key.
func (db *DB) Delete(key []byte) error {
	return db.withSession(func(s *Session) error { return s.Delete(key) })
}

// PutBatch applies n independent puts with shard-affine dispatch; see
// Session.PutBatch.
func (db *DB) PutBatch(keys, values [][]byte) error {
	return db.withSession(func(s *Session) error { return s.PutBatch(keys, values) })
}

// Flush makes all pooled sessions' acknowledged writes durable. Sessions
// created with NewSession must be flushed by their owners.
func (db *DB) Flush() error {
	return db.withSession(func(s *Session) error { return s.Flush() })
}

// SetWriteIntensive toggles Write-Intensive Mode at runtime (paper
// Section 2.3 frames it as a user option).
func (db *DB) SetWriteIntensive(on bool) { db.store.SetWriteIntensive(on) }

// GetProtectActive reports whether the dynamic Get-Protect Mode is engaged.
func (db *DB) GetProtectActive() bool { return db.store.GPMActive() }

// Crash simulates a power failure on the underlying device: all volatile
// state (MemTables, ABIs, unflushed batches) is lost. Quiesce all sessions
// first. Call Recover before further use.
func (db *DB) Crash() { db.kv.Crash() }

// Recover rebuilds the store after Crash and returns the simulated restart
// times: ready is when requests can be served again; full additionally
// includes the background ABI rebuild.
func (db *DB) Recover() (readyNanos, fullNanos int64, err error) {
	c := simclock.New(0)
	if err := db.store.Recover(c); err != nil {
		return 0, 0, err
	}
	r, f := db.store.RecoverTimes()
	return r, f, nil
}

// Stats reports operation and device counters.
type Stats struct {
	// Puts is the number of completed value writes and Deletes the number of
	// tombstone appends (kept apart so puts+deletes reconciles against log
	// entries appended); Flushes/Spills the MemTable flush and
	// Write-Intensive spill counts; UpperCompactions and LastCompactions the
	// compaction counts; Dumps the Get-Protect ABI dumps.
	Puts, Deletes, Flushes, Spills           int64
	UpperCompactions, LastCompactions, Dumps int64
	// Gets served per index structure (paper Figure 6's three-probe path).
	GetMemTable, GetABI, GetDumped, GetUpper, GetLast, GetMiss int64
	// Log garbage collection activity (CompactLog).
	LogGCs, LogGCRelocated, LogGCDropped int64
	// Background maintenance pipeline activity (zero when
	// Options.MaintenanceWorkers is 0): MemTable freezes, write
	// backpressure events, and jobs run per kind.
	MemFreezes, PutSlowdowns, PutStalls                             int64
	MaintJobsFlush, MaintJobsSpill, MaintJobsCompact, MaintJobsLast int64
	// Device-level media accounting (the simulated ipmwatch).
	LogicalBytesWritten, MediaBytesWritten, MediaBytesRead int64
	// DRAMFootprintBytes is the store's volatile memory use.
	DRAMFootprintBytes int64
}

// Stats returns a snapshot of the store's counters.
func (db *DB) Stats() Stats {
	s := db.store.Stats()
	d := db.store.DeviceStats()
	return Stats{
		Puts: s.Puts, Deletes: s.Deletes, Flushes: s.Flushes, Spills: s.Spills,
		UpperCompactions: s.UpperCompactions, LastCompactions: s.LastCompactions, Dumps: s.Dumps,
		GetMemTable: s.GetMemTable, GetABI: s.GetABI, GetDumped: s.GetDumped,
		GetUpper: s.GetUpper, GetLast: s.GetLast, GetMiss: s.GetMiss,
		LogGCs: s.LogGCs, LogGCRelocated: s.LogGCRelocated, LogGCDropped: s.LogGCDropped,
		MemFreezes: s.MemFreezes, PutSlowdowns: s.PutSlowdowns, PutStalls: s.PutStalls,
		MaintJobsFlush: s.MaintJobsFlush, MaintJobsSpill: s.MaintJobsSpill,
		MaintJobsCompact: s.MaintJobsCompact, MaintJobsLast: s.MaintJobsLastLevel,
		LogicalBytesWritten: d.LogicalBytesWritten,
		MediaBytesWritten:   d.MediaBytesWritten,
		MediaBytesRead:      d.MediaBytesRead,
		DRAMFootprintBytes:  db.kv.DRAMFootprint(),
	}
}

// WriteAmplification returns media bytes written per logical byte.
func (s Stats) WriteAmplification() float64 {
	if s.LogicalBytesWritten == 0 {
		return 0
	}
	return float64(s.MediaBytesWritten) / float64(s.LogicalBytesWritten)
}

// CompactLog reclaims space from the head of the value log by relocating
// live entries and freeing emptied segments back to the simulated device —
// log garbage collection is this implementation's extension; the paper
// leaves it out of scope. Quiesce all sessions first (like Crash/Recover it
// is a maintenance operation). It returns the bytes freed and the virtual
// time the collection consumed.
func (db *DB) CompactLog(reclaimBytes int64) (freedBytes, virtualNanos int64, err error) {
	c := simclock.New(0)
	freed, err := db.store.CompactLog(c, reclaimBytes)
	return freed, c.Now(), err
}

// Close releases the store.
func (db *DB) Close() error { return db.store.Close() }

// String describes the store briefly.
func (db *DB) String() string {
	cfg := db.store.Config()
	return fmt.Sprintf("ChameleonDB(shards=%d, levels=%d, ratio=%d)", cfg.Shards, cfg.Levels, cfg.Ratio)
}
