module chameleondb

go 1.22
