package chameleondb

import (
	"fmt"
	"sync"
	"testing"
)

func openSmall(t *testing.T) *DB {
	t.Helper()
	opts := DefaultOptions()
	opts.Shards = 16
	opts.MemTableSlots = 64
	opts.ArenaBytes = 256 << 20
	opts.LogBytes = 128 << 20
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPublicAPIBasics(t *testing.T) {
	db := openSmall(t)
	defer db.Close()
	if err := db.Put([]byte("hello"), []byte("world")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Get([]byte("hello"))
	if err != nil || !ok || string(v) != "world" {
		t.Fatalf("Get = %q %v %v", v, ok, err)
	}
	if _, ok, _ := db.Get([]byte("absent")); ok {
		t.Fatal("found absent key")
	}
	if err := db.Delete([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Get([]byte("hello")); ok {
		t.Fatal("deleted key readable")
	}
	if db.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestPublicAPIConcurrent(t *testing.T) {
	db := openSmall(t)
	defer db.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := []byte(fmt.Sprintf("w%d-k%06d", w, i))
				if err := db.Put(k, []byte("v")); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < 8; w++ {
		for i := 0; i < 2000; i += 97 {
			k := []byte(fmt.Sprintf("w%d-k%06d", w, i))
			if _, ok, err := db.Get(k); err != nil || !ok {
				t.Fatalf("lost %s: %v", k, err)
			}
		}
	}
	st := db.Stats()
	if st.Puts != 16000 || st.Flushes == 0 || st.DRAMFootprintBytes <= 0 {
		t.Fatalf("stats look wrong: %+v", st)
	}
	if st.WriteAmplification() <= 0 {
		t.Fatal("write amplification should be positive")
	}
}

func TestPublicAPISessions(t *testing.T) {
	db := openSmall(t)
	defer db.Close()
	s := db.NewSession()
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if s.VirtualNanos() <= 0 {
		t.Fatal("session charged no virtual time")
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get([]byte("k"))
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("session Get = %q %v %v", v, ok, err)
	}
	if err := s.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPICrashRecover(t *testing.T) {
	db := openSmall(t)
	defer db.Close()
	for i := 0; i < 5000; i++ {
		db.Put([]byte(fmt.Sprintf("key-%06d", i)), []byte("v"))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.Crash()
	ready, full, err := db.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if ready <= 0 || full < ready {
		t.Fatalf("restart times: ready=%d full=%d", ready, full)
	}
	// The pool may hold pre-crash sessions whose batches died with the
	// crash; fresh operations must work.
	if _, ok, err := db.Get([]byte("key-000042")); err != nil || !ok {
		t.Fatalf("data lost across recovery: %v", err)
	}
}

func TestPublicAPIModes(t *testing.T) {
	opts := DefaultOptions()
	opts.Shards = 16
	opts.MemTableSlots = 64
	opts.ArenaBytes = 256 << 20
	opts.LogBytes = 128 << 20
	opts.GetProtect = GetProtectOptions{Enabled: true, EnterThresholdNs: 1, MaxDumps: 1}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetWriteIntensive(true)
	for i := 0; i < 3000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%06d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.Spills == 0 {
		t.Fatal("write-intensive mode did not spill")
	}
	db.SetWriteIntensive(false)
	if _, ok, _ := db.Get([]byte("k000042")); !ok {
		t.Fatal("key lost")
	}
}

func TestPaperOptionsValid(t *testing.T) {
	// PaperOptions describes a 64 GB arena: validate the geometry without
	// allocating it.
	o := PaperOptions()
	if o.Shards != 16384 || o.MemTableSlots != 512 || o.Levels != 4 || o.Ratio != 4 {
		t.Fatalf("paper geometry wrong: %+v", o)
	}
	cfg := o.coreConfig()
	if cfg.ABISlots != 32768 {
		t.Fatalf("paper ABI slots = %d", cfg.ABISlots)
	}
}

func TestBadOptionsRejected(t *testing.T) {
	o := DefaultOptions()
	o.Shards = 3
	if _, err := Open(o); err == nil {
		t.Fatal("invalid options accepted")
	}
}

func TestLevelByLevelOption(t *testing.T) {
	o := DefaultOptions()
	o.Shards = 16
	o.MemTableSlots = 64
	o.ArenaBytes = 256 << 20
	o.LogBytes = 128 << 20
	o.CompactionMode = LevelByLevel
	db, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 8000; i++ {
		db.Put([]byte(fmt.Sprintf("k%06d", i)), []byte("v"))
	}
	if db.Stats().UpperCompactions == 0 {
		t.Fatal("no compactions under level-by-level")
	}
}
