package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"chameleondb/internal/resp"
)

// pingCmd dials a running chameleon-server, checks liveness with PING, and
// pretty-prints the INFO stats — the wire-side sibling of `chameleonctl
// stats`, which reads a local store's registry instead.
func pingCmd(args []string) {
	fs := flag.NewFlagSet("ping", flag.ExitOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:6379", "server address")
		timeout = fs.Duration("timeout", 3*time.Second, "dial and I/O timeout")
		section = fs.String("section", "", "single INFO section (server, clients, stats, cache, replication, commandstats, latencystats)")
	)
	fs.Parse(args)

	c, err := resp.Dial(*addr, *timeout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dial %s: %v\n", *addr, err)
		os.Exit(1)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(*timeout))

	t0 := time.Now()
	if err := c.Ping(); err != nil {
		fmt.Fprintf(os.Stderr, "ping %s: %v\n", *addr, err)
		os.Exit(1)
	}
	fmt.Printf("PONG from %s in %s\n\n", *addr, time.Since(t0).Round(time.Microsecond))

	var rep resp.Reply
	if *section != "" {
		rep, err = c.DoStrings("INFO", *section)
	} else {
		rep, err = c.DoStrings("INFO")
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "info: %v\n", err)
		os.Exit(1)
	}
	if rep.Type == resp.TypeError {
		fmt.Fprintf(os.Stderr, "info: %s\n", rep.Text())
		os.Exit(1)
	}
	// INFO is already "# Section / key:value" text; align the values.
	for _, line := range strings.Split(rep.Text(), "\r\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fmt.Printf("\n%s\n", line)
			continue
		}
		if k, v, ok := strings.Cut(line, ":"); ok {
			fmt.Printf("  %-28s %s\n", k, v)
		} else {
			fmt.Printf("  %s\n", line)
		}
	}
}
