// Command chameleonctl is an interactive shell over a ChameleonDB instance:
// put/get/delete keys, fill with synthetic data, crash and recover the
// simulated device, toggle Write-Intensive Mode, and inspect engine
// statistics. Useful for exploring the store's behaviour by hand.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"chameleondb"
	"chameleondb/internal/core"
	"chameleondb/internal/hotcache"
	"chameleondb/internal/kvstore"
	"chameleondb/internal/storetest"
)

const help = `commands:
  put <key> <value>     insert or update a key
  get <key>             read a key
  del <key>             delete a key
  fill <n>              insert n synthetic keys (fill:<seq>)
  flush                 make acknowledged writes durable
  crash                 simulate power failure
  recover               recover after crash (prints restart time)
  wim on|off            toggle Write-Intensive Mode
  stats                 engine statistics
  help                  this text
  quit                  exit`

// crashSweepCmd runs the exhaustive crash-point conformance sweep from the
// command line: a scripted workload is run once to count persist events, then
// re-run crashing (and optionally tearing) at every persist index, recovering,
// and checking durability invariants. Exits non-zero on the first violation.
func crashSweepCmd(args []string) {
	fs := flag.NewFlagSet("crashsweep", flag.ExitOnError)
	var (
		seed    = fs.Int64("seed", 1, "workload script seed")
		mode    = fs.String("mode", "direct", "compaction mode: direct, lbl, or wim")
		ops     = fs.Int("ops", 1500, "scripted operations")
		keys    = fs.Int("keys", 96, "key-space size")
		stride  = fs.Int("stride", 1, "test every stride-th crash point")
		tear    = fs.Bool("tear", true, "also replay each point with torn persists")
		maint   = fs.Int("maintenance-workers", 0, "background maintenance workers (0: inline maintenance, fully deterministic sweep)")
		scanEv  = fs.Int("scan-every", 0, "interleave a full snapshot scan every N ops, checked exactly against applied state (0: off)")
		backend = fs.String("backend", "sim", "persistence backend: sim, or file (one fresh directory per crash point, every Recover a real cold reopen)")
		dir     = fs.String("dir", "", "parent directory for -backend=file sweep stores (default: a temp dir, removed on success)")
		cacheB  = fs.Int64("hotcache-bytes", 0, "run the sweep through a hot-key DRAM cache of this capacity (0: off); the cache is volatile, so every crash point also checks cold-cache recovery")
	)
	fs.Parse(args)

	cfg := core.TestConfig()
	cfg.Shards = 4
	cfg.MemTableSlots = 32
	cfg.Levels = 3
	cfg.Ratio = 2
	cfg.ArenaBytes = 2 << 20
	cfg.LogBytes = 128 << 10
	cfg.MaintenanceWorkers = *maint
	switch *mode {
	case "direct":
	case "lbl":
		cfg.CompactionMode = core.LevelByLevel
	case "wim":
		cfg.WriteIntensive = true
	default:
		fmt.Fprintf(os.Stderr, "unknown -mode %q (want direct, lbl, or wim)\n", *mode)
		os.Exit(2)
	}

	newStore := func() (kvstore.Store, error) { return core.Open(cfg) }
	switch *backend {
	case "sim":
	case "file":
		base := *dir
		if base == "" {
			tmp, err := os.MkdirTemp("", "chameleon-sweep-")
			if err != nil {
				fmt.Fprintln(os.Stderr, "crashsweep:", err)
				os.Exit(1)
			}
			defer os.RemoveAll(tmp)
			base = tmp
		}
		newStore = func() (kvstore.Store, error) {
			d, err := os.MkdirTemp(base, "point-")
			if err != nil {
				return nil, err
			}
			s, _, err := core.OpenFile(cfg, d)
			if err != nil {
				return nil, err
			}
			return storetest.NewReopening(s, func() (kvstore.Store, error) {
				s, existing, err := core.OpenFile(cfg, d)
				if err != nil {
					return nil, err
				}
				if !existing {
					s.Close()
					return nil, fmt.Errorf("reopen of %s found no durable state", d)
				}
				return s, nil
			}), nil
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown -backend %q (want sim or file)\n", *backend)
		os.Exit(2)
	}

	if *cacheB > 0 {
		// One fresh cache per store instance: the sweep's oracle then drives
		// every read and write through the interposer, so a stale hit or a
		// warm post-crash cache shows up as a durability violation.
		inner := newStore
		newStore = func() (kvstore.Store, error) {
			st, err := inner()
			if err != nil {
				return nil, err
			}
			return hotcache.Wrap(st, hotcache.New(*cacheB)), nil
		}
	}

	start := time.Now()
	res, err := storetest.CrashSweep(
		newStore,
		storetest.SweepConfig{
			Seed:          *seed,
			Ops:           *ops,
			Keys:          *keys,
			MaxValueLen:   120,
			FlushEvery:    20,
			MaintainEvery: 50,
			ScanEvery:     *scanEv,
			Maintenance:   storetest.StandardMaintenance(),
			Stride:        *stride,
			Tear:          *tear,
			// With background workers the persist stream shifts run to
			// run, so a point recorded near the tail may not be reached
			// on replay; treat those as end-of-script crashes.
			AllowUntriggered: *maint > 0,
			Logf: func(format string, a ...any) {
				fmt.Printf(format+"\n", a...)
			},
		})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crashsweep FAILED:", err)
		os.Exit(1)
	}
	fmt.Printf("crashsweep OK (mode=%s seed=%d): %s in %.1fs\n",
		*mode, *seed, res, time.Since(start).Seconds())
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "crashsweep" {
		crashSweepCmd(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "stats" {
		statsCmd(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "ping" {
		pingCmd(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "repl" {
		replCmd(os.Args[2:])
		return
	}
	var (
		shards    = flag.Int("shards", 64, "index shards (power of two)")
		maintWork = flag.Int("maintenance-workers", 0, "background maintenance workers (0: inline maintenance)")
		cacheB    = flag.Int64("hotcache-bytes", 0, "hot-key DRAM read cache capacity in bytes (0: off)")
	)
	flag.Parse()

	opts := chameleondb.DefaultOptions()
	opts.Shards = *shards
	opts.MaintenanceWorkers = *maintWork
	opts.HotCacheBytes = *cacheB
	db, err := chameleondb.Open(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer db.Close()
	fmt.Printf("%s ready — 'help' for commands\n", db)

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Print("> ")
			continue
		}
		switch cmd := fields[0]; cmd {
		case "put":
			if len(fields) != 3 {
				fmt.Println("usage: put <key> <value>")
				break
			}
			if err := db.Put([]byte(fields[1]), []byte(fields[2])); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("ok")
			}
		case "get":
			if len(fields) != 2 {
				fmt.Println("usage: get <key>")
				break
			}
			v, ok, err := db.Get([]byte(fields[1]))
			switch {
			case err != nil:
				fmt.Println("error:", err)
			case !ok:
				fmt.Println("(not found)")
			default:
				fmt.Printf("%q\n", v)
			}
		case "del":
			if len(fields) != 2 {
				fmt.Println("usage: del <key>")
				break
			}
			if err := db.Delete([]byte(fields[1])); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("ok")
			}
		case "fill":
			if len(fields) != 2 {
				fmt.Println("usage: fill <n>")
				break
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				fmt.Println("usage: fill <n>")
				break
			}
			s := db.NewSession()
			for i := 0; i < n; i++ {
				if err := s.Put([]byte(fmt.Sprintf("fill:%08d", i)), []byte("synthetic")); err != nil {
					fmt.Println("error:", err)
					break
				}
			}
			fmt.Printf("inserted %d keys in %.2f ms virtual\n", n, float64(s.VirtualNanos())/1e6)
		case "flush":
			if err := db.Flush(); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("ok")
			}
		case "crash":
			db.Crash()
			fmt.Println("crashed: volatile state lost; run 'recover'")
		case "recover":
			ready, full, err := db.Recover()
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("recovered: ready in %.2f ms virtual (full %.2f ms)\n",
					float64(ready)/1e6, float64(full)/1e6)
			}
		case "wim":
			if len(fields) != 2 || (fields[1] != "on" && fields[1] != "off") {
				fmt.Println("usage: wim on|off")
				break
			}
			db.SetWriteIntensive(fields[1] == "on")
			fmt.Println("ok")
		case "stats":
			st := db.Stats()
			fmt.Printf("puts=%d deletes=%d flushes=%d spills=%d upperCompactions=%d lastCompactions=%d dumps=%d\n",
				st.Puts, st.Deletes, st.Flushes, st.Spills, st.UpperCompactions, st.LastCompactions, st.Dumps)
			fmt.Printf("gets: memtable=%d abi=%d dumped=%d upper=%d last=%d miss=%d\n",
				st.GetMemTable, st.GetABI, st.GetDumped, st.GetUpper, st.GetLast, st.GetMiss)
			fmt.Printf("media: written=%.1fMB read=%.1fMB writeAmp=%.2f dram=%.1fMB\n",
				float64(st.MediaBytesWritten)/(1<<20), float64(st.MediaBytesRead)/(1<<20),
				st.WriteAmplification(), float64(st.DRAMFootprintBytes)/(1<<20))
			fmt.Printf("maintenance: freezes=%d slowdowns=%d stalls=%d jobs(flush=%d spill=%d compact=%d last=%d)\n",
				st.MemFreezes, st.PutSlowdowns, st.PutStalls,
				st.MaintJobsFlush, st.MaintJobsSpill, st.MaintJobsCompact, st.MaintJobsLast)
		case "help":
			fmt.Println(help)
		case "quit", "exit":
			return
		default:
			fmt.Printf("unknown command %q — 'help' for commands\n", cmd)
		}
		fmt.Print("> ")
	}
}
