package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"chameleondb/internal/resp"
)

// replCmd is the replication control surface over the wire:
//
//	chameleonctl repl status [-addr host:port]   INFO replication
//	chameleonctl repl promote [-addr host:port]  REPLICAOF NO ONE
//	chameleonctl repl of <host> <port> [-addr …] REPLICAOF host port
//	chameleonctl repl wait <n> <timeout-ms>      WAIT n timeout
func replCmd(args []string) {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: chameleonctl repl status|promote|of|wait [args] [-addr host:port]")
		os.Exit(2)
	}
	sub, rest := args[0], args[1:]

	// Subcommand operands come before flags; split them off first.
	var operands []string
	for len(rest) > 0 && (len(rest[0]) == 0 || rest[0][0] != '-') {
		operands = append(operands, rest[0])
		rest = rest[1:]
	}
	fs := flag.NewFlagSet("repl "+sub, flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:6379", "server address")
	timeout := fs.Duration("timeout", 5*time.Second, "dial and I/O timeout")
	fs.Parse(rest)

	c, err := resp.Dial(*addr, *timeout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dial %s: %v\n", *addr, err)
		os.Exit(1)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(*timeout))

	var rep resp.Reply
	switch sub {
	case "status":
		rep, err = c.DoStrings("INFO", "replication")
	case "promote":
		rep, err = c.DoStrings("REPLICAOF", "NO", "ONE")
	case "of":
		if len(operands) != 2 {
			fmt.Fprintln(os.Stderr, "usage: chameleonctl repl of <host> <port>")
			os.Exit(2)
		}
		rep, err = c.DoStrings("REPLICAOF", operands[0], operands[1])
	case "wait":
		if len(operands) != 2 {
			fmt.Fprintln(os.Stderr, "usage: chameleonctl repl wait <numreplicas> <timeout-ms>")
			os.Exit(2)
		}
		// WAIT can legitimately block up to its own timeout; give the socket
		// deadline room on top of it.
		c.SetDeadline(time.Now().Add(*timeout + time.Minute))
		rep, err = c.DoStrings("WAIT", operands[0], operands[1])
	default:
		fmt.Fprintf(os.Stderr, "unknown repl subcommand %q (want status, promote, of, or wait)\n", sub)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "repl %s: %v\n", sub, err)
		os.Exit(1)
	}
	if err := rep.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "repl %s: %v\n", sub, err)
		os.Exit(1)
	}
	fmt.Println(rep.Text())
}
