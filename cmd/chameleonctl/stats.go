package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"chameleondb/internal/core"
	"chameleondb/internal/hotcache"
	"chameleondb/internal/kvstore"
	"chameleondb/internal/obs"
	"chameleondb/internal/simclock"
)

// statsCmd builds a ChameleonDB instance, loads it with synthetic data, and
// exposes its observability surface: one JSON snapshot to stdout by default,
// or a live HTTP endpoint with -serve (expvar-style JSON at /stats.json,
// Prometheus text at /metrics, the event trace at /trace.jsonl, and
// net/http/pprof under /debug/pprof/).
func statsCmd(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	var (
		serve    = fs.String("serve", "", "serve the stats endpoint on this address (e.g. 127.0.0.1:8036); empty prints one snapshot and exits")
		fill     = fs.Int64("fill", 100_000, "synthetic keys to load before snapshotting/serving")
		churn    = fs.Bool("churn", false, "keep a background session running a put/get/delete mix while serving, so the endpoint shows moving numbers")
		traceCap = fs.Int("trace", 4096, "event-trace ring capacity (0 disables tracing)")
		traceOut = fs.String("trace-out", "", "append trace events as JSONL to this file as they happen")
		shards   = fs.Int("shards", 64, "index shards (power of two)")
		maint    = fs.Int("maintenance-workers", 0, "background maintenance workers (0: inline maintenance)")
		cacheB   = fs.Int64("hotcache-bytes", 0, "hot-key DRAM read cache capacity in bytes (0: off); hotcache_* counters appear in the snapshot")
	)
	fs.Parse(args)

	cfg := core.ScaledConfig(*shards, *fill, 8)
	cfg.TraceEvents = *traceCap
	cfg.MaintenanceWorkers = *maint
	s, err := core.Open(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if tr := s.Trace(); tr != nil {
			tr.SetSink(f)
		} else {
			fmt.Fprintln(os.Stderr, "-trace-out needs -trace > 0")
			os.Exit(2)
		}
	}

	// With a cache, sessions come from the interposing wrapper and its
	// hotcache_* counters join the same registry the snapshot reads.
	cache := hotcache.New(*cacheB)
	kst := hotcache.Wrap(s, cache)
	cache.Register(s.Registry())

	se := kst.NewSession(simclock.New(0))
	val := []byte("synthetic")
	for i := int64(0); i < *fill; i++ {
		if err := se.Put(statsKey(i), val); err != nil {
			fmt.Fprintln(os.Stderr, "fill:", err)
			os.Exit(1)
		}
	}
	if err := se.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "flush:", err)
		os.Exit(1)
	}

	if *serve == "" {
		if err := s.Registry().Snapshot().WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var stop atomic.Bool
	if *churn {
		go churnLoop(kst.NewSession(simclock.New(se.Clock().Now())), *fill, &stop)
		defer stop.Store(true)
	}
	fmt.Printf("serving stats on http://%s/ (stats.json, metrics, trace.jsonl, debug/pprof/)\n", *serve)
	if err := http.ListenAndServe(*serve, obs.Handler(s.Registry().Snapshot, s.Trace())); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func statsKey(i int64) []byte {
	return []byte(fmt.Sprintf("fill:%08d", i))
}

// churnLoop runs a slow background mix (mostly gets, some updates, a few
// deletes and re-inserts) so a served endpoint shows live movement. Paced by
// wall-clock sleeps: the point is observable change, not throughput.
func churnLoop(se kvstore.Session, keys int64, stop *atomic.Bool) {
	rng := rand.New(rand.NewSource(42))
	val := []byte("churned")
	for !stop.Load() {
		k := statsKey(rng.Int63n(keys))
		switch rng.Intn(10) {
		case 0:
			_ = se.Put(k, val)
		case 1:
			_ = se.Delete(k)
			_ = se.Put(k, val)
		default:
			_, _, _ = se.Get(k)
		}
		time.Sleep(2 * time.Millisecond)
	}
	_ = se.Flush()
}
