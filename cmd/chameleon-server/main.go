// Command chameleon-server serves a ChameleonDB store over TCP speaking the
// RESP protocol, so any redis client can drive it:
//
//	chameleon-server -addr 127.0.0.1:6379 &
//	redis-cli -p 6379 SET k v
//	redis-cli -p 6379 GET k
//
// Supported commands: GET, SET, DEL, EXISTS, PING, INFO, FLUSHALL (a
// durability barrier, not a wipe — see DESIGN.md §7), QUIT, COMMAND. With
// -stats-addr set, the engine's observability endpoints (/stats.json,
// /metrics, /trace.json) are served over HTTP with the server's wire metrics
// merged in under server_* names.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chameleondb/internal/core"
	"chameleondb/internal/hotcache"
	"chameleondb/internal/obs"
	"chameleondb/internal/repl"
	"chameleondb/internal/server"
	"chameleondb/internal/simclock"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:6379", "RESP listen address")
		statsAddr   = flag.String("stats-addr", "", "serve /stats.json and /metrics on this HTTP address (empty: off)")
		shards      = flag.Int("shards", 64, "index shards (power of two)")
		arenaMB     = flag.Int64("arena-mb", 512, "persistent arena size (MB)")
		logMB       = flag.Int64("log-mb", 256, "write-ahead log budget (MB)")
		maxConns    = flag.Int("max-conns", 1024, "max concurrent client connections (<0: unlimited)")
		pipeline    = flag.Int("max-pipeline", 128, "max commands decoded per batch")
		commitDelay = flag.Duration("commit-delay", 200*time.Microsecond, "group-commit coalescing window")
		commitSize  = flag.Int("commit-size", 64, "group-commit size threshold")
		asyncAck    = flag.Bool("async-ack", false, "acknowledge writes before group commit (faster, weaker)")
		replyRetain = flag.Int("reply-retain", 0, "per-connection reply buffer bytes kept across batches (0: default 1MiB)")
		readTO      = flag.Duration("read-timeout", 5*time.Minute, "idle connection timeout (<0: none)")
		writeTO     = flag.Duration("write-timeout", time.Minute, "per-write socket deadline (<0: none)")
		maintWork   = flag.Int("maintenance-workers", -1, "background maintenance workers (0: run flushes/compactions inline on the put path; <0: min(shards, GOMAXPROCS))")
		backend     = flag.String("backend", "sim", "persistence backend: sim (in-memory simulated pmem) or file (fsync-backed segment files in -dir)")
		dir         = flag.String("dir", "", "data directory for -backend=file")
		replAddr    = flag.String("repl-addr", "", "replication listen address for log shipping to replicas (empty: off)")
		replicaOf   = flag.String("replicaof", "", "start as a replica of this primary's repl-addr (host:port)")
		replID      = flag.String("repl-id", "", "stable replica identity for GC holds across reconnects (default: local addr)")
		cacheBytes  = flag.Int64("hotcache-bytes", 0, "hot-key DRAM read cache capacity in bytes (0: off)")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Shards = *shards
	cfg.ArenaBytes = *arenaMB << 20
	cfg.LogBytes = *logMB << 20
	if *maintWork < 0 {
		cfg.MaintenanceWorkers = core.DefaultMaintenanceWorkers(*shards)
	} else {
		cfg.MaintenanceWorkers = *maintWork
	}
	var st *core.Store
	var err error
	switch *backend {
	case "sim":
		st, err = core.Open(cfg)
	case "file":
		if *dir == "" {
			fmt.Fprintln(os.Stderr, "-backend=file requires -dir")
			os.Exit(2)
		}
		var existing bool
		st, existing, err = core.OpenFile(cfg, *dir)
		if err == nil && existing {
			// Reattach is a restart: replay the log before serving, so every
			// previously acknowledged write is readable from the first GET.
			start := time.Now()
			if err := st.Recover(simclock.New(0)); err != nil {
				fmt.Fprintln(os.Stderr, "recover:", err)
				os.Exit(1)
			}
			fmt.Printf("recovered %s in %s\n", *dir, time.Since(start).Round(time.Millisecond))
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown -backend %q (want sim or file)\n", *backend)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "open store:", err)
		os.Exit(1)
	}
	defer func() { st.Close() }()

	// Replication: start the repl node before the RESP server so a replica's
	// bootstrap (including a possible full-resync store swap) finishes before
	// any client can connect. ResetStore closes the stale store and reopens a
	// fresh one — for the file backend that wipes the data directory, since a
	// full resync replays the primary's entire live state from its log.
	// The hot-key cache is shared between the serving layer (which reads
	// through and invalidates it) and replication (whose applies bypass the
	// serving layer's sessions and so invalidate via OnApply). nil when off.
	cache := hotcache.New(*cacheBytes)

	var node *repl.Node
	if *replAddr != "" || *replicaOf != "" {
		rcfg := repl.Config{Addr: *replAddr, PrimaryAddr: *replicaOf, ID: *replID}
		rcfg.OnApply = cache.Invalidate
		old := st
		if *backend == "file" {
			dataDir := *dir
			rcfg.ResetStore = func() (*core.Store, error) {
				cache.InvalidateAll() // full resync: everything cached is suspect
				old.Close()
				if err := os.RemoveAll(dataDir); err != nil {
					return nil, err
				}
				fresh, _, err := core.OpenFile(cfg, dataDir)
				return fresh, err
			}
		} else {
			rcfg.ResetStore = func() (*core.Store, error) {
				cache.InvalidateAll()
				old.Close()
				return core.Open(cfg)
			}
		}
		node, err = repl.Start(st, rcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "replication:", err)
			os.Exit(1)
		}
		defer node.Close()
		st = node.Store()
	}

	scfg := server.Config{
		Addr:             *addr,
		MaxConns:         *maxConns,
		MaxPipeline:      *pipeline,
		ReadTimeout:      *readTO,
		WriteTimeout:     *writeTO,
		GroupCommitDelay: *commitDelay,
		GroupCommitSize:  *commitSize,
		AsyncAck:         *asyncAck,
		ReplyRetainBytes: *replyRetain,
	}
	if node != nil {
		scfg.Repl = node
	}
	scfg.Cache = cache
	srv := server.New(st, scfg)
	if err := srv.Listen(); err != nil {
		fmt.Fprintln(os.Stderr, "listen:", err)
		os.Exit(1)
	}
	fmt.Printf("chameleon-server listening on %s (backend=%s shards=%d arena=%dMB log=%dMB maintenance-workers=%d)\n",
		srv.Addr(), *backend, *shards, *arenaMB, *logMB, cfg.MaintenanceWorkers)
	if cache != nil {
		fmt.Printf("hotcache: %d bytes DRAM read cache\n", cache.Capacity())
	}
	if node != nil {
		if node.Role() == repl.RoleReplica {
			fmt.Printf("replication: replica of %s (repl-addr=%s)\n", *replicaOf, node.Addr())
		} else {
			fmt.Printf("replication: primary shipping on %s\n", node.Addr())
		}
	}

	if *statsAddr != "" {
		go func() {
			fmt.Printf("stats on http://%s/stats.json\n", *statsAddr)
			if err := http.ListenAndServe(*statsAddr, obs.Handler(srv.Registry().Snapshot, st.Trace())); err != nil {
				fmt.Fprintln(os.Stderr, "stats server:", err)
			}
		}()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("signal %s: draining...\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "shutdown:", err)
			os.Exit(1)
		}
		if err := <-serveErr; err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		fmt.Println("drained; bye")
	case err := <-serveErr:
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
	}
}
