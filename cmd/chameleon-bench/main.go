// Command chameleon-bench regenerates the tables and figures of the
// ChameleonDB paper's evaluation. Run a single experiment with
// -experiment <id>, or every registered experiment with -experiment all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"chameleondb/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (fig1, fig2, fig3, fig6, fig10, fig11tab2, fig12, fig13tab3, tab4, fig14tab5, fig15, fig16, fig17, ablations) or 'all' or 'list'")
		keys       = flag.Int64("keys", 1_000_000, "dataset size (keys loaded)")
		ops        = flag.Int64("ops", 1_000_000, "measured-phase operations")
		threads    = flag.Int("threads", 16, "maximum worker count")
		valueSize  = flag.Int("value-size", 8, "value size in bytes")
		seed       = flag.Int64("seed", 1, "random seed")
		asJSON     = flag.Bool("json", false, "emit reports as JSON (including the store's metrics snapshot) instead of text tables")
		compare    = flag.String("compare", "", "baseline JSON file (a prior -json run); fail if a gated ratio (readscale/writescale/scan/netbench/ycsb/allocs) regresses vs it")
	)
	flag.Parse()

	if *experiment == "list" {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	opt := bench.Options{Keys: *keys, Ops: *ops, Threads: *threads, ValueSize: *valueSize, Seed: *seed}
	var exps []bench.Experiment
	if *experiment == "all" {
		exps = bench.Experiments()
	} else {
		e, ok := bench.Lookup(*experiment)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -experiment list)\n", *experiment)
			os.Exit(1)
		}
		exps = []bench.Experiment{e}
	}
	var all []*bench.Report
	for _, e := range exps {
		reports, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		all = append(all, reports...)
		if !*asJSON {
			for _, r := range reports {
				r.Print(os.Stdout)
			}
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *compare != "" {
		if err := compareScaling(*compare, all); err != nil {
			fmt.Fprintf(os.Stderr, "regression gate: %v\n", err)
			os.Exit(1)
		}
	}
}

// compareScaling is the CI regression gate: for each gated experiment this
// run produced (readscale for the lock-free get path, writescale for the
// async write path, scan for the merging iterator's batch amortization,
// netbench for the wire hot path's pipelining gain, ycsb for the hot-key
// cache's hit ratio on the zipfian head), it compares the
// experiment's headline ratio — speedup at the top worker count, ns/key
// amortization at the top COUNT, or deep-pipeline throughput over depth-1 —
// against the checked-in baseline. A ratio, not absolute time, is compared so
// the gate holds across machine speeds; a >10% drop means the path
// reintroduced serialization (or the iterator stopped amortizing its snapshot
// captures, or a per-command cost crept back into the serving loop). The
// allocs experiment is gated differently: allocations per op are
// machine-independent, so wire_get_hit and wire_set get a hard ceiling plus a
// no-regression check against the baseline's absolute numbers.
func compareScaling(baselinePath string, reports []*bench.Report) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var baseline []*bench.Report
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("parse %s: %w", baselinePath, err)
	}
	find := func(rs []*bench.Report, id string) (*bench.Report, bool) {
		for _, r := range rs {
			if r.ID == id {
				return r, true
			}
		}
		return nil, false
	}
	gates := []struct {
		id      string
		extract func(*bench.Report) (int, float64, error)
	}{
		{"readscale", bench.ReadScaleSpeedup},
		{"writescale", bench.WriteScaleSpeedup},
		{"scan", bench.ScanAmortization},
		{"netbench", bench.NetBenchPipelineGain},
		{"ycsb", bench.YCSBCacheGain},
	}
	gated := false
	for _, g := range gates {
		cur, ok := find(reports, g.id)
		if !ok {
			continue
		}
		base, ok := find(baseline, g.id)
		if !ok {
			return fmt.Errorf("%s has no %s report to gate against", baselinePath, g.id)
		}
		bw, bs, err := g.extract(base)
		if err != nil {
			return fmt.Errorf("%s baseline: %w", g.id, err)
		}
		cw, cs, err := g.extract(cur)
		if err != nil {
			return fmt.Errorf("%s current run: %w", g.id, err)
		}
		if cw != bw {
			return fmt.Errorf("%s sweep endpoints differ (baseline %d, current %d); rerun with matching flags", g.id, bw, cw)
		}
		const tolerance = 0.90
		if cs < bs*tolerance {
			return fmt.Errorf("%s ratio at endpoint %d regressed: %.2fx vs baseline %.2fx (>10%% drop)", g.id, cw, cs, bs)
		}
		fmt.Printf("%s gate ok: %.2fx at endpoint %d (baseline %.2fx, floor %.2fx)\n", g.id, cs, cw, bs, bs*tolerance)
		gated = true
	}
	if cur, ok := find(reports, "allocs"); ok {
		base, hasBase := find(baseline, "allocs")
		// The ceiling is absolute: allocs/op does not depend on machine
		// speed, so "at most 2 allocations per wire op" is enforceable
		// everywhere. The baseline check catches smaller creep (a path going
		// from 0 to 1.5 stays under the ceiling but is still a regression).
		const ceiling = 2.0
		const slack = 0.75
		for _, name := range []string{"wire_get_hit", "wire_set"} {
			cv, err := bench.AllocsPerOp(cur, name)
			if err != nil {
				return fmt.Errorf("allocs current run: %w", err)
			}
			if cv > ceiling {
				return fmt.Errorf("allocs %s = %.3f allocs/op, over the hard ceiling %.1f", name, cv, ceiling)
			}
			if hasBase {
				bv, err := bench.AllocsPerOp(base, name)
				if err != nil {
					return fmt.Errorf("allocs baseline: %w", err)
				}
				if cv > bv+slack {
					return fmt.Errorf("allocs %s regressed: %.3f allocs/op vs baseline %.3f (>%.2f increase)", name, cv, bv, slack)
				}
				fmt.Printf("allocs gate ok: %s %.3f allocs/op (baseline %.3f, ceiling %.1f)\n", name, cv, bv, ceiling)
			} else {
				fmt.Printf("allocs gate ok: %s %.3f allocs/op (no baseline, ceiling %.1f)\n", name, cv, ceiling)
			}
		}
		gated = true
	}
	if !gated {
		return fmt.Errorf("this run produced no gated report (add -experiment readscale, writescale, scan, netbench, ycsb, or allocs)")
	}
	return nil
}
