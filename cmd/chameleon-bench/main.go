// Command chameleon-bench regenerates the tables and figures of the
// ChameleonDB paper's evaluation. Run a single experiment with
// -experiment <id>, or every registered experiment with -experiment all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"chameleondb/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (fig1, fig2, fig3, fig6, fig10, fig11tab2, fig12, fig13tab3, tab4, fig14tab5, fig15, fig16, fig17, ablations) or 'all' or 'list'")
		keys       = flag.Int64("keys", 1_000_000, "dataset size (keys loaded)")
		ops        = flag.Int64("ops", 1_000_000, "measured-phase operations")
		threads    = flag.Int("threads", 16, "maximum worker count")
		valueSize  = flag.Int("value-size", 8, "value size in bytes")
		seed       = flag.Int64("seed", 1, "random seed")
		asJSON     = flag.Bool("json", false, "emit reports as JSON (including the store's metrics snapshot) instead of text tables")
	)
	flag.Parse()

	if *experiment == "list" {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	opt := bench.Options{Keys: *keys, Ops: *ops, Threads: *threads, ValueSize: *valueSize, Seed: *seed}
	var exps []bench.Experiment
	if *experiment == "all" {
		exps = bench.Experiments()
	} else {
		e, ok := bench.Lookup(*experiment)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -experiment list)\n", *experiment)
			os.Exit(1)
		}
		exps = []bench.Experiment{e}
	}
	var all []*bench.Report
	for _, e := range exps {
		reports, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *asJSON {
			all = append(all, reports...)
			continue
		}
		for _, r := range reports {
			r.Print(os.Stdout)
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
