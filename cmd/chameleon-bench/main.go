// Command chameleon-bench regenerates the tables and figures of the
// ChameleonDB paper's evaluation. Run a single experiment with
// -experiment <id>, or every registered experiment with -experiment all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"chameleondb/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (fig1, fig2, fig3, fig6, fig10, fig11tab2, fig12, fig13tab3, tab4, fig14tab5, fig15, fig16, fig17, ablations) or 'all' or 'list'")
		keys       = flag.Int64("keys", 1_000_000, "dataset size (keys loaded)")
		ops        = flag.Int64("ops", 1_000_000, "measured-phase operations")
		threads    = flag.Int("threads", 16, "maximum worker count")
		valueSize  = flag.Int("value-size", 8, "value size in bytes")
		seed       = flag.Int64("seed", 1, "random seed")
		asJSON     = flag.Bool("json", false, "emit reports as JSON (including the store's metrics snapshot) instead of text tables")
		compare    = flag.String("compare", "", "baseline JSON file (a prior -json run); fail if the readscale speedup regresses >10% vs it")
	)
	flag.Parse()

	if *experiment == "list" {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	opt := bench.Options{Keys: *keys, Ops: *ops, Threads: *threads, ValueSize: *valueSize, Seed: *seed}
	var exps []bench.Experiment
	if *experiment == "all" {
		exps = bench.Experiments()
	} else {
		e, ok := bench.Lookup(*experiment)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -experiment list)\n", *experiment)
			os.Exit(1)
		}
		exps = []bench.Experiment{e}
	}
	var all []*bench.Report
	for _, e := range exps {
		reports, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		all = append(all, reports...)
		if !*asJSON {
			for _, r := range reports {
				r.Print(os.Stdout)
			}
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *compare != "" {
		if err := compareReadScale(*compare, all); err != nil {
			fmt.Fprintf(os.Stderr, "regression gate: %v\n", err)
			os.Exit(1)
		}
	}
}

// compareReadScale is the CI regression gate: it compares the read-scaling
// speedup (wall-clock at 1 worker / wall-clock at the top worker count) of
// this run against the checked-in baseline. The ratio, not absolute wall
// time, is compared so the gate holds across machine speeds; a >10% drop
// means the read path reintroduced serialization.
func compareReadScale(baselinePath string, reports []*bench.Report) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var baseline []*bench.Report
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("parse %s: %w", baselinePath, err)
	}
	find := func(rs []*bench.Report) (*bench.Report, bool) {
		for _, r := range rs {
			if r.ID == "readscale" {
				return r, true
			}
		}
		return nil, false
	}
	base, ok := find(baseline)
	if !ok {
		return fmt.Errorf("%s has no readscale report", baselinePath)
	}
	cur, ok := find(reports)
	if !ok {
		return fmt.Errorf("this run produced no readscale report (add -experiment readscale)")
	}
	bw, bs, err := bench.ReadScaleSpeedup(base)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	cw, cs, err := bench.ReadScaleSpeedup(cur)
	if err != nil {
		return fmt.Errorf("current run: %w", err)
	}
	if cw != bw {
		return fmt.Errorf("worker counts differ (baseline %d, current %d); rerun with matching -threads", bw, cw)
	}
	const tolerance = 0.90
	if cs < bs*tolerance {
		return fmt.Errorf("readscale speedup at %d workers regressed: %.2fx vs baseline %.2fx (>10%% drop)", cw, cs, bs)
	}
	fmt.Printf("readscale gate ok: %.2fx speedup at %d workers (baseline %.2fx, floor %.2fx)\n", cs, cw, bs, bs*tolerance)
	return nil
}
