// Command chameleon-ycsb runs the YCSB workloads of the paper's Table 5
// against any of the stores in the evaluation and prints virtual
// throughput — a focused version of the fig14 experiment for exploring a
// single store/workload pair.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"chameleondb/internal/bench"
	"chameleondb/internal/ycsb"
)

func main() {
	var (
		storeName = flag.String("store", "ChameleonDB", "store: ChameleonDB, Pmem-LSM-PinK, Pmem-LSM-NF, Pmem-LSM-F, Pmem-Hash, Dram-Hash")
		workload  = flag.String("workload", "all", "workload: YCSB_LOAD, YCSB_A, YCSB_B, YCSB_C, YCSB_D, YCSB_F, or all")
		keys      = flag.Int64("keys", 1_000_000, "keys to load")
		ops       = flag.Int64("ops", 1_000_000, "operations per workload")
		threads   = flag.Int("threads", 16, "worker threads")
	)
	flag.Parse()

	var kind bench.StoreKind
	found := false
	for _, k := range bench.ComparisonSet {
		if strings.EqualFold(k.String(), *storeName) {
			kind = k
			found = true
			break
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown store %q\n", *storeName)
		os.Exit(1)
	}

	opt := bench.Options{Keys: *keys, Ops: *ops, Threads: *threads, ValueSize: 8, Seed: 1}
	var wls []ycsb.Workload
	if *workload == "all" {
		wls = ycsb.Workloads
	} else {
		wls = []ycsb.Workload{ycsb.Workload(*workload)}
	}
	results, err := bench.RunYCSB(kind, opt, wls)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s, %d keys, %d threads\n", kind, *keys, *threads)
	for _, r := range results {
		fmt.Printf("  %-10s %-32s %8.2f Mops/s virtual\n", r.Workload, ycsb.Mix(r.Workload), r.Mops)
	}
}
