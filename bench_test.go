// Package-level benchmarks: one testing.B benchmark per table and figure of
// the paper's evaluation, each invoking the same regenerator the
// chameleon-bench CLI uses, at a reduced scale suitable for `go test
// -bench`. Full-scale runs: `go run ./cmd/chameleon-bench -experiment all`.
package chameleondb

import (
	"fmt"
	"testing"

	"chameleondb/internal/bench"
)

// benchOpts is the reduced scale used under `go test -bench`.
func benchOpts() bench.Options {
	return bench.Options{Keys: 100_000, Ops: 100_000, Threads: 8, ValueSize: 8, Seed: 1}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	for i := 0; i < b.N; i++ {
		reports, err := e.Run(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(reports) == 0 || len(reports[0].Rows) == 0 {
			b.Fatalf("experiment %q produced no rows", id)
		}
	}
}

func BenchmarkFig1PmemWriteBandwidth(b *testing.B) { runExperiment(b, "fig1") }
func BenchmarkFig2MultiLevelLatency(b *testing.B)  { runExperiment(b, "fig2") }
func BenchmarkFig3FourMeasures(b *testing.B)       { runExperiment(b, "fig3") }
func BenchmarkFig10PutThroughput(b *testing.B)     { runExperiment(b, "fig10") }
func BenchmarkFig11Tab2PutLatency(b *testing.B)    { runExperiment(b, "fig11tab2") }
func BenchmarkFig12GetThroughput(b *testing.B)     { runExperiment(b, "fig12") }
func BenchmarkFig13Tab3GetLatency(b *testing.B)    { runExperiment(b, "fig13tab3") }
func BenchmarkTab4Overall(b *testing.B)            { runExperiment(b, "tab4") }
func BenchmarkFig14Tab5YCSB(b *testing.B)          { runExperiment(b, "fig14tab5") }
func BenchmarkFig15CompactionModes(b *testing.B)   { runExperiment(b, "fig15") }
func BenchmarkFig16GetProtectBursts(b *testing.B)  { runExperiment(b, "fig16") }
func BenchmarkFig17VsNoveLSMMatrixKV(b *testing.B) { runExperiment(b, "fig17") }
func BenchmarkAblationDesignChoices(b *testing.B)  { runExperiment(b, "ablations") }
func BenchmarkAblationGPMDumpBudget(b *testing.B)  { runExperiment(b, "gpmdumps") }

// BenchmarkPutThroughputVirtual measures the core store's virtual put
// throughput directly and reports it as a custom metric.
func BenchmarkPutThroughputVirtual(b *testing.B) {
	db, err := Open(DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	s := db.NewSession()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%09d", i)), []byte("12345678")); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if ns := s.VirtualNanos(); ns > 0 {
		b.ReportMetric(float64(b.N)/float64(ns)*1000, "virtual-Mops/s")
	}
}

// BenchmarkGetLatencyVirtual reports the virtual per-get cost on a loaded
// store.
func BenchmarkGetLatencyVirtual(b *testing.B) {
	db, err := Open(DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	s := db.NewSession()
	const keys = 200_000
	for i := 0; i < keys; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%09d", i)), []byte("12345678")); err != nil {
			b.Fatal(err)
		}
	}
	start := s.VirtualNanos()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := s.Get([]byte(fmt.Sprintf("key-%09d", i%keys))); err != nil || !ok {
			b.Fatal("missing key")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(s.VirtualNanos()-start)/float64(b.N), "virtual-ns/get")
}
