package hashtable

import (
	"math/rand"
	"testing"
	"testing/quick"

	"chameleondb/internal/device"
	"chameleondb/internal/pmem"
	"chameleondb/internal/simclock"
	"chameleondb/internal/xhash"
)

func TestSlotEncoding(t *testing.T) {
	if MakeRef(100, false) != 100 {
		t.Fatal("plain ref should equal LSN")
	}
	s := Slot{Hash: 7, Ref: MakeRef(12345, true)}
	if !s.Tombstone() || s.LSN() != 12345 {
		t.Fatalf("tombstone slot round trip failed: %+v", s)
	}
	s2 := Slot{Hash: 7, Ref: MakeRef(12345, false)}
	if s2.Tombstone() || s2.LSN() != 12345 {
		t.Fatalf("plain slot round trip failed: %+v", s2)
	}
	var b [SlotSize]byte
	encodeSlot(b[:], s)
	if got := decodeSlot(b[:]); got != s {
		t.Fatalf("encode/decode mismatch: %+v vs %+v", got, s)
	}
}

func TestMemBasic(t *testing.T) {
	m := NewMem(100)
	if m.Cap() != 128 {
		t.Fatalf("Cap = %d, want next pow2 128", m.Cap())
	}
	if _, ok := m.Insert(1, MakeRef(10, false)); !ok {
		t.Fatal("insert failed")
	}
	ref, probes, ok := m.Get(1)
	if !ok || (Slot{Ref: ref}).LSN() != 10 || probes < 1 {
		t.Fatalf("Get = %d, %d, %v", ref, probes, ok)
	}
	if _, _, ok := m.Get(2); ok {
		t.Fatal("found absent key")
	}
	// Update in place.
	m.Insert(1, MakeRef(20, false))
	if m.Len() != 1 {
		t.Fatalf("update should not grow table: Len = %d", m.Len())
	}
	ref, _, _ = m.Get(1)
	if (Slot{Ref: ref}).LSN() != 20 {
		t.Fatal("update not visible")
	}
}

func TestMemInsertIfAbsent(t *testing.T) {
	m := NewMem(8)
	if !m.InsertIfAbsent(5, MakeRef(1, false)) {
		t.Fatal("first insert should succeed")
	}
	if m.InsertIfAbsent(5, MakeRef(2, false)) {
		t.Fatal("second insert of same hash should be rejected")
	}
	ref, _, _ := m.Get(5)
	if (Slot{Ref: ref}).LSN() != 1 {
		t.Fatal("InsertIfAbsent overwrote existing entry")
	}
}

func TestMemFull(t *testing.T) {
	m := NewMem(8)
	for i := uint64(0); i < 8; i++ {
		if _, ok := m.Insert(xhash.Uint64(i), MakeRef(int64(i)+1, false)); !ok {
			t.Fatalf("insert %d failed before table full", i)
		}
	}
	if m.LoadFactor() != 1.0 {
		t.Fatalf("LoadFactor = %v", m.LoadFactor())
	}
	if _, ok := m.Insert(xhash.Uint64(99), MakeRef(1, false)); ok {
		t.Fatal("insert into full table should fail")
	}
	// But updating an existing key must still work at 100% load.
	if _, ok := m.Insert(xhash.Uint64(3), MakeRef(77, false)); !ok {
		t.Fatal("update in full table should succeed")
	}
}

func TestMemWrapAround(t *testing.T) {
	// Force probes to wrap past the end of the slot array.
	m := NewMem(8)
	h := uint64(7) // lands in the last slot
	for i := 0; i < 4; i++ {
		if _, ok := m.Insert(h+uint64(i)*8, MakeRef(int64(i)+1, false)); !ok { // same bucket mod 8
			t.Fatalf("wrap insert %d failed", i)
		}
	}
	for i := 0; i < 4; i++ {
		if _, _, ok := m.Get(h + uint64(i)*8); !ok {
			t.Fatalf("wrap get %d failed", i)
		}
	}
}

func TestMemIterateAndReset(t *testing.T) {
	m := NewMem(64)
	for i := uint64(0); i < 20; i++ {
		m.Insert(xhash.Uint64(i), MakeRef(int64(i)+1, false))
	}
	n := 0
	m.Iterate(func(s Slot) bool { n++; return true })
	if n != 20 {
		t.Fatalf("iterated %d, want 20", n)
	}
	n = 0
	m.Iterate(func(s Slot) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early-stop iterate visited %d", n)
	}
	m.Reset()
	if m.Len() != 0 {
		t.Fatal("reset did not clear")
	}
	if _, _, ok := m.Get(xhash.Uint64(1)); ok {
		t.Fatal("entry survived reset")
	}
}

func TestMemClone(t *testing.T) {
	m := NewMem(16)
	m.Insert(1, MakeRef(5, false))
	c := m.Clone()
	m.Insert(2, MakeRef(6, false))
	if c.Len() != 1 {
		t.Fatal("clone shares state with original")
	}
	if _, _, ok := c.Get(1); !ok {
		t.Fatal("clone missing entry")
	}
}

// Property: Mem behaves like a map[uint64]uint64 under random insert/get
// sequences while below capacity.
func TestMemMatchesMapOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewMem(256)
		oracle := map[uint64]uint64{}
		for i := 0; i < 200; i++ { // stays below cap 256
			h := xhash.Uint64(uint64(r.Intn(300)))
			ref := MakeRef(int64(r.Intn(1000))+1, r.Intn(10) == 0)
			if _, ok := m.Insert(h, ref); !ok {
				return false
			}
			oracle[h] = ref
		}
		for h, want := range oracle {
			got, _, ok := m.Get(h)
			if !ok || got != want {
				return false
			}
		}
		return m.Len() == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func newArena(t *testing.T) *pmem.Arena {
	t.Helper()
	return pmem.NewArena(device.New(device.OptanePmem), 1<<22)
}

func TestPmemTableBuildAndGet(t *testing.T) {
	a := newArena(t)
	c := simclock.New(0)
	src := func(yield func(Slot) bool) {
		for i := uint64(0); i < 100; i++ {
			if !yield(Slot{Hash: xhash.Uint64(i), Ref: MakeRef(int64(i)+1, false)}) {
				return
			}
		}
	}
	tb, err := BuildPmemTable(c, a, 256, src)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 100 {
		t.Fatalf("Len = %d", tb.Len())
	}
	for i := uint64(0); i < 100; i++ {
		s, ok := tb.Get(c, xhash.Uint64(i))
		if !ok || s.LSN() != int64(i)+1 {
			t.Fatalf("get %d: %+v %v", i, s, ok)
		}
	}
	if _, ok := tb.Get(c, xhash.Uint64(10000)); ok {
		t.Fatal("found absent key")
	}
}

func TestPmemTableNewestFirstDedup(t *testing.T) {
	a := newArena(t)
	c := simclock.New(0)
	src := func(yield func(Slot) bool) {
		yield(Slot{Hash: 42, Ref: MakeRef(999, false)}) // newest
		yield(Slot{Hash: 42, Ref: MakeRef(1, false)})   // older duplicate
	}
	tb, err := BuildPmemTable(c, a, 8, src)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tb.Len())
	}
	s, _ := tb.Get(c, 42)
	if s.LSN() != 999 {
		t.Fatal("older duplicate overwrote newer entry")
	}
}

func TestPmemTableBuildOverflow(t *testing.T) {
	a := newArena(t)
	c := simclock.New(0)
	src := func(yield func(Slot) bool) {
		for i := uint64(0); i < 100; i++ {
			if !yield(Slot{Hash: xhash.Uint64(i), Ref: MakeRef(int64(i)+1, false)}) {
				return
			}
		}
	}
	if _, err := BuildPmemTable(c, a, 8, src); err == nil {
		t.Fatal("expected overflow error")
	}
}

func TestPmemTableSurvivesCrash(t *testing.T) {
	a := newArena(t)
	c := simclock.New(0)
	src := func(yield func(Slot) bool) {
		for i := uint64(0); i < 50; i++ {
			if !yield(Slot{Hash: xhash.Uint64(i), Ref: MakeRef(int64(i)+1, false)}) {
				return
			}
		}
	}
	tb, err := BuildPmemTable(c, a, 128, src)
	if err != nil {
		t.Fatal(err)
	}
	a.Crash()
	re, err := OpenPmemTable(a, tb.Offset(), tb.Cap(), tb.Len())
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50; i++ {
		if _, ok := re.Get(c, xhash.Uint64(i)); !ok {
			t.Fatalf("entry %d lost after crash", i)
		}
	}
}

func TestOpenPmemTableValidation(t *testing.T) {
	a := newArena(t)
	if _, err := OpenPmemTable(a, 256, 100, 5); err == nil {
		t.Fatal("non-power-of-two capacity should be rejected")
	}
}

func TestPmemTableGetChargesLineReads(t *testing.T) {
	a := newArena(t)
	c := simclock.New(0)
	src := func(yield func(Slot) bool) {
		yield(Slot{Hash: 0, Ref: MakeRef(1, false)})
	}
	tb, err := BuildPmemTable(c, a, 64, src)
	if err != nil {
		t.Fatal(err)
	}
	reads0 := a.Device().Stats().ReadOps
	before := c.Now()
	tb.Get(c, 0)
	if a.Device().Stats().ReadOps != reads0+1 {
		t.Fatal("single-line probe should be one device read")
	}
	if c.Now()-before < device.OptanePmem.ReadLatency {
		t.Fatal("probe did not charge read latency")
	}
}

func TestPmemTableIterateAndRelease(t *testing.T) {
	a := newArena(t)
	c := simclock.New(0)
	src := func(yield func(Slot) bool) {
		for i := uint64(0); i < 30; i++ {
			if !yield(Slot{Hash: xhash.Uint64(i), Ref: MakeRef(int64(i)+1, false)}) {
				return
			}
		}
	}
	tb, err := BuildPmemTable(c, a, 64, src)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	tb.Iterate(func(s Slot) bool { n++; return true })
	if n != 30 {
		t.Fatalf("iterated %d, want 30", n)
	}
	tb.ChargeScan(c)
	inUse := a.InUse()
	tb.Release()
	tb2, err := NewPmemTable(a, 64)
	if err != nil {
		t.Fatal(err)
	}
	if tb2.Offset() != tb.Offset() || a.InUse() != inUse {
		t.Fatal("released table space not reused")
	}
}

// Property: a PmemTable built from any set of distinct hashes contains
// exactly that set.
func TestPmemTableBuildProperty(t *testing.T) {
	f := func(keys []uint64) bool {
		set := map[uint64]bool{}
		for _, k := range keys {
			h := xhash.Uint64(k)
			set[h] = true
		}
		if len(set) > 400 {
			return true // skip oversized inputs
		}
		a := pmem.NewArena(device.New(device.OptanePmem), 1<<20)
		c := simclock.New(0)
		src := func(yield func(Slot) bool) {
			for h := range set {
				if !yield(Slot{Hash: h, Ref: MakeRef(1, false)}) {
					return
				}
			}
		}
		tb, err := BuildPmemTable(c, a, 1024, src)
		if err != nil {
			return false
		}
		if tb.Len() != len(set) {
			return false
		}
		for h := range set {
			if _, ok := tb.Get(c, h); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
