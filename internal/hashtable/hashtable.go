// Package hashtable implements the fixed-size linear-probing hash tables at
// the heart of ChameleonDB (Section 2.1/2.5): the in-DRAM MemTable and ABI
// use Mem; the immutable persisted sub-level tables and last-level table use
// PmemTable. Both share the 16-byte slot format {key hash, reference}, where
// the reference is a storage-log LSN with a tombstone bit.
//
// Tables are deliberately not extendable: ChameleonDB avoids rehashing by
// bounding each table's load factor at build time (Randomized Load Factors,
// Section 2.5) and relying on compaction, not expansion, to make room.
package hashtable

import (
	"encoding/binary"
	"runtime"
	"sync/atomic"
)

// TombstoneBit marks a deleted key in a slot reference.
const TombstoneBit = uint64(1) << 63

// SlotSize is the on-media size of one slot in bytes.
const SlotSize = 16

// Slot is one index entry. Ref == 0 means the slot is empty (LSN 0 is
// reserved by the pmem arena).
type Slot struct {
	Hash uint64
	Ref  uint64
}

// Tombstone reports whether the slot marks a deletion.
func (s Slot) Tombstone() bool { return s.Ref&TombstoneBit != 0 }

// LSN returns the storage-log position the slot references.
func (s Slot) LSN() int64 { return int64(s.Ref &^ TombstoneBit) }

// MakeRef builds a slot reference from an LSN and tombstone flag.
func MakeRef(lsn int64, tombstone bool) uint64 {
	r := uint64(lsn)
	if tombstone {
		r |= TombstoneBit
	}
	return r
}

// memSlot is one in-DRAM slot, split into paired atomics so a single writer
// and many readers can share the table without a lock. Publication ordering
// carries the consistency: a writer filling an empty slot stores the hash
// first and the reference second, and ref == 0 still means empty, so a reader
// that observes a non-zero ref is guaranteed (Go atomics are sequentially
// consistent) to also observe the matching hash.
type memSlot struct {
	hash atomic.Uint64
	ref  atomic.Uint64
}

// Mem is a fixed-capacity linear-probing hash table in DRAM. It is the
// MemTable and ABI building block.
//
// Concurrency contract: at most one writer at a time (ChameleonDB serializes
// shard mutation under the shard lock), any number of concurrent readers via
// Get. Slot updates are safe through publication ordering alone; Reset — the
// one operation that recycles slots, where a reader could pair an old hash
// with a new reference — is guarded by a table-level seqlock: seq is odd
// while a Reset is in progress and readers retry probes that straddle one.
// Iterate, Clone, and the size accessors remain writer-side operations.
type Mem struct {
	seq   atomic.Uint64
	slots []memSlot
	mask  uint64
	count int

	// resetHook, when set, runs inside Reset's write-side critical section
	// (seq odd, slots partially cleared). Tests use it to force a reader to
	// interleave with a Reset and exercise the torn-read retry path.
	resetHook func()
}

// NewMem creates a table with the given capacity (rounded up to a power of
// two, minimum 8).
func NewMem(capacity int) *Mem {
	c := 8
	for c < capacity {
		c <<= 1
	}
	return &Mem{slots: make([]memSlot, c), mask: uint64(c - 1)}
}

// SetResetHook installs fn to run inside every subsequent Reset, after the
// seqlock is taken and the first slot has been cleared. Testing hook; not for
// store code.
func (m *Mem) SetResetHook(fn func()) { m.resetHook = fn }

// Cap returns the slot capacity.
func (m *Mem) Cap() int { return len(m.slots) }

// Len returns the number of occupied slots (tombstones count: they occupy
// index space until compacted away).
func (m *Mem) Len() int { return m.count }

// LoadFactor returns occupied/capacity.
func (m *Mem) LoadFactor() float64 { return float64(m.count) / float64(len(m.slots)) }

// DRAMFootprint returns the table's memory footprint in bytes.
func (m *Mem) DRAMFootprint() int64 { return int64(len(m.slots)) * SlotSize }

// Insert places or updates the entry for hash h, returning the number of
// slots probed. ok is false when the table is completely full and h is not
// present (callers must flush before that happens; load-factor thresholds
// keep them far from it). Writer-side: callers serialize Insert against all
// other mutation.
func (m *Mem) Insert(h uint64, ref uint64) (probes int, ok bool) {
	idx := h & m.mask
	for i := 0; i <= int(m.mask); i++ {
		probes++
		s := &m.slots[idx]
		if s.ref.Load() == 0 {
			// New slot: publish the hash before the reference so a
			// concurrent reader never pairs a live ref with a stale hash.
			s.hash.Store(h)
			s.ref.Store(ref)
			m.count++
			return probes, true
		}
		if s.hash.Load() == h {
			s.ref.Store(ref)
			return probes, true
		}
		idx = (idx + 1) & m.mask
	}
	return probes, false
}

// InsertIfAbsent places the entry only if hash h is not already present.
// It returns true if the entry was inserted. Used by merges that iterate
// newest-first so newer versions win. Writer-side.
func (m *Mem) InsertIfAbsent(h uint64, ref uint64) bool {
	idx := h & m.mask
	for i := 0; i <= int(m.mask); i++ {
		s := &m.slots[idx]
		if s.ref.Load() == 0 {
			s.hash.Store(h)
			s.ref.Store(ref)
			m.count++
			return true
		}
		if s.hash.Load() == h {
			return false
		}
		idx = (idx + 1) & m.mask
	}
	return false
}

// getSpinBudget bounds how many failed seqlock rounds Get spins through
// before yielding the processor to let the interfering Reset finish.
const getSpinBudget = 64

// Get returns the reference for hash h. probes reports the number of slots
// examined, which callers convert into timing charges.
//
// Get is safe to call concurrently with the single writer. A probe that
// overlaps a Reset could pair a pre-Reset hash with a post-Reset reference
// from a recycled slot; the seqlock detects that — seq is odd during a Reset
// and bumped again after — and the probe retries. Retries are bounded by a
// spin budget, after which the reader yields; a Reset clears a few hundred
// slots, so the window is a handful of retries at most.
func (m *Mem) Get(h uint64) (ref uint64, probes int, ok bool) {
	for spin := 0; ; spin++ {
		s0 := m.seq.Load()
		if s0&1 == 0 {
			ref, probes, ok = m.probe(h)
			if m.seq.Load() == s0 {
				return ref, probes, ok
			}
		}
		if spin >= getSpinBudget {
			runtime.Gosched()
		}
	}
}

// probe is the raw linear probe. Readers must wrap it in seqlock validation
// (Get); the writer may call it directly.
func (m *Mem) probe(h uint64) (ref uint64, probes int, ok bool) {
	idx := h & m.mask
	for i := 0; i <= int(m.mask); i++ {
		s := &m.slots[idx]
		probes++
		r := s.ref.Load()
		if r == 0 {
			return 0, probes, false
		}
		if s.hash.Load() == h {
			return r, probes, true
		}
		idx = (idx + 1) & m.mask
	}
	return 0, probes, false
}

// Iterate calls fn for every occupied slot. Iteration order is table order,
// which is meaningless; callers needing recency order track it themselves.
// Writer-side: concurrent Resets would tear the iteration.
func (m *Mem) Iterate(fn func(Slot) bool) {
	for i := range m.slots {
		s := &m.slots[i]
		if r := s.ref.Load(); r != 0 {
			if !fn(Slot{Hash: s.hash.Load(), Ref: r}) {
				return
			}
		}
	}
}

// Reset clears the table for reuse without reallocating. Writer-side; the
// seqlock makes concurrent readers retry probes that straddle the clear.
//
// ChameleonDB's core no longer Resets tables that a published shard view may
// still reference — those are swapped for fresh tables instead — but shared
// tables mutated in place (the ABI) and single-owner baselines still recycle
// through Reset.
func (m *Mem) Reset() {
	m.seq.Add(1) // odd: reset in progress
	for i := range m.slots {
		m.slots[i].ref.Store(0)
		m.slots[i].hash.Store(0)
		if i == 0 && m.resetHook != nil {
			m.resetHook()
		}
	}
	m.count = 0
	m.seq.Add(1) // even: quiescent
}

// Clone returns a deep copy, used by PinK-style DRAM pinning. Writer-side.
func (m *Mem) Clone() *Mem {
	c := &Mem{slots: make([]memSlot, len(m.slots)), mask: m.mask, count: m.count}
	for i := range m.slots {
		c.slots[i].hash.Store(m.slots[i].hash.Load())
		c.slots[i].ref.Store(m.slots[i].ref.Load())
	}
	return c
}

// encodeSlot/decodeSlot define the persisted slot layout (little endian).
func encodeSlot(b []byte, s Slot) {
	binary.LittleEndian.PutUint64(b[0:8], s.Hash)
	binary.LittleEndian.PutUint64(b[8:16], s.Ref)
}

func decodeSlot(b []byte) Slot {
	return Slot{
		Hash: binary.LittleEndian.Uint64(b[0:8]),
		Ref:  binary.LittleEndian.Uint64(b[8:16]),
	}
}
