// Package hashtable implements the fixed-size linear-probing hash tables at
// the heart of ChameleonDB (Section 2.1/2.5): the in-DRAM MemTable and ABI
// use Mem; the immutable persisted sub-level tables and last-level table use
// PmemTable. Both share the 16-byte slot format {key hash, reference}, where
// the reference is a storage-log LSN with a tombstone bit.
//
// Tables are deliberately not extendable: ChameleonDB avoids rehashing by
// bounding each table's load factor at build time (Randomized Load Factors,
// Section 2.5) and relying on compaction, not expansion, to make room.
package hashtable

import "encoding/binary"

// TombstoneBit marks a deleted key in a slot reference.
const TombstoneBit = uint64(1) << 63

// SlotSize is the on-media size of one slot in bytes.
const SlotSize = 16

// Slot is one index entry. Ref == 0 means the slot is empty (LSN 0 is
// reserved by the pmem arena).
type Slot struct {
	Hash uint64
	Ref  uint64
}

// Tombstone reports whether the slot marks a deletion.
func (s Slot) Tombstone() bool { return s.Ref&TombstoneBit != 0 }

// LSN returns the storage-log position the slot references.
func (s Slot) LSN() int64 { return int64(s.Ref &^ TombstoneBit) }

// MakeRef builds a slot reference from an LSN and tombstone flag.
func MakeRef(lsn int64, tombstone bool) uint64 {
	r := uint64(lsn)
	if tombstone {
		r |= TombstoneBit
	}
	return r
}

// Mem is a fixed-capacity linear-probing hash table in DRAM. It is the
// MemTable and ABI building block. Not safe for concurrent use; ChameleonDB
// shards serialize access per shard.
type Mem struct {
	slots []Slot
	mask  uint64
	count int
}

// NewMem creates a table with the given capacity (rounded up to a power of
// two, minimum 8).
func NewMem(capacity int) *Mem {
	c := 8
	for c < capacity {
		c <<= 1
	}
	return &Mem{slots: make([]Slot, c), mask: uint64(c - 1)}
}

// Cap returns the slot capacity.
func (m *Mem) Cap() int { return len(m.slots) }

// Len returns the number of occupied slots (tombstones count: they occupy
// index space until compacted away).
func (m *Mem) Len() int { return m.count }

// LoadFactor returns occupied/capacity.
func (m *Mem) LoadFactor() float64 { return float64(m.count) / float64(len(m.slots)) }

// DRAMFootprint returns the table's memory footprint in bytes.
func (m *Mem) DRAMFootprint() int64 { return int64(len(m.slots)) * SlotSize }

// Insert places or updates the entry for hash h, returning the number of
// slots probed. ok is false when the table is completely full and h is not
// present (callers must flush before that happens; load-factor thresholds
// keep them far from it).
func (m *Mem) Insert(h uint64, ref uint64) (probes int, ok bool) {
	idx := h & m.mask
	for i := 0; i <= int(m.mask); i++ {
		probes++
		s := &m.slots[idx]
		if s.Ref == 0 {
			s.Hash, s.Ref = h, ref
			m.count++
			return probes, true
		}
		if s.Hash == h {
			s.Ref = ref
			return probes, true
		}
		idx = (idx + 1) & m.mask
	}
	return probes, false
}

// InsertIfAbsent places the entry only if hash h is not already present.
// It returns true if the entry was inserted. Used by merges that iterate
// newest-first so newer versions win.
func (m *Mem) InsertIfAbsent(h uint64, ref uint64) bool {
	idx := h & m.mask
	for i := 0; i <= int(m.mask); i++ {
		s := &m.slots[idx]
		if s.Ref == 0 {
			s.Hash, s.Ref = h, ref
			m.count++
			return true
		}
		if s.Hash == h {
			return false
		}
		idx = (idx + 1) & m.mask
	}
	return false
}

// Get returns the reference for hash h. probes reports the number of slots
// examined, which callers convert into timing charges.
func (m *Mem) Get(h uint64) (ref uint64, probes int, ok bool) {
	idx := h & m.mask
	for i := 0; i <= int(m.mask); i++ {
		s := m.slots[idx]
		probes++
		if s.Ref == 0 {
			return 0, probes, false
		}
		if s.Hash == h {
			return s.Ref, probes, true
		}
		idx = (idx + 1) & m.mask
	}
	return 0, probes, false
}

// Iterate calls fn for every occupied slot. Iteration order is table order,
// which is meaningless; callers needing recency order track it themselves.
func (m *Mem) Iterate(fn func(Slot) bool) {
	for _, s := range m.slots {
		if s.Ref != 0 {
			if !fn(s) {
				return
			}
		}
	}
}

// Reset clears the table for reuse without reallocating.
func (m *Mem) Reset() {
	clear(m.slots)
	m.count = 0
}

// Clone returns a deep copy, used by PinK-style DRAM pinning.
func (m *Mem) Clone() *Mem {
	c := &Mem{slots: make([]Slot, len(m.slots)), mask: m.mask, count: m.count}
	copy(c.slots, m.slots)
	return c
}

// encodeSlot/decodeSlot define the persisted slot layout (little endian).
func encodeSlot(b []byte, s Slot) {
	binary.LittleEndian.PutUint64(b[0:8], s.Hash)
	binary.LittleEndian.PutUint64(b[8:16], s.Ref)
}

func decodeSlot(b []byte) Slot {
	return Slot{
		Hash: binary.LittleEndian.Uint64(b[0:8]),
		Ref:  binary.LittleEndian.Uint64(b[8:16]),
	}
}
