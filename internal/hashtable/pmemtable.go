package hashtable

import (
	"fmt"

	"chameleondb/internal/device"
	"chameleondb/internal/pmem"
	"chameleondb/internal/simclock"
)

// PmemTable is an immutable fixed-size linear-probing hash table persisted in
// the pmem arena: an L0..Ln sub-level table or the last-level table of a
// shard. It is built once (a large, 256 B-aligned sequential write, the
// access pattern Optane rewards) and then only read. Concurrent reads are
// safe; tables are never mutated after Seal.
type PmemTable struct {
	arena *pmem.Arena
	off   int64
	cap   int // slots
	count int
	mask  uint64
}

// slotsPerLine is how many 16-byte slots share one 256 B Optane access unit;
// probes within a line after the first are cache hits.
const slotsPerLine = 256 / SlotSize

// NewPmemTable allocates an empty table of the given slot capacity (power of
// two, minimum 8) in the arena.
func NewPmemTable(arena *pmem.Arena, capacity int) (*PmemTable, error) {
	c := 8
	for c < capacity {
		c <<= 1
	}
	off, err := arena.Alloc(int64(c) * SlotSize)
	if err != nil {
		return nil, err
	}
	return &PmemTable{arena: arena, off: off, cap: c, mask: uint64(c - 1)}, nil
}

// OpenPmemTable reattaches to a persisted table at a known offset (recovery
// path). count is restored from the manifest. The geometry comes from durable
// bytes that a torn manifest write could have corrupted, so every field is
// validated before it can index the arena.
func OpenPmemTable(arena *pmem.Arena, off int64, capacity, count int) (*PmemTable, error) {
	if capacity&(capacity-1) != 0 || capacity < 8 {
		return nil, fmt.Errorf("hashtable: invalid persisted capacity %d", capacity)
	}
	if count < 0 || count > capacity {
		return nil, fmt.Errorf("hashtable: persisted count %d out of range for capacity %d", count, capacity)
	}
	if off <= 0 || off+int64(capacity)*SlotSize > arena.Capacity() {
		return nil, fmt.Errorf("hashtable: persisted table [%d, +%d slots] outside arena", off, capacity)
	}
	return &PmemTable{arena: arena, off: off, cap: capacity, count: count, mask: uint64(capacity - 1)}, nil
}

// Cap returns the slot capacity.
func (t *PmemTable) Cap() int { return t.cap }

// Len returns the number of occupied slots.
func (t *PmemTable) Len() int { return t.count }

// Offset returns the table's arena offset, recorded in shard manifests.
func (t *PmemTable) Offset() int64 { return t.off }

// SizeBytes returns the persisted size.
func (t *PmemTable) SizeBytes() int64 { return int64(t.cap) * SlotSize }

// insertVolatile places a slot in the volatile image without timing charges;
// Build batches the cost into one sequential persist, as a real flush does.
func (t *PmemTable) insertVolatile(s Slot) bool {
	idx := s.Hash & t.mask
	for i := 0; i < t.cap; i++ {
		b := t.arena.Bytes(t.off+int64(idx)*SlotSize, SlotSize)
		cur := decodeSlot(b)
		if cur.Ref == 0 {
			encodeSlot(b, s)
			t.count++
			return true
		}
		if cur.Hash == s.Hash {
			return false // caller iterates newest-first; keep the newer entry
		}
		idx = (idx + 1) & t.mask
	}
	return false
}

// BuildPmemTable constructs and persists a table from src. src must yield
// entries newest-first when it contains duplicate hashes: the first
// occurrence of a hash wins. The build charges the DRAM-side staging cost
// per slot and one sequential persist of the whole table — the 256 B-aligned
// batched write that gives ChameleonDB write amplification 1/f per table
// (Section 2.5).
func BuildPmemTable(c *simclock.Clock, arena *pmem.Arena, capacity int, src func(yield func(Slot) bool)) (*PmemTable, error) {
	t, err := NewPmemTable(arena, capacity)
	if err != nil {
		return nil, err
	}
	overflow := false
	src(func(s Slot) bool {
		c.Advance(device.CostCompactionPerSlot) // staging-buffer insert
		if s.Ref == 0 {
			return true
		}
		if t.count >= t.cap {
			overflow = true
			return false
		}
		t.insertVolatile(s)
		return true
	})
	if overflow {
		arena.Free(t.off, t.SizeBytes())
		return nil, fmt.Errorf("hashtable: build overflow (cap %d)", t.cap)
	}
	arena.Persist(c, t.off, t.SizeBytes())
	return t, nil
}

// Get probes for hash h, charging one random pmem read per 256 B line
// touched and a small CPU cost per additional slot within a line — the probe
// cost model behind the paper's Figure 2 and the last-level latencies of
// Figure 13.
func (t *PmemTable) Get(c *simclock.Clock, h uint64) (Slot, bool) {
	idx := h & t.mask
	lastLine := int64(-1)
	for i := 0; i < t.cap; i++ {
		line := int64(idx) / slotsPerLine
		if line != lastLine {
			t.arena.ReadRandom(c, t.off+line*256, 256)
			lastLine = line
		} else {
			c.Advance(device.CostSlotProbe)
		}
		s := decodeSlot(t.arena.Bytes(t.off+int64(idx)*SlotSize, SlotSize))
		if s.Ref == 0 {
			return Slot{}, false
		}
		if s.Hash == h {
			return s, true
		}
		idx = (idx + 1) & t.mask
	}
	return Slot{}, false
}

// Iterate calls fn for every occupied slot without timing charges; callers
// performing a compaction charge one ReadSeq of the table instead (or no
// read at all when merging from the ABI, Section 2.2/Figure 8).
func (t *PmemTable) Iterate(fn func(Slot) bool) {
	for i := 0; i < t.cap; i++ {
		s := decodeSlot(t.arena.Bytes(t.off+int64(i)*SlotSize, SlotSize))
		if s.Ref != 0 {
			if !fn(s) {
				return
			}
		}
	}
}

// ChargeScan books the sequential read of the whole table used by
// Pmem-resident compactions.
func (t *PmemTable) ChargeScan(c *simclock.Clock) {
	t.arena.ReadSeq(c, t.off, t.SizeBytes())
}

// Release returns the table's space to the arena.
func (t *PmemTable) Release() {
	t.arena.Free(t.off, t.SizeBytes())
}
