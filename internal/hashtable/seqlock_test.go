package hashtable

import (
	"sync"
	"testing"
	"time"
)

// TestGetBlocksAcrossReset forces a reader to interleave with an in-flight
// Reset via the reset hook: the hook parks the writer mid-clear (seqlock
// held, slots partially zeroed), and a Get started in that window must not
// return until the Reset completes — and must then report the post-Reset
// state, never a torn mix of old hash and cleared reference.
func TestGetBlocksAcrossReset(t *testing.T) {
	m := NewMem(64)
	h := uint64(0xdeadbeef)
	m.Insert(h, MakeRef(100, false))

	started := make(chan struct{})
	release := make(chan struct{})
	m.SetResetHook(func() {
		close(started)
		<-release
	})
	resetDone := make(chan struct{})
	go func() {
		m.Reset()
		close(resetDone)
	}()
	<-started

	got := make(chan bool, 1)
	go func() {
		_, _, ok := m.Get(h)
		got <- ok
	}()
	select {
	case <-got:
		t.Fatal("Get returned while a Reset held the seqlock")
	case <-time.After(20 * time.Millisecond):
	}

	close(release)
	<-resetDone
	if ok := <-got; ok {
		t.Fatal("entry still visible after Reset")
	}
}

// TestGetNeverTearsAcrossResetCycles hammers a single slot with alternating
// Reset+Insert cycles of two keys that collide on the same slot index, while
// readers continuously probe one of them. A torn read would pair key A's
// probe with key B's freshly recycled slot contents; the only legal results
// are A's reference or a miss. Run under -race this also proves the
// publication ordering is a happens-before edge, not a lucky interleaving.
func TestGetNeverTearsAcrossResetCycles(t *testing.T) {
	m := NewMem(8)
	mask := uint64(m.Cap() - 1)
	// Two hashes landing on the same slot.
	hA := uint64(0x1111_0003)
	hB := hA + (mask + 1)
	const refA, refB = uint64(100), uint64(200)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ref, _, ok := m.Get(hA)
				if ok && ref != refA {
					t.Errorf("torn read: hash %#x returned ref %d, want %d or miss", hA, ref, refA)
					return
				}
			}
		}()
	}
	for i := 0; i < 5000; i++ {
		m.Reset()
		if i%2 == 0 {
			m.Insert(hA, refA)
		} else {
			m.Insert(hB, refB)
		}
	}
	close(stop)
	wg.Wait()
}

// TestConcurrentReadersSeeInsertedEntries checks the single-writer /
// multi-reader publication ordering without Resets: once Insert returns, all
// readers must find the entry, and a reader racing the insert must see
// either a miss or the complete slot.
func TestConcurrentReadersSeeInsertedEntries(t *testing.T) {
	m := NewMem(1024)
	const n = 512
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				h := seed
				ref, _, ok := m.Get(h)
				if ok && ref != h*7 {
					t.Errorf("hash %#x returned ref %d, want %d", h, ref, h*7)
					return
				}
				seed = seed%n + 1
			}
		}(uint64(r + 1))
	}
	for i := uint64(1); i <= n; i++ {
		m.Insert(i, i*7)
	}
	// After the writer is done every entry must be visible.
	for i := uint64(1); i <= n; i++ {
		ref, _, ok := m.Get(i)
		if !ok || ref != i*7 {
			t.Fatalf("hash %#x: got (%d,%v), want (%d,true)", i, ref, ok, i*7)
		}
	}
	close(stop)
	wg.Wait()
}
