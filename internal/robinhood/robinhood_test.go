package robinhood

import (
	"math/rand"
	"testing"
	"testing/quick"

	"chameleondb/internal/xhash"
)

func TestBasicOps(t *testing.T) {
	tb := New(16)
	if _, _, ok := tb.Get(1); ok {
		t.Fatal("found key in empty table")
	}
	tb.Insert(1, 100)
	ref, probes, ok := tb.Get(1)
	if !ok || ref != 100 || probes < 1 {
		t.Fatalf("Get = %d %d %v", ref, probes, ok)
	}
	tb.Insert(1, 200) // update
	if tb.Len() != 1 {
		t.Fatalf("update grew table: %d", tb.Len())
	}
	ref, _, _ = tb.Get(1)
	if ref != 200 {
		t.Fatal("update not visible")
	}
	if _, ok := tb.Delete(1); !ok {
		t.Fatal("delete failed")
	}
	if tb.Len() != 0 {
		t.Fatal("delete did not decrement count")
	}
	if _, ok := tb.Delete(1); ok {
		t.Fatal("double delete succeeded")
	}
}

func TestGrowthPreservesEntries(t *testing.T) {
	tb := New(16)
	const n = 10000
	sawGrow := false
	for i := uint64(0); i < n; i++ {
		_, grown := tb.Insert(xhash.Uint64(i), i+1)
		if grown > 0 {
			sawGrow = true
		}
	}
	if !sawGrow {
		t.Fatal("table never grew")
	}
	if tb.Len() != n {
		t.Fatalf("Len = %d, want %d", tb.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		ref, _, ok := tb.Get(xhash.Uint64(i))
		if !ok || ref != i+1 {
			t.Fatalf("entry %d lost after growth", i)
		}
	}
}

func TestBackwardShiftDeleteKeepsCluster(t *testing.T) {
	tb := New(64)
	// Build a probe cluster: several keys with the same home slot.
	base := uint64(5)
	keys := []uint64{base, base + 64, base + 128, base + 192}
	for i, k := range keys {
		tb.Insert(k, uint64(i)+1)
	}
	// Delete the middle of the cluster; the rest must stay reachable.
	tb.Delete(keys[1])
	for i, k := range keys {
		if i == 1 {
			if _, _, ok := tb.Get(k); ok {
				t.Fatal("deleted key still present")
			}
			continue
		}
		ref, _, ok := tb.Get(k)
		if !ok || ref != uint64(i)+1 {
			t.Fatalf("cluster member %d unreachable after delete", i)
		}
	}
}

func TestIterateAndReset(t *testing.T) {
	tb := New(16)
	for i := uint64(0); i < 10; i++ {
		tb.Insert(xhash.Uint64(i), i+1)
	}
	var sum uint64
	tb.Iterate(func(h, ref uint64) bool { sum += ref; return true })
	if sum != 55 {
		t.Fatalf("iterate sum = %d, want 55", sum)
	}
	n := 0
	tb.Iterate(func(h, ref uint64) bool { n++; return false })
	if n != 1 {
		t.Fatal("iterate did not stop early")
	}
	tb.Reset()
	if tb.Len() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestFootprintGrows(t *testing.T) {
	tb := New(16)
	before := tb.DRAMFootprint()
	for i := uint64(0); i < 1000; i++ {
		tb.Insert(xhash.Uint64(i), 1)
	}
	if tb.DRAMFootprint() <= before {
		t.Fatal("footprint should grow with the table")
	}
}

// Property: the table matches a map oracle under random insert/delete/get.
func TestMatchesMapOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tb := New(16)
		oracle := map[uint64]uint64{}
		for op := 0; op < 3000; op++ {
			h := xhash.Uint64(uint64(r.Intn(500)))
			switch r.Intn(3) {
			case 0, 1:
				ref := uint64(r.Intn(10000)) + 1
				tb.Insert(h, ref)
				oracle[h] = ref
			case 2:
				_, ok := tb.Delete(h)
				_, want := oracle[h]
				if ok != want {
					return false
				}
				delete(oracle, h)
			}
		}
		if tb.Len() != len(oracle) {
			return false
		}
		for h, want := range oracle {
			got, _, ok := tb.Get(h)
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
