// Package robinhood implements the resizable robin-hood hash table used as
// Dram-Hash's in-DRAM index, mirroring the open-source robin_hood map the
// paper uses for that baseline (Section 3.2). Robin-hood hashing minimizes
// probe-length variance by displacing "rich" entries (short distance from
// home) in favour of "poor" ones, and deletes with backward shifting so no
// tombstones accumulate.
//
// The table is untimed; the Dram-Hash store converts the returned probe and
// rehash counts into CPU/DRAM charges, including the multi-second rehash
// spikes responsible for Dram-Hash's worst-case put latency in Table 2.
package robinhood

const maxLoadFactor = 0.8

// Table maps 64-bit key hashes to 64-bit references.
type Table struct {
	hashes []uint64
	refs   []uint64
	used   []bool
	mask   uint64
	count  int
}

// New creates a table with at least the given capacity.
func New(capacity int) *Table {
	c := 16
	for c < capacity {
		c <<= 1
	}
	return &Table{
		hashes: make([]uint64, c),
		refs:   make([]uint64, c),
		used:   make([]bool, c),
		mask:   uint64(c - 1),
	}
}

// Len returns the number of entries.
func (t *Table) Len() int { return t.count }

// Cap returns the current slot capacity.
func (t *Table) Cap() int { return len(t.hashes) }

// DRAMFootprint returns the table's memory use in bytes.
func (t *Table) DRAMFootprint() int64 { return int64(len(t.hashes)) * 17 }

func (t *Table) dist(idx int) int {
	home := t.hashes[idx] & t.mask
	return int((uint64(idx) - home) & t.mask)
}

// Insert adds or updates an entry. probes is the number of slots examined;
// grown reports how many entries were rehashed if the insert triggered a
// resize (0 otherwise). Callers convert both into time charges.
func (t *Table) Insert(h, ref uint64) (probes, grown int) {
	if float64(t.count+1) > maxLoadFactor*float64(len(t.hashes)) {
		grown = t.grow()
	}
	probes = t.insertNoGrow(h, ref)
	return probes, grown
}

func (t *Table) insertNoGrow(h, ref uint64) (probes int) {
	idx := int(h & t.mask)
	d := 0
	for {
		probes++
		if !t.used[idx] {
			t.hashes[idx], t.refs[idx], t.used[idx] = h, ref, true
			t.count++
			return probes
		}
		if t.hashes[idx] == h {
			t.refs[idx] = ref
			return probes
		}
		if existing := t.dist(idx); existing < d {
			// Rob the rich: displace the closer-to-home entry.
			t.hashes[idx], h = h, t.hashes[idx]
			t.refs[idx], ref = ref, t.refs[idx]
			d = existing
		}
		idx = int(uint64(idx+1) & t.mask)
		d++
	}
}

func (t *Table) grow() int {
	old := *t
	c := len(t.hashes) * 2
	t.hashes = make([]uint64, c)
	t.refs = make([]uint64, c)
	t.used = make([]bool, c)
	t.mask = uint64(c - 1)
	t.count = 0
	moved := 0
	for i, u := range old.used {
		if u {
			t.insertNoGrow(old.hashes[i], old.refs[i])
			moved++
		}
	}
	return moved
}

// Get returns the reference for h and the probe count.
func (t *Table) Get(h uint64) (ref uint64, probes int, ok bool) {
	idx := int(h & t.mask)
	d := 0
	for {
		probes++
		if !t.used[idx] {
			return 0, probes, false
		}
		if t.hashes[idx] == h {
			return t.refs[idx], probes, true
		}
		if t.dist(idx) < d {
			// An entry closer to home than our distance means h is absent:
			// robin-hood ordering guarantees it would have been here.
			return 0, probes, false
		}
		idx = int(uint64(idx+1) & t.mask)
		d++
	}
}

// Delete removes h using backward shifting and reports probes and success.
func (t *Table) Delete(h uint64) (probes int, ok bool) {
	idx := int(h & t.mask)
	d := 0
	for {
		probes++
		if !t.used[idx] {
			return probes, false
		}
		if t.hashes[idx] == h {
			break
		}
		if t.dist(idx) < d {
			return probes, false
		}
		idx = int(uint64(idx+1) & t.mask)
		d++
	}
	// Backward-shift the following cluster.
	for {
		next := int(uint64(idx+1) & t.mask)
		if !t.used[next] || t.dist(next) == 0 {
			t.used[idx] = false
			t.hashes[idx], t.refs[idx] = 0, 0
			t.count--
			return probes, true
		}
		t.hashes[idx], t.refs[idx] = t.hashes[next], t.refs[next]
		idx = next
		probes++
	}
}

// Iterate calls fn for each entry until fn returns false.
func (t *Table) Iterate(fn func(h, ref uint64) bool) {
	for i, u := range t.used {
		if u {
			if !fn(t.hashes[i], t.refs[i]) {
				return
			}
		}
	}
}

// Reset clears the table, keeping the allocation.
func (t *Table) Reset() {
	clear(t.hashes)
	clear(t.refs)
	clear(t.used)
	t.count = 0
}
