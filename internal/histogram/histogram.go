// Package histogram records latency samples in logarithmic buckets and
// reports percentiles and CDF series, the measurement instrument behind the
// paper's Figures 11/13/16 and Tables 2/3.
//
// Buckets have ~3% relative width (16 sub-buckets per power of two), which is
// plenty for the two-significant-figure latencies the paper reports, and
// recording is a single atomic increment so the instrument does not perturb
// the virtual-time measurements.
package histogram

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync/atomic"
)

const (
	subBucketBits = 4
	subBuckets    = 1 << subBucketBits // 16 sub-buckets per octave
	octaves       = 44                 // covers up to ~2^44 ns (~4.8 hours)
	numBuckets    = octaves * subBuckets
)

// Histogram is a fixed-size log-bucketed histogram of non-negative int64
// samples (nanoseconds). The zero value is ready to use. Safe for concurrent
// recording.
type Histogram struct {
	counts [numBuckets]atomic.Int64
	total  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

func bucketIndex(v int64) int {
	if v < subBuckets {
		return int(v) // exact buckets for tiny values
	}
	exp := 63 - bits.LeadingZeros64(uint64(v)) // floor(log2 v), >= subBucketBits
	sub := int(v>>(uint(exp)-subBucketBits)) & (subBuckets - 1)
	idx := (exp-subBucketBits+1)*subBuckets + sub
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	return idx
}

// bucketValue returns a representative (upper-edge) value for bucket i.
func bucketValue(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	exp := i/subBuckets + subBucketBits - 1
	sub := i % subBuckets
	return (int64(subBuckets+sub) + 1) << (uint(exp) - subBucketBits)
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Mean returns the average sample, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Sum returns the total of all recorded samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest recorded sample.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Percentile returns the value at quantile q in [0, 100].
func (h *Histogram) Percentile(q float64) int64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var seen int64
	for i := 0; i < numBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			v := bucketValue(i)
			if m := h.max.Load(); v > m {
				v = m
			}
			return v
		}
	}
	return h.max.Load()
}

// Tail is the standard set of tail percentiles used by Tables 2 and 3.
type Tail struct {
	P50, P99, P999, P9999, Max int64
}

// Tails returns P50/P99/P99.9/P99.99/Max.
func (h *Histogram) Tails() Tail {
	return Tail{
		P50:   h.Percentile(50),
		P99:   h.Percentile(99),
		P999:  h.Percentile(99.9),
		P9999: h.Percentile(99.99),
		Max:   h.Max(),
	}
}

func (t Tail) String() string {
	return fmt.Sprintf("p50=%d p99=%d p99.9=%d p99.99=%d max=%d", t.P50, t.P99, t.P999, t.P9999, t.Max)
}

// CDFPoint is one point of a cumulative distribution series.
type CDFPoint struct {
	Value    int64   // latency (ns)
	Fraction float64 // cumulative fraction of samples <= Value
}

// CDF returns the cumulative distribution over non-empty buckets, suitable
// for plotting the paper's latency CDF figures.
func (h *Histogram) CDF() []CDFPoint {
	n := h.total.Load()
	if n == 0 {
		return nil
	}
	var pts []CDFPoint
	var seen int64
	for i := 0; i < numBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		pts = append(pts, CDFPoint{Value: bucketValue(i), Fraction: float64(seen) / float64(n)})
	}
	return pts
}

// Merge adds every sample of other into h. Not atomic with respect to
// concurrent recording on other.
func (h *Histogram) Merge(other *Histogram) {
	for i := 0; i < numBuckets; i++ {
		if c := other.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.total.Add(other.total.Load())
	h.sum.Add(other.sum.Load())
	for {
		m, o := h.max.Load(), other.max.Load()
		if o <= m || h.max.CompareAndSwap(m, o) {
			break
		}
	}
}

// Reset clears the histogram. Not safe concurrently with Record.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.total.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// Windowed tracks a sliding estimate of a percentile over recent samples,
// used by ChameleonDB's dynamic Get-Protect Mode (Section 2.4) to detect
// tail-latency spikes: it keeps a ring of recent samples and reports the
// requested percentile over the current window.
type Windowed struct {
	ring    []int64
	pos     int
	full    bool
	scratch []int64
}

// NewWindowed creates a window of n samples.
func NewWindowed(n int) *Windowed {
	if n < 8 {
		n = 8
	}
	return &Windowed{ring: make([]int64, n), scratch: make([]int64, n)}
}

// Record adds a sample. Not safe for concurrent use; callers shard per
// worker and merge, or guard externally.
func (w *Windowed) Record(v int64) {
	w.ring[w.pos] = v
	w.pos++
	if w.pos == len(w.ring) {
		w.pos = 0
		w.full = true
	}
}

// Len returns the number of valid samples in the window.
func (w *Windowed) Len() int {
	if w.full {
		return len(w.ring)
	}
	return w.pos
}

// Percentile returns quantile q in [0,100] over the window, or 0 if empty.
func (w *Windowed) Percentile(q float64) int64 {
	n := w.Len()
	if n == 0 {
		return 0
	}
	s := w.scratch[:n]
	copy(s, w.ring[:n])
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return percentileOf(s, q)
}

func percentileOf(sorted []int64, q float64) int64 {
	n := len(sorted)
	rank := int(math.Ceil(q/100*float64(n))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return sorted[rank]
}

// AtomicWindowed is the concurrent counterpart of Windowed: a lock-free
// sliding window of recent samples shared by many recording goroutines.
// Record is a fetch-add plus one atomic store, so it is safe on a lock-free
// hot path (ChameleonDB's GPM latency sampling). Percentile copies the ring
// and sorts; samples recorded concurrently with a Percentile may or may not
// be included, which is fine for a spike detector.
type AtomicWindowed struct {
	ring []atomic.Int64
	n    atomic.Int64
}

// NewAtomicWindowed creates a concurrent window of n samples.
func NewAtomicWindowed(n int) *AtomicWindowed {
	if n < 8 {
		n = 8
	}
	return &AtomicWindowed{ring: make([]atomic.Int64, n)}
}

// Record adds a sample. Safe for concurrent use.
func (w *AtomicWindowed) Record(v int64) {
	i := w.n.Add(1) - 1
	w.ring[i%int64(len(w.ring))].Store(v)
}

// Len returns the number of valid samples in the window.
func (w *AtomicWindowed) Len() int {
	n := w.n.Load()
	if n > int64(len(w.ring)) {
		return len(w.ring)
	}
	return int(n)
}

// Percentile returns quantile q in [0,100] over the window, or 0 if empty.
// It allocates a copy of the window; callers invoke it rarely (once per
// sampling epoch), never per operation.
func (w *AtomicWindowed) Percentile(q float64) int64 {
	n := w.Len()
	if n == 0 {
		return 0
	}
	s := make([]int64, n)
	for i := range s {
		s[i] = w.ring[i].Load()
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return percentileOf(s, q)
}

// Reset clears the window. Not safe concurrently with Record.
func (w *AtomicWindowed) Reset() {
	for i := range w.ring {
		w.ring[i].Store(0)
	}
	w.n.Store(0)
}
