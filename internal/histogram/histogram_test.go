package histogram

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	if h.CDF() != nil {
		t.Fatal("empty histogram CDF should be nil")
	}
}

func TestExactSmallValues(t *testing.T) {
	var h Histogram
	for v := int64(0); v < 16; v++ {
		h.Record(v)
	}
	if h.Count() != 16 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Max() != 15 {
		t.Fatalf("Max = %d", h.Max())
	}
	if got := h.Percentile(100); got != 15 {
		t.Fatalf("P100 = %d, want 15", got)
	}
}

func TestPercentileAccuracy(t *testing.T) {
	var h Histogram
	// Uniform 1..10000: P50 ~ 5000, P99 ~ 9900 within bucket error (~7%).
	for v := int64(1); v <= 10000; v++ {
		h.Record(v)
	}
	checks := []struct {
		q    float64
		want int64
	}{{50, 5000}, {90, 9000}, {99, 9900}}
	for _, c := range checks {
		got := h.Percentile(c.q)
		if got < c.want*92/100 || got > c.want*108/100 {
			t.Errorf("P%.0f = %d, want ~%d", c.q, got, c.want)
		}
	}
	mean := h.Mean()
	if mean < 4800 || mean > 5200 {
		t.Errorf("Mean = %v, want ~5000", mean)
	}
}

func TestNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatal("negative samples should clamp to 0")
	}
}

func TestCDFMonotonic(t *testing.T) {
	var h Histogram
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 10000; i++ {
		h.Record(r.Int63n(1_000_000))
	}
	cdf := h.CDF()
	if len(cdf) == 0 {
		t.Fatal("empty CDF")
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value <= cdf[i-1].Value {
			t.Fatalf("CDF values not increasing at %d", i)
		}
		if cdf[i].Fraction < cdf[i-1].Fraction {
			t.Fatalf("CDF fractions not monotone at %d", i)
		}
	}
	last := cdf[len(cdf)-1].Fraction
	if last < 0.9999 || last > 1.0001 {
		t.Fatalf("CDF should end at 1.0, got %v", last)
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	for i := int64(0); i < 100; i++ {
		a.Record(100)
		b.Record(10000)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Max() != 10000 {
		t.Fatalf("merged max = %d", a.Max())
	}
	p50 := a.Percentile(50)
	if p50 > 200 {
		t.Fatalf("merged P50 = %d, want ~100", p50)
	}
}

func TestConcurrentRecord(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 10000; i++ {
				h.Record(r.Int63n(1 << 30))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != 80000 {
		t.Fatalf("Count = %d, want 80000", h.Count())
	}
}

func TestTails(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Record(i)
	}
	tl := h.Tails()
	if tl.P50 > tl.P99 || tl.P99 > tl.P999 || tl.P999 > tl.P9999 || tl.P9999 > tl.Max {
		t.Fatalf("tails not monotone: %+v", tl)
	}
	if tl.Max != 1000 {
		t.Fatalf("Max = %d", tl.Max)
	}
	if tl.String() == "" {
		t.Fatal("empty Tail string")
	}
}

func TestReset(t *testing.T) {
	var h Histogram
	h.Record(55)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear histogram")
	}
}

// Property: percentile bucket error is bounded by one sub-bucket (~1/16
// relative) for any sample value.
func TestBucketRelativeError(t *testing.T) {
	f := func(v int64) bool {
		if v < 0 {
			v = -v
		}
		v %= 1 << 40
		var h Histogram
		h.Record(v)
		got := h.Percentile(50)
		if v < 16 {
			return got == v
		}
		diff := got - v
		if diff < 0 {
			diff = -diff
		}
		return float64(diff) <= float64(v)/8 // generous 2-sub-bucket bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWindowedPercentile(t *testing.T) {
	w := NewWindowed(100)
	if w.Percentile(99) != 0 {
		t.Fatal("empty window should report 0")
	}
	for i := int64(1); i <= 50; i++ {
		w.Record(i)
	}
	if got := w.Percentile(100); got != 50 {
		t.Fatalf("P100 = %d, want 50", got)
	}
	if got := w.Percentile(50); got < 24 || got > 26 {
		t.Fatalf("P50 = %d, want ~25", got)
	}
	// Overflow the ring: old samples must be evicted.
	for i := int64(1000); i < 1100; i++ {
		w.Record(i)
	}
	if got := w.Percentile(1); got < 1000 {
		t.Fatalf("old samples not evicted: P1 = %d", got)
	}
	if w.Len() != 100 {
		t.Fatalf("Len = %d, want 100", w.Len())
	}
}

func TestWindowedMinSize(t *testing.T) {
	w := NewWindowed(1)
	for i := int64(0); i < 20; i++ {
		w.Record(i)
	}
	if w.Len() != 8 {
		t.Fatalf("minimum window size should be 8, got %d", w.Len())
	}
}
