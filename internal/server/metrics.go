package server

import (
	"sync/atomic"

	"chameleondb/internal/histogram"
	"chameleondb/internal/obs"
)

// cmdKind enumerates the commands the server serves; it indexes the
// per-command counters and picks the wire-latency histogram.
type cmdKind int

const (
	cmdGet cmdKind = iota
	cmdSet
	cmdDel
	cmdExists
	cmdPing
	cmdInfo
	cmdFlushAll
	cmdQuit
	cmdCommand
	cmdMGet
	cmdMSet
	cmdIncr
	cmdIncrBy
	cmdScan
	cmdMulti
	cmdExec
	cmdDiscard
	cmdReplicaOf
	cmdWait
	cmdUnknown
	numCmdKinds
)

func (k cmdKind) String() string {
	switch k {
	case cmdGet:
		return "get"
	case cmdSet:
		return "set"
	case cmdDel:
		return "del"
	case cmdExists:
		return "exists"
	case cmdPing:
		return "ping"
	case cmdInfo:
		return "info"
	case cmdFlushAll:
		return "flushall"
	case cmdQuit:
		return "quit"
	case cmdCommand:
		return "command"
	case cmdMGet:
		return "mget"
	case cmdMSet:
		return "mset"
	case cmdIncr:
		return "incr"
	case cmdIncrBy:
		return "incrby"
	case cmdScan:
		return "scan"
	case cmdMulti:
		return "multi"
	case cmdExec:
		return "exec"
	case cmdDiscard:
		return "discard"
	case cmdReplicaOf:
		return "replicaof"
	case cmdWait:
		return "wait"
	}
	return "unknown"
}

// equalFoldUpper reports whether b equals upper ASCII-case-insensitively;
// upper must already be uppercase. No allocation — this is how the dispatch
// loop avoids a strings.ToUpper per command.
func equalFoldUpper(b []byte, upper string) bool {
	if len(b) != len(upper) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != upper[i] {
			return false
		}
	}
	return true
}

func commandKind(name []byte) cmdKind {
	switch {
	case equalFoldUpper(name, "GET"):
		return cmdGet
	case equalFoldUpper(name, "SET"):
		return cmdSet
	case equalFoldUpper(name, "DEL"):
		return cmdDel
	case equalFoldUpper(name, "EXISTS"):
		return cmdExists
	case equalFoldUpper(name, "PING"):
		return cmdPing
	case equalFoldUpper(name, "INFO"):
		return cmdInfo
	case equalFoldUpper(name, "FLUSHALL"):
		return cmdFlushAll
	case equalFoldUpper(name, "QUIT"):
		return cmdQuit
	case equalFoldUpper(name, "COMMAND"):
		return cmdCommand
	case equalFoldUpper(name, "MGET"):
		return cmdMGet
	case equalFoldUpper(name, "MSET"):
		return cmdMSet
	case equalFoldUpper(name, "INCR"):
		return cmdIncr
	case equalFoldUpper(name, "INCRBY"):
		return cmdIncrBy
	case equalFoldUpper(name, "SCAN"):
		return cmdScan
	case equalFoldUpper(name, "MULTI"):
		return cmdMulti
	case equalFoldUpper(name, "EXEC"):
		return cmdExec
	case equalFoldUpper(name, "DISCARD"):
		return cmdDiscard
	case equalFoldUpper(name, "REPLICAOF"), equalFoldUpper(name, "SLAVEOF"):
		return cmdReplicaOf
	case equalFoldUpper(name, "WAIT"):
		return cmdWait
	}
	return cmdUnknown
}

// wireHist buckets the per-command latency histograms: the mutating commands
// and gets get their own tails (group commit shows up only on writes), the
// rest share one.
func wireHistIndex(k cmdKind) int {
	switch k {
	case cmdGet:
		return 0
	case cmdSet:
		return 1
	case cmdDel:
		return 2
	case cmdScan:
		return 3
	}
	return 4
}

var wireHistNames = [5]string{"get", "set", "del", "scan", "other"}

// Metrics is the serving layer's observability block. It registers into the
// store's own registry when the store exposes one (obs.Provider), so wire
// metrics and engine metrics come out of the same /stats.json and /metrics
// scrape; every name carries the server_ prefix to keep the namespaces
// apart.
type Metrics struct {
	ConnsAccepted  atomic.Int64
	ConnsRejected  atomic.Int64
	ConnsClosed    atomic.Int64
	ConnsOpen      atomic.Int64
	CmdsInFlight   atomic.Int64 // decoded, reply not yet on the wire
	CmdsProcessed  atomic.Int64
	ProtocolErrors atomic.Int64
	StoreErrors    atomic.Int64 // engine errors surfaced as -ERR replies

	GroupCommits       atomic.Int64 // batcher flush rounds
	GroupCommitFlushes atomic.Int64 // sessions flushed across all rounds

	PerCmd [numCmdKinds]atomic.Int64

	// Wire is wall-clock latency from command decode to its reply reaching
	// the socket, including any group-commit wait — what a loopback client
	// observes minus its own RTT share.
	Wire [5]histogram.Histogram
	// PipelineDepth is the observed commands-per-batch distribution, the
	// direct measure of how much pipelining clients actually achieve.
	PipelineDepth histogram.Histogram
	// CommitBatch is the sessions-per-group-commit distribution, the direct
	// measure of cross-connection flush coalescing.
	CommitBatch histogram.Histogram
}

// Register wires every metric into r under server_-prefixed names.
func (m *Metrics) Register(r *obs.Registry) {
	r.CounterFunc("server_conns_accepted", m.ConnsAccepted.Load)
	r.CounterFunc("server_conns_rejected", m.ConnsRejected.Load)
	r.CounterFunc("server_conns_closed", m.ConnsClosed.Load)
	r.CounterFunc("server_cmds_processed", m.CmdsProcessed.Load)
	r.CounterFunc("server_protocol_errors", m.ProtocolErrors.Load)
	r.CounterFunc("server_store_errors", m.StoreErrors.Load)
	r.CounterFunc("server_group_commits", m.GroupCommits.Load)
	r.CounterFunc("server_group_commit_flushes", m.GroupCommitFlushes.Load)
	for k := cmdKind(0); k < numCmdKinds; k++ {
		r.CounterFunc("server_cmd_"+k.String(), m.PerCmd[k].Load)
	}
	r.GaugeFunc("server_conns_open", m.ConnsOpen.Load)
	r.GaugeFunc("server_cmds_inflight", m.CmdsInFlight.Load)
	for i := range m.Wire {
		r.Histogram("server_wire_ns_"+wireHistNames[i], &m.Wire[i])
	}
	r.Histogram("server_pipeline_depth", &m.PipelineDepth)
	r.Histogram("server_commit_batch", &m.CommitBatch)
}
