package server

import "testing"

func TestGlobMatch(t *testing.T) {
	cases := []struct {
		pattern, key string
		want         bool
	}{
		{"*", "", true},
		{"*", "anything", true},
		{"", "", true},
		{"", "x", false},
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"abc", "ab", false},
		{"a*", "a", true},
		{"a*", "abc", true},
		{"a*", "ba", false},
		{"*c", "abc", true},
		{"a*c", "abc", true},
		{"a*c", "ac", true},
		{"a*c", "abd", false},
		{"a**c", "abc", true},
		{"user:*", "user:42", true},
		{"user:*", "session:42", false},
		{"?", "a", true},
		{"?", "", false},
		{"?", "ab", false},
		{"a?c", "abc", true},
		{"a?c", "ac", false},
		{"h?llo", "hello", true},
		{"h?llo", "hallo", true},
		{"h*llo*", "hillllo!", true},
		{"h*llo", "hillllx", false},
		{"[abc]", "b", true},
		{"[abc]", "d", false},
		{"[a-c]", "b", true},
		{"[a-c]", "d", false},
		{"[c-a]", "b", true}, // reversed range still matches (Redis swaps)
		{"[a-]", "a", true},  // '-' before ']' is still a range: ']'..'a' after swap
		{"[a-]", "]", true},
		{"[a-]", "^", true},  // between ']' (0x5D) and 'a' (0x61)
		{"[a-]", "-", false}, // not a literal '-' (Redis parses the range)
		{"[a-]", "b", false},
		{"[-a]", "-", true}, // leading '-' is a literal (no range start before it)
		{"[-a]", "a", true},
		{"[-a]", "b", false},
		{"[^abc]", "d", true},
		{"[^abc]", "a", false},
		{"h[ae]llo", "hello", true},
		{"h[ae]llo", "hillo", false},
		{"[]", "x", false},   // empty class matches nothing
		{"[abc", "b", true},  // unterminated class: rest of pattern is the class
		{"[abc", "d", false},
		{"[\\]]", "]", true}, // escaped ] inside class
		{"\\*", "*", true},   // escaped star is literal
		{"\\*", "x", false},
		{"\\?", "?", true},
		{"a\\", "a\\", true}, // trailing backslash matches itself
		{"key:[0-9]*", "key:7abc", true},
		{"key:[0-9]*", "key:abc", false},
		{"*:*", "a:b", true},
		{"*:*", "ab", false},
	}
	for _, tc := range cases {
		if got := globMatch([]byte(tc.pattern), []byte(tc.key)); got != tc.want {
			t.Errorf("globMatch(%q, %q) = %v, want %v", tc.pattern, tc.key, got, tc.want)
		}
	}
}
