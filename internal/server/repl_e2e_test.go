package server

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"chameleondb/internal/resp"
)

// buildCtlBinary compiles cmd/chameleonctl into dir.
func buildCtlBinary(t *testing.T, dir string) string {
	t.Helper()
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}
	bin := filepath.Join(dir, "chameleonctl")
	cmd := exec.Command(goTool, "build", "-o", bin, "chameleondb/cmd/chameleonctl")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build chameleonctl: %v\n%s", err, out)
	}
	return bin
}

// replProc is a chameleon-server child with replication enabled.
type replProc struct {
	cmd      *exec.Cmd
	addr     string // RESP listen address
	replAddr string // log-shipping listen address
	out      *bytes.Buffer
}

// startReplProc execs the server with replication flags and parses both the
// RESP banner and the replication banner. The replication line prints only
// after a replica's synchronous bootstrap, so a returned proc is ready.
func startReplProc(t *testing.T, bin, dataDir string, extra ...string) *replProc {
	t.Helper()
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-backend", "file",
		"-dir", dataDir,
		"-shards", "8",
		"-arena-mb", "16",
		"-log-mb", "8",
	}, extra...)
	cmd := exec.Command(bin, args...)
	var errBuf bytes.Buffer
	cmd.Stderr = &errBuf
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start server: %v", err)
	}
	p := &replProc{cmd: cmd, out: &errBuf}
	t.Cleanup(func() {
		if p.cmd.ProcessState == nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	})

	type banners struct {
		addr, repl string
	}
	ch := make(chan banners, 1)
	go func() {
		var b banners
		seenRepl := false
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				b.addr = strings.Fields(line[i+len("listening on "):])[0]
			}
			if i := strings.Index(line, "primary shipping on "); i >= 0 {
				b.repl = strings.Fields(line[i+len("primary shipping on "):])[0]
				seenRepl = true
			}
			if i := strings.Index(line, "repl-addr="); i >= 0 {
				// A replica without -repl-addr prints an empty repl-addr;
				// seeing the line still means replication is up.
				b.repl = strings.TrimSuffix(line[i+len("repl-addr="):], ")")
				seenRepl = true
			}
			if b.addr != "" && seenRepl {
				ch <- b
				return
			}
		}
		ch <- b
	}()
	select {
	case b := <-ch:
		if b.addr == "" {
			p.cmd.Process.Kill()
			p.cmd.Wait()
			t.Fatalf("server exited before listening; stderr:\n%s", errBuf.String())
		}
		p.addr, p.replAddr = b.addr, b.repl
	case <-time.After(60 * time.Second):
		p.cmd.Process.Kill()
		p.cmd.Wait()
		t.Fatalf("timed out waiting for banners; stderr:\n%s", errBuf.String())
	}
	return p
}

func (p *replProc) kill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	p.cmd.Wait()
}

// ctl runs a chameleonctl subcommand and returns its stdout.
func ctl(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("chameleonctl %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

func replValue(i int) []byte {
	return []byte(fmt.Sprintf("rv-%05d-%s", i, strings.Repeat("y", i%48)))
}

func replKey(i int) string { return fmt.Sprintf("rk-%05d", i) }

// TestReplicationFailoverE2E is the replication subsystem's flagship e2e, two
// real server processes on loopback:
//
//  1. a primary is loaded, a replica bootstraps from it live and catches up
//     (WAIT 1 acks), serves identical reads, and refuses writes with
//     -READONLY;
//  2. the primary is SIGKILLed mid-pipelined-batch; the replica is promoted
//     via chameleonctl; every write covered by a successful WAIT 1 before the
//     kill must be served by the survivor, and anything it serves must be a
//     value the loader actually wrote;
//  3. the old primary restarts pointed at the new one, full-resyncs (its
//     epoch diverged), and converges to the new primary's exact state — no
//     unacknowledged write resurrected from its recovered log.
func TestReplicationFailoverE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs server binaries")
	}
	work := t.TempDir()
	bin := buildServerBinary(t, work)
	ctlBin := buildCtlBinary(t, work)
	dirA := filepath.Join(work, "a")
	dirB := filepath.Join(work, "b")
	for _, d := range []string{dirA, dirB} {
		if err := os.Mkdir(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}

	prim := startReplProc(t, bin, dirA, "-repl-addr", "127.0.0.1:0")
	if prim.replAddr == "" {
		t.Fatalf("primary printed no replication banner; stderr:\n%s", prim.out.String())
	}

	// Preload before the replica exists, so bootstrap is a real catch-up of
	// history, not an empty stream.
	pc := dialT(t, prim.addr)
	const preload = 200
	for i := 0; i < preload; i++ {
		pc.Send([]byte("SET"), []byte(replKey(i)), replValue(i))
	}
	if err := pc.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < preload; i++ {
		if rep, err := pc.Receive(); err != nil || rep.Err() != nil {
			t.Fatalf("preload SET %d: %+v %v", i, rep, err)
		}
	}

	repl := startReplProc(t, bin, dirB, "-repl-addr", "127.0.0.1:0", "-replicaof", prim.replAddr)
	rep, err := pc.DoStrings("WAIT", "1", "15000")
	if err != nil || rep.Int < 1 {
		t.Fatalf("WAIT for bootstrap = %+v %v\nreplica stderr:\n%s", rep, err, repl.out.String())
	}

	// Catch-up parity: sampled gets plus a MATCH-filtered scan count.
	rc := dialT(t, repl.addr)
	for i := 0; i < preload; i += 17 {
		got, ok, err := rc.Get([]byte(replKey(i)))
		if err != nil || !ok || !bytes.Equal(got, replValue(i)) {
			t.Fatalf("replica GET %s = %q,%v,%v", replKey(i), got, ok, err)
		}
	}
	scanCount := func(c *resp.Client, pattern string) int {
		n, cursor := 0, "0"
		for {
			rep, err := c.DoStrings("SCAN", cursor, "MATCH", pattern, "COUNT", "512")
			if err != nil || rep.Err() != nil {
				t.Fatalf("SCAN: %+v %v", rep, err)
			}
			n += len(rep.Array[1].Array)
			cursor = string(rep.Array[0].Str)
			if cursor == "0" {
				return n
			}
		}
	}
	if pn, rn := scanCount(pc, "rk-*"), scanCount(rc, "rk-*"); pn != rn || rn != preload {
		t.Fatalf("scan parity: primary %d replica %d want %d", pn, rn, preload)
	}

	// The replica refuses writes.
	if rep, err := rc.DoStrings("SET", "nope", "x"); err != nil ||
		rep.Type != resp.TypeError || !strings.HasPrefix(string(rep.Str), "READONLY") {
		t.Fatalf("replica SET reply = %+v %v, want -READONLY", rep, err)
	}
	if !strings.Contains(ctl(t, ctlBin, "repl", "status", "-addr", repl.addr), "role:slave") {
		t.Fatal("repl status does not report slave role")
	}

	// Load pipelined batches with periodic WAIT-1 checkpoints until enough
	// writes are replica-durable, then SIGKILL the primary mid-flight.
	var (
		mu        sync.Mutex
		acked     = map[int]bool{}
		sent      = map[int]bool{}
		waitAcked = map[int]bool{}
	)
	loadDone := make(chan error, 1)
	go func() {
		c, err := resp.Dial(prim.addr, 5*time.Second)
		if err != nil {
			loadDone <- err
			return
		}
		defer c.Close()
		c.SetDeadline(time.Now().Add(2 * time.Minute))
		const batch = 16
		for i := preload; ; {
			keys := make([]int, 0, batch)
			mu.Lock()
			for len(keys) < batch {
				c.Send([]byte("SET"), []byte(replKey(i)), replValue(i))
				sent[i] = true
				keys = append(keys, i)
				i++
			}
			mu.Unlock()
			if err := c.Flush(); err != nil {
				loadDone <- err
				return
			}
			for _, k := range keys {
				rp, err := c.Receive()
				if err != nil || rp.Err() != nil {
					loadDone <- fmt.Errorf("set %d: %v / %v", k, err, rp.Err())
					return
				}
				mu.Lock()
				acked[k] = true
				mu.Unlock()
			}
			if (i/batch)%4 == 0 {
				// Everything acked so far was written before this WAIT, so a
				// >=1 reply makes all of it replica-durable.
				mu.Lock()
				snapshot := make([]int, 0, len(acked))
				for k := range acked {
					snapshot = append(snapshot, k)
				}
				mu.Unlock()
				rp, err := c.DoStrings("WAIT", "1", "10000")
				if err != nil || rp.Err() != nil {
					loadDone <- fmt.Errorf("wait: %v / %v", err, rp.Err())
					return
				}
				if rp.Int >= 1 {
					mu.Lock()
					for _, k := range snapshot {
						waitAcked[k] = true
					}
					mu.Unlock()
				}
			}
		}
	}()

	const waitTarget = preload + 300
	deadline := time.Now().Add(90 * time.Second)
	for {
		mu.Lock()
		n := len(waitAcked)
		mu.Unlock()
		if n >= waitTarget {
			break
		}
		select {
		case err := <-loadDone:
			t.Fatalf("loader exited early: %v\nprimary stderr:\n%s", err, prim.out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d WAIT-acked writes (have %d)", waitTarget, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	prim.kill(t)
	if err := <-loadDone; err == nil {
		t.Fatal("loader finished cleanly despite SIGKILL")
	}

	// Promote the survivor through the ctl path and verify the WAIT contract.
	ctl(t, ctlBin, "repl", "promote", "-addr", repl.addr)
	if !strings.Contains(ctl(t, ctlBin, "repl", "status", "-addr", repl.addr), "role:master") {
		t.Fatal("promoted replica does not report master role")
	}
	mu.Lock()
	waitKeys := make([]int, 0, len(waitAcked))
	for k := range waitAcked {
		waitKeys = append(waitKeys, k)
	}
	inflight := make([]int, 0)
	for k := range sent {
		if !waitAcked[k] {
			inflight = append(inflight, k)
		}
	}
	mu.Unlock()
	missing := []int{}
	for _, k := range waitKeys {
		got, ok, err := rc.Get([]byte(replKey(k)))
		if err != nil {
			t.Fatalf("GET WAIT-acked %s: %v", replKey(k), err)
		}
		if !ok || !bytes.Equal(got, replValue(k)) {
			missing = append(missing, k)
		}
	}
	if len(missing) > 0 {
		info, _ := rc.Info()
		t.Fatalf("%d of %d WAIT-acked keys lost/corrupt on survivor (e.g. %v)\nsurvivor INFO:\n%s",
			len(missing), len(waitKeys), missing[:min(10, len(missing))], info)
	}
	survivor := map[int]bool{}
	for _, k := range inflight {
		got, ok, err := rc.Get([]byte(replKey(k)))
		if err != nil {
			t.Fatalf("GET in-flight %s: %v", replKey(k), err)
		}
		if ok {
			if !bytes.Equal(got, replValue(k)) {
				t.Fatalf("in-flight key %s present with phantom value %q", replKey(k), got)
			}
			survivor[k] = true
		}
	}
	if err := rc.Set([]byte("post-failover"), []byte("ok")); err != nil {
		t.Fatalf("SET on promoted survivor: %v", err)
	}
	rep, err = rc.DoStrings("WAIT", "0", "100")
	if err != nil || rep.Err() != nil {
		t.Fatalf("WAIT on survivor: %+v %v", rep, err)
	}

	// The old primary rejoins as a replica of the survivor. Its recovered log
	// holds writes the survivor never saw; its stale epoch forces a full
	// resync (the file backend wipes and re-replays), so it must converge to
	// the survivor's exact state — nothing resurrected.
	old := startReplProc(t, bin, dirA, "-replicaof", repl.replAddr)
	rep, err = rc.DoStrings("WAIT", "1", "30000")
	if err != nil || rep.Int < 1 {
		t.Fatalf("WAIT for rejoin = %+v %v\nold-primary stderr:\n%s", rep, err, old.out.String())
	}
	oc := dialT(t, old.addr)
	for _, k := range inflight {
		_, ok, err := oc.Get([]byte(replKey(k)))
		if err != nil {
			t.Fatalf("rejoined GET %s: %v", replKey(k), err)
		}
		if ok != survivor[k] {
			t.Fatalf("rejoined replica diverges on in-flight key %s: present=%v survivor=%v",
				replKey(k), ok, survivor[k])
		}
	}
	for _, k := range waitKeys[:min(50, len(waitKeys))] {
		got, ok, err := oc.Get([]byte(replKey(k)))
		if err != nil || !ok || !bytes.Equal(got, replValue(k)) {
			t.Fatalf("rejoined GET %s = %q,%v,%v", replKey(k), got, ok, err)
		}
	}
	if got, ok, err := oc.Get([]byte("post-failover")); err != nil || !ok || string(got) != "ok" {
		t.Fatalf("rejoined replica missing post-failover write: %q,%v,%v", got, ok, err)
	}
	t.Logf("verified %d WAIT-acked keys across failover, %d in-flight keys consistent after rejoin",
		len(waitKeys), len(inflight))
}
