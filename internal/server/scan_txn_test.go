package server

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"chameleondb/internal/core"
	"chameleondb/internal/kvstore"
	"chameleondb/internal/resp"
	"chameleondb/internal/simclock"
)

// failStore wraps a real store with sessions that error on the key "boom" —
// the stub behind the partial-reply regression tests.
type failStore struct {
	kvstore.Store
}

type failSession struct {
	kvstore.Session
}

var errBoom = errors.New("injected store failure")

func (s *failStore) NewSession(c *simclock.Clock) kvstore.Session {
	return &failSession{s.Store.NewSession(c)}
}

func (se *failSession) Get(key []byte) ([]byte, bool, error) {
	if string(key) == "boom" {
		return nil, false, errBoom
	}
	return se.Session.Get(key)
}

func (se *failSession) Put(key, value []byte) error {
	if string(key) == "boom" {
		return errBoom
	}
	return se.Session.Put(key, value)
}

func startFailServer(t testing.TB) string {
	t.Helper()
	st, err := core.Open(core.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	_, addr := startServer(t, &failStore{Store: st}, Config{})
	return addr
}

// TestMGetMSetWire covers the multi-key commands' happy paths over the wire.
func TestMGetMSetWire(t *testing.T) {
	_, addr := startServer(t, nil, Config{})
	c := dialT(t, addr)

	rep, err := c.DoStrings("MSET", "m1", "v1", "m2", "v2", "m3", "v3")
	if err != nil || rep.Text() != "OK" {
		t.Fatalf("MSET = %+v, %v", rep, err)
	}
	rep, err = c.DoStrings("MGET", "m1", "missing", "m3")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Type != resp.TypeArray || len(rep.Array) != 3 {
		t.Fatalf("MGET reply = %+v", rep)
	}
	if string(rep.Array[0].Str) != "v1" || !rep.Array[1].Null || string(rep.Array[2].Str) != "v3" {
		t.Fatalf("MGET values = %+v", rep.Array)
	}
	// Odd arity refuses without touching the store.
	rep, err = c.DoStrings("MSET", "m4", "v4", "orphan")
	if err != nil || rep.Type != resp.TypeError {
		t.Fatalf("odd MSET = %+v, %v", rep, err)
	}
	if _, ok, _ := c.Get([]byte("m4")); ok {
		t.Fatal("odd-arity MSET wrote its prefix")
	}
}

// TestMGetErrorSingleFrame: a store error mid-MGET must yield exactly one
// -ERR frame with no partial array in front of it — the pipelined reply
// stream stays frame-aligned and the connection keeps serving.
func TestMGetErrorSingleFrame(t *testing.T) {
	addr := startFailServer(t)
	c := dialT(t, addr)
	if err := c.Set([]byte("ok1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Pipeline: the failing MGET, then a PING. If the server leaked array
	// frames before the error, the PING reply would misparse.
	c.SendStrings("MGET", "ok1", "boom", "ok1")
	c.SendStrings("PING")
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Type != resp.TypeError || !strings.Contains(string(rep.Str), "injected store failure") {
		t.Fatalf("MGET with failing key = %+v, want single -ERR", rep)
	}
	rep, err = c.Receive()
	if err != nil || rep.Text() != "PONG" {
		t.Fatalf("PING after failed MGET = %+v, %v", rep, err)
	}
}

// TestMSetErrorSingleFrame: same contract for MSET; the applied prefix stays
// (documented deviation from Redis's atomic MSET) but the reply is one -ERR.
func TestMSetErrorSingleFrame(t *testing.T) {
	addr := startFailServer(t)
	c := dialT(t, addr)
	c.SendStrings("MSET", "pre", "p1", "boom", "x", "post", "p2")
	c.SendStrings("PING")
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Receive()
	if err != nil || rep.Type != resp.TypeError {
		t.Fatalf("failing MSET = %+v, %v", rep, err)
	}
	if rep2, err := c.Receive(); err != nil || rep2.Text() != "PONG" {
		t.Fatalf("PING after failed MSET = %+v, %v", rep2, err)
	}
	if v, ok, _ := c.Get([]byte("pre")); !ok || string(v) != "p1" {
		t.Fatalf("prefix write lost: %q, %v", v, ok)
	}
	if _, ok, _ := c.Get([]byte("post")); ok {
		t.Fatal("write after the failing key was applied")
	}
}

// FuzzMGetFraming pipelines a fuzz-chosen MGET (keys drawn from a set that
// includes the failing key) followed by a PING: whatever the mix, the reply
// stream must parse frame-for-frame and end in PONG.
func FuzzMGetFraming(f *testing.F) {
	f.Add([]byte{0, 1, 2})
	f.Add([]byte{3, 3, 3})
	f.Add([]byte{1, 3, 1, 3, 0})

	addr := startFailServer(f)
	seed := dialT(f, addr)
	if err := seed.Set([]byte("ok1"), []byte("v1")); err != nil {
		f.Fatal(err)
	}
	if err := seed.Set([]byte("ok2"), []byte("v2")); err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, picks []byte) {
		if len(picks) == 0 || len(picks) > 64 {
			return
		}
		c, err := resp.Dial(addr, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.SetDeadline(time.Now().Add(30 * time.Second))
		pool := []string{"ok1", "missing", "ok2", "boom"}
		args := []string{"MGET"}
		wantErr := false
		for _, p := range picks {
			k := pool[int(p)%len(pool)]
			if k == "boom" {
				wantErr = true
			}
			args = append(args, k)
		}
		c.SendStrings(args...)
		c.SendStrings("PING")
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		rep, err := c.Receive()
		if err != nil {
			t.Fatalf("MGET reply unparseable: %v", err)
		}
		if wantErr && rep.Type != resp.TypeError {
			t.Fatalf("MGET including boom = %+v, want -ERR", rep)
		}
		if !wantErr && rep.Type != resp.TypeArray {
			t.Fatalf("MGET = %+v, want array", rep)
		}
		if rep2, err := c.Receive(); err != nil || rep2.Text() != "PONG" {
			t.Fatalf("stream desynced after MGET: %+v, %v", rep2, err)
		}
	})
}

func TestIncrWire(t *testing.T) {
	_, addr := startServer(t, nil, Config{})
	c := dialT(t, addr)
	if rep, err := c.DoStrings("INCR", "ctr"); err != nil || rep.Int != 1 {
		t.Fatalf("INCR = %+v, %v", rep, err)
	}
	if rep, err := c.DoStrings("INCR", "ctr"); err != nil || rep.Int != 2 {
		t.Fatalf("INCR = %+v, %v", rep, err)
	}
	if rep, err := c.DoStrings("INCRBY", "ctr", "40"); err != nil || rep.Int != 42 {
		t.Fatalf("INCRBY = %+v, %v", rep, err)
	}
	if rep, err := c.DoStrings("INCRBY", "ctr", "-2"); err != nil || rep.Int != 40 {
		t.Fatalf("INCRBY negative = %+v, %v", rep, err)
	}
	if err := c.Set([]byte("text"), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if rep, err := c.DoStrings("INCR", "text"); err != nil || rep.Type != resp.TypeError {
		t.Fatalf("INCR on text = %+v, %v", rep, err)
	}
	if rep, err := c.DoStrings("INCRBY", "ctr", "nope"); err != nil || rep.Type != resp.TypeError {
		t.Fatalf("INCRBY bad delta = %+v, %v", rep, err)
	}
}

// TestScanWire walks the full keyspace over the wire with a small COUNT,
// checks exact coverage, then repeats WITHVALUES.
func TestScanWire(t *testing.T) {
	_, addr := startServer(t, nil, Config{})
	c := dialT(t, addr)
	want := make(map[string]string)
	for i := 0; i < 60; i++ {
		k, v := fmt.Sprintf("s-%03d", i), fmt.Sprintf("sv-%03d", i)
		if err := c.Set([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}

	scan := func(withValues bool) map[string]string {
		got := make(map[string]string)
		cursor := "0"
		for {
			args := []string{"SCAN", cursor, "COUNT", "7"}
			if withValues {
				args = append(args, "WITHVALUES")
			}
			rep, err := c.DoStrings(args...)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Type != resp.TypeArray || len(rep.Array) != 2 {
				t.Fatalf("SCAN reply shape = %+v", rep)
			}
			cursor = string(rep.Array[0].Str)
			items := rep.Array[1].Array
			if withValues {
				if len(items)%2 != 0 {
					t.Fatalf("WITHVALUES items odd: %d", len(items))
				}
				for i := 0; i < len(items); i += 2 {
					k := string(items[i].Str)
					if _, dup := got[k]; dup {
						t.Fatalf("key %q scanned twice", k)
					}
					got[k] = string(items[i+1].Str)
				}
			} else {
				for _, it := range items {
					k := string(it.Str)
					if _, dup := got[k]; dup {
						t.Fatalf("key %q scanned twice", k)
					}
					got[k] = want[k] // keys-only: trust the stored value
				}
			}
			if cursor == "0" {
				return got
			}
			if _, err := strconv.ParseUint(cursor, 10, 64); err != nil {
				t.Fatalf("non-numeric cursor %q", cursor)
			}
		}
	}
	for k, v := range want {
		if got := scan(false); got[k] != v {
			t.Fatalf("keys-only scan missing %q", k)
		}
		break // full comparison below; this just forces one keys-only pass
	}
	got := scan(true)
	if len(got) != len(want) {
		t.Fatalf("scan found %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("scan[%q] = %q, want %q", k, got[k], v)
		}
	}

	// Error paths leave the connection serving.
	if rep, _ := c.DoStrings("SCAN", "notanumber"); rep.Type != resp.TypeError || !strings.Contains(string(rep.Str), "invalid cursor") {
		t.Fatalf("bad cursor = %+v", rep)
	}
	if rep, _ := c.DoStrings("SCAN", "0", "BOGUS"); rep.Type != resp.TypeError || !strings.Contains(string(rep.Str), "syntax error") {
		t.Fatalf("bad arg = %+v", rep)
	}
	if rep, _ := c.DoStrings("SCAN", "0", "COUNT", "zero"); rep.Type != resp.TypeError {
		t.Fatalf("bad count = %+v", rep)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection dead after scan errors: %v", err)
	}
}

// TestMultiExecWire: the transaction lifecycle — queueing, EXEC reply array,
// DISCARD, EXECABORT poisoning, and nesting/stray-EXEC errors.
func TestMultiExecWire(t *testing.T) {
	_, addr := startServer(t, nil, Config{})
	c := dialT(t, addr)

	mustSimple := func(rep resp.Reply, err error, want, label string) {
		t.Helper()
		if err != nil || rep.Text() != want {
			t.Fatalf("%s = %+v, %v; want %s", label, rep, err, want)
		}
	}

	rep, err := c.DoStrings("MULTI")
	mustSimple(rep, err, "OK", "MULTI")
	rep, err = c.DoStrings("SET", "t1", "tv1")
	mustSimple(rep, err, "QUEUED", "queued SET")
	rep, err = c.DoStrings("MULTI")
	if err != nil || rep.Type != resp.TypeError || !strings.Contains(string(rep.Str), "nested") {
		t.Fatalf("nested MULTI = %+v, %v", rep, err)
	}
	rep, err = c.DoStrings("INCR", "t2")
	mustSimple(rep, err, "QUEUED", "queued INCR")
	rep, err = c.DoStrings("GET", "t1")
	mustSimple(rep, err, "QUEUED", "queued GET")
	rep, err = c.DoStrings("EXEC")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Type != resp.TypeArray || len(rep.Array) != 3 {
		t.Fatalf("EXEC reply = %+v", rep)
	}
	if rep.Array[0].Text() != "OK" || rep.Array[1].Int != 1 || string(rep.Array[2].Str) != "tv1" {
		t.Fatalf("EXEC inner replies = %+v", rep.Array)
	}
	// The transaction's writes landed.
	if v, ok, _ := c.Get([]byte("t1")); !ok || string(v) != "tv1" {
		t.Fatalf("t1 after EXEC = %q, %v", v, ok)
	}

	// DISCARD drops the queue.
	c.DoStrings("MULTI")
	c.DoStrings("SET", "t3", "never")
	rep, err = c.DoStrings("DISCARD")
	mustSimple(rep, err, "OK", "DISCARD")
	if _, ok, _ := c.Get([]byte("t3")); ok {
		t.Fatal("discarded SET was applied")
	}

	// A bad queue entry poisons the transaction: EXEC aborts, nothing runs.
	c.DoStrings("MULTI")
	rep, _ = c.DoStrings("NOSUCHCMD", "x")
	if rep.Type != resp.TypeError {
		t.Fatalf("queue of unknown cmd = %+v", rep)
	}
	rep, err = c.DoStrings("SET", "t4", "never")
	mustSimple(rep, err, "QUEUED", "queued after poison")
	rep, _ = c.DoStrings("EXEC")
	if rep.Type != resp.TypeError || !strings.Contains(string(rep.Str), "EXECABORT") {
		t.Fatalf("poisoned EXEC = %+v", rep)
	}
	if _, ok, _ := c.Get([]byte("t4")); ok {
		t.Fatal("aborted transaction applied a write")
	}

	// Stray EXEC / DISCARD outside MULTI.
	if rep, _ = c.DoStrings("EXEC"); rep.Type != resp.TypeError {
		t.Fatalf("stray EXEC = %+v", rep)
	}
	if rep, _ = c.DoStrings("DISCARD"); rep.Type != resp.TypeError {
		t.Fatalf("stray DISCARD = %+v", rep)
	}
}

// TestDelRaceExactCount is the DEL TOCTOU regression end to end: two
// connections race DEL of the same key; the replies must sum to exactly one
// per round. Run under -race in CI.
func TestDelRaceExactCount(t *testing.T) {
	_, addr := startServer(t, nil, Config{})
	setter := dialT(t, addr)
	racers := [2]*resp.Client{dialT(t, addr), dialT(t, addr)}

	const rounds = 100
	for r := 0; r < rounds; r++ {
		k := []byte(fmt.Sprintf("delrace-%04d", r))
		if err := setter.Set(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		var counts [2]int64
		var errs [2]error
		for i, rc := range racers {
			wg.Add(1)
			go func(i int, rc *resp.Client) {
				defer wg.Done()
				n, err := rc.Del(k)
				counts[i], errs[i] = n, err
			}(i, rc)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("round %d racer %d: %v", r, i, err)
			}
		}
		if counts[0]+counts[1] != 1 {
			t.Fatalf("round %d: DEL counts %d + %d != 1", r, counts[0], counts[1])
		}
		if _, ok, _ := setter.Get(k); ok {
			t.Fatalf("round %d: key survived racing deletes", r)
		}
	}
}
