package server

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"chameleondb/internal/core"
	"chameleondb/internal/kvstore"
	"chameleondb/internal/resp"
	"chameleondb/internal/simclock"
)

// startServer opens a test store (unless one is supplied), binds the server
// on an ephemeral loopback port, and tears both down with the test.
func startServer(t testing.TB, store kvstore.Store, cfg Config) (*Server, string) {
	t.Helper()
	if store == nil {
		st, err := core.Open(core.TestConfig())
		if err != nil {
			t.Fatal(err)
		}
		store = st
		t.Cleanup(func() { st.Close() })
	}
	cfg.Addr = "127.0.0.1:0"
	s := New(store, cfg)
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return s, s.Addr().String()
}

func dialT(t testing.TB, addr string) *resp.Client {
	t.Helper()
	c, err := resp.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.SetDeadline(time.Now().Add(30 * time.Second))
	t.Cleanup(func() { c.Close() })
	return c
}

// TestServerE2EPipelinedRace is the ISSUE's flagship test: 32 concurrent
// pipelined clients doing mixed Get/Set/Del against one server. Run under
// -race in CI. Every client owns a key prefix, so every reply is exactly
// predictable — any cross-connection interference shows up as a wrong reply,
// not just as a race report.
func TestServerE2EPipelinedRace(t *testing.T) {
	s, addr := startServer(t, nil, Config{GroupCommitDelay: 100 * time.Microsecond})
	const (
		clients = 32
		rounds  = 20
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := resp.Dial(addr, 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			c.SetDeadline(time.Now().Add(60 * time.Second))
			for r := 0; r < rounds; r++ {
				key := fmt.Sprintf("c%d-k%d", id, r)
				val := fmt.Sprintf("v%d-%d", id, r)
				// One pipelined batch: SET, GET, EXISTS, DEL, GET.
				c.SendStrings("SET", key, val)
				c.SendStrings("GET", key)
				c.SendStrings("EXISTS", key)
				c.SendStrings("DEL", key)
				c.SendStrings("GET", key)
				if err := c.Flush(); err != nil {
					errs <- fmt.Errorf("client %d flush: %w", id, err)
					return
				}
				want := []func(resp.Reply) error{
					expectSimple("OK"), expectBulk(val), expectInt(1), expectInt(1), expectNull(),
				}
				for i, check := range want {
					rep, err := c.Receive()
					if err != nil {
						errs <- fmt.Errorf("client %d round %d reply %d: %w", id, r, i, err)
						return
					}
					if err := check(rep); err != nil {
						errs <- fmt.Errorf("client %d round %d reply %d: %w", id, r, i, err)
						return
					}
				}
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := s.Metrics().CmdsProcessed.Load(); got < clients*rounds*5 {
		t.Errorf("CmdsProcessed = %d, want >= %d", got, clients*rounds*5)
	}
	if s.Metrics().GroupCommits.Load() == 0 {
		t.Error("no group commits recorded for a write-heavy workload")
	}
}

func expectSimple(want string) func(resp.Reply) error {
	return func(r resp.Reply) error {
		if r.Type != resp.TypeSimpleString || r.Text() != want {
			return fmt.Errorf("got %+v, want +%s", r, want)
		}
		return nil
	}
}

func expectBulk(want string) func(resp.Reply) error {
	return func(r resp.Reply) error {
		if r.Type != resp.TypeBulk || r.Null || r.Text() != want {
			return fmt.Errorf("got %+v, want bulk %q", r, want)
		}
		return nil
	}
}

func expectInt(want int64) func(resp.Reply) error {
	return func(r resp.Reply) error {
		if r.Type != resp.TypeInt || r.Int != want {
			return fmt.Errorf("got %+v, want :%d", r, want)
		}
		return nil
	}
}

func expectNull() func(resp.Reply) error {
	return func(r resp.Reply) error {
		if !r.Null {
			return fmt.Errorf("got %+v, want null", r)
		}
		return nil
	}
}

// slowStore gates Get so a test can hold a command in flight across Shutdown.
type slowStore struct {
	kvstore.Store
	block chan struct{} // Get waits on this
	hit   chan struct{} // signaled once a Get has entered
	once  sync.Once
}

func (s *slowStore) NewSession(c *simclock.Clock) kvstore.Session {
	return &slowSession{s.Store.NewSession(c), s}
}

type slowSession struct {
	kvstore.Session
	st *slowStore
}

func (se *slowSession) Get(key []byte) ([]byte, bool, error) {
	se.st.once.Do(func() { close(se.st.hit) })
	<-se.st.block
	return se.Session.Get(key)
}

// TestGracefulShutdown: a command already decoded when Shutdown starts still
// completes and its reply reaches the client; a dial after Shutdown is
// refused; Shutdown itself returns nil.
func TestGracefulShutdown(t *testing.T) {
	st, err := core.Open(core.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	slow := &slowStore{Store: st, block: make(chan struct{}), hit: make(chan struct{})}

	cfg := Config{Addr: "127.0.0.1:0"}
	s := New(slow, cfg)
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve() }()
	addr := s.Addr().String()

	c, err := resp.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(30 * time.Second))
	c.SendStrings("SET", "k", "v")
	c.SendStrings("GET", "k") // blocks server-side in slowSession.Get
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	<-slow.hit // the GET is in flight inside the handler

	shutErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutErr <- s.Shutdown(ctx)
	}()

	// Late dials must be refused once the drain began. The listener closes
	// synchronously inside Shutdown, but give the goroutine a moment to get
	// there.
	var dialRefused bool
	for i := 0; i < 100; i++ {
		nc, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			dialRefused = true
			break
		}
		// A connection that sneaks in before ln.Close() is closed unserved.
		nc.Close()
		time.Sleep(10 * time.Millisecond)
	}
	if !dialRefused {
		t.Error("dial during shutdown was never refused")
	}

	// Release the in-flight GET; its reply must still arrive.
	close(slow.block)
	rep, err := c.Receive() // SET reply
	if err != nil {
		t.Fatalf("SET reply during drain: %v", err)
	}
	if rep.Type != resp.TypeSimpleString || rep.Text() != "OK" {
		t.Fatalf("SET reply = %+v, want +OK", rep)
	}
	rep, err = c.Receive() // GET reply
	if err != nil {
		t.Fatalf("GET reply during drain: %v", err)
	}
	if rep.Type != resp.TypeBulk || rep.Text() != "v" {
		t.Fatalf("GET reply = %+v, want bulk \"v\"", rep)
	}

	if err := <-shutErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// TestMaxConns: past the cap, a connection gets the canonical error reply.
func TestMaxConns(t *testing.T) {
	_, addr := startServer(t, nil, Config{MaxConns: 1})
	c1 := dialT(t, addr)
	if err := c1.Ping(); err != nil {
		t.Fatal(err)
	}
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(10 * time.Second))
	rep, err := resp.NewReader(nc).ReadReply()
	if err != nil {
		t.Fatalf("reading rejection reply: %v", err)
	}
	if rep.Type != resp.TypeError || !strings.Contains(rep.Text(), "max number of clients") {
		t.Fatalf("rejection reply = %+v", rep)
	}
}

// TestGroupCommitCoalescing: concurrent single-SET clients must share flush
// rounds — strictly more sessions flushed than batcher wakeups.
func TestGroupCommitCoalescing(t *testing.T) {
	s, addr := startServer(t, nil, Config{GroupCommitDelay: 2 * time.Millisecond})
	const writers = 16
	var wg sync.WaitGroup
	for id := 0; id < writers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := resp.Dial(addr, 5*time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			c.SetDeadline(time.Now().Add(30 * time.Second))
			for r := 0; r < 25; r++ {
				if err := c.Set(fmt.Appendf(nil, "g%d-%d", id, r), []byte("v")); err != nil {
					t.Error(err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	commits := s.Metrics().GroupCommits.Load()
	flushes := s.Metrics().GroupCommitFlushes.Load()
	if commits == 0 || flushes == 0 {
		t.Fatalf("no group commit activity: commits=%d flushes=%d", commits, flushes)
	}
	if flushes <= commits {
		t.Errorf("no coalescing: %d flushes over %d rounds", flushes, commits)
	}
	t.Logf("group commit: %d sessions over %d rounds (%.1fx coalescing)",
		flushes, commits, float64(flushes)/float64(commits))
}

// TestPipelineOrder: replies come back in command order within a batch even
// when commands hit different paths (write, read, miss, error).
func TestPipelineOrder(t *testing.T) {
	_, addr := startServer(t, nil, Config{})
	c := dialT(t, addr)
	c.SendStrings("SET", "a", "1")
	c.SendStrings("NOSUCH")
	c.SendStrings("GET", "a")
	c.SendStrings("GET", "missing")
	c.SendStrings("PING")
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	checks := []func(resp.Reply) error{
		expectSimple("OK"),
		func(r resp.Reply) error {
			if r.Type != resp.TypeError || !strings.Contains(r.Text(), "unknown command") {
				return fmt.Errorf("got %+v, want unknown-command error", r)
			}
			return nil
		},
		expectBulk("1"),
		expectNull(),
		expectSimple("PONG"),
	}
	for i, check := range checks {
		rep, err := c.Receive()
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if err := check(rep); err != nil {
			t.Errorf("reply %d: %v", i, err)
		}
	}
}

// TestProtocolErrorCloses: a malformed frame earns one -ERR Protocol error
// reply and a closed connection.
func TestProtocolErrorCloses(t *testing.T) {
	s, addr := startServer(t, nil, Config{})
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := nc.Write([]byte("*notanumber\r\n")); err != nil {
		t.Fatal(err)
	}
	r := resp.NewReader(nc)
	rep, err := r.ReadReply()
	if err != nil {
		t.Fatalf("reading error reply: %v", err)
	}
	if rep.Type != resp.TypeError || !strings.Contains(rep.Text(), "Protocol error") {
		t.Fatalf("reply = %+v, want -ERR Protocol error", rep)
	}
	if _, err := r.ReadReply(); err == nil {
		t.Error("connection stayed open after protocol error")
	}
	if s.Metrics().ProtocolErrors.Load() == 0 {
		t.Error("ProtocolErrors not counted")
	}
}

// TestCommands covers the remaining commands' contracts.
func TestCommands(t *testing.T) {
	_, addr := startServer(t, nil, Config{})
	c := dialT(t, addr)

	// PING with message echoes it.
	rep, err := c.DoStrings("PING", "hello")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Text() != "hello" {
		t.Errorf("PING hello = %+v", rep)
	}
	// EXISTS counts repeats like redis.
	if err := c.Set([]byte("e1"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	rep, err = c.DoStrings("EXISTS", "e1", "e1", "nope")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Int != 2 {
		t.Errorf("EXISTS e1 e1 nope = %+v, want :2", rep)
	}
	// DEL of a missing key is 0 and writes nothing.
	rep, err = c.DoStrings("DEL", "nope")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Int != 0 {
		t.Errorf("DEL nope = %+v, want :0", rep)
	}
	// FLUSHALL is a durability barrier, not a wipe: data survives.
	rep, err = c.DoStrings("FLUSHALL")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Text() != "OK" {
		t.Errorf("FLUSHALL = %+v", rep)
	}
	if val, ok, err := c.Get([]byte("e1")); err != nil || !ok || string(val) != "v" {
		t.Errorf("GET e1 after FLUSHALL = %q %v %v", val, ok, err)
	}
	// COMMAND answers redis-cli's handshake with an empty array.
	rep, err = c.DoStrings("COMMAND")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Type != resp.TypeArray || len(rep.Array) != 0 {
		t.Errorf("COMMAND = %+v, want *0", rep)
	}
	// INFO names the store and carries the stats section.
	info, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# Server", "store:", "# Stats", "total_commands_processed:"} {
		if !strings.Contains(info, want) {
			t.Errorf("INFO missing %q:\n%s", want, info)
		}
	}
	// Arity errors don't kill the connection.
	rep, err = c.DoStrings("GET")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Type != resp.TypeError || !strings.Contains(rep.Text(), "wrong number of arguments") {
		t.Errorf("GET with no key = %+v", rep)
	}
	if err := c.Ping(); err != nil {
		t.Errorf("connection dead after arity error: %v", err)
	}
	// QUIT acks then closes.
	rep, err = c.DoStrings("QUIT")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Text() != "OK" {
		t.Errorf("QUIT = %+v", rep)
	}
	if err := c.Ping(); err == nil {
		t.Error("connection alive after QUIT")
	}
}
