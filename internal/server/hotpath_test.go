package server

import (
	"bufio"
	"fmt"
	"net"
	"testing"
	"time"

	"chameleondb/internal/core"
	"chameleondb/internal/resp"
	"chameleondb/internal/simclock"
)

// rawConn is a test client that writes hand-built pipelined batches in one
// syscall and reads replies one frame at a time — the shape that drives the
// server's SET-run batching, which only engages when multiple commands are
// buffered on the connection before the handler reads.
type rawConn struct {
	t  *testing.T
	nc net.Conn
	br *bufio.Reader
	w  *resp.Writer
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	nc.SetDeadline(time.Now().Add(30 * time.Second))
	t.Cleanup(func() { nc.Close() })
	return &rawConn{t: t, nc: nc, br: bufio.NewReader(nc), w: resp.NewWriter(nc)}
}

func (r *rawConn) flush() {
	r.t.Helper()
	if err := r.w.Flush(); err != nil {
		r.t.Fatal(err)
	}
}

func (r *rawConn) expectLine(want string) {
	r.t.Helper()
	line, err := r.br.ReadString('\n')
	if err != nil {
		r.t.Fatalf("reading reply (want %q): %v", want, err)
	}
	if line != want+"\r\n" {
		r.t.Fatalf("reply = %q, want %q", line, want+"\r\n")
	}
}

func (r *rawConn) expectBulk(want string) {
	r.t.Helper()
	r.expectLine(fmt.Sprintf("$%d", len(want)))
	buf := make([]byte, len(want)+2)
	if _, err := r.br.Read(buf); err != nil {
		r.t.Fatal(err)
	}
	if string(buf[:len(want)]) != want {
		r.t.Fatalf("bulk payload = %q, want %q", buf[:len(want)], want)
	}
}

// TestPipelinedSetRunBatching drives the shard-affine dispatch path: one
// pipelined batch of many SETs (collected into a run and applied via
// PutBatch), with GETs and a DEL breaking the run at known points. Replies
// must come back in exact command order, and every value must read back —
// including keys written twice in one run (within-batch ordering) and a key
// whose SET is immediately followed by a GET in the same pipeline (the run
// must be dispatched before the GET executes).
func TestPipelinedSetRunBatching(t *testing.T) {
	_, addr := startServer(t, nil, Config{})
	c := dialRaw(t, addr)

	const n = 40
	// One write: a long SET run, a same-key overwrite inside it, then a GET
	// of a key from the run, more SETs, DEL, and final GETs.
	for i := 0; i < n; i++ {
		c.w.CommandStrings("SET", fmt.Sprintf("run-%02d", i), fmt.Sprintf("v1-%02d", i))
	}
	c.w.CommandStrings("SET", "run-07", "v2-07") // overwrite, still same run
	c.w.CommandStrings("GET", "run-07")          // breaks the run; must see v2
	c.w.CommandStrings("SET", "run-99", "tail")  // new run of one
	c.w.CommandStrings("DEL", "run-03")          // breaks it again
	c.w.CommandStrings("GET", "run-99")
	c.w.CommandStrings("GET", "run-03")
	c.flush()

	for i := 0; i < n+1; i++ {
		c.expectLine("+OK")
	}
	c.expectBulk("v2-07")
	c.expectLine("+OK")
	c.expectLine(":1")
	c.expectBulk("tail")
	c.expectLine("$-1")

	// A second client sees everything: the writes are in the store, not in
	// connection-local state.
	cl := dialT(t, addr)
	for i := 0; i < n; i++ {
		want := fmt.Sprintf("v1-%02d", i)
		if i == 7 {
			want = "v2-07"
		}
		got, ok, err := cl.Get([]byte(fmt.Sprintf("run-%02d", i)))
		if i == 3 {
			if ok {
				t.Fatalf("run-03 still present after DEL: %q", got)
			}
			continue
		}
		if err != nil || !ok || string(got) != want {
			t.Fatalf("run-%02d = %q,%v,%v want %q", i, got, ok, err, want)
		}
	}
}

// TestPipelinedSetRunDurable checks the run's group-commit contract: after
// the batch's +OKs arrive, a crash plus recovery must still serve every
// value — batched SETs are not acked before durability.
func TestPipelinedSetRunDurable(t *testing.T) {
	st, err := core.Open(core.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	_, addr := startServer(t, st, Config{})
	c := dialRaw(t, addr)
	for i := 0; i < 16; i++ {
		c.w.CommandStrings("SET", fmt.Sprintf("dur-%02d", i), fmt.Sprintf("dv-%02d", i))
	}
	c.flush()
	for i := 0; i < 16; i++ {
		c.expectLine("+OK")
	}

	st.Crash()
	if err := st.Recover(simclock.New(0)); err != nil {
		t.Fatal(err)
	}
	se := st.NewSession(simclock.New(0))
	for i := 0; i < 16; i++ {
		got, ok, err := se.Get([]byte(fmt.Sprintf("dur-%02d", i)))
		if err != nil || !ok || string(got) != fmt.Sprintf("dv-%02d", i) {
			t.Fatalf("post-crash dur-%02d = %q,%v,%v", i, got, ok, err)
		}
	}
}

// TestMultiAcrossBatches exercises the MULTI arena across reply flushes: each
// queued command arrives in its own TCP write (its own pipelined batch), so
// the reader's buffer — which queued args alias at decode time — is released
// between QUEUEDs. The arena copy must keep them intact through EXEC.
func TestMultiAcrossBatches(t *testing.T) {
	_, addr := startServer(t, nil, Config{})
	c := dialRaw(t, addr)

	c.w.CommandStrings("MULTI")
	c.flush()
	c.expectLine("+OK")
	for i := 0; i < 10; i++ {
		c.w.CommandStrings("SET", fmt.Sprintf("txn-%02d", i), fmt.Sprintf("tv-%02d", i))
		c.flush()
		c.expectLine("+QUEUED")
	}
	c.w.CommandStrings("GET", "txn-04")
	c.flush()
	c.expectLine("+QUEUED")
	c.w.CommandStrings("EXEC")
	c.flush()
	c.expectLine("*11")
	for i := 0; i < 10; i++ {
		c.expectLine("+OK")
	}
	c.expectBulk("tv-04")

	// And a second transaction on the same connection reuses the arena.
	c.w.CommandStrings("MULTI")
	c.w.CommandStrings("SET", "txn-04", "tv2-04")
	c.w.CommandStrings("EXEC")
	c.flush()
	c.expectLine("+OK")
	c.expectLine("+QUEUED")
	c.expectLine("*1")
	c.expectLine("+OK")

	cl := dialT(t, addr)
	got, ok, err := cl.Get([]byte("txn-04"))
	if err != nil || !ok || string(got) != "tv2-04" {
		t.Fatalf("txn-04 = %q,%v,%v", got, ok, err)
	}
}

// TestMGetReusedBuffer covers the span-based MGET path: many keys of varied
// sizes in one command, hits and misses interleaved, repeated so the second
// round runs entirely on recycled scratch.
func TestMGetReusedBuffer(t *testing.T) {
	_, addr := startServer(t, nil, Config{})
	cl := dialT(t, addr)
	var big [3000]byte
	for i := range big {
		big[i] = byte('a' + i%26)
	}
	if err := cl.Set([]byte("mg-small"), []byte("s")); err != nil {
		t.Fatal(err)
	}
	if err := cl.Set([]byte("mg-big"), big[:]); err != nil {
		t.Fatal(err)
	}
	if err := cl.Set([]byte("mg-empty"), nil); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		rep, err := cl.DoStrings("MGET", "mg-small", "mg-missing", "mg-big", "mg-empty")
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Array) != 4 {
			t.Fatalf("round %d: %d elements", round, len(rep.Array))
		}
		if string(rep.Array[0].Str) != "s" ||
			!rep.Array[1].Null ||
			string(rep.Array[2].Str) != string(big[:]) ||
			rep.Array[3].Null || len(rep.Array[3].Str) != 0 {
			t.Fatalf("round %d: wrong MGET reply", round)
		}
	}
}

// TestWireAliasing is the protocol-level scribble test: a pipelined batch
// whose SET is followed in the same batch by writes that force the reader to
// grow and reuse its buffer, then a fresh batch reusing the buffer from
// offset zero. If the engine retained any arg span, the later traffic would
// corrupt the stored value.
func TestWireAliasing(t *testing.T) {
	_, addr := startServer(t, nil, Config{})
	c := dialRaw(t, addr)
	c.w.CommandStrings("SET", "alias-wire", "precious-value")
	c.flush()
	c.expectLine("+OK")
	// Next batch reuses the released reader buffer, overwriting the bytes
	// "alias-wire"/"precious-value" occupied.
	c.w.CommandStrings("SET", "xxxxxxxxxx", "clobber-clobber")
	c.flush()
	c.expectLine("+OK")
	cl := dialT(t, addr)
	got, ok, err := cl.Get([]byte("alias-wire"))
	if err != nil || !ok || string(got) != "precious-value" {
		t.Fatalf("alias-wire = %q,%v,%v", got, ok, err)
	}
}
