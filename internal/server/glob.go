package server

// globMatch reports whether key matches pattern under Redis glob semantics
// (stringmatchlen): '*' matches any run including empty, '?' any single byte,
// '[...]' a byte class with ranges and '^' negation, '\' escapes the next
// byte. Bytes, not runes — exactly like Redis, which matches binary-safe
// keys bytewise.
func globMatch(pattern, key []byte) bool {
	for len(pattern) > 0 {
		switch pattern[0] {
		case '*':
			// Collapse consecutive stars, then greedily try every suffix.
			for len(pattern) > 1 && pattern[1] == '*' {
				pattern = pattern[1:]
			}
			if len(pattern) == 1 {
				return true
			}
			for i := 0; i <= len(key); i++ {
				if globMatch(pattern[1:], key[i:]) {
					return true
				}
			}
			return false
		case '?':
			if len(key) == 0 {
				return false
			}
			key = key[1:]
			pattern = pattern[1:]
		case '[':
			if len(key) == 0 {
				return false
			}
			p := pattern[1:]
			negate := len(p) > 0 && p[0] == '^'
			if negate {
				p = p[1:]
			}
			matched := false
			closed := false
			c := key[0]
			for len(p) > 0 {
				if p[0] == '\\' && len(p) >= 2 {
					if p[1] == c {
						matched = true
					}
					p = p[2:]
					continue
				}
				if p[0] == ']' {
					closed = true
					p = p[1:]
					break
				}
				// A '-' with any byte after it is a range, even when that
				// byte is ']' — Redis parses "[a-]" as the range 'a'..']',
				// not a literal '-' (stringmatchlen checks only
				// pattern[1]=='-' && patternLen >= 3).
				if len(p) >= 3 && p[1] == '-' {
					lo, hi := p[0], p[2]
					if lo > hi {
						lo, hi = hi, lo
					}
					if lo <= c && c <= hi {
						matched = true
					}
					p = p[3:]
					continue
				}
				if p[0] == c {
					matched = true
				}
				p = p[1:]
			}
			if !closed {
				// Unterminated class: Redis treats the remaining bytes as the
				// class and stops at end of pattern.
				p = nil
			}
			if matched == negate {
				return false
			}
			key = key[1:]
			pattern = p
		case '\\':
			if len(pattern) >= 2 {
				pattern = pattern[1:]
			}
			fallthrough
		default:
			if len(key) == 0 || key[0] != pattern[0] {
				return false
			}
			key = key[1:]
			pattern = pattern[1:]
		}
	}
	return len(key) == 0
}
