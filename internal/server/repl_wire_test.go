package server

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"chameleondb/internal/core"
	"chameleondb/internal/kvstore"
	"chameleondb/internal/resp"
)

// fakeRepl records the wire layer's calls into the Replicator surface.
type fakeRepl struct {
	replicaOf []string
	waitNum   int
	waitTo    time.Duration
	waitSe    kvstore.Session
	waitRet   int
}

func (f *fakeRepl) ReplicaOf(addr string) error {
	f.replicaOf = append(f.replicaOf, addr)
	return nil
}

func (f *fakeRepl) Wait(se kvstore.Session, num int, to time.Duration) (int, error) {
	f.waitSe, f.waitNum, f.waitTo = se, num, to
	return f.waitRet, nil
}

func (f *fakeRepl) InfoSection(b []byte) []byte {
	return append(b, "# Replication\r\nrole:slave\r\nfake_marker:1\r\n"...)
}

// TestScanMatchWire drives SCAN MATCH over the wire: the filter applies per
// page after the engine scan, the cursor advances even through pages the
// pattern empties entirely, and the union across pages is exactly the
// matching keys.
func TestScanMatchWire(t *testing.T) {
	_, addr := startServer(t, nil, Config{})
	c := dialT(t, addr)

	want := map[string]bool{}
	for i := 0; i < 20; i++ {
		uk := fmt.Sprintf("user:%02d", i)
		if rep, err := c.DoStrings("SET", uk, "u"); err != nil || rep.Text() != "OK" {
			t.Fatalf("SET %s: %+v %v", uk, rep, err)
		}
		want[uk] = true
		ok := fmt.Sprintf("other:%02d", i)
		if rep, err := c.DoStrings("SET", ok, "o"); err != nil || rep.Text() != "OK" {
			t.Fatalf("SET %s: %+v %v", ok, rep, err)
		}
	}

	scanAll := func(match string, count int) (keys []string, sawEmptyPage, sawAnyPage bool) {
		cursor := "0"
		for {
			rep, err := c.DoStrings("SCAN", cursor, "MATCH", match, "COUNT", fmt.Sprint(count))
			if err != nil {
				t.Fatal(err)
			}
			if rep.Type != resp.TypeArray || len(rep.Array) != 2 {
				t.Fatalf("SCAN reply = %+v", rep)
			}
			cursor = string(rep.Array[0].Str)
			page := rep.Array[1].Array
			sawAnyPage = true
			if len(page) == 0 && cursor != "0" {
				sawEmptyPage = true
			}
			for _, kr := range page {
				keys = append(keys, string(kr.Str))
			}
			if cursor == "0" {
				return
			}
		}
	}

	keys, _, _ := scanAll("user:*", 7)
	if len(keys) != len(want) {
		t.Fatalf("MATCH user:* returned %d keys, want %d: %v", len(keys), len(want), keys)
	}
	for _, k := range keys {
		if !want[k] {
			t.Fatalf("MATCH user:* returned non-matching key %q", k)
		}
	}

	// A pattern matching nothing: with 40 keys and COUNT 7 the scan takes
	// several pages, every one filtered empty — the cursor must still walk to
	// completion instead of wedging or short-circuiting.
	keys, sawEmpty, _ := scanAll("nomatch:*", 7)
	if len(keys) != 0 {
		t.Fatalf("MATCH nomatch:* returned keys: %v", keys)
	}
	if !sawEmpty {
		t.Fatal("scan never produced an empty page with a live cursor")
	}

	// MATCH composes with WITHVALUES.
	rep, err := c.DoStrings("SCAN", "0", "MATCH", "user:*", "COUNT", "4096", "WITHVALUES")
	if err != nil {
		t.Fatal(err)
	}
	pairs := rep.Array[1].Array
	if len(pairs) != 2*len(want) {
		t.Fatalf("WITHVALUES returned %d elements, want %d", len(pairs), 2*len(want))
	}
	for i := 0; i < len(pairs); i += 2 {
		if !want[string(pairs[i].Str)] || string(pairs[i+1].Str) != "u" {
			t.Fatalf("WITHVALUES pair %q=%q", pairs[i].Str, pairs[i+1].Str)
		}
	}

	// Glob classes work over the wire too.
	keys, _, _ = scanAll("user:0[0-4]", 7)
	if len(keys) != 5 {
		t.Fatalf("MATCH user:0[0-4] returned %d keys: %v", len(keys), keys)
	}
}

// TestReadOnlyReplicaWire pins the -READONLY contract: against a store in
// replica mode every mutating command answers the READONLY error code (not a
// generic -ERR), reads and scans keep working, and flipping the store back
// restores writes on live connections.
func TestReadOnlyReplicaWire(t *testing.T) {
	st, err := core.Open(core.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	_, addr := startServer(t, st, Config{})
	c := dialT(t, addr)

	if rep, err := c.DoStrings("SET", "seeded", "v"); err != nil || rep.Text() != "OK" {
		t.Fatalf("seed SET: %+v %v", rep, err)
	}
	st.SetReadOnly(true)

	wantReadonly := func(rep resp.Reply, err error, cmd string) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
		if rep.Type != resp.TypeError || !strings.HasPrefix(string(rep.Str), "READONLY") {
			t.Fatalf("%s reply = %+v, want -READONLY", cmd, rep)
		}
	}
	rep, err := c.DoStrings("SET", "k", "v")
	wantReadonly(rep, err, "SET")
	rep, err = c.DoStrings("DEL", "seeded")
	wantReadonly(rep, err, "DEL")
	rep, err = c.DoStrings("MSET", "a", "1", "b", "2")
	wantReadonly(rep, err, "MSET")
	rep, err = c.DoStrings("INCR", "n")
	wantReadonly(rep, err, "INCR")

	// The pipelined SET-run fast path (dispatchRun → PutBatch) must report
	// READONLY per command too.
	c.SendStrings("SET", "r1", "x")
	c.SendStrings("SET", "r2", "y")
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		rep, err := c.Receive()
		wantReadonly(rep, err, "pipelined SET")
	}

	// Reads still serve.
	if val, ok, err := c.Get([]byte("seeded")); err != nil || !ok || string(val) != "v" {
		t.Fatalf("GET on replica: %q %v %v", val, ok, err)
	}
	rep, err = c.DoStrings("SCAN", "0", "MATCH", "*", "COUNT", "4096")
	if err != nil || rep.Type != resp.TypeArray {
		t.Fatalf("SCAN on replica: %+v %v", rep, err)
	}

	st.SetReadOnly(false)
	if rep, err := c.DoStrings("SET", "k", "v"); err != nil || rep.Text() != "OK" {
		t.Fatalf("SET after promote: %+v %v", rep, err)
	}
}

// TestReplicaOfWaitWire checks the wire plumbing into the Replicator surface
// and the degraded behavior without one.
func TestReplicaOfWaitWire(t *testing.T) {
	fake := &fakeRepl{waitRet: 2}
	_, addr := startServer(t, nil, Config{Repl: fake})
	c := dialT(t, addr)

	if rep, err := c.DoStrings("REPLICAOF", "127.0.0.1", "7000"); err != nil || rep.Text() != "OK" {
		t.Fatalf("REPLICAOF: %+v %v", rep, err)
	}
	if rep, err := c.DoStrings("SLAVEOF", "NO", "ONE"); err != nil || rep.Text() != "OK" {
		t.Fatalf("SLAVEOF NO ONE: %+v %v", rep, err)
	}
	if len(fake.replicaOf) != 2 || fake.replicaOf[0] != "127.0.0.1:7000" || fake.replicaOf[1] != "" {
		t.Fatalf("ReplicaOf calls = %v", fake.replicaOf)
	}

	rep, err := c.DoStrings("WAIT", "2", "150")
	if err != nil || rep.Type != resp.TypeInt || rep.Int != 2 {
		t.Fatalf("WAIT = %+v %v", rep, err)
	}
	if fake.waitNum != 2 || fake.waitTo != 150*time.Millisecond || fake.waitSe == nil {
		t.Fatalf("Wait call = num %d to %v se %v", fake.waitNum, fake.waitTo, fake.waitSe)
	}

	info, err := c.Info()
	if err != nil || !strings.Contains(info, "fake_marker:1") {
		t.Fatalf("INFO missing replication section: %v %q", err, info)
	}

	// Bad arity / bad args refuse cleanly.
	if rep, _ := c.DoStrings("WAIT", "2"); rep.Type != resp.TypeError {
		t.Fatalf("WAIT arity: %+v", rep)
	}
	if rep, _ := c.DoStrings("WAIT", "x", "10"); rep.Type != resp.TypeError {
		t.Fatalf("WAIT non-int: %+v", rep)
	}
	if rep, _ := c.DoStrings("REPLICAOF", "onlyhost"); rep.Type != resp.TypeError {
		t.Fatalf("REPLICAOF arity: %+v", rep)
	}
}

// TestWaitWithoutReplWire: no Replicator configured — WAIT degrades to a
// local durability barrier answering 0; REPLICAOF refuses.
func TestWaitWithoutReplWire(t *testing.T) {
	_, addr := startServer(t, nil, Config{})
	c := dialT(t, addr)

	if rep, err := c.DoStrings("SET", "k", "v"); err != nil || rep.Text() != "OK" {
		t.Fatalf("SET: %+v %v", rep, err)
	}
	rep, err := c.DoStrings("WAIT", "1", "10")
	if err != nil || rep.Type != resp.TypeInt || rep.Int != 0 {
		t.Fatalf("WAIT without repl = %+v %v", rep, err)
	}
	if rep, _ := c.DoStrings("REPLICAOF", "127.0.0.1", "7000"); rep.Type != resp.TypeError {
		t.Fatalf("REPLICAOF without repl: %+v", rep)
	}
	info, err := c.Info()
	if err != nil || !strings.Contains(info, "role:master") {
		t.Fatalf("INFO replication default: %v %q", err, info)
	}
}
