// Package server is ChameleonDB's network serving layer: a TCP server that
// speaks the RESP2 protocol (package internal/resp) over any kvstore.Store.
//
// The threading model is the Go storage-server idiom (cf. go-nfsd): one
// goroutine and one kvstore.Session per connection over shared engine state.
// The session gives each connection a private log appender (its DRAM write
// batch) and a reader-epoch slot on the lock-free get path, so connections
// scale the same way the readscale experiment's worker goroutines do — no
// shared mutex anywhere on the GET path.
//
// Requests are fully pipelined: the handler decodes every command already
// buffered on the connection (up to Config.MaxPipeline), executes them in
// order into a reply buffer, and only then touches the socket again. Writes
// are acknowledged durably by default: a batch that contains a SET/DEL holds
// its replies until the group-commit batcher (batcher.go) has flushed the
// session, coalescing flushes across connections within a time/size window.
//
// Backpressure is structural: a connection gets no new commands parsed while
// its previous batch is executing (one goroutine), the reply buffer caps at
// MaxPipeline commands per round, and the listener refuses connections past
// MaxConns. Shutdown drains: the listener closes first (late dials are
// refused), live connections finish the batch they are executing — including
// its group commit — and then unwind.
package server

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"chameleondb/internal/hotcache"
	"chameleondb/internal/kvstore"
	"chameleondb/internal/obs"
	"chameleondb/internal/resp"
	"chameleondb/internal/simclock"
)

// Config tunes the serving layer. The zero value of every field means "use
// the default" (DefaultConfig's value), so callers set only what they need.
type Config struct {
	// Addr is the TCP listen address.
	Addr string
	// MaxConns caps concurrent connections; past it, new connections get an
	// error reply and are closed. <0 disables the cap.
	MaxConns int
	// MaxPipeline caps commands decoded per batch before replies are
	// flushed, bounding the reply buffer a hostile pipeliner can run up.
	MaxPipeline int
	// ReadTimeout is the per-connection idle limit: a connection that sends
	// no command for this long is closed. <0 disables.
	ReadTimeout time.Duration
	// WriteTimeout bounds one reply-buffer write to the socket. <0 disables.
	WriteTimeout time.Duration
	// GroupCommitDelay is how long the batcher waits for more sessions to
	// join a flush round; GroupCommitSize flushes the round early when that
	// many have joined. Delay <0 disables the wait (still coalesces whatever
	// is queued).
	GroupCommitDelay time.Duration
	GroupCommitSize  int
	// AsyncAck, when set, acknowledges writes before their group commit
	// (replies do not wait for durability — the engine's default in-process
	// contract). The default, false, is durable acks.
	AsyncAck bool
	// ReplyRetainBytes bounds the reply buffer capacity a connection keeps
	// across batches; after a batch whose replies grew past it, the buffer
	// shrinks back to its initial size. 0 uses the resp.Writer default (1 MiB).
	ReplyRetainBytes int
	// Limits bound the RESP parser.
	Limits resp.Limits
	// Repl, when set, wires REPLICAOF/WAIT and the INFO replication section to
	// the replication subsystem (internal/repl.Node implements it). Nil keeps
	// those commands inert: WAIT answers 0 after a flush, REPLICAOF errors.
	Repl Replicator
	// Cache, when set, interposes a hot-key DRAM cache between every
	// connection's session and the store (hotcache.Wrap): reads fill it,
	// writes invalidate it, FLUSHALL empties it. Nil (the default) serves
	// straight from the engine.
	Cache *hotcache.Cache
}

// Replicator is the control surface the replication subsystem exposes to the
// wire protocol.
type Replicator interface {
	// ReplicaOf points the node at a primary; the empty address promotes it
	// back to primary (REPLICAOF NO ONE).
	ReplicaOf(addr string) error
	// Wait flushes the session and blocks until numReplicas connected replicas
	// acknowledge durability up to the resulting watermark, or the timeout
	// elapses; it returns how many had acknowledged when it stopped waiting.
	Wait(se kvstore.Session, numReplicas int, timeout time.Duration) (int, error)
	// InfoSection appends the "# Replication" INFO section.
	InfoSection(b []byte) []byte
}

// DefaultConfig returns production-leaning defaults.
func DefaultConfig() Config {
	return Config{
		Addr:             "127.0.0.1:6379",
		MaxConns:         1024,
		MaxPipeline:      128,
		ReadTimeout:      5 * time.Minute,
		WriteTimeout:     time.Minute,
		GroupCommitDelay: 200 * time.Microsecond,
		GroupCommitSize:  64,
		Limits:           resp.DefaultLimits(),
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Addr == "" {
		c.Addr = d.Addr
	}
	if c.MaxConns == 0 {
		c.MaxConns = d.MaxConns
	}
	if c.MaxPipeline <= 0 {
		c.MaxPipeline = d.MaxPipeline
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = d.ReadTimeout
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = d.WriteTimeout
	}
	if c.GroupCommitDelay == 0 {
		c.GroupCommitDelay = d.GroupCommitDelay
	}
	if c.GroupCommitSize <= 0 {
		c.GroupCommitSize = d.GroupCommitSize
	}
	return c
}

// Server serves RESP over a kvstore.Store.
type Server struct {
	cfg     Config
	store   kvstore.Store
	cache   *hotcache.Cache
	metrics *Metrics
	reg     *obs.Registry
	batch   *batcher
	start   time.Time

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	draining bool

	wg      sync.WaitGroup // live connection handlers
	serveWg sync.WaitGroup // accept loop
	downMu  sync.Mutex     // serializes Shutdown's teardown
	down    bool
}

// New creates a server over store. When the store exposes an obs registry
// (obs.Provider), the server's metrics register into it so one scrape covers
// wire and engine; otherwise the server keeps a private registry, reachable
// via Registry either way.
func New(store kvstore.Store, cfg Config) *Server {
	cfg = cfg.withDefaults()
	// The cache interposes at the store boundary, not per command: every
	// session this server hands out reads through it and invalidates it on
	// write, so no dispatch path can forget to.
	store = hotcache.Wrap(store, cfg.Cache)
	s := &Server{
		cfg:     cfg,
		store:   store,
		cache:   cfg.Cache,
		metrics: &Metrics{},
		conns:   make(map[*conn]struct{}),
		start:   time.Now(),
	}
	if p, ok := store.(obs.Provider); ok && p.Registry() != nil {
		s.reg = p.Registry()
	} else {
		s.reg = obs.NewRegistry("chameleon_server")
	}
	s.metrics.Register(s.reg)
	s.cache.Register(s.reg)
	s.batch = newBatcher(s.metrics, cfg.GroupCommitDelay, cfg.GroupCommitSize)
	return s
}

// Metrics returns the serving layer's live counters.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Registry returns the registry the server's metrics are registered in (the
// store's own when it has one).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Listen binds the configured address. Addr is valid afterwards; Serve runs
// the accept loop.
func (s *Server) Listen() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	return nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// ListenAndServe binds and serves until Shutdown.
func (s *Server) ListenAndServe() error {
	if err := s.Listen(); err != nil {
		return err
	}
	return s.Serve()
}

// Serve accepts connections until the listener closes. Returns nil on a
// Shutdown-initiated close.
func (s *Server) Serve() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln == nil {
		return fmt.Errorf("server: Serve before Listen")
	}
	s.batch.start()
	s.serveWg.Add(1)
	defer s.serveWg.Done()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.isDraining() {
				return nil
			}
			return err
		}
		s.admit(nc)
	}
}

// admit registers a new connection or refuses it over the wire.
func (s *Server) admit(nc net.Conn) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		nc.Close()
		return
	}
	if s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns {
		s.mu.Unlock()
		s.metrics.ConnsRejected.Add(1)
		w := resp.NewWriter(nc)
		w.Error("ERR max number of clients reached")
		nc.SetWriteDeadline(time.Now().Add(time.Second))
		w.Flush()
		nc.Close()
		return
	}
	c := newConn(s, nc)
	s.conns[c] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()
	s.metrics.ConnsAccepted.Add(1)
	s.metrics.ConnsOpen.Add(1)
	go c.serve()
}

// remove unregisters a finished connection.
func (s *Server) remove(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.metrics.ConnsOpen.Add(-1)
	s.metrics.ConnsClosed.Add(1)
	s.wg.Done()
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown drains the server: the listener closes first so late dials are
// refused, every live connection finishes the pipelined batch it is
// executing (including its group commit) and unwinds, and the batcher stops
// after the last handler exits. Connections idle in a read are unblocked by
// an immediate read deadline. If ctx expires first, remaining connections
// are closed forcibly and ctx.Err is returned. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	first := !s.draining
	s.draining = true
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if first {
		if ln != nil {
			ln.Close()
		}
		for _, c := range conns {
			c.nudge()
		}
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
	}
	s.serveWg.Wait()

	s.downMu.Lock()
	if !s.down {
		s.down = true
		s.batch.stopAndDrain()
	}
	s.downMu.Unlock()
	return err
}

// releaseSession hands a connection's session back to the store: core
// sessions expose Release (detach the log appender and epoch slot so a gone
// client pins neither the recovery watermark nor table reclamation); other
// stores settle for a final Flush.
func releaseSession(se kvstore.Session) error {
	if r, ok := se.(interface{ Release() error }); ok {
		return r.Release()
	}
	return se.Flush()
}

// newSession builds the per-connection session. Each connection gets its own
// virtual clock: network workers are exactly the per-worker sessions the
// engine was designed around.
func (s *Server) newSession() kvstore.Session {
	return s.store.NewSession(simclock.New(0))
}
