package server

import (
	"fmt"
	"strings"
	"time"

	"chameleondb/internal/obs"
)

// infoText renders the INFO reply: redis-style "# Section\nkey:value" lines,
// restricted to one section when the client names one. The numbers are the
// same atomics the obs registry exports — INFO is the wire-side view of the
// same observability block /stats.json serves.
func (s *Server) infoText(section string) []byte {
	want := func(name string) bool {
		return section == "" || strings.EqualFold(section, name)
	}
	m := s.metrics
	var b []byte
	if want("server") {
		b = append(b, "# Server\r\n"...)
		b = fmt.Appendf(b, "store:%s\r\n", s.store.Name())
		b = fmt.Appendf(b, "uptime_in_seconds:%d\r\n", int64(time.Since(s.start).Seconds()))
		if a := s.Addr(); a != nil {
			b = fmt.Appendf(b, "tcp_addr:%s\r\n", a)
		}
		b = append(b, "\r\n"...)
	}
	if want("clients") {
		b = append(b, "# Clients\r\n"...)
		b = fmt.Appendf(b, "connected_clients:%d\r\n", m.ConnsOpen.Load())
		b = fmt.Appendf(b, "total_connections_received:%d\r\n", m.ConnsAccepted.Load())
		b = fmt.Appendf(b, "rejected_connections:%d\r\n", m.ConnsRejected.Load())
		b = append(b, "\r\n"...)
	}
	if want("stats") {
		b = append(b, "# Stats\r\n"...)
		b = fmt.Appendf(b, "total_commands_processed:%d\r\n", m.CmdsProcessed.Load())
		b = fmt.Appendf(b, "commands_in_flight:%d\r\n", m.CmdsInFlight.Load())
		b = fmt.Appendf(b, "protocol_errors:%d\r\n", m.ProtocolErrors.Load())
		b = fmt.Appendf(b, "store_errors:%d\r\n", m.StoreErrors.Load())
		b = fmt.Appendf(b, "group_commits:%d\r\n", m.GroupCommits.Load())
		b = fmt.Appendf(b, "group_commit_flushes:%d\r\n", m.GroupCommitFlushes.Load())
		b = fmt.Appendf(b, "dram_footprint_bytes:%d\r\n", s.store.DRAMFootprint())
		b = append(b, "\r\n"...)
	}
	if want("commandstats") {
		b = append(b, "# Commandstats\r\n"...)
		for k := cmdKind(0); k < numCmdKinds; k++ {
			if n := m.PerCmd[k].Load(); n > 0 {
				b = fmt.Appendf(b, "cmdstat_%s:calls=%d\r\n", k.String(), n)
			}
		}
		b = append(b, "\r\n"...)
	}
	if want("latencystats") {
		b = append(b, "# Latencystats\r\n"...)
		for i := range m.Wire {
			h := obs.SummarizeHistogram(&m.Wire[i])
			if h.Count == 0 {
				continue
			}
			b = fmt.Appendf(b, "wire_ns_%s:count=%d,p50=%d,p99=%d,p999=%d,max=%d\r\n",
				wireHistNames[i], h.Count, h.P50, h.P99, h.P999, h.Max)
		}
		b = append(b, "\r\n"...)
	}
	return b
}
