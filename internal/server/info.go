package server

import (
	"fmt"
	"time"

	"chameleondb/internal/obs"
)

// asciiEqualFold reports whether b equals s under ASCII case folding. The
// section names INFO matches against are ASCII, so this avoids the
// string(section) conversion a strings.EqualFold call would force on the
// command path.
func asciiEqualFold(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		cb, cs := b[i], s[i]
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if 'A' <= cs && cs <= 'Z' {
			cs += 'a' - 'A'
		}
		if cb != cs {
			return false
		}
	}
	return true
}

// infoText renders the INFO reply: redis-style "# Section\nkey:value" lines,
// restricted to one section when the client names one (section aliases the
// RESP arg buffer; it is read, never retained). The numbers are the same
// atomics the obs registry exports — INFO is the wire-side view of the same
// observability block /stats.json serves.
func (s *Server) infoText(section []byte) []byte {
	want := func(name string) bool {
		return len(section) == 0 || asciiEqualFold(section, name)
	}
	m := s.metrics
	var b []byte
	if want("server") {
		b = append(b, "# Server\r\n"...)
		b = fmt.Appendf(b, "store:%s\r\n", s.store.Name())
		b = fmt.Appendf(b, "uptime_in_seconds:%d\r\n", int64(time.Since(s.start).Seconds()))
		if a := s.Addr(); a != nil {
			b = fmt.Appendf(b, "tcp_addr:%s\r\n", a)
		}
		b = append(b, "\r\n"...)
	}
	if want("clients") {
		b = append(b, "# Clients\r\n"...)
		b = fmt.Appendf(b, "connected_clients:%d\r\n", m.ConnsOpen.Load())
		b = fmt.Appendf(b, "total_connections_received:%d\r\n", m.ConnsAccepted.Load())
		b = fmt.Appendf(b, "rejected_connections:%d\r\n", m.ConnsRejected.Load())
		b = append(b, "\r\n"...)
	}
	if want("stats") {
		b = append(b, "# Stats\r\n"...)
		b = fmt.Appendf(b, "total_commands_processed:%d\r\n", m.CmdsProcessed.Load())
		b = fmt.Appendf(b, "commands_in_flight:%d\r\n", m.CmdsInFlight.Load())
		b = fmt.Appendf(b, "protocol_errors:%d\r\n", m.ProtocolErrors.Load())
		b = fmt.Appendf(b, "store_errors:%d\r\n", m.StoreErrors.Load())
		b = fmt.Appendf(b, "group_commits:%d\r\n", m.GroupCommits.Load())
		b = fmt.Appendf(b, "group_commit_flushes:%d\r\n", m.GroupCommitFlushes.Load())
		b = fmt.Appendf(b, "dram_footprint_bytes:%d\r\n", s.store.DRAMFootprint())
		b = append(b, "\r\n"...)
	}
	if want("cache") {
		// Hot-key cache telemetry, for sizing -hotcache-bytes from live
		// traffic: enabled/capacity say what is configured, hit_ratio and
		// evictions say whether it is big enough, admits_rejected says the
		// admission filter is holding the cold tail out.
		b = append(b, "# Cache\r\n"...)
		if s.cache == nil {
			b = append(b, "cache_enabled:0\r\n"...)
		} else {
			cs := s.cache.Stats()
			b = append(b, "cache_enabled:1\r\n"...)
			b = fmt.Appendf(b, "cache_capacity_bytes:%d\r\n", cs.Capacity)
			b = fmt.Appendf(b, "cache_bytes:%d\r\n", cs.Bytes)
			b = fmt.Appendf(b, "cache_entries:%d\r\n", cs.Entries)
			b = fmt.Appendf(b, "cache_hits:%d\r\n", cs.Hits)
			b = fmt.Appendf(b, "cache_misses:%d\r\n", cs.Misses)
			b = fmt.Appendf(b, "cache_hit_ratio:%.4f\r\n", cs.HitRatio())
			b = fmt.Appendf(b, "cache_admits:%d\r\n", cs.Admits)
			b = fmt.Appendf(b, "cache_admits_rejected:%d\r\n", cs.AdmitsRejected)
			b = fmt.Appendf(b, "cache_evictions:%d\r\n", cs.Evictions)
			b = fmt.Appendf(b, "cache_invalidations:%d\r\n", cs.Invalidations)
		}
		b = append(b, "\r\n"...)
	}
	if want("replication") {
		if s.cfg.Repl != nil {
			b = s.cfg.Repl.InfoSection(b)
		} else {
			b = append(b, "# Replication\r\nrole:master\r\nconnected_slaves:0\r\n"...)
		}
		b = append(b, "\r\n"...)
	}
	if want("maintenance") {
		// The engine's background maintenance pipeline, read from its metrics
		// registry so this stays store-agnostic: a store without the async
		// pipeline simply reports zeros (or no section when it has no
		// registry at all).
		if p, ok := s.store.(obs.Provider); ok && p.Registry() != nil {
			snap := p.Registry().Snapshot()
			b = append(b, "# Maintenance\r\n"...)
			b = fmt.Appendf(b, "maintenance_queue_depth:%d\r\n", snap.Gauges["maintenance_queue_depth"])
			b = fmt.Appendf(b, "maintenance_workers_busy:%d\r\n", snap.Gauges["maintenance_workers_busy"])
			b = fmt.Appendf(b, "mem_freezes:%d\r\n", snap.Counters["mem_freezes"])
			b = fmt.Appendf(b, "put_slowdowns:%d\r\n", snap.Counters["put_slowdowns"])
			b = fmt.Appendf(b, "put_stalls:%d\r\n", snap.Counters["put_stalls"])
			b = fmt.Appendf(b, "maint_jobs_flush:%d\r\n", snap.Counters["maint_jobs_flush"])
			b = fmt.Appendf(b, "maint_jobs_spill:%d\r\n", snap.Counters["maint_jobs_spill"])
			b = fmt.Appendf(b, "maint_jobs_compact:%d\r\n", snap.Counters["maint_jobs_compact"])
			b = fmt.Appendf(b, "maint_jobs_last_level:%d\r\n", snap.Counters["maint_jobs_last_level"])
			b = fmt.Appendf(b, "maint_jobs_skipped:%d\r\n", snap.Counters["maint_jobs_skipped"])
			if h, ok := snap.Histograms["put_stall_ns"]; ok {
				b = fmt.Appendf(b, "put_stall_ns:count=%d,p50=%d,p99=%d,max=%d\r\n", h.Count, h.P50, h.P99, h.Max)
			}
			if h, ok := snap.Histograms["job_duration_ns"]; ok {
				b = fmt.Appendf(b, "job_duration_ns:count=%d,p50=%d,p99=%d,max=%d\r\n", h.Count, h.P50, h.P99, h.Max)
			}
			b = append(b, "\r\n"...)
		}
	}
	if want("commandstats") {
		b = append(b, "# Commandstats\r\n"...)
		for k := cmdKind(0); k < numCmdKinds; k++ {
			if n := m.PerCmd[k].Load(); n > 0 {
				b = fmt.Appendf(b, "cmdstat_%s:calls=%d\r\n", k.String(), n)
			}
		}
		b = append(b, "\r\n"...)
	}
	if want("latencystats") {
		b = append(b, "# Latencystats\r\n"...)
		for i := range m.Wire {
			h := obs.SummarizeHistogram(&m.Wire[i])
			if h.Count == 0 {
				continue
			}
			b = fmt.Appendf(b, "wire_ns_%s:count=%d,p50=%d,p99=%d,p999=%d,max=%d\r\n",
				wireHistNames[i], h.Count, h.P50, h.P99, h.P999, h.Max)
		}
		b = append(b, "\r\n"...)
	}
	return b
}
