package server

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"time"

	"chameleondb/internal/kvstore"
	"chameleondb/internal/resp"
	"chameleondb/internal/wlog"
)

// pendingCmd tracks one decoded command until its reply reaches the socket,
// so wire latency includes execution, the group-commit wait, and the write.
type pendingCmd struct {
	kind cmdKind
	t0   time.Time
}

// conn is one client connection: one goroutine, one session, one RESP
// reader/writer pair. The writer buffers replies until the batch's group
// commit has completed, so an ack can never reach the wire before the write
// it acknowledges is durable.
type conn struct {
	srv  *Server
	nc   net.Conn
	r    *resp.Reader
	w    *resp.Writer
	se   kvstore.Session
	done chan error // group-commit ack channel, reused across batches
	pend []pendingCmd

	// MULTI state. Queued commands are deep copies — decoded args alias the
	// reader's buffer, which the next ReadCommand overwrites. txnErr latches a
	// queue-time error (unknown command, bad arity); EXEC then aborts the
	// whole transaction, Redis-style.
	inTxn  bool
	txnErr bool
	txn    []queuedCmd
}

// queuedCmd is one command buffered between MULTI and EXEC.
type queuedCmd struct {
	kind cmdKind
	args [][]byte
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		srv:  s,
		nc:   nc,
		r:    resp.NewReaderLimits(nc, s.cfg.Limits),
		w:    resp.NewWriter(nc),
		se:   s.newSession(),
		done: make(chan error, 1),
	}
}

// nudge unblocks a handler parked in a read so shutdown does not wait out the
// idle timeout. The handler observes the expired deadline, sees the server
// draining, and unwinds; a handler mid-batch is untouched — execution never
// reads the socket — and finishes its batch first.
func (c *conn) nudge() { c.nc.SetReadDeadline(time.Now()) }

func (c *conn) serve() {
	defer func() {
		releaseSession(c.se)
		c.nc.Close()
		c.srv.remove(c)
	}()
	m := c.srv.metrics
	for {
		if c.srv.isDraining() {
			return
		}
		if t := c.srv.cfg.ReadTimeout; t > 0 {
			c.nc.SetReadDeadline(time.Now().Add(t))
		}
		// First command of a batch: block until the client sends something.
		args, err := c.r.ReadCommand()
		if err != nil {
			c.fail(err)
			return
		}
		var (
			dirty   bool // batch contains an unflushed write
			quit    bool
			decErr  error
			decoded int
		)
		c.pend = c.pend[:0]
		for {
			t0 := time.Now()
			m.CmdsInFlight.Add(1)
			kind := commandKind(args[0])
			c.execute(kind, args, &dirty, &quit)
			c.pend = append(c.pend, pendingCmd{kind, t0})
			decoded++
			if quit || decoded >= c.srv.cfg.MaxPipeline || c.r.Buffered() == 0 {
				break
			}
			// Pipelining: drain commands the client already sent without
			// touching the socket for replies in between. args alias the
			// reader's buffer, so each command executes before the next
			// ReadCommand overwrites it.
			if args, decErr = c.r.ReadCommand(); decErr != nil {
				break
			}
		}
		// Durability before acknowledgment: the buffered replies do not move
		// until every write in the batch has been group-committed.
		if dirty && !c.srv.cfg.AsyncAck {
			if err := c.srv.batch.commit(c.se, c.done); err != nil {
				// The writes are not durable; acking them would lie. Drop the
				// buffered acks, report the failure, and hang up.
				m.StoreErrors.Add(1)
				m.CmdsInFlight.Add(int64(-len(c.pend)))
				c.w.Reset()
				c.w.Error("ERR commit failed: " + err.Error())
				c.flushReplies()
				return
			}
		}
		if err := c.flushReplies(); err != nil {
			m.CmdsInFlight.Add(int64(-len(c.pend)))
			return
		}
		now := time.Now()
		for _, p := range c.pend {
			m.Wire[wireHistIndex(p.kind)].Record(now.Sub(p.t0).Nanoseconds())
			m.PerCmd[p.kind].Add(1)
		}
		m.CmdsProcessed.Add(int64(len(c.pend)))
		m.CmdsInFlight.Add(int64(-len(c.pend)))
		m.PipelineDepth.Record(int64(len(c.pend)))
		if decErr != nil {
			c.fail(decErr)
			return
		}
		if quit {
			return
		}
	}
}

// fail terminates the connection on a read error. Protocol violations get a
// final -ERR so a confused client can tell what happened; EOF and deadline
// expiry (idle timeout or a shutdown nudge) close silently.
func (c *conn) fail(err error) {
	if errors.Is(err, resp.ErrProtocol) {
		c.srv.metrics.ProtocolErrors.Add(1)
		c.w.Reset()
		c.w.Error("ERR Protocol error: " + err.Error())
		c.flushReplies()
	}
}

func (c *conn) flushReplies() error {
	if t := c.srv.cfg.WriteTimeout; t > 0 {
		c.nc.SetWriteDeadline(time.Now().Add(t))
	}
	return c.w.Flush()
}

// execute runs one decoded command, appending its reply to the write buffer.
// args alias the reader's internal buffer: valid only for this call, which is
// fine — the engine copies keys and values into its own arena on Put/Delete,
// and Get returns a fresh copy.
// maxScanCount caps a single SCAN batch so one command cannot buffer an
// unbounded reply.
const maxScanCount = 4096

func (c *conn) execute(kind cmdKind, args [][]byte, dirty, quit *bool) {
	m := c.srv.metrics
	if c.inTxn && kind != cmdMulti && kind != cmdExec && kind != cmdDiscard {
		c.enqueue(kind, args)
		return
	}
	switch kind {
	case cmdGet:
		if len(args) != 2 {
			c.arity("get")
			return
		}
		val, ok, err := c.se.Get(args[1])
		switch {
		case err != nil:
			m.StoreErrors.Add(1)
			c.w.Error("ERR " + err.Error())
		case !ok:
			c.w.Null()
		default:
			c.w.Bulk(val)
		}
	case cmdSet:
		if len(args) != 3 {
			c.arity("set")
			return
		}
		if err := c.se.Put(args[1], args[2]); err != nil {
			m.StoreErrors.Add(1)
			c.w.Error("ERR " + err.Error())
			return
		}
		*dirty = true
		c.w.SimpleString("OK")
	case cmdDel:
		if len(args) < 2 {
			c.arity("del")
			return
		}
		// RESP's DEL reports how many keys existed, but the engine's Delete
		// is an unconditional tombstone append. The conditional delete runs
		// probe and tombstone under one shard-lock acquisition, so the count
		// is exact even when another connection races the same key; the
		// probe-then-delete fallback (stores without the capability) can
		// miscount across sessions and tombstone an already-absent key.
		cd, _ := c.se.(kvstore.ConditionalDeleter)
		var n int64
		for _, key := range args[1:] {
			var existed bool
			var err error
			if cd != nil {
				existed, err = cd.DeleteIfPresent(key)
			} else {
				_, existed, err = c.se.Get(key)
				if err == nil && existed {
					err = c.se.Delete(key)
				}
			}
			if err != nil {
				m.StoreErrors.Add(1)
				c.w.Error("ERR " + err.Error())
				return
			}
			if existed {
				n++
				*dirty = true
			}
		}
		c.w.Int(n)
	case cmdExists:
		if len(args) < 2 {
			c.arity("exists")
			return
		}
		var n int64
		for _, key := range args[1:] {
			_, ok, err := c.se.Get(key)
			if err != nil {
				m.StoreErrors.Add(1)
				c.w.Error("ERR " + err.Error())
				return
			}
			if ok {
				n++
			}
		}
		c.w.Int(n)
	case cmdPing:
		switch len(args) {
		case 1:
			c.w.SimpleString("PONG")
		case 2:
			c.w.Bulk(args[1])
		default:
			c.arity("ping")
		}
	case cmdInfo:
		var section string
		if len(args) > 1 {
			section = string(args[1])
		}
		c.w.Bulk(c.srv.infoText(section))
	case cmdFlushAll:
		// The engine has no bulk delete; ChameleonDB's FLUSHALL is a
		// store-wide durability barrier instead: seal this session's batch,
		// then every appender's, so everything acknowledged anywhere is
		// persistent when OK comes back. (Documented in DESIGN.md §7.)
		if err := c.se.Flush(); err != nil {
			m.StoreErrors.Add(1)
			c.w.Error("ERR " + err.Error())
			return
		}
		if lp, ok := c.srv.store.(interface{ Log() *wlog.Log }); ok {
			lp.Log().SyncAll(c.se.Clock())
		}
		c.w.SimpleString("OK")
	case cmdMGet:
		if len(args) < 2 {
			c.arity("mget")
			return
		}
		// Collect every result before emitting a single byte: a mid-batch
		// store error must produce one canonical -ERR frame, never a
		// partially written array stranded in the pipelined reply buffer.
		vals := make([][]byte, len(args)-1)
		hits := make([]bool, len(args)-1)
		for i, key := range args[1:] {
			val, ok, err := c.se.Get(key)
			if err != nil {
				m.StoreErrors.Add(1)
				c.w.Error("ERR " + err.Error())
				return
			}
			vals[i], hits[i] = val, ok
		}
		c.w.ArrayHeader(len(vals))
		for i, v := range vals {
			if hits[i] {
				c.w.Bulk(v)
			} else {
				c.w.Null()
			}
		}
	case cmdMSet:
		if len(args) < 3 || (len(args)-1)%2 != 0 {
			c.arity("mset")
			return
		}
		// Writes apply left to right; on a store error the already-written
		// prefix stays applied (documented deviation: Redis MSET is atomic),
		// but the reply is still a single canonical -ERR frame and dirty
		// stays set, so the prefix is group-committed like any other write.
		for i := 1; i+1 < len(args); i += 2 {
			if err := c.se.Put(args[i], args[i+1]); err != nil {
				m.StoreErrors.Add(1)
				c.w.Error("ERR " + err.Error())
				return
			}
			*dirty = true
		}
		c.w.SimpleString("OK")
	case cmdIncr, cmdIncrBy:
		want := 2
		if kind == cmdIncrBy {
			want = 3
		}
		if len(args) != want {
			c.arity(kind.String())
			return
		}
		inc, ok := c.se.(kvstore.Incrementer)
		if !ok {
			c.w.Error("ERR " + kind.String() + " is not supported by this store")
			return
		}
		delta := int64(1)
		if kind == cmdIncrBy {
			var err error
			delta, err = strconv.ParseInt(string(args[2]), 10, 64)
			if err != nil {
				c.w.Error("ERR value is not an integer or out of range")
				return
			}
		}
		v, err := inc.IncrBy(args[1], delta)
		if err != nil {
			m.StoreErrors.Add(1)
			c.w.Error("ERR " + err.Error())
			return
		}
		*dirty = true
		c.w.Int(v)
	case cmdScan:
		// SCAN cursor [COUNT n] [WITHVALUES]. WITHVALUES is this server's
		// extension: values interleave with keys in the reply so a scan does
		// not need an MGET per batch.
		if len(args) < 2 {
			c.arity("scan")
			return
		}
		sc, ok := c.se.(kvstore.Scanner)
		if !ok {
			c.w.Error("ERR scan is not supported by this store")
			return
		}
		cursor, err := strconv.ParseUint(string(args[1]), 10, 64)
		if err != nil {
			c.w.Error("ERR invalid cursor")
			return
		}
		count := 10
		withValues := false
		for i := 2; i < len(args); i++ {
			switch {
			case equalFoldUpper(args[i], "COUNT") && i+1 < len(args):
				n, err := strconv.Atoi(string(args[i+1]))
				if err != nil || n < 1 {
					c.w.Error("ERR value is not an integer or out of range")
					return
				}
				if n > maxScanCount {
					n = maxScanCount
				}
				count = n
				i++
			case equalFoldUpper(args[i], "WITHVALUES"):
				withValues = true
			default:
				c.w.Error("ERR syntax error")
				return
			}
		}
		pairs, next, err := sc.Scan(cursor, count)
		if err != nil {
			m.StoreErrors.Add(1)
			c.w.Error("ERR " + err.Error())
			return
		}
		c.w.ArrayHeader(2)
		c.w.Bulk(strconv.AppendUint(nil, next, 10))
		if withValues {
			c.w.ArrayHeader(len(pairs) * 2)
			for _, kv := range pairs {
				c.w.Bulk(kv.Key)
				c.w.Bulk(kv.Value)
			}
		} else {
			c.w.ArrayHeader(len(pairs))
			for _, kv := range pairs {
				c.w.Bulk(kv.Key)
			}
		}
	case cmdMulti:
		if c.inTxn {
			c.w.Error("ERR MULTI calls can not be nested")
			return
		}
		c.inTxn = true
		c.txnErr = false
		c.txn = c.txn[:0]
		c.w.SimpleString("OK")
	case cmdExec:
		if !c.inTxn {
			c.w.Error("ERR EXEC without MULTI")
			return
		}
		queued := c.txn
		aborted := c.txnErr
		c.inTxn, c.txnErr, c.txn = false, false, nil
		if aborted {
			c.w.Error("EXECABORT Transaction discarded because of previous errors.")
			return
		}
		// The queued commands run back to back on this connection's session;
		// their replies land inside one array, and their writes ride the same
		// group commit as any pipelined batch — every ack in the array is
		// durable when it reaches the wire. Commands from other connections
		// may interleave at the engine (documented deviation from Redis's
		// single-threaded isolation).
		c.w.ArrayHeader(len(queued))
		for _, q := range queued {
			c.execute(q.kind, q.args, dirty, quit)
		}
	case cmdDiscard:
		if !c.inTxn {
			c.w.Error("ERR DISCARD without MULTI")
			return
		}
		c.inTxn, c.txnErr, c.txn = false, false, nil
		c.w.SimpleString("OK")
	case cmdQuit:
		c.w.SimpleString("OK")
		*quit = true
	case cmdCommand:
		// Enough for redis-cli's handshake.
		c.w.ArrayHeader(0)
	default:
		c.w.Error(fmt.Sprintf("ERR unknown command '%s'", args[0]))
	}
}

// enqueue buffers one command between MULTI and EXEC, deep-copying args out
// of the reader's reused buffer. Unknown commands, wrong arities, and
// non-transactional commands are rejected immediately and poison the
// transaction — EXEC then aborts, Redis-style, instead of burying the error
// inside the reply array.
func (c *conn) enqueue(kind cmdKind, args [][]byte) {
	switch {
	case kind == cmdUnknown:
		c.txnErr = true
		c.w.Error(fmt.Sprintf("ERR unknown command '%s'", args[0]))
		return
	case kind == cmdQuit || kind == cmdFlushAll:
		c.txnErr = true
		c.w.Error("ERR " + kind.String() + " is not allowed in transactions")
		return
	case !arityOK(kind, len(args)):
		c.txnErr = true
		c.w.Error("ERR wrong number of arguments for '" + kind.String() + "' command")
		return
	}
	cp := make([][]byte, len(args))
	for i, a := range args {
		cp[i] = append([]byte(nil), a...)
	}
	c.txn = append(c.txn, queuedCmd{kind: kind, args: cp})
	c.w.SimpleString("QUEUED")
}

// arityOK validates argument counts at MULTI queue time, mirroring the checks
// each execute case performs.
func arityOK(kind cmdKind, n int) bool {
	switch kind {
	case cmdGet, cmdIncr:
		return n == 2
	case cmdSet, cmdIncrBy:
		return n == 3
	case cmdDel, cmdExists, cmdMGet:
		return n >= 2
	case cmdMSet:
		return n >= 3 && (n-1)%2 == 0
	case cmdPing, cmdInfo:
		return n <= 2
	case cmdScan:
		return n >= 2 && n <= 5
	}
	return true
}

func (c *conn) arity(name string) {
	c.w.Error("ERR wrong number of arguments for '" + name + "' command")
}
