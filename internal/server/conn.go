package server

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"time"

	"chameleondb/internal/kvstore"
	"chameleondb/internal/resp"
	"chameleondb/internal/wlog"
)

// pendingCmd tracks one decoded command until its reply reaches the socket,
// so wire latency includes execution, the group-commit wait, and the write.
type pendingCmd struct {
	kind cmdKind
	t0   time.Time
}

// connScratchRetain caps the per-connection scratch buffers (GET/MGET value
// buffer, MULTI queue arena) kept across batches, mirroring the RESP reader
// and writer retention caps: one burst of huge values does not pin its
// high-water mark for the connection's lifetime.
const connScratchRetain = 1 << 20

// mgetSpan records one MGET result inside the connection's shared value
// buffer. Offsets, not slices: the buffer may reallocate as later values
// append to it.
type mgetSpan struct {
	off, n int
	hit    bool
}

// argSpan is one queued argument's location in the MULTI arena.
type argSpan struct{ off, n int }

// conn is one client connection: one goroutine, one session, one RESP
// reader/writer pair. The writer buffers replies until the batch's group
// commit has completed, so an ack can never reach the wire before the write
// it acknowledges is durable.
//
// The hot path is allocation-free in steady state: decoded args are spans of
// the reader's reused buffer and flow into the engine without copies (Put
// copies into its log batch before returning), GET values land in the reused
// vbuf via kvstore.ValueReader, and runs of pipelined SETs dispatch through
// kvstore.BatchWriter under one shard-lock acquisition per shard touched.
// Every scratch buffer is cap-bounded so one oversized batch cannot pin its
// high-water mark.
type conn struct {
	srv  *Server
	nc   net.Conn
	r    *resp.Reader
	w    *resp.Writer
	se   kvstore.Session
	done chan error // group-commit ack channel, reused across batches
	pend []pendingCmd

	// Optional engine capabilities, type-asserted once at accept time instead
	// of per command.
	vr  kvstore.ValueReader
	bw  kvstore.BatchWriter
	cd  kvstore.ConditionalDeleter
	inc kvstore.Incrementer
	sc  kvstore.Scanner

	// vbuf is the reused value buffer for GET/EXISTS/MGET reads (GetInto
	// appends into it); mget records MGET result spans inside it. num is
	// integer-formatting scratch (SCAN cursors).
	vbuf []byte
	mget []mgetSpan
	num  [24]byte

	// runKeys/runVals collect a run of consecutive pipelined SETs whose args
	// are pinned in the reader's buffer (ReadCommandKeep); dispatchRun hands
	// them to PutBatch in one call. MSET borrows the same scratch.
	runKeys [][]byte
	runVals [][]byte

	// MULTI state. Queued commands are copied into the txnBuf arena — decoded
	// args alias the reader's buffer, which is released at batch end — with
	// one argSpan per argument, so queuing allocates nothing in steady state.
	// txnErr latches a queue-time error (unknown command, bad arity); EXEC
	// then aborts the whole transaction, Redis-style. txnArgs is the scratch
	// used to materialize one queued command's args at EXEC time.
	inTxn    bool
	txnErr   bool
	txn      []queuedCmd
	txnBuf   []byte
	txnSpans []argSpan
	txnArgs  [][]byte
}

// queuedCmd is one command buffered between MULTI and EXEC: its args are
// txnSpans[start:start+n] inside the connection's txnBuf arena.
type queuedCmd struct {
	kind  cmdKind
	start int
	n     int
}

func newConn(s *Server, nc net.Conn) *conn {
	c := &conn{
		srv:  s,
		nc:   nc,
		r:    resp.NewReaderLimits(nc, s.cfg.Limits),
		w:    resp.NewWriter(nc),
		se:   s.newSession(),
		done: make(chan error, 1),
	}
	if s.cfg.ReplyRetainBytes > 0 {
		c.w.SetMaxRetain(s.cfg.ReplyRetainBytes)
	}
	c.vr, _ = c.se.(kvstore.ValueReader)
	c.bw, _ = c.se.(kvstore.BatchWriter)
	c.cd, _ = c.se.(kvstore.ConditionalDeleter)
	c.inc, _ = c.se.(kvstore.Incrementer)
	c.sc, _ = c.se.(kvstore.Scanner)
	return c
}

// nudge unblocks a handler parked in a read so shutdown does not wait out the
// idle timeout. The handler observes the expired deadline, sees the server
// draining, and unwinds; a handler mid-batch is untouched — execution never
// reads the socket — and finishes its batch first.
func (c *conn) nudge() { c.nc.SetReadDeadline(time.Now()) }

func (c *conn) serve() {
	defer func() {
		releaseSession(c.se)
		c.nc.Close()
		c.srv.remove(c)
	}()
	m := c.srv.metrics
	for {
		if c.srv.isDraining() {
			return
		}
		if t := c.srv.cfg.ReadTimeout; t > 0 {
			c.nc.SetReadDeadline(time.Now().Add(t))
		}
		// First command of a batch: block until the client sends something.
		// ReadCommand releases whatever the previous batch pinned.
		args, err := c.r.ReadCommand()
		if err != nil {
			c.fail(err)
			return
		}
		var (
			dirty   bool // batch contains an unflushed write
			quit    bool
			decErr  error
			decoded int
		)
		c.pend = c.pend[:0]
		for {
			t0 := time.Now()
			m.CmdsInFlight.Add(1)
			kind := commandKind(args[0])
			// Shard-affine dispatch: a run of consecutive SETs is collected,
			// not executed — its args stay pinned in the reader's buffer —
			// and dispatchRun applies the whole run through PutBatch, one
			// shard-lock acquisition per destination shard instead of one per
			// SET. Replies stay in command order because the run is contiguous
			// and is dispatched before the command that ends it executes.
			if kind == cmdSet && len(args) == 3 && !c.inTxn && c.bw != nil {
				c.runKeys = append(c.runKeys, args[1])
				c.runVals = append(c.runVals, args[2])
			} else {
				c.dispatchRun(&dirty)
				c.execute(kind, args, &dirty, &quit)
			}
			c.pend = append(c.pend, pendingCmd{kind, t0})
			decoded++
			if quit || decoded >= c.srv.cfg.MaxPipeline || c.r.Buffered() == 0 {
				break
			}
			// Pipelining: drain commands the client already sent without
			// touching the socket for replies in between. ReadCommandKeep
			// pins earlier payloads (the SET run above) while decoding the
			// next command.
			if args, decErr = c.r.ReadCommandKeep(); decErr != nil {
				break
			}
		}
		c.dispatchRun(&dirty)
		c.r.Release()
		// Durability before acknowledgment: the buffered replies do not move
		// until every write in the batch has been group-committed.
		if dirty && !c.srv.cfg.AsyncAck {
			if err := c.srv.batch.commit(c.se, c.done); err != nil {
				// The writes are not durable; acking them would lie. Drop the
				// buffered acks, report the failure, and hang up.
				m.StoreErrors.Add(1)
				m.CmdsInFlight.Add(int64(-len(c.pend)))
				c.w.Reset()
				c.w.Error("ERR commit failed: " + err.Error())
				c.flushReplies()
				return
			}
		}
		if err := c.flushReplies(); err != nil {
			m.CmdsInFlight.Add(int64(-len(c.pend)))
			return
		}
		now := time.Now()
		for _, p := range c.pend {
			m.Wire[wireHistIndex(p.kind)].Record(now.Sub(p.t0).Nanoseconds())
			m.PerCmd[p.kind].Add(1)
		}
		m.CmdsProcessed.Add(int64(len(c.pend)))
		m.CmdsInFlight.Add(int64(-len(c.pend)))
		m.PipelineDepth.Record(int64(len(c.pend)))
		if decErr != nil {
			c.fail(decErr)
			return
		}
		if quit {
			return
		}
	}
}

// dispatchRun applies the collected run of pipelined SETs and emits their
// replies, in command order (the run is contiguous in the pipeline). A
// single SET goes through the plain Put path; longer runs dispatch through
// PutBatch, which groups keys by destination shard and applies each group
// under one shard-lock acquisition. Durability is unchanged — the entries
// land in this connection's session batch and the caller's group commit seals
// them before any +OK reaches the wire. On error every SET in the run reports
// it; a subset of the run may nevertheless have been applied (the same
// ambiguity MSET documents), so the batch stays dirty and commits the subset.
func (c *conn) dispatchRun(dirty *bool) {
	n := len(c.runKeys)
	if n == 0 {
		return
	}
	var err error
	if n == 1 {
		err = c.se.Put(c.runKeys[0], c.runVals[0])
	} else {
		err = c.bw.PutBatch(c.runKeys, c.runVals)
	}
	*dirty = true
	if err != nil {
		c.srv.metrics.StoreErrors.Add(int64(n))
		msg := respError(err)
		for i := 0; i < n; i++ {
			c.w.Error(msg)
		}
	} else {
		for i := 0; i < n; i++ {
			c.w.SimpleString("OK")
		}
	}
	c.runKeys = c.runKeys[:0]
	c.runVals = c.runVals[:0]
}

// respError renders a store error as a RESP error string. Errors that carry
// their own Redis error code — today that is core.ErrReadOnly's "READONLY
// You can't write against a read only replica." — pass through verbatim so
// clients see the conventional -READONLY reply; everything else is wrapped
// in the generic ERR code.
func respError(err error) string {
	msg := err.Error()
	if len(msg) >= len("READONLY ") && msg[:len("READONLY ")] == "READONLY " {
		return msg
	}
	return "ERR " + msg
}

// fail terminates the connection on a read error. Protocol violations get a
// final -ERR so a confused client can tell what happened; EOF and deadline
// expiry (idle timeout or a shutdown nudge) close silently.
func (c *conn) fail(err error) {
	if errors.Is(err, resp.ErrProtocol) {
		c.srv.metrics.ProtocolErrors.Add(1)
		c.w.Reset()
		c.w.Error("ERR Protocol error: " + err.Error())
		c.flushReplies()
	}
}

func (c *conn) flushReplies() error {
	if t := c.srv.cfg.WriteTimeout; t > 0 {
		c.nc.SetWriteDeadline(time.Now().Add(t))
	}
	err := c.w.Flush()
	// The shared value buffer follows the same retention policy as the RESP
	// buffers: shrink after the batch that grew it past the cap.
	if cap(c.vbuf) > connScratchRetain {
		c.vbuf = nil
	}
	return err
}

// getInto reads key through the allocation-free path when the session
// supports it, reusing (and growing) the connection's value buffer.
func (c *conn) getInto(key []byte) ([]byte, bool, error) {
	if c.vr == nil {
		return c.se.Get(key)
	}
	val, ok, err := c.vr.GetInto(key, c.vbuf[:0])
	c.vbuf = val[:0]
	return val, ok, err
}

// execute runs one decoded command, appending its reply to the write buffer.
// args alias the reader's internal buffer: valid only for this call, which is
// fine — the engine copies keys and values into its own arena on Put/Delete,
// and Get returns a fresh copy (see the buffer-ownership contract, DESIGN.md
// §7).
// maxScanCount caps a single SCAN batch so one command cannot buffer an
// unbounded reply.
const maxScanCount = 4096

func (c *conn) execute(kind cmdKind, args [][]byte, dirty, quit *bool) {
	m := c.srv.metrics
	if c.inTxn && kind != cmdMulti && kind != cmdExec && kind != cmdDiscard {
		c.enqueue(kind, args)
		return
	}
	switch kind {
	case cmdGet:
		if len(args) != 2 {
			c.arity("get")
			return
		}
		val, ok, err := c.getInto(args[1])
		switch {
		case err != nil:
			m.StoreErrors.Add(1)
			c.w.Error(respError(err))
		case !ok:
			c.w.Null()
		default:
			c.w.Bulk(val)
		}
	case cmdSet:
		if len(args) != 3 {
			c.arity("set")
			return
		}
		if err := c.se.Put(args[1], args[2]); err != nil {
			m.StoreErrors.Add(1)
			c.w.Error(respError(err))
			return
		}
		*dirty = true
		c.w.SimpleString("OK")
	case cmdDel:
		if len(args) < 2 {
			c.arity("del")
			return
		}
		// RESP's DEL reports how many keys existed, but the engine's Delete
		// is an unconditional tombstone append. The conditional delete runs
		// probe and tombstone under one shard-lock acquisition, so the count
		// is exact even when another connection races the same key; the
		// probe-then-delete fallback (stores without the capability) can
		// miscount across sessions and tombstone an already-absent key.
		var n int64
		for _, key := range args[1:] {
			var existed bool
			var err error
			if c.cd != nil {
				existed, err = c.cd.DeleteIfPresent(key)
			} else {
				_, existed, err = c.getInto(key)
				if err == nil && existed {
					err = c.se.Delete(key)
				}
			}
			if err != nil {
				m.StoreErrors.Add(1)
				c.w.Error(respError(err))
				return
			}
			if existed {
				n++
				*dirty = true
			}
		}
		c.w.Int(n)
	case cmdExists:
		if len(args) < 2 {
			c.arity("exists")
			return
		}
		var n int64
		for _, key := range args[1:] {
			_, ok, err := c.getInto(key)
			if err != nil {
				m.StoreErrors.Add(1)
				c.w.Error(respError(err))
				return
			}
			if ok {
				n++
			}
		}
		c.w.Int(n)
	case cmdPing:
		switch len(args) {
		case 1:
			c.w.SimpleString("PONG")
		case 2:
			c.w.Bulk(args[1])
		default:
			c.arity("ping")
		}
	case cmdInfo:
		var section []byte
		if len(args) > 1 {
			section = args[1]
		}
		c.w.Bulk(c.srv.infoText(section))
	case cmdFlushAll:
		// The engine has no bulk delete; ChameleonDB's FLUSHALL is a
		// store-wide durability barrier instead: seal this session's batch,
		// then every appender's, so everything acknowledged anywhere is
		// persistent when OK comes back. (Documented in DESIGN.md §7.)
		if err := c.se.Flush(); err != nil {
			m.StoreErrors.Add(1)
			c.w.Error(respError(err))
			return
		}
		if lp, ok := c.srv.store.(interface{ Log() *wlog.Log }); ok {
			if lg := lp.Log(); lg != nil {
				lg.SyncAll(c.se.Clock())
			}
		}
		// FLUSHALL is also the operator's "known state" point: drop the
		// volatile cache so everything served afterwards is a fresh engine
		// read (over-invalidation is always safe).
		c.srv.cache.InvalidateAll()
		c.w.SimpleString("OK")
	case cmdMGet:
		if len(args) < 2 {
			c.arity("mget")
			return
		}
		// Collect every result before emitting a single byte: a mid-batch
		// store error must produce one canonical -ERR frame, never a
		// partially written array stranded in the pipelined reply buffer.
		// Values accumulate in the shared vbuf with spans (offsets, because
		// append may move the buffer), so a warm connection allocates nothing.
		if c.vr != nil {
			buf := c.vbuf[:0]
			spans := c.mget[:0]
			for _, key := range args[1:] {
				off := len(buf)
				nb, ok, err := c.vr.GetInto(key, buf)
				if err != nil {
					m.StoreErrors.Add(1)
					c.w.Error(respError(err))
					c.vbuf, c.mget = nb[:0], spans[:0]
					return
				}
				buf = nb
				spans = append(spans, mgetSpan{off: off, n: len(buf) - off, hit: ok})
			}
			c.vbuf, c.mget = buf[:0], spans[:0]
			c.w.ArrayHeader(len(spans))
			for _, sp := range spans {
				if sp.hit {
					c.w.Bulk(buf[sp.off : sp.off+sp.n])
				} else {
					c.w.Null()
				}
			}
			return
		}
		vals := make([][]byte, len(args)-1)
		hits := make([]bool, len(args)-1)
		for i, key := range args[1:] {
			val, ok, err := c.se.Get(key)
			if err != nil {
				m.StoreErrors.Add(1)
				c.w.Error(respError(err))
				return
			}
			vals[i], hits[i] = val, ok
		}
		c.w.ArrayHeader(len(vals))
		for i, v := range vals {
			if hits[i] {
				c.w.Bulk(v)
			} else {
				c.w.Null()
			}
		}
	case cmdMSet:
		if len(args) < 3 || (len(args)-1)%2 != 0 {
			c.arity("mset")
			return
		}
		// Writes apply through PutBatch (shard-affine groups); on a store
		// error some subset may stay applied (documented deviation: Redis
		// MSET is atomic — here a failed MSET may leave an applied subset,
		// where the sequential fallback leaves an applied prefix), but the
		// reply is still a single canonical -ERR frame and dirty stays set,
		// so whatever applied is group-committed like any other write.
		if c.bw != nil {
			keys := c.runKeys[:0]
			vals := c.runVals[:0]
			for i := 1; i+1 < len(args); i += 2 {
				keys = append(keys, args[i])
				vals = append(vals, args[i+1])
			}
			err := c.bw.PutBatch(keys, vals)
			c.runKeys, c.runVals = keys[:0], vals[:0]
			*dirty = true
			if err != nil {
				m.StoreErrors.Add(1)
				c.w.Error(respError(err))
				return
			}
			c.w.SimpleString("OK")
			return
		}
		for i := 1; i+1 < len(args); i += 2 {
			if err := c.se.Put(args[i], args[i+1]); err != nil {
				m.StoreErrors.Add(1)
				c.w.Error(respError(err))
				return
			}
			*dirty = true
		}
		c.w.SimpleString("OK")
	case cmdIncr, cmdIncrBy:
		want := 2
		if kind == cmdIncrBy {
			want = 3
		}
		if len(args) != want {
			c.arity(kind.String())
			return
		}
		if c.inc == nil {
			c.w.Error("ERR " + kind.String() + " is not supported by this store")
			return
		}
		delta := int64(1)
		if kind == cmdIncrBy {
			var ok bool
			delta, ok = resp.ParseInt(args[2])
			if !ok {
				c.w.Error("ERR value is not an integer or out of range")
				return
			}
		}
		v, err := c.inc.IncrBy(args[1], delta)
		if err != nil {
			m.StoreErrors.Add(1)
			c.w.Error(respError(err))
			return
		}
		*dirty = true
		c.w.Int(v)
	case cmdScan:
		// SCAN cursor [MATCH pattern] [COUNT n] [WITHVALUES]. WITHVALUES is
		// this server's extension: values interleave with keys in the reply so
		// a scan does not need an MGET per batch. MATCH filters server-side,
		// per page, after the engine scan — exactly Redis's contract: COUNT
		// governs how many entries the engine visits, not how many survive the
		// filter, so a page may come back empty while the cursor still
		// advances.
		if len(args) < 2 {
			c.arity("scan")
			return
		}
		if c.sc == nil {
			c.w.Error("ERR scan is not supported by this store")
			return
		}
		cursor, ok := resp.ParseUint(args[1])
		if !ok {
			c.w.Error("ERR invalid cursor")
			return
		}
		count := 10
		withValues := false
		var match []byte
		for i := 2; i < len(args); i++ {
			switch {
			case equalFoldUpper(args[i], "COUNT") && i+1 < len(args):
				n, ok := resp.ParseInt(args[i+1])
				if !ok || n < 1 {
					c.w.Error("ERR value is not an integer or out of range")
					return
				}
				if n > maxScanCount {
					n = maxScanCount
				}
				count = int(n)
				i++
			case equalFoldUpper(args[i], "MATCH") && i+1 < len(args):
				match = args[i+1]
				i++
			case equalFoldUpper(args[i], "WITHVALUES"):
				withValues = true
			default:
				c.w.Error("ERR syntax error")
				return
			}
		}
		pairs, next, err := c.sc.Scan(cursor, count)
		if err != nil {
			m.StoreErrors.Add(1)
			c.w.Error(respError(err))
			return
		}
		if match != nil {
			kept := pairs[:0]
			for _, kv := range pairs {
				if globMatch(match, kv.Key) {
					kept = append(kept, kv)
				}
			}
			pairs = kept
		}
		c.w.ArrayHeader(2)
		c.w.Bulk(strconv.AppendUint(c.num[:0], next, 10))
		if withValues {
			c.w.ArrayHeader(len(pairs) * 2)
			for _, kv := range pairs {
				c.w.Bulk(kv.Key)
				c.w.Bulk(kv.Value)
			}
		} else {
			c.w.ArrayHeader(len(pairs))
			for _, kv := range pairs {
				c.w.Bulk(kv.Key)
			}
		}
	case cmdReplicaOf:
		if len(args) != 3 {
			c.arity("replicaof")
			return
		}
		repl := c.srv.cfg.Repl
		if repl == nil {
			c.w.Error("ERR replication is not enabled on this server")
			return
		}
		var addr string
		if !equalFoldUpper(args[1], "NO") || !equalFoldUpper(args[2], "ONE") {
			addr = net.JoinHostPort(string(args[1]), string(args[2]))
		}
		if err := repl.ReplicaOf(addr); err != nil {
			m.StoreErrors.Add(1)
			c.w.Error(respError(err))
			return
		}
		c.w.SimpleString("OK")
	case cmdWait:
		// WAIT numreplicas timeout-ms. Flushes this session first so the
		// reply covers every write the connection has issued, then blocks
		// until that watermark is durable on numreplicas replicas or the
		// timeout fires. The reply is how many replicas had acknowledged.
		if len(args) != 3 {
			c.arity("wait")
			return
		}
		num, ok := resp.ParseInt(args[1])
		if !ok || num < 0 {
			c.w.Error("ERR value is not an integer or out of range")
			return
		}
		ms, ok := resp.ParseInt(args[2])
		if !ok || ms < 0 {
			c.w.Error("ERR timeout is not an integer or out of range")
			return
		}
		repl := c.srv.cfg.Repl
		if repl == nil {
			// No replication subsystem: WAIT degrades to a durability barrier
			// on this node alone, answering 0 replicas — same as Redis with no
			// replicas attached.
			if err := c.se.Flush(); err != nil {
				m.StoreErrors.Add(1)
				c.w.Error(respError(err))
				return
			}
			c.w.Int(0)
			return
		}
		n, err := repl.Wait(c.se, int(num), time.Duration(ms)*time.Millisecond)
		if err != nil {
			m.StoreErrors.Add(1)
			c.w.Error(respError(err))
			return
		}
		c.w.Int(int64(n))
	case cmdMulti:
		if c.inTxn {
			c.w.Error("ERR MULTI calls can not be nested")
			return
		}
		c.inTxn = true
		c.txnErr = false
		c.resetTxn()
		c.w.SimpleString("OK")
	case cmdExec:
		if !c.inTxn {
			c.w.Error("ERR EXEC without MULTI")
			return
		}
		aborted := c.txnErr
		c.inTxn, c.txnErr = false, false
		if aborted {
			c.resetTxn()
			c.w.Error("EXECABORT Transaction discarded because of previous errors.")
			return
		}
		// The queued commands run back to back on this connection's session;
		// their replies land inside one array, and their writes ride the same
		// group commit as any pipelined batch — every ack in the array is
		// durable when it reaches the wire. Commands from other connections
		// may interleave at the engine (documented deviation from Redis's
		// single-threaded isolation). Args materialize from the txnBuf arena;
		// queued commands can never grow the queue (MULTI/EXEC/DISCARD are
		// rejected at queue time), so iterating c.txn while executing is safe.
		c.w.ArrayHeader(len(c.txn))
		for _, q := range c.txn {
			c.txnArgs = c.txnArgs[:0]
			for _, sp := range c.txnSpans[q.start : q.start+q.n] {
				c.txnArgs = append(c.txnArgs, c.txnBuf[sp.off:sp.off+sp.n])
			}
			c.execute(q.kind, c.txnArgs, dirty, quit)
		}
		c.resetTxn()
	case cmdDiscard:
		if !c.inTxn {
			c.w.Error("ERR DISCARD without MULTI")
			return
		}
		c.inTxn, c.txnErr = false, false
		c.resetTxn()
		c.w.SimpleString("OK")
	case cmdQuit:
		c.w.SimpleString("OK")
		*quit = true
	case cmdCommand:
		// Enough for redis-cli's handshake.
		c.w.ArrayHeader(0)
	default:
		c.w.Error(fmt.Sprintf("ERR unknown command '%s'", args[0]))
	}
}

// resetTxn clears the MULTI queue and its arena, shrinking the arena back
// under the retention cap if one huge transaction grew it.
func (c *conn) resetTxn() {
	c.txn = c.txn[:0]
	c.txnSpans = c.txnSpans[:0]
	if cap(c.txnBuf) > connScratchRetain {
		c.txnBuf = nil
	}
	c.txnBuf = c.txnBuf[:0]
}

// enqueue buffers one command between MULTI and EXEC, copying args into the
// connection's txnBuf arena — the decoded args alias the reader's reused
// buffer, which is released at batch end. One growing arena plus span records
// replaces a fresh [][]byte per command, so a warm connection queues without
// allocating. Unknown commands, wrong arities, and non-transactional commands
// are rejected immediately and poison the transaction — EXEC then aborts,
// Redis-style, instead of burying the error inside the reply array.
func (c *conn) enqueue(kind cmdKind, args [][]byte) {
	switch {
	case kind == cmdUnknown:
		c.txnErr = true
		c.w.Error(fmt.Sprintf("ERR unknown command '%s'", args[0]))
		return
	case kind == cmdQuit || kind == cmdFlushAll:
		c.txnErr = true
		c.w.Error("ERR " + kind.String() + " is not allowed in transactions")
		return
	case !arityOK(kind, len(args)):
		c.txnErr = true
		c.w.Error("ERR wrong number of arguments for '" + kind.String() + "' command")
		return
	}
	start := len(c.txnSpans)
	for _, a := range args {
		off := len(c.txnBuf)
		c.txnBuf = append(c.txnBuf, a...)
		c.txnSpans = append(c.txnSpans, argSpan{off: off, n: len(a)})
	}
	c.txn = append(c.txn, queuedCmd{kind: kind, start: start, n: len(args)})
	c.w.SimpleString("QUEUED")
}

// arityOK validates argument counts at MULTI queue time, mirroring the checks
// each execute case performs.
func arityOK(kind cmdKind, n int) bool {
	switch kind {
	case cmdGet, cmdIncr:
		return n == 2
	case cmdSet, cmdIncrBy:
		return n == 3
	case cmdDel, cmdExists, cmdMGet:
		return n >= 2
	case cmdMSet:
		return n >= 3 && (n-1)%2 == 0
	case cmdPing, cmdInfo:
		return n <= 2
	case cmdScan:
		return n >= 2 && n <= 7
	case cmdReplicaOf, cmdWait:
		return n == 3
	}
	return true
}

func (c *conn) arity(name string) {
	c.w.Error("ERR wrong number of arguments for '" + name + "' command")
}
