package server

import (
	"errors"
	"fmt"
	"net"
	"time"

	"chameleondb/internal/kvstore"
	"chameleondb/internal/resp"
	"chameleondb/internal/wlog"
)

// pendingCmd tracks one decoded command until its reply reaches the socket,
// so wire latency includes execution, the group-commit wait, and the write.
type pendingCmd struct {
	kind cmdKind
	t0   time.Time
}

// conn is one client connection: one goroutine, one session, one RESP
// reader/writer pair. The writer buffers replies until the batch's group
// commit has completed, so an ack can never reach the wire before the write
// it acknowledges is durable.
type conn struct {
	srv  *Server
	nc   net.Conn
	r    *resp.Reader
	w    *resp.Writer
	se   kvstore.Session
	done chan error // group-commit ack channel, reused across batches
	pend []pendingCmd
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		srv:  s,
		nc:   nc,
		r:    resp.NewReaderLimits(nc, s.cfg.Limits),
		w:    resp.NewWriter(nc),
		se:   s.newSession(),
		done: make(chan error, 1),
	}
}

// nudge unblocks a handler parked in a read so shutdown does not wait out the
// idle timeout. The handler observes the expired deadline, sees the server
// draining, and unwinds; a handler mid-batch is untouched — execution never
// reads the socket — and finishes its batch first.
func (c *conn) nudge() { c.nc.SetReadDeadline(time.Now()) }

func (c *conn) serve() {
	defer func() {
		releaseSession(c.se)
		c.nc.Close()
		c.srv.remove(c)
	}()
	m := c.srv.metrics
	for {
		if c.srv.isDraining() {
			return
		}
		if t := c.srv.cfg.ReadTimeout; t > 0 {
			c.nc.SetReadDeadline(time.Now().Add(t))
		}
		// First command of a batch: block until the client sends something.
		args, err := c.r.ReadCommand()
		if err != nil {
			c.fail(err)
			return
		}
		var (
			dirty   bool // batch contains an unflushed write
			quit    bool
			decErr  error
			decoded int
		)
		c.pend = c.pend[:0]
		for {
			t0 := time.Now()
			m.CmdsInFlight.Add(1)
			kind := commandKind(args[0])
			c.execute(kind, args, &dirty, &quit)
			c.pend = append(c.pend, pendingCmd{kind, t0})
			decoded++
			if quit || decoded >= c.srv.cfg.MaxPipeline || c.r.Buffered() == 0 {
				break
			}
			// Pipelining: drain commands the client already sent without
			// touching the socket for replies in between. args alias the
			// reader's buffer, so each command executes before the next
			// ReadCommand overwrites it.
			if args, decErr = c.r.ReadCommand(); decErr != nil {
				break
			}
		}
		// Durability before acknowledgment: the buffered replies do not move
		// until every write in the batch has been group-committed.
		if dirty && !c.srv.cfg.AsyncAck {
			if err := c.srv.batch.commit(c.se, c.done); err != nil {
				// The writes are not durable; acking them would lie. Drop the
				// buffered acks, report the failure, and hang up.
				m.StoreErrors.Add(1)
				m.CmdsInFlight.Add(int64(-len(c.pend)))
				c.w.Reset()
				c.w.Error("ERR commit failed: " + err.Error())
				c.flushReplies()
				return
			}
		}
		if err := c.flushReplies(); err != nil {
			m.CmdsInFlight.Add(int64(-len(c.pend)))
			return
		}
		now := time.Now()
		for _, p := range c.pend {
			m.Wire[wireHistIndex(p.kind)].Record(now.Sub(p.t0).Nanoseconds())
			m.PerCmd[p.kind].Add(1)
		}
		m.CmdsProcessed.Add(int64(len(c.pend)))
		m.CmdsInFlight.Add(int64(-len(c.pend)))
		m.PipelineDepth.Record(int64(len(c.pend)))
		if decErr != nil {
			c.fail(decErr)
			return
		}
		if quit {
			return
		}
	}
}

// fail terminates the connection on a read error. Protocol violations get a
// final -ERR so a confused client can tell what happened; EOF and deadline
// expiry (idle timeout or a shutdown nudge) close silently.
func (c *conn) fail(err error) {
	if errors.Is(err, resp.ErrProtocol) {
		c.srv.metrics.ProtocolErrors.Add(1)
		c.w.Reset()
		c.w.Error("ERR Protocol error: " + err.Error())
		c.flushReplies()
	}
}

func (c *conn) flushReplies() error {
	if t := c.srv.cfg.WriteTimeout; t > 0 {
		c.nc.SetWriteDeadline(time.Now().Add(t))
	}
	return c.w.Flush()
}

// execute runs one decoded command, appending its reply to the write buffer.
// args alias the reader's internal buffer: valid only for this call, which is
// fine — the engine copies keys and values into its own arena on Put/Delete,
// and Get returns a fresh copy.
func (c *conn) execute(kind cmdKind, args [][]byte, dirty, quit *bool) {
	m := c.srv.metrics
	switch kind {
	case cmdGet:
		if len(args) != 2 {
			c.arity("get")
			return
		}
		val, ok, err := c.se.Get(args[1])
		switch {
		case err != nil:
			m.StoreErrors.Add(1)
			c.w.Error("ERR " + err.Error())
		case !ok:
			c.w.Null()
		default:
			c.w.Bulk(val)
		}
	case cmdSet:
		if len(args) != 3 {
			c.arity("set")
			return
		}
		if err := c.se.Put(args[1], args[2]); err != nil {
			m.StoreErrors.Add(1)
			c.w.Error("ERR " + err.Error())
			return
		}
		*dirty = true
		c.w.SimpleString("OK")
	case cmdDel:
		if len(args) < 2 {
			c.arity("del")
			return
		}
		// RESP's DEL reports how many keys existed, but the engine's Delete
		// is an unconditional tombstone append: probe first, delete only what
		// is there, so the count and the write amplification both match the
		// contract.
		var n int64
		for _, key := range args[1:] {
			_, ok, err := c.se.Get(key)
			if err != nil {
				m.StoreErrors.Add(1)
				c.w.Error("ERR " + err.Error())
				return
			}
			if !ok {
				continue
			}
			if err := c.se.Delete(key); err != nil {
				m.StoreErrors.Add(1)
				c.w.Error("ERR " + err.Error())
				return
			}
			n++
			*dirty = true
		}
		c.w.Int(n)
	case cmdExists:
		if len(args) < 2 {
			c.arity("exists")
			return
		}
		var n int64
		for _, key := range args[1:] {
			_, ok, err := c.se.Get(key)
			if err != nil {
				m.StoreErrors.Add(1)
				c.w.Error("ERR " + err.Error())
				return
			}
			if ok {
				n++
			}
		}
		c.w.Int(n)
	case cmdPing:
		switch len(args) {
		case 1:
			c.w.SimpleString("PONG")
		case 2:
			c.w.Bulk(args[1])
		default:
			c.arity("ping")
		}
	case cmdInfo:
		var section string
		if len(args) > 1 {
			section = string(args[1])
		}
		c.w.Bulk(c.srv.infoText(section))
	case cmdFlushAll:
		// The engine has no bulk delete; ChameleonDB's FLUSHALL is a
		// store-wide durability barrier instead: seal this session's batch,
		// then every appender's, so everything acknowledged anywhere is
		// persistent when OK comes back. (Documented in DESIGN.md §7.)
		if err := c.se.Flush(); err != nil {
			m.StoreErrors.Add(1)
			c.w.Error("ERR " + err.Error())
			return
		}
		if lp, ok := c.srv.store.(interface{ Log() *wlog.Log }); ok {
			lp.Log().SyncAll(c.se.Clock())
		}
		c.w.SimpleString("OK")
	case cmdQuit:
		c.w.SimpleString("OK")
		*quit = true
	case cmdCommand:
		// Enough for redis-cli's handshake.
		c.w.ArrayHeader(0)
	default:
		c.w.Error(fmt.Sprintf("ERR unknown command '%s'", args[0]))
	}
}

func (c *conn) arity(name string) {
	c.w.Error("ERR wrong number of arguments for '" + name + "' command")
}
