package server

import (
	"time"

	"chameleondb/internal/kvstore"
)

// batcher is the group-commit engine: connections that finished a pipelined
// batch containing writes submit their session here and block until it has
// been flushed. The batcher coalesces submissions across connections — one
// wakeup flushes every session that arrived within the delay window or until
// the size threshold — so N concurrent writers cost ~1 batcher round instead
// of N independently-timed flushes, and the acks all release together. This
// is the classic group commit of write-ahead-logging databases, applied to
// the store's per-session DRAM write batches.
//
// Sessions are not safe for concurrent use, but the submitting connection is
// blocked on its done channel for the whole flush, so the batcher goroutine
// is the only toucher during commit.
type batcher struct {
	m       *Metrics
	ch      chan flushReq
	stop    chan struct{}
	stopped chan struct{}
	delay   time.Duration
	size    int
	scratch []flushReq
}

type flushReq struct {
	se   kvstore.Session
	done chan error // per-connection, buffered(1), reused across batches
}

func newBatcher(m *Metrics, delay time.Duration, size int) *batcher {
	if size < 1 {
		size = 1
	}
	return &batcher{
		m:       m,
		ch:      make(chan flushReq, 4*size),
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
		delay:   delay,
		size:    size,
	}
}

func (b *batcher) start() { go b.run() }

// commit submits se for a coalesced flush and waits for the outcome. done
// must be an empty buffered(1) channel owned by the caller. If the batcher
// has already stopped (a straggler racing shutdown), the flush runs inline —
// durability is never silently skipped.
func (b *batcher) commit(se kvstore.Session, done chan error) error {
	select {
	case b.ch <- flushReq{se, done}:
		return <-done
	case <-b.stop:
		return se.Flush()
	}
}

func (b *batcher) run() {
	defer close(b.stopped)
	for {
		select {
		case <-b.stop:
			b.drain()
			return
		case first := <-b.ch:
			batch := append(b.scratch[:0], first)
			if b.delay > 0 {
				timer := time.NewTimer(b.delay)
			collect:
				for len(batch) < b.size {
					select {
					case r := <-b.ch:
						batch = append(batch, r)
					case <-timer.C:
						break collect
					case <-b.stop:
						break collect
					}
				}
				timer.Stop()
			} else {
				// No coalescing window: take only what is already queued.
				for len(batch) < b.size {
					select {
					case r := <-b.ch:
						batch = append(batch, r)
					default:
						goto flush
					}
				}
			}
		flush:
			for _, r := range batch {
				r.done <- r.se.Flush()
			}
			b.m.GroupCommits.Add(1)
			b.m.GroupCommitFlushes.Add(int64(len(batch)))
			b.m.CommitBatch.Record(int64(len(batch)))
			b.scratch = batch[:0]
		}
	}
}

// drain serves whatever made it into the channel before the stop latched.
func (b *batcher) drain() {
	for {
		select {
		case r := <-b.ch:
			r.done <- r.se.Flush()
		default:
			return
		}
	}
}

// stopAndDrain shuts the batcher down. The caller must have drained all
// connection handlers first (no new commits); a request that won the send
// race against stop is still served by the final drain here.
func (b *batcher) stopAndDrain() {
	close(b.stop)
	<-b.stopped
	b.drain()
}
