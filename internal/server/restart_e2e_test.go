package server

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"chameleondb/internal/resp"
)

// buildServerBinary compiles cmd/chameleon-server into dir and returns the
// binary path. The test's working directory is inside the module, so the
// import path resolves without extra flags.
func buildServerBinary(t *testing.T, dir string) string {
	t.Helper()
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}
	bin := filepath.Join(dir, "chameleon-server")
	cmd := exec.Command(goTool, "build", "-o", bin, "chameleondb/cmd/chameleon-server")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build chameleon-server: %v\n%s", err, out)
	}
	return bin
}

// serverProc is a chameleon-server child process bound to an ephemeral port.
type serverProc struct {
	cmd  *exec.Cmd
	addr string
	out  *bytes.Buffer
}

// startServerProc execs the server binary against dataDir and waits for its
// startup banner to learn the listen address.
func startServerProc(t *testing.T, bin, dataDir string) *serverProc {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-backend", "file",
		"-dir", dataDir,
		"-shards", "8",
		"-arena-mb", "16",
		"-log-mb", "8",
	)
	var errBuf bytes.Buffer
	cmd.Stderr = &errBuf
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start server: %v", err)
	}
	p := &serverProc{cmd: cmd, out: &errBuf}
	t.Cleanup(func() {
		if p.cmd.ProcessState == nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	})

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				rest := line[i+len("listening on "):]
				addrCh <- strings.Fields(rest)[0]
			}
		}
		close(addrCh)
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			p.cmd.Process.Kill()
			p.cmd.Wait()
			t.Fatalf("server exited before listening; stderr:\n%s", errBuf.String())
		}
		p.addr = addr
	case <-time.After(30 * time.Second):
		p.cmd.Process.Kill()
		p.cmd.Wait()
		t.Fatalf("timed out waiting for server banner; stderr:\n%s", errBuf.String())
	}
	return p
}

func restartValue(i int) []byte {
	return []byte(fmt.Sprintf("val-%05d-%s", i, strings.Repeat("x", i%64)))
}

// TestServerRestartDurability is the restart-durability e2e: a real
// chameleon-server child process on the file backend is loaded with pipelined
// SETs, SIGKILLed mid-load with a batch in flight, and restarted on the same
// directory. Every SET the client saw acknowledged must be readable after the
// restart; in-flight unacknowledged SETs may have landed or not, but a key
// that is present must carry the value that was written.
func TestServerRestartDurability(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs a server binary")
	}
	work := t.TempDir()
	bin := buildServerBinary(t, work)
	dataDir := filepath.Join(work, "data")
	if err := os.Mkdir(dataDir, 0o755); err != nil {
		t.Fatal(err)
	}

	p := startServerProc(t, bin, dataDir)

	const (
		batchSize = 16
		ackTarget = 600
	)
	var (
		mu     sync.Mutex
		ackOps int                  // total SETs acknowledged (counts overwrites)
		acked  = make(map[int]bool) // reply received: durably acknowledged
		sent   = make(map[int]bool) // on the wire: may or may not have landed
	)
	loadDone := make(chan error, 1)
	go func() {
		c, err := resp.Dial(p.addr, 5*time.Second)
		if err != nil {
			loadDone <- err
			return
		}
		defer c.Close()
		c.SetDeadline(time.Now().Add(2 * time.Minute))
		for i := 0; ; {
			batch := make([]int, 0, batchSize)
			mu.Lock()
			for len(batch) < batchSize {
				// Mostly-fresh keys so the final in-flight batch holds keys
				// never acked before; every 4th op rewrites an older key
				// (same per-key value) so overwrites ride along.
				k := i
				if i%4 == 3 {
					k = i / 8
				}
				c.Send([]byte("SET"), []byte(fmt.Sprintf("rk-%05d", k)), restartValue(k))
				sent[k] = true
				batch = append(batch, k)
				i++
			}
			mu.Unlock()
			if err := c.Flush(); err != nil {
				loadDone <- err
				return
			}
			for _, k := range batch {
				rp, err := c.Receive()
				if err != nil {
					loadDone <- err // killed mid-batch: expected
					return
				}
				if err := rp.Err(); err != nil {
					loadDone <- err
					return
				}
				mu.Lock()
				acked[k] = true
				ackOps++
				mu.Unlock()
			}
		}
	}()

	// Wait for enough acknowledged writes, then pull the plug.
	deadline := time.Now().Add(90 * time.Second)
	for {
		mu.Lock()
		n := ackOps
		mu.Unlock()
		if n >= ackTarget {
			break
		}
		select {
		case err := <-loadDone:
			t.Fatalf("loader exited early: %v\nserver stderr:\n%s", err, p.out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d acks (have %d)", ackTarget, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := p.cmd.Process.Kill(); err != nil { // SIGKILL: no shutdown path runs
		t.Fatal(err)
	}
	p.cmd.Wait()
	if err := <-loadDone; err == nil {
		t.Fatal("loader finished cleanly despite SIGKILL")
	}

	// Restart on the same directory. The banner only prints after recovery, so
	// a successful dial means the log replay completed.
	p2 := startServerProc(t, bin, dataDir)
	c, err := resp.Dial(p2.addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial restarted server: %v\nstderr:\n%s", err, p2.out.String())
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(2 * time.Minute))

	mu.Lock()
	ackedKeys := make([]int, 0, len(acked))
	for k := range acked {
		ackedKeys = append(ackedKeys, k)
	}
	unacked := make([]int, 0, len(sent))
	for k := range sent {
		if !acked[k] {
			unacked = append(unacked, k)
		}
	}
	mu.Unlock()
	if len(ackedKeys) == 0 {
		t.Fatal("no acked keys recorded")
	}
	for _, k := range ackedKeys {
		got, ok, err := c.Get([]byte(fmt.Sprintf("rk-%05d", k)))
		if err != nil {
			t.Fatalf("GET rk-%05d after restart: %v", k, err)
		}
		if !ok {
			t.Fatalf("acknowledged key rk-%05d lost across SIGKILL restart", k)
		}
		if !bytes.Equal(got, restartValue(k)) {
			t.Fatalf("key rk-%05d corrupted: got %q want %q", k, got, restartValue(k))
		}
	}
	for _, k := range unacked {
		got, ok, err := c.Get([]byte(fmt.Sprintf("rk-%05d", k)))
		if err != nil {
			t.Fatalf("GET unacked rk-%05d: %v", k, err)
		}
		if ok && !bytes.Equal(got, restartValue(k)) {
			t.Fatalf("unacked key rk-%05d present with wrong value %q", k, got)
		}
	}
	t.Logf("verified %d acked keys (+%d in-flight) across SIGKILL restart", len(ackedKeys), len(unacked))

	// The restarted server must still accept writes and shut down cleanly.
	if err := c.Set([]byte("post-restart"), []byte("ok")); err != nil {
		t.Fatalf("SET after restart: %v", err)
	}
	if err := p2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p2.cmd.Wait(); err != nil {
		t.Fatalf("graceful shutdown after restart: %v\nstderr:\n%s", err, p2.out.String())
	}
}
