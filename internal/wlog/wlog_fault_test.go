package wlog

import (
	"bytes"
	"errors"
	"testing"

	"chameleondb/internal/device"
	"chameleondb/internal/pmem"
	"chameleondb/internal/simclock"
	"chameleondb/internal/xhash"
)

// TestTornChunkPersistDetected is the regression test for the torn-write bug
// the crash sweep surfaced: a batch (chunk) persist interrupted by power
// failure commits only a prefix of its 256 B media lines, so entries past the
// cut keep a durable header but lose their payload. Before entries carried a
// checksum, recovery's Scan replayed those entries with zeroed values —
// acknowledged data silently corrupted into different data. With the checksum
// the torn tail is detected and dropped.
func TestTornChunkPersistDetected(t *testing.T) {
	arena := pmem.NewArena(device.New(device.OptanePmem), 1<<21)
	l, err := New(arena, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	c := simclock.New(0)
	ap := l.NewAppender()

	// e1 fills [0, 232) of the chunk — entirely inside media line 0.
	// e2 starts at 232: its 24 B header lands in line 0 but its payload is
	// all in line 1.
	k1, v1 := []byte("key-aaaa"), bytes.Repeat([]byte{0xA1}, 200)
	k2, v2 := []byte("key-bbbb"), bytes.Repeat([]byte{0xB2}, 100)
	lsn1, err := ap.Append(c, xhash.Sum64(k1), k1, v1, 0)
	if err != nil {
		t.Fatal(err)
	}
	lsn2, err := ap.Append(c, xhash.Sum64(k2), k2, v2, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Power fails on the seal persist, committing only the first line.
	arena.Device().InstallFaultPlan(&device.FaultPlan{CrashAtPersist: 1, Tear: device.TearFirstLine})
	if err := ap.Flush(c); err != nil {
		t.Fatal(err)
	}
	arena.Device().InstallFaultPlan(nil)
	arena.Crash()

	// e1 survived intact.
	e, err := l.Read(c, lsn1)
	if err != nil {
		t.Fatalf("reading intact entry: %v", err)
	}
	if !bytes.Equal(e.Value, v1) {
		t.Fatal("intact entry corrupted")
	}
	// e2's durable header is valid but its payload never committed: reading
	// it must fail loudly, not return zeroed bytes.
	if _, err := l.Read(c, lsn2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("reading torn entry = %v, want ErrCorrupt", err)
	}
	// Recovery's scan must replay exactly the intact prefix.
	var got []int64
	if err := l.Scan(c, l.Base(), func(e Entry) bool {
		got = append(got, e.LSN)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != lsn1 {
		t.Fatalf("scan after torn persist returned %v, want [%d]", got, lsn1)
	}
}

// TestTornPersistMidEntry tears the cut through the middle of a single large
// entry: the committed part passes no checksum, so nothing survives.
func TestTornPersistMidEntry(t *testing.T) {
	arena := pmem.NewArena(device.New(device.OptanePmem), 1<<21)
	l, err := New(arena, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	c := simclock.New(0)
	ap := l.NewAppender()
	key, val := []byte("bigkey"), bytes.Repeat([]byte{0xEE}, 3000) // ~12 lines
	lsn, err := ap.Append(c, xhash.Sum64(key), key, val, 0)
	if err != nil {
		t.Fatal(err)
	}
	arena.Device().InstallFaultPlan(&device.FaultPlan{CrashAtPersist: 1, Tear: device.TearHalf})
	ap.Flush(c)
	arena.Device().InstallFaultPlan(nil)
	arena.Crash()
	if _, err := l.Read(c, lsn); !errors.Is(err, ErrCorrupt) {
		// A fully-lost header reads as "no entry"; either way it must error.
		if err == nil {
			t.Fatal("torn entry read back successfully")
		}
	}
	n := 0
	l.Scan(c, l.Base(), func(Entry) bool { n++; return true })
	if n != 0 {
		t.Fatalf("scan replayed %d torn entries", n)
	}
}

// TestFreeBeforeFrozenAfterPowerFailure: a dying process must not free (and
// durably zero) log segments — the durable manifests may still point there.
func TestFreeBeforeFrozenAfterPowerFailure(t *testing.T) {
	arena := pmem.NewArena(device.New(device.OptanePmem), 1<<21)
	l, err := New(arena, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	c := simclock.New(0)
	ap := l.NewAppender()
	payload := bytes.Repeat([]byte{7}, 1000)
	var first int64 = -1
	for i := 0; l.Tail() < l.SegmentSize()*3; i++ {
		lsn, err := ap.Append(c, uint64(i), []byte("12345678"), payload, 0)
		if err != nil {
			t.Fatal(err)
		}
		if first < 0 {
			first = lsn
		}
	}
	ap.Flush(c)
	plan := &device.FaultPlan{CrashAtPersist: 1}
	arena.Device().InstallFaultPlan(plan)
	arena.Persist(c, 0, 1) // trigger the failure
	if freed := l.FreeBefore(l.Tail()); freed != 0 {
		t.Fatalf("post-failure FreeBefore freed %d bytes", freed)
	}
	arena.Device().InstallFaultPlan(nil)
	arena.Crash()
	if e, err := l.Read(c, first); err != nil || !bytes.Equal(e.Value, payload) {
		t.Fatalf("entry lost to post-failure GC: %v", err)
	}
}
