package wlog

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chameleondb/internal/simclock"
)

// fill appends entries until the log tail passes want, flushing so the data
// is sealed, and returns the entry LSNs.
func fill(t *testing.T, l *Log, c *simclock.Clock, ap *Appender, want int64) []int64 {
	t.Helper()
	val := bytes.Repeat([]byte{0xAB}, 2048)
	var lsns []int64
	for l.Tail() < want {
		lsn, err := ap.Append(c, uint64(len(lsns)+1), []byte("hold-key"), val, 0)
		if err != nil {
			t.Fatalf("append at tail %d: %v", l.Tail(), err)
		}
		lsns = append(lsns, lsn)
	}
	if err := ap.Flush(c); err != nil {
		t.Fatal(err)
	}
	return lsns
}

// TestGCHoldClampsFreeBefore pins the replica-lag floor: FreeBefore may not
// release the segment containing a registered hold or anything above it, no
// matter how far the caller's target reaches; releasing the hold lifts the
// clamp.
func TestGCHoldClampsFreeBefore(t *testing.T) {
	l := newTestLog(t, 1<<21)
	c := simclock.New(0)
	ap := l.NewAppender()
	seg := l.SegmentSize()
	lsns := fill(t, l, c, ap, 3*seg+seg/2)

	// Pick a hold in the middle of the data and find the first entry at or
	// above it.
	hold := lsns[len(lsns)/2]
	l.HoldGC("replica:r1", hold)

	if got := l.GCFloor(); got != hold {
		t.Fatalf("GCFloor = %d, want hold %d", got, hold)
	}
	freed := l.FreeBefore(l.Tail())
	holdSeg := hold / seg * seg
	if got := l.Base(); got != holdSeg {
		t.Fatalf("Base after clamped free = %d, want %d", got, holdSeg)
	}
	if freed > holdSeg-seg {
		t.Fatalf("freed %d bytes past the hold", freed)
	}
	// Everything at and above the hold's segment must still be readable.
	for _, lsn := range lsns {
		if lsn < holdSeg {
			continue
		}
		e, err := l.Read(c, lsn)
		if err != nil {
			t.Fatalf("entry %d unreadable under hold: %v", lsn, err)
		}
		if !bytes.Equal(e.Key, []byte("hold-key")) {
			t.Fatalf("entry %d corrupted", lsn)
		}
	}

	// Moving the hold up releases more; releasing it entirely unclamps.
	l.HoldGC("replica:r1", l.Tail())
	l.FreeBefore(l.Tail())
	if got, want := l.Base(), l.Tail()/seg*seg; got != want {
		t.Fatalf("Base after hold moved to tail = %d, want %d", got, want)
	}
	l.ReleaseGCHold("replica:r1")
	if got, want := l.GCFloor(), l.MinNextLSN(); got != want {
		t.Fatalf("GCFloor after release = %d, want MinNextLSN %d", got, want)
	}
}

// TestGCFloorMinimumOfHolds checks that with several replicas the floor is
// the slowest one's.
func TestGCFloorMinimumOfHolds(t *testing.T) {
	l := newTestLog(t, 1<<21)
	c := simclock.New(0)
	ap := l.NewAppender()
	seg := l.SegmentSize()
	fill(t, l, c, ap, 2*seg)

	l.HoldGC("replica:a", seg+100)
	l.HoldGC("replica:b", seg+5000)
	if got := l.GCFloor(); got != seg+100 {
		t.Fatalf("GCFloor = %d, want slowest hold %d", got, seg+100)
	}
	l.ReleaseGCHold("replica:a")
	if got := l.GCFloor(); got != seg+5000 {
		t.Fatalf("GCFloor = %d, want remaining hold %d", got, seg+5000)
	}
	l.FreeBefore(l.Tail())
	if got := l.Base(); got != seg {
		t.Fatalf("Base = %d, want %d (hold in second segment)", got, seg)
	}
}

// TestHoldAndSnapshotUnderConcurrentFree is the regression for the
// FreeBefore/SegmentSnapshot/hold coordination: while a writer appends, a GC
// loop frees up to the tail, and a hold trails behind, (a) the base never
// passes the hold's segment, and (b) every SegmentSnapshot taken mid-free is
// internally consistent — it never references a segment the free already
// released. Run with -race this also proves the locking.
func TestHoldAndSnapshotUnderConcurrentFree(t *testing.T) {
	l := newTestLog(t, 1<<21)
	seg := l.SegmentSize()
	const holdID = "replica:lag"
	var holdAt atomic.Int64
	holdAt.Store(seg)
	l.HoldGC(holdID, seg)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	fail := make(chan string, 16)
	report := func(msg string) {
		select {
		case fail <- msg:
		default:
		}
	}

	// Writer: append ~5 log capacities worth so GC must recycle segments.
	const capacity = int64(1 << 21)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		c := simclock.New(0)
		ap := l.NewAppender()
		defer ap.Release(c)
		val := bytes.Repeat([]byte{0x3C}, 2048)
		total := int64(0)
		for total < 5*capacity {
			_, err := ap.Append(c, 1, []byte("concurrent"), val, 0)
			if err != nil {
				// Log full: GC has not caught up yet. Flush what we have so
				// the hold mover can advance past it, then retry.
				ap.Flush(c)
				time.Sleep(100 * time.Microsecond)
				continue
			}
			total += int64(len(val))
			if total%(seg/4) < int64(len(val)) {
				ap.Flush(c)
			}
		}
		ap.Flush(c)
	}()

	// Hold mover: trail half a segment behind the tail, monotonically.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			target := l.Tail() - seg/2
			if target < seg {
				target = seg
			}
			if target > holdAt.Load() {
				holdAt.Store(target)
				l.HoldGC(holdID, target)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()

	// GC loop: always try to free everything; the hold must clamp it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			l.FreeBefore(l.Tail())
			// The hold only moves up, so reading it after the free gives an
			// upper bound on the clamp that was in effect.
			if base, h := l.Base(), holdAt.Load(); base > h/seg*seg {
				report("base passed the hold's segment")
				return
			}
			time.Sleep(20 * time.Microsecond)
		}
	}()

	// Snapshot loop: a snapshot taken mid-GC must never reference a freed
	// segment (every mapped segment lies at or above the snapshot's head).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			head, next, segs := l.SegmentSnapshot()
			for idx := range segs {
				if idx*seg < head && (idx+1)*seg <= next {
					report("snapshot references a freed segment")
					return
				}
			}
			time.Sleep(20 * time.Microsecond)
		}
	}()

	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
}
