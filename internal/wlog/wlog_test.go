package wlog

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"chameleondb/internal/device"
	"chameleondb/internal/pmem"
	"chameleondb/internal/simclock"
	"chameleondb/internal/xhash"
)

func newTestLog(t *testing.T, capacity int64) *Log {
	t.Helper()
	arena := pmem.NewArena(device.New(device.OptanePmem), capacity+1<<16)
	l, err := New(arena, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestAppendRead(t *testing.T) {
	l := newTestLog(t, 1<<20)
	c := simclock.New(0)
	ap := l.NewAppender()
	key, val := []byte("key-0001"), []byte("value-0001")
	h := xhash.Sum64(key)
	lsn, err := ap.Append(c, h, key, val, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := l.Read(c, lsn)
	if err != nil {
		t.Fatal(err)
	}
	if e.Hash != h || !bytes.Equal(e.Key, key) || !bytes.Equal(e.Value, val) || e.Tombstone() {
		t.Fatalf("read back %+v", e)
	}
}

func TestTombstoneFlag(t *testing.T) {
	l := newTestLog(t, 1<<20)
	c := simclock.New(0)
	ap := l.NewAppender()
	lsn, err := ap.Append(c, 42, []byte("k"), nil, FlagTombstone)
	if err != nil {
		t.Fatal(err)
	}
	e, err := l.Read(c, lsn)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Tombstone() || len(e.Value) != 0 {
		t.Fatalf("tombstone round trip failed: %+v", e)
	}
	hash, flags, ok := l.PeekHash(lsn)
	if !ok || hash != 42 || flags&FlagTombstone == 0 {
		t.Fatalf("PeekHash = %d, %d, %v", hash, flags, ok)
	}
}

func TestBatchingPersistsAtChunkBoundary(t *testing.T) {
	l := newTestLog(t, 1<<20)
	c := simclock.New(0)
	ap := l.NewAppender()
	dev := l.arena.Device()
	before := dev.Stats().WriteOps
	// Entries of 64 bytes (24 B header + 8 B key + 32 B value): 64 fill one
	// 4 KB chunk.
	val := bytes.Repeat([]byte{0x11}, 32)
	var lastOps int64
	for i := 0; i < 63; i++ {
		if _, err := ap.Append(c, uint64(i), []byte("12345678"), val, 0); err != nil {
			t.Fatal(err)
		}
		lastOps = dev.Stats().WriteOps
	}
	if lastOps != before {
		t.Fatalf("writes persisted before chunk sealed: %d ops", lastOps-before)
	}
	if _, err := ap.Append(c, 63, []byte("12345678"), val, 0); err != nil {
		t.Fatal(err)
	}
	after := dev.Stats()
	if after.WriteOps != before+1 {
		t.Fatalf("sealing should be one batched write, got %d", after.WriteOps-before)
	}
	if after.WriteAmplification() != 1.0 {
		t.Fatalf("batched log write should have WA=1, got %v", after.WriteAmplification())
	}
}

func TestLargeEntrySpansChunks(t *testing.T) {
	l := newTestLog(t, 1<<22)
	c := simclock.New(0)
	ap := l.NewAppender()
	big := bytes.Repeat([]byte{0x5A}, 64<<10) // 64 KB value, as in Figure 17
	lsn, err := ap.Append(c, 7, []byte("bigkey"), big, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ap.Flush(c); err != nil {
		t.Fatal(err)
	}
	e, err := l.Read(c, lsn)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(e.Value, big) {
		t.Fatal("large value corrupted")
	}
	// A following small entry must still work.
	lsn2, err := ap.Append(c, 8, []byte("small"), []byte("v"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if e2, err := l.Read(c, lsn2); err != nil || string(e2.Key) != "small" {
		t.Fatalf("entry after large entry broken: %v %v", e2, err)
	}
}

func TestScanInOrder(t *testing.T) {
	l := newTestLog(t, 1<<20)
	c := simclock.New(0)
	ap := l.NewAppender()
	const n = 500
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%04d", i))
		if _, err := ap.Append(c, uint64(i), key, []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := ap.Flush(c); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	err := l.Scan(c, l.Base(), func(e Entry) bool {
		got = append(got, e.Hash)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("scanned %d entries, want %d", len(got), n)
	}
	for i, h := range got {
		if h != uint64(i) {
			t.Fatalf("entry %d out of order: hash %d", i, h)
		}
	}
}

func TestScanFromMidpoint(t *testing.T) {
	l := newTestLog(t, 1<<20)
	c := simclock.New(0)
	ap := l.NewAppender()
	var mid int64
	for i := 0; i < 100; i++ {
		lsn, err := ap.Append(c, uint64(i), []byte("keykeyke"), []byte("v"), 0)
		if err != nil {
			t.Fatal(err)
		}
		if i == 50 {
			mid = lsn
		}
	}
	ap.Flush(c)
	count := 0
	l.Scan(c, mid, func(e Entry) bool { count++; return true })
	if count != 50 {
		t.Fatalf("scan from midpoint returned %d entries, want 50", count)
	}
}

func TestScanStops(t *testing.T) {
	l := newTestLog(t, 1<<20)
	c := simclock.New(0)
	ap := l.NewAppender()
	for i := 0; i < 10; i++ {
		ap.Append(c, uint64(i), []byte("k"), []byte("v"), 0)
	}
	ap.Flush(c)
	count := 0
	l.Scan(c, l.Base(), func(e Entry) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("scan did not stop early: %d", count)
	}
}

func TestCrashLosesUnflushedTail(t *testing.T) {
	arena := pmem.NewArena(device.New(device.OptanePmem), 1<<21)
	l, err := New(arena, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	c := simclock.New(0)
	ap := l.NewAppender()
	// Fill exactly one chunk (sealed, durable) then a partial chunk: 64-byte
	// entries, 64 per 4 KB chunk.
	val := bytes.Repeat([]byte{0x22}, 32)
	for i := 0; i < 64; i++ {
		if _, err := ap.Append(c, uint64(i), []byte("12345678"), val, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 64; i < 76; i++ {
		if _, err := ap.Append(c, uint64(i), []byte("12345678"), val, 0); err != nil {
			t.Fatal(err)
		}
	}
	arena.Crash()
	var survivors []uint64
	l.Scan(c, l.Base(), func(e Entry) bool {
		survivors = append(survivors, e.Hash)
		return true
	})
	if len(survivors) != 64 {
		t.Fatalf("%d entries survived crash, want exactly the sealed 64", len(survivors))
	}
}

func TestMultipleAppendersInterleave(t *testing.T) {
	l := newTestLog(t, 1<<22)
	c1, c2 := simclock.New(0), simclock.New(0)
	a1, a2 := l.NewAppender(), l.NewAppender()
	seen := map[uint64]bool{}
	for i := 0; i < 300; i++ {
		if _, err := a1.Append(c1, uint64(i), []byte("from-ap1"), []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
		if _, err := a2.Append(c2, uint64(1000+i), []byte("from-ap2"), []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}
	a1.Flush(c1)
	a2.Flush(c2)
	count := 0
	l.Scan(simclock.New(0), l.Base(), func(e Entry) bool {
		if seen[e.Hash] {
			t.Fatalf("duplicate hash %d in scan", e.Hash)
		}
		seen[e.Hash] = true
		count++
		return true
	})
	if count != 600 {
		t.Fatalf("scanned %d entries, want 600", count)
	}
}

func TestLogFull(t *testing.T) {
	l := newTestLog(t, 4*DefaultChunkSize) // minimal capacity: 4 chunk-sized segments
	c := simclock.New(0)
	ap := l.NewAppender()
	var err error
	for i := 0; i < 10000; i++ {
		if _, err = ap.Append(c, uint64(i), []byte("12345678"), bytes.Repeat([]byte{1}, 100), 0); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("expected ErrLogFull")
	}
}

func TestSegmentReclaim(t *testing.T) {
	l := newTestLog(t, 1<<20)
	c := simclock.New(0)
	ap := l.NewAppender()
	var lsns []int64
	// Fill several segments.
	payload := bytes.Repeat([]byte{7}, 1000)
	for i := 0; l.Tail() < l.SegmentSize()*4; i++ {
		lsn, err := ap.Append(c, uint64(i), []byte("12345678"), payload, 0)
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	ap.Flush(c)
	live0 := l.LiveBytes()
	cut := l.SegmentSize() * 3
	freed := l.FreeBefore(cut)
	if freed <= 0 {
		t.Fatal("nothing freed")
	}
	if l.LiveBytes() >= live0 {
		t.Fatal("live bytes did not shrink")
	}
	if l.Base() != cut {
		t.Fatalf("Base = %d, want %d", l.Base(), cut)
	}
	// Reads below the cut return ErrReclaimed; above still work.
	var below, above int64 = -1, -1
	for _, lsn := range lsns {
		if lsn < cut && below < 0 {
			below = lsn
		}
		if lsn >= cut {
			above = lsn
		}
	}
	if _, err := l.Read(c, below); err != ErrReclaimed {
		t.Fatalf("read below cut: %v, want ErrReclaimed", err)
	}
	if e, err := l.Read(c, above); err != nil || !bytes.Equal(e.Value, payload) {
		t.Fatalf("read above cut failed: %v", err)
	}
	// Scan skips the freed region and survives.
	n := 0
	l.Scan(c, l.Base()-l.SegmentSize(), func(e Entry) bool { n++; return true })
	if n == 0 {
		t.Fatal("scan found nothing above the cut")
	}
	for _, lsn := range lsns {
		if lsn >= cut {
			// every surviving entry must be scannable
			break
		}
	}
	// Freed segments are reusable: new appends succeed past the old capacity.
	for i := 0; i < 200; i++ {
		if _, err := ap.Append(c, uint64(9000+i), []byte("12345678"), payload, 0); err != nil {
			t.Fatalf("append after reclaim: %v", err)
		}
	}
}

func TestReclaimRespectsCapacity(t *testing.T) {
	// Without GC the log fills; after FreeBefore it accepts writes again.
	l := newTestLog(t, 64*DefaultChunkSize)
	c := simclock.New(0)
	ap := l.NewAppender()
	payload := bytes.Repeat([]byte{1}, 512)
	var err error
	i := 0
	for ; i < 100000; i++ {
		if _, err = ap.Append(c, uint64(i), []byte("12345678"), payload, 0); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("expected log to fill")
	}
	l.FreeBefore(l.Tail() - l.SegmentSize()) // drop all but the tail segment(s)
	if _, err := ap.Append(c, uint64(i), []byte("12345678"), payload, 0); err != nil {
		t.Fatalf("append after GC: %v", err)
	}
}

func TestOversizeFieldsRejected(t *testing.T) {
	l := newTestLog(t, 1<<20)
	c := simclock.New(0)
	ap := l.NewAppender()
	if _, err := ap.Append(c, 0, bytes.Repeat([]byte{1}, 70000), nil, 0); err == nil {
		t.Fatal("expected key-too-long error")
	}
}

func TestReadErrors(t *testing.T) {
	l := newTestLog(t, 1<<20)
	c := simclock.New(0)
	if _, err := l.Read(c, -1); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := l.Read(c, l.Base()); err == nil {
		t.Fatal("expected no-entry error for unwritten LSN")
	}
}

// Property: any sequence of appends reads back exactly, via both Read and
// Scan, regardless of entry sizes.
func TestAppendScanRoundTripProperty(t *testing.T) {
	f := func(vals [][]byte) bool {
		l := newTestLog(t, 1<<22)
		c := simclock.New(0)
		ap := l.NewAppender()
		type rec struct {
			lsn int64
			val []byte
		}
		var recs []rec
		for i, v := range vals {
			if len(v) > 1000 {
				v = v[:1000]
			}
			key := []byte(fmt.Sprintf("key-%06d", i))
			lsn, err := ap.Append(c, xhash.Sum64(key), key, v, 0)
			if err != nil {
				return false
			}
			recs = append(recs, rec{lsn, v})
		}
		ap.Flush(c)
		for _, r := range recs {
			e, err := l.Read(c, r.lsn)
			if err != nil || !bytes.Equal(e.Value, r.val) {
				return false
			}
		}
		n := 0
		l.Scan(c, l.Base(), func(e Entry) bool { n++; return true })
		return n == len(recs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEntrySizePadding(t *testing.T) {
	if EntrySize(0, 0) != 24 {
		t.Fatalf("EntrySize(0,0) = %d", EntrySize(0, 0))
	}
	if EntrySize(1, 0) != 32 {
		t.Fatalf("EntrySize(1,0) = %d", EntrySize(1, 0))
	}
	if EntrySize(8, 8) != 40 {
		t.Fatalf("EntrySize(8,8) = %d", EntrySize(8, 8))
	}
	if EntrySize(8, 9)%8 != 0 {
		t.Fatal("entry sizes must stay 8-byte aligned")
	}
}

// Property: every appended LSN reads back its own entry until its segment is
// reclaimed, across segment boundaries and chunk padding.
func TestLSNMappingProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		l := newTestLog(t, 4<<20)
		c := simclock.New(0)
		ap := l.NewAppender()
		type rec struct {
			lsn int64
			n   int
		}
		var recs []rec
		for i, sz := range sizes {
			n := int(sz) % 3000
			key := []byte(fmt.Sprintf("k%06d", i))
			lsn, err := ap.Append(c, uint64(i), key, bytes.Repeat([]byte{byte(i)}, n), 0)
			if err != nil {
				return false
			}
			recs = append(recs, rec{lsn, n})
		}
		ap.Flush(c)
		// LSNs must be strictly increasing (logical address space).
		for i := 1; i < len(recs); i++ {
			if recs[i].lsn <= recs[i-1].lsn {
				return false
			}
		}
		for i, r := range recs {
			e, err := l.Read(c, r.lsn)
			if err != nil || e.Hash != uint64(i) || len(e.Value) != r.n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentScanWatermarkLosesNothing is the replication shipper's core
// invariant: a scanner that repeatedly exports [cursor, MinNextLSN) while
// appenders run concurrently must see every entry, in particular across the
// chunk-turnover window. The tail used to advance inside reserveChunk before
// the appender's nextLSN floor was published, so a watermark read in that
// window covered a reserved-but-still-empty chunk; the scan skipped its zero
// metas, the cursor moved past it, and the entries appended into it afterwards
// were silently never shipped.
func TestConcurrentScanWatermarkLosesNothing(t *testing.T) {
	l := newTestLog(t, 8<<20)
	c := simclock.New(0)
	// The file backend persists the segment directory from the meta hook, so
	// a chunk reservation holds the metadata mutex across an fsync — tens of
	// microseconds in which the tail already covers the new chunk. Model that
	// width here; the original watermark race was all but guaranteed to ship
	// a hole under it.
	l.SetMetaHook(func(int64, int64, map[int64]int64) { time.Sleep(20 * time.Microsecond) })
	const (
		workers = 4
		rounds  = 120
	)
	var (
		stop     atomic.Bool
		appended atomic.Int64
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ap := l.NewAppender()
			clk := simclock.New(0)
			// Tiny entries keep chunks turning over fast: every turnover is
			// one reserve window the scanner must not trip over.
			key := make([]byte, 12)
			val := []byte("v")
			for i := 0; !stop.Load(); i++ {
				copy(key, fmt.Appendf(key[:0], "w%d-%07d", w, i))
				if _, err := ap.Append(clk, xhash.Sum64(key), key, val, 0); err != nil {
					t.Error(err)
					break
				}
				appended.Add(1)
			}
			if err := ap.Flush(clk); err != nil {
				t.Error(err)
			}
		}(w)
	}

	var scanned int64
	cursor := l.SegmentSize()
	scanTo := func(to int64) {
		if to <= cursor {
			return
		}
		if err := l.ScanRange(c, cursor, to, func(Entry) bool { scanned++; return true }); err != nil {
			t.Error(err)
		}
		cursor = to
	}
	// Seal-then-scan-then-free each round is the WAIT shipping pattern:
	// SealAll detaches every appender's chunk, so their very next Append
	// re-reserves right as the watermark is read — the hostile interleaving
	// for the reserve window — and FreeBefore recycles shipped segments the
	// way log GC does behind a replica's cursor.
	for r := 0; r < rounds && !t.Failed(); r++ {
		// Pace on appender progress so every round races a live turnover
		// rather than spinning before the workers are scheduled.
		for waitFor := appended.Load() + int64(workers); appended.Load() < waitFor; {
			time.Sleep(time.Microsecond)
		}
		if err := l.SealAll(c); err != nil {
			t.Fatal(err)
		}
		scanTo(l.MinNextLSN())
		l.FreeBefore(cursor)
	}
	stop.Store(true)
	wg.Wait()
	if err := l.SealAll(c); err != nil {
		t.Fatal(err)
	}
	scanTo(l.MinNextLSN())

	// Entry ranges scanned are disjoint and nothing above the cursor is ever
	// freed, so every completed append must have been seen exactly once.
	if scanned != appended.Load() {
		t.Fatalf("incremental watermark scans saw %d of %d appended entries", scanned, appended.Load())
	}
}
