// Package wlog implements the storage log every store in the paper shares:
// KV items are appended in arrival order, buffered in DRAM and written to the
// Optane Pmem in batches (4 KB by default, Section 2.5), so the log itself
// never suffers write amplification. The index structures under test differ;
// the log does not.
//
// The log's address space is logical: an LSN is a virtual offset that grows
// forever, mapped to fixed-size physical segments allocated from the arena
// on demand. Whole segments can be freed back to the arena once garbage
// collection (see core.CompactLog) has relocated their live entries — an
// extension beyond the paper, which leaves log-space reclamation out of
// scope.
//
// Entry layout (8-byte aligned):
//
//	[8 B key hash][8 B meta: keyLen(16) | valLen(32) | flags(16)][8 B sum][key][value]
//
// sum is a seeded hash chained over the header words, key, and value. The
// device commits 256 B lines, so a batch persist interrupted by power failure
// can leave a durable prefix of its lines: entries beyond the cut have their
// payload (or header) missing, and the checksum is what lets recovery detect
// the torn tail instead of replaying corrupted values. A zero meta word marks
// the end of the used portion of a batch chunk; the scanner skips to the next
// chunk boundary. Chunks never span segments.
package wlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"chameleondb/internal/pmem"
	"chameleondb/internal/simclock"
	"chameleondb/internal/xhash"
)

// FlagTombstone marks a deletion entry.
const FlagTombstone = 1

// DefaultChunkSize is the DRAM batch size from the paper (Section 2.5).
const DefaultChunkSize = 4096

// DefaultSegmentSize is the physical allocation unit: segments are acquired
// from the arena on demand and freed whole by garbage collection.
const DefaultSegmentSize = 1 << 20

const headerSize = 24

// ErrLogFull is returned when the log's live segments exceed its capacity.
// Reclaim space with garbage collection (core.CompactLog) or size the region
// for the workload.
var ErrLogFull = errors.New("wlog: log region full")

// ErrCorrupt is returned when an entry's stored checksum does not match its
// contents or its declared size is impossible — the durable signature of a
// torn batch persist.
var ErrCorrupt = errors.New("wlog: entry corrupt (torn write)")

// entrySum computes the per-entry checksum: a seeded hash chained over the
// header words and both byte fields, forced non-zero so an all-zero region
// can never pass as a valid entry.
func entrySum(hash, meta uint64, key, value []byte) uint64 {
	s := xhash.Seeded(hash^meta, key)
	s = xhash.Seeded(s, value)
	if s == 0 {
		s = 1
	}
	return s
}

// ErrReclaimed is returned when reading an LSN inside a segment that garbage
// collection already freed.
var ErrReclaimed = errors.New("wlog: entry's segment was reclaimed")

// Log is a shared append-only value log over arena-backed segments.
//
// The metadata is split for the lock-free read path: writers (reserveChunk,
// FreeBefore) serialize on mu, but everything a reader needs — the tail, the
// head, the segment map — is published atomically, so Read/PeekHash/phys
// never acquire a lock. The atomics are written only with mu held; a reader
// that observes an advanced tail is therefore guaranteed to observe the
// segment mappings published before it.
type Log struct {
	arena     *pmem.Arena
	capacity  int64 // max live bytes across segments
	chunkSize int64
	segSize   int64

	mu       sync.Mutex   // serializes metadata writers
	next     atomic.Int64 // next unreserved virtual offset (written under mu)
	head     atomic.Int64 // first live virtual offset (written under mu)
	segments sync.Map     // segment index (int64) -> arena offset (int64), written under mu
	segCount atomic.Int64 // live segment count

	apMu      sync.Mutex
	appenders []*Appender

	// metaHook, when set, runs under mu after every segment-map change
	// (reserveChunk, FreeBefore), receiving the fresh snapshot. The
	// file-backed store uses it to persist its host metadata — the segment
	// directory and allocator marks — before any data in a fresh segment can
	// be written, let alone acknowledged. The hook must not call back into
	// Log methods that take the metadata mutex.
	metaHook func(head, next int64, segs map[int64]int64)

	// holds maps a holder id (one per connected replica) to the lowest LSN
	// that holder still needs. FreeBefore never reclaims a segment at or
	// above the minimum hold, whatever its caller computed — the hard
	// backstop under log GC racing a lagging log shipper. Guarded by mu so a
	// hold update, the floor computation, and the free decision serialize.
	holds map[string]int64

	// sealHook, when set, runs after an appender seals (persists and
	// detaches) a non-empty batch chunk: the durable watermark MinNextLSN
	// may have advanced. The replication shipper uses it to wake tailing
	// senders. It runs with the appender's mutex held, so it must not block
	// and must not call back into appender methods.
	sealHook atomic.Pointer[func()]

	entries atomic.Int64
	bytes   atomic.Int64
}

// SegmentSizeFor returns the physical segment size New picks for a log of the
// given capacity: the default 1 MiB, scaled down in whole chunks for small
// test configurations. Exported so backends can size their host-metadata
// records before the log exists.
func SegmentSizeFor(capacity int64) int64 {
	segSize := int64(DefaultSegmentSize)
	if capacity < 4*segSize {
		segSize = (capacity / 4 / DefaultChunkSize) * DefaultChunkSize
		if segSize < DefaultChunkSize {
			segSize = DefaultChunkSize
		}
	}
	return segSize
}

// New creates a log with the given live-byte capacity inside arena.
func New(arena *pmem.Arena, capacity int64) (*Log, error) {
	if capacity < DefaultSegmentSize {
		// Small test configurations get a single proportionate segment.
		if capacity < 4*DefaultChunkSize {
			return nil, fmt.Errorf("wlog: capacity %d too small", capacity)
		}
	}
	segSize := SegmentSizeFor(capacity)
	l := &Log{
		arena:     arena,
		capacity:  capacity,
		chunkSize: DefaultChunkSize,
		segSize:   segSize,
	}
	l.next.Store(segSize) // LSN 0 is reserved as "nil" across the stores
	l.head.Store(segSize)
	return l, nil
}

// SetMetaHook installs fn to run (under the metadata mutex) after every
// change to the segment map or GC head. Must be set before any append.
func (l *Log) SetMetaHook(fn func(head, next int64, segs map[int64]int64)) {
	l.mu.Lock()
	l.metaHook = fn
	l.mu.Unlock()
}

// snapshotLocked builds the restart-critical state: the GC head, the tail,
// and the segment-index -> arena-offset map. Caller holds mu.
func (l *Log) snapshotLocked() (head, next int64, segs map[int64]int64) {
	segs = make(map[int64]int64)
	l.segments.Range(func(k, v any) bool {
		segs[k.(int64)] = v.(int64)
		return true
	})
	return l.head.Load(), l.next.Load(), segs
}

// SegmentSnapshot returns the log's restart-critical state: the GC head, the
// tail, and the segment-index -> arena-offset map. Callers persist it through
// the meta hook; RestoreSegments is its inverse.
func (l *Log) SegmentSnapshot() (head, next int64, segs map[int64]int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapshotLocked()
}

// RestoreSegments reinstates a snapshot taken by SegmentSnapshot on a fresh
// log — reattaching to existing durable state after a process restart. Must
// run before any appender is created.
func (l *Log) RestoreSegments(head, next int64, segs map[int64]int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for seg, off := range segs {
		l.segments.Store(seg, off)
	}
	l.segCount.Store(int64(len(segs)))
	if head > l.head.Load() {
		l.head.Store(head)
	}
	if next > l.next.Load() {
		l.next.Store(next)
	}
}

// HoldGC registers (or moves) a named reclamation floor: FreeBefore will not
// release the segment containing lsn or anything above it until the hold is
// released or moved up. Replication registers one hold per replica, pinned at
// the replica's acked LSN, so log GC can never reclaim bytes a lagging
// replica has not applied yet. A hold at 0 pins the whole log.
func (l *Log) HoldGC(id string, lsn int64) {
	l.mu.Lock()
	if l.holds == nil {
		l.holds = make(map[string]int64)
	}
	l.holds[id] = lsn
	l.mu.Unlock()
}

// ReleaseGCHold removes a named hold installed by HoldGC.
func (l *Log) ReleaseGCHold(id string) {
	l.mu.Lock()
	delete(l.holds, id)
	l.mu.Unlock()
}

// holdFloorLocked returns the minimum registered hold and true, or false when
// no holds exist. Caller holds mu.
func (l *Log) holdFloorLocked() (int64, bool) {
	ok := false
	var min int64
	for _, lsn := range l.holds {
		if !ok || lsn < min {
			min, ok = lsn, true
		}
	}
	return min, ok
}

// GCFloor returns the highest LSN log GC may currently free up to: the
// MinNextLSN durability watermark further clamped by every registered GC
// hold. core.CompactLog caps its reclamation target here, and FreeBefore
// re-checks the hold component under its own lock, so a hold installed
// between the two can only make reclamation more conservative.
func (l *Log) GCFloor() int64 {
	floor := l.MinNextLSN()
	l.mu.Lock()
	if h, ok := l.holdFloorLocked(); ok && h < floor {
		floor = h
	}
	l.mu.Unlock()
	return floor
}

// SetSealHook installs fn to run after any appender seals a non-empty batch
// chunk — the moment the MinNextLSN watermark can advance. fn must not block:
// it runs on the sealing worker with the appender locked.
func (l *Log) SetSealHook(fn func()) {
	if fn == nil {
		l.sealHook.Store(nil)
		return
	}
	l.sealHook.Store(&fn)
}

// Base returns the first potentially-live LSN (the GC head). Lock-free.
func (l *Log) Base() int64 { return l.head.Load() }

// Tail returns the high-water LSN: all entries live below it. Lock-free.
func (l *Log) Tail() int64 { return l.next.Load() }

// SegmentSize returns the physical allocation unit.
func (l *Log) SegmentSize() int64 { return l.segSize }

// LiveBytes returns the bytes currently held in arena segments.
func (l *Log) LiveBytes() int64 { return l.segCount.Load() * l.segSize }

// Entries returns the number of appended entries.
func (l *Log) Entries() int64 { return l.entries.Load() }

// BytesAppended returns the logical bytes appended.
func (l *Log) BytesAppended() int64 { return l.bytes.Load() }

// EntrySize returns the padded on-log size of an entry.
func EntrySize(keyLen, valLen int) int64 {
	sz := int64(headerSize + keyLen + valLen)
	return (sz + 7) &^ 7
}

// phys maps a virtual offset to its arena offset, or reports the segment
// reclaimed/unallocated. Lock-free: the segment map is read without the
// metadata mutex.
func (l *Log) phys(v int64) (int64, bool) {
	off, ok := l.segments.Load(v / l.segSize)
	if !ok {
		return 0, false
	}
	return off.(int64) + v%l.segSize, true
}

// reserveChunk hands out the next chunk-aligned virtual region of at least
// size bytes (rounded up to whole chunks), allocating segments as needed.
// Chunks never span segments; oversized reservations take whole segments.
//
// The reserving appender's nextLSN floor is published (under l.mu, before the
// tail advances) rather than by the caller afterwards: MinNextLSN reads the
// tail first and the appender floors second, so any reader that observes the
// advanced tail also observes this reservation's floor. Publishing after the
// tail would open a window where the watermark covers a reserved-but-empty
// chunk — a concurrent shipper or checkpoint would skip it and the entries
// later appended into it would sit below a cursor that never revisits them.
func (l *Log) reserveChunk(a *Appender, size int64) (int64, int64, error) {
	n := (size + l.chunkSize - 1) / l.chunkSize * l.chunkSize
	l.mu.Lock()
	defer l.mu.Unlock()
	next := l.next.Load()
	// Pad to the next segment if the chunk would straddle a boundary.
	if next%l.segSize+n > l.segSize {
		next = (next/l.segSize + 1) * l.segSize
	}
	start := next
	end := start + n
	for seg := start / l.segSize; seg <= (end-1)/l.segSize; seg++ {
		if _, ok := l.segments.Load(seg); ok {
			continue
		}
		if (l.segCount.Load()+1)*l.segSize > l.capacity {
			return 0, 0, fmt.Errorf("%w: %d live segments of %d bytes", ErrLogFull, l.segCount.Load(), l.segSize)
		}
		off, err := l.arena.Alloc(l.segSize)
		if err != nil {
			return 0, 0, fmt.Errorf("wlog: segment allocation: %w", err)
		}
		// Publish the mapping before the tail below: a reader that sees the
		// advanced tail must be able to resolve every LSN under it.
		l.segments.Store(seg, off)
		l.segCount.Add(1)
	}
	a.nextLSN.Store(start)
	l.next.Store(end)
	if l.metaHook != nil {
		// Persist the updated segment directory before the reservation is
		// used: no entry in this chunk can be written — and so none can be
		// acknowledged — until the mapping that recovers it is durable.
		l.metaHook(l.snapshotLocked())
	}
	return start, n, nil
}

// FreeBefore releases every whole segment strictly below LSN v back to the
// arena and advances the GC head. The caller (core.CompactLog) must have
// relocated all live entries below v and checkpointed the stores' recovery
// watermarks above it first.
func (l *Log) FreeBefore(v int64) (freedBytes int64) {
	// After a simulated power failure the checkpoint that raised the
	// watermark above v never became durable: the durable manifests may still
	// reference entries below v, so freeing (and durably zeroing) their
	// segments would destroy data recovery needs. The dying process frees
	// nothing.
	if l.arena.Device().PowerFailed() {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	// A registered GC hold is a hard floor: even if the caller computed its
	// target before the hold appeared, the segments the holder needs survive.
	if h, ok := l.holdFloorLocked(); ok && h < v {
		v = h
	}
	lastSeg := v / l.segSize // segments strictly below this index die
	next := l.next.Load()
	l.segments.Range(func(k, val any) bool {
		seg, off := k.(int64), val.(int64)
		if seg < lastSeg && (seg+1)*l.segSize <= next {
			l.segments.Delete(seg)
			l.segCount.Add(-1)
			l.arena.Free(off, l.segSize)
			freedBytes += l.segSize
		}
		return true
	})
	if h := lastSeg * l.segSize; h > l.head.Load() {
		l.head.Store(h)
	}
	if freedBytes > 0 && l.metaHook != nil {
		// Drop the freed segments from the durable directory so a restart
		// does not resurrect mappings onto arena space the allocator may
		// hand out again.
		l.metaHook(l.snapshotLocked())
	}
	return freedBytes
}

// Appender is a per-worker handle with a private batch chunk, so appends are
// contention-free until a chunk seals. An Appender belongs to one worker;
// the only cross-worker entry point is Log.SyncAll, which the internal mutex
// serializes against the owner.
type Appender struct {
	log *Log

	mu        sync.Mutex
	chunkOff  int64 // virtual offset of current chunk, 0 if none
	chunkPhys int64 // arena offset of current chunk
	chunkLen  int64
	used      int64 // bytes written into current chunk
	persisted int64 // prefix of used already persisted

	// nextLSN is the smallest LSN any future Append by this appender can
	// return (0 = no private chunk, so bounded by the log tail). It is read
	// concurrently by MinNextLSN for recovery watermarks.
	nextLSN atomic.Int64
}

// NewAppender creates an appender for one worker and registers it for
// recovery-watermark accounting.
func (l *Log) NewAppender() *Appender {
	a := &Appender{log: l}
	l.apMu.Lock()
	l.appenders = append(l.appenders, a)
	l.apMu.Unlock()
	return a
}

// Release deregisters the appender (after a final Flush) so a retired worker
// does not hold the recovery watermark back.
func (a *Appender) Release(c *simclock.Clock) error {
	if err := a.Flush(c); err != nil {
		return err
	}
	a.log.apMu.Lock()
	for i, x := range a.log.appenders {
		if x == a {
			a.log.appenders = append(a.log.appenders[:i], a.log.appenders[i+1:]...)
			break
		}
	}
	a.log.apMu.Unlock()
	return nil
}

// MinNextLSN returns a conservative lower bound on the LSN of any entry that
// could still be appended: the minimum over every appender's private-chunk
// position and the shared tail. Stores persist this value as their recovery
// watermark — everything below it that matters is already in persisted
// tables, so recovery scans from here.
func (l *Log) MinNextLSN() int64 {
	min := l.Tail()
	l.apMu.Lock()
	for _, a := range l.appenders {
		if n := a.nextLSN.Load(); n != 0 && n < min {
			min = n
		}
	}
	l.apMu.Unlock()
	return min
}

// Append writes one entry and returns its LSN. The entry is immediately
// visible to readers (it is in the volatile image) but becomes durable only
// when its chunk seals or Flush is called — the same window a real batched
// log has.
func (a *Appender) Append(c *simclock.Clock, hash uint64, key, value []byte, flags uint16) (int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(key) > 0xffff {
		return 0, fmt.Errorf("wlog: key too long (%d)", len(key))
	}
	if int64(len(value)) > 0xffffffff {
		return 0, fmt.Errorf("wlog: value too long (%d)", len(value))
	}
	sz := EntrySize(len(key), len(value))
	if a.chunkOff == 0 || a.used+sz > a.chunkLen {
		if err := a.seal(c); err != nil {
			return 0, err
		}
		off, n, err := a.log.reserveChunk(a, sz)
		if err != nil {
			return 0, err
		}
		phys, ok := a.log.phys(off)
		if !ok {
			a.nextLSN.Store(0)
			return 0, fmt.Errorf("wlog: fresh chunk unmapped at %d", off)
		}
		a.chunkOff, a.chunkPhys, a.chunkLen, a.used, a.persisted = off, phys, n, 0, 0
	}
	lsn := a.chunkOff + a.used
	buf := a.log.arena.Bytes(a.chunkPhys+a.used, sz)
	binary.LittleEndian.PutUint64(buf[0:8], hash)
	meta := uint64(len(key)) | uint64(len(value))<<16 | uint64(flags)<<48
	binary.LittleEndian.PutUint64(buf[8:16], meta)
	binary.LittleEndian.PutUint64(buf[16:24], entrySum(hash, meta, key, value))
	copy(buf[headerSize:], key)
	copy(buf[headerSize+len(key):], value)
	a.used += sz
	a.nextLSN.Store(a.chunkOff + a.used)
	a.log.entries.Add(1)
	a.log.bytes.Add(sz)
	if a.used == a.chunkLen {
		if err := a.seal(c); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// AppendSync appends one entry and persists it immediately — no batching.
// Each call is a small write that the device rounds up to its 256 B access
// unit with a read-modify-write: the put path of the Pmem-Hash baseline,
// which "persists KV items with small writes in individual put operations"
// (Section 3.3).
func (a *Appender) AppendSync(c *simclock.Clock, hash uint64, key, value []byte, flags uint16) (int64, error) {
	lsn, err := a.Append(c, hash, key, value, flags)
	if err != nil {
		return 0, err
	}
	a.mu.Lock()
	if a.chunkOff != 0 && a.used > a.persisted {
		a.log.arena.Persist(c, a.chunkPhys+a.persisted, a.used-a.persisted)
		a.persisted = a.used
	}
	a.mu.Unlock()
	return lsn, nil
}

// seal persists the unpersisted part of the current chunk and detaches it.
func (a *Appender) seal(c *simclock.Clock) error {
	sealed := a.chunkOff != 0
	if sealed && a.used > a.persisted {
		a.log.arena.Persist(c, a.chunkPhys+a.persisted, a.used-a.persisted)
		a.persisted = a.used
	}
	a.chunkOff, a.chunkPhys, a.chunkLen, a.used, a.persisted = 0, 0, 0, 0, 0
	a.nextLSN.Store(0)
	if sealed {
		if hook := a.log.sealHook.Load(); hook != nil {
			(*hook)()
		}
	}
	return nil
}

// Flush persists any buffered entries. Called on store Flush/Close and by
// durability-sensitive tests.
func (a *Appender) Flush(c *simclock.Clock) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.seal(c)
}

// sync persists the appender's buffered prefix without detaching the chunk,
// so the owner keeps batching into the remainder.
func (a *Appender) sync(c *simclock.Clock) {
	a.mu.Lock()
	if a.chunkOff != 0 && a.used > a.persisted {
		a.log.arena.Persist(c, a.chunkPhys+a.persisted, a.used-a.persisted)
		a.persisted = a.used
	}
	a.mu.Unlock()
}

// SyncAll persists every appender's buffered entries. Index checkpoints
// (ChameleonDB's MemTable flushes, ABI dumps, and compactions) call this
// before persisting a table so a durable index can never reference a log
// entry that a crash would erase — the log is always at least as durable as
// the index that points into it.
func (l *Log) SyncAll(c *simclock.Clock) {
	l.apMu.Lock()
	aps := make([]*Appender, len(l.appenders))
	copy(aps, l.appenders)
	l.apMu.Unlock()
	for _, a := range aps {
		a.sync(c)
	}
}

// SealAll persists and detaches every appender's private batch chunk, so all
// future appends draw fresh LSNs from the shared tail. Log GC must call this
// before relocating entries: a relocated copy takes an LSN at the tail, and
// if a session later appended a newer version into a still-open chunk below
// the tail, recovery's LSN-ordered replay would resurrect the relocated old
// copy over the newer flushed one.
func (l *Log) SealAll(c *simclock.Clock) error {
	l.apMu.Lock()
	aps := make([]*Appender, len(l.appenders))
	copy(aps, l.appenders)
	l.apMu.Unlock()
	for _, a := range aps {
		if err := a.Flush(c); err != nil {
			return err
		}
	}
	return nil
}

// Entry is one decoded log record.
type Entry struct {
	LSN   int64
	Hash  uint64
	Key   []byte
	Value []byte
	Flags uint16
}

// Tombstone reports whether the entry is a deletion marker.
func (e Entry) Tombstone() bool { return e.Flags&FlagTombstone != 0 }

func decodeMeta(meta uint64) (keyLen, valLen int, flags uint16) {
	return int(meta & 0xffff), int(meta >> 16 & 0xffffffff), uint16(meta >> 48)
}

// Read decodes the entry at lsn, charging one random device read of the
// entry's size. Reading into a reclaimed segment returns ErrReclaimed; an
// entry whose checksum or declared size is wrong (a torn batch persist)
// returns ErrCorrupt.
func (l *Log) Read(c *simclock.Clock, lsn int64) (Entry, error) {
	if lsn < l.segSize || lsn >= l.Tail() {
		return Entry{}, fmt.Errorf("wlog: LSN %d out of range", lsn)
	}
	phys, ok := l.phys(lsn)
	if !ok {
		return Entry{}, ErrReclaimed
	}
	segRem := l.segSize - lsn%l.segSize
	if segRem < headerSize {
		return Entry{}, fmt.Errorf("%w: header at LSN %d crosses segment end", ErrCorrupt, lsn)
	}
	hdr := l.arena.Bytes(phys, headerSize)
	hash := binary.LittleEndian.Uint64(hdr[0:8])
	meta := binary.LittleEndian.Uint64(hdr[8:16])
	sum := binary.LittleEndian.Uint64(hdr[16:24])
	if meta == 0 {
		return Entry{}, fmt.Errorf("wlog: no entry at LSN %d", lsn)
	}
	keyLen, valLen, flags := decodeMeta(meta)
	sz := EntrySize(keyLen, valLen)
	if sz > segRem {
		return Entry{}, fmt.Errorf("%w: entry at LSN %d claims %d bytes past segment end", ErrCorrupt, lsn, sz)
	}
	buf := l.arena.ReadRandom(c, phys, sz)
	key := buf[headerSize : headerSize+keyLen]
	value := buf[headerSize+keyLen : headerSize+keyLen+valLen]
	if entrySum(hash, meta, key, value) != sum {
		return Entry{}, fmt.Errorf("%w: checksum mismatch at LSN %d", ErrCorrupt, lsn)
	}
	return Entry{
		LSN:   lsn,
		Hash:  hash,
		Key:   key,
		Value: value,
		Flags: flags,
	}, nil
}

// PeekHash reads only the hash and flags of the entry at lsn without
// charging a device access; index maintenance uses it where a real system
// would have the information in DRAM already.
func (l *Log) PeekHash(lsn int64) (uint64, uint16, bool) {
	if lsn < l.segSize || lsn >= l.Tail() {
		return 0, 0, false
	}
	phys, ok := l.phys(lsn)
	if !ok {
		return 0, 0, false
	}
	if l.segSize-lsn%l.segSize < headerSize {
		return 0, 0, false
	}
	hdr := l.arena.Bytes(phys, headerSize)
	meta := binary.LittleEndian.Uint64(hdr[8:16])
	if meta == 0 {
		return 0, 0, false
	}
	_, _, flags := decodeMeta(meta)
	return binary.LittleEndian.Uint64(hdr[0:8]), flags, true
}

// Scan iterates entries with LSN >= from in log order, charging sequential
// reads per chunk, and calls fn for each entry. fn returning false stops the
// scan. Reclaimed and unallocated segments are skipped. Scan is how stores
// rebuild volatile indexes after a crash.
func (l *Log) Scan(c *simclock.Clock, from int64, fn func(Entry) bool) error {
	return l.ScanRange(c, from, l.Tail(), fn)
}

// ScanRange is Scan bounded above: it never touches bytes at or past to, so a
// caller that picked to = MinNextLSN can run concurrently with live appenders
// — every byte below that watermark was published (via the appenders' nextLSN
// atomics) before the watermark was read, and no future append can land
// there. The replication shipper exports chunks this way while the store
// serves writes.
func (l *Log) ScanRange(c *simclock.Clock, from, to int64, fn func(Entry) bool) error {
	if from < l.segSize {
		from = l.segSize
	}
	end := l.Tail()
	if to < end {
		end = to
	}
	pos := from
	for pos < end {
		phys, ok := l.phys(pos)
		if !ok {
			// Freed or never-allocated segment: skip it whole.
			pos = (pos/l.segSize + 1) * l.segSize
			continue
		}
		// Charge the chunk read once when entering a chunk.
		if pos%l.chunkSize == 0 || pos == from {
			n := l.chunkSize - pos%l.chunkSize
			if pos+n > end {
				n = end - pos
			}
			l.arena.ReadSeq(c, phys, n)
		}
		segRem := l.segSize - pos%l.segSize
		if segRem < headerSize {
			// Not enough room for a header before the segment end: whatever
			// is here is padding.
			pos = (pos/l.chunkSize + 1) * l.chunkSize
			continue
		}
		hdr := l.arena.Bytes(phys, headerSize)
		meta := binary.LittleEndian.Uint64(hdr[8:16])
		if meta == 0 {
			// End of this chunk's used portion: skip to next chunk boundary.
			pos = (pos/l.chunkSize + 1) * l.chunkSize
			continue
		}
		keyLen, valLen, flags := decodeMeta(meta)
		sz := EntrySize(keyLen, valLen)
		if sz > segRem {
			// Entries never span segments, so a size reaching past the
			// segment end means the header itself is torn garbage: the rest
			// of this chunk never became durable.
			pos = (pos/l.chunkSize + 1) * l.chunkSize
			continue
		}
		buf := l.arena.Bytes(phys, sz)
		hash := binary.LittleEndian.Uint64(buf[0:8])
		sum := binary.LittleEndian.Uint64(buf[16:24])
		key := buf[headerSize : headerSize+keyLen]
		value := buf[headerSize+keyLen : headerSize+keyLen+valLen]
		if entrySum(hash, meta, key, value) != sum {
			// Torn batch persist: the entry's lines beyond the committed
			// prefix are gone, and so is everything after it in the chunk.
			pos = (pos/l.chunkSize + 1) * l.chunkSize
			continue
		}
		e := Entry{
			LSN:   pos,
			Hash:  hash,
			Key:   key,
			Value: value,
			Flags: flags,
		}
		if !fn(e) {
			return nil
		}
		pos += sz
	}
	return nil
}
