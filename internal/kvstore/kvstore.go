// Package kvstore defines the interface every store in the evaluation
// implements — ChameleonDB and the Pmem-Hash / Dram-Hash / Pmem-LSM /
// NoveLSM / MatrixKV baselines — so the benchmark harness and the oracle
// test suite can drive them uniformly.
package kvstore

import (
	"chameleondb/internal/device"
	"chameleondb/internal/simclock"
)

// Session is a per-worker handle. Each benchmark thread (and each background
// compaction worker) owns one session; the session's clock accumulates the
// virtual time of everything the worker does. Sessions are not safe for
// concurrent use; different sessions of the same store are.
type Session interface {
	// Put inserts or updates a key.
	Put(key, value []byte) error
	// Get returns the value for key, and whether it exists.
	Get(key []byte) ([]byte, bool, error)
	// Delete removes a key (a tombstone in log-structured stores).
	Delete(key []byte) error
	// Flush drains any DRAM write buffers to the device (log batches,
	// unsealed chunks), making acknowledged writes durable.
	Flush() error
	// Clock returns the worker's virtual clock.
	Clock() *simclock.Clock
}

// Store is a key-value store under evaluation.
type Store interface {
	// Name identifies the store in reports ("ChameleonDB", "Pmem-Hash", ...).
	Name() string
	// NewSession creates a worker handle bound to clock c.
	NewSession(c *simclock.Clock) Session
	// DRAMFootprint reports the store's volatile memory use in bytes
	// (Table 4's DRAM Footprint column).
	DRAMFootprint() int64
	// DeviceStats reports the persistent device's media counters.
	DeviceStats() device.Stats
	// Crash simulates a power failure: all volatile state (DRAM indexes,
	// unflushed buffers) is lost; only persisted data survives. The caller
	// must have quiesced all sessions.
	Crash()
	// Recover rebuilds the store after Crash until it can serve requests.
	// The recovery work is charged to c; the elapsed virtual time is the
	// restart time of Table 4.
	Recover(c *simclock.Clock) error
	// Close releases resources.
	Close() error
}
