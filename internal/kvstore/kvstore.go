// Package kvstore defines the interface every store in the evaluation
// implements — ChameleonDB and the Pmem-Hash / Dram-Hash / Pmem-LSM /
// NoveLSM / MatrixKV baselines — so the benchmark harness and the oracle
// test suite can drive them uniformly.
package kvstore

import (
	"chameleondb/internal/device"
	"chameleondb/internal/simclock"
)

// Session is a per-worker handle. Each benchmark thread (and each background
// compaction worker) owns one session; the session's clock accumulates the
// virtual time of everything the worker does. Sessions are not safe for
// concurrent use; different sessions of the same store are.
//
// Buffer ownership: Put and Delete must not retain key or value after they
// return — the caller may reuse or overwrite the backing arrays immediately
// (the RESP server passes spans of a per-connection read buffer straight
// through). Stores that keep data copy it into their own storage before
// returning.
type Session interface {
	// Put inserts or updates a key.
	Put(key, value []byte) error
	// Get returns the value for key, and whether it exists.
	Get(key []byte) ([]byte, bool, error)
	// Delete removes a key (a tombstone in log-structured stores).
	Delete(key []byte) error
	// Flush drains any DRAM write buffers to the device (log batches,
	// unsealed chunks), making acknowledged writes durable.
	Flush() error
	// Clock returns the worker's virtual clock.
	Clock() *simclock.Clock
}

// KV is one key/value pair produced by a scan, in hash order.
type KV struct {
	Key   []byte
	Value []byte
}

// Snapshot is a point-in-time, immutable view of a store. Scan pages through
// it with a resumable cursor: pass 0 to start, feed the returned cursor back
// in, and stop when it returns 0. A snapshot pins store resources (epoch
// reclamation, arena space) until Release is called. Not safe for concurrent
// use.
type Snapshot interface {
	Scan(cursor uint64, limit int) ([]KV, uint64, error)
	Release()
}

// Scanner is an optional Session capability: stores with sorted or hashed
// range iteration implement it. Scan is the one-shot form (each call captures
// its own per-shard view, Redis-SCAN-style guarantees); Snapshot returns a
// stable view for multi-call iteration.
type Scanner interface {
	Scan(cursor uint64, limit int) ([]KV, uint64, error)
	Snapshot() (Snapshot, error)
}

// ValueReader is an optional Session capability: an allocation-free read. The
// value is appended to dst (strconv.Append style) and the extended slice
// returned, so a caller that reuses one buffer across gets allocates only when
// a value outgrows it. On a miss or error the returned slice is dst unchanged.
// The result never aliases store-internal memory — it is a copy the caller
// owns, like Get's.
type ValueReader interface {
	GetInto(key, dst []byte) ([]byte, bool, error)
}

// BatchWriter is an optional Session capability: n independent puts applied in
// one call so the store can amortize per-operation overhead (ChameleonDB
// groups keys by destination shard and applies each group under a single
// shard-lock acquisition). Semantics match n sequential Puts: writes to the
// same key keep their relative order, and on error a prefix of the batch may
// be applied — callers that need exactly-sequential failure semantics fall
// back to Put. keys and values must be parallel slices; like Put, neither is
// retained after the call returns.
type BatchWriter interface {
	PutBatch(keys, values [][]byte) error
}

// ConditionalDeleter is an optional Session capability: a delete that runs
// probe and tombstone atomically under the store's write path and reports
// whether the key existed. Fixes the probe-then-delete TOCTOU a Get+Delete
// pair has across sessions.
type ConditionalDeleter interface {
	DeleteIfPresent(key []byte) (bool, error)
}

// Incrementer is an optional Session capability: an atomic read-modify-write
// of a decimal integer value (Redis INCR/INCRBY semantics).
type Incrementer interface {
	IncrBy(key []byte, delta int64) (int64, error)
}

// Store is a key-value store under evaluation.
type Store interface {
	// Name identifies the store in reports ("ChameleonDB", "Pmem-Hash", ...).
	Name() string
	// NewSession creates a worker handle bound to clock c.
	NewSession(c *simclock.Clock) Session
	// DRAMFootprint reports the store's volatile memory use in bytes
	// (Table 4's DRAM Footprint column).
	DRAMFootprint() int64
	// DeviceStats reports the persistent device's media counters.
	DeviceStats() device.Stats
	// Crash simulates a power failure: all volatile state (DRAM indexes,
	// unflushed buffers) is lost; only persisted data survives. The caller
	// must have quiesced all sessions.
	Crash()
	// Recover rebuilds the store after Crash until it can serve requests.
	// The recovery work is charged to c; the elapsed virtual time is the
	// restart time of Table 4.
	Recover(c *simclock.Clock) error
	// Close releases resources.
	Close() error
}
