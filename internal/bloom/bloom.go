// Package bloom implements the Bloom filters used by the Pmem-LSM-F,
// NoveLSM, and MatrixKV baselines. Filters live in DRAM; construction and
// membership checks charge the CPU cost model, because against Optane's
// nanosecond reads filter work is no longer negligible — this is the heart of
// the paper's Challenge 2 and the Pmem-LSM-F/NF throughput gap.
package bloom

import (
	"chameleondb/internal/device"
	"chameleondb/internal/simclock"
	"chameleondb/internal/xhash"
)

// Filter is a standard double-hashing Bloom filter over 64-bit key hashes.
// Concurrent Contains calls are safe after construction is complete.
type Filter struct {
	bits []uint64
	mask uint64
	k    int
}

// BitsPerKey is the paper-typical space budget (~1% false positive rate).
const BitsPerKey = 10

// New creates a filter sized for n keys at BitsPerKey bits each.
func New(n int) *Filter {
	if n < 1 {
		n = 1
	}
	nbits := nextPow2(uint64(n) * BitsPerKey)
	if nbits < 64 {
		nbits = 64
	}
	return &Filter{
		bits: make([]uint64, nbits/64),
		mask: nbits - 1,
		k:    7, // optimal k for 10 bits/key is ~6.9
	}
}

func nextPow2(v uint64) uint64 {
	n := uint64(64)
	for n < v {
		n <<= 1
	}
	return n
}

// Add inserts a key hash, charging the CPU construction cost.
func (f *Filter) Add(c *simclock.Clock, h uint64) {
	c.Advance(device.CostBloomAdd)
	g := xhash.Uint64(h)
	for i := 0; i < f.k; i++ {
		bit := h & f.mask
		f.bits[bit/64] |= 1 << (bit % 64)
		h += g
	}
}

// Contains tests membership, charging the CPU check cost. False positives
// occur at the designed rate; false negatives never.
func (f *Filter) Contains(c *simclock.Clock, h uint64) bool {
	c.Advance(device.CostBloomCheck)
	g := xhash.Uint64(h)
	for i := 0; i < f.k; i++ {
		bit := h & f.mask
		if f.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
		h += g
	}
	return true
}

// SizeBytes reports the filter's DRAM footprint.
func (f *Filter) SizeBytes() int64 { return int64(len(f.bits) * 8) }
