package bloom

import (
	"testing"

	"chameleondb/internal/simclock"
	"chameleondb/internal/xhash"
)

func TestNoFalseNegatives(t *testing.T) {
	c := simclock.New(0)
	f := New(10000)
	for i := uint64(0); i < 10000; i++ {
		f.Add(c, xhash.Uint64(i))
	}
	for i := uint64(0); i < 10000; i++ {
		if !f.Contains(c, xhash.Uint64(i)) {
			t.Fatalf("false negative for key %d", i)
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	c := simclock.New(0)
	const n = 10000
	f := New(n)
	for i := uint64(0); i < n; i++ {
		f.Add(c, xhash.Uint64(i))
	}
	fp := 0
	const probes = 100000
	for i := uint64(n); i < n+probes; i++ {
		if f.Contains(c, xhash.Uint64(i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Fatalf("false positive rate %v too high for 10 bits/key", rate)
	}
}

func TestChargesCPUCost(t *testing.T) {
	c := simclock.New(0)
	f := New(100)
	f.Add(c, 1)
	afterAdd := c.Now()
	if afterAdd == 0 {
		t.Fatal("Add charged no CPU time")
	}
	f.Contains(c, 1)
	if c.Now() == afterAdd {
		t.Fatal("Contains charged no CPU time")
	}
}

func TestSizing(t *testing.T) {
	if f := New(0); f.SizeBytes() < 8 {
		t.Fatal("degenerate filter too small")
	}
	f := New(1 << 20)
	// 10 bits/key * 1 Mi keys, rounded to a power of two: 2 MiB of bits.
	if f.SizeBytes() != 1<<21 {
		t.Fatalf("SizeBytes = %d, want %d", f.SizeBytes(), 1<<21)
	}
}
