package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"chameleondb/internal/kvstore"
	"chameleondb/internal/simclock"
)

// scanAll drives Session.Scan's cursor loop to completion with a small batch
// size (exercising the paging path), failing on duplicate keys — a quiesced
// store must yield every live key exactly once.
func scanAll(t testing.TB, se *Session) map[string]string {
	t.Helper()
	got := make(map[string]string)
	var cursor uint64
	for {
		kvs, next, err := se.Scan(cursor, 7)
		if err != nil {
			t.Fatalf("Scan(%d): %v", cursor, err)
		}
		for _, kv := range kvs {
			if _, dup := got[string(kv.Key)]; dup {
				t.Fatalf("scan returned key %q twice", kv.Key)
			}
			got[string(kv.Key)] = string(kv.Value)
		}
		if next == 0 {
			return got
		}
		cursor = next
	}
}

// snapScanAll is scanAll over an explicit snapshot.
func snapScanAll(t testing.TB, sn kvstore.Snapshot) map[string]string {
	t.Helper()
	got := make(map[string]string)
	var cursor uint64
	for {
		kvs, next, err := sn.Scan(cursor, 7)
		if err != nil {
			t.Fatalf("snapshot Scan(%d): %v", cursor, err)
		}
		for _, kv := range kvs {
			if _, dup := got[string(kv.Key)]; dup {
				t.Fatalf("snapshot scan returned key %q twice", kv.Key)
			}
			got[string(kv.Key)] = string(kv.Value)
		}
		if next == 0 {
			return got
		}
		cursor = next
	}
}

func diffMaps(t testing.TB, got, want map[string]string, label string) {
	t.Helper()
	for k, wv := range want {
		gv, ok := got[k]
		if !ok {
			t.Fatalf("%s: live key %q missing from scan", label, k)
		}
		if gv != wv {
			t.Fatalf("%s: key %q = %q, want %q", label, k, gv, wv)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Fatalf("%s: scan returned key %q which must be absent", label, k)
		}
	}
}

func TestScanEmptyStore(t *testing.T) {
	s := openTest(t)
	se := s.NewSession(simclock.New(0)).(*Session)
	kvs, cursor, err := se.Scan(0, 10)
	if err != nil || len(kvs) != 0 || cursor != 0 {
		t.Fatalf("empty scan = %v, %d, %v", kvs, cursor, err)
	}
}

func TestScanReturnsEverything(t *testing.T) {
	s := openTest(t)
	se := s.NewSession(simclock.New(0)).(*Session)
	want := make(map[string]string)
	for i := 0; i < 500; i++ {
		se.Put(key(i), val(i))
		want[string(key(i))] = string(val(i))
	}
	diffMaps(t, scanAll(t, se), want, "in-mem scan")

	// The same contract holds once entries sit in deeper tiers.
	c := simclock.New(0)
	if err := s.FlushAll(c); err != nil {
		t.Fatal(err)
	}
	if err := s.DumpABIs(c); err != nil {
		t.Fatal(err)
	}
	diffMaps(t, scanAll(t, se), want, "flushed scan")
}

func TestScanTombstoneSuppression(t *testing.T) {
	for _, mode := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"Direct", nil},
		{"WIM", func(c *Config) { c.WriteIntensive = true }},
		{"NoABI", func(c *Config) { c.DisableABI = true }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			var s *Store
			if mode.mutate == nil {
				s = openTest(t)
			} else {
				s = openTest(t, mode.mutate)
			}
			se := s.NewSession(simclock.New(0)).(*Session)
			c := simclock.New(0)
			want := make(map[string]string)
			for i := 0; i < 200; i++ {
				se.Put(key(i), val(i))
				want[string(key(i))] = string(val(i))
			}
			// Push the puts down, then delete a third of them so the
			// tombstones sit in the MemTable above surviving versions.
			if err := s.FlushAll(c); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 200; i += 3 {
				se.Delete(key(i))
				delete(want, string(key(i)))
			}
			diffMaps(t, scanAll(t, se), want, "tombstones above")

			// And once the tombstones themselves are flushed down.
			if err := s.FlushAll(c); err != nil {
				t.Fatal(err)
			}
			if err := s.DumpABIs(c); err != nil {
				t.Fatal(err)
			}
			diffMaps(t, scanAll(t, se), want, "tombstones flushed")
		})
	}
}

// TestSnapshotIsolation is the tentpole's core promise: an eager snapshot is
// an exact cut — writes, deletes, flushes, spills and dumps issued after its
// creation never leak in, and re-scanning the same snapshot is idempotent.
func TestSnapshotIsolation(t *testing.T) {
	s := openTest(t)
	se := s.NewSession(simclock.New(0)).(*Session)
	c := simclock.New(0)
	want := make(map[string]string)
	for i := 0; i < 300; i++ {
		se.Put(key(i), val(i))
		want[string(key(i))] = string(val(i))
	}
	s.FlushAll(c)
	for i := 0; i < 300; i += 5 {
		se.Delete(key(i))
		delete(want, string(key(i)))
	}

	sn, err := se.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Release()

	// Mutate heavily after the cut: overwrite, delete, insert, and churn the
	// structures underneath the snapshot.
	for i := 0; i < 300; i++ {
		se.Put(key(i), val2(i))
	}
	for i := 300; i < 400; i++ {
		se.Put(key(i), val(i))
	}
	for i := 0; i < 100; i++ {
		se.Delete(key(i))
	}
	s.FlushAll(c)
	s.DumpABIs(c)

	first := snapScanAll(t, sn)
	diffMaps(t, first, want, "snapshot after mutations")
	second := snapScanAll(t, sn)
	diffMaps(t, second, first, "second scan of same snapshot")

	// A live scan sees the new state, not the snapshot's.
	live := scanAll(t, se)
	if string(live[string(key(150))]) != string(val2(150)) {
		t.Fatalf("live scan still sees pre-mutation value %q", live[string(key(150))])
	}

	sn.Release()
	if _, _, err := sn.Scan(0, 1); err != ErrSnapshotReleased {
		t.Fatalf("scan after release = %v, want ErrSnapshotReleased", err)
	}
}

func TestSnapshotStaleAfterCrash(t *testing.T) {
	s := openTest(t)
	se := s.NewSession(simclock.New(0)).(*Session)
	se.Put(key(1), val(1))
	se.Flush()
	sn, err := se.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Release()
	s.Crash()
	if err := s.Recover(simclock.New(0)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sn.Scan(0, 10); err != ErrSnapshotStale {
		t.Fatalf("scan across crash = %v, want ErrSnapshotStale", err)
	}
	// A fresh scan works again.
	se2 := s.NewSession(simclock.New(0)).(*Session)
	got := scanAll(t, se2)
	if got[string(key(1))] != string(val(1)) {
		t.Fatalf("post-recovery scan = %v", got)
	}
}

func TestScanCursorResumesAcrossMutations(t *testing.T) {
	// The one-shot Session.Scan takes a snapshot per call, so a cursor loop
	// interleaved with writes keeps the Redis guarantee: keys present for the
	// whole loop appear exactly once; keys written mid-loop may or may not.
	s := openTest(t)
	se := s.NewSession(simclock.New(0)).(*Session)
	stable := make(map[string]string)
	for i := 0; i < 200; i++ {
		se.Put(key(i), val(i))
		stable[string(key(i))] = string(val(i))
	}
	seen := make(map[string]int)
	var cursor uint64
	extra := 1000
	for {
		kvs, next, err := se.Scan(cursor, 16)
		if err != nil {
			t.Fatal(err)
		}
		for _, kv := range kvs {
			seen[string(kv.Key)]++
		}
		// Mutate between batches: writes landing behind the cursor.
		se.Put(key(extra), val(extra))
		extra++
		if next == 0 {
			break
		}
		cursor = next
	}
	for k, v := range stable {
		if seen[k] != 1 {
			t.Fatalf("stable key %q seen %d times", k, seen[k])
		}
		_ = v
	}
}

// TestScanOracle replays a seeded random interleaving of puts, deletes,
// session flushes and maintenance phases against a shadow map, comparing a
// full scan after every phase — across all three engine modes.
func TestScanOracle(t *testing.T) {
	for _, mode := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"Direct", nil},
		{"LbL", func(c *Config) { c.CompactionMode = LevelByLevel }},
		{"WIM", func(c *Config) { c.WriteIntensive = true }},
		{"NoABI", func(c *Config) { c.DisableABI = true }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			cfg := sweepConfig()
			if mode.mutate != nil {
				mode.mutate(&cfg)
			}
			s, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			se := s.NewSession(simclock.New(0)).(*Session)
			c := simclock.New(0)
			rng := rand.New(rand.NewSource(42))
			shadow := make(map[string]string)
			maintPhase := 0
			for op := 0; op < 4000; op++ {
				k := key(rng.Intn(128))
				switch r := rng.Intn(100); {
				case r < 55:
					v := []byte(fmt.Sprintf("v-%d-%d", op, rng.Intn(1000)))
					if err := se.Put(k, v); err != nil {
						t.Fatalf("op %d put: %v", op, err)
					}
					shadow[string(k)] = string(v)
				case r < 75:
					if err := se.Delete(k); err != nil {
						t.Fatalf("op %d delete: %v", op, err)
					}
					delete(shadow, string(k))
				case r < 80:
					if err := se.Flush(); err != nil {
						t.Fatal(err)
					}
				case r < 90:
					switch maintPhase % 3 {
					case 0:
						err = s.FlushAll(c)
					case 1:
						err = s.DumpABIs(c)
					case 2:
						_, err = s.CompactLog(c, 32<<10)
					}
					if err != nil {
						t.Fatalf("op %d maintenance %d: %v", op, maintPhase%3, err)
					}
					maintPhase++
				default:
					diffMaps(t, scanAll(t, se), shadow, fmt.Sprintf("op %d", op))
				}
			}
			diffMaps(t, scanAll(t, se), shadow, "final")
		})
	}
}

// FuzzScanOracle interprets fuzz bytes as an op stream over a small keyspace
// and checks every scan against the shadow map, under the same geometry the
// crash sweep uses.
func FuzzScanOracle(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 80, 90, 100, 200, 7, 7})
	f.Add([]byte("put-del-scan-put-del-scan"))
	f.Add([]byte{40, 0, 40, 1, 80, 0, 200, 0, 40, 2, 200, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 2048 {
			return
		}
		s, err := Open(sweepConfig())
		if err != nil {
			t.Fatal(err)
		}
		se := s.NewSession(simclock.New(0)).(*Session)
		c := simclock.New(0)
		shadow := make(map[string]string)
		maintPhase := 0
		for i := 0; i+1 < len(data); i += 2 {
			op, kb := data[i], data[i+1]
			k := key(int(kb) % 48)
			switch {
			case op < 120:
				v := []byte(fmt.Sprintf("fv-%d-%d", i, op))
				if err := se.Put(k, v); err != nil {
					t.Fatalf("put: %v", err)
				}
				shadow[string(k)] = string(v)
			case op < 170:
				if err := se.Delete(k); err != nil {
					t.Fatalf("delete: %v", err)
				}
				delete(shadow, string(k))
			case op < 190:
				if err := se.Flush(); err != nil {
					t.Fatal(err)
				}
			case op < 220:
				switch maintPhase % 3 {
				case 0:
					err = s.FlushAll(c)
				case 1:
					err = s.DumpABIs(c)
				case 2:
					_, err = s.CompactLog(c, 32<<10)
				}
				if err != nil {
					t.Fatalf("maintenance %d: %v", maintPhase%3, err)
				}
				maintPhase++
			default:
				diffMaps(t, scanAll(t, se), shadow, fmt.Sprintf("byte %d", i))
			}
		}
		diffMaps(t, scanAll(t, se), shadow, "final")
	})
}

// TestScanConcurrentWriters pins a snapshot on a quiesced store, then lets
// writer goroutines and the background maintenance pool churn underneath it
// while the snapshot is scanned repeatedly: the cut must stay exact. Run
// under -race in CI.
func TestScanConcurrentWriters(t *testing.T) {
	s := openTest(t, func(c *Config) { c.MaintenanceWorkers = 2 })
	defer s.Close()
	se := s.NewSession(simclock.New(0)).(*Session)
	want := make(map[string]string)
	for i := 0; i < 400; i++ {
		se.Put(key(i), val(i))
		want[string(key(i))] = string(val(i))
	}
	for i := 0; i < 400; i += 7 {
		se.Delete(key(i))
		delete(want, string(key(i)))
	}

	sn, err := se.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Release()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := s.NewSession(simclock.New(0)).(*Session)
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; !stop.Load(); i++ {
				k := key(rng.Intn(600))
				if rng.Intn(4) == 0 {
					if err := ws.Delete(k); err != nil {
						t.Errorf("writer %d delete: %v", w, err)
						return
					}
				} else {
					if err := ws.Put(k, []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
						t.Errorf("writer %d put: %v", w, err)
						return
					}
				}
			}
		}(w)
	}

	for round := 0; round < 5; round++ {
		diffMaps(t, snapScanAll(t, sn), want, fmt.Sprintf("round %d", round))
	}
	stop.Store(true)
	wg.Wait()

	// One-shot cursor loops under the same churn: every batch must be
	// internally duplicate-free and every returned pair must carry a
	// plausible value (a full key match — values are opaque here, the exact
	// checks live above and in the sweep).
	var cursor uint64
	seen := make(map[string]bool)
	for {
		kvs, next, err := se.Scan(cursor, 32)
		if err != nil {
			t.Fatal(err)
		}
		for _, kv := range kvs {
			if seen[string(kv.Key)] {
				t.Fatalf("cursor loop returned key %q twice", kv.Key)
			}
			seen[string(kv.Key)] = true
		}
		if next == 0 {
			break
		}
		cursor = next
	}
}
