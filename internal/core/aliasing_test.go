package core

import (
	"bytes"
	"fmt"
	"testing"

	"chameleondb/internal/kvstore"
	"chameleondb/internal/simclock"
)

// scribble overwrites every byte of b, simulating the server reusing its RESP
// read buffer for the next batch after a call returned.
func scribble(b []byte) {
	for i := range b {
		b[i] = 0xAA
	}
}

// aliasingCheck enforces the buffer-ownership contract (DESIGN.md §7) on one
// store: Put, Delete, and PutBatch must not retain the caller's key or value
// buffers — scribbling them after the call returns must not change what any
// later Get (or recovery) observes. This is exactly what the server relies on
// when it passes RESP arg spans straight into the engine and then reuses the
// read buffer for the next pipelined batch.
func aliasingCheck(t *testing.T, s kvstore.Store) {
	t.Helper()
	se := s.NewSession(simclock.New(0))

	// Put: key and value buffers are the caller's to trash afterwards.
	kbuf := []byte("alias-key-1")
	vbuf := []byte("alias-value-1")
	if err := se.Put(kbuf, vbuf); err != nil {
		t.Fatal(err)
	}
	scribble(kbuf)
	scribble(vbuf)
	got, ok, err := se.Get([]byte("alias-key-1"))
	if err != nil || !ok || string(got) != "alias-value-1" {
		t.Fatalf("after scribbling Put buffers: Get = %q,%v,%v", got, ok, err)
	}

	// The returned value is a private copy too: scribbling it must not
	// corrupt the store.
	scribble(got)
	got2, ok, _ := se.Get([]byte("alias-key-1"))
	if !ok || string(got2) != "alias-value-1" {
		t.Fatalf("scribbling a Get result corrupted the store: %q", got2)
	}

	// PutBatch: same contract for every key/value in the batch.
	var keys, vals [][]byte
	for i := 0; i < 16; i++ {
		keys = append(keys, []byte(fmt.Sprintf("alias-bk-%02d", i)))
		vals = append(vals, []byte(fmt.Sprintf("alias-bv-%02d", i)))
	}
	bw, isBW := se.(kvstore.BatchWriter)
	if !isBW {
		t.Fatalf("%T does not implement kvstore.BatchWriter", se)
	}
	if err := bw.PutBatch(keys, vals); err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		scribble(keys[i])
		scribble(vals[i])
	}
	for i := 0; i < 16; i++ {
		want := fmt.Sprintf("alias-bv-%02d", i)
		got, ok, err := se.Get([]byte(fmt.Sprintf("alias-bk-%02d", i)))
		if err != nil || !ok || string(got) != want {
			t.Fatalf("batch key %d after scribble: Get = %q,%v,%v want %q", i, got, ok, err, want)
		}
	}

	// Delete: the tombstone's key is copied as well.
	dkey := []byte("alias-bk-00")
	if err := se.Delete(dkey); err != nil {
		t.Fatal(err)
	}
	scribble(dkey)
	if _, ok, _ := se.Get([]byte("alias-bk-00")); ok {
		t.Fatal("deleted key still readable after scribbling the delete's key buffer")
	}
	if _, ok, _ := se.Get([]byte("alias-bk-01")); !ok {
		t.Fatal("scribbled delete key buffer tombstoned a different key")
	}

	if err := se.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestBufferOwnershipSim enforces the contract on the simulated-pmem backend.
func TestBufferOwnershipSim(t *testing.T) {
	s := openTest(t)
	defer s.Close()
	aliasingCheck(t, s)
}

// TestBufferOwnershipFile enforces it on the file backend, then additionally
// crashes and recovers: the durable image must hold the original bytes, not
// the scribbled ones — a retained alias that survives to the fsync would show
// up here.
func TestBufferOwnershipFile(t *testing.T) {
	cfg := TestConfig()
	s, existing, err := OpenFile(cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if existing {
		t.Fatal("fresh dir reported existing")
	}
	defer s.Close()
	aliasingCheck(t, s)
	s.Crash()
	if err := s.Recover(simclock.New(0)); err != nil {
		t.Fatal(err)
	}
	se := s.NewSession(simclock.New(0))
	got, ok, err := se.Get([]byte("alias-key-1"))
	if err != nil || !ok || string(got) != "alias-value-1" {
		t.Fatalf("post-recovery Get = %q,%v,%v", got, ok, err)
	}
	if got, ok, _ := se.Get([]byte("alias-bk-07")); !ok || string(got) != "alias-bv-07" {
		t.Fatalf("post-recovery batched key = %q,%v", got, ok)
	}
}

// TestGetIntoSemantics pins the append-style contract: the value is appended
// to dst (preserving any prefix), a miss or error returns dst unchanged with
// its length intact, and a dst with enough capacity is reused, not replaced.
func TestGetIntoSemantics(t *testing.T) {
	s := openTest(t)
	defer s.Close()
	se := s.NewSession(simclock.New(0)).(*Session)
	if err := se.Put([]byte("gik"), []byte("value")); err != nil {
		t.Fatal(err)
	}

	// Append preserves the prefix.
	dst := []byte("prefix:")
	out, ok, err := se.GetInto([]byte("gik"), dst)
	if err != nil || !ok || string(out) != "prefix:value" {
		t.Fatalf("GetInto with prefix = %q,%v,%v", out, ok, err)
	}

	// Miss returns dst as passed.
	dst = []byte("keepme")
	out, ok, err = se.GetInto([]byte("absent"), dst)
	if err != nil || ok {
		t.Fatalf("GetInto(miss) = %q,%v,%v", out, ok, err)
	}
	if string(out) != "keepme" {
		t.Fatalf("miss mutated dst: %q", out)
	}

	// Sufficient capacity means no reallocation: the result aliases dst.
	dst = make([]byte, 0, 64)
	out, ok, err = se.GetInto([]byte("gik"), dst)
	if err != nil || !ok || string(out) != "value" {
		t.Fatalf("GetInto = %q,%v,%v", out, ok, err)
	}
	if &out[0] != &dst[:1][0] {
		t.Fatal("GetInto reallocated despite sufficient dst capacity")
	}

	// nil dst behaves like Get.
	out, ok, err = se.GetInto([]byte("gik"), nil)
	if err != nil || !ok || string(out) != "value" {
		t.Fatalf("GetInto(nil dst) = %q,%v,%v", out, ok, err)
	}
}

// TestPutBatchEquivalence checks that a PutBatch-driven workload converges to
// exactly the state the same ops produce sequentially — including same-key
// ordering within a batch (last write in batch order wins) — on both a fresh
// read and after crash+recovery.
func TestPutBatchEquivalence(t *testing.T) {
	mkKV := func(n int) (keys, vals [][]byte) {
		for i := 0; i < n; i++ {
			// Key space smaller than the batch count forces same-key
			// collisions inside batches.
			keys = append(keys, []byte(fmt.Sprintf("pbk-%02d", i%40)))
			vals = append(vals, []byte(fmt.Sprintf("pbv-%04d", i)))
		}
		return
	}

	seq := openTest(t)
	defer seq.Close()
	sseq := seq.NewSession(simclock.New(0))
	keys, vals := mkKV(200)
	for i := range keys {
		if err := sseq.Put(keys[i], vals[i]); err != nil {
			t.Fatal(err)
		}
	}

	bat := openTest(t)
	defer bat.Close()
	sbat := bat.NewSession(simclock.New(0)).(*Session)
	for off := 0; off < len(keys); off += 16 {
		end := min(off+16, len(keys))
		if err := sbat.PutBatch(keys[off:end], vals[off:end]); err != nil {
			t.Fatal(err)
		}
	}

	for i := 0; i < 40; i++ {
		k := []byte(fmt.Sprintf("pbk-%02d", i))
		want, wok, _ := sseq.Get(k)
		got, gok, err := sbat.Get(k)
		if err != nil || gok != wok || !bytes.Equal(got, want) {
			t.Fatalf("key %q: batched=%q,%v seq=%q,%v err=%v", k, got, gok, want, wok, err)
		}
	}

	// The batch must survive crash+recovery like sequential writes do.
	if err := sbat.Flush(); err != nil {
		t.Fatal(err)
	}
	bat.Crash()
	if err := bat.Recover(simclock.New(0)); err != nil {
		t.Fatal(err)
	}
	sr := bat.NewSession(simclock.New(0))
	for i := 0; i < 40; i++ {
		k := []byte(fmt.Sprintf("pbk-%02d", i))
		want, wok, _ := sseq.Get(k)
		got, gok, err := sr.Get(k)
		if err != nil || gok != wok || !bytes.Equal(got, want) {
			t.Fatalf("post-recovery key %q: batched=%q,%v seq=%q,%v err=%v", k, got, gok, want, wok, err)
		}
	}
}

// TestPutBatchValidation covers the error contract: mismatched slice lengths
// fail up front (nothing applied), and an empty batch is a no-op.
func TestPutBatchValidation(t *testing.T) {
	s := openTest(t)
	defer s.Close()
	se := s.NewSession(simclock.New(0)).(*Session)
	if err := se.PutBatch([][]byte{[]byte("a")}, nil); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, ok, _ := se.Get([]byte("a")); ok {
		t.Fatal("failed batch applied a write")
	}
	if err := se.PutBatch(nil, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}
