package core

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"chameleondb/internal/simclock"
)

// Wall-clock microbenchmarks for the lock-free read path. The bench harness's
// experiments measure virtual time on the simulated device; these measure
// real time on real goroutines, which is the only way lock contention shows
// up. BenchmarkMixedParallel at -cpu 8 is the acceptance measurement for the
// read-path work: against the pre-change (shard-mutex) tree it must show at
// least 2x the get throughput (see BENCH_readpath.json for the recorded
// before/after numbers).

func benchStore(b *testing.B, keys int) *Store {
	b.Helper()
	cfg := TestConfig()
	cfg.Shards = 16
	cfg.MemTableSlots = 256
	cfg.ArenaBytes = 256 << 20
	cfg.LogBytes = 128 << 20
	s, err := Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	se := s.NewSession(simclock.New(0)).(*Session)
	for i := 0; i < keys; i++ {
		if err := se.Put(stressKey(i), stressValue(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := se.Release(); err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkGet(b *testing.B) {
	const keys = 4096
	s := benchStore(b, keys)
	se := s.NewSession(simclock.New(0)).(*Session)
	defer se.Release()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := se.Get(stressKey(rng.Intn(keys))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPut(b *testing.B) {
	const keys = 4096
	s := benchStore(b, keys)
	se := s.NewSession(simclock.New(0)).(*Session)
	defer se.Release()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := se.Put(stressKey(rng.Intn(keys)), stressValue(rng.Intn(keys))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetParallel scales pure reads across GOMAXPROCS goroutines, each
// with its own session — run with -cpu 1,2,4,8 to reproduce the readscale
// curve inside the Go bench harness.
func BenchmarkGetParallel(b *testing.B) {
	const keys = 4096
	s := benchStore(b, keys)
	var seed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		se := s.NewSession(simclock.New(0)).(*Session)
		defer se.Release()
		rng := rand.New(rand.NewSource(seed.Add(1)))
		for pb.Next() {
			if _, _, err := se.Get(stressKey(rng.Intn(keys))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMixedParallel is a 7:1 get:put mix across parallel sessions — the
// shape where the old shard mutex hurt most: a single writer stalled every
// reader on the same shard.
func BenchmarkMixedParallel(b *testing.B) {
	const keys = 4096
	s := benchStore(b, keys)
	var seed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		se := s.NewSession(simclock.New(0)).(*Session)
		defer se.Release()
		rng := rand.New(rand.NewSource(seed.Add(1)))
		for pb.Next() {
			i := rng.Intn(keys)
			if rng.Intn(8) == 0 {
				if err := se.Put(stressKey(i), stressValue(i)); err != nil {
					b.Fatal(err)
				}
			} else if _, _, err := se.Get(stressKey(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
