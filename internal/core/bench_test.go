package core

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"chameleondb/internal/simclock"
)

// Wall-clock microbenchmarks for the lock-free read path. The bench harness's
// experiments measure virtual time on the simulated device; these measure
// real time on real goroutines, which is the only way lock contention shows
// up. BenchmarkMixedParallel at -cpu 8 is the acceptance measurement for the
// read-path work: against the pre-change (shard-mutex) tree it must show at
// least 2x the get throughput (see BENCH_readpath.json for the recorded
// before/after numbers).

func benchStore(b *testing.B, keys int) *Store {
	return benchStoreWorkers(b, keys, 0)
}

// benchStoreWorkers builds the bench geometry with an optional maintenance
// pool; workers=0 is the synchronous store the pre-pipeline benchmarks used.
func benchStoreWorkers(b *testing.B, keys, workers int) *Store {
	b.Helper()
	cfg := TestConfig()
	cfg.Shards = 16
	cfg.MemTableSlots = 256
	cfg.ArenaBytes = 512 << 20
	cfg.LogBytes = 256 << 20
	cfg.MaintenanceWorkers = workers
	s, err := Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	se := s.NewSession(simclock.New(0)).(*Session)
	for i := 0; i < keys; i++ {
		if err := se.Put(stressKey(i), stressValue(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := se.Release(); err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkGet(b *testing.B) {
	const keys = 4096
	s := benchStore(b, keys)
	se := s.NewSession(simclock.New(0)).(*Session)
	defer se.Release()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := se.Get(stressKey(rng.Intn(keys))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPut(b *testing.B) {
	const keys = 4096
	s := benchStore(b, keys)
	se := s.NewSession(simclock.New(0)).(*Session)
	defer se.Release()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := se.Put(stressKey(rng.Intn(keys)), stressValue(rng.Intn(keys))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetParallel scales pure reads across GOMAXPROCS goroutines, each
// with its own session — run with -cpu 1,2,4,8 to reproduce the readscale
// curve inside the Go bench harness.
func BenchmarkGetParallel(b *testing.B) {
	const keys = 4096
	s := benchStore(b, keys)
	var seed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		se := s.NewSession(simclock.New(0)).(*Session)
		defer se.Release()
		rng := rand.New(rand.NewSource(seed.Add(1)))
		for pb.Next() {
			if _, _, err := se.Get(stressKey(rng.Intn(keys))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// putModes are the write-path configurations the parallel put benchmarks
// compare: maintenance inline under the shard lock (sync) vs the background
// pool (async). The async/sync ratio is the wall-clock win of the pipeline.
var putModes = []struct {
	name    string
	workers func() int
}{
	{"sync", func() int { return 0 }},
	{"async", func() int { return DefaultMaintenanceWorkers(16) }},
}

// BenchmarkPutParallel scales update puts across parallel sessions under
// steady compaction debt: the keyspace is preloaded so every MemTable cycle
// flushes into populated levels, and updates keep the cycles coming. In sync
// mode each flush/merge runs inline under the shard lock, stalling every
// other writer on that shard for its wall-clock duration; in async mode the
// put freezes the table and moves on.
func BenchmarkPutParallel(b *testing.B) {
	const keys = 16384
	for _, mode := range putModes {
		b.Run(mode.name, func(b *testing.B) {
			s := benchStoreWorkers(b, keys, mode.workers())
			defer s.Close()
			var seed atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				se := s.NewSession(simclock.New(0)).(*Session)
				defer se.Release()
				rng := rand.New(rand.NewSource(seed.Add(1)))
				for pb.Next() {
					i := rng.Intn(keys)
					if err := se.Put(stressKey(i), stressValue(i)); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			if w := mode.workers(); w > 0 {
				if n := s.Stats().InlineMaintenance; n != 0 {
					b.Fatalf("async mode ran %d maintenance jobs inline", n)
				}
			}
		})
	}
}

// BenchmarkMixedWriteHeavy is a 1:1 get:put mix — the mixed-workload shape
// whose put p99 the maintenance pipeline targets: reads are lock-free either
// way, so any sync/async gap comes from writers no longer queueing behind a
// neighbour's inline compaction.
func BenchmarkMixedWriteHeavy(b *testing.B) {
	const keys = 16384
	for _, mode := range putModes {
		b.Run(mode.name, func(b *testing.B) {
			s := benchStoreWorkers(b, keys, mode.workers())
			defer s.Close()
			var seed atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				se := s.NewSession(simclock.New(0)).(*Session)
				defer se.Release()
				rng := rand.New(rand.NewSource(seed.Add(1)))
				for pb.Next() {
					i := rng.Intn(keys)
					if rng.Intn(2) == 0 {
						if err := se.Put(stressKey(i), stressValue(i)); err != nil {
							b.Fatal(err)
						}
					} else if _, _, err := se.Get(stressKey(i)); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkMixedParallel is a 7:1 get:put mix across parallel sessions — the
// shape where the old shard mutex hurt most: a single writer stalled every
// reader on the same shard.
func BenchmarkMixedParallel(b *testing.B) {
	const keys = 4096
	s := benchStore(b, keys)
	var seed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		se := s.NewSession(simclock.New(0)).(*Session)
		defer se.Release()
		rng := rand.New(rand.NewSource(seed.Add(1)))
		for pb.Next() {
			i := rng.Intn(keys)
			if rng.Intn(8) == 0 {
				if err := se.Put(stressKey(i), stressValue(i)); err != nil {
					b.Fatal(err)
				}
			} else if _, _, err := se.Get(stressKey(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
