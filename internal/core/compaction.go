package core

import (
	"fmt"

	"chameleondb/internal/device"
	"chameleondb/internal/hashtable"
	"chameleondb/internal/obs"
	"chameleondb/internal/simclock"
)

// flush persists the MemTable as a new immutable L0 table, mirrors its
// entries into the ABI (Figure 7), advances the recovery watermark, and runs
// whatever compaction the level occupancy demands. Called with sh.mu held.
func (sh *shard) flush(c *simclock.Clock) error {
	if sh.mem.Len() == 0 {
		return nil
	}
	flushed := int64(sh.mem.Len())
	// If the ABI cannot absorb this MemTable, clear it with a last-level
	// compaction first (geometry normally prevents this; dynamic last-level
	// growth keeps it a safety valve, not the steady state).
	if sh.abi != nil && float64(sh.abi.Len()+sh.mem.Len()) >= sh.store.cfg.ABIFullFraction*float64(sh.abi.Cap()) {
		if err := sh.lastLevelCompaction(c); err != nil {
			return err
		}
	}
	// The log must be at least as durable as the index that points into it:
	// sync every worker's batch before persisting the table.
	sh.store.log.SyncAll(c)
	table, err := hashtable.BuildPmemTable(c, sh.store.arena, sh.store.cfg.MemTableSlots, sh.mem.Iterate)
	if err != nil {
		return err
	}
	if sh.abi != nil {
		sh.mem.Iterate(func(s hashtable.Slot) bool {
			probes, _ := sh.abi.Insert(s.Hash, s.Ref)
			c.Advance(device.DRAMProbeCost(probes))
			return true
		})
	}
	sh.levels[0] = append(sh.levels[0], sh.wrapUpper(c, table))
	if sh.memMaxLSN > sh.persistedMaxLSN {
		sh.persistedMaxLSN = sh.memMaxLSN
	}
	// Swap in a fresh MemTable rather than resetting in place: a reader
	// holding the previous view keeps a frozen MemTable that still contains
	// the flushed entries, which its view's level list does not yet cover.
	sh.rotateMem()
	sh.publishView()
	sh.store.stats.Flushes.Add(1)
	sh.store.trace.Emit(c.Now(), obs.EvFlush, sh.id, flushed)
	sh.persistManifest(c)

	if len(sh.levels[0]) >= sh.store.cfg.Ratio {
		if sh.store.cfg.CompactionMode == LevelByLevel {
			return sh.compactLevelByLevel(c)
		}
		return sh.compactDirect(c)
	}
	return nil
}

// flushFrozen is the background-job variant of flush: it persists the oldest
// frozen MemTable as an L0 table and mirrors it into the ABI, leaving the
// live MemTable untouched (the put path already rotated it). A full L0 is
// not cascaded inline — a separate compaction job is enqueued, so the shard
// lock is released between the flush and the merge and puts can slip in.
// Called with sh.mu held by a maintenance worker.
func (sh *shard) flushFrozen(c *simclock.Clock) error {
	fm := sh.frozen[0]
	if fm.mem.Len() == 0 {
		sh.frozen = sh.frozen[1:]
		sh.publishView()
		return nil
	}
	flushed := int64(fm.mem.Len())
	if sh.abi != nil && float64(sh.abi.Len()+fm.mem.Len()) >= sh.store.cfg.ABIFullFraction*float64(sh.abi.Cap()) {
		if err := sh.lastLevelCompaction(c); err != nil {
			return err
		}
	}
	sh.store.log.SyncAll(c)
	table, err := hashtable.BuildPmemTable(c, sh.store.arena, sh.store.cfg.MemTableSlots, fm.mem.Iterate)
	if err != nil {
		return err
	}
	if sh.abi != nil {
		// Mirror into the ABI. Version order holds because frozen tables are
		// flushed oldest-first: everything newer than fm still sits in the
		// MemTable or a younger frozen table, both probed before the ABI.
		fm.mem.Iterate(func(s hashtable.Slot) bool {
			probes, _ := sh.abi.Insert(s.Hash, s.Ref)
			c.Advance(device.DRAMProbeCost(probes))
			return true
		})
	}
	sh.levels[0] = append(sh.levels[0], sh.wrapUpper(c, table))
	if fm.maxLSN > sh.persistedMaxLSN {
		sh.persistedMaxLSN = fm.maxLSN
	}
	// Pop-front keeps published views intact: a view's frozen slice is capped
	// at its length, and surviving elements are never overwritten in place.
	sh.frozen = sh.frozen[1:]
	sh.publishView()
	sh.store.stats.Flushes.Add(1)
	sh.store.trace.Emit(c.Now(), obs.EvFlush, sh.id, flushed)
	sh.persistManifest(c)
	if len(sh.levels[0]) >= sh.store.cfg.Ratio {
		sh.store.maint.enqueue(sh.id, maintCompact)
	}
	return nil
}

// spillFrozen is the background-job variant of spillToABI: the oldest frozen
// MemTable moves into the ABI without persisting an L0 table (Write-Intensive
// / Get-Protect operation), leaving the storage log as its entries' only
// persistent copy. Called with sh.mu held by a maintenance worker.
func (sh *shard) spillFrozen(c *simclock.Clock) error {
	if sh.abi == nil {
		return sh.flushFrozen(c)
	}
	fm := sh.frozen[0]
	if fm.mem.Len() == 0 {
		sh.frozen = sh.frozen[1:]
		sh.publishView()
		return nil
	}
	if float64(sh.abi.Len()+fm.mem.Len()) >= sh.store.cfg.ABIFullFraction*float64(sh.abi.Cap()) {
		if sh.store.gpmActive.Load() && len(sh.dumped) < sh.store.cfg.GetProtect.MaxDumps {
			if err := sh.dumpABI(c); err != nil {
				return err
			}
		} else {
			if err := sh.lastLevelCompaction(c); err != nil {
				return err
			}
		}
	}
	if sh.spillMinLSN == 0 || (fm.minLSN != 0 && fm.minLSN < sh.spillMinLSN) {
		sh.spillMinLSN = fm.minLSN
	}
	if fm.maxLSN > sh.spillMaxLSN {
		sh.spillMaxLSN = fm.maxLSN
	}
	spilled := int64(fm.mem.Len())
	fm.mem.Iterate(func(s hashtable.Slot) bool {
		probes, _ := sh.abi.Insert(s.Hash, s.Ref)
		c.Advance(device.DRAMProbeCost(probes))
		return true
	})
	sh.frozen = sh.frozen[1:]
	sh.publishView()
	sh.store.stats.Spills.Add(1)
	sh.store.trace.Emit(c.Now(), obs.EvSpill, sh.id, spilled)
	return nil
}

// spillToABI is the Write-Intensive / Get-Protect path (Sections 2.3, 2.4):
// the full MemTable moves into the ABI without persisting an L0 table, so
// the only persistent copy of these entries is the storage log — the
// recovery watermark stays behind them. Called with sh.mu held.
func (sh *shard) spillToABI(c *simclock.Clock) error {
	if sh.abi == nil {
		// ABI disabled: Write-Intensive Mode is meaningless, flush normally.
		return sh.flush(c)
	}
	if float64(sh.abi.Len()+sh.mem.Len()) >= sh.store.cfg.ABIFullFraction*float64(sh.abi.Cap()) {
		if sh.store.gpmActive.Load() && len(sh.dumped) < sh.store.cfg.GetProtect.MaxDumps {
			if err := sh.dumpABI(c); err != nil {
				return err
			}
		} else {
			// WIM, or GPM with its dump budget exhausted: the postponed
			// last-level compaction can wait no longer (Section 2.4).
			if err := sh.lastLevelCompaction(c); err != nil {
				return err
			}
		}
	}
	if sh.spillMinLSN == 0 || (sh.memMinLSN != 0 && sh.memMinLSN < sh.spillMinLSN) {
		sh.spillMinLSN = sh.memMinLSN
	}
	if sh.memMaxLSN > sh.spillMaxLSN {
		sh.spillMaxLSN = sh.memMaxLSN
	}
	spilled := int64(sh.mem.Len())
	// The ABI gains the spilled entries in place — old-view readers probe it
	// after their (still complete) frozen MemTable, so the duplicates are
	// harmless — then the MemTable is swapped fresh and the view republished.
	sh.mem.Iterate(func(s hashtable.Slot) bool {
		probes, _ := sh.abi.Insert(s.Hash, s.Ref)
		c.Advance(device.DRAMProbeCost(probes))
		return true
	})
	sh.rotateMem()
	sh.publishView()
	sh.store.stats.Spills.Add(1)
	sh.store.trace.Emit(c.Now(), obs.EvSpill, sh.id, spilled)
	return nil
}

// dumpABI writes the ABI verbatim to the Pmem as a new dumped table without
// merging it into the last level (Figure 9), then clears the ABI. Called
// with sh.mu held, only during Get-Protect Mode.
func (sh *shard) dumpABI(c *simclock.Clock) error {
	if sh.abi.Len() == 0 {
		return nil
	}
	sh.store.log.SyncAll(c)
	capSlots := needCap(sh.abi.Len(), 0.85, 8)
	table, err := hashtable.BuildPmemTable(c, sh.store.arena, capSlots, sh.abi.Iterate)
	if err != nil {
		return err
	}
	sh.dumped = append(sh.dumped, &ptable{t: table})
	// Fresh ABI, not Reset: an old-view reader has no dumped table covering
	// these entries, so it must keep seeing them in its frozen ABI.
	sh.rotateABI()
	sh.publishView()
	if sh.spillMaxLSN > sh.persistedMaxLSN {
		sh.persistedMaxLSN = sh.spillMaxLSN
	}
	sh.spillMinLSN = 0
	sh.spillMaxLSN = 0
	sh.store.stats.Dumps.Add(1)
	sh.store.trace.Emit(c.Now(), obs.EvDump, sh.id, int64(table.Len()))
	sh.persistManifest(c)
	return nil
}

// compactDirect implements Direct Compaction (Figure 5b): one merge covering
// L0 and every full upper level, landing in the first level with room — or
// the last level when every upper level is at capacity. Called with sh.mu
// held when L0 holds Ratio tables.
func (sh *shard) compactDirect(c *simclock.Clock) error {
	cfg := sh.store.cfg
	dst := 1
	for dst <= cfg.Levels-2 && len(sh.levels[dst]) >= cfg.Ratio-1 {
		dst++
	}
	if dst > cfg.Levels-2 {
		return sh.lastLevelCompaction(c)
	}
	// Merge levels[0 .. dst-1] into one table at level dst. Geometry
	// guarantees the contents fit: r*S0 + sum (r-1)*Si == S_dst. Sources are
	// collected newest-first (upper levels hold newer data, and within a
	// level later tables are newer) so the merge keeps the newest version.
	var old []*ptable
	var sources []*hashtable.PmemTable
	for lvl := 0; lvl < dst; lvl++ {
		tables := sh.levels[lvl]
		for i := len(tables) - 1; i >= 0; i-- {
			old = append(old, tables[i])
			sources = append(sources, tables[i].t)
		}
	}
	merged, err := sh.mergeTables(c, cfg.MemTableSlots*pow(cfg.Ratio, dst), sources, true)
	if err != nil {
		return err
	}
	sh.levels[dst] = append(sh.levels[dst], sh.wrapUpper(c, merged))
	for lvl := 0; lvl < dst; lvl++ {
		sh.levels[lvl] = nil
	}
	sh.publishView()
	sh.store.stats.UpperCompactions.Add(1)
	sh.store.trace.Emit(c.Now(), obs.EvUpperCompact, sh.id, int64(merged.Len()))
	sh.persistManifest(c)
	sh.store.em.retire(&sh.store.stats, old)
	return nil
}

// compactLevelByLevel implements the classic cascade (Figure 5a): merge L0's
// r tables into one L1 table; if that fills L1, merge L1 into L2; and so on,
// each step reading and rewriting its level (the overhead Direct Compaction
// avoids). Called with sh.mu held when L0 holds Ratio tables.
func (sh *shard) compactLevelByLevel(c *simclock.Clock) error {
	cfg := sh.store.cfg
	for lvl := 0; lvl <= cfg.Levels-2; lvl++ {
		full := cfg.Ratio
		if len(sh.levels[lvl]) < full {
			return nil
		}
		if lvl == cfg.Levels-2 {
			return sh.lastLevelCompaction(c)
		}
		tables := sh.levels[lvl]
		sources := make([]*hashtable.PmemTable, 0, len(tables))
		for i := len(tables) - 1; i >= 0; i-- {
			sources = append(sources, tables[i].t)
		}
		merged, err := sh.mergeTables(c, cfg.MemTableSlots*pow(cfg.Ratio, lvl+1), sources, true)
		if err != nil {
			return err
		}
		sh.levels[lvl+1] = append(sh.levels[lvl+1], sh.wrapUpper(c, merged))
		sh.levels[lvl] = nil
		sh.publishView()
		sh.store.stats.UpperCompactions.Add(1)
		sh.store.trace.Emit(c.Now(), obs.EvUpperCompact, sh.id, int64(merged.Len()))
		sh.persistManifest(c)
		sh.store.em.retire(&sh.store.stats, tables)
	}
	return nil
}

// mergeTables merges sources (newest first) into one new persisted table of
// at least minCap slots, keeping tombstones (keepTombstones) or dropping
// them (last-level merges). Pmem source tables are charged as sequential
// scans.
func (sh *shard) mergeTables(c *simclock.Clock, minCap int, sources []*hashtable.PmemTable, keepTombstones bool) (*hashtable.PmemTable, error) {
	entries := 0
	for _, t := range sources {
		t.ChargeScan(c)
		entries += t.Len()
	}
	capSlots := minCap
	if need := needCap(entries, 0.99, 8); need > capSlots {
		capSlots = need
	}
	return hashtable.BuildPmemTable(c, sh.store.arena, capSlots, func(yield func(hashtable.Slot) bool) {
		// Stage the newest-wins merge in DRAM, then emit.
		winners := hashtable.NewMem(needCap(entries, 0.85, 16))
		for _, t := range sources {
			t.Iterate(func(s hashtable.Slot) bool {
				c.Advance(device.CostCompactionPerSlot)
				winners.InsertIfAbsent(s.Hash, s.Ref)
				return true
			})
		}
		winners.Iterate(func(s hashtable.Slot) bool {
			if !keepTombstones && s.Tombstone() {
				return true
			}
			return yield(s)
		})
	})
}

// lastLevelCompaction merges everything above the last level into a new last
// level table. Per Section 2.2/Figure 8 the merge reads the upper-level
// entries from the ABI in DRAM instead of re-reading the persisted upper
// tables; dumped ABI tables and the old last level are read from Pmem. All
// upper levels, dumps, and the ABI are cleared afterwards, and the recovery
// watermark advances to the log frontier. Called with sh.mu held.
func (sh *shard) lastLevelCompaction(c *simclock.Clock) error {
	sh.store.log.SyncAll(c)
	cfg := sh.store.cfg
	bound := sh.mergedEntryBound()
	winners := hashtable.NewMem(needCap(bound, 0.80, 16))

	if sh.abi != nil {
		// Upper-level entries come from DRAM (the ABI): no Pmem reads.
		sh.abi.Iterate(func(s hashtable.Slot) bool {
			c.Advance(device.CostCompactionPerSlot)
			winners.InsertIfAbsent(s.Hash, s.Ref)
			return true
		})
	} else {
		// Ablation path: read the upper tables from Pmem, newest first.
		for lvl := 0; lvl < len(sh.levels); lvl++ {
			tables := sh.levels[lvl]
			for i := len(tables) - 1; i >= 0; i-- {
				tables[i].t.ChargeScan(c)
				tables[i].t.Iterate(func(s hashtable.Slot) bool {
					c.Advance(device.CostCompactionPerSlot)
					winners.InsertIfAbsent(s.Hash, s.Ref)
					return true
				})
			}
		}
	}
	for i := len(sh.dumped) - 1; i >= 0; i-- {
		sh.dumped[i].t.ChargeScan(c)
		sh.dumped[i].t.Iterate(func(s hashtable.Slot) bool {
			c.Advance(device.CostCompactionPerSlot)
			winners.InsertIfAbsent(s.Hash, s.Ref)
			return true
		})
	}
	if sh.last != nil {
		sh.last.t.ChargeScan(c)
		sh.last.t.Iterate(func(s hashtable.Slot) bool {
			c.Advance(device.CostCompactionPerSlot)
			winners.InsertIfAbsent(s.Hash, s.Ref)
			return true
		})
	}

	live := 0
	winners.Iterate(func(s hashtable.Slot) bool {
		if !s.Tombstone() {
			live++
		}
		return true
	})
	capSlots := cfg.lastLevelSlots()
	if need := needCap(live, 0.85, 8); need > capSlots {
		// The designed capacity holds r^(l-1) MemTables; beyond that the
		// last level grows by doubling (see DESIGN.md section 3).
		capSlots = need
	}
	newLast, err := hashtable.BuildPmemTable(c, sh.store.arena, capSlots, func(yield func(hashtable.Slot) bool) {
		winners.Iterate(func(s hashtable.Slot) bool {
			if s.Tombstone() {
				return true // the last level is the floor: drop tombstones
			}
			return yield(s)
		})
	})
	if err != nil {
		return err
	}

	released := make([]*ptable, 0, 16)
	for lvl := range sh.levels {
		released = append(released, sh.levels[lvl]...)
		sh.levels[lvl] = nil
	}
	released = append(released, sh.dumped...)
	sh.dumped = nil
	if sh.last != nil {
		released = append(released, sh.last)
	}
	sh.last = sh.wrapLast(c, newLast)
	// Fresh ABI for the same reason as dumpABI: old views pair their frozen
	// ABI with the old last level, new views pair an empty ABI with the
	// merged one.
	sh.rotateABI()
	sh.publishView()
	if sh.spillMaxLSN > sh.persistedMaxLSN {
		sh.persistedMaxLSN = sh.spillMaxLSN
	}
	sh.spillMinLSN = 0
	sh.spillMaxLSN = 0
	sh.store.stats.LastCompactions.Add(1)
	sh.store.trace.Emit(c.Now(), obs.EvLastCompact, sh.id, int64(live))
	sh.persistManifest(c)
	sh.store.em.retire(&sh.store.stats, released)
	return nil
}

// needCap returns the smallest power-of-two capacity >= minCap that keeps n
// entries at or below load factor f.
func needCap(n int, f float64, minCap int) int {
	c := minCap
	for float64(n) > f*float64(c) {
		c <<= 1
		if c <= 0 {
			panic(fmt.Sprintf("core: capacity overflow for %d entries", n))
		}
	}
	return c
}

func pow(base, exp int) int {
	r := 1
	for i := 0; i < exp; i++ {
		r *= base
	}
	return r
}
