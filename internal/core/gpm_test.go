package core

import (
	"testing"

	"chameleondb/internal/simclock"
)

func openGPM(t *testing.T, threshold int64) *Store {
	t.Helper()
	cfg := TestConfig()
	cfg.GetProtect = GPMConfig{
		Enabled:          true,
		EnterThresholdNs: threshold,
		ExitThresholdNs:  threshold,
		MaxDumps:         1,
		WindowSize:       256,
		SampleEvery:      1,
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGPMEngagesOnSlowGets(t *testing.T) {
	// An absurdly low threshold forces GPM on as soon as gets are sampled.
	s := openGPM(t, 1)
	se := s.NewSession(simclock.New(0))
	for i := 0; i < 2000; i++ {
		se.Put(key(i), val(i))
	}
	for i := 0; i < 2000; i++ {
		se.Get(key(i))
	}
	if !s.GPMActive() {
		t.Fatal("GPM did not engage despite threshold of 1 ns")
	}
	if s.Stats().GPMEntries == 0 {
		t.Fatal("GPM entry not counted")
	}
	// Puts during GPM must spill, not flush.
	f0 := s.Stats().Flushes
	for i := 2000; i < 8000; i++ {
		se.Put(key(i), val(i))
	}
	st := s.Stats()
	if st.Flushes != f0 {
		t.Fatalf("flushes happened during GPM: %d -> %d", f0, st.Flushes)
	}
	if st.Spills == 0 {
		t.Fatal("no ABI spills during GPM")
	}
	// Everything remains readable.
	for i := 0; i < 8000; i += 37 {
		got, ok, _ := se.Get(key(i))
		if !ok || string(got) != string(val(i)) {
			t.Fatalf("key %d lost during GPM", i)
		}
	}
}

func TestGPMDumpsABIWithoutMerging(t *testing.T) {
	s := openGPM(t, 1)
	se := s.NewSession(simclock.New(0))
	for i := 0; i < 500; i++ {
		se.Put(key(i), val(i))
	}
	for i := 0; i < 500; i++ {
		se.Get(key(i))
	}
	if !s.GPMActive() {
		t.Fatal("GPM not active")
	}
	last0 := s.Stats().LastCompactions
	// Push enough data through GPM to fill the ABI at least once.
	for i := 500; i < 25000; i++ {
		se.Put(key(i), val(i))
	}
	st := s.Stats()
	if st.Dumps == 0 {
		t.Fatal("ABI never dumped during sustained GPM puts")
	}
	// With MaxDumps=1, once the dump budget is gone a forced last-level
	// compaction must eventually clear the ABI anyway.
	if st.LastCompactions == last0 {
		t.Fatal("dump budget exhausted but no forced last-level compaction")
	}
	for i := 0; i < 25000; i += 111 {
		got, ok, _ := se.Get(key(i))
		if !ok || string(got) != string(val(i)) {
			t.Fatalf("key %d lost across GPM dumps", i)
		}
	}
	if s.Stats().GetDumped == 0 {
		t.Fatal("no gets served from dumped tables")
	}
}

func TestGPMExitsAndMergesDumps(t *testing.T) {
	s := openGPM(t, 1)
	se := s.NewSession(simclock.New(0))
	for i := 0; i < 500; i++ {
		se.Put(key(i), val(i))
	}
	for i := 0; i < 500; i++ {
		se.Get(key(i))
	}
	for i := 500; i < 25000; i++ {
		se.Put(key(i), val(i))
	}
	if s.Stats().Dumps == 0 {
		t.Skip("workload did not produce a dump; geometry changed?")
	}
	// Raise the exit threshold so the next sampled gets cancel GPM.
	s.cfg.GetProtect.EnterThresholdNs = 1 << 60
	s.cfg.GetProtect.ExitThresholdNs = 1 << 60
	for i := 0; i < 2000; i++ {
		se.Get(key(i))
	}
	if s.GPMActive() {
		t.Fatal("GPM did not exit after latency dropped below threshold")
	}
	if s.Stats().GPMExits == 0 {
		t.Fatal("GPM exit not counted")
	}
	// Subsequent puts trigger the postponed merges; dumps drain.
	for i := 25000; i < 30000; i++ {
		se.Put(key(i), val(i))
	}
	dumpsLeft := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		dumpsLeft += len(sh.dumped)
		sh.mu.Unlock()
	}
	if dumpsLeft != 0 {
		t.Fatalf("%d dumped tables never merged back", dumpsLeft)
	}
	for i := 0; i < 30000; i += 173 {
		got, ok, _ := se.Get(key(i))
		if !ok || string(got) != string(val(i)) {
			t.Fatalf("key %d lost after GPM drain", i)
		}
	}
}

func TestGPMCrashRecovery(t *testing.T) {
	// Crash while dumps exist and spills are unpersisted: recovery must
	// restore every acknowledged-durable key.
	s := openGPM(t, 1)
	se := s.NewSession(simclock.New(0))
	for i := 0; i < 500; i++ {
		se.Put(key(i), val(i))
	}
	for i := 0; i < 500; i++ {
		se.Get(key(i))
	}
	for i := 500; i < 20000; i++ {
		se.Put(key(i), val(i))
	}
	se.Flush()
	s.Crash()
	if err := s.Recover(simclock.New(0)); err != nil {
		t.Fatal(err)
	}
	se2 := s.NewSession(simclock.New(0))
	for i := 0; i < 20000; i += 97 {
		got, ok, _ := se2.Get(key(i))
		if !ok || string(got) != string(val(i)) {
			t.Fatalf("key %d lost across GPM crash", i)
		}
	}
}
