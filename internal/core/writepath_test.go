package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"chameleondb/internal/simclock"
	"chameleondb/internal/xhash"
)

// The write path with MaintenanceWorkers > 0 is asynchronous: puts freeze
// full MemTables and a worker pool runs the flushes and compactions. These
// tests drive it with real goroutines (run with -race) and pin the
// acceptance criteria: no maintenance ever runs inline on a put, backpressure
// engages slowdown before stall, and Flush is a barrier over the session's
// dirty shards.

// asyncTestConfig is TestConfig plus a small maintenance pool.
func asyncTestConfig(workers int) Config {
	cfg := TestConfig()
	cfg.MaintenanceWorkers = workers
	return cfg
}

// shardKeys generates n distinct keys that all route to the given shard.
func shardKeys(s *Store, shardID, n int) [][]byte {
	keys := make([][]byte, 0, n)
	for i := 0; len(keys) < n; i++ {
		k := []byte(fmt.Sprintf("wp-%d-%06d", shardID, i))
		if s.shardFor(xhash.Sum64(k)) == s.shards[shardID] {
			keys = append(keys, k)
		}
	}
	return keys
}

// TestMaintenanceStress is the pipeline's -race proof: concurrent
// Put/Get/Delete/Flush workers with the pool enabled, then quiesce, crash
// mid-queue, recover, verify, and repeat. Throughout, the InlineMaintenance
// tripwire must stay zero — with a live pool, Session.Put never executes a
// flush or merge inline — while the job counters prove the pool actually did
// the work the puts generated.
func TestMaintenanceStress(t *testing.T) {
	cfg := asyncTestConfig(2)
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const (
		workers   = 6
		keySpace  = 2048
		opsPerGor = 3000
		rounds    = 3
	)
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		errs := make(chan error, workers*2)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				se := s.NewSession(simclock.New(0)).(*Session)
				defer func() {
					if err := se.Release(); err != nil {
						errs <- err
					}
				}()
				rng := rand.New(rand.NewSource(int64(round*workers + w)))
				for op := 0; op < opsPerGor; op++ {
					i := rng.Intn(keySpace)
					switch {
					case w < workers/3: // readers
						v, ok, err := se.Get(stressKey(i))
						if err != nil {
							errs <- fmt.Errorf("get: %w", err)
							return
						}
						if ok && !bytes.Equal(v, stressValue(i)) {
							errs <- fmt.Errorf("key %d: got %q, want %q", i, v, stressValue(i))
							return
						}
					case rng.Intn(16) == 0: // occasional delete
						if err := se.Delete(stressKey(i)); err != nil {
							errs <- fmt.Errorf("delete: %w", err)
							return
						}
					case rng.Intn(200) == 0: // occasional durability barrier
						if err := se.Flush(); err != nil {
							errs <- fmt.Errorf("flush: %w", err)
							return
						}
					default:
						if err := se.Put(stressKey(i), stressValue(i)); err != nil {
							errs <- fmt.Errorf("put: %w", err)
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}

		// Crash with jobs potentially still queued and in flight: the pool
		// must quiesce, the frozen tables die with the power, and recovery
		// replays their entries from the log.
		s.Crash()
		rc := simclock.New(0)
		if err := s.Recover(rc); err != nil {
			t.Fatalf("round %d: recover: %v", round, err)
		}
		if err := s.VerifyIntegrity(rc); err != nil {
			t.Fatalf("round %d: verify: %v", round, err)
		}
		se := s.NewSession(simclock.New(rc.Now())).(*Session)
		for i := 0; i < keySpace; i += 97 {
			v, ok, err := se.Get(stressKey(i))
			if err != nil {
				t.Fatalf("round %d: post-recovery get: %v", round, err)
			}
			if ok && !bytes.Equal(v, stressValue(i)) {
				t.Fatalf("round %d: key %d recovered as %q, want %q", round, i, v, stressValue(i))
			}
		}
		if err := se.Release(); err != nil {
			t.Fatal(err)
		}
	}

	st := s.Stats()
	if st.InlineMaintenance != 0 {
		t.Fatalf("put path ran maintenance inline %d times with the pool active", st.InlineMaintenance)
	}
	if st.MemFreezes == 0 {
		t.Fatal("no MemTables were frozen; the async path never engaged")
	}
	if st.MaintJobsFlush+st.MaintJobsSpill == 0 {
		t.Fatal("the pool ran no flush/spill jobs despite freezes")
	}
	if st.Flushes == 0 {
		t.Fatal("no flushes happened at all")
	}
}

// TestBackpressureSlowdownThenStall pins the backpressure ordering: as a
// shard's frozen-table debt grows, puts are first delayed (slowdown) and only
// block (stall) past the higher threshold. The pool's one worker is wedged on
// a mutex the test holds, so debt accumulates deterministically.
func TestBackpressureSlowdownThenStall(t *testing.T) {
	cfg := TestConfig()
	cfg.MemTableSlots = 8
	cfg.MaintenanceWorkers = 1
	cfg.SlowdownFrozenTables = 1
	cfg.StallFrozenTables = 2
	cfg.SlowdownL0Tables = 100 // keep L0 depth out of this test
	cfg.StallL0Tables = 200
	cfg.SlowdownDelayNs = 1
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Wedge the single worker: hold shard 0's mutex and hand the pool a job
	// for it. runMaintJob blocks acquiring the lock, so jobs for every other
	// shard sit queued behind it.
	blocked := s.shards[0]
	blocked.mu.Lock()
	s.maint.enqueue(0, maintFlush)
	waitBusy := time.Now()
	for s.maint.busy.Load() == 0 {
		if time.Since(waitBusy) > 10*time.Second {
			blocked.mu.Unlock()
			t.Fatal("worker never picked up the wedge job")
		}
		time.Sleep(time.Millisecond)
	}

	// Once a put stalls, release the wedge so the pool can drain the debt
	// and the stalled put can proceed.
	release := make(chan struct{})
	go func() {
		defer close(release)
		for s.stats.PutStalls.Load() == 0 {
			time.Sleep(time.Millisecond)
		}
		blocked.mu.Unlock()
	}()

	// Write keys routed to shard 1 until its frozen debt walks through both
	// thresholds. sawSlowdownFirst captures the ordering: a moment where
	// slowdowns had fired but no stall had yet.
	se := s.NewSession(simclock.New(0)).(*Session)
	defer se.Release()
	keys := shardKeys(s, 1, 64)
	sawSlowdownFirst := false
	for _, k := range keys {
		if err := se.Put(k, []byte("v")); err != nil {
			t.Fatalf("put: %v", err)
		}
		if s.stats.PutStalls.Load() == 0 && s.stats.PutSlowdowns.Load() > 0 {
			sawSlowdownFirst = true
		}
	}
	<-release

	if !sawSlowdownFirst {
		t.Fatalf("no slowdown observed before the first stall (slowdowns=%d stalls=%d)",
			s.stats.PutSlowdowns.Load(), s.stats.PutStalls.Load())
	}
	if s.stats.PutStalls.Load() == 0 {
		t.Fatal("debt above StallFrozenTables never stalled a put")
	}
	// The wedge job itself must have been a no-op: shard 0 had nothing frozen.
	if s.stats.MaintJobsSkipped.Load() == 0 {
		t.Fatal("the empty-shard wedge job was not skipped as idempotent")
	}
}

// TestFlushBarrierDrainsDirtyShards pins the durable-ack contract: when Flush
// returns, every maintenance job for the shards this session wrote has
// completed — no frozen MemTable of its writes is still awaiting a flush.
func TestFlushBarrierDrainsDirtyShards(t *testing.T) {
	cfg := asyncTestConfig(2)
	cfg.MemTableSlots = 8 // freeze often
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	se := s.NewSession(simclock.New(0)).(*Session)
	defer se.Release()
	for i := 0; i < 600; i++ {
		if err := se.Put(stressKey(i), stressValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := se.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.stats.MemFreezes.Load() == 0 {
		t.Fatal("workload never froze a MemTable; barrier untested")
	}
	// This session is the only writer, so after its barrier the whole pool
	// must be quiet and no shard may still hold frozen tables.
	snap := s.MaintenanceStats()
	if snap.QueueDepth != 0 || snap.WorkersBusy != 0 {
		t.Fatalf("pool not drained after Flush: depth=%d busy=%d", snap.QueueDepth, snap.WorkersBusy)
	}
	for _, sh := range s.shards {
		if n := len(sh.view.Load().frozen); n != 0 {
			t.Fatalf("shard %d still has %d frozen tables after Flush", sh.id, n)
		}
	}
	// The writes must be durable: crash, recover, and read them back.
	s.Crash()
	rc := simclock.New(0)
	if err := s.Recover(rc); err != nil {
		t.Fatal(err)
	}
	se2 := s.NewSession(simclock.New(rc.Now())).(*Session)
	defer se2.Release()
	for i := 0; i < 600; i += 13 {
		v, ok, err := se2.Get(stressKey(i))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || !bytes.Equal(v, stressValue(i)) {
			t.Fatalf("key %d not durable across crash: ok=%v v=%q", i, ok, v)
		}
	}
}

// TestSyncFallbackNoAsyncMachinery pins the MaintenanceWorkers=0 contract:
// the pool is never built, nothing is frozen, and maintenance runs exactly
// where it always did (inline), so the deterministic virtual-time experiments
// see an unchanged store.
func TestSyncFallbackNoAsyncMachinery(t *testing.T) {
	s, err := Open(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.maint != nil {
		t.Fatal("pool built despite MaintenanceWorkers=0")
	}
	se := s.NewSession(simclock.New(0)).(*Session)
	defer se.Release()
	for i := 0; i < 2000; i++ {
		if err := se.Put(stressKey(i), stressValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.MemFreezes != 0 || st.PutSlowdowns != 0 || st.PutStalls != 0 {
		t.Fatalf("async counters moved on a synchronous store: %+v", st)
	}
	if st.Flushes == 0 {
		t.Fatal("synchronous store never flushed inline")
	}
	snap := s.MaintenanceStats()
	if snap.Workers != 0 || snap.QueueDepth != 0 {
		t.Fatalf("maintenance snapshot non-zero on a synchronous store: %+v", snap)
	}
}

// TestLogGCWithQueuedMaintenance is the regression test for the gc.go
// checkpoint race: CompactLog must drain queued jobs before checkpointing and
// its forced last-level fallback must re-check occupancy under the
// re-acquired lock (skipping when a job already merged the spill) instead of
// blindly compacting. Write-Intensive Mode with a live pool queues spill jobs
// right up to the CompactLog call.
func TestLogGCWithQueuedMaintenance(t *testing.T) {
	cfg := asyncTestConfig(2)
	cfg.MemTableSlots = 8
	cfg.WriteIntensive = true
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	se := s.NewSession(simclock.New(0)).(*Session)
	const keys = 400
	for round := 0; round < 3; round++ {
		for i := 0; i < keys; i++ {
			if err := se.Put(stressKey(i), stressValue(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := se.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := se.Release(); err != nil {
		t.Fatal(err)
	}

	// GC immediately, twice: the first run drains the pool, checkpoints, and
	// may force last-level compactions; the second must be idempotent (the
	// first left every watermark past its target).
	c := simclock.New(0)
	if _, err := s.CompactLog(c, s.Log().SegmentSize()); err != nil {
		t.Fatalf("first CompactLog: %v", err)
	}
	if _, err := s.CompactLog(c, s.Log().SegmentSize()); err != nil {
		t.Fatalf("second CompactLog: %v", err)
	}
	if err := s.VerifyIntegrity(c); err != nil {
		t.Fatalf("verify after GC: %v", err)
	}

	// Everything must survive a crash: no recovery watermark may point into
	// the reclaimed region.
	s.Crash()
	rc := simclock.New(0)
	if err := s.Recover(rc); err != nil {
		t.Fatal(err)
	}
	se2 := s.NewSession(simclock.New(rc.Now())).(*Session)
	defer se2.Release()
	for i := 0; i < keys; i += 7 {
		v, ok, err := se2.Get(stressKey(i))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || !bytes.Equal(v, stressValue(i)) {
			t.Fatalf("key %d lost after GC+crash: ok=%v v=%q", i, ok, v)
		}
	}
}
