package core

import (
	"sync/atomic"

	"chameleondb/internal/histogram"
)

// Stats aggregates the store's operation counters (atomics; snapshot with
// Snapshot).
type Stats struct {
	Puts             atomic.Int64
	Deletes          atomic.Int64
	Flushes          atomic.Int64
	Spills           atomic.Int64
	UpperCompactions atomic.Int64
	LastCompactions  atomic.Int64
	Dumps            atomic.Int64
	GPMEntries       atomic.Int64
	GPMExits         atomic.Int64
	HashMismatches   atomic.Int64
	LogGCs           atomic.Int64
	LogGCRelocated   atomic.Int64
	LogGCDropped     atomic.Int64

	// Read-path concurrency machinery: shard-view publications by writers,
	// and persisted tables handed to / released by epoch reclamation.
	ViewPublishes   atomic.Int64
	TablesRetired   atomic.Int64
	TablesReclaimed atomic.Int64

	GetMemTable atomic.Int64
	GetABI      atomic.Int64
	GetDumped   atomic.Int64
	GetUpper    atomic.Int64
	GetLast     atomic.Int64
	GetMiss     atomic.Int64

	// Asynchronous maintenance pipeline: MemTable freezes handed to the
	// worker pool, backpressure events on the put path, per-kind job counts,
	// and maintenance that still ran inline (always zero while the pool is
	// active — the writescale acceptance assertion depends on that).
	MemFreezes         atomic.Int64
	PutSlowdowns       atomic.Int64
	PutStalls          atomic.Int64
	MaintJobsFlush     atomic.Int64
	MaintJobsSpill     atomic.Int64
	MaintJobsCompact   atomic.Int64
	MaintJobsLastLevel atomic.Int64
	MaintJobsSkipped   atomic.Int64
	InlineMaintenance  atomic.Int64
}

func (st *Stats) countGet(src getSource) {
	switch src {
	case srcMemTable:
		st.GetMemTable.Add(1)
	case srcABI:
		st.GetABI.Add(1)
	case srcDumped:
		st.GetDumped.Add(1)
	case srcUpper:
		st.GetUpper.Add(1)
	case srcLast:
		st.GetLast.Add(1)
	default:
		st.GetMiss.Add(1)
	}
}

// latencies holds the per-operation latency histograms (virtual nanoseconds).
// Gets are keyed by the structure that resolved them, so the Figure 6
// per-structure breakdown and the Figure 9-11 tails come from the live store.
// Recording is atomic increments only — it never touches a virtual clock, so
// benchmark timings are unaffected.
type latencies struct {
	put histogram.Histogram
	get [numGetSources]histogram.Histogram

	// Wall-clock histograms for the maintenance pipeline: time puts spend
	// blocked in backpressure, and background job durations. These are real
	// nanoseconds, not virtual — the pipeline's win is wall-clock.
	putStall histogram.Histogram
	jobDur   histogram.Histogram
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	Puts             int64
	Deletes          int64
	Flushes          int64
	Spills           int64
	UpperCompactions int64
	LastCompactions  int64
	Dumps            int64
	GPMEntries       int64
	GPMExits         int64
	HashMismatches   int64
	LogGCs           int64
	LogGCRelocated   int64
	LogGCDropped     int64
	ViewPublishes    int64
	TablesRetired    int64
	TablesReclaimed  int64
	GetMemTable      int64
	GetABI           int64
	GetDumped        int64
	GetUpper         int64
	GetLast          int64
	GetMiss          int64

	MemFreezes         int64
	PutSlowdowns       int64
	PutStalls          int64
	MaintJobsFlush     int64
	MaintJobsSpill     int64
	MaintJobsCompact   int64
	MaintJobsLastLevel int64
	MaintJobsSkipped   int64
	InlineMaintenance  int64
}

// Stats returns a snapshot of the operation counters.
func (s *Store) Stats() StatsSnapshot {
	return StatsSnapshot{
		Puts:             s.stats.Puts.Load(),
		Deletes:          s.stats.Deletes.Load(),
		Flushes:          s.stats.Flushes.Load(),
		Spills:           s.stats.Spills.Load(),
		UpperCompactions: s.stats.UpperCompactions.Load(),
		LastCompactions:  s.stats.LastCompactions.Load(),
		Dumps:            s.stats.Dumps.Load(),
		GPMEntries:       s.stats.GPMEntries.Load(),
		GPMExits:         s.stats.GPMExits.Load(),
		HashMismatches:   s.stats.HashMismatches.Load(),
		LogGCs:           s.stats.LogGCs.Load(),
		LogGCRelocated:   s.stats.LogGCRelocated.Load(),
		LogGCDropped:     s.stats.LogGCDropped.Load(),
		ViewPublishes:    s.stats.ViewPublishes.Load(),
		TablesRetired:    s.stats.TablesRetired.Load(),
		TablesReclaimed:  s.stats.TablesReclaimed.Load(),
		GetMemTable:      s.stats.GetMemTable.Load(),
		GetABI:           s.stats.GetABI.Load(),
		GetDumped:        s.stats.GetDumped.Load(),
		GetUpper:         s.stats.GetUpper.Load(),
		GetLast:          s.stats.GetLast.Load(),
		GetMiss:          s.stats.GetMiss.Load(),

		MemFreezes:         s.stats.MemFreezes.Load(),
		PutSlowdowns:       s.stats.PutSlowdowns.Load(),
		PutStalls:          s.stats.PutStalls.Load(),
		MaintJobsFlush:     s.stats.MaintJobsFlush.Load(),
		MaintJobsSpill:     s.stats.MaintJobsSpill.Load(),
		MaintJobsCompact:   s.stats.MaintJobsCompact.Load(),
		MaintJobsLastLevel: s.stats.MaintJobsLastLevel.Load(),
		MaintJobsSkipped:   s.stats.MaintJobsSkipped.Load(),
		InlineMaintenance:  s.stats.InlineMaintenance.Load(),
	}
}

// RecoverTimes reports the virtual nanoseconds of the last Recover call:
// ready is when the store could serve requests again (Table 4's restart
// time); full additionally includes the background ABI rebuild.
func (s *Store) RecoverTimes() (ready, full int64) {
	return s.lastRecoverReadyNs, s.lastRecoverFullNs
}
