package core

import (
	"errors"
	"sync"
	"testing"

	"chameleondb/internal/simclock"
)

// TestCloseIdempotent: Close can be called any number of times, including
// with live sessions, and afterwards every session operation reports
// ErrClosed while Flush (durability of already-acknowledged writes) still
// works.
func TestCloseIdempotent(t *testing.T) {
	s, err := Open(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	se := s.NewSession(simclock.New(0))
	if err := se.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Close(); err != nil {
			t.Fatalf("Close #%d: %v", i+1, err)
		}
	}
	if err := se.Put([]byte("k2"), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close: got %v, want ErrClosed", err)
	}
	if _, _, err := se.Get([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after Close: got %v, want ErrClosed", err)
	}
	if err := se.Delete([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Delete after Close: got %v, want ErrClosed", err)
	}
	if err := se.Flush(); err != nil {
		t.Fatalf("Flush after Close must still seal the batch: %v", err)
	}
	if err := se.(*Session).Release(); err != nil {
		t.Fatalf("Release after Close: %v", err)
	}
}

// TestConcurrentNewSessionClose is the regression test for the
// session-created-during-shutdown race: goroutines continuously create
// sessions and run operations while Close fires midway. Nothing may panic or
// corrupt state; operations either succeed (before the close latches) or
// fail with ErrClosed, and sessions created after Close observe ErrClosed on
// first use. Run under -race in CI's server job.
func TestConcurrentNewSessionClose(t *testing.T) {
	s, err := Open(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var (
		start sync.WaitGroup
		done  sync.WaitGroup
	)
	start.Add(1)
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		done.Add(1)
		go func(w int) {
			defer done.Done()
			start.Wait()
			for i := 0; i < 200; i++ {
				se := s.NewSession(simclock.New(0))
				key := []byte{byte(w), byte(i), byte(i >> 8)}
				if err := se.Put(key, []byte("v")); err != nil && !errors.Is(err, ErrClosed) {
					errs <- err
					return
				}
				if _, _, err := se.Get(key); err != nil && !errors.Is(err, ErrClosed) {
					errs <- err
					return
				}
				if err := se.(*Session).Release(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	start.Done()
	// Close twice, concurrently with the session churn.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	done.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("worker saw unexpected error: %v", err)
	}

	// A session created strictly after Close fails cleanly on first use.
	se := s.NewSession(simclock.New(0))
	if err := se.Put([]byte("late"), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("late session Put: got %v, want ErrClosed", err)
	}
}
