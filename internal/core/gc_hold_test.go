package core

import (
	"fmt"
	"sync"
	"testing"

	"chameleondb/internal/simclock"
)

// TestCompactLogRespectsGCHold is the store-level regression for the
// replica-lag floor: a registered hold clamps CompactLog's reclamation target
// even while writers churn concurrently, and data at or above the hold stays
// readable throughout.
func TestCompactLogRespectsGCHold(t *testing.T) {
	cfg := TestConfig()
	cfg.LogBytes = 4 << 20
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	log := s.Log()
	seg := log.SegmentSize()

	se := s.NewSession(simclock.New(0))
	defer se.(*Session).Release()
	val := make([]byte, 1024)
	write := func(round int) {
		for i := 0; i < 300; i++ {
			if err := se.Put([]byte(fmt.Sprintf("churn-%03d", i)), val); err != nil {
				t.Fatalf("round %d put %d: %v", round, i, err)
			}
		}
		if err := se.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	write(0)

	// Pin the hold at the current tail, then pile garbage above and below it.
	hold := log.Tail()
	log.HoldGC("replica:slow", hold)
	for round := 1; round <= 6; round++ {
		write(round)
	}

	// Hammer CompactLog from several goroutines at once — the clamp must win
	// every race with the target computation.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := simclock.New(0)
			for i := 0; i < 5; i++ {
				if _, err := s.CompactLog(c, 4<<20); err != nil {
					t.Errorf("compact: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if base := log.Base(); base > hold/seg*seg {
		t.Fatalf("CompactLog advanced base to %d past hold %d (segment floor %d)", base, hold, hold/seg*seg)
	}
	for i := 0; i < 300; i++ {
		got, ok, err := se.Get([]byte(fmt.Sprintf("churn-%03d", i)))
		if err != nil || !ok || len(got) != len(val) {
			t.Fatalf("key %d under hold: %v %v %v", i, len(got), ok, err)
		}
	}

	// Release the hold: compaction may now reclaim everything dead.
	log.ReleaseGCHold("replica:slow")
	c := simclock.New(0)
	if _, err := s.CompactLog(c, 4<<20); err != nil {
		t.Fatal(err)
	}
	if base := log.Base(); base <= hold/seg*seg {
		t.Fatalf("base %d did not advance after hold release", base)
	}
	for i := 0; i < 300; i++ {
		if _, ok, err := se.Get([]byte(fmt.Sprintf("churn-%03d", i))); err != nil || !ok {
			t.Fatalf("key %d lost after hold release: %v %v", i, ok, err)
		}
	}
}
