package core

import (
	"sync"
	"sync/atomic"

	"chameleondb/internal/device"
	"chameleondb/internal/hashtable"
	"chameleondb/internal/simclock"
)

// shard is one of the store's independent LSM structures (Section 2.1): a
// DRAM MemTable, persisted upper levels of immutable hash tables, one last
// level table, a DRAM Auxiliary Bypass Index covering the upper levels, and
// (under Get-Protect Mode) a bounded list of dumped ABI tables.
//
// Invariant: every live entry of the upper levels is present in the ABI or a
// dumped table, so a get never probes the upper levels in Pmem (the ABI
// bypass, Section 2.2). Version order, newest first: MemTable, ABI, dumped
// tables (newest dump first), last level.
type shard struct {
	store *Store
	id    int

	mu sync.Mutex
	tl simclock.Timeline // virtual-time critical section (writers queue; readers share)

	mem    *hashtable.Mem
	abi    *hashtable.Mem
	levels [][]*ptable // levels[0] = L0 ... levels[l-2]
	last   *ptable     // nil until first last-level compaction
	dumped []*ptable   // GPM ABI dumps, oldest first

	// frozen holds MemTables rotated out by the async put path, oldest
	// first, each awaiting a background flush/spill job. Always empty when
	// MaintenanceWorkers == 0 (the synchronous path flushes in place) and
	// after a drain barrier. Purely volatile: a crash wipes it, and recovery
	// replays its entries from the log like any other MemTable content.
	frozen []*frozenMem

	// view is the atomically published read snapshot of the fields above.
	// The lock-free get path loads it once and probes only through it;
	// every structural mutation (flush, spill, dump, compaction, wipe,
	// recovery) rebuilds and stores a fresh shardView while holding mu.
	view atomic.Pointer[shardView]

	lfThreshold float64

	// recoverLSN is the persisted watermark: every entry of this shard with
	// a smaller LSN is already in a persisted table, so crash recovery
	// replays the log only from here (conservatively; see persistManifest).
	recoverLSN int64
	// replayFilter freezes the manifest watermark for the duration of a
	// recovery replay: flushes during replay advance recoverLSN, which must
	// not cause later unreplayed entries to be skipped.
	replayFilter int64
	// memMinLSN is the smallest LSN resident in the MemTable (0 = empty);
	// spillMinLSN the smallest LSN spilled into the ABI without an L0 table
	// (0 = none). Both hold the watermark back until their entries persist.
	memMinLSN   int64
	spillMinLSN int64
	// memMaxLSN / spillMaxLSN track the newest entry in the MemTable / the
	// ABI's unpersisted spills; persistedMaxLSN is the newest LSN present in
	// any persisted table. A replayed log entry newer than persistedMaxLSN
	// cannot be superseded by a table, so recovery skips the (expensive)
	// supersession probes for the common case.
	memMaxLSN       int64
	spillMaxLSN     int64
	persistedMaxLSN int64

	manifest     manifestSlots
	pendingMerge atomic.Bool

	// asyncNs accumulates, within the current locked operation, the virtual
	// time spent on background work: flushes and compactions. The paper
	// pairs every put thread with a compaction thread on the same core
	// (Section 3.3), so this time stalls the *triggering worker's* clock but
	// is excluded from the shard's critical-section reservation — other
	// workers' puts and gets to the shard are not blocked behind a
	// compaction, exactly as an LSM's immutable-table maintenance allows.
	asyncNs int64
}

// shardView is an immutable snapshot of a shard's index structures, published
// whole so a reader sees a self-consistent generation: a MemTable always
// paired with the levels/dumps that cover exactly the entries it lacks.
// The Mem tables referenced by an old view are never mutated destructively —
// structural changes swap in fresh tables (the ABI only ever gains entries in
// place, which old-view readers may legally observe as newer versions) — and
// the ptables' arena space is reclaimed through the epoch manager, so a
// reader may keep probing a superseded view until it unpins.
type shardView struct {
	mem    *hashtable.Mem
	abi    *hashtable.Mem
	frozen []*frozenMem // probed newest-first between mem and abi
	levels [][]*ptable
	last   *ptable
	dumped []*ptable
}

// frozenMem is a MemTable the async put path rotated out, with the LSN range
// its entries cover: minLSN holds the recovery watermark back until the
// table's background flush persists it, maxLSN advances persistedMaxLSN when
// it does. The table itself is immutable once frozen (only the single writer
// under sh.mu ever inserted into it, and it was rotated away under the same
// lock), so readers probe it without seqlock retries ever failing.
type frozenMem struct {
	mem    *hashtable.Mem
	minLSN int64
	maxLSN int64
}

// publishView snapshots the shard's current structure into a fresh view and
// stores it atomically. Called with sh.mu held after every structural
// mutation. Level and dump slices are capped with full slice expressions so
// a later append on the shard's own slice can never grow into a published
// snapshot.
func (sh *shard) publishView() {
	v := &shardView{
		mem:  sh.mem,
		abi:  sh.abi,
		last: sh.last,
	}
	if n := len(sh.frozen); n > 0 {
		v.frozen = sh.frozen[:n:n]
	}
	if n := len(sh.dumped); n > 0 {
		v.dumped = sh.dumped[:n:n]
	}
	v.levels = make([][]*ptable, len(sh.levels))
	for i, lvl := range sh.levels {
		v.levels[i] = lvl[:len(lvl):len(lvl)]
	}
	sh.view.Store(v)
	sh.store.stats.ViewPublishes.Add(1)
}

// rotateMem swaps in an empty MemTable after the current one's entries have
// moved into the ABI and/or an L0 table, leaving the old table frozen for
// readers holding a previous view. Called with sh.mu held; the caller
// publishes the view.
func (sh *shard) rotateMem() {
	sh.mem = hashtable.NewMem(sh.store.cfg.MemTableSlots)
	sh.memMinLSN = 0
	sh.memMaxLSN = 0
}

// rotateABI swaps in an empty ABI after a dump or last-level compaction
// cleared it, freezing the old table for prior views (an in-place Reset would
// make entries vanish from a view whose dump list does not yet cover them).
// Called with sh.mu held; the caller publishes the view.
func (sh *shard) rotateABI() {
	if sh.abi != nil {
		sh.abi = hashtable.NewMem(sh.store.cfg.ABISlots)
	}
}

// async brackets background work: it runs fn (charging c as usual) and
// moves the elapsed time into sh.asyncNs so the session excludes it from the
// critical-section reservation. Called with sh.mu held.
func (sh *shard) async(c *simclock.Clock, fn func() error) error {
	t0 := c.Now()
	err := fn()
	sh.asyncNs += c.Now() - t0
	return err
}

func newShard(s *Store, id int, boot *simclock.Clock) (*shard, error) {
	sh := bareShard(s, id)
	if err := sh.manifestAlloc(); err != nil {
		return nil, err
	}
	sh.persistManifest(boot)
	sh.publishView()
	return sh, nil
}

// attachShard builds a shard over existing durable state: the manifest slots
// were allocated by a previous incarnation of the process (their location
// comes from the backend's host-metadata record), and nothing is persisted at
// boot — the durable manifests are the recovery input, not output. The shard
// serves nothing until Recover runs readManifest and replay.
func attachShard(s *Store, id int, slots manifestSlots) *shard {
	sh := bareShard(s, id)
	sh.manifest = slots
	sh.publishView()
	return sh
}

// bareShard builds the volatile shell every shard starts from.
func bareShard(s *Store, id int) *shard {
	sh := &shard{
		store:       s,
		id:          id,
		mem:         hashtable.NewMem(s.cfg.MemTableSlots),
		levels:      make([][]*ptable, s.cfg.Levels-1),
		lfThreshold: s.cfg.loadFactorFor(id),
		recoverLSN:  s.log.Base(),
	}
	if !s.cfg.DisableABI {
		sh.abi = hashtable.NewMem(s.cfg.ABISlots)
	}
	return sh
}

// volatileWipe models the loss of DRAM state at a crash.
func (sh *shard) volatileWipe() {
	sh.mem = hashtable.NewMem(sh.store.cfg.MemTableSlots)
	if !sh.store.cfg.DisableABI {
		sh.abi = hashtable.NewMem(sh.store.cfg.ABISlots)
	}
	for i := range sh.levels {
		sh.levels[i] = nil
	}
	sh.last = nil
	sh.dumped = nil
	sh.frozen = nil
	sh.memMinLSN = 0
	sh.spillMinLSN = 0
	sh.memMaxLSN = 0
	sh.spillMaxLSN = 0
	sh.pendingMerge.Store(false)
	sh.publishView()
}

// liveEntries counts entries that must fit in a last-level merge.
func (sh *shard) mergedEntryBound() int {
	n := 0
	if sh.abi != nil {
		n += sh.abi.Len()
	} else {
		for _, lvl := range sh.levels {
			for _, p := range lvl {
				n += p.t.Len()
			}
		}
	}
	for _, d := range sh.dumped {
		n += d.t.Len()
	}
	if sh.last != nil {
		n += sh.last.t.Len()
	}
	return n
}

// insertMem puts one entry into the MemTable, charging DRAM probe costs, and
// flushes / spills when the randomized load-factor threshold is reached.
// Called with sh.mu held; the caller has already appended to the log.
func (sh *shard) insertMem(c *simclock.Clock, h uint64, ref uint64) error {
	probes, ok := sh.mem.Insert(h, ref)
	c.Advance(device.DRAMProbeCost(probes))
	if !ok {
		// Can't happen while thresholds < 1.0, but handle it: force a flush
		// and retry once.
		if err := sh.memTableFull(c); err != nil {
			return err
		}
		probes, _ = sh.mem.Insert(h, ref)
		c.Advance(device.DRAMProbeCost(probes))
	}
	if sh.mem.LoadFactor() >= sh.lfThreshold {
		return sh.memTableFull(c)
	}
	return nil
}

// memTableFull handles a full MemTable. With an active maintenance pool the
// table is frozen and its flush/spill enqueued as a background job — the put
// path executes no merge. Otherwise (MaintenanceWorkers == 0, or recovery
// replay) the synchronous paths run inline, according to the current mode:
//   - Get-Protect Mode or Write-Intensive Mode: spill into the ABI without
//     persisting an L0 table (Sections 2.3, 2.4).
//   - Normal: flush to L0 (Figure 7) and run compactions as needed.
func (sh *shard) memTableFull(c *simclock.Clock) error {
	if sh.store.maintActive() {
		sh.freezeMem()
		return nil
	}
	// Tripwire for the async acceptance criterion: with a live pool this
	// branch is unreachable (maintActive routed to freezeMem above), so the
	// counter stays zero unless a regression re-inlines maintenance.
	// Synchronous stores and recovery replay do not count.
	if sh.store.maint != nil && !sh.store.crashed.Load() {
		sh.store.stats.InlineMaintenance.Add(1)
	}
	if sh.store.writeIntensive.Load() || sh.store.gpmActive.Load() {
		return sh.async(c, func() error { return sh.spillToABI(c) })
	}
	return sh.async(c, func() error { return sh.flush(c) })
}

// freezeMem rotates the full MemTable into the frozen list, publishes the
// new view (an empty MemTable in front of the frozen one — readers see every
// entry exactly where version order expects it), and enqueues the background
// job that will flush or spill it. Called with sh.mu held.
func (sh *shard) freezeMem() {
	if sh.mem.Len() == 0 {
		return
	}
	sh.frozen = append(sh.frozen, &frozenMem{mem: sh.mem, minLSN: sh.memMinLSN, maxLSN: sh.memMaxLSN})
	sh.rotateMem()
	sh.publishView()
	sh.store.stats.MemFreezes.Add(1)
	sh.store.maint.enqueue(sh.id, maintFlush)
}

// lookup performs the index lookup against the shard's published view,
// returning the winning slot (possibly a tombstone) and which structure
// produced it. This is the lock-free read path: it takes no lock and probes
// only the immutable snapshot. Callers that run concurrently with writers
// must pin a reader epoch around the call (Session.Get); maintenance paths
// (GC, verify) call it with sh.mu held, where the latest published view is
// by construction the current structure.
func (sh *shard) lookup(c *simclock.Clock, h uint64) (hashtable.Slot, getSource, bool) {
	return sh.lookupView(c, sh.view.Load(), h, 0)
}

// lookupView walks one immutable view in version order and returns the
// (skip+1)-th structure whose table holds hash h. skip == 0 is the plain
// lookup; larger skips let the collision fallback (Session.Get,
// shard.probeEntry) step past a candidate whose full key turned out not to
// match and keep probing older tiers, since a 64-bit hash match does not
// prove key identity. The caller owns the view's lifetime (epoch pin or
// sh.mu).
func (sh *shard) lookupView(c *simclock.Clock, v *shardView, h uint64, skip int) (hashtable.Slot, getSource, bool) {
	seen := 0
	take := func() bool {
		if seen < skip {
			seen++
			return false
		}
		return true
	}
	// 1. MemTable.
	ref, probes, ok := v.mem.Get(h)
	c.Advance(device.DRAMProbeCost(probes))
	if ok && take() {
		return hashtable.Slot{Hash: h, Ref: ref}, srcMemTable, true
	}
	// 1b. Frozen MemTables awaiting background flush, newest first: they sit
	// between the MemTable and the ABI in version order, and their hits count
	// as MemTable hits (the structure is the same table, merely rotated out).
	for i := len(v.frozen) - 1; i >= 0; i-- {
		ref, probes, ok = v.frozen[i].mem.Get(h)
		c.Advance(device.DRAMProbeCost(probes))
		if ok && take() {
			return hashtable.Slot{Hash: h, Ref: ref}, srcMemTable, true
		}
	}
	// 2. ABI.
	if v.abi != nil {
		ref, probes, ok = v.abi.Get(h)
		c.Advance(device.DRAMProbeCost(probes))
		if ok && take() {
			return hashtable.Slot{Hash: h, Ref: ref}, srcABI, true
		}
	}
	// 3. Dumped ABI tables, newest first (Section 2.4).
	for i := len(v.dumped) - 1; i >= 0; i-- {
		if s, ok := v.dumped[i].get(c, h); ok && take() {
			return s, srcDumped, true
		}
	}
	// 4. Upper levels in Pmem — only without an ABI (ablation), since the
	// ABI+dumps cover them otherwise (Figure 6).
	if v.abi == nil {
		for lvl := 0; lvl < len(v.levels); lvl++ {
			tables := v.levels[lvl]
			for i := len(tables) - 1; i >= 0; i-- {
				if s, ok := tables[i].get(c, h); ok && take() {
					return s, srcUpper, true
				}
			}
		}
	}
	// 5. Last level.
	if v.last != nil {
		if s, ok := v.last.get(c, h); ok && take() {
			return s, srcLast, true
		}
	}
	return hashtable.Slot{}, srcMiss, false
}

type getSource int

const (
	srcMemTable getSource = iota
	srcABI
	srcDumped
	srcUpper
	srcLast
	srcMiss
	numGetSources = int(srcMiss) + 1
)

func (g getSource) String() string {
	switch g {
	case srcMemTable:
		return "memtable"
	case srcABI:
		return "abi"
	case srcDumped:
		return "dumped"
	case srcUpper:
		return "upper"
	case srcLast:
		return "last"
	}
	return "miss"
}
