package core

import (
	"sync"
	"sync/atomic"
)

// Epoch-based reclamation for the lock-free read path.
//
// Compactions unlink persisted tables from the shard view and return their
// arena space with release(), which zeroes and recycles the blocks. A reader
// on the lock-free get path may still be probing a table it found in a
// previously published view, so the space cannot be recycled the instant the
// new view is published. The epoch manager defers that release until every
// reader that could possibly hold the old view has finished:
//
//   - Each Session registers a readerSlot. Before loading a shard view the
//     session stores the current epoch into its slot (pin); after the index
//     probe it stores zero (unpin). Both are single atomic stores on the
//     session's own slot — the hot path takes no lock and touches no shared
//     cache line.
//   - A writer that unlinks tables publishes the replacement view first,
//     then advances the epoch and records the tables against the new epoch
//     value. Any reader that pins an epoch >= that value must have loaded a
//     view published after the unlink (Go atomics are sequentially
//     consistent), so it cannot reference the retired tables.
//   - Retired batches are released once no slot is pinned at an epoch below
//     theirs. With no pinned readers — every single-threaded flow, and the
//     discrete-event bench harness — retirement degenerates to an immediate
//     release, preserving the pre-epoch arena behavior exactly.
type epochManager struct {
	epoch atomic.Int64

	mu      sync.Mutex
	readers []*readerSlot
	retired []retiredBatch
}

// readerSlot is one session's published reading epoch: 0 when idle, the
// pinned epoch while a view probe is in flight. Slots are separate heap
// allocations, so two sessions never contend on a cache line.
type readerSlot struct {
	e atomic.Int64
}

type retiredBatch struct {
	epoch  int64
	tables []*ptable
}

func newEpochManager() *epochManager {
	em := &epochManager{}
	em.epoch.Store(1) // 0 means "not reading" in the slots
	return em
}

// register adds a reader slot for a new session.
func (em *epochManager) register() *readerSlot {
	s := &readerSlot{}
	em.mu.Lock()
	em.readers = append(em.readers, s)
	em.mu.Unlock()
	return s
}

// unregister removes a released session's slot so it never holds
// reclamation back again.
func (em *epochManager) unregister(s *readerSlot) {
	em.mu.Lock()
	for i, x := range em.readers {
		if x == s {
			em.readers = append(em.readers[:i], em.readers[i+1:]...)
			break
		}
	}
	em.mu.Unlock()
}

// pin marks the slot as reading under the current epoch. Must be ordered
// before the view load it protects; unpin after the last table access.
func (s *readerSlot) pin(em *epochManager) { s.e.Store(em.epoch.Load()) }

func (s *readerSlot) unpin() { s.e.Store(0) }

// retire takes ownership of tables that the just-published view no longer
// references. The caller must have published the replacement view already and
// must have made the manifest that dropped the tables durable (retire may
// release arena space immediately).
func (em *epochManager) retire(st *Stats, tables []*ptable) {
	if len(tables) == 0 {
		return
	}
	em.mu.Lock()
	e := em.epoch.Add(1)
	em.retired = append(em.retired, retiredBatch{epoch: e, tables: tables})
	st.TablesRetired.Add(int64(len(tables)))
	em.reclaimLocked(st)
	em.mu.Unlock()
}

// reclaimLocked releases every batch no pinned reader can still see.
func (em *epochManager) reclaimLocked(st *Stats) {
	minPinned := int64(1) << 62
	for _, r := range em.readers {
		if v := r.e.Load(); v != 0 && v < minPinned {
			minPinned = v
		}
	}
	keep := em.retired[:0]
	for _, b := range em.retired {
		if b.epoch <= minPinned {
			for _, p := range b.tables {
				p.release()
			}
			st.TablesReclaimed.Add(int64(len(b.tables)))
		} else {
			keep = append(keep, b)
		}
	}
	em.retired = keep
}

// discard drops all pending retirements without releasing their arena space.
// Only the crash path uses it: power loss resets the arena allocator anyway,
// and zeroing durable bytes at the crash instant would model a store that
// writes after losing power.
func (em *epochManager) discard() {
	em.mu.Lock()
	em.retired = nil
	em.mu.Unlock()
}
