package core

import (
	"encoding/binary"
	"fmt"

	"chameleondb/internal/hashtable"
	"chameleondb/internal/simclock"
	"chameleondb/internal/xhash"
)

// Each shard persists a small manifest describing its table directory and
// recovery watermark. Manifests are written crash-atomically into two
// alternating slots: a slot carries a sequence number and a checksum, and
// recovery picks the valid slot with the highest sequence. A crash in the
// middle of a manifest write therefore falls back to the previous manifest,
// whose tables are only released *after* the new manifest is durable.
type manifestSlots struct {
	off       int64 // two slots of slotBytes each
	slotBytes int64
	seq       uint64
}

const manifestHeader = 24 // seq(8) + len(4) + pad(4) + checksum(8)

// manifestPayloadMax computes the worst-case payload for a config.
func manifestPayloadMax(cfg Config) int64 {
	tables := cfg.Ratio*(cfg.Levels-1) + cfg.GetProtect.MaxDumps + 4
	return int64(8*4 + tables*24 + 64)
}

// manifestAlloc reserves the shard's two manifest slots in the arena.
func (sh *shard) manifestAlloc() error {
	need := manifestHeader + manifestPayloadMax(sh.store.cfg)
	slot := (need + 255) / 256 * 256
	off, err := sh.store.arena.Alloc(2 * slot)
	if err != nil {
		return err
	}
	sh.manifest = manifestSlots{off: off, slotBytes: slot}
	return nil
}

// encodeManifest serializes the shard's table directory.
func (sh *shard) encodeManifest(recoverLSN int64) []byte {
	var buf []byte
	u64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	table := func(p *ptable) {
		if p == nil {
			u64(0)
			u64(0)
			u64(0)
			return
		}
		u64(uint64(p.t.Offset()))
		u64(uint64(p.t.Cap()))
		u64(uint64(p.t.Len()))
	}
	u64(uint64(recoverLSN))
	u64(uint64(sh.persistedMaxLSN))
	table(sh.last)
	u64(uint64(len(sh.dumped)))
	for _, d := range sh.dumped {
		table(d)
	}
	u64(uint64(len(sh.levels)))
	for _, lvl := range sh.levels {
		u64(uint64(len(lvl)))
		for _, t := range lvl {
			table(t)
		}
	}
	return buf
}

// persistManifest computes the recovery watermark and writes the manifest to
// the next slot. Called with sh.mu held after every structural change.
func (sh *shard) persistManifest(c *simclock.Clock) {
	w := sh.store.log.MinNextLSN()
	if sh.memMinLSN != 0 && sh.memMinLSN < w {
		w = sh.memMinLSN
	}
	// Frozen MemTables are volatile until their flush job runs, so their
	// entries must stay inside the replay window exactly like the live
	// MemTable's.
	for _, fm := range sh.frozen {
		if fm.minLSN != 0 && fm.minLSN < w {
			w = fm.minLSN
		}
	}
	if sh.spillMinLSN != 0 && sh.spillMinLSN < w {
		w = sh.spillMinLSN
	}
	if rp := sh.store.replayPos.Load(); rp < w {
		// A recovery replay is in progress: everything past the cursor is
		// still only in the log.
		w = rp
	}
	sh.recoverLSN = w
	payload := sh.encodeManifest(w)
	if int64(len(payload))+manifestHeader > sh.manifest.slotBytes {
		// Dumped-table overrun beyond the sized maximum cannot happen with a
		// validated config; guard loudly in case geometry changes.
		panic(fmt.Sprintf("core: manifest payload %d exceeds slot %d", len(payload), sh.manifest.slotBytes))
	}
	sh.manifest.seq++
	slotOff := sh.manifest.off + int64(sh.manifest.seq%2)*sh.manifest.slotBytes
	hdr := make([]byte, manifestHeader)
	binary.LittleEndian.PutUint64(hdr[0:8], sh.manifest.seq)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[16:24], xhash.Sum64(payload))
	sh.store.arena.Store(slotOff, hdr)
	sh.store.arena.Store(slotOff+manifestHeader, payload)
	sh.store.arena.Persist(c, slotOff, manifestHeader+int64(len(payload)))
}

// readManifest loads the newest valid manifest slot and rebuilds the shard's
// table directory from it. Called during recovery with sh.mu held.
func (sh *shard) readManifest(c *simclock.Clock) error {
	bestSeq := uint64(0)
	var bestPayload []byte
	for slot := int64(0); slot < 2; slot++ {
		off := sh.manifest.off + slot*sh.manifest.slotBytes
		hdr := sh.store.arena.ReadRandom(c, off, manifestHeader)
		seq := binary.LittleEndian.Uint64(hdr[0:8])
		plen := int64(binary.LittleEndian.Uint32(hdr[8:12]))
		sum := binary.LittleEndian.Uint64(hdr[16:24])
		if seq == 0 || plen <= 0 || plen+manifestHeader > sh.manifest.slotBytes {
			continue
		}
		payload := sh.store.arena.ReadRandom(c, off+manifestHeader, plen)
		if xhash.Sum64(payload) != sum {
			continue
		}
		if seq > bestSeq {
			bestSeq = seq
			bestPayload = payload
		}
	}
	if bestPayload == nil {
		return fmt.Errorf("core: shard %d has no valid manifest", sh.id)
	}
	sh.manifest.seq = bestSeq
	return sh.decodeManifest(bestPayload)
}

func (sh *shard) decodeManifest(b []byte) error {
	pos := 0
	// Reject directories larger than persistManifest's sized slot: a
	// corrupted (but checksum-colliding or tampered) manifest must fail
	// recovery here rather than panic on the next checkpoint.
	maxTables := sh.store.cfg.Ratio*(sh.store.cfg.Levels-1) + sh.store.cfg.GetProtect.MaxDumps + 4
	decoded := 0
	u64 := func() (uint64, error) {
		if pos+8 > len(b) {
			return 0, fmt.Errorf("core: truncated manifest in shard %d", sh.id)
		}
		v := binary.LittleEndian.Uint64(b[pos : pos+8])
		pos += 8
		return v, nil
	}
	table := func() (*ptable, error) {
		if decoded++; decoded > maxTables {
			return nil, fmt.Errorf("core: manifest in shard %d lists more than %d tables", sh.id, maxTables)
		}
		off, err := u64()
		if err != nil {
			return nil, err
		}
		capSlots, err := u64()
		if err != nil {
			return nil, err
		}
		count, err := u64()
		if err != nil {
			return nil, err
		}
		if off == 0 {
			return nil, nil
		}
		t, err := hashtable.OpenPmemTable(sh.store.arena, int64(off), int(capSlots), int(count))
		if err != nil {
			return nil, err
		}
		// On a file-backed reattach the restored allocator mark was persisted
		// at log-segment granularity and can trail table allocations this
		// manifest references; raise it past every referenced region so fresh
		// allocations cannot land on recovered tables. No-op after an
		// in-process crash (the mark never went backwards).
		sh.store.arena.ReserveFloor(int64(off) + int64(capSlots)*hashtable.SlotSize)
		// Accelerators (bloom filters, pinned copies) are volatile; the
		// recovery path rebuilds them after replay.
		return &ptable{t: t}, nil
	}
	w, err := u64()
	if err != nil {
		return err
	}
	sh.recoverLSN = int64(w)
	pm, err := u64()
	if err != nil {
		return err
	}
	sh.persistedMaxLSN = int64(pm)
	if sh.last, err = table(); err != nil {
		return err
	}
	nd, err := u64()
	if err != nil {
		return err
	}
	sh.dumped = nil
	for i := uint64(0); i < nd; i++ {
		t, err := table()
		if err != nil {
			return err
		}
		if t != nil {
			sh.dumped = append(sh.dumped, t)
		}
	}
	nl, err := u64()
	if err != nil {
		return err
	}
	if int(nl) != len(sh.levels) {
		return fmt.Errorf("core: manifest has %d levels, config has %d", nl, len(sh.levels))
	}
	for lvl := range sh.levels {
		nt, err := u64()
		if err != nil {
			return err
		}
		sh.levels[lvl] = nil
		for i := uint64(0); i < nt; i++ {
			t, err := table()
			if err != nil {
				return err
			}
			if t != nil {
				sh.levels[lvl] = append(sh.levels[lvl], t)
			}
		}
	}
	return nil
}
