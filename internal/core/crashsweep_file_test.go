package core

import (
	"fmt"
	"testing"

	"chameleondb/internal/kvstore"
	"chameleondb/internal/storetest"
)

// fileSweepOpen builds stores for the file-backend crash sweep: each call
// opens a fresh directory, and the storetest.Reopening wrapper turns every
// Recover into a real cold reopen of that directory — so the sweep's oracle
// checks the restart path (host metadata record, manifest reattachment,
// allocator restore, log-directory rebuild) at every crash point, not the
// in-process recovery the simulated sweep covers.
func fileSweepOpen(t *testing.T, mutate func(*Config)) func() (kvstore.Store, error) {
	return func() (kvstore.Store, error) {
		cfg := sweepConfig()
		if mutate != nil {
			mutate(&cfg)
		}
		dir := t.TempDir()
		s, existing, err := OpenFile(cfg, dir)
		if err != nil {
			return nil, err
		}
		if existing {
			return nil, fmt.Errorf("fresh sweep directory %s reported as existing", dir)
		}
		reopen := func() (kvstore.Store, error) {
			s, existing, err := OpenFile(cfg, dir)
			if err != nil {
				return nil, err
			}
			if !existing {
				s.Close()
				return nil, fmt.Errorf("reopen of %s found no durable state", dir)
			}
			return s, nil
		}
		return storetest.NewReopening(s, reopen), nil
	}
}

// fileSweepWorkload is the simulated sweep's fault-plan grid (power cut at
// every persist, plus a torn-write replay of each point) over a shorter
// script: every crash point costs real fsyncs here, so the op count is sized
// to keep the exhaustive sweep inside unit-test time.
func fileSweepWorkload() storetest.SweepConfig {
	wl := sweepWorkload()
	wl.Ops = 400
	return wl
}

// TestCrashSweepFileBackend sweeps every persist event on the file backend
// with restart-per-recovery. Crash points here include the host-metadata
// persists (segment-directory updates) that only exist on this backend, so
// torn and lost metadata records are exercised at every position alongside
// the data persists.
func TestCrashSweepFileBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep")
	}
	storetest.RunCrashSweep(t, "ChameleonDB-File", fileSweepOpen(t, nil), fileSweepWorkload())
}

// TestCrashSweepFileBackendWIM repeats the sweep in Write-Intensive Mode,
// the mode with the most acknowledged-but-volatile state at any crash point.
func TestCrashSweepFileBackendWIM(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep")
	}
	storetest.RunCrashSweep(t, "ChameleonDB-File-WIM", fileSweepOpen(t, func(c *Config) {
		c.WriteIntensive = true
	}), fileSweepWorkload())
}
