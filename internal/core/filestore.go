package core

import (
	"fmt"

	"chameleondb/internal/device"
	"chameleondb/internal/device/filedev"
	"chameleondb/internal/pmem"
	"chameleondb/internal/wlog"
)

// OpenFile opens a ChameleonDB whose durable state lives in a real directory
// (the `-backend=file` mode) instead of the simulated medium. The device
// timing model still runs — stats and virtual-time accounting are identical —
// but every persist is additionally written through to segment files in dir
// and fsync'd, so the store survives a process restart, SIGKILL included.
//
// The returned bool reports whether dir held existing state. A fresh
// directory is initialized and the store is immediately usable. An existing
// directory is reattached cold — durable images loaded, allocator and log
// directory restored from the backend's host-metadata record — and the store
// comes back in the crashed state: the caller must run Recover (with a
// clock) before opening sessions, exactly as after an in-process Crash.
func OpenFile(cfg Config, dir string) (*Store, bool, error) {
	return openFile(cfg, dir, false)
}

// OpenFileUnsafe is OpenFile with the backend's directory-entry fsyncs
// disabled. Test-only: the dir-sync regression tests use it to model the
// file loss an unsynced directory entry suffers at power failure.
func OpenFileUnsafe(cfg Config, dir string) (*Store, bool, error) {
	return openFile(cfg, dir, true)
}

func openFile(cfg Config, dir string, disableDirSync bool) (*Store, bool, error) {
	if err := cfg.validate(); err != nil {
		return nil, false, err
	}
	dev := device.New(device.OptanePmem)
	med, err := filedev.Open(filedev.Options{
		Dir:            dir,
		Capacity:       cfg.ArenaBytes,
		AccessUnit:     dev.Profile().AccessUnit,
		MetaSlotBytes:  hostStateMax(cfg),
		DisableDirSync: disableDirSync,
	})
	if err != nil {
		return nil, false, err
	}
	arena := pmem.NewArenaOn(dev, cfg.ArenaBytes, med)

	if !med.Existing() {
		s, err := openOnArena(cfg, dev, arena)
		if err != nil {
			med.Close()
			return nil, false, err
		}
		// Hook first, initial record second: the record must exist before any
		// acknowledgement, and every segment-map change after this point
		// refreshes it before the reservation can carry data.
		s.log.SetMetaHook(s.logMetaHook)
		s.persistHostMeta()
		if err := arena.MediumErr(); err != nil {
			s.Close()
			return nil, false, err
		}
		return s, false, nil
	}

	s, err := attachStore(cfg, dev, arena, med)
	if err != nil {
		med.Close()
		return nil, false, err
	}
	return s, true, nil
}

// attachStore rebuilds a Store over the durable state in med: the host
// metadata record locates the log's segment directory and the shard
// manifests; everything else is recovered from the arena image by Recover.
func attachStore(cfg Config, dev *device.Device, arena *pmem.Arena, med *filedev.Dev) (*Store, error) {
	hs, err := decodeHostState(med.Meta())
	if err != nil {
		return nil, err
	}
	if hs.fp != fingerprintOf(cfg) {
		return nil, fmt.Errorf("core: directory %s was created with a different geometry (%+v, want %+v)",
			med.Dir(), hs.fp, fingerprintOf(cfg))
	}
	slot := (manifestHeader + manifestPayloadMax(cfg) + 255) / 256 * 256
	if hs.ManifestSlotBytes != slot {
		return nil, fmt.Errorf("core: host state manifest slot %d bytes, config needs %d", hs.ManifestSlotBytes, slot)
	}
	for _, off := range hs.ManifestOffs {
		if off+2*slot > cfg.ArenaBytes {
			return nil, fmt.Errorf("core: host state manifest at %d outside arena", off)
		}
	}
	if err := arena.LoadDurable(med.LoadInto); err != nil {
		return nil, err
	}
	// The allocator restarts at the persisted mark with an empty free list —
	// the same conservative rebuild an in-process crash performs. Manifest
	// decode raises the floor past any table the mark trails.
	arena.RestoreAllocator(hs.ArenaNext)

	log, err := wlog.New(arena, cfg.LogBytes)
	if err != nil {
		return nil, err
	}
	log.RestoreSegments(hs.LogHead, hs.LogNext, hs.Segs)
	s := newStoreShell(cfg, dev, arena, log)
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = attachShard(s, i, manifestSlots{off: hs.ManifestOffs[i], slotBytes: slot})
		arena.ReserveFloor(hs.ManifestOffs[i] + 2*slot)
	}
	if cfg.MaintenanceWorkers > 0 {
		s.maint = newMaintPool(s, cfg.MaintenanceWorkers)
	}
	rid := hs.ReplID
	s.replID.Store(&rid)
	s.replEpoch.Store(hs.ReplEpoch)
	s.replApplied.Store(hs.ReplApplied)
	// The store reattaches in the crashed state: sessions are rejected and
	// maintenance stays synchronous until Recover replays the log and clears
	// the flag — a restart is a crash whose volatile half is a new process.
	s.crashed.Store(true)
	s.log.SetMetaHook(s.logMetaHook)
	return s, nil
}
