package core

import (
	"chameleondb/internal/histogram"
	"chameleondb/internal/obs"
)

// buildRegistry absorbs the store's operation counters, the device's media
// counters, and the log's totals behind one snapshot API, and attaches the
// per-operation latency histograms. Called once from OpenOn; all registered
// read functions are safe to call from any goroutine while sessions run.
func (s *Store) buildRegistry() {
	r := obs.NewRegistry("chameleondb")
	st := &s.stats
	r.CounterFunc("puts", st.Puts.Load)
	r.CounterFunc("deletes", st.Deletes.Load)
	r.CounterFunc("flushes", st.Flushes.Load)
	r.CounterFunc("spills", st.Spills.Load)
	r.CounterFunc("upper_compactions", st.UpperCompactions.Load)
	r.CounterFunc("last_compactions", st.LastCompactions.Load)
	r.CounterFunc("abi_dumps", st.Dumps.Load)
	r.CounterFunc("gpm_entries", st.GPMEntries.Load)
	r.CounterFunc("gpm_exits", st.GPMExits.Load)
	r.CounterFunc("hash_mismatches", st.HashMismatches.Load)
	r.CounterFunc("log_gcs", st.LogGCs.Load)
	r.CounterFunc("log_gc_relocated", st.LogGCRelocated.Load)
	r.CounterFunc("log_gc_dropped", st.LogGCDropped.Load)
	r.CounterFunc("view_publishes", st.ViewPublishes.Load)
	r.CounterFunc("tables_retired", st.TablesRetired.Load)
	r.CounterFunc("tables_reclaimed", st.TablesReclaimed.Load)
	r.CounterFunc("gets_memtable", st.GetMemTable.Load)
	r.CounterFunc("gets_abi", st.GetABI.Load)
	r.CounterFunc("gets_dumped", st.GetDumped.Load)
	r.CounterFunc("gets_upper", st.GetUpper.Load)
	r.CounterFunc("gets_last", st.GetLast.Load)
	r.CounterFunc("gets_miss", st.GetMiss.Load)
	r.CounterFunc("mem_freezes", st.MemFreezes.Load)
	r.CounterFunc("put_slowdowns", st.PutSlowdowns.Load)
	r.CounterFunc("put_stalls", st.PutStalls.Load)
	r.CounterFunc("maint_jobs_flush", st.MaintJobsFlush.Load)
	r.CounterFunc("maint_jobs_spill", st.MaintJobsSpill.Load)
	r.CounterFunc("maint_jobs_compact", st.MaintJobsCompact.Load)
	r.CounterFunc("maint_jobs_last_level", st.MaintJobsLastLevel.Load)
	r.CounterFunc("maint_jobs_skipped", st.MaintJobsSkipped.Load)
	r.CounterFunc("inline_maintenance", st.InlineMaintenance.Load)
	obs.RegisterDevice(r, s.dev)
	obs.RegisterLog(r, s.log)
	r.GaugeFunc("gpm_active", func() int64 {
		if s.gpmActive.Load() {
			return 1
		}
		return 0
	})
	r.GaugeFunc("write_intensive", func() int64 {
		if s.writeIntensive.Load() {
			return 1
		}
		return 0
	})
	r.GaugeFunc("dram_footprint_bytes", s.DRAMFootprint)
	// Maintenance-pool gauges read the pool's atomic mirrors; with
	// MaintenanceWorkers == 0 they are constant zero (the pool is nil — but
	// buildRegistry runs before the pool exists, so the closures re-check).
	r.GaugeFunc("maintenance_queue_depth", func() int64 {
		if s.maint == nil {
			return 0
		}
		return s.maint.queued.Load()
	})
	r.GaugeFunc("maintenance_workers_busy", func() int64 {
		if s.maint == nil {
			return 0
		}
		return s.maint.busy.Load()
	})
	r.Histogram("put_stall_ns", &s.lat.putStall)
	r.Histogram("job_duration_ns", &s.lat.jobDur)
	r.Histogram("put_latency_ns", &s.lat.put)
	for i := range s.lat.get {
		r.Histogram("get_latency_ns_"+getSource(i).String(), &s.lat.get[i])
	}
	s.reg = r
}

// Registry returns the store's metrics registry.
func (s *Store) Registry() *obs.Registry { return s.reg }

// Trace returns the store's event trace, or nil when Config.TraceEvents is 0.
func (s *Store) Trace() *obs.Trace { return s.trace }

// PutLatency returns the live put-latency histogram (deletes included:
// tombstones take the same write path).
func (s *Store) PutLatency() *histogram.Histogram { return &s.lat.put }

// PutStallLatency returns the wall-clock histogram of time puts spent in
// backpressure (slowdown sleeps and stall waits). Empty when
// MaintenanceWorkers is 0.
func (s *Store) PutStallLatency() *histogram.Histogram { return &s.lat.putStall }

// JobDuration returns the wall-clock histogram of background maintenance job
// durations. Empty when MaintenanceWorkers is 0.
func (s *Store) JobDuration() *histogram.Histogram { return &s.lat.jobDur }

// GetLatencyBySource returns the live get-latency histograms keyed by the
// structure that resolved the get ("memtable", "abi", "dumped", "upper",
// "last", "miss") — the Figure 6 breakdown measured in place.
func (s *Store) GetLatencyBySource() map[string]*histogram.Histogram {
	out := make(map[string]*histogram.Histogram, numGetSources)
	for i := range s.lat.get {
		out[getSource(i).String()] = &s.lat.get[i]
	}
	return out
}
