package core

import (
	"testing"

	"chameleondb/internal/simclock"
)

// allocsStore opens a store sized so the steady-state measurement never hits
// a structural event: MemTables big enough that no freeze fires during the
// measured runs, maintenance inline (no worker goroutines allocating in the
// background while AllocsPerRun counts).
func allocsStore(t *testing.T) *Store {
	t.Helper()
	cfg := TestConfig()
	cfg.Shards = 4
	cfg.MemTableSlots = 4096
	cfg.MaintenanceWorkers = 0
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestAllocsGetInto asserts the embedded read path is allocation-free: a
// GET hit through GetInto with a reusable dst, and a GET miss, both do zero
// allocations per op. This is the engine half of the tentpole's
// "allocation-free from RESP frame to engine and back" contract — the server
// half is covered by the wire allocs gate in internal/bench.
func TestAllocsGetInto(t *testing.T) {
	s := allocsStore(t)
	se := s.NewSession(simclock.New(0)).(*Session)
	key := []byte("alloc-key")
	if err := se.Put(key, []byte("alloc-value-0123456789")); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 0, 256)
	miss := []byte("alloc-absent")

	if n := testing.AllocsPerRun(200, func() {
		out, ok, err := se.GetInto(key, dst)
		if err != nil || !ok || len(out) == 0 {
			t.Fatal("hit failed")
		}
	}); n != 0 {
		t.Fatalf("GetInto hit allocates %v per op, want 0", n)
	}

	if n := testing.AllocsPerRun(200, func() {
		_, ok, err := se.GetInto(miss, dst)
		if err != nil || ok {
			t.Fatal("miss failed")
		}
	}); n != 0 {
		t.Fatalf("GetInto miss allocates %v per op, want 0", n)
	}
}

// TestAllocsPut asserts the embedded write path is amortized allocation-free:
// Put copies into the current log chunk in place, so the only allocations are
// the occasional chunk turnover — well under one per op.
func TestAllocsPut(t *testing.T) {
	s := allocsStore(t)
	se := s.NewSession(simclock.New(0)).(*Session)
	key := []byte("alloc-put-key")
	val := []byte("alloc-put-value-0123456789")
	if n := testing.AllocsPerRun(500, func() {
		if err := se.Put(key, val); err != nil {
			t.Fatal(err)
		}
	}); n >= 1 {
		t.Fatalf("Put allocates %v per op, want amortized < 1", n)
	}
}

// TestAllocsPutBatch does the same for the batched write path the server's
// shard-affine SET dispatch uses.
func TestAllocsPutBatch(t *testing.T) {
	s := allocsStore(t)
	se := s.NewSession(simclock.New(0)).(*Session)
	keys := [][]byte{[]byte("pb-a"), []byte("pb-b"), []byte("pb-c"), []byte("pb-d")}
	vals := [][]byte{[]byte("v-a"), []byte("v-b"), []byte("v-c"), []byte("v-d")}
	// Warm the per-session scratch (hash/done slices) once.
	if err := se.PutBatch(keys, vals); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := se.PutBatch(keys, vals); err != nil {
			t.Fatal(err)
		}
	}); n >= 1 {
		t.Fatalf("PutBatch(4) allocates %v per call, want amortized < 1", n)
	}
}
