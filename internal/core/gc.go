package core

import (
	"fmt"

	"chameleondb/internal/device"
	"chameleondb/internal/hashtable"
	"chameleondb/internal/obs"
	"chameleondb/internal/simclock"
	"chameleondb/internal/wlog"
)

// CompactLog reclaims space from the head of the value log — an extension
// beyond the paper, which leaves log-space garbage collection out of scope
// (Section 2.5 only defines the append format). The approach is WiscKey-
// style head GC adapted to ChameleonDB's hashed index:
//
//  1. Scan the oldest log segments. For each entry, check the shard's index
//     under its lock: if the entry is still the live version of its key, it
//     is relocated — re-appended at the tail and re-indexed through the
//     MemTable, exactly like a put of the same value. Dead versions and
//     settled tombstones are dropped.
//  2. Checkpoint every shard (flush MemTables, persist manifests) so no
//     recovery watermark points below the reclaimed region.
//  3. Free the emptied segments back to the arena for reuse.
//
// The method must be called from a quiesced store (no concurrent sessions):
// like Crash/Recover it is a maintenance operation. It returns the bytes
// freed. All device traffic (the segment scan, the relocation appends, the
// checkpoint) is charged to c, so GC cost is measurable in experiments.
func (s *Store) CompactLog(c *simclock.Clock, reclaimBytes int64) (int64, error) {
	if s.crashed.Load() {
		return 0, ErrCrashed
	}
	// Seal every session's private batch chunk first: relocation re-appends
	// live entries at the tail, and any session append that later landed in a
	// still-open chunk below the tail would carry a lower LSN than the
	// relocated copy of an older version — recovery's LSN-ordered replay
	// would then resurrect the old version over it (found by the crash-point
	// sweep).
	if err := s.log.SealAll(c); err != nil {
		return 0, err
	}
	head := s.log.Base()
	seg := s.log.SegmentSize()
	target := head + (reclaimBytes+seg-1)/seg*seg
	// Never reclaim into a segment an appender may still write: the tail
	// segment, or below it a session's unsealed private batch chunk.
	// MinNextLSN is the conservative bound over both. (Capping at Tail alone
	// is not enough: when a session's unsealed chunk ends exactly at a
	// segment boundary the tail sits on the boundary too, and the chunk's
	// segment would be freed while the session keeps appending into it
	// through its cached arena offset — found by the crash-point sweep.)
	// GCFloor further clamps at any registered GC hold, so a lagging
	// replica's unshipped suffix is neither relocated out from under its
	// cursor nor freed.
	if maxTarget := s.log.GCFloor() / seg * seg; target > maxTarget {
		target = maxTarget
	}
	if target <= head {
		return 0, nil
	}

	ap := s.log.NewAppender()
	var relocated, dropped int64
	var relocErr error
	err := s.log.Scan(c, head, func(e wlog.Entry) bool {
		if e.LSN >= target {
			return false
		}
		c.Advance(device.CostHash64)
		sh := s.shardFor(e.Hash)
		sh.mu.Lock()
		slot, _, ok := sh.lookup(c, e.Hash)
		if !ok || slot.LSN() != e.LSN || slot.Tombstone() {
			// A newer version exists elsewhere, the key is deleted, or the
			// entry was never indexed: the bytes are garbage.
			dropped++
			sh.mu.Unlock()
			return true
		}
		newLSN, err := ap.Append(c, e.Hash, e.Key, e.Value, e.Flags)
		if err != nil {
			relocErr = err
			sh.mu.Unlock()
			return false
		}
		if sh.memMinLSN == 0 || newLSN < sh.memMinLSN {
			sh.memMinLSN = newLSN
		}
		if newLSN > sh.memMaxLSN {
			sh.memMaxLSN = newLSN
		}
		relocErr = sh.insertMem(c, e.Hash, hashtable.MakeRef(newLSN, false))
		relocated++
		sh.mu.Unlock()
		return relocErr == nil
	})
	if err == nil {
		err = relocErr
	}
	if err != nil {
		return 0, fmt.Errorf("core: log GC relocation: %w", err)
	}
	if err := ap.Release(c); err != nil {
		return 0, err
	}

	// Relocation re-indexes through the MemTables, which may have frozen
	// tables and enqueued flush jobs when the maintenance pool is active.
	// Drain them before checkpointing so the occupancy checks below see
	// settled shards, not a merge in flight.
	if s.maint != nil {
		if err := s.maint.drainAll(); err != nil {
			return 0, fmt.Errorf("core: log GC drain: %w", err)
		}
	}

	// Checkpoint: persist every MemTable (which also syncs all appenders)
	// and re-persist manifests so no watermark references the doomed
	// segments.
	for _, sh := range s.shards {
		sh.mu.Lock()
		var err error
		// Frozen tables are older than the live MemTable and must persist
		// first (L0 version order); normally the drain above has already
		// emptied the list, but a flush job could legally have been dropped
		// by a concurrent error latch.
		for err == nil && len(sh.frozen) > 0 {
			err = sh.flushFrozen(c)
		}
		if err == nil {
			err = sh.flush(c)
		}
		if err == nil && sh.recoverLSN < target {
			sh.persistManifest(c)
		}
		ok := sh.recoverLSN >= target || (sh.mem.Len() == 0 && len(sh.frozen) == 0 && sh.spillMinLSN == 0)
		sh.mu.Unlock()
		if err != nil {
			return 0, fmt.Errorf("core: log GC checkpoint: %w", err)
		}
		if !ok {
			// A spilled ABI (Write-Intensive / Get-Protect operation) still
			// depends on the region: force the last-level compaction that
			// persists it. The occupancy is re-checked under the re-acquired
			// lock — a queued maintenance job may already have merged the
			// spill in the window since the checkpoint released the shard, so
			// the merge must be idempotent: skip it when the dependency is
			// gone and only refresh the watermark.
			sh.mu.Lock()
			err = nil
			if sh.spillMinLSN != 0 {
				err = sh.lastLevelCompaction(c)
			}
			if err == nil && sh.recoverLSN < target {
				sh.persistManifest(c)
			}
			sh.mu.Unlock()
			if err != nil {
				return 0, fmt.Errorf("core: log GC forced compaction: %w", err)
			}
		}
	}
	freed := s.log.FreeBefore(target)
	s.stats.LogGCs.Add(1)
	s.stats.LogGCRelocated.Add(relocated)
	s.stats.LogGCDropped.Add(dropped)
	s.trace.Emit(c.Now(), obs.EvLogGC, -1, freed)
	return freed, nil
}
