package core

import (
	"fmt"
	"math/rand"
	"testing"

	"chameleondb/internal/simclock"
)

// oracleCheck drives the store with a random op sequence against a
// map-backed oracle, optionally injecting crash/recover cycles and mode
// flips, then verifies every key.
func oracleCheck(t *testing.T, seed int64, crashes bool, mutate ...func(*Config)) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	cfg := TestConfig()
	for _, m := range mutate {
		m(&cfg)
	}
	cfg.Seed = seed
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	se := s.NewSession(simclock.New(0)).(*Session)

	oracle := map[string]string{}  // latest acknowledged state
	durable := map[string]string{} // state guaranteed after crash
	// since records every value (or deletion) acknowledged per key after
	// the last durable point: a crash may preserve any of them, because
	// batch chunks persist whole even past the explicit sync point.
	since := map[string][]string{}
	const deleted = "\x00deleted"
	keyspace := 3000

	syncDurable := func() {
		if err := se.Flush(); err != nil {
			t.Fatal(err)
		}
		durable = make(map[string]string, len(oracle))
		for k, v := range oracle {
			durable[k] = v
		}
		since = map[string][]string{}
	}

	const ops = 30000
	for i := 0; i < ops; i++ {
		k := fmt.Sprintf("key-%06d", r.Intn(keyspace))
		switch r.Intn(10) {
		case 0, 1, 2, 3, 4, 5:
			v := fmt.Sprintf("val-%06d-%06d", r.Intn(keyspace), i)
			if err := se.Put([]byte(k), []byte(v)); err != nil {
				t.Fatalf("op %d: put: %v", i, err)
			}
			oracle[k] = v
			since[k] = append(since[k], v)
		case 6:
			if err := se.Delete([]byte(k)); err != nil {
				t.Fatalf("op %d: delete: %v", i, err)
			}
			delete(oracle, k)
			since[k] = append(since[k], deleted)
		case 7, 8:
			got, ok, err := se.Get([]byte(k))
			if err != nil {
				t.Fatalf("op %d: get: %v", i, err)
			}
			want, wantOK := oracle[k]
			if ok != wantOK || (ok && string(got) != want) {
				t.Fatalf("op %d: get %q = %q,%v; oracle %q,%v", i, k, got, ok, want, wantOK)
			}
		case 9:
			if crashes && r.Intn(20) == 0 {
				// Crash at a durable point half the time, mid-batch the
				// other half.
				if r.Intn(2) == 0 {
					syncDurable()
				}
				s.Crash()
				if err := s.Recover(simclock.New(0)); err != nil {
					t.Fatalf("op %d: recover: %v", i, err)
				}
				se = s.NewSession(simclock.New(0)).(*Session)
				// After a crash the live state rolls back to the last
				// durable snapshot plus some prefix of the acknowledged
				// tail (whole batch chunks persist together). Re-read
				// reality and validate each key against its legal values.
				oracle = reread(t, se, keyspace, durable, since)
				// Everything that survived a crash was recovered from
				// persisted media, so the observed state is the new durable
				// baseline.
				durable = make(map[string]string, len(oracle))
				for k, v := range oracle {
					durable[k] = v
				}
				since = map[string][]string{}
			} else if r.Intn(10) == 0 {
				syncDurable()
			}
		}
	}
	syncDurable()
	for k, want := range oracle {
		got, ok, err := se.Get([]byte(k))
		if err != nil || !ok || string(got) != want {
			t.Fatalf("final check %q = %q,%v,%v; want %q", k, got, ok, err, want)
		}
	}
	// Keys absent from the oracle must be absent from the store.
	miss := 0
	for i := 0; i < keyspace; i++ {
		k := fmt.Sprintf("key-%06d", i)
		if _, inOracle := oracle[k]; inOracle {
			continue
		}
		if _, ok, _ := se.Get([]byte(k)); ok {
			miss++
		}
	}
	if miss > 0 {
		t.Fatalf("%d deleted/never-written keys still readable", miss)
	}
}

// reread reconciles the oracle after a crash: every key must read back as
// its durable value or one of the values acknowledged after the durable
// point (a crash preserves any prefix of the batched tail). The returned map
// is the store's actual post-crash state.
func reread(t *testing.T, se *Session, keyspace int, durable map[string]string, since map[string][]string) map[string]string {
	t.Helper()
	const deleted = "\x00deleted"
	state := map[string]string{}
	for i := 0; i < keyspace; i++ {
		k := fmt.Sprintf("key-%06d", i)
		got, ok, err := se.Get([]byte(k))
		if err != nil {
			t.Fatal(err)
		}
		dv, inDurable := durable[k]
		tail := since[k]
		if ok {
			g := string(got)
			legal := inDurable && g == dv
			for _, v := range tail {
				if v == g {
					legal = true
					break
				}
			}
			if !legal {
				t.Fatalf("post-crash %q = %q, not the durable value %q(%v) nor any acknowledged tail value %q",
					k, g, dv, inDurable, tail)
			}
			state[k] = g
		} else {
			// Missing is legal if the key was not durably present, or if a
			// deletion was acknowledged after the durable point (its
			// tombstone may have persisted with its chunk).
			legal := !inDurable
			for _, v := range tail {
				if v == deleted {
					legal = true
					break
				}
			}
			if !legal {
				t.Fatalf("post-crash %q vanished but was durable as %q with tail %q", k, dv, tail)
			}
		}
	}
	return state
}

func TestOracleNoCrashes(t *testing.T) {
	oracleCheck(t, 1, false)
}

func TestOracleWithCrashes(t *testing.T) {
	oracleCheck(t, 2, true)
}

func TestOracleLevelByLevel(t *testing.T) {
	oracleCheck(t, 3, true, func(c *Config) { c.CompactionMode = LevelByLevel })
}

func TestOracleWriteIntensive(t *testing.T) {
	oracleCheck(t, 4, true, func(c *Config) { c.WriteIntensive = true })
}

func TestOracleNoABI(t *testing.T) {
	oracleCheck(t, 5, true, func(c *Config) { c.DisableABI = true })
}

func TestOracleManySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("long oracle sweep")
	}
	for seed := int64(10); seed < 16; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			oracleCheck(t, seed, true)
		})
	}
}

func TestRecoveryIdempotent(t *testing.T) {
	s := openTest(t)
	se := s.NewSession(simclock.New(0))
	for i := 0; i < 5000; i++ {
		se.Put(key(i), val(i))
	}
	se.Flush()
	// Crash and recover twice in a row: the second recovery must see the
	// same state (manifests and log are stable).
	for round := 0; round < 2; round++ {
		s.Crash()
		if err := s.Recover(simclock.New(0)); err != nil {
			t.Fatalf("recover round %d: %v", round, err)
		}
	}
	se2 := s.NewSession(simclock.New(0))
	for i := 0; i < 5000; i += 101 {
		got, ok, _ := se2.Get(key(i))
		if !ok || string(got) != string(val(i)) {
			t.Fatalf("key %d lost after double recovery", i)
		}
	}
}

func TestRecoveryAfterWIMCrashIsSlower(t *testing.T) {
	// Section 2.3 / Table 4: a WIM crash must recover (rebuilding the ABI
	// from the log) but takes longer than a normal-mode restart.
	restart := func(wim bool) int64 {
		cfg := TestConfig()
		cfg.WriteIntensive = wim
		s, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		se := s.NewSession(simclock.New(0))
		for i := 0; i < 20000; i++ {
			se.Put(key(i), val(i))
		}
		se.Flush()
		s.Crash()
		c := simclock.New(0)
		if err := s.Recover(c); err != nil {
			t.Fatal(err)
		}
		// All data must be there either way.
		se2 := s.NewSession(simclock.New(0))
		for i := 0; i < 20000; i += 499 {
			if _, ok, _ := se2.Get(key(i)); !ok {
				t.Fatalf("key %d lost (wim=%v)", i, wim)
			}
		}
		ready, _ := s.RecoverTimes()
		return ready
	}
	normal, wim := restart(false), restart(true)
	if wim <= normal {
		t.Fatalf("WIM restart (%d ns) should be slower than normal restart (%d ns)", wim, normal)
	}
}

func TestRecoveryReplayChargesScan(t *testing.T) {
	s := openTest(t)
	se := s.NewSession(simclock.New(0))
	for i := 0; i < 3000; i++ {
		se.Put(key(i), val(i))
	}
	se.Flush()
	s.Crash()
	c := simclock.New(0)
	if err := s.Recover(c); err != nil {
		t.Fatal(err)
	}
	ready, full := s.RecoverTimes()
	if ready <= 0 || full < ready {
		t.Fatalf("recovery times inconsistent: ready=%d full=%d", ready, full)
	}
}
