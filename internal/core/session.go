package core

import (
	"bytes"
	"errors"
	"math"
	"strconv"

	"chameleondb/internal/device"
	"chameleondb/internal/hashtable"
	"chameleondb/internal/kvstore"
	"chameleondb/internal/simclock"
	"chameleondb/internal/wlog"
)

// ErrCrashed is returned by operations issued between Crash and Recover.
var ErrCrashed = errors.New("core: store has crashed; call Recover first")

// ErrClosed is returned by session operations issued after Store.Close. A
// server draining connections can race a late session against shutdown; the
// session fails cleanly here instead of touching a store being discarded.
var ErrClosed = errors.New("core: store is closed")

// ErrNotInteger is returned by IncrBy when the stored value is not a decimal
// 64-bit integer, or the increment would overflow one.
var ErrNotInteger = errors.New("value is not an integer or out of range")

// ErrReadOnly is returned by client write operations while the store serves
// as a replica (Store.SetReadOnly). The text matches Redis's -READONLY reply
// so the serving layer can pass it straight to the wire.
var ErrReadOnly = errors.New("READONLY You can't write against a read only replica.")

// Session is a per-worker handle on the store: it owns a virtual clock, a
// private log appender (the DRAM write batch of Section 2.5), and a reader
// epoch slot for the lock-free get path. Not safe for concurrent use.
type Session struct {
	store *Store
	clock *simclock.Clock
	ap    *wlog.Appender
	slot  *readerSlot

	// dirty tracks the shards this session has written since its last Flush.
	// With maintenance workers enabled, Flush drains exactly these shards'
	// pending jobs — the barrier that preserves the server's group-commit
	// durable-ack contract. Lazily allocated; nil while the pool is off.
	dirty map[int]struct{}

	// PutBatch scratch, reused across calls so a steady stream of batches
	// allocates nothing.
	bhash []uint64
	bdone []bool
}

var (
	_ kvstore.Session     = (*Session)(nil)
	_ kvstore.ValueReader = (*Session)(nil)
	_ kvstore.BatchWriter = (*Session)(nil)
)

// NewSession implements kvstore.Store.
func (s *Store) NewSession(c *simclock.Clock) kvstore.Session {
	return &Session{store: s, clock: c, ap: s.log.NewAppender(), slot: s.em.register()}
}

// Clock returns the session's virtual clock.
func (se *Session) Clock() *simclock.Clock { return se.clock }

// Put implements kvstore.Session. Neither key nor value is retained: the log
// appender copies both into its batch chunk before Put returns, so the caller
// may immediately reuse the backing arrays (the RESP server passes spans of
// its per-connection read buffer straight through here).
func (se *Session) Put(key, value []byte) error {
	if se.store.readOnly.Load() {
		return ErrReadOnly
	}
	return se.write(key, value, 0)
}

// Delete implements kvstore.Session: a tombstone append plus index update.
func (se *Session) Delete(key []byte) error {
	if se.store.readOnly.Load() {
		return ErrReadOnly
	}
	return se.write(key, nil, wlog.FlagTombstone)
}

// ApplyReplicated is the replication apply entry point: one shipped log entry
// applied through the exact write path a local put takes — own-log append,
// MemTable insert, maintenance, backpressure — but exempt from the replica
// read-only gate. The entry takes a fresh local LSN; the primary-LSN ordering
// is the stream's job (internal/repl applies frames in LSN order).
func (se *Session) ApplyReplicated(key, value []byte, tombstone bool) error {
	var flags uint16
	if tombstone {
		flags = wlog.FlagTombstone
	}
	return se.write(key, value, flags)
}

func (se *Session) write(key, value []byte, flags uint16) error {
	if err := se.store.readable(); err != nil {
		return err
	}
	c := se.clock
	arrive := c.Now()
	c.Advance(device.CostHash64)
	h := se.store.hashFn(key)
	// Copying the entry into the DRAM batch buffer.
	c.Advance(int64(float64(wlog.EntrySize(len(key), len(value))) * device.CostDRAMSeqPerByte))

	sh := se.store.shardFor(h)
	if err := se.admitWrite(sh); err != nil {
		return err
	}
	sh.mu.Lock()
	opStart := c.Now()
	sh.asyncNs = 0
	lsn, err := se.ap.Append(c, h, key, value, flags)
	if err != nil {
		sh.mu.Unlock()
		return err
	}
	if sh.memMinLSN == 0 || lsn < sh.memMinLSN {
		sh.memMinLSN = lsn
	}
	if lsn > sh.memMaxLSN {
		sh.memMaxLSN = lsn
	}
	err = sh.insertMem(c, h, hashtable.MakeRef(lsn, flags&wlog.FlagTombstone != 0))
	if err == nil && sh.pendingMerge.Load() && !se.store.gpmActive.Load() {
		// A postponed Get-Protect dump is merged back once the burst is
		// over (Section 2.4).
		sh.pendingMerge.Store(false)
		if len(sh.dumped) > 0 {
			err = sh.async(c, func() error { return sh.lastLevelCompaction(c) })
		}
	}
	// Background flush/compaction time stalls this worker (its core hosts
	// the compaction thread) but does not extend the shard's critical
	// section for other workers.
	dur := c.Now() - opStart - sh.asyncNs
	sh.mu.Unlock()
	c.AdvanceTo(sh.tl.Reserve(opStart, dur))
	if err != nil {
		return err
	}
	// Tombstones are deletes, not puts: keeping the two apart lets reports
	// reconcile puts+deletes against log entries appended.
	if flags&wlog.FlagTombstone != 0 {
		se.store.stats.Deletes.Add(1)
	} else {
		se.store.stats.Puts.Add(1)
	}
	se.store.lat.put.Record(c.Now() - arrive)
	return nil
}

// PutBatch implements kvstore.BatchWriter: n independent puts with
// shard-affine dispatch. Keys are hashed up front, then grouped by destination
// shard (in first-appearance order, preserving index order within each group)
// and each group is applied under a single shard-lock acquisition and a single
// timeline reservation — the per-op lock/reserve overhead of n sequential Puts
// collapses to one per shard touched. Writes to the same key always hash to
// the same shard and keep their relative order, so the final state is
// identical to n sequential Puts. Durability is unchanged: entries land in the
// session's log batch in dispatch order and become durable on the next Flush,
// exactly like Put. On error, an arbitrary subset of the batch (never a
// same-key reordering) may have been applied; callers needing strict
// sequential failure semantics should fall back to Put. Like Put, neither keys
// nor values are retained after return.
func (se *Session) PutBatch(keys, values [][]byte) error {
	if len(keys) != len(values) {
		return errors.New("core: PutBatch: keys and values length mismatch")
	}
	if len(keys) == 0 {
		return nil
	}
	if se.store.readOnly.Load() {
		return ErrReadOnly
	}
	if err := se.store.readable(); err != nil {
		return err
	}
	c := se.clock
	arrive := c.Now()
	// Hash every key and charge the per-entry hash + DRAM batch-copy costs up
	// front, exactly as n sequential writes would.
	se.bhash = se.bhash[:0]
	se.bdone = se.bdone[:0]
	for i, key := range keys {
		c.Advance(device.CostHash64)
		se.bhash = append(se.bhash, se.store.hashFn(key))
		c.Advance(int64(float64(wlog.EntrySize(len(key), len(values[i]))) * device.CostDRAMSeqPerByte))
		se.bdone = append(se.bdone, false)
	}
	for i := range keys {
		if se.bdone[i] {
			continue
		}
		sh := se.store.shardFor(se.bhash[i])
		if err := se.admitWrite(sh); err != nil {
			return err
		}
		sh.mu.Lock()
		opStart := c.Now()
		sh.asyncNs = 0
		var err error
		applied := int64(0)
		for j := i; j < len(keys); j++ {
			if se.bdone[j] || se.store.shardFor(se.bhash[j]) != sh {
				continue
			}
			if err = se.appendLocked(sh, c, se.bhash[j], keys[j], values[j], 0); err != nil {
				break
			}
			se.bdone[j] = true
			applied++
		}
		dur := c.Now() - opStart - sh.asyncNs
		sh.mu.Unlock()
		c.AdvanceTo(sh.tl.Reserve(opStart, dur))
		se.store.stats.Puts.Add(applied)
		if err != nil {
			return err
		}
	}
	// Every op in the batch completes when the batch does; record them at the
	// batch's end-to-end latency like n puts that all waited for the slowest.
	end := c.Now()
	for range keys {
		se.store.lat.put.Record(end - arrive)
	}
	return nil
}

// admitWrite applies write-path backpressure and dirty-shard tracking before
// the shard lock is taken: a writer never blocks other writers while it waits
// for the pool to work off debt. No-op on synchronous stores.
func (se *Session) admitWrite(sh *shard) error {
	if !se.store.maintActive() {
		return nil
	}
	if err := se.throttle(sh); err != nil {
		return err
	}
	if se.dirty == nil {
		se.dirty = make(map[int]struct{})
	}
	se.dirty[sh.id] = struct{}{}
	return nil
}

// Get implements kvstore.Session: MemTable, then ABI, then (dumped tables,)
// then last level — at most three structures in the common case (Figure 6b)
// — followed by one log read for the value. The returned value is a fresh
// copy; callers that reuse a buffer across gets should prefer GetInto.
func (se *Session) Get(key []byte) ([]byte, bool, error) {
	return se.GetInto(key, nil)
}

// GetInto implements kvstore.ValueReader: the probe and log read of Get, with
// the value appended to dst (which may be nil) instead of freshly allocated.
// The returned slice is dst extended — it aliases dst's backing array whenever
// capacity suffices, so a caller looping `buf, ok, _ = se.GetInto(key, buf[:0])`
// performs zero allocations once its buffer has grown to the working value
// size. On a miss or error dst is returned unchanged. The result is always a
// copy the caller owns; it never aliases the store's log or tables.
func (se *Session) GetInto(key, dst []byte) ([]byte, bool, error) {
	if err := se.store.readable(); err != nil {
		return dst, false, err
	}
	c := se.clock
	arrive := c.Now()
	c.Advance(device.CostHash64)
	h := se.store.hashFn(key)

	sh := se.store.shardFor(h)
	// The source is counted once the outcome is known, so the per-source
	// counters (and their latency histograms) always sum consistently with
	// what callers observed. A tombstone is a definitive answer from its
	// structure and counts there even though the get reports absence.
	finish := func(src getSource) {
		se.store.stats.countGet(src)
		now := c.Now()
		se.store.lat.get[src].Record(now - arrive)
		se.store.recordGetLatency(now, now-arrive)
	}
	// Collision fallback: a 64-bit hash match does not prove key identity, so
	// a candidate whose full key (read from the log) differs is stepped past
	// and the probe resumes at older tiers. skip > 0 passes only ever run
	// with engineered collisions — the real mixer makes them a 2^-64 event —
	// so the common case is exactly one pass.
	for skip := 0; ; skip++ {
		opStart := c.Now()
		// Lock-free index probe: pin a reader epoch so no compaction recycles
		// the tables the published view references mid-probe, load the view,
		// probe, unpin. No mutex is acquired anywhere on this path — MemTable
		// and ABI probes are seqlock-validated, the persisted tables are
		// immutable, and the log read below resolves segments through atomics.
		se.slot.pin(se.store.em)
		slot, src, ok := sh.lookupView(c, sh.view.Load(), h, skip)
		se.slot.unpin()
		// Readers share the shard timeline: unlike a writer's exclusive
		// Reserve, a shared reservation never queues, it only records the
		// reader's completion so the modeled timeline knows when gets drained.
		c.AdvanceTo(sh.tl.ReserveShared(opStart, c.Now()-opStart))

		if !ok {
			finish(src)
			return dst, false, nil
		}
		e, err := se.store.log.Read(c, slot.LSN())
		if err != nil {
			if slot.Tombstone() {
				// Log GC drops settled tombstone entries while their index
				// slots survive, so the slot may reference reclaimed bytes.
				// GC only settles a tombstone that is the live version of its
				// hash — no older version survives below it — so the slot
				// stays authoritative: the key is deleted.
				finish(src)
				return dst, false, nil
			}
			finish(src)
			return dst, false, err
		}
		if !bytes.Equal(e.Key, key) {
			// A full 64-bit hash collision between distinct keys: this
			// candidate belongs to someone else, but an older tier may still
			// hold the probed key — retry past it.
			se.store.stats.HashMismatches.Add(1)
			continue
		}
		if slot.Tombstone() {
			finish(src)
			return dst, false, nil
		}
		val := append(dst, e.Value...)
		finish(src)
		return val, true, nil
	}
}

// probeEntry resolves key's current log entry under sh.mu, walking the same
// collision fallback as Get. live reports the key is present and not
// tombstoned. The read-modify-write session ops (DeleteIfPresent, IncrBy)
// call it with the shard lock held so probe and subsequent append are atomic
// with respect to every other writer.
func (sh *shard) probeEntry(c *simclock.Clock, h uint64, key []byte) (e wlog.Entry, live bool, err error) {
	v := sh.view.Load()
	for skip := 0; ; skip++ {
		slot, _, ok := sh.lookupView(c, v, h, skip)
		if !ok {
			return wlog.Entry{}, false, nil
		}
		e, err := sh.store.log.Read(c, slot.LSN())
		if err != nil {
			if slot.Tombstone() {
				// Settled tombstone whose log bytes GC reclaimed: authoritative
				// absence (see Session.Get).
				return wlog.Entry{}, false, nil
			}
			return wlog.Entry{}, false, err
		}
		if !bytes.Equal(e.Key, key) {
			sh.store.stats.HashMismatches.Add(1)
			continue
		}
		return e, !slot.Tombstone(), nil
	}
}

// appendLocked appends one entry to the session's log batch and indexes it in
// the MemTable. Called with sh.mu held; the caller has already charged the
// DRAM batch-copy cost and runs inside an opStart/Reserve bracket.
func (se *Session) appendLocked(sh *shard, c *simclock.Clock, h uint64, key, value []byte, flags uint16) error {
	lsn, err := se.ap.Append(c, h, key, value, flags)
	if err != nil {
		return err
	}
	if sh.memMinLSN == 0 || lsn < sh.memMinLSN {
		sh.memMinLSN = lsn
	}
	if lsn > sh.memMaxLSN {
		sh.memMaxLSN = lsn
	}
	err = sh.insertMem(c, h, hashtable.MakeRef(lsn, flags&wlog.FlagTombstone != 0))
	if err == nil && sh.pendingMerge.Load() && !se.store.gpmActive.Load() {
		// A postponed Get-Protect dump is merged back once the burst is
		// over (Section 2.4).
		sh.pendingMerge.Store(false)
		if len(sh.dumped) > 0 {
			err = sh.async(c, func() error { return sh.lastLevelCompaction(c) })
		}
	}
	return err
}

// DeleteIfPresent implements kvstore.ConditionalDeleter: probe and tombstone
// run under one shard-lock acquisition, so the existed answer is exact even
// with concurrent writers — the TOCTOU a Get-then-Delete pair has across
// sessions cannot happen here.
func (se *Session) DeleteIfPresent(key []byte) (bool, error) {
	if se.store.readOnly.Load() {
		return false, ErrReadOnly
	}
	if err := se.store.readable(); err != nil {
		return false, err
	}
	c := se.clock
	arrive := c.Now()
	c.Advance(device.CostHash64)
	h := se.store.hashFn(key)
	c.Advance(int64(float64(wlog.EntrySize(len(key), 0)) * device.CostDRAMSeqPerByte))

	sh := se.store.shardFor(h)
	if err := se.admitWrite(sh); err != nil {
		return false, err
	}
	sh.mu.Lock()
	opStart := c.Now()
	sh.asyncNs = 0
	_, existed, err := sh.probeEntry(c, h, key)
	if err == nil && existed {
		err = se.appendLocked(sh, c, h, key, nil, wlog.FlagTombstone)
	}
	dur := c.Now() - opStart - sh.asyncNs
	sh.mu.Unlock()
	c.AdvanceTo(sh.tl.Reserve(opStart, dur))
	if err != nil {
		return false, err
	}
	if existed {
		se.store.stats.Deletes.Add(1)
		se.store.lat.put.Record(c.Now() - arrive)
	}
	return existed, nil
}

// IncrBy implements kvstore.Incrementer: an atomic read-modify-write of a
// decimal integer value under the shard lock. A missing key counts from 0
// (Redis semantics); a non-integer value or a 64-bit overflow returns
// ErrNotInteger without appending anything.
func (se *Session) IncrBy(key []byte, delta int64) (int64, error) {
	if se.store.readOnly.Load() {
		return 0, ErrReadOnly
	}
	if err := se.store.readable(); err != nil {
		return 0, err
	}
	c := se.clock
	arrive := c.Now()
	c.Advance(device.CostHash64)
	h := se.store.hashFn(key)

	sh := se.store.shardFor(h)
	if err := se.admitWrite(sh); err != nil {
		return 0, err
	}
	sh.mu.Lock()
	opStart := c.Now()
	sh.asyncNs = 0
	e, live, err := sh.probeEntry(c, h, key)
	var next int64
	if err == nil {
		var old int64
		if live {
			old, err = strconv.ParseInt(string(e.Value), 10, 64)
			if err != nil {
				err = ErrNotInteger
			}
		}
		if err == nil && ((delta > 0 && old > math.MaxInt64-delta) || (delta < 0 && old < math.MinInt64-delta)) {
			err = ErrNotInteger
		}
		if err == nil {
			next = old + delta
			value := strconv.AppendInt(nil, next, 10)
			c.Advance(int64(float64(wlog.EntrySize(len(key), len(value))) * device.CostDRAMSeqPerByte))
			err = se.appendLocked(sh, c, h, key, value, 0)
		}
	}
	dur := c.Now() - opStart - sh.asyncNs
	sh.mu.Unlock()
	c.AdvanceTo(sh.tl.Reserve(opStart, dur))
	if err != nil {
		return 0, err
	}
	se.store.stats.Puts.Add(1)
	se.store.lat.put.Record(c.Now() - arrive)
	return next, nil
}

// Flush implements kvstore.Session: seals the session's log batch, making
// its acknowledged writes durable.
func (se *Session) Flush() error {
	if se.store.crashed.Load() {
		return ErrCrashed
	}
	// A closed store still accepts Flush: a draining server must be able to
	// seal a session's acknowledged batch even if the store was marked closed
	// while the connection was unwinding. Sealing only persists to the heap
	// arena, which outlives Close.
	if err := se.ap.Flush(se.clock); err != nil {
		return err
	}
	// Barrier: drain the maintenance jobs of every shard this session has
	// dirtied, so the frozen MemTables holding its acknowledged writes are
	// persisted (or spilled with their log entries synced) before Flush
	// returns. Other sessions' shards are not waited on.
	if se.store.maint != nil && len(se.dirty) > 0 {
		ids := make([]int, 0, len(se.dirty))
		for id := range se.dirty {
			ids = append(ids, id)
		}
		if err := se.store.maint.drain(ids); err != nil {
			return err
		}
		clear(se.dirty)
	}
	return nil
}

// Release detaches the session's appender and reader slot so a retired
// worker holds back neither the recovery watermark nor epoch reclamation.
func (se *Session) Release() error {
	se.store.em.unregister(se.slot)
	return se.ap.Release(se.clock)
}
