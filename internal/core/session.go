package core

import (
	"bytes"
	"errors"

	"chameleondb/internal/device"
	"chameleondb/internal/hashtable"
	"chameleondb/internal/kvstore"
	"chameleondb/internal/simclock"
	"chameleondb/internal/wlog"
	"chameleondb/internal/xhash"
)

// ErrCrashed is returned by operations issued between Crash and Recover.
var ErrCrashed = errors.New("core: store has crashed; call Recover first")

// ErrClosed is returned by session operations issued after Store.Close. A
// server draining connections can race a late session against shutdown; the
// session fails cleanly here instead of touching a store being discarded.
var ErrClosed = errors.New("core: store is closed")

// Session is a per-worker handle on the store: it owns a virtual clock, a
// private log appender (the DRAM write batch of Section 2.5), and a reader
// epoch slot for the lock-free get path. Not safe for concurrent use.
type Session struct {
	store *Store
	clock *simclock.Clock
	ap    *wlog.Appender
	slot  *readerSlot

	// dirty tracks the shards this session has written since its last Flush.
	// With maintenance workers enabled, Flush drains exactly these shards'
	// pending jobs — the barrier that preserves the server's group-commit
	// durable-ack contract. Lazily allocated; nil while the pool is off.
	dirty map[int]struct{}
}

var _ kvstore.Session = (*Session)(nil)

// NewSession implements kvstore.Store.
func (s *Store) NewSession(c *simclock.Clock) kvstore.Session {
	return &Session{store: s, clock: c, ap: s.log.NewAppender(), slot: s.em.register()}
}

// Clock returns the session's virtual clock.
func (se *Session) Clock() *simclock.Clock { return se.clock }

// Put implements kvstore.Session.
func (se *Session) Put(key, value []byte) error {
	return se.write(key, value, 0)
}

// Delete implements kvstore.Session: a tombstone append plus index update.
func (se *Session) Delete(key []byte) error {
	return se.write(key, nil, wlog.FlagTombstone)
}

func (se *Session) write(key, value []byte, flags uint16) error {
	if err := se.store.readable(); err != nil {
		return err
	}
	c := se.clock
	arrive := c.Now()
	c.Advance(device.CostHash64)
	h := xhash.Sum64(key)
	// Copying the entry into the DRAM batch buffer.
	c.Advance(int64(float64(wlog.EntrySize(len(key), len(value))) * device.CostDRAMSeqPerByte))

	sh := se.store.shardFor(h)
	if se.store.maintActive() {
		// Backpressure first, outside the shard lock: a put never blocks
		// other writers while it waits for the pool to work off debt.
		if err := se.throttle(sh); err != nil {
			return err
		}
		if se.dirty == nil {
			se.dirty = make(map[int]struct{})
		}
		se.dirty[sh.id] = struct{}{}
	}
	sh.mu.Lock()
	opStart := c.Now()
	sh.asyncNs = 0
	lsn, err := se.ap.Append(c, h, key, value, flags)
	if err != nil {
		sh.mu.Unlock()
		return err
	}
	if sh.memMinLSN == 0 || lsn < sh.memMinLSN {
		sh.memMinLSN = lsn
	}
	if lsn > sh.memMaxLSN {
		sh.memMaxLSN = lsn
	}
	err = sh.insertMem(c, h, hashtable.MakeRef(lsn, flags&wlog.FlagTombstone != 0))
	if err == nil && sh.pendingMerge.Load() && !se.store.gpmActive.Load() {
		// A postponed Get-Protect dump is merged back once the burst is
		// over (Section 2.4).
		sh.pendingMerge.Store(false)
		if len(sh.dumped) > 0 {
			err = sh.async(c, func() error { return sh.lastLevelCompaction(c) })
		}
	}
	// Background flush/compaction time stalls this worker (its core hosts
	// the compaction thread) but does not extend the shard's critical
	// section for other workers.
	dur := c.Now() - opStart - sh.asyncNs
	sh.mu.Unlock()
	c.AdvanceTo(sh.tl.Reserve(opStart, dur))
	if err != nil {
		return err
	}
	// Tombstones are deletes, not puts: keeping the two apart lets reports
	// reconcile puts+deletes against log entries appended.
	if flags&wlog.FlagTombstone != 0 {
		se.store.stats.Deletes.Add(1)
	} else {
		se.store.stats.Puts.Add(1)
	}
	se.store.lat.put.Record(c.Now() - arrive)
	return nil
}

// Get implements kvstore.Session: MemTable, then ABI, then (dumped tables,)
// then last level — at most three structures in the common case (Figure 6b)
// — followed by one log read for the value.
func (se *Session) Get(key []byte) ([]byte, bool, error) {
	if err := se.store.readable(); err != nil {
		return nil, false, err
	}
	c := se.clock
	arrive := c.Now()
	c.Advance(device.CostHash64)
	h := xhash.Sum64(key)

	sh := se.store.shardFor(h)
	opStart := c.Now()
	// Lock-free index probe: pin a reader epoch so no compaction recycles
	// the tables the published view references mid-probe, load the view,
	// probe, unpin. No mutex is acquired anywhere on this path — MemTable
	// and ABI probes are seqlock-validated, the persisted tables are
	// immutable, and the log read below resolves segments through atomics.
	se.slot.pin(se.store.em)
	slot, src, ok := sh.lookup(c, h)
	se.slot.unpin()
	// Readers share the shard timeline: unlike a writer's exclusive
	// Reserve, a shared reservation never queues, it only records the
	// reader's completion so the modeled timeline knows when gets drained.
	c.AdvanceTo(sh.tl.ReserveShared(opStart, c.Now()-opStart))

	// The source is counted once the outcome is known, so the per-source
	// counters (and their latency histograms) always sum consistently with
	// what callers observed. A tombstone is a definitive answer from its
	// structure and counts there even though the get reports absence.
	finish := func(src getSource) {
		se.store.stats.countGet(src)
		now := c.Now()
		se.store.lat.get[src].Record(now - arrive)
		se.store.recordGetLatency(now, now-arrive)
	}
	if !ok || slot.Tombstone() {
		finish(src)
		return nil, false, nil
	}
	e, err := se.store.log.Read(c, slot.LSN())
	if err != nil {
		finish(src)
		return nil, false, err
	}
	if !bytes.Equal(e.Key, key) {
		// A full 64-bit hash collision between distinct keys: the hashed
		// index cannot tell them apart (the same limitation every
		// hash-keyed store in the paper shares). The get reports a miss, so
		// it counts as one — the index structure did not produce a hit.
		se.store.stats.HashMismatches.Add(1)
		finish(srcMiss)
		return nil, false, nil
	}
	val := make([]byte, len(e.Value))
	copy(val, e.Value)
	finish(src)
	return val, true, nil
}

// Flush implements kvstore.Session: seals the session's log batch, making
// its acknowledged writes durable.
func (se *Session) Flush() error {
	if se.store.crashed.Load() {
		return ErrCrashed
	}
	// A closed store still accepts Flush: a draining server must be able to
	// seal a session's acknowledged batch even if the store was marked closed
	// while the connection was unwinding. Sealing only persists to the heap
	// arena, which outlives Close.
	if err := se.ap.Flush(se.clock); err != nil {
		return err
	}
	// Barrier: drain the maintenance jobs of every shard this session has
	// dirtied, so the frozen MemTables holding its acknowledged writes are
	// persisted (or spilled with their log entries synced) before Flush
	// returns. Other sessions' shards are not waited on.
	if se.store.maint != nil && len(se.dirty) > 0 {
		ids := make([]int, 0, len(se.dirty))
		for id := range se.dirty {
			ids = append(ids, id)
		}
		if err := se.store.maint.drain(ids); err != nil {
			return err
		}
		clear(se.dirty)
	}
	return nil
}

// Release detaches the session's appender and reader slot so a retired
// worker holds back neither the recovery watermark nor epoch reclamation.
func (se *Session) Release() error {
	se.store.em.unregister(se.slot)
	return se.ap.Release(se.clock)
}
