package core

import (
	"encoding/binary"
	"fmt"
	"testing"

	"chameleondb/internal/simclock"
)

// fuzzStore opens a small store with a little flushed data, so manifests and
// tables exist for the fuzzed input to collide with.
func fuzzStore(t testing.TB) *Store {
	t.Helper()
	s, err := Open(sweepConfig())
	if err != nil {
		t.Fatal(err)
	}
	se := s.NewSession(simclock.New(0))
	for i := 0; i < 64; i++ {
		if err := se.Put([]byte(fmt.Sprintf("fz-%04d", i)), []byte(fmt.Sprintf("value-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := se.Flush(); err != nil {
		t.Fatal(err)
	}
	return s
}

// FuzzManifestDecode feeds arbitrary bytes to the shard manifest decoder. Any
// input must produce a clean error or a consistent directory — never a panic,
// and never a table that points outside the arena.
func FuzzManifestDecode(f *testing.F) {
	seedStore := fuzzStore(f)
	for _, sh := range seedStore.shards {
		sh.mu.Lock()
		f.Add(sh.encodeManifest(sh.recoverLSN))
		sh.mu.Unlock()
	}
	f.Add([]byte{})
	f.Add(make([]byte, 7))
	huge := binary.LittleEndian.AppendUint64(nil, 1<<40)
	f.Add(append(huge, huge...))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Open(sweepConfig())
		if err != nil {
			t.Fatal(err)
		}
		sh := s.shards[0]
		sh.mu.Lock()
		decodeErr := sh.decodeManifest(data)
		sh.mu.Unlock()
		if decodeErr != nil {
			return
		}
		// The decoder accepted the directory: every table it opened must lie
		// inside the arena, so reads through it cannot fault.
		check := func(p *ptable) {
			if p == nil {
				return
			}
			if p.t.Offset() <= 0 || p.t.Offset()+p.t.SizeBytes() > s.arena.Capacity() {
				t.Fatalf("decoded table [%d, +%d) outside arena", p.t.Offset(), p.t.SizeBytes())
			}
		}
		check(sh.last)
		for _, d := range sh.dumped {
			check(d)
		}
		for _, lvl := range sh.levels {
			for _, p := range lvl {
				check(p)
			}
		}
	})
}

// FuzzRecover tampers with the durable image at fuzz-chosen offsets, crashes,
// and recovers. Recovery must either fail with an error or come back to a
// store that serves reads — a corrupted medium must never panic the engine.
func FuzzRecover(f *testing.F) {
	f.Add(int64(0), []byte{0xff})
	f.Add(int64(4096), []byte{0x00, 0x00, 0x00, 0x00})
	f.Add(int64(128<<10), []byte("garbage-garbage-garbage"))

	f.Fuzz(func(t *testing.T, off int64, junk []byte) {
		if len(junk) == 0 || len(junk) > 4096 {
			return
		}
		s := fuzzStore(t)
		if off < 0 {
			off = -off
		}
		off %= s.arena.Capacity()
		s.arena.TamperDurable(off, junk)
		s.Crash()
		if err := s.Recover(simclock.New(0)); err != nil {
			return // a clean refusal is a valid outcome
		}
		se := s.NewSession(simclock.New(0))
		for i := 0; i < 64; i += 7 {
			// Values may be lost or stale depending on what was smashed; the
			// read path just must not panic or fault.
			if _, _, err := se.Get([]byte(fmt.Sprintf("fz-%04d", i))); err != nil {
				return
			}
		}
	})
}
