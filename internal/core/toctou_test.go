package core

import (
	"fmt"
	"sync"
	"testing"

	"chameleondb/internal/simclock"
)

// TestDeleteIfPresentRace is the DEL-count TOCTOU regression: two sessions
// race a conditional delete of the same key; exactly one may observe it. A
// probe-then-Delete pair would let both observe the key and double-count.
// Run under -race in CI.
func TestDeleteIfPresentRace(t *testing.T) {
	s := openTest(t)
	writer := s.NewSession(simclock.New(0)).(*Session)
	se1 := s.NewSession(simclock.New(0)).(*Session)
	se2 := s.NewSession(simclock.New(0)).(*Session)

	for iter := 0; iter < 300; iter++ {
		k := []byte(fmt.Sprintf("race-%05d", iter))
		if err := writer.Put(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		results := [2]bool{}
		errs := [2]error{}
		for i, se := range []*Session{se1, se2} {
			wg.Add(1)
			go func(i int, se *Session) {
				defer wg.Done()
				results[i], errs[i] = se.DeleteIfPresent(k)
			}(i, se)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("iter %d racer %d: %v", iter, i, err)
			}
		}
		if results[0] == results[1] {
			t.Fatalf("iter %d: racers reported existed=%v,%v — exactly one must win", iter, results[0], results[1])
		}
		if _, ok, _ := writer.Get(k); ok {
			t.Fatalf("iter %d: key survived both deletes", iter)
		}
	}
}

func TestDeleteIfPresentBasic(t *testing.T) {
	s := openTest(t)
	se := s.NewSession(simclock.New(0)).(*Session)
	if existed, err := se.DeleteIfPresent(key(1)); err != nil || existed {
		t.Fatalf("delete of absent key = %v, %v", existed, err)
	}
	se.Put(key(1), val(1))
	if existed, err := se.DeleteIfPresent(key(1)); err != nil || !existed {
		t.Fatalf("delete of present key = %v, %v", existed, err)
	}
	if existed, err := se.DeleteIfPresent(key(1)); err != nil || existed {
		t.Fatalf("second delete = %v, %v; tombstone must read as absent", existed, err)
	}
	if _, ok, _ := se.Get(key(1)); ok {
		t.Fatal("key readable after conditional delete")
	}
	// Deleting a flushed key: the probe walks deeper tiers.
	c := simclock.New(0)
	se.Put(key(2), val(2))
	if err := s.FlushAll(c); err != nil {
		t.Fatal(err)
	}
	if existed, err := se.DeleteIfPresent(key(2)); err != nil || !existed {
		t.Fatalf("delete of flushed key = %v, %v", existed, err)
	}
	if _, ok, _ := se.Get(key(2)); ok {
		t.Fatal("flushed key readable after conditional delete")
	}
}

func TestIncrBySemantics(t *testing.T) {
	s := openTest(t)
	se := s.NewSession(simclock.New(0)).(*Session)
	// Absent key counts from zero (Redis semantics).
	if n, err := se.IncrBy(key(1), 5); err != nil || n != 5 {
		t.Fatalf("IncrBy absent = %d, %v", n, err)
	}
	if n, err := se.IncrBy(key(1), -8); err != nil || n != -3 {
		t.Fatalf("IncrBy = %d, %v; want -3", n, err)
	}
	if got, ok, _ := se.Get(key(1)); !ok || string(got) != "-3" {
		t.Fatalf("counter value = %q, %v", got, ok)
	}
	// Non-integer value refuses without clobbering.
	se.Put(key(2), []byte("not a number"))
	if _, err := se.IncrBy(key(2), 1); err != ErrNotInteger {
		t.Fatalf("IncrBy on text = %v, want ErrNotInteger", err)
	}
	if got, _, _ := se.Get(key(2)); string(got) != "not a number" {
		t.Fatalf("failed incr clobbered value: %q", got)
	}
	// Overflow in both directions refuses and preserves.
	se.Put(key(3), []byte("9223372036854775807"))
	if _, err := se.IncrBy(key(3), 1); err != ErrNotInteger {
		t.Fatalf("overflow = %v, want ErrNotInteger", err)
	}
	if got, _, _ := se.Get(key(3)); string(got) != "9223372036854775807" {
		t.Fatalf("overflowed incr clobbered value: %q", got)
	}
	se.Put(key(4), []byte("-9223372036854775808"))
	if _, err := se.IncrBy(key(4), -1); err != ErrNotInteger {
		t.Fatalf("underflow = %v, want ErrNotInteger", err)
	}
	// A flushed counter keeps counting.
	c := simclock.New(0)
	if err := s.FlushAll(c); err != nil {
		t.Fatal(err)
	}
	if n, err := se.IncrBy(key(1), 3); err != nil || n != 0 {
		t.Fatalf("IncrBy after flush = %d, %v; want 0", n, err)
	}
}

// TestIncrByConcurrent: increments are atomic under the shard lock, so N
// racing sessions never lose an update. Run under -race in CI.
func TestIncrByConcurrent(t *testing.T) {
	s := openTest(t)
	const workers, per = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			se := s.NewSession(simclock.New(0)).(*Session)
			for i := 0; i < per; i++ {
				if _, err := se.IncrBy([]byte("ctr"), 1); err != nil {
					t.Errorf("incr: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	se := s.NewSession(simclock.New(0)).(*Session)
	got, ok, err := se.Get([]byte("ctr"))
	if err != nil || !ok || string(got) != fmt.Sprint(workers*per) {
		t.Fatalf("counter = %q, %v, %v; want %d", got, ok, err, workers*per)
	}
}
