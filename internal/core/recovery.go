package core

import (
	"chameleondb/internal/device"
	"chameleondb/internal/hashtable"
	"chameleondb/internal/obs"
	"chameleondb/internal/simclock"
	"chameleondb/internal/wlog"
)

// Recover rebuilds the store after a crash (Sections 2.1, 2.3):
//
//  1. Each shard's manifest is read and its persisted table directory
//     reattached.
//  2. The storage log is scanned from the oldest shard watermark; entries
//     newer than their shard's watermark and not superseded by a persisted
//     table are replayed into the MemTables (spilling/flushing as in normal
//     operation). After this step the store is ready to serve requests —
//     the elapsed virtual time so far is Table 4's restart time.
//  3. The ABIs are rebuilt from the persisted upper tables, restoring the
//     bypass-read fast path. The paper does this lazily alongside
//     foreground traffic; here it completes inside Recover, and the extra
//     time is reported separately (RecoverTimes).
//
// In normal operation the watermarks trail the log tail by at most the
// MemTable contents, so step 2 is quick. After a Write-Intensive Mode or
// Get-Protect Mode crash, everything spilled into the ABI since the last
// compaction must be re-scanned, which is exactly the longer restart the
// paper trades for put throughput (Figure 15 discussion).
func (s *Store) Recover(c *simclock.Clock) error {
	start := c.Now()
	minLSN := s.log.Tail()
	for _, sh := range s.shards {
		sh.mu.Lock()
		err := sh.readManifest(c)
		if err == nil {
			// The reattached table directory replaces the post-crash empty
			// view; replay and the ABI rebuild then mutate the same mem/abi
			// tables in place, so no further publish is needed until the
			// store is serving again.
			sh.publishView()
			sh.replayFilter = sh.recoverLSN
			if sh.recoverLSN < minLSN {
				minLSN = sh.recoverLSN
			}
		}
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}

	s.replayPos.Store(minLSN)
	defer s.replayPos.Store(int64(1) << 62)
	var replayErr error
	err := s.log.Scan(c, minLSN, func(e wlog.Entry) bool {
		s.replayPos.Store(e.LSN)
		c.Advance(device.CostHash64)
		sh := s.shardFor(e.Hash)
		if e.LSN < sh.replayFilter {
			return true
		}
		// Entries newer than anything ever persisted to a table cannot be
		// superseded; only the conservative over-replay window needs the
		// expensive table probes.
		if e.LSN <= sh.persistedMaxLSN && sh.supersededBy(c, e.Hash, e.LSN) {
			return true
		}
		if sh.memMinLSN == 0 || e.LSN < sh.memMinLSN {
			sh.memMinLSN = e.LSN
		}
		if e.LSN > sh.memMaxLSN {
			sh.memMaxLSN = e.LSN
		}
		if replayErr = sh.insertMem(c, e.Hash, hashtable.MakeRef(e.LSN, e.Tombstone())); replayErr != nil {
			return false
		}
		return true
	})
	if err == nil {
		err = replayErr
	}
	if err != nil {
		return err
	}
	s.replayPos.Store(int64(1) << 62)
	// Re-checkpoint every shard so a second crash does not rescan the same
	// window (replay-time flushes left some watermarks clamped).
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.persistManifest(c)
		sh.mu.Unlock()
	}
	s.crashed.Store(false)
	s.lastRecoverReadyNs = c.Now() - start
	s.trace.Emit(c.Now(), obs.EvRecoverReady, -1, s.lastRecoverReadyNs)

	// Step 3: rebuild the ABIs from the upper levels, newest table first so
	// the newest version of each key wins; entries replayed from the log
	// into the ABI (WIM recovery) are newer still and are preserved by
	// InsertIfAbsent.
	if !s.cfg.DisableABI {
		for _, sh := range s.shards {
			sh.mu.Lock()
			for lvl := 0; lvl < len(sh.levels); lvl++ {
				tables := sh.levels[lvl]
				for i := len(tables) - 1; i >= 0; i-- {
					tables[i].t.ChargeScan(c)
					tables[i].t.Iterate(func(slot hashtable.Slot) bool {
						c.Advance(device.CostDRAMRandAccess)
						sh.abi.InsertIfAbsent(slot.Hash, slot.Ref)
						return true
					})
				}
			}
			sh.mu.Unlock()
		}
	}
	// The Pmem-LSM variants' volatile accelerators are likewise rebuilt
	// after the store is ready (filters and pins are not persisted).
	if s.cfg.BloomFilters || s.cfg.PinUppers {
		for _, sh := range s.shards {
			sh.mu.Lock()
			for lvl := range sh.levels {
				for _, p := range sh.levels[lvl] {
					p.t.ChargeScan(c)
					p.build(c, s.cfg.BloomFilters, s.cfg.PinUppers)
				}
			}
			for _, p := range sh.dumped {
				p.t.ChargeScan(c)
				p.build(c, s.cfg.BloomFilters, false)
			}
			if sh.last != nil {
				sh.last.t.ChargeScan(c)
				sh.last.build(c, s.cfg.BloomFilters, false)
			}
			sh.mu.Unlock()
		}
	}
	s.lastRecoverFullNs = c.Now() - start
	s.trace.Emit(c.Now(), obs.EvRecoverFull, -1, s.lastRecoverFullNs)
	// Reopen the maintenance pool last: replay above ran synchronously
	// (crashed was still set when entries were inserted), and the rebuild
	// loops must not race background merges.
	if s.maint != nil {
		s.maint.resume()
	}
	return nil
}

// supersededBy reports whether any persisted table already holds an entry
// for hash h at least as new as lsn, in which case a replayed log entry must
// be skipped (it would otherwise shadow a newer compacted version). Each
// structure class (upper levels, dumped tables, last level) is probed
// newest-first with an early exit — the first hit within a class is that
// class's newest version — and any class's newest version decides. Called
// during recovery, only for entries at or below persistedMaxLSN.
func (sh *shard) supersededBy(c *simclock.Clock, h uint64, lsn int64) bool {
	newest := func(p *ptable) (int64, bool) {
		if p == nil {
			return 0, false
		}
		slot, ok := p.t.Get(c, h)
		if !ok {
			return 0, false
		}
		return slot.LSN(), true
	}
	// Upper levels, newest table first: the first hit is the class's
	// newest version, so stop there.
	upperDone := false
	for lvl := 0; lvl < len(sh.levels) && !upperDone; lvl++ {
		tables := sh.levels[lvl]
		for i := len(tables) - 1; i >= 0; i-- {
			if v, ok := newest(tables[i]); ok {
				if v >= lsn {
					return true
				}
				upperDone = true
				break
			}
		}
	}
	for i := len(sh.dumped) - 1; i >= 0; i-- {
		if v, ok := newest(sh.dumped[i]); ok {
			if v >= lsn {
				return true
			}
			break
		}
	}
	if v, ok := newest(sh.last); ok && v >= lsn {
		return true
	}
	return false
}
