package core

import (
	"fmt"
	"testing"

	"chameleondb/internal/simclock"
)

func openTest(t *testing.T, mutate ...func(*Config)) *Store {
	t.Helper()
	cfg := TestConfig()
	for _, m := range mutate {
		m(&cfg)
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func key(i int) []byte  { return []byte(fmt.Sprintf("key-%08d", i)) }
func val(i int) []byte  { return []byte(fmt.Sprintf("val-%08d", i)) }
func val2(i int) []byte { return []byte(fmt.Sprintf("VAL2-%07d", i)) }

func TestPutGetBasic(t *testing.T) {
	s := openTest(t)
	se := s.NewSession(simclock.New(0))
	if err := se.Put(key(1), val(1)); err != nil {
		t.Fatal(err)
	}
	got, ok, err := se.Get(key(1))
	if err != nil || !ok || string(got) != string(val(1)) {
		t.Fatalf("Get = %q, %v, %v", got, ok, err)
	}
	if _, ok, _ := se.Get(key(2)); ok {
		t.Fatal("found absent key")
	}
}

func TestUpdateOverwrites(t *testing.T) {
	s := openTest(t)
	se := s.NewSession(simclock.New(0))
	se.Put(key(1), val(1))
	se.Put(key(1), val2(1))
	got, ok, _ := se.Get(key(1))
	if !ok || string(got) != string(val2(1)) {
		t.Fatalf("after update Get = %q, %v", got, ok)
	}
}

func TestDelete(t *testing.T) {
	s := openTest(t)
	se := s.NewSession(simclock.New(0))
	se.Put(key(1), val(1))
	if err := se.Delete(key(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := se.Get(key(1)); ok {
		t.Fatal("deleted key still readable")
	}
	// Delete of an absent key is fine (blind tombstone).
	if err := se.Delete(key(9999)); err != nil {
		t.Fatal(err)
	}
	// Re-insert after delete.
	se.Put(key(1), val2(1))
	if got, ok, _ := se.Get(key(1)); !ok || string(got) != string(val2(1)) {
		t.Fatal("reinsert after delete failed")
	}
}

func TestFlushAndCompactionsTriggered(t *testing.T) {
	s := openTest(t)
	se := s.NewSession(simclock.New(0))
	const n = 20000
	for i := 0; i < n; i++ {
		if err := se.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Flushes == 0 {
		t.Fatal("no MemTable flushes after 20k puts into tiny shards")
	}
	if st.UpperCompactions == 0 && st.LastCompactions == 0 {
		t.Fatal("no compactions triggered")
	}
	if st.LastCompactions == 0 {
		t.Fatal("expected last-level compactions with 3-level tiny shards")
	}
	// Everything must still be readable, wherever it landed.
	for i := 0; i < n; i += 97 {
		got, ok, err := se.Get(key(i))
		if err != nil || !ok || string(got) != string(val(i)) {
			t.Fatalf("key %d unreadable after compactions: %q %v %v", i, got, ok, err)
		}
	}
	// With the ABI enabled, gets must never touch upper levels in Pmem.
	if st2 := s.Stats(); st2.GetUpper != 0 {
		t.Fatalf("ABI bypass violated: %d upper-level probes", st2.GetUpper)
	}
}

func TestGetSourcesDistribution(t *testing.T) {
	s := openTest(t)
	se := s.NewSession(simclock.New(0))
	const n = 20000
	for i := 0; i < n; i++ {
		se.Put(key(i), val(i))
	}
	for i := 0; i < n; i++ {
		if _, ok, _ := se.Get(key(i)); !ok {
			t.Fatalf("lost key %d", i)
		}
	}
	st := s.Stats()
	if st.GetLast == 0 {
		t.Fatal("no last-level hits; compactions did not move data down")
	}
	if st.GetABI == 0 && st.GetMemTable == 0 {
		t.Fatal("no DRAM hits at all")
	}
	if st.GetMiss != 0 {
		t.Fatalf("%d unexpected misses", st.GetMiss)
	}
}

func TestLevelByLevelMode(t *testing.T) {
	s := openTest(t, func(c *Config) { c.CompactionMode = LevelByLevel })
	se := s.NewSession(simclock.New(0))
	const n = 15000
	for i := 0; i < n; i++ {
		se.Put(key(i), val(i))
	}
	for i := 0; i < n; i += 53 {
		got, ok, _ := se.Get(key(i))
		if !ok || string(got) != string(val(i)) {
			t.Fatalf("key %d lost in level-by-level mode", i)
		}
	}
	if s.Stats().UpperCompactions == 0 {
		t.Fatal("no upper compactions in level-by-level mode")
	}
}

func TestDisableABIStillCorrect(t *testing.T) {
	s := openTest(t, func(c *Config) { c.DisableABI = true })
	se := s.NewSession(simclock.New(0))
	const n = 12000
	for i := 0; i < n; i++ {
		se.Put(key(i), val(i))
	}
	for i := 0; i < n; i += 31 {
		got, ok, _ := se.Get(key(i))
		if !ok || string(got) != string(val(i)) {
			t.Fatalf("key %d lost without ABI", i)
		}
	}
	st := s.Stats()
	if st.GetABI != 0 {
		t.Fatal("ABI hits reported with ABI disabled")
	}
	if st.GetUpper == 0 {
		t.Fatal("expected upper-level Pmem probes without ABI")
	}
}

func TestABIReducesGetLatency(t *testing.T) {
	// The paper's core claim (Figure 6): with the ABI, gets probe at most
	// three structures, so mean get time must beat the multi-level walk.
	run := func(disable bool) int64 {
		cfg := TestConfig()
		cfg.DisableABI = disable
		s, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		se := s.NewSession(simclock.New(0))
		const n = 12000
		for i := 0; i < n; i++ {
			se.Put(key(i), val(i))
		}
		start := se.Clock().Now()
		for i := 0; i < n; i += 3 {
			se.Get(key(i))
		}
		return se.Clock().Now() - start
	}
	with, without := run(false), run(true)
	if with >= without {
		t.Fatalf("ABI did not reduce get time: with=%d without=%d", with, without)
	}
}

func TestWriteIntensiveMode(t *testing.T) {
	s := openTest(t, func(c *Config) { c.WriteIntensive = true })
	se := s.NewSession(simclock.New(0))
	const n = 15000
	for i := 0; i < n; i++ {
		se.Put(key(i), val(i))
	}
	st := s.Stats()
	if st.Spills == 0 {
		t.Fatal("write-intensive mode never spilled to ABI")
	}
	if st.Flushes != 0 {
		t.Fatalf("write-intensive mode flushed %d L0 tables", st.Flushes)
	}
	if st.LastCompactions == 0 {
		t.Fatal("ABI-full should have forced last-level compactions")
	}
	for i := 0; i < n; i += 41 {
		got, ok, _ := se.Get(key(i))
		if !ok || string(got) != string(val(i)) {
			t.Fatalf("key %d lost in WIM", i)
		}
	}
}

func TestWriteIntensiveFasterPuts(t *testing.T) {
	// Figure 15: WIM improves put throughput by skipping upper-level
	// maintenance.
	run := func(wim bool) int64 {
		cfg := TestConfig()
		cfg.WriteIntensive = wim
		s, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		se := s.NewSession(simclock.New(0))
		for i := 0; i < 20000; i++ {
			se.Put(key(i), val(i))
		}
		return se.Clock().Now()
	}
	normal, wim := run(false), run(true)
	if wim >= normal {
		t.Fatalf("WIM not faster: normal=%d wim=%d", normal, wim)
	}
}

func TestDirectFasterThanLevelByLevel(t *testing.T) {
	// Figure 15: Direct Compaction reduces compaction overhead.
	run := func(mode CompactionMode) int64 {
		cfg := TestConfig()
		cfg.CompactionMode = mode
		s, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		se := s.NewSession(simclock.New(0))
		for i := 0; i < 30000; i++ {
			se.Put(key(i), val(i))
		}
		return se.Clock().Now()
	}
	lbl, direct := run(LevelByLevel), run(DirectCompaction)
	if direct >= lbl {
		t.Fatalf("direct compaction not faster: lbl=%d direct=%d", lbl, direct)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Shards = 3 },
		func(c *Config) { c.Shards = 0 },
		func(c *Config) { c.MemTableSlots = 100 },
		func(c *Config) { c.Levels = 1 },
		func(c *Config) { c.Ratio = 1 },
		func(c *Config) { c.LoadFactorMin = 0.9; c.LoadFactorMax = 0.5 },
		func(c *Config) { c.LogBytes = c.ArenaBytes * 2 },
		func(c *Config) { c.GetProtect.Enabled = true; c.GetProtect.EnterThresholdNs = 0 },
	}
	for i, m := range bad {
		cfg := TestConfig()
		m(&cfg)
		if _, err := Open(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDefaultConfigGeometry(t *testing.T) {
	cfg := DefaultConfig()
	// Table 1 relationships.
	if cfg.upperCapacitySlots() != 512*(4+12+48) {
		t.Fatalf("upper capacity = %d slots", cfg.upperCapacitySlots())
	}
	if cfg.lastLevelSlots() != 512*64 {
		t.Fatalf("last level = %d slots", cfg.lastLevelSlots())
	}
	// ABI (512 KB = 32768 slots) holds the full upper levels at max load.
	maxUpper := float64(cfg.upperCapacitySlots()) * cfg.LoadFactorMax
	if maxUpper > float64(cfg.ABISlots)*cfg.ABIFullFraction {
		t.Fatalf("ABI (%d slots) cannot cover upper levels (%.0f entries)", cfg.ABISlots, maxUpper)
	}
}

func TestRandomizedLoadFactorsDiffer(t *testing.T) {
	cfg := TestConfig()
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	seen := map[float64]bool{}
	for i := 0; i < cfg.Shards; i++ {
		lf := cfg.loadFactorFor(i)
		if lf < cfg.LoadFactorMin || lf > cfg.LoadFactorMax {
			t.Fatalf("shard %d load factor %v out of range", i, lf)
		}
		seen[lf] = true
	}
	if len(seen) < 2 {
		t.Fatal("randomized load factors are not randomized")
	}
	cfg.UniformLoadFactor = true
	if cfg.loadFactorFor(0) != cfg.loadFactorFor(5) {
		t.Fatal("uniform mode should give identical thresholds")
	}
}

func TestDRAMFootprintAccounting(t *testing.T) {
	s := openTest(t)
	fp := s.DRAMFootprint()
	cfg := s.Config()
	wantMin := int64(cfg.Shards) * int64(cfg.MemTableSlots) * 16
	if fp < wantMin {
		t.Fatalf("footprint %d below MemTable floor %d", fp, wantMin)
	}
	s2 := openTest(t, func(c *Config) { c.DisableABI = true })
	if s2.DRAMFootprint() >= fp {
		t.Fatal("disabling the ABI should shrink the footprint")
	}
}

func TestOperationsChargeVirtualTime(t *testing.T) {
	s := openTest(t)
	c := simclock.New(0)
	se := s.NewSession(c)
	se.Put(key(1), val(1))
	afterPut := c.Now()
	if afterPut == 0 {
		t.Fatal("put charged no time")
	}
	se.Get(key(1))
	if c.Now() == afterPut {
		t.Fatal("get charged no time")
	}
}

func TestSessionFlushDurability(t *testing.T) {
	s := openTest(t)
	c := simclock.New(0)
	se := s.NewSession(c)
	se.Put(key(1), val(1))
	if err := se.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Crash()
	if err := s.Recover(simclock.New(0)); err != nil {
		t.Fatal(err)
	}
	se2 := s.NewSession(simclock.New(0))
	got, ok, err := se2.Get(key(1))
	if err != nil || !ok || string(got) != string(val(1)) {
		t.Fatalf("flushed put lost across crash: %q %v %v", got, ok, err)
	}
}

func TestCrashWithoutFlushLosesTail(t *testing.T) {
	s := openTest(t)
	se := s.NewSession(simclock.New(0))
	se.Put(key(1), val(1)) // buffered in the 4 KB batch, not yet durable
	s.Crash()
	if err := s.Recover(simclock.New(0)); err != nil {
		t.Fatal(err)
	}
	se2 := s.NewSession(simclock.New(0))
	if _, ok, _ := se2.Get(key(1)); ok {
		t.Fatal("unflushed put survived crash (durability model broken)")
	}
}

func TestCrashedStoreRejectsOps(t *testing.T) {
	s := openTest(t)
	se := s.NewSession(simclock.New(0))
	se.Put(key(1), val(1))
	s.Crash()
	if err := se.Put(key(2), val(2)); err == nil {
		t.Fatal("put accepted on crashed store")
	}
	if _, _, err := se.Get(key(1)); err == nil {
		t.Fatal("get accepted on crashed store")
	}
	if err := se.Flush(); err == nil {
		t.Fatal("flush accepted on crashed store")
	}
}
