package core

import (
	"fmt"
	"math/rand"
	"testing"

	"chameleondb/internal/simclock"
)

func openGC(t *testing.T) *Store {
	t.Helper()
	cfg := TestConfig()
	cfg.ArenaBytes = 128 << 20
	cfg.LogBytes = 64 << 20
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCompactLogReclaimsGarbage(t *testing.T) {
	s := openGC(t)
	se := s.NewSession(simclock.New(0))
	// Overwrite a small keyspace many times: the head of the log is almost
	// entirely dead versions.
	const keyspace = 2000
	for round := 0; round < 20; round++ {
		for i := 0; i < keyspace; i++ {
			if err := se.Put(key(i), []byte(fmt.Sprintf("round-%02d-%06d", round, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	se.Flush()
	liveBefore := s.Log().LiveBytes()

	c := simclock.New(0)
	freed, err := s.CompactLog(c, liveBefore/2)
	if err != nil {
		t.Fatal(err)
	}
	if freed <= 0 {
		t.Fatal("GC freed nothing despite heavy overwrite garbage")
	}
	if c.Now() <= 0 {
		t.Fatal("GC charged no virtual time")
	}
	st := s.Stats()
	if st.LogGCs != 1 || st.LogGCDropped == 0 {
		t.Fatalf("GC stats: %+v", st)
	}
	// Every key must still read its newest value.
	for i := 0; i < keyspace; i++ {
		got, ok, err := se.Get(key(i))
		if err != nil || !ok || string(got) != fmt.Sprintf("round-19-%06d", i) {
			t.Fatalf("key %d after GC = %q %v %v", i, got, ok, err)
		}
	}
}

func TestCompactLogRelocatesLiveData(t *testing.T) {
	s := openGC(t)
	se := s.NewSession(simclock.New(0))
	// Unique keys only: everything at the head is live and must relocate.
	// Values are sized so the log spans several segments.
	const n = 20000
	payload := make([]byte, 256)
	for i := 0; i < n; i++ {
		copy(payload, key(i))
		if err := se.Put(key(i), payload); err != nil {
			t.Fatal(err)
		}
	}
	se.Flush()
	c := simclock.New(0)
	freed, err := s.CompactLog(c, s.Log().SegmentSize()*2)
	if err != nil {
		t.Fatal(err)
	}
	if freed <= 0 {
		t.Fatal("GC freed nothing despite multi-segment log")
	}
	if s.Stats().LogGCRelocated == 0 {
		t.Fatal("no live entries relocated")
	}
	for i := 0; i < n; i += 97 {
		got, ok, _ := se.Get(key(i))
		if !ok || len(got) != 256 || string(got[:len(key(i))]) != string(key(i)) {
			t.Fatalf("key %d lost in relocation", i)
		}
	}
}

func TestCompactLogSurvivesCrash(t *testing.T) {
	s := openGC(t)
	se := s.NewSession(simclock.New(0))
	const keyspace = 3000
	r := rand.New(rand.NewSource(7))
	state := map[int]string{}
	for op := 0; op < 40000; op++ {
		i := r.Intn(keyspace)
		v := fmt.Sprintf("v-%06d-%06d", i, op)
		if err := se.Put(key(i), []byte(v)); err != nil {
			t.Fatal(err)
		}
		state[i] = v
	}
	se.Flush()
	c := simclock.New(0)
	if _, err := s.CompactLog(c, s.Log().LiveBytes()/2); err != nil {
		t.Fatal(err)
	}
	// Crash right after GC: the checkpoint must have made the relocations
	// durable and moved every watermark past the freed region.
	s.Crash()
	if err := s.Recover(simclock.New(0)); err != nil {
		t.Fatal(err)
	}
	se2 := s.NewSession(simclock.New(0))
	for i, want := range state {
		got, ok, err := se2.Get(key(i))
		if err != nil || !ok || string(got) != want {
			t.Fatalf("key %d after GC+crash = %q %v %v, want %q", i, got, ok, err, want)
		}
	}
}

func TestCompactLogWithDeletes(t *testing.T) {
	s := openGC(t)
	se := s.NewSession(simclock.New(0))
	const n = 5000
	for i := 0; i < n; i++ {
		se.Put(key(i), val(i))
	}
	for i := 0; i < n; i += 2 {
		se.Delete(key(i))
	}
	se.Flush()
	if _, err := s.CompactLog(simclock.New(0), s.Log().LiveBytes()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		_, ok, err := se.Get(key(i))
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 && ok {
			t.Fatalf("deleted key %d resurrected by GC", i)
		}
		if i%2 == 1 && !ok {
			t.Fatalf("live key %d lost by GC", i)
		}
	}
}

func TestCompactLogEnablesReuse(t *testing.T) {
	// The point of GC: a workload of overwrites can run forever in a
	// bounded log.
	cfg := TestConfig()
	cfg.ArenaBytes = 32 << 20
	cfg.LogBytes = 8 << 20
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	se := s.NewSession(simclock.New(0))
	const keyspace = 1000
	gcs := 0
	for op := 0; op < 400000; op++ {
		err := se.Put(key(op%keyspace), []byte(fmt.Sprintf("v%08d", op)))
		if err != nil {
			// Log full: reclaim and retry.
			if _, gcErr := s.CompactLog(simclock.New(0), s.Log().LiveBytes()/2); gcErr != nil {
				t.Fatalf("op %d: GC: %v (put err %v)", op, gcErr, err)
			}
			gcs++
			if err = se.Put(key(op%keyspace), []byte(fmt.Sprintf("v%08d", op))); err != nil {
				t.Fatalf("op %d: put after GC: %v", op, err)
			}
		}
	}
	if gcs == 0 {
		t.Fatal("workload never filled the log; test is vacuous")
	}
	t.Logf("ran 400k overwrites in an 8 MB log with %d GCs", gcs)
}

func TestCompactLogSparesUnsealedBatchChunk(t *testing.T) {
	// Regression: when a session's unsealed batch chunk ends exactly at a
	// segment boundary, the log tail sits on the boundary too, and GC capped
	// only by Tail() would free the segment the chunk lives in — the session
	// then keeps appending through its cached arena offset into freed (and
	// reused) space, and reads of those entries fail with "segment was
	// reclaimed". GC must cap reclamation at MinNextLSN instead.
	cfg := TestConfig()
	cfg.ArenaBytes = 4 << 20
	cfg.LogBytes = 128 << 10 // 32 KB segments, 4 KB chunks
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	se := s.NewSession(simclock.New(0))
	segSize := s.Log().SegmentSize()
	// Append until the session's (unsealed) chunk is the last chunk of a
	// segment: the tail is then exactly on the segment boundary.
	n := 0
	for ; n < 100000; n++ {
		if err := se.Put(key(n), []byte("0123456789abcdefghijkl")); err != nil {
			t.Fatal(err)
		}
		if s.Log().Tail()%segSize == 0 {
			break
		}
	}
	if s.Log().Tail()%segSize != 0 {
		t.Fatal("never reached a segment-boundary tail; test is vacuous")
	}
	if _, err := s.CompactLog(simclock.New(0), cfg.LogBytes); err != nil {
		t.Fatal(err)
	}
	// The session's batch chunk must still be writable and durable.
	if err := se.Put(key(n+1), []byte("after-gc")); err != nil {
		t.Fatal(err)
	}
	if err := se.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, n, n + 1} {
		if got, ok, err := se.Get(key(i)); err != nil || !ok {
			t.Fatalf("key %d lost after boundary GC: %q %v %v", i, got, ok, err)
		}
	}
}

func TestCompactLogSealsBeforeRelocating(t *testing.T) {
	// Regression: GC re-appends live entries at the log tail. If a session
	// still held an open batch chunk below the tail, its NEXT put would take
	// a lower LSN than the relocated copy of the key's OLD version — and
	// recovery's LSN-ordered replay would resurrect the old version over the
	// newer, flushed one. GC must seal all private chunks first.
	cfg := TestConfig()
	cfg.ArenaBytes = 4 << 20
	cfg.LogBytes = 128 << 10 // 32 KB segments, 4 KB chunks
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	se := s.NewSession(simclock.New(0))
	victim := []byte("victim-key")
	if err := se.Put(victim, []byte("old-version")); err != nil {
		t.Fatal(err)
	}
	// Push the session's open chunk two segments past the victim's, leaving
	// it unsealed mid-chunk (GC never reclaims the open chunk's own segment,
	// so the victim must sit strictly below it).
	segSize := s.Log().SegmentSize()
	firstSeg := s.Log().Tail() / segSize
	for i := 0; s.Log().Tail()/segSize < firstSeg+2 && i < 100000; i++ {
		if err := se.Put(key(i), []byte("filler-filler-filler-filler")); err != nil {
			t.Fatal(err)
		}
	}
	if err := se.Put(key(100001), []byte("keep chunk open")); err != nil {
		t.Fatal(err)
	}
	// GC relocates the victim's live old version to the tail.
	if _, err := s.CompactLog(simclock.New(0), cfg.LogBytes); err != nil {
		t.Fatal(err)
	}
	// The newer version, acknowledged after GC and explicitly flushed, must
	// win recovery over the relocated old copy.
	if err := se.Put(victim, []byte("new-version")); err != nil {
		t.Fatal(err)
	}
	if err := se.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Crash()
	if err := s.Recover(simclock.New(0)); err != nil {
		t.Fatal(err)
	}
	se2 := s.NewSession(simclock.New(0))
	got, ok, err := se2.Get(victim)
	if err != nil || !ok || string(got) != "new-version" {
		t.Fatalf("victim after GC+overwrite+crash = %q %v %v, want %q", got, ok, err, "new-version")
	}
}

func TestCompactLogCrashedStore(t *testing.T) {
	s := openGC(t)
	s.Crash()
	if _, err := s.CompactLog(simclock.New(0), 1<<20); err == nil {
		t.Fatal("GC on crashed store should fail")
	}
}
