package core

import (
	"testing"

	"chameleondb/internal/simclock"
	"chameleondb/internal/xhash"
)

// collideKeys overrides the store's hash seam so the named keys all map to
// one engineered hash (every other key keeps the real hash). The hash's top
// bits pick a fixed shard; log entries persist the engineered value, so
// recovery replays stay self-consistent.
const collisionHash = uint64(0xC011_1DE5_0000_0001)

func collideKeys(s *Store, keys ...string) {
	forced := make(map[string]bool, len(keys))
	for _, k := range keys {
		forced[k] = true
	}
	s.hashFn = func(k []byte) uint64 {
		if forced[string(k)] {
			return collisionHash
		}
		return xhash.Sum64(k)
	}
}

// freezeShard manually rotates the shard's MemTable into the frozen list —
// the state the async pipeline passes through between a put-side freeze and
// the background flush — without needing a worker pool.
func freezeShard(s *Store, h uint64) {
	sh := s.shardFor(h)
	sh.mu.Lock()
	if sh.mem.Len() > 0 {
		sh.frozen = append(sh.frozen, &frozenMem{mem: sh.mem, minLSN: sh.memMinLSN, maxLSN: sh.memMaxLSN})
		sh.rotateMem()
		sh.publishView()
	}
	sh.mu.Unlock()
}

// checkCollisionPair asserts both colliding keys resolve to their own values
// through Get and through a full scan, and that the fallback actually fired.
func checkCollisionPair(t *testing.T, s *Store, se *Session, k1, v1, k2, v2 string) {
	t.Helper()
	before := s.stats.HashMismatches.Load()
	if got, ok, err := se.Get([]byte(k1)); err != nil || !ok || string(got) != v1 {
		t.Fatalf("Get(%s) = %q, %v, %v; want %q", k1, got, ok, err, v1)
	}
	if got, ok, err := se.Get([]byte(k2)); err != nil || !ok || string(got) != v2 {
		t.Fatalf("Get(%s) = %q, %v, %v; want %q", k2, got, ok, err, v2)
	}
	if s.stats.HashMismatches.Load() == before {
		t.Fatal("colliding gets resolved without a single full-key mismatch — collision not engineered")
	}
	scan := scanAll(t, se)
	if scan[k1] != v1 || scan[k2] != v2 {
		t.Fatalf("scan sees %q=%q, %q=%q; want %q, %q", k1, scan[k1], k2, scan[k2], v1, v2)
	}
}

// TestCollisionMemVsFrozen: the older key's slot sits in a frozen MemTable
// beneath a same-hash slot in the live MemTable.
func TestCollisionMemVsFrozen(t *testing.T) {
	s := openTest(t)
	collideKeys(s, "col-a", "col-b")
	se := s.NewSession(simclock.New(0)).(*Session)
	se.Put([]byte("col-a"), []byte("va"))
	freezeShard(s, collisionHash)
	se.Put([]byte("col-b"), []byte("vb"))
	checkCollisionPair(t, s, se, "col-a", "va", "col-b", "vb")

	// A colliding tombstone above: deleting col-b must not hide col-a.
	se.Delete([]byte("col-b"))
	if _, ok, err := se.Get([]byte("col-b")); ok || err != nil {
		t.Fatalf("deleted col-b still visible (%v, %v)", ok, err)
	}
	if got, ok, err := se.Get([]byte("col-a")); err != nil || !ok || string(got) != "va" {
		t.Fatalf("col-a lost behind colliding tombstone: %q, %v, %v", got, ok, err)
	}
	scan := scanAll(t, se)
	if _, dead := scan["col-b"]; dead {
		t.Fatal("scan resurrected deleted col-b")
	}
	if scan["col-a"] != "va" {
		t.Fatalf("scan lost col-a behind colliding tombstone: %v", scan)
	}
}

// TestCollisionMemVsABI: the older key reaches the ABI via FlushAll's mirror,
// the newer one sits in the MemTable.
func TestCollisionMemVsABI(t *testing.T) {
	s := openTest(t)
	collideKeys(s, "col-a", "col-b")
	se := s.NewSession(simclock.New(0)).(*Session)
	c := simclock.New(0)
	se.Put([]byte("col-a"), []byte("va"))
	if err := s.FlushAll(c); err != nil {
		t.Fatal(err)
	}
	se.Put([]byte("col-b"), []byte("vb"))
	checkCollisionPair(t, s, se, "col-a", "va", "col-b", "vb")
}

// TestCollisionMemVsDumped: the older key's slot lives in a dumped ABI table.
func TestCollisionMemVsDumped(t *testing.T) {
	s := openTest(t)
	collideKeys(s, "col-a", "col-b")
	se := s.NewSession(simclock.New(0)).(*Session)
	c := simclock.New(0)
	se.Put([]byte("col-a"), []byte("va"))
	if err := s.FlushAll(c); err != nil {
		t.Fatal(err)
	}
	if err := s.DumpABIs(c); err != nil {
		t.Fatal(err)
	}
	se.Put([]byte("col-b"), []byte("vb"))
	checkCollisionPair(t, s, se, "col-a", "va", "col-b", "vb")
}

// TestCollisionMemVsLevelRun: with the ABI disabled the read path probes the
// upper-level runs, so the fallback must work against persisted L0 tables.
func TestCollisionMemVsLevelRun(t *testing.T) {
	s := openTest(t, func(c *Config) { c.DisableABI = true })
	collideKeys(s, "col-a", "col-b")
	se := s.NewSession(simclock.New(0)).(*Session)
	c := simclock.New(0)
	se.Put([]byte("col-a"), []byte("va"))
	if err := s.FlushAll(c); err != nil {
		t.Fatal(err)
	}
	se.Put([]byte("col-b"), []byte("vb"))
	checkCollisionPair(t, s, se, "col-a", "va", "col-b", "vb")
}

// TestCollisionMemVsLastLevel: the older key is compacted all the way into
// the last-level run before the collider arrives.
func TestCollisionMemVsLastLevel(t *testing.T) {
	s := openTest(t)
	collideKeys(s, "col-a", "col-b")
	se := s.NewSession(simclock.New(0)).(*Session)
	c := simclock.New(0)
	se.Put([]byte("col-a"), []byte("va"))
	if err := s.FlushAll(c); err != nil {
		t.Fatal(err)
	}
	if err := s.DumpABIs(c); err != nil {
		t.Fatal(err)
	}
	sh := s.shardFor(collisionHash)
	sh.mu.Lock()
	err := sh.lastLevelCompaction(c)
	sh.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if sh.last == nil {
		t.Fatal("last-level compaction left no last-level run")
	}
	se.Put([]byte("col-b"), []byte("vb"))
	checkCollisionPair(t, s, se, "col-a", "va", "col-b", "vb")
}

// TestCollisionThreeDeep stacks three colliding keys across three tiers and
// checks the skip loop walks past two mismatches.
func TestCollisionThreeDeep(t *testing.T) {
	s := openTest(t)
	collideKeys(s, "col-a", "col-b", "col-c")
	se := s.NewSession(simclock.New(0)).(*Session)
	c := simclock.New(0)
	se.Put([]byte("col-a"), []byte("va"))
	if err := s.FlushAll(c); err != nil { // col-a → ABI
		t.Fatal(err)
	}
	se.Put([]byte("col-b"), []byte("vb"))
	freezeShard(s, collisionHash) // col-b → frozen
	se.Put([]byte("col-c"), []byte("vc"))
	for _, kv := range [][2]string{{"col-a", "va"}, {"col-b", "vb"}, {"col-c", "vc"}} {
		if got, ok, err := se.Get([]byte(kv[0])); err != nil || !ok || string(got) != kv[1] {
			t.Fatalf("Get(%s) = %q, %v, %v; want %q", kv[0], got, ok, err, kv[1])
		}
	}
	scan := scanAll(t, se)
	for _, kv := range [][2]string{{"col-a", "va"}, {"col-b", "vb"}, {"col-c", "vc"}} {
		if scan[kv[0]] != kv[1] {
			t.Fatalf("scan[%s] = %q, want %q", kv[0], scan[kv[0]], kv[1])
		}
	}
}

// TestCollisionSurvivesRecovery: log entries persist the engineered hash, so
// a crash/recovery replay rebuilds the same colliding topology.
func TestCollisionSurvivesRecovery(t *testing.T) {
	s := openTest(t)
	collideKeys(s, "col-a", "col-b")
	se := s.NewSession(simclock.New(0)).(*Session)
	c := simclock.New(0)
	se.Put([]byte("col-a"), []byte("va"))
	if err := s.FlushAll(c); err != nil {
		t.Fatal(err)
	}
	se.Put([]byte("col-b"), []byte("vb"))
	if err := se.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Crash()
	if err := s.Recover(simclock.New(0)); err != nil {
		t.Fatal(err)
	}
	se2 := s.NewSession(simclock.New(0)).(*Session)
	checkCollisionPair(t, s, se2, "col-a", "va", "col-b", "vb")
}

// TestCollisionDeleteIfPresentExact: the locked probe inside DeleteIfPresent
// must compare full keys too — deleting one collider reports existed only for
// the key actually present.
func TestCollisionDeleteIfPresentExact(t *testing.T) {
	s := openTest(t)
	collideKeys(s, "col-a", "col-b")
	se := s.NewSession(simclock.New(0)).(*Session)
	se.Put([]byte("col-a"), []byte("va"))
	// col-b shares the hash but was never written: must report absent.
	if existed, err := se.DeleteIfPresent([]byte("col-b")); err != nil || existed {
		t.Fatalf("DeleteIfPresent(col-b) = %v, %v; want false", existed, err)
	}
	if got, ok, _ := se.Get([]byte("col-a")); !ok || string(got) != "va" {
		t.Fatalf("col-a damaged by colliding conditional delete: %q, %v", got, ok)
	}
	if existed, err := se.DeleteIfPresent([]byte("col-a")); err != nil || !existed {
		t.Fatalf("DeleteIfPresent(col-a) = %v, %v; want true", existed, err)
	}
	if _, ok, _ := se.Get([]byte("col-a")); ok {
		t.Fatal("col-a survived its conditional delete")
	}
}
