package core

import (
	"testing"

	"chameleondb/internal/kvstore"
	"chameleondb/internal/storetest"
)

// sweepConfig is TestConfig shrunk until one scripted run issues few enough
// persist events that crashing at every single one stays fast: 4 shards of
// 32-slot MemTables over 3 levels at ratio 2, a 2 MB arena and a 128 KB log
// (32 KB segments, so the log-GC maintenance phase actually reclaims).
func sweepConfig() Config {
	cfg := TestConfig()
	cfg.Shards = 4
	cfg.MemTableSlots = 32
	cfg.Levels = 3
	cfg.Ratio = 2
	cfg.ArenaBytes = 2 << 20
	cfg.LogBytes = 128 << 10
	return cfg
}

func sweepOpen(mutate func(*Config)) func() (kvstore.Store, error) {
	return func() (kvstore.Store, error) {
		cfg := sweepConfig()
		if mutate != nil {
			mutate(&cfg)
		}
		s, err := Open(cfg)
		if err != nil {
			return nil, err
		}
		return s, nil
	}
}

// sweepWorkload mixes scans into every sweep variant (ScanEvery): mid-script
// scans are exact-checked against the applied state, and every recovery is
// followed by a scan/get parity check — so tombstone resurrection or key loss
// visible only through the merging iterator fails the sweep at the exact
// crash point that produced it.
func sweepWorkload() storetest.SweepConfig {
	return storetest.SweepConfig{
		Seed:          1,
		Ops:           1500,
		Keys:          96,
		MaxValueLen:   120,
		FlushEvery:    20,
		MaintainEvery: 50,
		Maintenance:   storetest.StandardMaintenance(),
		ScanEvery:     75,
		Tear:          true,
	}
}

// TestCrashSweepDirect sweeps every persist event of the scripted workload in
// the default Direct-compaction mode, with a torn-write variant per point.
func TestCrashSweepDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep")
	}
	storetest.RunCrashSweep(t, "ChameleonDB-Direct", sweepOpen(nil), sweepWorkload())
}

// TestCrashSweepLevelByLevel covers the Level-by-Level compaction cascade
// (Figure 5a), whose table lifecycle differs from Direct's.
func TestCrashSweepLevelByLevel(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep")
	}
	storetest.RunCrashSweep(t, "ChameleonDB-LbL", sweepOpen(func(c *Config) {
		c.CompactionMode = LevelByLevel
	}), sweepWorkload())
}

// TestCrashSweepWriteIntensive covers Write-Intensive Mode, where MemTables
// spill into the volatile ABI instead of persisting L0 tables — the mode with
// the most acknowledged-but-volatile state at any crash point.
func TestCrashSweepWriteIntensive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep")
	}
	storetest.RunCrashSweep(t, "ChameleonDB-WIM", sweepOpen(func(c *Config) {
		c.WriteIntensive = true
	}), sweepWorkload())
}

// TestCrashSweepAsync runs the sweep with the background maintenance pool
// enabled: flushes, spills, and compactions now race the script on worker
// goroutines, so persist schedules are timing-dependent (AllowUntriggered)
// and a crash can land mid-job with frozen MemTables queued. The durability
// oracle is unchanged — concurrent maintenance moves entries between
// structures but never changes the acknowledged key-value content. A stride
// keeps the wall-clock cost in line with the synchronous sweeps (goroutine
// scheduling makes each point slower than the deterministic runs).
func TestCrashSweepAsync(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep")
	}
	wl := sweepWorkload()
	wl.Stride = 3
	wl.AllowUntriggered = true
	storetest.RunCrashSweep(t, "ChameleonDB-Async", sweepOpen(func(c *Config) {
		c.MaintenanceWorkers = 2
	}), wl)
}

// TestCrashSweepBatchedPuts replays the Direct-mode sweep with runs of
// consecutive puts grouped through PutBatch — the path the server's
// shard-affine SET dispatch uses. Batched writes must replay exactly like
// sequential ones at every crash point (any subset of a crashed batch may be
// durable; the oracle's pending set accounts for all of them), and the
// mid-script and post-recovery scan checks run unchanged.
func TestCrashSweepBatchedPuts(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep")
	}
	wl := sweepWorkload()
	wl.BatchPuts = 8
	storetest.RunCrashSweep(t, "ChameleonDB-Batched", sweepOpen(nil), wl)
}

// TestCrashSoak layers randomized workloads over the fixed sweep script:
// transient allocation-error tolerance plus one random torn crash point per
// iteration.
func TestCrashSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized soak")
	}
	storetest.RunCrashSoak(t, "ChameleonDB", sweepOpen(nil), storetest.SoakConfig{
		Seed:        7,
		Iterations:  6,
		Ops:         300,
		Keys:        48,
		MaxValueLen: 100,
		FlushEvery:  20,
		ErrorProb:   0.01,
	})
}
