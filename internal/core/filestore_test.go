package core

import (
	"bytes"
	"fmt"
	"testing"

	"chameleondb/internal/simclock"
)

func fileTestConfig() Config {
	cfg := TestConfig()
	cfg.Shards = 4
	cfg.MemTableSlots = 32
	cfg.Levels = 3
	cfg.Ratio = 2
	cfg.ArenaBytes = 2 << 20
	cfg.LogBytes = 128 << 10
	return cfg
}

// TestOpenFileRestartDurability is the core-level restart test: open a fresh
// directory, write and flush, abandon the store without Close (the in-process
// stand-in for SIGKILL), reopen cold, recover, and read everything back.
func TestOpenFileRestartDurability(t *testing.T) {
	cfg := fileTestConfig()
	dir := t.TempDir()

	s, existing, err := OpenFile(cfg, dir)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if existing {
		t.Fatal("fresh directory reported as existing")
	}
	se := s.NewSession(simclock.New(0))
	want := make(map[string][]byte)
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i%80)) // overwrites ride along
		v := bytes.Repeat([]byte{byte(i)}, i%96+1)
		if err := se.Put(k, v); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		want[string(k)] = v
	}
	if err := se.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	// No Close: the process "dies". The durable files must carry everything
	// acknowledged by the Flush.

	s2, existing, err := OpenFile(cfg, dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if !existing {
		t.Fatal("reopen did not find existing state")
	}
	if err := s2.Recover(simclock.New(0)); err != nil {
		t.Fatalf("recover: %v", err)
	}
	se2 := s2.NewSession(simclock.New(0))
	for k, v := range want {
		got, ok, err := se2.Get([]byte(k))
		if err != nil || !ok || !bytes.Equal(got, v) {
			t.Fatalf("key %s after restart: got %q ok=%v err=%v, want %q", k, got, ok, err, v)
		}
	}
	if err := s2.VerifyIntegrity(simclock.New(0)); err != nil {
		t.Fatalf("integrity after restart: %v", err)
	}
	// The recovered store must accept and persist new writes across another
	// restart — including a clean Close this time.
	if err := se2.Put([]byte("post-restart"), []byte("second-generation")); err != nil {
		t.Fatal(err)
	}
	if err := se2.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	s3, existing, err := OpenFile(cfg, dir)
	if err != nil || !existing {
		t.Fatalf("third open: existing=%v err=%v", existing, err)
	}
	defer s3.Close()
	if err := s3.Recover(simclock.New(0)); err != nil {
		t.Fatalf("second recover: %v", err)
	}
	se3 := s3.NewSession(simclock.New(0))
	got, ok, err := se3.Get([]byte("post-restart"))
	if err != nil || !ok || string(got) != "second-generation" {
		t.Fatalf("post-restart key after second restart: %q %v %v", got, ok, err)
	}
	for k, v := range want {
		got, ok, err := se3.Get([]byte(k))
		if err != nil || !ok || !bytes.Equal(got, v) {
			t.Fatalf("key %s after second restart: got %q ok=%v err=%v", k, got, ok, err)
		}
	}
}

// TestOpenFileRestartWithMaintenance exercises the restart path after enough
// writes to force flushes, spills, compactions, and log GC — so the host
// metadata record has been rewritten by segment churn, tables live above the
// persisted allocator mark, and ReserveFloor does real work on reattach.
func TestOpenFileRestartWithMaintenance(t *testing.T) {
	cfg := fileTestConfig()
	dir := t.TempDir()
	s, _, err := OpenFile(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	c := simclock.New(0)
	se := s.NewSession(c)
	want := make(map[string][]byte)
	for i := 0; i < 1200; i++ {
		k := []byte(fmt.Sprintf("mk-%04d", i%150))
		v := bytes.Repeat([]byte{byte(i), byte(i >> 8)}, i%40+1)
		if err := se.Put(k, v); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		want[string(k)] = v
		if i%200 == 199 {
			if err := s.FlushAll(c); err != nil {
				t.Fatalf("FlushAll at %d: %v", i, err)
			}
			if _, err := s.CompactLog(c, 64<<10); err != nil {
				t.Fatalf("CompactLog at %d: %v", i, err)
			}
		}
	}
	if err := se.Flush(); err != nil {
		t.Fatal(err)
	}

	s2, existing, err := OpenFile(cfg, dir)
	if err != nil || !existing {
		t.Fatalf("reopen: existing=%v err=%v", existing, err)
	}
	defer s2.Close()
	if err := s2.Recover(simclock.New(0)); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if err := s2.VerifyIntegrity(simclock.New(0)); err != nil {
		t.Fatalf("integrity: %v", err)
	}
	se2 := s2.NewSession(simclock.New(0))
	for k, v := range want {
		got, ok, err := se2.Get([]byte(k))
		if err != nil || !ok || !bytes.Equal(got, v) {
			t.Fatalf("key %s after churny restart: got %q ok=%v err=%v", k, got, ok, err)
		}
	}
}

// TestOpenFileGeometryMismatch reopens a directory with a different config
// and expects a refusal.
func TestOpenFileGeometryMismatch(t *testing.T) {
	cfg := fileTestConfig()
	dir := t.TempDir()
	s, _, err := OpenFile(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Shards = 8
	if _, _, err := OpenFile(bad, dir); err == nil {
		t.Fatal("reopen with different shard count succeeded")
	}
}

// TestHostStateRoundtrip round-trips the host metadata blob.
func TestHostStateRoundtrip(t *testing.T) {
	hs := hostState{
		fp:                fingerprintOf(fileTestConfig()),
		ArenaNext:         123456,
		LogHead:           32 << 10,
		LogNext:           96 << 10,
		Segs:              map[int64]int64{1: 256, 2: 33024, 5: 66048},
		ManifestSlotBytes: 512,
		ManifestOffs:      []int64{256, 1280, 2304, 3328},
		ReplID:            "4f2d1c0b9a87654321fedcba0123456789abcdef",
		ReplEpoch:         3,
		ReplApplied:       64 << 10,
	}
	got, err := decodeHostState(encodeHostState(hs))
	if err != nil {
		t.Fatal(err)
	}
	if got.fp != hs.fp || got.ArenaNext != hs.ArenaNext || got.LogHead != hs.LogHead || got.LogNext != hs.LogNext {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, hs)
	}
	if got.ReplID != hs.ReplID || got.ReplEpoch != hs.ReplEpoch || got.ReplApplied != hs.ReplApplied {
		t.Fatalf("roundtrip lost replication identity: %+v vs %+v", got, hs)
	}
	if len(got.Segs) != len(hs.Segs) || len(got.ManifestOffs) != len(hs.ManifestOffs) {
		t.Fatalf("roundtrip lost entries: %+v", got)
	}
	for k, v := range hs.Segs {
		if got.Segs[k] != v {
			t.Fatalf("segment %d: %d != %d", k, got.Segs[k], v)
		}
	}
}

// FuzzHostStateDecode: arbitrary bytes must decode or error, never panic,
// mirroring FuzzFileManifestDecode one layer up.
func FuzzHostStateDecode(f *testing.F) {
	f.Add(encodeHostState(hostState{
		fp:           fingerprintOf(fileTestConfig()),
		ManifestOffs: []int64{256, 512, 768, 1024},
		Segs:         map[int64]int64{0: 256},
	}))
	f.Add([]byte{})
	f.Add(make([]byte, 96))
	f.Fuzz(func(t *testing.T, b []byte) {
		hs, err := decodeHostState(b)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode to something decodable.
		if _, err := decodeHostState(encodeHostState(hs)); err != nil {
			t.Fatalf("roundtrip of decoded state failed: %v", err)
		}
	})
}
