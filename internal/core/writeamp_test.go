package core

import (
	"bytes"
	"fmt"
	"testing"

	"chameleondb/internal/simclock"
	"chameleondb/internal/wlog"
)

// TestWriteAmplificationFormula checks the paper's Section 2.5 analysis:
// ChameleonDB's index write amplification is (l-1+r)/f — each entry is
// written once per size-tiered upper level ((l-1) times including L0) and r
// times amortized by the leveled last level, inflated by the 1/f slack of
// the fixed-size hash tables. The measured index traffic must sit in a band
// around the formula (dynamic last-level growth and manifest/sync overhead
// push it up; incomplete final cascades push it down).
func TestWriteAmplificationFormula(t *testing.T) {
	cfg := TestConfig()
	cfg.Shards = 16
	cfg.LoadFactorMin = 0.75
	cfg.LoadFactorMax = 0.75
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	se := s.NewSession(simclock.New(0))
	const n = 60000
	valSize := 8
	for i := 0; i < n; i++ {
		if err := se.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	se.Flush()

	media := s.DeviceStats().MediaBytesWritten
	// Subtract the value log's share (batched, amplification ~1).
	logBytes := s.Log().BytesAppended()
	indexMedia := media - logBytes
	perEntry := float64(indexMedia) / float64(n)
	measuredWA := perEntry / 16 // 16-byte slots

	l := float64(cfg.Levels)
	r := float64(cfg.Ratio)
	f := 0.75
	formula := (l - 1 + r) / f
	t.Logf("measured index WA = %.2f, formula (l-1+r)/f = %.2f", measuredWA, formula)
	if measuredWA < formula*0.4 || measuredWA > formula*2.5 {
		t.Fatalf("index WA %.2f far from the paper's formula %.2f", measuredWA, formula)
	}
	_ = valSize
}

// TestLargeValues pushes 64 KB values (the top of Figure 17's range) through
// the full put/get/compact/recover cycle.
func TestLargeValues(t *testing.T) {
	cfg := TestConfig()
	cfg.ArenaBytes = 512 << 20
	cfg.LogBytes = 384 << 20
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	se := s.NewSession(simclock.New(0))
	big := bytes.Repeat([]byte{0xC3}, 64<<10)
	const n = 3000
	for i := 0; i < n; i++ {
		big[0] = byte(i)
		big[1] = byte(i >> 8)
		if err := se.Put(key(i), big); err != nil {
			t.Fatal(err)
		}
	}
	se.Flush()
	s.Crash()
	if err := s.Recover(simclock.New(0)); err != nil {
		t.Fatal(err)
	}
	se2 := s.NewSession(simclock.New(0))
	for i := 0; i < n; i += 173 {
		got, ok, err := se2.Get(key(i))
		if err != nil || !ok || len(got) != 64<<10 || got[0] != byte(i) || got[1] != byte(i>>8) {
			t.Fatalf("large value %d corrupted: len=%d ok=%v err=%v", i, len(got), ok, err)
		}
	}
}

// TestEmptyAndOddKeys exercises key shapes the hash path must handle.
func TestEmptyAndOddKeys(t *testing.T) {
	s := openTest(t)
	se := s.NewSession(simclock.New(0))
	keys := [][]byte{
		[]byte{}, // empty key
		[]byte{0},
		bytes.Repeat([]byte{0xFF}, 1000), // long key
		[]byte("with\x00nul\x00bytes"),
	}
	for i, k := range keys {
		v := []byte(fmt.Sprintf("v%d", i))
		if err := se.Put(k, v); err != nil {
			t.Fatalf("put key %d: %v", i, err)
		}
	}
	for i, k := range keys {
		got, ok, err := se.Get(k)
		if err != nil || !ok || string(got) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get key %d = %q %v %v", i, got, ok, err)
		}
	}
}

// TestLogFullSurfacesError verifies a full log region propagates a clean
// error instead of corrupting state.
func TestLogFullSurfacesError(t *testing.T) {
	cfg := TestConfig()
	cfg.ArenaBytes = 4 << 20
	cfg.LogBytes = 256 << 10
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	se := s.NewSession(simclock.New(0))
	var putErr error
	for i := 0; i < 100000 && putErr == nil; i++ {
		putErr = se.Put(key(i), bytes.Repeat([]byte{1}, 64))
	}
	if putErr == nil {
		t.Fatal("expected the log to fill")
	}
	// Reads of earlier data must still work.
	if _, ok, err := se.Get(key(0)); err != nil || !ok {
		t.Fatalf("store unusable after log-full: %v", err)
	}
	_ = wlog.ErrLogFull
}
