package core

import (
	"sync"
	"sync/atomic"
	"time"

	"chameleondb/internal/simclock"
)

// Background maintenance pipeline (Config.MaintenanceWorkers > 0).
//
// The paper pairs every put thread with a dedicated compaction thread
// (Section 3.3) so foreground writes never wait behind index maintenance.
// This file is the store-level version of that pairing: when a put fills its
// MemTable, the table is frozen (rotated out exactly as destructive
// boundaries already rotate tables for readers), the new view is published,
// and the flush/spill/compaction runs later on a bounded worker pool instead
// of inline under the shard lock. The put path never executes a merge.
//
// Ordering invariants:
//
//   - Per-shard FIFO: a shard's jobs execute in enqueue order, one at a time
//     (the queue's active flag), so a shard's merges stay sequential while
//     different shards compact in parallel.
//   - Frozen tables are processed oldest-first, and the read path probes them
//     newest-first between the MemTable and the ABI, so version order is
//     preserved: an ABI insert from flushing frozen[0] can never shadow a
//     newer entry still sitting in frozen[1] or the MemTable.
//   - Jobs are idempotent: each re-checks its trigger condition under the
//     re-acquired shard lock and skips (JobsSkipped) when a quiesced
//     maintenance entry point (FlushAll, CompactLog) already did the work.
//
// Crash semantics: Crash() pauses the pool — queued jobs are discarded
// (their frozen tables are volatile state that dies with the power) and
// in-flight jobs run to completion before the wipe. That is legal under the
// fault model because the device fault plan drops every modelled persist
// after the power-cut instant, so a job finishing "after the crash" can no
// longer reach media; letting it finish merely picks the legal schedule in
// which the crash fell on a job boundary.
type maintPool struct {
	store   *Store
	workers int

	mu      sync.Mutex
	cond    *sync.Cond
	queues  []maintQueue
	ready   []int // shard ids with runnable work, FIFO
	paused  bool
	stopped bool
	err     error // first background job error, latched (fail-stop)

	// Mirrors for lock-free gauges.
	queued atomic.Int64
	busy   atomic.Int64

	wg       sync.WaitGroup
	stopOnce sync.Once
}

type maintQueue struct {
	jobs    []maintKind
	active  bool // a worker is executing this shard's job
	inReady bool
}

type maintKind int

const (
	// maintFlush handles one frozen MemTable: flush to L0 or spill to the
	// ABI, per the mode (WIM/GPM) in force when the job runs.
	maintFlush maintKind = iota
	// maintCompact cascades a full L0 (Direct or LevelByLevel per config).
	maintCompact
	// maintLastLevel merges dumped ABI tables back after a Get-Protect
	// burst ends (the postponed merge of Section 2.4).
	maintLastLevel
)

func newMaintPool(s *Store, workers int) *maintPool {
	p := &maintPool{store: s, workers: workers, queues: make([]maintQueue, len(s.shards))}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// enqueue schedules a job for a shard. Called with the shard's mutex held
// (lock order is always sh.mu -> p.mu, never the reverse). Jobs offered to a
// paused or stopped pool are dropped: both states mean the frozen state they
// would process is about to be wiped (crash) or discarded (close).
func (p *maintPool) enqueue(shardID int, kind maintKind) {
	p.mu.Lock()
	if p.stopped || p.paused {
		p.mu.Unlock()
		return
	}
	q := &p.queues[shardID]
	q.jobs = append(q.jobs, kind)
	p.queued.Add(1)
	if !q.inReady && !q.active {
		q.inReady = true
		p.ready = append(p.ready, shardID)
	}
	p.mu.Unlock()
	p.cond.Signal()
}

func (p *maintPool) worker() {
	defer p.wg.Done()
	c := simclock.New(0)
	p.mu.Lock()
	for {
		for !p.stopped && (p.paused || len(p.ready) == 0) {
			p.cond.Wait()
		}
		if p.stopped {
			p.mu.Unlock()
			return
		}
		shardID := p.ready[0]
		p.ready = p.ready[1:]
		q := &p.queues[shardID]
		q.inReady = false
		kind := q.jobs[0]
		q.jobs = q.jobs[1:]
		q.active = true
		p.queued.Add(-1)
		p.busy.Add(1)
		p.mu.Unlock()

		start := time.Now()
		err := p.store.runMaintJob(c, p.store.shards[shardID], kind)
		p.store.lat.jobDur.Record(time.Since(start).Nanoseconds())

		p.mu.Lock()
		q.active = false
		p.busy.Add(-1)
		if err != nil && p.err == nil {
			// Fail-stop: a maintenance error (arena or log exhaustion) latches
			// and surfaces on the next Put/Flush; the shard's remaining jobs
			// would hit the same wall, so they are dropped to unblock drains.
			p.err = err
			q.jobs = nil
			p.queued.Store(p.totalQueuedLocked())
		}
		if len(q.jobs) > 0 && !q.inReady && !p.paused {
			q.inReady = true
			p.ready = append(p.ready, shardID)
		}
		// Job completions are what drain barriers and stalled writers wait
		// for, so every completion broadcasts.
		p.cond.Broadcast()
	}
}

func (p *maintPool) totalQueuedLocked() int64 {
	var n int64
	for i := range p.queues {
		n += int64(len(p.queues[i].jobs))
	}
	return n
}

// pendingLocked reports whether any of the shards has queued or running work.
func (p *maintPool) pendingLocked(shardIDs []int) bool {
	for _, id := range shardIDs {
		q := &p.queues[id]
		if len(q.jobs) > 0 || q.active {
			return true
		}
	}
	return false
}

// drain blocks until every queued and in-flight job of the given shards has
// completed (the Flush barrier). Returns the latched background error, if
// any. A paused pool has already discarded its queue, so drain falls through
// once in-flight jobs finish; a stopped pool returns immediately.
func (p *maintPool) drain(shardIDs []int) error {
	p.mu.Lock()
	for !p.stopped && p.err == nil && p.pendingLocked(shardIDs) {
		p.cond.Wait()
	}
	err := p.err
	p.mu.Unlock()
	return err
}

// drainAll is drain over every shard: the store-wide barrier quiesced
// maintenance entry points (CompactLog, FlushAll, DumpABIs) take before
// mutating structures the pool might also be touching.
func (p *maintPool) drainAll() error {
	ids := make([]int, len(p.queues))
	for i := range ids {
		ids[i] = i
	}
	return p.drain(ids)
}

// pause discards queued jobs and waits for in-flight jobs to finish — the
// Crash() quiesce. See the fault-model note in the type comment: modelled
// persists after the power cut are dropped by the device plan, so letting an
// in-flight job complete cannot write to post-crash media.
func (p *maintPool) pause() {
	p.mu.Lock()
	p.paused = true
	for i := range p.queues {
		p.queues[i].jobs = nil
		p.queues[i].inReady = false
	}
	p.ready = nil
	p.queued.Store(0)
	p.cond.Broadcast()
	for p.busy.Load() > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// resume reopens the pool after Recover.
func (p *maintPool) resume() {
	p.mu.Lock()
	p.paused = false
	p.mu.Unlock()
	p.cond.Broadcast()
}

// stop terminates the workers (Store.Close). Queued jobs are discarded: the
// store is being abandoned, and durability of acknowledged writes is the log
// seal's job, never a maintenance job's.
func (p *maintPool) stop() {
	p.stopOnce.Do(func() {
		p.mu.Lock()
		p.stopped = true
		for i := range p.queues {
			p.queues[i].jobs = nil
		}
		p.ready = nil
		p.queued.Store(0)
		p.mu.Unlock()
		p.cond.Broadcast()
		p.wg.Wait()
	})
}

// runMaintJob executes one job, holding the shard's mutex for the duration.
// The shard's timeline is not reserved: maintenance runs on its own worker
// clock, off every session's critical path — which is the whole point.
func (s *Store) runMaintJob(c *simclock.Clock, sh *shard, kind maintKind) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	switch kind {
	case maintFlush:
		if len(sh.frozen) == 0 {
			s.stats.MaintJobsSkipped.Add(1)
			return nil
		}
		if s.writeIntensive.Load() || s.gpmActive.Load() {
			s.stats.MaintJobsSpill.Add(1)
			return sh.spillFrozen(c)
		}
		s.stats.MaintJobsFlush.Add(1)
		return sh.flushFrozen(c)
	case maintCompact:
		if len(sh.levels[0]) < s.cfg.Ratio {
			s.stats.MaintJobsSkipped.Add(1)
			return nil
		}
		s.stats.MaintJobsCompact.Add(1)
		if s.cfg.CompactionMode == LevelByLevel {
			return sh.compactLevelByLevel(c)
		}
		return sh.compactDirect(c)
	case maintLastLevel:
		if len(sh.dumped) == 0 {
			s.stats.MaintJobsSkipped.Add(1)
			return nil
		}
		s.stats.MaintJobsLastLevel.Add(1)
		return sh.lastLevelCompaction(c)
	}
	return nil
}

// throttle applies write backpressure before a put touches its shard: when
// the shard's published debt (frozen MemTables awaiting flush, L0 tables
// awaiting compaction) crosses the slowdown threshold the put sleeps briefly;
// past the stall threshold it blocks until the pool catches up. Thresholds
// are checked against the lock-free view, so an un-throttled put pays one
// atomic load and no lock.
func (se *Session) throttle(sh *shard) error {
	p := se.store.maint
	if p == nil {
		return nil
	}
	cfg := &se.store.cfg
	v := sh.view.Load()
	frozen, l0 := len(v.frozen), len(v.levels[0])
	if frozen < cfg.SlowdownFrozenTables && l0 < cfg.SlowdownL0Tables {
		return nil
	}
	start := time.Now()
	if frozen >= cfg.StallFrozenTables || l0 >= cfg.StallL0Tables {
		se.store.stats.PutStalls.Add(1)
		p.mu.Lock()
		for {
			if err := se.store.readable(); err != nil {
				p.mu.Unlock()
				se.store.lat.putStall.Record(time.Since(start).Nanoseconds())
				return err
			}
			if p.err != nil {
				err := p.err
				p.mu.Unlock()
				se.store.lat.putStall.Record(time.Since(start).Nanoseconds())
				return err
			}
			v = sh.view.Load()
			if len(v.frozen) < cfg.StallFrozenTables && len(v.levels[0]) < cfg.StallL0Tables {
				break
			}
			p.cond.Wait()
		}
		p.mu.Unlock()
	} else {
		se.store.stats.PutSlowdowns.Add(1)
		time.Sleep(time.Duration(cfg.SlowdownDelayNs))
	}
	se.store.lat.putStall.Record(time.Since(start).Nanoseconds())
	return nil
}

// maintActive reports whether the put path should freeze-and-enqueue rather
// than run maintenance inline. Recovery replay (crashed still set) always
// takes the synchronous path: replay is a single-threaded quiesced scan whose
// watermark bookkeeping expects immediate flushes.
func (s *Store) maintActive() bool {
	return s.maint != nil && !s.crashed.Load()
}

// MaintenanceSnapshot is the pool's observable state (server INFO,
// chameleonctl stats).
type MaintenanceSnapshot struct {
	Workers      int
	QueueDepth   int64
	WorkersBusy  int64
	MemFreezes   int64
	PutSlowdowns int64
	PutStalls    int64
	JobsFlush    int64
	JobsSpill    int64
	JobsCompact  int64
	JobsLast     int64
	JobsSkipped  int64
}

// MaintenanceStats returns a snapshot of the background maintenance pipeline.
// With MaintenanceWorkers == 0 everything but the counters is zero.
func (s *Store) MaintenanceStats() MaintenanceSnapshot {
	snap := MaintenanceSnapshot{
		MemFreezes:   s.stats.MemFreezes.Load(),
		PutSlowdowns: s.stats.PutSlowdowns.Load(),
		PutStalls:    s.stats.PutStalls.Load(),
		JobsFlush:    s.stats.MaintJobsFlush.Load(),
		JobsSpill:    s.stats.MaintJobsSpill.Load(),
		JobsCompact:  s.stats.MaintJobsCompact.Load(),
		JobsLast:     s.stats.MaintJobsLastLevel.Load(),
		JobsSkipped:  s.stats.MaintJobsSkipped.Load(),
	}
	if s.maint != nil {
		snap.Workers = s.maint.workers
		snap.QueueDepth = s.maint.queued.Load()
		snap.WorkersBusy = s.maint.busy.Load()
	}
	return snap
}
