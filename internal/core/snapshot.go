package core

import (
	"bytes"
	"errors"
	"sort"

	"chameleondb/internal/device"
	"chameleondb/internal/hashtable"
	"chameleondb/internal/kvstore"
	"chameleondb/internal/simclock"
)

// ErrSnapshotReleased is returned by Scan on a snapshot after Release.
var ErrSnapshotReleased = errors.New("core: snapshot has been released")

// ErrSnapshotStale is returned by Scan on a snapshot that predates a crash:
// recovery rebuilds the arena, so the snapshot's table references are dead.
var ErrSnapshotStale = errors.New("core: snapshot predates a crash; take a new one")

// Snapshot is a point-in-time view of the store for range scans.
//
// Consistency model: each shard is captured under its lock — the MemTable and
// ABI (the two structures writers mutate in place) are deep-copied, every
// other tier is immutable and captured by reference. A captured shard is
// therefore an exact cut of that shard: writes after the capture never appear,
// writes acknowledged before it always do, and tombstones captured stay
// suppressed no matter what concurrent flushes, spills, dumps or compactions
// do afterwards. An eager snapshot (Session.Snapshot) captures every shard at
// creation, so the whole key space is cut within the creation window; a lazy
// snapshot (the one-shot Session.Scan) captures each shard on first touch,
// which is the Redis-SCAN guarantee: per-shard consistent, cross-shard only
// bounded by the scan's lifetime.
//
// The snapshot registers its own reader-epoch slot and keeps it pinned until
// Release, so epoch reclamation never recycles a referenced table's arena
// space while the snapshot is open. Release promptly — an open snapshot
// defers all table reclamation. Log-head GC (CompactLog) requires a quiesced
// store and so cannot run under an open snapshot; a scan that still observes
// reclaimed log bytes for a live winner reports the error rather than
// guessing. Not safe for concurrent use.
type Snapshot struct {
	store    *Store
	clock    *simclock.Clock
	slot     *readerSlot
	gen      int64
	shards   []*snapShard
	released bool
}

// snapShard is one shard's captured cut plus its lazily materialized,
// hash-ordered merge result.
type snapShard struct {
	mem    *hashtable.Mem // deep copy
	abi    *hashtable.Mem // deep copy; nil when the ABI is disabled
	frozen []*frozenMem   // immutable once rotated
	levels [][]*ptable    // immutable tables; slices capped at capture
	last   *ptable
	dumped []*ptable

	materialized bool
	entries      []snapEntry // ascending (hash, key)
}

// snapEntry is one live key surviving the merge: the winning (newest)
// reference for its full key, tombstones already suppressed. key stays nil
// for singleton hash groups — no collision possible, so the key is read from
// the log only when the entry is emitted.
type snapEntry struct {
	hash uint64
	ref  uint64
	key  []byte
}

// snapCand is one merge input: a slot plus the recency rank of the structure
// it came from (0 = MemTable, larger = older), which is the version order the
// dedup resolves ties by.
type snapCand struct {
	slot hashtable.Slot
	rank int
}

// newSnapshot pins a reader epoch and, when eager, captures every shard.
func (s *Store) newSnapshot(c *simclock.Clock, eager bool) (*Snapshot, error) {
	if err := s.readable(); err != nil {
		return nil, err
	}
	sn := &Snapshot{
		store:  s,
		clock:  c,
		slot:   s.em.register(),
		gen:    s.crashGen.Load(),
		shards: make([]*snapShard, len(s.shards)),
	}
	// Pin before any capture: every table a capture references is either
	// still linked (retired later, at an epoch above ours) or was unlinked
	// before the capture could see it.
	sn.slot.pin(s.em)
	if eager {
		for si := range s.shards {
			sn.capture(si)
		}
	}
	return sn, nil
}

// Snapshot implements kvstore.Scanner: a stable view capturing every shard
// now, for multi-call cursor iteration. Release it when done.
func (se *Session) Snapshot() (kvstore.Snapshot, error) {
	return se.store.newSnapshot(se.clock, true)
}

// Scan implements kvstore.Scanner: the one-shot form. Each call takes a lazy
// snapshot, pages out of it, and releases it, so successive calls see
// Redis-SCAN guarantees: every key present for the whole iteration is
// returned at least once, keys mutated mid-iteration may or may not be.
func (se *Session) Scan(cursor uint64, limit int) ([]kvstore.KV, uint64, error) {
	sn, err := se.store.newSnapshot(se.clock, false)
	if err != nil {
		return nil, 0, err
	}
	defer sn.Release()
	return sn.Scan(cursor, limit)
}

// Release unpins the snapshot's reader epoch so table reclamation can resume.
// Idempotent.
func (sn *Snapshot) Release() {
	if sn.released {
		return
	}
	sn.released = true
	sn.slot.unpin()
	sn.store.em.unregister(sn.slot)
}

// Scan returns up to limit key/value pairs in ascending (hash, key) order
// starting at the cursor, plus the cursor to resume from. Pass 0 to start; a
// returned cursor of 0 means the iteration is complete. A batch never splits
// a hash group (keys colliding on the full 64-bit hash are returned
// together), so a caller that respects the cursor sees every live key exactly
// once. limit is a floor, not an exact size, for the same reason.
func (sn *Snapshot) Scan(cursor uint64, limit int) ([]kvstore.KV, uint64, error) {
	if sn.released {
		return nil, 0, ErrSnapshotReleased
	}
	if err := sn.store.readable(); err != nil {
		return nil, 0, err
	}
	if sn.gen != sn.store.crashGen.Load() {
		return nil, 0, ErrSnapshotStale
	}
	if limit < 1 {
		limit = 1
	}
	s := sn.store
	c := sn.clock
	si := 0
	if s.shardShift < 64 {
		si = int(cursor >> s.shardShift)
	}
	var out []kvstore.KV
	var lastHash uint64
	first := true
	for ; si < len(s.shards); si++ {
		if len(out) >= limit {
			// Shard boundaries are hash boundaries (top bits route), so the
			// resume point is the floor of the next shard's hash range.
			return out, uint64(si) << s.shardShift, nil
		}
		sc := sn.capture(si)
		if err := sn.materialize(sc); err != nil {
			return nil, 0, err
		}
		ents := sc.entries
		k := 0
		if first {
			// Only the cursor's own shard needs a lower-bound search; every
			// later shard's hash range lies entirely above the cursor.
			k = sort.Search(len(ents), func(i int) bool { return ents[i].hash >= cursor })
			first = false
		}
		for ; k < len(ents); k++ {
			ent := ents[k]
			if len(out) >= limit && ent.hash != lastHash {
				return out, ent.hash, nil
			}
			e, err := s.log.Read(c, int64(ent.ref&^hashtable.TombstoneBit))
			if err != nil {
				return nil, 0, err
			}
			kv := kvstore.KV{Value: append([]byte(nil), e.Value...)}
			if ent.key != nil {
				kv.Key = append([]byte(nil), ent.key...)
			} else {
				kv.Key = append([]byte(nil), e.Key...)
			}
			out = append(out, kv)
			lastHash = ent.hash
		}
	}
	return out, 0, nil
}

// capture cuts shard si under its lock, deep-copying the in-place-mutated
// structures and referencing the immutable ones (slices capped so later
// appends never grow into the snapshot). Charges the DRAM copy to the
// snapshot's clock.
func (sn *Snapshot) capture(si int) *snapShard {
	if sc := sn.shards[si]; sc != nil {
		return sc
	}
	sh := sn.store.shards[si]
	sh.mu.Lock()
	sc := &snapShard{
		mem:  sh.mem.Clone(),
		last: sh.last,
	}
	if sh.abi != nil {
		sc.abi = sh.abi.Clone()
	}
	if n := len(sh.frozen); n > 0 {
		sc.frozen = sh.frozen[:n:n]
	}
	if n := len(sh.dumped); n > 0 {
		sc.dumped = sh.dumped[:n:n]
	}
	sc.levels = make([][]*ptable, len(sh.levels))
	for i, lvl := range sh.levels {
		sc.levels[i] = lvl[:len(lvl):len(lvl)]
	}
	sh.mu.Unlock()
	copied := sc.mem.DRAMFootprint()
	if sc.abi != nil {
		copied += sc.abi.DRAMFootprint()
	}
	sn.clock.Advance(int64(float64(copied) * device.CostDRAMSeqPerByte))
	sn.shards[si] = sc
	return sc
}

// materialize merges the captured tiers into one hash-ordered run of live
// entries: collect every slot with its recency rank, sort by (hash, rank),
// then resolve each hash group newest-first — the first occurrence of a full
// key wins, a winning tombstone suppresses the key, and colliding keys
// survive side by side ordered by key bytes. Charged like a compaction merge:
// sequential scans of the Pmem sources plus per-slot merge CPU.
func (sn *Snapshot) materialize(sc *snapShard) error {
	if sc.materialized {
		return nil
	}
	s := sn.store
	c := sn.clock
	var cands []snapCand
	rank := 0
	fromMem := func(m *hashtable.Mem) {
		m.Iterate(func(sl hashtable.Slot) bool {
			c.Advance(device.CostCompactionPerSlot)
			cands = append(cands, snapCand{slot: sl, rank: rank})
			return true
		})
		rank++
	}
	fromPtable := func(p *ptable) {
		p.t.ChargeScan(c)
		p.t.Iterate(func(sl hashtable.Slot) bool {
			c.Advance(device.CostCompactionPerSlot)
			cands = append(cands, snapCand{slot: sl, rank: rank})
			return true
		})
		rank++
	}
	// Version order, newest first — the same order lookupView probes.
	fromMem(sc.mem)
	for i := len(sc.frozen) - 1; i >= 0; i-- {
		fromMem(sc.frozen[i].mem)
	}
	if sc.abi != nil {
		fromMem(sc.abi)
	}
	for i := len(sc.dumped) - 1; i >= 0; i-- {
		fromPtable(sc.dumped[i])
	}
	if sc.abi == nil {
		// Upper levels only matter without an ABI (ablation): the ABI+dumps
		// invariant covers them otherwise, exactly as on the get path.
		for lvl := 0; lvl < len(sc.levels); lvl++ {
			tables := sc.levels[lvl]
			for i := len(tables) - 1; i >= 0; i-- {
				fromPtable(tables[i])
			}
		}
	}
	if sc.last != nil {
		fromPtable(sc.last)
	}

	sort.Slice(cands, func(i, j int) bool {
		if cands[i].slot.Hash != cands[j].slot.Hash {
			return cands[i].slot.Hash < cands[j].slot.Hash
		}
		return cands[i].rank < cands[j].rank
	})

	entries := make([]snapEntry, 0, len(cands))
	for i := 0; i < len(cands); {
		j := i + 1
		for j < len(cands) && cands[j].slot.Hash == cands[i].slot.Hash {
			j++
		}
		group := cands[i:j]
		if len(group) == 1 {
			// Singleton hash group: no collision and no older version, so the
			// slot speaks for its key without a log read. A tombstone here is
			// the key's only version — suppressed.
			if !group[0].slot.Tombstone() {
				entries = append(entries, snapEntry{hash: group[0].slot.Hash, ref: group[0].slot.Ref})
			}
		} else {
			start := len(entries)
			var seen [][]byte
			for _, cd := range group {
				e, err := s.log.Read(c, cd.slot.LSN())
				if err != nil {
					// Unreadable candidate: its log bytes were reclaimed by GC
					// or lost with the log tail in a crash. The probe path
					// defines per-key truth, and it never reads such a slot on
					// behalf of a live key — a get either resolves at a newer
					// readable version above it in this group, or reaches it
					// and reports a miss (tombstone) / the read error (live
					// slot, which the integrity checks surface on their own).
					// Match the probe: an unreadable tombstone is authoritative
					// and kills everything older in the group; an unreadable
					// value is a superseded version, dead weight.
					if cd.slot.Tombstone() {
						break
					}
					continue
				}
				dup := false
				for _, k := range seen {
					if bytes.Equal(k, e.Key) {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				key := append([]byte(nil), e.Key...)
				seen = append(seen, key)
				if cd.slot.Tombstone() {
					continue
				}
				entries = append(entries, snapEntry{hash: cd.slot.Hash, ref: cd.slot.Ref, key: key})
			}
			// Colliding survivors order deterministically by key bytes.
			grp := entries[start:]
			sort.Slice(grp, func(a, b int) bool { return bytes.Compare(grp[a].key, grp[b].key) < 0 })
		}
		i = j
	}
	sc.entries = entries
	sc.materialized = true
	return nil
}
