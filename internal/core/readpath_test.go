package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"

	"chameleondb/internal/simclock"
)

// The read path is lock-free: these tests drive it with real goroutines
// (unlike the bench harness's deterministic discrete-event workers) so the
// race detector and the mutex profiler can see genuine concurrency.

func stressKey(i int) []byte { return []byte(fmt.Sprintf("rp-key-%05d", i)) }

// stressValue is the deterministic value every writer stores for a key, so a
// reader can validate any value it observes regardless of interleaving.
func stressValue(i int) []byte { return []byte(fmt.Sprintf("rp-val-%05d-%05d", i, i*7)) }

// TestReadPathStress runs concurrent Get/Put/Delete workers across all
// shards, then quiesces, crashes, recovers, and repeats — the lock-free read
// path must never return a torn or stale-beyond-legality result, and the
// store must stay structurally sound across the crash cycles. Run with -race
// this is the tentpole's primary concurrency proof.
func TestReadPathStress(t *testing.T) {
	cfg := TestConfig()
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers   = 8
		keySpace  = 2048
		opsPerGor = 4000
		rounds    = 3
	)
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		errs := make(chan error, workers*2)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				se := s.NewSession(simclock.New(0)).(*Session)
				defer func() {
					if err := se.Release(); err != nil {
						errs <- err
					}
				}()
				rng := rand.New(rand.NewSource(int64(round*workers + w)))
				for op := 0; op < opsPerGor; op++ {
					i := rng.Intn(keySpace)
					switch {
					case w < workers/2: // readers
						v, ok, err := se.Get(stressKey(i))
						if err != nil {
							errs <- fmt.Errorf("get: %w", err)
							return
						}
						if ok && !bytes.Equal(v, stressValue(i)) {
							errs <- fmt.Errorf("key %d: got %q, want %q", i, v, stressValue(i))
							return
						}
					case rng.Intn(8) == 0: // occasional delete
						if err := se.Delete(stressKey(i)); err != nil {
							errs <- fmt.Errorf("delete: %w", err)
							return
						}
					default:
						if err := se.Put(stressKey(i), stressValue(i)); err != nil {
							errs <- fmt.Errorf("put: %w", err)
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}

		// Quiesced: crash, recover, verify, spot-check.
		s.Crash()
		rc := simclock.New(0)
		if err := s.Recover(rc); err != nil {
			t.Fatalf("round %d: recover: %v", round, err)
		}
		if err := s.VerifyIntegrity(rc); err != nil {
			t.Fatalf("round %d: verify: %v", round, err)
		}
		se := s.NewSession(simclock.New(rc.Now())).(*Session)
		for i := 0; i < keySpace; i += 97 {
			v, ok, err := se.Get(stressKey(i))
			if err != nil {
				t.Fatalf("round %d: post-recovery get: %v", round, err)
			}
			if ok && !bytes.Equal(v, stressValue(i)) {
				t.Fatalf("round %d: key %d recovered as %q, want %q", round, i, v, stressValue(i))
			}
		}
		if err := se.Release(); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().ViewPublishes == 0 {
		t.Fatal("no shard views were published during the stress run")
	}
}

// TestGetHotPathMutexFree asserts the acceptance criterion directly: with
// mutex profiling at full rate and heavy reader/writer concurrency, no
// contended mutex stack may pass through Session.Get. Writers are expected
// to contend (shard mutex) — only the get path must stay clean.
func TestGetHotPathMutexFree(t *testing.T) {
	old := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(old)

	cfg := TestConfig()
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	loader := s.NewSession(simclock.New(0)).(*Session)
	const keys = 1024
	for i := 0; i < keys; i++ {
		if err := loader.Put(stressKey(i), stressValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := loader.Release(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			se := s.NewSession(simclock.New(0)).(*Session)
			defer se.Release()
			rng := rand.New(rand.NewSource(int64(w)))
			for op := 0; op < 20000; op++ {
				i := rng.Intn(keys)
				if w < 6 {
					if _, _, err := se.Get(stressKey(i)); err != nil {
						t.Error(err)
						return
					}
				} else if err := se.Put(stressKey(i), stressValue(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	var buf bytes.Buffer
	if err := pprof.Lookup("mutex").WriteTo(&buf, 1); err != nil {
		t.Fatal(err)
	}
	if prof := buf.String(); strings.Contains(prof, "(*Session).Get") {
		t.Fatalf("mutex contention recorded inside Session.Get:\n%s", prof)
	}
}

// TestLog2Exact pins log2 to exact power-of-two behavior and a loud failure
// otherwise: a floor-log2 of a non-power-of-two shard count would silently
// route the top slice of the hash space to the wrong shards.
func TestLog2Exact(t *testing.T) {
	for v, want := range map[int]int{1: 0, 2: 1, 4: 2, 8: 3, 64: 6, 1024: 10} {
		if got := log2(v); got != want {
			t.Errorf("log2(%d) = %d, want %d", v, got, want)
		}
	}
	for _, v := range []int{0, -4, 3, 48, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("log2(%d) did not panic", v)
				}
			}()
			log2(v)
		}()
	}
}

// TestNonPowerOfTwoShardsRejected is the config-level guard: Open must refuse
// the geometry long before log2 could mis-shard it.
func TestNonPowerOfTwoShardsRejected(t *testing.T) {
	for _, shards := range []int{3, 48, 100} {
		cfg := TestConfig()
		cfg.Shards = shards
		if _, err := Open(cfg); err == nil {
			t.Errorf("Shards=%d accepted; want validation error", shards)
		}
	}
	cfg := TestConfig()
	cfg.Shards = 16
	if _, err := Open(cfg); err != nil {
		t.Errorf("Shards=16 rejected: %v", err)
	}
}
