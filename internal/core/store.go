package core

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"chameleondb/internal/device"
	"chameleondb/internal/histogram"
	"chameleondb/internal/kvstore"
	"chameleondb/internal/obs"
	"chameleondb/internal/pmem"
	"chameleondb/internal/simclock"
	"chameleondb/internal/wlog"
	"chameleondb/internal/xhash"
)

// Store is a ChameleonDB instance. Create one with Open; drive it through
// per-worker Sessions.
type Store struct {
	cfg   Config
	dev   *device.Device
	arena *pmem.Arena
	log   *wlog.Log

	shards     []*shard
	shardShift uint

	// hashFn computes the 64-bit index hash for a key. It defaults to
	// xhash.Sum64 and is overridable only by in-package tests that need to
	// engineer full hash collisions (infeasible against the real mixer) to
	// exercise the collision fallback on the read and scan paths. Must be set
	// before any session runs; log entries persist the hash, so recovery is
	// self-consistent under any function.
	hashFn func([]byte) uint64

	// em defers arena reclamation of compacted-away tables until no
	// lock-free reader can still be probing them.
	em *epochManager

	// gpmActive is set by the tail-latency monitor while Get-Protect Mode
	// suspends flushes and compactions. The sample window is lock-free so
	// the monitor never puts a mutex on the get path.
	gpmActive atomic.Bool
	gpmWindow *histogram.AtomicWindowed
	gpmTick   atomic.Int64

	// writeIntensive is the runtime Write-Intensive Mode switch. It lives
	// outside cfg because SetWriteIntensive may race with sessions reading
	// the mode in memTableFull; cfg stays immutable after Open.
	writeIntensive atomic.Bool

	stats Stats
	lat   latencies
	reg   *obs.Registry
	trace *obs.Trace

	// maint is the background maintenance pool (nil when
	// Config.MaintenanceWorkers == 0, which preserves the fully synchronous
	// put path bit-for-bit for the virtual-time figure experiments).
	maint *maintPool

	crashed atomic.Bool

	// crashGen counts crashes. Snapshots record it at creation and refuse to
	// scan across a crash/recovery boundary: recovery rebuilds the arena, so
	// a pre-crash snapshot's table references are dead even though the store
	// is readable again.
	crashGen atomic.Int64

	// closed is set (permanently) by Close. Session operations check it the
	// way they check crashed; NewSession during or after Close is safe — the
	// store tears nothing down, so a late session simply observes ErrClosed
	// on its first operation.
	closed atomic.Bool

	// replayPos is the current log-scan position while a recovery replay is
	// running, or MaxInt64 otherwise. Watermarks persisted during replay are
	// clamped to it: entries past the replay cursor are not yet in any
	// table, so a second crash must scan them again.
	replayPos atomic.Int64

	// Replication state (see internal/repl). readOnly gates client writes
	// while the store serves as a replica: Put/Delete/PutBatch/IncrBy return
	// ErrReadOnly, while the replication apply path (Session.ApplyReplicated)
	// bypasses the gate. replID is the replication lineage ID — a random
	// string minted per primary lifetime; two stores share a history iff
	// their IDs match, which is what makes incremental resume safe across
	// unrelated or diverged nodes whose bare epoch counters collide. replEpoch
	// is the replication epoch (bumped on failover promotion); replApplied a
	// replica's durably-applied primary-LSN watermark. All three are
	// persisted in the host-state record on file-backed stores so a restarted
	// replica resumes catch-up where its durable image actually is.
	readOnly    atomic.Bool
	replID      atomic.Pointer[string]
	replEpoch   atomic.Int64
	replApplied atomic.Int64

	// Recovery instrumentation (Table 4 restart times).
	lastRecoverReadyNs int64
	lastRecoverFullNs  int64
}

var _ kvstore.Store = (*Store)(nil)

// Open creates a ChameleonDB on a fresh simulated pmem device.
func Open(cfg Config) (*Store, error) {
	dev := device.New(device.OptanePmem)
	return OpenOn(cfg, dev)
}

// OpenOn creates a ChameleonDB on an existing device (so the harness can
// share one device model across phases).
func OpenOn(cfg Config, dev *device.Device) (*Store, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return openOnArena(cfg, dev, pmem.NewArena(dev, cfg.ArenaBytes))
}

// openOnArena boots a fresh store on an already-built arena: every shard
// allocates manifest slots and persists an initial empty manifest. The arena
// may be simulated or file-backed (OpenFile calls here for fresh
// directories); cfg must already be validated.
func openOnArena(cfg Config, dev *device.Device, arena *pmem.Arena) (*Store, error) {
	log, err := wlog.New(arena, cfg.LogBytes)
	if err != nil {
		return nil, err
	}
	s := newStoreShell(cfg, dev, arena, log)
	s.shards = make([]*shard, cfg.Shards)
	boot := simclock.New(0)
	for i := range s.shards {
		sh, err := newShard(s, i, boot)
		if err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", i, err)
		}
		s.shards[i] = sh
	}
	if cfg.MaintenanceWorkers > 0 {
		s.maint = newMaintPool(s, cfg.MaintenanceWorkers)
	}
	return s, nil
}

// newStoreShell initializes every Store field that does not depend on how the
// shards come into being (fresh boot vs file-backed reattach).
func newStoreShell(cfg Config, dev *device.Device, arena *pmem.Arena, log *wlog.Log) *Store {
	s := &Store{
		cfg:        cfg,
		dev:        dev,
		arena:      arena,
		log:        log,
		shardShift: 64 - uint(log2(cfg.Shards)),
		hashFn:     xhash.Sum64,
		em:         newEpochManager(),
	}
	s.replayPos.Store(int64(1) << 62)
	s.writeIntensive.Store(cfg.WriteIntensive)
	if cfg.TraceEvents > 0 {
		s.trace = obs.NewTrace(cfg.TraceEvents)
	}
	s.buildRegistry()
	if cfg.GetProtect.Enabled {
		s.gpmWindow = histogram.NewAtomicWindowed(cfg.GetProtect.WindowSize)
	}
	return s
}

// log2 returns the exact base-2 logarithm of v. shardFor routes keys by the
// hash's top log2(Shards) bits, which is only a bijection onto the shard
// array for power-of-two counts — a floor-log2 of, say, 48 shards would
// silently fold the top third of the hash space onto the wrong shards.
// Config.validate rejects non-power-of-two counts before any store is built;
// this panic guards against callers bypassing validation.
func log2(v int) int {
	if v <= 0 || v&(v-1) != 0 {
		panic(fmt.Sprintf("core: shard count %d is not a power of two", v))
	}
	return bits.TrailingZeros64(uint64(v))
}

// Name implements kvstore.Store.
func (s *Store) Name() string { return "ChameleonDB" }

// Config returns the store's configuration. WriteIntensive reflects the
// current runtime mode, which SetWriteIntensive may have toggled since Open.
func (s *Store) Config() Config {
	cfg := s.cfg
	cfg.WriteIntensive = s.writeIntensive.Load()
	return cfg
}

// Device returns the simulated pmem device (for harness stats).
func (s *Store) Device() *device.Device { return s.dev }

// Log exposes the storage log (tests and the harness use its counters).
func (s *Store) Log() *wlog.Log { return s.log }

// shardFor routes a key hash to its shard: the top bits select the shard so
// the low bits remain independent for in-table slot selection.
func (s *Store) shardFor(h uint64) *shard {
	if s.shardShift == 64 {
		return s.shards[0]
	}
	return s.shards[h>>s.shardShift]
}

// DeviceStats implements kvstore.Store.
func (s *Store) DeviceStats() device.Stats { return s.dev.Stats() }

// DRAMFootprint implements kvstore.Store: MemTables + ABIs + GPM monitor.
// It reads each shard's published view instead of taking shard locks, so a
// /stats.json scrape under load never stalls writers or queues behind a
// compaction. The totals are a consistent per-shard snapshot; table sizes
// and accelerator footprints are immutable once published.
func (s *Store) DRAMFootprint() int64 {
	var total int64
	for _, sh := range s.shards {
		v := sh.view.Load()
		total += v.mem.DRAMFootprint()
		for _, fm := range v.frozen {
			total += fm.mem.DRAMFootprint()
		}
		if v.abi != nil {
			total += v.abi.DRAMFootprint()
		}
		for _, lvl := range v.levels {
			for _, p := range lvl {
				total += p.dramFootprint()
			}
		}
		for _, p := range v.dumped {
			total += p.dramFootprint()
		}
		if v.last != nil {
			total += v.last.dramFootprint()
		}
	}
	if s.gpmWindow != nil {
		total += int64(s.cfg.GetProtect.WindowSize) * 8
	}
	return total
}

// Crash implements kvstore.Store: power loss. All sessions must be quiesced.
func (s *Store) Crash() {
	s.crashed.Store(true)
	s.crashGen.Add(1)
	// Quiesce the maintenance pool before touching shared state: workers
	// mid-job stop at their next persist (the arena drops modelled writes
	// after the failure instant), and pause waits for them to park so the
	// wipe below does not race a merge.
	if s.maint != nil {
		s.maint.pause()
	}
	s.trace.Emit(0, obs.EvCrash, -1, 0)
	// Pending epoch retirements die with the power: their arena space is
	// reclaimed by the allocator's conservative post-crash rebuild, not by
	// writes issued after the failure instant.
	s.em.discard()
	s.arena.Crash()
	// Power loss clears the device pipes: recovery does not queue behind
	// pre-crash in-flight transfers, and its clock starts fresh.
	s.dev.ResetTimelines()
	for _, sh := range s.shards {
		sh.tl.Reset()
	}
	// Volatile state dies with the process.
	for _, sh := range s.shards {
		sh.volatileWipe()
	}
	s.gpmActive.Store(false)
}

// Close implements kvstore.Store. It is idempotent and safe to call
// concurrently with NewSession and with running sessions: the store owns no
// external resources to tear down (the simulated arena is heap memory), so
// Close only latches the closed flag — every subsequent session operation
// returns ErrClosed, and a session created while Close runs observes the same
// on first use. Network front ends (internal/server) lean on this: the
// listener drains connections and then closes the store without coordinating
// against stragglers that still hold a Session.
//
// Close does not flush: durability of acknowledged writes is each session
// owner's contract (Session.Flush), and the serving layer's group commit has
// already flushed everything it acknowledged.
func (s *Store) Close() error {
	first := s.closed.CompareAndSwap(false, true)
	// Stop the maintenance workers (idempotent). Queued jobs are abandoned:
	// durability of acknowledged writes is the session owner's contract, and
	// a session that called Flush has already drained its shards.
	if s.maint != nil {
		s.maint.stop()
	}
	med := s.arena.Medium()
	if med == nil || !first {
		return nil
	}
	// File-backed store: write a final host-metadata record (the freshest
	// allocator mark shortens the next replay) and release the backend, which
	// syncs the manifest and the directory entries on the way out. After a
	// simulated power failure or a backend I/O error the durable state must
	// stay exactly as the failure left it, so only the record write is
	// skipped — Close still releases the descriptors.
	if !s.crashed.Load() && !s.dev.PowerFailed() && s.arena.MediumErr() == nil {
		s.persistHostMeta()
	}
	return med.Close()
}

// readable gates session operations on the store's lifecycle state.
func (s *Store) readable() error {
	if s.crashed.Load() {
		return ErrCrashed
	}
	if s.closed.Load() {
		return ErrClosed
	}
	if err := s.arena.MediumErr(); err != nil {
		// A persist failed to reach the backing store: some acknowledged
		// write may not be durable, so the store fails stop rather than
		// acknowledging more.
		return fmt.Errorf("core: persistence backend failed: %w", err)
	}
	return nil
}

// SetReadOnly flips the replica write gate: while set, client write paths
// (Put, Delete, PutBatch, DeleteIfPresent, IncrBy) return ErrReadOnly and the
// serving layer answers -READONLY; the replication apply path is exempt.
// Promotion clears it. Safe to call while sessions are running.
func (s *Store) SetReadOnly(on bool) { s.readOnly.Store(on) }

// ReadOnly reports whether the replica write gate is set.
func (s *Store) ReadOnly() bool { return s.readOnly.Load() }

// ReplState returns the store's replication identity: the lineage ID and
// epoch it last served under and (for replicas) the durably-applied
// primary-LSN watermark. The ID is "" on stores that never replicated.
func (s *Store) ReplState() (id string, epoch, applied int64) {
	if p := s.replID.Load(); p != nil {
		id = *p
	}
	return id, s.replEpoch.Load(), s.replApplied.Load()
}

// SetReplState records the replication identity and, on file-backed stores,
// persists it in the host-state record. A replica calls it only after locally
// flushing everything at or below applied, so the durable watermark never
// runs ahead of the durable data it stands for.
func (s *Store) SetReplState(id string, epoch, applied int64) {
	s.replID.Store(&id)
	s.replEpoch.Store(epoch)
	s.replApplied.Store(applied)
	if !s.crashed.Load() && !s.closed.Load() {
		s.persistHostMeta()
	}
}

// SetWriteIntensive toggles Write-Intensive Mode at runtime (Section 2.3
// describes it as a user option). Safe to call while sessions are running.
func (s *Store) SetWriteIntensive(on bool) {
	s.writeIntensive.Store(on)
}

// GPMActive reports whether Get-Protect Mode is currently engaged.
func (s *Store) GPMActive() bool { return s.gpmActive.Load() }

// recordGetLatency feeds the dynamic Get-Protect monitor (Section 2.4) and
// flips the mode when the windowed tail crosses the thresholds. now is the
// worker's virtual timestamp (for trace events); ns the get's latency.
// Lock-free: sampled gets land in an atomic window, and only every 64th
// sample pays for a percentile scan.
func (s *Store) recordGetLatency(now, ns int64) {
	gp := s.cfg.GetProtect
	if !gp.Enabled {
		return
	}
	n := s.gpmTick.Add(1)
	if n%int64(gp.SampleEvery) != 0 {
		return
	}
	s.gpmWindow.Record(ns)
	if n%(int64(gp.SampleEvery)*64) != 0 {
		return
	}
	p99 := s.gpmWindow.Percentile(99)
	if p99 == 0 {
		return
	}
	if p99 > gp.EnterThresholdNs {
		if s.gpmActive.CompareAndSwap(false, true) {
			s.stats.GPMEntries.Add(1)
			s.trace.Emit(now, obs.EvGPMEnter, -1, p99)
		}
	} else if p99 < gp.ExitThresholdNs {
		if s.gpmActive.CompareAndSwap(true, false) {
			s.stats.GPMExits.Add(1)
			s.trace.Emit(now, obs.EvGPMExit, -1, p99)
			// Dumped ABIs are merged back lazily: mark every shard so its
			// next put triggers the postponed last-level compaction if it
			// actually holds a dump (checked under the shard lock).
			for _, sh := range s.shards {
				sh.pendingMerge.Store(true)
			}
		}
	}
}
