package core

import (
	"chameleondb/internal/bloom"
	"chameleondb/internal/device"
	"chameleondb/internal/hashtable"
	"chameleondb/internal/simclock"
)

// ptable couples a persisted hash table with the optional volatile
// accelerators used by the Pmem-LSM baseline variants (Section 3.2):
//
//   - filter: an in-DRAM bloom filter per table (Pmem-LSM-F). Construction
//     burns CPU on every flush and compaction — the cost behind that
//     variant's low put throughput in Figure 10.
//   - pinned: a full in-DRAM copy of the table (Pmem-LSM-PinK pins every
//     level except the last), trading ChameleonDB-sized DRAM for multi-probe
//     DRAM reads instead of Pmem reads.
//
// ChameleonDB itself uses neither: its ABI makes per-table accelerators
// redundant, which is exactly the comparison the paper draws.
type ptable struct {
	t      *hashtable.PmemTable
	filter *bloom.Filter
	pinned *hashtable.Mem
}

// build constructs the requested accelerators from the persisted table,
// charging filter-construction CPU and DRAM copy costs.
func (p *ptable) build(c *simclock.Clock, wantFilter, wantPin bool) {
	if wantFilter {
		p.filter = bloom.New(p.t.Len())
		p.t.Iterate(func(s hashtable.Slot) bool {
			p.filter.Add(c, s.Hash)
			return true
		})
	}
	if wantPin {
		p.pinned = hashtable.NewMem(p.t.Cap())
		p.t.Iterate(func(s hashtable.Slot) bool {
			p.pinned.Insert(s.Hash, s.Ref)
			return true
		})
		c.Advance(int64(float64(p.t.SizeBytes()) * device.CostDRAMSeqPerByte))
	}
}

// wrapUpper attaches the configured accelerators to a new upper-level table.
func (sh *shard) wrapUpper(c *simclock.Clock, t *hashtable.PmemTable) *ptable {
	p := &ptable{t: t}
	p.build(c, sh.store.cfg.BloomFilters, sh.store.cfg.PinUppers)
	return p
}

// wrapLast attaches accelerators appropriate for the last level: bloom
// filters apply (Pmem-LSM-F filters every table), pinning does not
// (Pmem-LSM-PinK keeps the last level in Pmem only).
func (sh *shard) wrapLast(c *simclock.Clock, t *hashtable.PmemTable) *ptable {
	p := &ptable{t: t}
	p.build(c, sh.store.cfg.BloomFilters, false)
	return p
}

// get probes the table through its accelerators.
func (p *ptable) get(c *simclock.Clock, h uint64) (hashtable.Slot, bool) {
	if p.filter != nil && !p.filter.Contains(c, h) {
		return hashtable.Slot{}, false
	}
	if p.pinned != nil {
		ref, probes, ok := p.pinned.Get(h)
		c.Advance(device.DRAMProbeCost(probes))
		if !ok {
			return hashtable.Slot{}, false
		}
		return hashtable.Slot{Hash: h, Ref: ref}, true
	}
	return p.t.Get(c, h)
}

// dramFootprint reports the accelerators' volatile memory.
func (p *ptable) dramFootprint() int64 {
	var n int64
	if p.filter != nil {
		n += p.filter.SizeBytes()
	}
	if p.pinned != nil {
		n += p.pinned.DRAMFootprint()
	}
	return n
}

// release returns the persisted table's space to the arena.
func (p *ptable) release() { p.t.Release() }
