package core

import (
	"encoding/binary"
	"fmt"

	"chameleondb/internal/wlog"
)

// hostState is the process-side metadata a file-backed store needs to reattach
// to its durable arena image after a real restart. On the simulated backend
// all of this lives in the Store struct and survives the in-process
// Crash/Recover cycle; across an exec boundary it must be durable, so the
// file backend persists it as the medium's host-metadata record (see
// pmem.Medium.WriteMeta) at every point where losing it would lose
// acknowledged data: whenever the log's segment directory changes, at boot,
// and at clean Close.
//
// Everything else recovery needs — shard manifests, tables, log entries — is
// already in the arena's durable image and is found from here: the manifest
// slot offsets locate the per-shard manifests, and those locate the tables
// and watermarks.
type hostState struct {
	fp configFingerprint

	// ArenaNext is the bump-allocator high-water mark at persist time. It can
	// trail table allocations made since the last segment-map change; recovery
	// closes the gap with ReserveFloor as it decodes each shard manifest.
	ArenaNext int64

	// Log segment directory: GC head, tail, and segment-index -> arena-offset
	// map, exactly wlog.SegmentSnapshot.
	LogHead int64
	LogNext int64
	Segs    map[int64]int64

	// Per-shard manifest slot locations (allocated once at first boot).
	ManifestSlotBytes int64
	ManifestOffs      []int64

	// Replication identity (see internal/repl). ReplID is the replication
	// lineage ID: a random string minted once per primary lifetime, adopted
	// by replicas at handshake. Two stores share an LSN history iff their IDs
	// match, so an unrelated primary whose bare epoch counter happens to
	// collide is still detected at handshake and fully resynced. ReplEpoch is
	// the replication epoch this store last served under — bumped by failover
	// promotion, so a deposed primary rejoining with a stale epoch is
	// detected at handshake and fully resynced instead of resurrecting
	// unacked writes. ReplApplied is a replica's durably-applied primary-LSN
	// watermark: the resume point for catch-up after a restart. All are zero
	// on stores that never replicated.
	ReplID      string
	ReplEpoch   int64
	ReplApplied int64
}

// configFingerprint pins the geometry a directory was created with. A reopen
// with a different geometry would misinterpret every arena offset, so it is
// rejected outright rather than recovered incorrectly.
type configFingerprint struct {
	Shards, ArenaBytes, LogBytes int64
	MemTableSlots, ABISlots      int64
	Levels, Ratio, MaxDumps      int64
}

func fingerprintOf(cfg Config) configFingerprint {
	return configFingerprint{
		Shards:        int64(cfg.Shards),
		ArenaBytes:    cfg.ArenaBytes,
		LogBytes:      cfg.LogBytes,
		MemTableSlots: int64(cfg.MemTableSlots),
		ABISlots:      int64(cfg.ABISlots),
		Levels:        int64(cfg.Levels),
		Ratio:         int64(cfg.Ratio),
		MaxDumps:      int64(cfg.GetProtect.MaxDumps),
	}
}

const hostStateVersion = 3

// maxReplIDLen bounds the persisted (and wire) replication lineage ID. IDs
// the node mints are 40 hex chars; the bound rejects corrupt records.
const maxReplIDLen = 64

// hostStateMax bounds the encoded size of any host state a config can
// produce, so the medium's metadata slots can be sized before the store
// exists. The segment directory dominates: the log holds at most
// LogBytes/segmentSize live segments.
func hostStateMax(cfg Config) int64 {
	maxSegs := cfg.LogBytes/wlog.SegmentSizeFor(cfg.LogBytes) + 2
	n := int64(8) + 8*8 + 6*8 + 8 + maxReplIDLen + 8 + int64(cfg.Shards)*8 + 8 + maxSegs*16
	return (n + 4095) / 4096 * 4096
}

func encodeHostState(hs hostState) []byte {
	var buf []byte
	u64 := func(v int64) { buf = binary.LittleEndian.AppendUint64(buf, uint64(v)) }
	u64(hostStateVersion)
	u64(hs.fp.Shards)
	u64(hs.fp.ArenaBytes)
	u64(hs.fp.LogBytes)
	u64(hs.fp.MemTableSlots)
	u64(hs.fp.ABISlots)
	u64(hs.fp.Levels)
	u64(hs.fp.Ratio)
	u64(hs.fp.MaxDumps)
	u64(hs.ArenaNext)
	u64(hs.LogHead)
	u64(hs.LogNext)
	u64(hs.ManifestSlotBytes)
	u64(hs.ReplEpoch)
	u64(hs.ReplApplied)
	rid := hs.ReplID
	if len(rid) > maxReplIDLen {
		rid = rid[:maxReplIDLen]
	}
	u64(int64(len(rid)))
	buf = append(buf, rid...)
	u64(int64(len(hs.ManifestOffs)))
	for _, off := range hs.ManifestOffs {
		u64(off)
	}
	u64(int64(len(hs.Segs)))
	for idx, off := range hs.Segs {
		u64(idx)
		u64(off)
	}
	return buf
}

// decodeHostState parses an encoded host-state record. It must be total on
// arbitrary bytes — the record arrives from disk behind a checksum, but the
// fuzz target feeds it garbage directly.
func decodeHostState(b []byte) (hostState, error) {
	var hs hostState
	pos := 0
	u64 := func() (int64, error) {
		if pos+8 > len(b) {
			return 0, fmt.Errorf("core: truncated host state at byte %d", pos)
		}
		v := int64(binary.LittleEndian.Uint64(b[pos : pos+8]))
		pos += 8
		return v, nil
	}
	v, err := u64()
	if err != nil {
		return hs, err
	}
	if v != hostStateVersion {
		return hs, fmt.Errorf("core: host state version %d, want %d", v, hostStateVersion)
	}
	for _, dst := range []*int64{
		&hs.fp.Shards, &hs.fp.ArenaBytes, &hs.fp.LogBytes,
		&hs.fp.MemTableSlots, &hs.fp.ABISlots,
		&hs.fp.Levels, &hs.fp.Ratio, &hs.fp.MaxDumps,
		&hs.ArenaNext, &hs.LogHead, &hs.LogNext, &hs.ManifestSlotBytes,
		&hs.ReplEpoch, &hs.ReplApplied,
	} {
		if *dst, err = u64(); err != nil {
			return hs, err
		}
	}
	ridLen, err := u64()
	if err != nil {
		return hs, err
	}
	if ridLen < 0 || ridLen > maxReplIDLen {
		return hs, fmt.Errorf("core: host state repl ID length %d out of range", ridLen)
	}
	if pos+int(ridLen) > len(b) {
		return hs, fmt.Errorf("core: truncated host state repl ID at byte %d", pos)
	}
	hs.ReplID = string(b[pos : pos+int(ridLen)])
	pos += int(ridLen)
	nShards, err := u64()
	if err != nil {
		return hs, err
	}
	if nShards < 0 || nShards > 1<<16 || nShards != hs.fp.Shards {
		return hs, fmt.Errorf("core: host state lists %d manifests for %d shards", nShards, hs.fp.Shards)
	}
	hs.ManifestOffs = make([]int64, nShards)
	for i := range hs.ManifestOffs {
		if hs.ManifestOffs[i], err = u64(); err != nil {
			return hs, err
		}
		if hs.ManifestOffs[i] <= 0 {
			return hs, fmt.Errorf("core: host state manifest offset %d out of range", hs.ManifestOffs[i])
		}
	}
	nSegs, err := u64()
	if err != nil {
		return hs, err
	}
	if nSegs < 0 || nSegs > 1<<20 {
		return hs, fmt.Errorf("core: host state lists %d log segments", nSegs)
	}
	hs.Segs = make(map[int64]int64, nSegs)
	for i := int64(0); i < nSegs; i++ {
		idx, err := u64()
		if err != nil {
			return hs, err
		}
		off, err := u64()
		if err != nil {
			return hs, err
		}
		if idx < 0 || off <= 0 {
			return hs, fmt.Errorf("core: host state segment %d at offset %d out of range", idx, off)
		}
		if _, dup := hs.Segs[idx]; dup {
			return hs, fmt.Errorf("core: host state repeats segment %d", idx)
		}
		hs.Segs[idx] = off
	}
	return hs, nil
}

// logMetaHook is installed as the wlog meta hook on file-backed stores: it
// runs under the log's metadata mutex immediately after every segment-map
// change, so the durable segment directory always covers every LSN a session
// could have been acknowledged against.
func (s *Store) logMetaHook(head, next int64, segs map[int64]int64) {
	s.persistHostMetaWith(head, next, segs)
}

// persistHostMeta snapshots the log and persists the host-metadata record —
// the boot- and Close-time entry point. No-op on the simulated backend.
func (s *Store) persistHostMeta() {
	if s.arena.Medium() == nil {
		return
	}
	head, next, segs := s.log.SegmentSnapshot()
	s.persistHostMetaWith(head, next, segs)
}

func (s *Store) persistHostMetaWith(head, next int64, segs map[int64]int64) {
	if s.arena.Medium() == nil {
		return
	}
	hs := hostState{
		fp:                fingerprintOf(s.cfg),
		ArenaNext:         s.arena.InUse(),
		LogHead:           head,
		LogNext:           next,
		Segs:              segs,
		ManifestSlotBytes: s.shards[0].manifest.slotBytes,
		ManifestOffs:      make([]int64, len(s.shards)),
		ReplEpoch:         s.replEpoch.Load(),
		ReplApplied:       s.replApplied.Load(),
	}
	if p := s.replID.Load(); p != nil {
		hs.ReplID = *p
	}
	for i, sh := range s.shards {
		hs.ManifestOffs[i] = sh.manifest.off
	}
	s.arena.PersistMeta(encodeHostState(hs))
}
