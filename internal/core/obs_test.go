package core

import (
	"fmt"
	"sync"
	"testing"

	"chameleondb/internal/hashtable"
	"chameleondb/internal/obs"
	"chameleondb/internal/simclock"
	"chameleondb/internal/xhash"
)

// TestDeleteCountsAsDelete checks the accounting fix: tombstone appends land
// in the Deletes counter, not Puts.
func TestDeleteCountsAsDelete(t *testing.T) {
	s := openTest(t)
	se := s.NewSession(simclock.New(0))
	for i := 0; i < 5; i++ {
		if err := se.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := se.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Puts != 5 {
		t.Errorf("Puts = %d, want 5", st.Puts)
	}
	if st.Deletes != 2 {
		t.Errorf("Deletes = %d, want 2", st.Deletes)
	}
	// The write path's latency histogram covers both (same code path).
	if n := s.PutLatency().Count(); n != 7 {
		t.Errorf("put latency count = %d, want 7", n)
	}
}

// TestHashMismatchCountsAsMiss checks the reclassification fix: a full 64-bit
// hash collision makes the get report a miss, so it must count as GetMiss (and
// HashMismatches), not as a hit at the structure that produced the colliding
// ref — otherwise the per-source counters would not sum consistently with what
// callers observed.
func TestHashMismatchCountsAsMiss(t *testing.T) {
	s := openTest(t)
	c := simclock.New(0)
	se := s.NewSession(c)
	keyA := []byte("collision-victim")
	if err := se.Put(keyA, []byte("valueA")); err != nil {
		t.Fatal(err)
	}
	if err := se.Flush(); err != nil {
		t.Fatal(err)
	}

	// Forge the collision: point keyB's hash at keyA's log entry, as a real
	// 64-bit collision would.
	keyB := []byte("collision-imposter")
	hA, hB := xhash.Sum64(keyA), xhash.Sum64(keyB)
	shA := s.shardFor(hA)
	shA.mu.Lock()
	slot, _, ok := shA.lookup(c, hA)
	shA.mu.Unlock()
	if !ok {
		t.Fatal("keyA not found in its shard")
	}
	shB := s.shardFor(hB)
	shB.mu.Lock()
	err := shB.insertMem(c, hB, hashtable.MakeRef(slot.LSN(), false))
	shB.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}

	before := s.Stats()
	v, found, err := se.Get(keyB)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatalf("colliding get returned %q, want miss", v)
	}
	after := s.Stats()
	if after.HashMismatches != before.HashMismatches+1 {
		t.Errorf("HashMismatches = %d, want %d", after.HashMismatches, before.HashMismatches+1)
	}
	if after.GetMiss != before.GetMiss+1 {
		t.Errorf("GetMiss = %d, want %d (mismatch must count as miss)", after.GetMiss, before.GetMiss+1)
	}
	if after.GetMemTable != before.GetMemTable {
		t.Errorf("GetMemTable advanced on a miss: %d -> %d", before.GetMemTable, after.GetMemTable)
	}
}

// TestPerSourceHistogramsMatchCounters checks the Figure 6 invariant: each
// source's latency histogram holds exactly as many samples as its counter,
// and the sources sum to the number of gets issued.
func TestPerSourceHistogramsMatchCounters(t *testing.T) {
	s := openTest(t)
	se := s.NewSession(simclock.New(0))
	const n = 4000
	for i := 0; i < n; i++ {
		if err := se.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	gets := 0
	for i := 0; i < n; i += 3 { // hits across memtable/abi/upper/last
		if _, ok, err := se.Get(key(i)); err != nil || !ok {
			t.Fatalf("get key(%d) = %v, %v", i, ok, err)
		}
		gets++
	}
	for i := n; i < n+50; i++ { // misses
		if _, ok, _ := se.Get(key(i)); ok {
			t.Fatalf("found absent key(%d)", i)
		}
		gets++
	}

	st := s.Stats()
	bySource := s.GetLatencyBySource()
	counters := map[string]int64{
		"memtable": st.GetMemTable,
		"abi":      st.GetABI,
		"dumped":   st.GetDumped,
		"upper":    st.GetUpper,
		"last":     st.GetLast,
		"miss":     st.GetMiss,
	}
	var sum int64
	for src, want := range counters {
		got := bySource[src].Count()
		if got != want {
			t.Errorf("%s: histogram count %d != counter %d", src, got, want)
		}
		sum += want
	}
	if sum != int64(gets) {
		t.Errorf("source counters sum to %d, want %d gets issued", sum, gets)
	}
}

// TestSetWriteIntensiveToggleRace is the -race regression for the mode
// switch: SetWriteIntensive used to write s.cfg.WriteIntensive while
// memTableFull read it from concurrent sessions.
func TestSetWriteIntensiveToggleRace(t *testing.T) {
	s := openTest(t)
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			se := s.NewSession(simclock.New(0))
			for i := 0; i < 2000; i++ {
				if err := se.Put([]byte(fmt.Sprintf("w%d-%06d", w, i)), val(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			s.SetWriteIntensive(i%2 == 0)
		}
	}()
	wg.Wait()
	<-done
	if got := s.Config().WriteIntensive; got {
		t.Errorf("final WriteIntensive = %v, want false (last toggle was off)", got)
	}
}

// TestGoldenTraceSequence scripts a tiny deterministic workload and checks
// the exact event-type sequence the engine emits: flush activity while
// loading, a crash, and the two recovery phases.
func TestGoldenTraceSequence(t *testing.T) {
	s := openTest(t, func(cfg *Config) {
		cfg.Shards = 1
		cfg.MemTableSlots = 16
		cfg.Levels = 3
		cfg.Ratio = 2
		cfg.TraceEvents = 256
	})
	se := s.NewSession(simclock.New(0))
	for i := 0; i < 200; i++ {
		if err := se.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := se.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Crash()
	if err := s.Recover(simclock.New(0)); err != nil {
		t.Fatal(err)
	}

	var types []obs.EventType
	for _, ev := range s.Trace().Events() {
		types = append(types, ev.Type)
	}
	want := goldenTraceTypes()
	if len(types) != len(want) {
		t.Fatalf("trace has %d events, want %d:\n%v", len(types), len(want), types)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("trace[%d] = %s, want %s\nfull: %v", i, types[i], want[i], types)
		}
	}

	// Virtual timestamps are monotone within the load (single worker) and
	// every shard id is valid.
	evs := s.Trace().Events()
	for i, ev := range evs {
		if ev.Shard < -1 || ev.Shard >= 1 {
			t.Errorf("event %d has shard %d outside [-1, 0]", i, ev.Shard)
		}
		if ev.Type == obs.EvCrash && ev.VNanos != 0 {
			t.Errorf("crash event carries virtual time %d, want 0", ev.VNanos)
		}
	}
}

// goldenTraceTypes is the recorded sequence for the scripted workload above:
// 200 puts into one shard with 16-slot MemTables produce a fixed cadence of
// flushes — two L0 tables trigger an upper compaction (ratio 2), and every
// second upper compaction cascades into the last level — then the crash and
// the two-phase recovery close the trace.
func goldenTraceTypes() []obs.EventType {
	return []obs.EventType{
		obs.EvFlush, obs.EvFlush, obs.EvUpperCompact,
		obs.EvFlush, obs.EvFlush, obs.EvLastCompact,
		obs.EvFlush, obs.EvFlush, obs.EvUpperCompact,
		obs.EvFlush, obs.EvFlush, obs.EvLastCompact,
		obs.EvFlush, obs.EvFlush, obs.EvUpperCompact,
		obs.EvFlush, obs.EvFlush, obs.EvLastCompact,
		obs.EvFlush, obs.EvFlush, obs.EvUpperCompact,
		obs.EvFlush,
		obs.EvCrash, obs.EvRecoverReady, obs.EvRecoverFull,
	}
}
