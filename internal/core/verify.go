package core

import (
	"fmt"

	"chameleondb/internal/hashtable"
	"chameleondb/internal/simclock"
)

// FlushAll forces every shard to flush its MemTable to a persisted L0 table
// (running whatever compactions the level occupancy then demands). It is a
// maintenance entry point for the crash-consistency harness and benchmarks;
// quiesce concurrent writers first, and note that sessions' unsealed log
// batches still need their own Flush to become durable.
func (s *Store) FlushAll(c *simclock.Clock) error {
	if s.crashed.Load() {
		return ErrCrashed
	}
	// Settle the background pipeline first: flushing the live MemTable while
	// an older frozen table is still queued would persist L0 tables out of
	// version order.
	if s.maint != nil {
		if err := s.maint.drainAll(); err != nil {
			return err
		}
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		err := sh.async(c, func() error {
			for len(sh.frozen) > 0 {
				if err := sh.flushFrozen(c); err != nil {
					return err
				}
			}
			return sh.flush(c)
		})
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// DumpABIs writes each shard's Auxiliary Bypass Index to persistent memory as
// a dumped table (the Get-Protect Mode dump of Figure 9) without waiting for
// the tail-latency monitor to engage — the maintenance entry point that lets
// the crash-consistency harness enumerate the dump path's persist events. At
// most two concurrent dumps per shard are taken so the manifest's sized slot
// is never exceeded. No-op for shards with an empty ABI or when the ABI is
// disabled.
func (s *Store) DumpABIs(c *simclock.Clock) error {
	if s.crashed.Load() {
		return ErrCrashed
	}
	if s.cfg.DisableABI {
		return nil
	}
	// Same settling barrier as FlushAll: a dump taken mid-spill would
	// persist an ABI whose log-only entries a queued job is about to move.
	if s.maint != nil {
		if err := s.maint.drainAll(); err != nil {
			return err
		}
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		var err error
		if sh.abi.Len() > 0 && len(sh.dumped) < 2 {
			err = sh.async(c, func() error { return sh.dumpABI(c) })
		}
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// VerifyIntegrity checks the store's structural invariants, the
// self-consistency half of the crash-recovery contract:
//
//   - every persisted table's occupied-slot count matches its manifest count;
//   - every hash present in any index structure resolves through the normal
//     read path (in particular, upper-level entries are covered by the ABI or
//     a dumped table — the bypass invariant of Section 2.2);
//   - every resolved non-tombstone reference points at a live, checksummed
//     log entry whose hash matches (no dangling log pointers).
//
// Only winning references are chased: a superseded slot may legally point
// into a log segment that garbage collection has since reclaimed. Callers
// must quiesce all sessions first.
func (s *Store) VerifyIntegrity(c *simclock.Clock) error {
	if s.crashed.Load() {
		return ErrCrashed
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		err := sh.verifyLocked(c)
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("core: shard %d: %w", sh.id, err)
		}
	}
	return nil
}

func (sh *shard) verifyLocked(c *simclock.Clock) error {
	type named struct {
		name string
		p    *ptable
	}
	var tables []named
	for lvl := range sh.levels {
		for i, p := range sh.levels[lvl] {
			tables = append(tables, named{fmt.Sprintf("L%d[%d]", lvl, i), p})
		}
	}
	for i, p := range sh.dumped {
		tables = append(tables, named{fmt.Sprintf("dump[%d]", i), p})
	}
	if sh.last != nil {
		tables = append(tables, named{"last", sh.last})
	}

	hashes := make(map[uint64]struct{})
	collect := func(s hashtable.Slot) bool {
		hashes[s.Hash] = struct{}{}
		return true
	}
	for _, t := range tables {
		n := 0
		t.p.t.Iterate(func(s hashtable.Slot) bool { n++; return collect(s) })
		if n != t.p.t.Len() {
			return fmt.Errorf("table %s holds %d slots, manifest says %d", t.name, n, t.p.t.Len())
		}
	}
	sh.mem.Iterate(collect)
	for _, fm := range sh.frozen {
		fm.mem.Iterate(collect)
	}
	if sh.abi != nil {
		sh.abi.Iterate(collect)
	}

	for h := range hashes {
		slot, _, ok := sh.lookup(c, h)
		if !ok {
			return fmt.Errorf("hash %#x present in a structure but unreachable via the read path", h)
		}
		if slot.Tombstone() {
			continue
		}
		e, err := sh.store.log.Read(c, slot.LSN())
		if err != nil {
			return fmt.Errorf("hash %#x: winning reference LSN %d is dangling: %w", h, slot.LSN(), err)
		}
		if e.Hash != h {
			return fmt.Errorf("hash %#x: LSN %d holds entry for hash %#x", h, slot.LSN(), e.Hash)
		}
	}
	return nil
}
