package core

import (
	"testing"

	"chameleondb/internal/kvstore"
	"chameleondb/internal/storetest"
)

func TestConformance(t *testing.T) {
	storetest.Run(t, "ChameleonDB", func(t *testing.T) kvstore.Store {
		t.Helper()
		s, err := Open(TestConfig())
		if err != nil {
			t.Fatal(err)
		}
		return s
	}, storetest.Options{Keys: 8000, SupportsRecovery: true})
}

func TestConformanceWriteIntensive(t *testing.T) {
	storetest.Run(t, "ChameleonDB-WIM", func(t *testing.T) kvstore.Store {
		t.Helper()
		cfg := TestConfig()
		cfg.WriteIntensive = true
		s, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}, storetest.Options{Keys: 8000, SupportsRecovery: true})
}
