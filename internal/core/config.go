// Package core implements ChameleonDB (Zhang et al., EuroSys'21): a
// key-value store for Optane persistent memory that combines an LSM-style
// multi-level persistent index (for batched, amplification-free writes and
// fast restart) with an in-DRAM Auxiliary Bypass Index (for O(1) reads that
// bypass the levels). See DESIGN.md section 3 for the paper-to-code map.
package core

import (
	"fmt"
	"math/rand"
	"runtime"
)

// CompactionMode selects how upper-level compactions cascade (Section 3.5 /
// Figure 15 of the paper).
type CompactionMode int

const (
	// DirectCompaction merges all cascading levels in one pass (Figure 5b),
	// the ChameleonDB default.
	DirectCompaction CompactionMode = iota
	// LevelByLevel performs the classic two-adjacent-levels cascade
	// (Figure 5a); retained for the Figure 15 ablation.
	LevelByLevel
)

func (m CompactionMode) String() string {
	if m == DirectCompaction {
		return "direct"
	}
	return "level-by-level"
}

// GPMConfig configures the dynamic Get-Protect Mode (Section 2.4).
type GPMConfig struct {
	// Enabled turns the dynamic monitor on.
	Enabled bool
	// EnterThresholdNs: when the windowed P99 get latency exceeds this,
	// compactions and flushes are suspended (2000 ns in the paper's
	// Figure 16 experiment).
	EnterThresholdNs int64
	// ExitThresholdNs: GPM is cancelled when the windowed P99 drops below
	// this. Defaults to EnterThresholdNs if zero.
	ExitThresholdNs int64
	// MaxDumps bounds how many ABI dumps may sit unmerged in the Pmem
	// (one by default, per Section 2.4).
	MaxDumps int
	// WindowSize is the number of recent get latencies in the monitor
	// window.
	WindowSize int
	// SampleEvery records one in N get latencies into the monitor.
	SampleEvery int
}

// Config parametrizes a ChameleonDB instance. The zero value is not valid;
// start from DefaultConfig (the paper's Table 1 geometry) or TestConfig and
// adjust.
type Config struct {
	// Shards is the number of index shards (power of two). Table 1: 16384.
	Shards int
	// MemTableSlots is each shard's MemTable capacity in 16 B slots (power
	// of two). Table 1: 8 KB per shard = 512 slots.
	MemTableSlots int
	// Levels is the number of LSM levels including the last. Table 1: 4.
	Levels int
	// Ratio is the between-level ratio r. Table 1: 4.
	Ratio int
	// LoadFactorMin/Max bound the randomized per-shard MemTable load-factor
	// thresholds (Section 2.5). Table 1: 0.65–0.85.
	LoadFactorMin float64
	LoadFactorMax float64
	// ABISlots is each shard's Auxiliary Bypass Index capacity in slots.
	// Table 1: 512 KB per shard = 32768 slots. Zero derives it from the
	// upper-level geometry.
	ABISlots int
	// ABIFullFraction is the ABI load factor that forces a last-level
	// compaction in Write-Intensive / Get-Protect operation.
	ABIFullFraction float64

	// ArenaBytes sizes the simulated pmem arena; LogBytes the value-log
	// region inside it.
	ArenaBytes int64
	LogBytes   int64

	// CompactionMode selects Direct (default) or LevelByLevel compaction.
	CompactionMode CompactionMode
	// WriteIntensive enables Write-Intensive Mode (Section 2.3): MemTables
	// spill into the ABI without persisting L0 tables, trading restart time
	// for put throughput.
	WriteIntensive bool
	// GetProtect configures the dynamic Get-Protect Mode.
	GetProtect GPMConfig

	// DisableABI is an ablation switch: gets walk the persisted levels
	// (ChameleonDB degenerates to Pmem-LSM-NF read behaviour).
	DisableABI bool
	// BloomFilters attaches an in-DRAM bloom filter to every persisted
	// table (requires DisableABI): the Pmem-LSM-F baseline of Section 3.2.
	BloomFilters bool
	// PinUppers keeps an in-DRAM copy of every upper-level table (requires
	// DisableABI, exclusive with BloomFilters): the Pmem-LSM-PinK baseline.
	PinUppers bool
	// UniformLoadFactor is an ablation switch: every shard uses the same
	// threshold ((min+max)/2), recreating the compaction bursts randomized
	// load factors exist to prevent.
	UniformLoadFactor bool

	// MaintenanceWorkers sizes the background maintenance pool (Section 3.3
	// pairs every put thread with a compaction thread; the pool is the
	// store-level version of that pairing, bounded because a handful of
	// concurrent writers already saturates Optane write bandwidth). With
	// workers, a put that fills its MemTable freezes the table and enqueues
	// the flush/spill/compaction as a background job instead of running the
	// merge inline under the shard lock. Zero (the default) preserves the
	// synchronous behaviour bit-for-bit, which the deterministic virtual-time
	// experiments rely on. Use DefaultMaintenanceWorkers for a serving-shaped
	// default.
	MaintenanceWorkers int

	// Write backpressure (only meaningful with MaintenanceWorkers > 0),
	// RocksDB-style: a put first observes the shard's debt — frozen MemTables
	// not yet flushed plus L0 tables not yet compacted — and is delayed
	// (slowdown) or blocked (stall) when the pool is behind, so writers
	// cannot outrun maintenance without bound. Zero values are defaulted by
	// validate when workers are enabled.
	SlowdownFrozenTables int   // frozen tables per shard that trigger the put delay
	StallFrozenTables    int   // frozen tables per shard that block puts
	SlowdownL0Tables     int   // L0 tables per shard that trigger the put delay
	StallL0Tables        int   // L0 tables per shard that block puts
	SlowdownDelayNs      int64 // wall-clock delay injected per put under slowdown

	// TraceEvents is the capacity of the in-DRAM structured event trace ring
	// (flushes, spills, compactions, GPM transitions, GC, crash/recovery).
	// Zero disables tracing; events then cost nothing at all.
	TraceEvents int

	// Seed drives the load-factor randomization.
	Seed int64
}

// DefaultConfig returns the paper's Table 1 configuration. It needs ~8 GB of
// simulated DRAM for the ABIs alone — use ScaledConfig for anything that has
// to fit a development machine.
func DefaultConfig() Config {
	return Config{
		Shards:          16384,
		MemTableSlots:   512, // 8 KB
		Levels:          4,
		Ratio:           4,
		LoadFactorMin:   0.65,
		LoadFactorMax:   0.85,
		ABISlots:        32768, // 512 KB
		ABIFullFraction: 0.90,
		ArenaBytes:      64 << 30,
		LogBytes:        48 << 30,
		CompactionMode:  DirectCompaction,
		GetProtect: GPMConfig{
			EnterThresholdNs: 2000,
			MaxDumps:         1,
			WindowSize:       4096,
			SampleEvery:      16,
		},
		Seed: 1,
	}
}

// ScaledConfig returns the Table 1 geometry shrunk to `shards` shards with
// the same per-shard proportions, sized to hold about `keys` keys with
// value sizes around `valueSize`. The benchmark harness uses it to run
// paper-shaped experiments at laptop scale; EXPERIMENTS.md records the
// scaling per experiment.
func ScaledConfig(shards int, keys int64, valueSize int) Config {
	cfg := DefaultConfig()
	cfg.Shards = shards
	// 24 B log-entry header plus a ~16 B key.
	entryBytes := int64(40 + valueSize)
	logNeed := 4 * keys * entryBytes // updates and compaction slack
	if logNeed < 8<<20 {
		logNeed = 8 << 20
	}
	idxNeed := 8*keys*16 + int64(shards)*64<<10
	cfg.LogBytes = logNeed
	cfg.ArenaBytes = logNeed + idxNeed + (32 << 20)
	return cfg
}

// TestConfig is a tiny geometry for unit tests: 8 shards, 64-slot MemTables,
// 3 levels, plenty of arena.
func TestConfig() Config {
	cfg := DefaultConfig()
	cfg.Shards = 8
	cfg.MemTableSlots = 64
	cfg.Levels = 3
	cfg.Ratio = 4
	cfg.ABISlots = 0 // derive
	cfg.ArenaBytes = 64 << 20
	cfg.LogBytes = 32 << 20
	return cfg
}

// upperCapacitySlots returns the total slot capacity of all upper levels of
// one shard: r tables at L0 plus (r-1) tables at each of L1..L(l-2).
func (c Config) upperCapacitySlots() int {
	total := c.Ratio * c.MemTableSlots // L0: r tables of MemTable size
	size := c.MemTableSlots
	for lvl := 1; lvl <= c.Levels-2; lvl++ {
		size *= c.Ratio
		total += (c.Ratio - 1) * size
	}
	return total
}

// lastLevelSlots returns the designed last-level table capacity:
// r^(levels-1) MemTables.
func (c Config) lastLevelSlots() int {
	s := c.MemTableSlots
	for i := 0; i < c.Levels-1; i++ {
		s *= c.Ratio
	}
	return s
}

func (c *Config) validate() error {
	if c.Shards <= 0 || c.Shards&(c.Shards-1) != 0 {
		return fmt.Errorf("core: Shards must be a positive power of two, got %d", c.Shards)
	}
	if c.MemTableSlots < 8 || c.MemTableSlots&(c.MemTableSlots-1) != 0 {
		return fmt.Errorf("core: MemTableSlots must be a power of two >= 8, got %d", c.MemTableSlots)
	}
	if c.Levels < 2 {
		return fmt.Errorf("core: need at least 2 levels, got %d", c.Levels)
	}
	if c.Ratio < 2 {
		return fmt.Errorf("core: Ratio must be >= 2, got %d", c.Ratio)
	}
	if c.LoadFactorMin <= 0 || c.LoadFactorMax > 1 || c.LoadFactorMin > c.LoadFactorMax {
		return fmt.Errorf("core: invalid load factor range [%v, %v]", c.LoadFactorMin, c.LoadFactorMax)
	}
	if c.ABIFullFraction <= 0 || c.ABIFullFraction > 1 {
		c.ABIFullFraction = 0.90
	}
	if c.ABISlots == 0 {
		// Size the ABI to hold the full upper levels at max load factor,
		// rounded to a power of two, as Table 1's geometry does.
		need := int(float64(c.upperCapacitySlots()) * c.LoadFactorMax / c.ABIFullFraction)
		p := 8
		for p < need {
			p <<= 1
		}
		c.ABISlots = p
	}
	if c.ABISlots&(c.ABISlots-1) != 0 {
		return fmt.Errorf("core: ABISlots must be a power of two, got %d", c.ABISlots)
	}
	if (c.BloomFilters || c.PinUppers) && !c.DisableABI {
		return fmt.Errorf("core: BloomFilters/PinUppers are Pmem-LSM baseline options and require DisableABI")
	}
	if c.BloomFilters && c.PinUppers {
		return fmt.Errorf("core: BloomFilters and PinUppers are mutually exclusive (PinK uses no filters)")
	}
	if c.GetProtect.Enabled {
		if c.GetProtect.EnterThresholdNs <= 0 {
			return fmt.Errorf("core: GetProtect enabled with no EnterThresholdNs")
		}
		if c.GetProtect.ExitThresholdNs == 0 {
			c.GetProtect.ExitThresholdNs = c.GetProtect.EnterThresholdNs
		}
		if c.GetProtect.MaxDumps <= 0 {
			c.GetProtect.MaxDumps = 1
		}
		if c.GetProtect.WindowSize <= 0 {
			c.GetProtect.WindowSize = 4096
		}
		if c.GetProtect.SampleEvery <= 0 {
			c.GetProtect.SampleEvery = 16
		}
	}
	if c.MaintenanceWorkers < 0 {
		return fmt.Errorf("core: MaintenanceWorkers must be >= 0, got %d", c.MaintenanceWorkers)
	}
	if c.MaintenanceWorkers > 0 {
		if c.SlowdownFrozenTables <= 0 {
			c.SlowdownFrozenTables = 4
		}
		if c.StallFrozenTables <= 0 {
			c.StallFrozenTables = 2 * c.SlowdownFrozenTables
		}
		if c.SlowdownL0Tables <= 0 {
			c.SlowdownL0Tables = 2 * c.Ratio
		}
		if c.StallL0Tables <= 0 {
			c.StallL0Tables = 2 * c.SlowdownL0Tables
		}
		if c.SlowdownDelayNs <= 0 {
			c.SlowdownDelayNs = 50_000
		}
		if c.StallFrozenTables < c.SlowdownFrozenTables || c.StallL0Tables < c.SlowdownL0Tables {
			return fmt.Errorf("core: stall thresholds (%d frozen / %d L0) must not be below slowdown thresholds (%d / %d)",
				c.StallFrozenTables, c.StallL0Tables, c.SlowdownFrozenTables, c.SlowdownL0Tables)
		}
	}
	if c.ArenaBytes < 1<<20 || c.LogBytes < 1<<16 || c.LogBytes >= c.ArenaBytes {
		return fmt.Errorf("core: invalid arena/log sizing (%d / %d)", c.ArenaBytes, c.LogBytes)
	}
	return nil
}

// DefaultMaintenanceWorkers returns the serving-shaped pool size for a shard
// count: min(shards, GOMAXPROCS). More workers than cores cannot persist
// concurrently anyway (the iMC-contention findings the pool bound mirrors),
// and more workers than shards can never be busy at once because a shard's
// jobs run sequentially. Deterministic harnesses should keep the config
// default of zero (synchronous maintenance) instead.
func DefaultMaintenanceWorkers(shards int) int {
	n := runtime.GOMAXPROCS(0)
	if shards < n {
		n = shards
	}
	if n < 1 {
		n = 1
	}
	return n
}

// ValidateConfig normalizes and validates a configuration in place (deriving
// ABISlots and defaulting thresholds), without opening a store. The
// benchmark harness uses it to compute geometry-dependent workload sizes.
func ValidateConfig(c *Config) error { return c.validate() }

// loadFactorFor draws shard i's MemTable load-factor threshold.
func (c Config) loadFactorFor(i int) float64 {
	if c.UniformLoadFactor || c.LoadFactorMin == c.LoadFactorMax {
		return (c.LoadFactorMin + c.LoadFactorMax) / 2
	}
	r := rand.New(rand.NewSource(c.Seed + int64(i)*7919))
	return c.LoadFactorMin + r.Float64()*(c.LoadFactorMax-c.LoadFactorMin)
}
