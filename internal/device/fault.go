package device

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
)

// ErrInjected is the transient fault returned by allocation paths while a
// FaultPlan with a non-zero ErrorProb is installed. Callers are expected to
// treat it like a momentary out-of-resources condition and retry.
var ErrInjected = errors.New("device: injected transient fault")

// ErrPowerFailed is returned by operations that refuse to commit host-side
// metadata after the simulated power failure of an installed FaultPlan has
// triggered. Stores whose "manifest" is implicit host state (the baselines
// keep their table directories as ordinary Go objects across Crash) use it to
// model a fail-safe atomic metadata commit: either the commit's media writes
// all happened before the failure, or the commit never happened.
var ErrPowerFailed = errors.New("device: simulated power failure")

// TearMode selects what survives of the persist that a FaultPlan crashes on.
// The media commits whole 256 B lines in address order, so a torn persist is
// a durable prefix of the touched lines: single-line persists are atomic, and
// the final line of a multi-line persist never commits alone out of order.
type TearMode int

const (
	// TearNone loses the crashing persist entirely (the power fails just
	// before any of its lines reach media).
	TearNone TearMode = iota
	// TearFirstLine durably commits only the first touched line (nothing for
	// single-line persists, which are atomic).
	TearFirstLine
	// TearHalf durably commits the first half of the touched lines.
	TearHalf
	// TearRandom durably commits a seeded random prefix of 0..lines-1 lines.
	TearRandom
)

// FaultPlan describes the faults to inject into one device. Install it with
// Device.InstallFaultPlan after the store has booted (boot-time persists are
// then excluded from the crash-point numbering, keeping indices stable across
// a count run and its crash re-runs). A plan is one-shot: install a fresh
// plan per run.
type FaultPlan struct {
	// CrashAtPersist is the 1-based persist event at which the simulated
	// power fails. Zero never triggers, which turns the plan into a pure
	// persist counter for crash-point enumeration.
	CrashAtPersist int64
	// Tear selects how much of the crashing persist commits.
	Tear TearMode
	// ErrorProb injects ErrInjected into allocation paths with this
	// probability per attempt (0 disables injection).
	ErrorProb float64
	// Seed drives TearRandom and error injection.
	Seed int64

	mu        sync.Mutex
	rng       *rand.Rand
	persists  int64
	triggered bool
	tornLines int64
	spanLines int64

	// flag mirrors triggered for the lock-free PowerFailed checks.
	flag atomic.Bool
}

// Persists returns how many persist events the plan has observed (the
// crashing one included, frozen ones after it excluded).
func (p *FaultPlan) Persists() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.persists
}

// Triggered reports whether the simulated power failure has happened.
func (p *FaultPlan) Triggered() bool { return p.flag.Load() }

// TriggerInfo returns, after the trigger, how many of the crashing persist's
// touched media lines were durably committed and how many it touched.
func (p *FaultPlan) TriggerInfo() (tornLines, spanLines int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tornLines, p.spanLines
}

// NotePersist accounts one persist of [off, off+size) against the plan and
// returns how many leading bytes of the range should reach durable media and
// whether the persist proceeds normally (charging the device). After the
// trigger every persist is a durability no-op: the process is dead, nothing
// further reaches media.
func (p *FaultPlan) NotePersist(unit, off, size int64) (keep int64, normal bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.triggered {
		return 0, false
	}
	p.persists++
	if p.CrashAtPersist == 0 || p.persists != p.CrashAtPersist {
		return size, true
	}
	p.triggered = true
	p.flag.Store(true)
	first := off / unit
	last := (off + size - 1) / unit
	lines := last - first + 1
	var k int64
	switch p.Tear {
	case TearFirstLine:
		if lines > 1 {
			k = 1
		}
	case TearHalf:
		k = lines / 2
	case TearRandom:
		if lines > 1 {
			k = p.rand().Int63n(lines)
		}
	}
	// k < lines always: a fully-committed persist is indistinguishable in
	// durable state from a clean cut before the next persist, which the
	// sweep already covers at index CrashAtPersist+1.
	p.tornLines, p.spanLines = k, lines
	if k == 0 {
		return 0, false
	}
	keep = (first+k)*unit - off
	if keep > size {
		keep = size
	}
	return keep, false
}

// AllocError possibly injects a transient allocation fault.
func (p *FaultPlan) AllocError() error {
	if p.ErrorProb <= 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.triggered && p.rand().Float64() < p.ErrorProb {
		return ErrInjected
	}
	return nil
}

// rand lazily builds the plan's seeded generator. Called with p.mu held.
func (p *FaultPlan) rand() *rand.Rand {
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(p.Seed))
	}
	return p.rng
}

// InstallFaultPlan installs (or with nil, removes) the device's fault plan.
// Recovery code must run with the plan removed: a triggered plan freezes all
// persists, which would make recovery's own checkpoints silently volatile.
func (d *Device) InstallFaultPlan(p *FaultPlan) { d.fault.Store(p) }

// FaultPlan returns the installed fault plan, or nil.
func (d *Device) FaultPlan() *FaultPlan { return d.fault.Load() }

// PowerFailed reports whether an installed fault plan has triggered its
// simulated power failure. Store code uses it to refuse host-side metadata
// commits that would outlive the media they describe.
func (d *Device) PowerFailed() bool {
	p := d.FaultPlan()
	return p != nil && p.Triggered()
}
