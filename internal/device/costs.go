package device

// CPU cost table, in virtual nanoseconds, charged to worker clocks for the
// computational work the paper identifies as significant against Optane's
// nanosecond-scale accesses (Sections 3.3 and 3.7): bloom filter
// construction, key sorting, and hash computation. The values are calibrated
// against the ratios the paper reports (e.g. the Pmem-LSM-F vs Pmem-LSM-NF
// put-throughput gap is dominated by CostBloomAdd, and the NoveLSM/MatrixKV
// get-bandwidth deficit by CostKeyCompare-driven binary search).
const (
	// CostHash64 is one 64-bit hash of a short key.
	CostHash64 = 15

	// CostDRAMRandAccess is one dependent random DRAM access (a hash-table
	// probe step that misses cache).
	CostDRAMRandAccess = 80

	// CostDRAMSeqPerByte is streaming DRAM work (memcpy / merge scan),
	// ~20 GB/s.
	CostDRAMSeqPerByte = 0.05

	// CostBloomAdd is inserting one key into a bloom filter (k hash+set
	// operations on a filter too large for cache, plus its share of filter
	// allocation and management; calibrated against the paper's 3x
	// Pmem-LSM-F vs -NF put-throughput gap).
	CostBloomAdd = 350

	// CostBloomCheck is one bloom filter membership test: k dependent
	// probes into a filter far larger than cache. The paper measures filter
	// checks at 50% or more of an Optane read (Section 2.2), which is what
	// makes the multi-filter walk of Pmem-LSM-F slower than Pmem-LSM-PinK's
	// pinned-table walk (Figures 12/13).
	CostBloomCheck = 250

	// CostKeyCompare is one key comparison step during binary search or
	// merge sort in the sorted-run baselines (NoveLSM, MatrixKV).
	CostKeyCompare = 12

	// CostSortPerKey is the amortized per-key cost of sorting a MemTable or
	// merging sorted runs in the comparison-based baselines.
	CostSortPerKey = 110

	// CostSlotProbe is examining one 16-byte index slot that is already in
	// cache (same 256 B line as the previous probe).
	CostSlotProbe = 6

	// CostCompactionPerSlot is the per-slot CPU cost of staging and merging
	// hash-table slots during flushes and compactions. Merges stream over
	// tables that largely fit in cache, so this is far below a dependent
	// DRAM miss; it is the constant that, multiplied by ChameleonDB's
	// (l-1+r)/f rewrite factor, sets the LSM stores' put overhead relative
	// to Dram-Hash (Figure 10's ~1.7x gap).
	CostCompactionPerSlot = 25
)

// DRAMProbeCost models a linear-probe sequence over 16-byte slots in DRAM:
// one random access per touched 64 B cache line (4 slots) plus a small
// per-slot compare cost. Probe chains are contiguous, so charging a full
// random access per slot would overstate DRAM by ~4x and distort the
// DRAM-vs-Pmem comparisons the paper's Figures 12/13 rest on.
func DRAMProbeCost(probes int) int64 {
	if probes <= 0 {
		return 0
	}
	lines := int64((probes + 3) / 4)
	return lines*CostDRAMRandAccess + int64(probes)*2
}
