package device

import (
	"fmt"
	"sync/atomic"

	"chameleondb/internal/simclock"
)

// Device is one simulated storage device instance. All timing methods charge
// virtual time to the caller's Clock and book transfer time on the device's
// shared media timeline, so concurrent workers contend for bandwidth exactly
// as threads sharing an iMC do. Device is safe for concurrent use.
type Device struct {
	prof      Profile
	readPipe  simclock.Timeline
	writePipe simclock.Timeline

	// concurrency is the number of workers the harness declares are
	// concurrently driving the device; it selects the point on the Figure 1
	// contention curve.
	concurrency atomic.Int32

	// Write-intensity window for read/write interference: wWinStart is the
	// window's virtual start time, wWinWork the pipe-work booked in it.
	wWinStart atomic.Int64
	wWinWork  atomic.Int64

	// fault is the installed fault-injection plan, nil when none.
	fault atomic.Pointer[FaultPlan]

	stats StatCounters
}

// interferenceWindow is the sliding window over which write intensity is
// averaged for the read/write interference penalty.
const interferenceWindow = 200_000 // 200 us

// noteWrite records write-pipe work for the interference window.
func (d *Device) noteWrite(now, dur int64) {
	if d.prof.ReadWriteInterferenceNs == 0 {
		return
	}
	start := d.wWinStart.Load()
	if gap := now - start; gap > interferenceWindow {
		// Roll the window forward; carry half the work as decay, or none
		// if the device sat idle for several windows.
		if d.wWinStart.CompareAndSwap(start, now) {
			if gap > 4*interferenceWindow {
				d.wWinWork.Store(0)
			} else {
				d.wWinWork.Store(d.wWinWork.Load() / 2)
			}
		}
	}
	d.wWinWork.Add(dur)
}

// readInterference returns the extra read latency implied by recent write
// intensity: utilization of the write pipe over the window, scaled by the
// profile's maximum penalty.
func (d *Device) readInterference(now int64) int64 {
	maxPenalty := d.prof.ReadWriteInterferenceNs
	if maxPenalty == 0 {
		return 0
	}
	start := d.wWinStart.Load()
	elapsed := now - start
	if elapsed <= 0 {
		elapsed = 1
	}
	if elapsed > 4*interferenceWindow {
		return 0 // stale window: no recent writes
	}
	if elapsed < interferenceWindow {
		elapsed = interferenceWindow
	}
	util := float64(d.wWinWork.Load()) / float64(elapsed)
	if util > 1 {
		util = 1
	}
	return int64(util * float64(maxPenalty))
}

// StatCounters aggregates media-level accounting, the simulated equivalent of
// Intel's ipmwatch readings used in the paper's Figure 17.
type StatCounters struct {
	LogicalBytesWritten atomic.Int64 // bytes the software asked to persist
	MediaBytesWritten   atomic.Int64 // bytes actually written to media (256 B-rounded)
	MediaBytesRead      atomic.Int64 // bytes read from media, incl. RMW reads
	WriteOps            atomic.Int64
	ReadOps             atomic.Int64
}

// Stats is a point-in-time copy of the device counters.
type Stats struct {
	LogicalBytesWritten int64
	MediaBytesWritten   int64
	MediaBytesRead      int64
	WriteOps            int64
	ReadOps             int64
}

// WriteAmplification is media bytes written divided by logical bytes written.
func (s Stats) WriteAmplification() float64 {
	if s.LogicalBytesWritten == 0 {
		return 0
	}
	return float64(s.MediaBytesWritten) / float64(s.LogicalBytesWritten)
}

func (s Stats) String() string {
	return fmt.Sprintf("logicalW=%d mediaW=%d mediaR=%d WA=%.2f",
		s.LogicalBytesWritten, s.MediaBytesWritten, s.MediaBytesRead, s.WriteAmplification())
}

// New creates a device with the given profile.
func New(p Profile) *Device {
	d := &Device{prof: p}
	d.concurrency.Store(1)
	return d
}

// Profile returns the device's timing profile.
func (d *Device) Profile() Profile { return d.prof }

// SetConcurrency declares how many workers are concurrently driving the
// device. It positions the device on its contention curve (Figure 1's iMC
// saturation behaviour). The harness calls this when it changes thread count.
func (d *Device) SetConcurrency(n int) {
	if n < 1 {
		n = 1
	}
	d.concurrency.Store(int32(n))
}

// Concurrency reports the declared worker count.
func (d *Device) Concurrency() int { return int(d.concurrency.Load()) }

// contentionFactor returns the multiplier applied to transfer durations to
// model post-saturation bandwidth decline: >= 1.0.
func (d *Device) contentionFactor() float64 {
	n := int(d.concurrency.Load())
	if n <= d.prof.MaxParallel || d.prof.ContentionSlope == 0 {
		return 1.0
	}
	return 1.0 + d.prof.ContentionSlope*float64(n-d.prof.MaxParallel)
}

// mediaSpan returns the first touched unit-aligned offset and the number of
// media bytes covered by [off, off+size).
func (d *Device) mediaSpan(off, size int64) (mediaBytes int64) {
	if size <= 0 {
		return 0
	}
	u := d.prof.AccessUnit
	first := off / u
	last := (off + size - 1) / u
	return (last - first + 1) * u
}

// ReadRandom charges one random read of size bytes at offset off: fixed
// latency plus transfer time, charged to the issuing clock only. Random
// reads do not reserve the shared pipe: the device serves small concurrent
// reads from parallel internal banks, so their cost is latency-dominated
// per issuer rather than mutually blocking. (Serializing them on a scalar
// timeline would also let a reservation made at a future virtual time block
// earlier arrivals — converting latency into artificial pipe blocking.)
func (d *Device) ReadRandom(c *simclock.Clock, off, size int64) {
	media := d.mediaSpan(off, size)
	d.stats.MediaBytesRead.Add(media)
	d.stats.ReadOps.Add(1)
	c.Advance(d.prof.ReadLatency + int64(float64(media)/d.prof.ReadBandwidth) + d.readInterference(c.Now()))
}

// ReadSeq charges a sequential (streaming) read of size bytes: transfer time
// only, amortizing the fixed latency away as a real prefetched scan would.
func (d *Device) ReadSeq(c *simclock.Clock, off, size int64) {
	media := d.mediaSpan(off, size)
	d.stats.MediaBytesRead.Add(media)
	d.stats.ReadOps.Add(1)
	dur := int64(float64(media) / d.prof.ReadBandwidth)
	c.AdvanceTo(d.readPipe.ReserveWork(c.Now(), dur))
}

// WritePersist charges persisting [off, off+size): the write is rounded up to
// the touched access units; if the range does not cover whole units, the
// device performs a read-modify-write and the partial units are charged as
// media reads as well. This is the mechanism behind the paper's Challenge 1.
func (d *Device) WritePersist(c *simclock.Clock, off, size int64) {
	if size <= 0 {
		return
	}
	media := d.mediaSpan(off, size)
	d.stats.LogicalBytesWritten.Add(size)
	d.stats.MediaBytesWritten.Add(media)
	d.stats.WriteOps.Add(1)
	if media > size {
		// Partial head/tail units are read before being rewritten.
		d.stats.MediaBytesRead.Add(media - size)
	}
	dur := int64(float64(media) * d.contentionFactor() / d.prof.WriteBandwidth)
	if media > size {
		// The RMW read occupies the pipe too.
		dur += int64(float64(media-size) / d.prof.ReadBandwidth)
	}
	// Interference counts the fence overhead per write op as well as the
	// transfer: many small persisted writes (Pmem-Hash's pattern) disturb
	// concurrent reads more than the same bytes written in large batches.
	d.noteWrite(c.Now(), dur+d.prof.WriteLatency)
	c.AdvanceTo(d.writePipe.ReserveWork(c.Now(), dur))
	c.Advance(d.prof.WriteLatency)
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	return Stats{
		LogicalBytesWritten: d.stats.LogicalBytesWritten.Load(),
		MediaBytesWritten:   d.stats.MediaBytesWritten.Load(),
		MediaBytesRead:      d.stats.MediaBytesRead.Load(),
		WriteOps:            d.stats.WriteOps.Load(),
		ReadOps:             d.stats.ReadOps.Load(),
	}
}

// ResetStats zeroes the counters; the harness calls it between experiment
// phases (e.g. after loading, before measuring).
func (d *Device) ResetStats() {
	d.stats.LogicalBytesWritten.Store(0)
	d.stats.MediaBytesWritten.Store(0)
	d.stats.MediaBytesRead.Store(0)
	d.stats.WriteOps.Store(0)
	d.stats.ReadOps.Store(0)
}

// ResetTimelines clears the media pipes and the interference window. Only
// safe between phases.
func (d *Device) ResetTimelines() {
	d.readPipe.Reset()
	d.writePipe.Reset()
	d.wWinStart.Store(0)
	d.wWinWork.Store(0)
}
