// Package device models the timing and media-level behaviour of the storage
// devices used in the ChameleonDB paper: Optane DC persistent memory, DRAM,
// and the SATA/PCIe SSDs of Figure 2.
//
// The model captures the three properties the paper's design exploits:
//
//  1. Optane Pmem has a 256-byte internal access unit. Any persisted write is
//     rounded up to the 256 B lines it touches; a partial line additionally
//     incurs a read-modify-write. The accountant reports media bytes exactly
//     the way Intel's ipmwatch does in the paper's Figure 17(b).
//  2. Optane Pmem is fast: ~300 ns random reads (about 3x DRAM) and on the
//     order of 10 GB/s of sequential bandwidth, so filter checks and other
//     CPU work are no longer negligible relative to a device access.
//  3. Bandwidth is shared and contended: the integrated memory controller
//     (iMC) saturates around four writer threads and degrades beyond that
//     (paper Figure 1). The device is a simclock.Timeline on which every
//     access reserves transfer time, which reproduces queueing; an explicit
//     contention curve reproduces the post-saturation decline.
//
// All durations are virtual nanoseconds (see package simclock).
package device

// Profile describes the timing characteristics of a device class.
type Profile struct {
	// Name identifies the profile in stats output.
	Name string

	// ReadLatency is the fixed cost of one random read operation, charged to
	// the issuing worker's clock in addition to transfer time.
	ReadLatency int64

	// WriteLatency is the fixed cost of persisting one write (the
	// ntstore+sfence round trip for Pmem, the command overhead for an SSD).
	WriteLatency int64

	// ReadBandwidth and WriteBandwidth are peak sequential transfer rates in
	// bytes per nanosecond (1.0 == 1 GB/s on the convenient definition
	// 1 GB = 1e9 bytes).
	ReadBandwidth  float64
	WriteBandwidth float64

	// AccessUnit is the internal media access granularity in bytes. Writes
	// are rounded up to touched units; a write smaller than the units it
	// touches incurs a read-modify-write of those units.
	AccessUnit int64

	// MaxParallel is the number of concurrent writers at which write
	// bandwidth peaks (the iMC saturation point in Figure 1).
	MaxParallel int

	// ContentionSlope is the fractional write-bandwidth loss per writer
	// beyond MaxParallel: effective = peak / (1 + slope*(n-MaxParallel)).
	ContentionSlope float64

	// ReadWriteInterferenceNs is the maximum extra latency a random read
	// pays when the device is fully busy with writes. On Optane, reads
	// behind a heavy write stream slow down several-fold (the paper's
	// Figure 16 put bursts raise get tails 2-3x); the penalty scales with
	// the write pipe's recent utilization.
	ReadWriteInterferenceNs int64
}

// The profiles below are calibrated so that ratios between stores match the
// shapes reported in the paper; see EXPERIMENTS.md for the calibration notes.
var (
	// OptanePmem models one socket's interleaved pair of 128 GB Optane DC
	// DIMMs in App Direct mode, matching the paper's testbed (Section 3.1)
	// and the characterization in Yang et al. (FAST'20): ~300 ns random
	// reads (~3x DRAM), ~12 GB/s sequential reads, ~8 GB/s peak ntstore
	// write bandwidth at 256 B granularity, 256 B access unit, iMC
	// saturation at 4 writer threads.
	OptanePmem = Profile{
		Name:                    "optane-pmem",
		ReadLatency:             400,
		WriteLatency:            100,
		ReadBandwidth:           12.0,
		WriteBandwidth:          8.0,
		AccessUnit:              256,
		MaxParallel:             4,
		ContentionSlope:         0.05,
		ReadWriteInterferenceNs: 4000,
	}

	// DRAM models local-socket DRAM: ~80 ns random access, high bandwidth,
	// cacheline granularity, effectively uncontended at our scales.
	DRAM = Profile{
		Name:            "dram",
		ReadLatency:     80,
		WriteLatency:    80,
		ReadBandwidth:   40.0,
		WriteBandwidth:  40.0,
		AccessUnit:      64,
		MaxParallel:     16,
		ContentionSlope: 0.0,
	}

	// SATASSD models the SATA SSD of Figure 2(a): ~80 us random reads.
	SATASSD = Profile{
		Name:            "sata-ssd",
		ReadLatency:     80_000,
		WriteLatency:    60_000,
		ReadBandwidth:   0.5,
		WriteBandwidth:  0.45,
		AccessUnit:      4096,
		MaxParallel:     8,
		ContentionSlope: 0.02,
	}

	// NVMeSSD models the PCIe SSD of Figure 2(b): ~20 us random reads.
	NVMeSSD = Profile{
		Name:            "nvme-ssd",
		ReadLatency:     20_000,
		WriteLatency:    15_000,
		ReadBandwidth:   3.0,
		WriteBandwidth:  2.0,
		AccessUnit:      4096,
		MaxParallel:     16,
		ContentionSlope: 0.01,
	}
)
