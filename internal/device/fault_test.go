package device

import (
	"errors"
	"testing"
)

func TestFaultPlanCountsPersists(t *testing.T) {
	p := &FaultPlan{}
	for i := 0; i < 5; i++ {
		keep, normal := p.NotePersist(256, int64(i)*256, 100)
		if !normal || keep != 100 {
			t.Fatalf("persist %d: keep=%d normal=%v", i, keep, normal)
		}
	}
	if p.Persists() != 5 {
		t.Fatalf("Persists() = %d, want 5", p.Persists())
	}
	if p.Triggered() {
		t.Fatal("count-only plan must never trigger")
	}
}

func TestFaultPlanTriggersAtIndex(t *testing.T) {
	p := &FaultPlan{CrashAtPersist: 3}
	for i := 0; i < 2; i++ {
		if _, normal := p.NotePersist(256, 0, 10); !normal {
			t.Fatalf("persist %d triggered early", i+1)
		}
	}
	keep, normal := p.NotePersist(256, 0, 10)
	if normal || keep != 0 {
		t.Fatalf("crash persist: keep=%d normal=%v, want 0,false", keep, normal)
	}
	if !p.Triggered() {
		t.Fatal("plan did not report triggered")
	}
	// All later persists are frozen no-ops and not counted.
	if keep, normal := p.NotePersist(256, 0, 10); normal || keep != 0 {
		t.Fatalf("post-trigger persist: keep=%d normal=%v", keep, normal)
	}
	if p.Persists() != 3 {
		t.Fatalf("Persists() = %d, want 3", p.Persists())
	}
}

func TestFaultPlanTearModes(t *testing.T) {
	// A persist of [300, 1200) touches lines 1..4 (256 B units): 4 lines.
	const off, size = 300, 900
	cases := []struct {
		mode TearMode
		keep int64
	}{
		{TearNone, 0},
		// First line is [256, 512): keep = 512 - 300 = 212 bytes.
		{TearFirstLine, 212},
		// Half of 4 lines = 2: keep = 768 - 300 = 468 bytes.
		{TearHalf, 468},
	}
	for _, tc := range cases {
		p := &FaultPlan{CrashAtPersist: 1, Tear: tc.mode}
		keep, normal := p.NotePersist(256, off, size)
		if normal {
			t.Fatalf("mode %d: persist proceeded normally", tc.mode)
		}
		if keep != tc.keep {
			t.Fatalf("mode %d: keep = %d, want %d", tc.mode, keep, tc.keep)
		}
	}
}

func TestFaultPlanTearNeverCommitsAll(t *testing.T) {
	// Whatever the mode and geometry, the crashing persist must commit
	// strictly fewer bytes than requested: a fully-committed persist is the
	// same durable state as crashing cleanly before the next persist.
	for seed := int64(0); seed < 20; seed++ {
		for _, mode := range []TearMode{TearNone, TearFirstLine, TearHalf, TearRandom} {
			p := &FaultPlan{CrashAtPersist: 1, Tear: mode, Seed: seed}
			keep, _ := p.NotePersist(256, 128, 1000)
			if keep >= 1000 {
				t.Fatalf("mode %d seed %d: keep %d >= size", mode, seed, keep)
			}
		}
	}
}

func TestFaultPlanSingleLinePersistIsAtomic(t *testing.T) {
	for _, mode := range []TearMode{TearFirstLine, TearHalf, TearRandom} {
		p := &FaultPlan{CrashAtPersist: 1, Tear: mode, Seed: 7}
		keep, normal := p.NotePersist(256, 512, 64)
		if normal || keep != 0 {
			t.Fatalf("mode %d: single-line tear keep=%d normal=%v, want 0,false", mode, keep, normal)
		}
	}
}

func TestFaultPlanAllocError(t *testing.T) {
	p := &FaultPlan{ErrorProb: 1.0, Seed: 1}
	if err := p.AllocError(); !errors.Is(err, ErrInjected) {
		t.Fatalf("AllocError with prob 1 = %v, want ErrInjected", err)
	}
	p2 := &FaultPlan{}
	if err := p2.AllocError(); err != nil {
		t.Fatalf("AllocError with prob 0 = %v, want nil", err)
	}
}

func TestFaultPlanAllocErrorDeterministic(t *testing.T) {
	outcomes := func(seed int64) []bool {
		p := &FaultPlan{ErrorProb: 0.5, Seed: seed}
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, p.AllocError() != nil)
		}
		return out
	}
	a, b := outcomes(42), outcomes(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDeviceInstallFaultPlan(t *testing.T) {
	d := New(OptanePmem)
	if d.FaultPlan() != nil || d.PowerFailed() {
		t.Fatal("fresh device must have no plan")
	}
	p := &FaultPlan{CrashAtPersist: 1}
	d.InstallFaultPlan(p)
	if d.FaultPlan() != p {
		t.Fatal("plan not installed")
	}
	p.NotePersist(256, 0, 10)
	if !d.PowerFailed() {
		t.Fatal("PowerFailed must reflect the triggered plan")
	}
	d.InstallFaultPlan(nil)
	if d.FaultPlan() != nil || d.PowerFailed() {
		t.Fatal("nil install must remove the plan")
	}
}
