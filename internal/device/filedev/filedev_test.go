package filedev

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func testOpts(dir string) Options {
	return Options{
		Dir:           dir,
		Capacity:      1 << 20,
		AccessUnit:    256,
		SegmentBytes:  64 << 10,
		MetaSlotBytes: 4096,
	}
}

func mustOpen(t *testing.T, opt Options) *Dev {
	t.Helper()
	d, err := Open(opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return d
}

// TestWriteReadRoundtrip writes across a segment boundary, reopens the
// directory without a clean Close (the SIGKILL image: the page cache survives
// in the test world exactly like synced data), and reads everything back.
func TestWriteReadRoundtrip(t *testing.T) {
	opt := testOpts(t.TempDir())
	d := mustOpen(t, opt)
	data := bytes.Repeat([]byte("chameleon"), 20000) // ~180 KB, spans 3 segments
	if err := d.WriteDurable(10_000, data, true); err != nil {
		t.Fatalf("WriteDurable: %v", err)
	}
	if err := d.WriteMeta([]byte("host-state-1"), -1); err != nil {
		t.Fatalf("WriteMeta: %v", err)
	}
	// No Close: reattach cold.
	d2 := mustOpen(t, opt)
	if !d2.Existing() {
		t.Fatal("reopen did not find existing state")
	}
	if got := string(d2.Meta()); got != "host-state-1" {
		t.Fatalf("Meta = %q, want host-state-1", got)
	}
	img := make([]byte, opt.Capacity)
	if err := d2.LoadInto(img); err != nil {
		t.Fatalf("LoadInto: %v", err)
	}
	if !bytes.Equal(img[10_000:10_000+len(data)], data) {
		t.Fatal("reloaded image does not match written data")
	}
	for _, b := range img[:10_000] {
		if b != 0 {
			t.Fatal("bytes before the write are not zero")
		}
	}
	if err := d2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestMetaRecordAlternation checks that records alternate slots by sequence
// parity and that reopen always returns the newest one.
func TestMetaRecordAlternation(t *testing.T) {
	opt := testOpts(t.TempDir())
	d := mustOpen(t, opt)
	for i := 1; i <= 5; i++ {
		payload := []byte{byte(i), 0xAB}
		if err := d.WriteMeta(payload, -1); err != nil {
			t.Fatalf("WriteMeta %d: %v", i, err)
		}
	}
	d2 := mustOpen(t, opt)
	if got := d2.Meta(); len(got) != 2 || got[0] != 5 {
		t.Fatalf("Meta = %v, want [5 171]", got)
	}
}

// TestTornMetaFallsBack writes a good record, then a torn one (the power-cut
// image of a metadata persist); reopen must fall back to the good record.
func TestTornMetaFallsBack(t *testing.T) {
	opt := testOpts(t.TempDir())
	d := mustOpen(t, opt)
	if err := d.WriteMeta([]byte("good-record"), -1); err != nil {
		t.Fatal(err)
	}
	// Tear after 3 payload bytes: the header (with full length and checksum)
	// lands but most of the payload does not.
	if err := d.WriteMeta([]byte("newer-but-torn"), 3); err != nil {
		t.Fatal(err)
	}
	d2 := mustOpen(t, opt)
	if got := string(d2.Meta()); got != "good-record" {
		t.Fatalf("Meta after torn write = %q, want good-record", got)
	}
}

// TestZeroTearKeepsPrevious is the tear=0 case handled one level up (the
// arena skips the write entirely); at this level a zero-byte tear still
// writes the header, which must also fail validation.
func TestZeroTearKeepsPrevious(t *testing.T) {
	opt := testOpts(t.TempDir())
	d := mustOpen(t, opt)
	if err := d.WriteMeta([]byte("kept"), -1); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteMeta([]byte("gone"), 0); err != nil {
		t.Fatal(err)
	}
	d2 := mustOpen(t, opt)
	if got := string(d2.Meta()); got != "kept" {
		t.Fatalf("Meta = %q, want kept", got)
	}
}

// TestGeometryMismatchRejected reopens with different geometry and expects a
// refusal, not a reinterpretation.
func TestGeometryMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, testOpts(dir))
	if err := d.WriteMeta([]byte("x"), -1); err != nil {
		t.Fatal(err)
	}
	d.Close()
	opt := testOpts(dir)
	opt.SegmentBytes *= 2
	if _, err := Open(opt); err == nil {
		t.Fatal("Open with mismatched geometry succeeded")
	}
}

// TestBootstrapCrashReinitializes models a crash after the manifest header
// became durable but before the first metadata record: nothing was ever
// acknowledged, so reopen must reinitialize rather than fail.
func TestBootstrapCrashReinitializes(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, testOpts(dir))
	// A segment file exists but no record was ever written.
	if err := d.WriteDurable(0, []byte("pre-ack garbage"), true); err != nil {
		t.Fatal(err)
	}
	d2 := mustOpen(t, testOpts(dir))
	if d2.Existing() {
		t.Fatal("directory with no metadata record reported as existing")
	}
	img := make([]byte, testOpts(dir).Capacity)
	if err := d2.LoadInto(img); err != nil {
		t.Fatal(err)
	}
	for _, b := range img {
		if b != 0 {
			t.Fatal("reinitialized directory still holds old segment data")
		}
	}
}

// TestZeroDurableSkipsMissingSegments zeroes a range with no backing file —
// it must be a no-op, not a file creation.
func TestZeroDurableSkipsMissingSegments(t *testing.T) {
	opt := testOpts(t.TempDir())
	d := mustOpen(t, opt)
	if err := d.ZeroDurable(opt.SegmentBytes*3, opt.SegmentBytes); err != nil {
		t.Fatalf("ZeroDurable: %v", err)
	}
	if _, err := os.Stat(filepath.Join(opt.Dir, "seg-000003.dat")); !os.IsNotExist(err) {
		t.Fatal("ZeroDurable created a segment file")
	}
}

// TestSegmentCreateSyncsDirectory: with the fix in place, a segment file's
// directory entry is fsync'd at creation (UnsyncedCreates stays empty), so a
// crash immediately after the creating persist cannot unlink it.
func TestSegmentCreateSyncsDirectory(t *testing.T) {
	opt := testOpts(t.TempDir())
	d := mustOpen(t, opt)
	base := d.DirSyncs() // initialize pays one
	if err := d.WriteDurable(0, []byte("durable"), true); err != nil {
		t.Fatal(err)
	}
	if got := d.UnsyncedCreates(); len(got) != 0 {
		t.Fatalf("UnsyncedCreates = %v, want none", got)
	}
	if d.DirSyncs() != base+1 {
		t.Fatalf("segment creation issued %d dir syncs, want 1", d.DirSyncs()-base)
	}
}

// TestCloseSyncsDirectory is the regression test for the Close bugfix: Close
// must fsync the manifest and the directory entry before returning, so a
// clean shutdown leaves nothing volatile even if creation-time syncs were
// elided. The counter shows the Close-time sync; the DisableDirSync leg
// demonstrates the data-loss scenario the sync prevents.
func TestCloseSyncsDirectory(t *testing.T) {
	opt := testOpts(t.TempDir())
	d := mustOpen(t, opt)
	if err := d.WriteDurable(0, []byte("x"), true); err != nil {
		t.Fatal(err)
	}
	before := d.DirSyncs()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if d.DirSyncs() != before+1 {
		t.Fatalf("Close issued %d dir syncs, want 1", d.DirSyncs()-before)
	}
}

// TestDirSyncLossScenario demonstrates what the creation-time and Close-time
// directory syncs prevent: with both disabled, a crash can unlink a freshly
// created segment file, silently zeroing everything it held — including data
// whose persist was acknowledged with a real fdatasync.
func TestDirSyncLossScenario(t *testing.T) {
	opt := testOpts(t.TempDir())
	opt.DisableDirSync = true
	d := mustOpen(t, opt)
	payload := []byte("acknowledged-but-doomed")
	if err := d.WriteDurable(opt.SegmentBytes*2, payload, true); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteMeta([]byte("meta"), -1); err != nil {
		t.Fatal(err)
	}
	lost := d.UnsyncedCreates()
	if len(lost) == 0 {
		t.Fatal("expected the new segment's directory entry to be unsynced")
	}
	// The simulated power failure: unsynced directory entries never became
	// durable, so the files they named do not exist after restart.
	for _, path := range lost {
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
	}
	reopened := mustOpen(t, testOpts(opt.Dir))
	img := make([]byte, opt.Capacity)
	if err := reopened.LoadInto(img); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(img, payload) {
		t.Fatal("data survived without directory syncs — the loss scenario no longer reproduces")
	}
}

// TestWriteOutsideCapacityRejected bounds-checks the write path.
func TestWriteOutsideCapacityRejected(t *testing.T) {
	opt := testOpts(t.TempDir())
	d := mustOpen(t, opt)
	if err := d.WriteDurable(opt.Capacity-4, make([]byte, 8), false); err == nil {
		t.Fatal("write past capacity succeeded")
	}
	if err := d.WriteMeta(make([]byte, opt.MetaSlotBytes), -1); err == nil {
		t.Fatal("oversized metadata record accepted")
	}
}
