package filedev

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func testOpts(dir string) Options {
	return Options{
		Dir:           dir,
		Capacity:      1 << 20,
		AccessUnit:    256,
		SegmentBytes:  64 << 10,
		MetaSlotBytes: 4096,
	}
}

func mustOpen(t *testing.T, opt Options) *Dev {
	t.Helper()
	d, err := Open(opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return d
}

// TestWriteReadRoundtrip writes across a segment boundary, reopens the
// directory without a clean Close (the SIGKILL image: the page cache survives
// in the test world exactly like synced data), and reads everything back.
func TestWriteReadRoundtrip(t *testing.T) {
	opt := testOpts(t.TempDir())
	d := mustOpen(t, opt)
	data := bytes.Repeat([]byte("chameleon"), 20000) // ~180 KB, spans 3 segments
	if err := d.WriteDurable(10_000, data, true); err != nil {
		t.Fatalf("WriteDurable: %v", err)
	}
	if err := d.WriteMeta([]byte("host-state-1"), -1); err != nil {
		t.Fatalf("WriteMeta: %v", err)
	}
	// No Close: reattach cold.
	d2 := mustOpen(t, opt)
	if !d2.Existing() {
		t.Fatal("reopen did not find existing state")
	}
	if got := string(d2.Meta()); got != "host-state-1" {
		t.Fatalf("Meta = %q, want host-state-1", got)
	}
	img := make([]byte, opt.Capacity)
	if err := d2.LoadInto(img); err != nil {
		t.Fatalf("LoadInto: %v", err)
	}
	if !bytes.Equal(img[10_000:10_000+len(data)], data) {
		t.Fatal("reloaded image does not match written data")
	}
	for _, b := range img[:10_000] {
		if b != 0 {
			t.Fatal("bytes before the write are not zero")
		}
	}
	if err := d2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestMetaRecordAlternation checks that records alternate slots by sequence
// parity and that reopen always returns the newest one.
func TestMetaRecordAlternation(t *testing.T) {
	opt := testOpts(t.TempDir())
	d := mustOpen(t, opt)
	for i := 1; i <= 5; i++ {
		payload := []byte{byte(i), 0xAB}
		if err := d.WriteMeta(payload, -1); err != nil {
			t.Fatalf("WriteMeta %d: %v", i, err)
		}
	}
	d2 := mustOpen(t, opt)
	if got := d2.Meta(); len(got) != 2 || got[0] != 5 {
		t.Fatalf("Meta = %v, want [5 171]", got)
	}
}

// TestTornMetaFallsBack writes a good record, then a torn one (the power-cut
// image of a metadata persist); reopen must fall back to the good record.
func TestTornMetaFallsBack(t *testing.T) {
	opt := testOpts(t.TempDir())
	d := mustOpen(t, opt)
	if err := d.WriteMeta([]byte("good-record"), -1); err != nil {
		t.Fatal(err)
	}
	// Tear after 3 payload bytes: the header (with full length and checksum)
	// lands but most of the payload does not.
	if err := d.WriteMeta([]byte("newer-but-torn"), 3); err != nil {
		t.Fatal(err)
	}
	d2 := mustOpen(t, opt)
	if got := string(d2.Meta()); got != "good-record" {
		t.Fatalf("Meta after torn write = %q, want good-record", got)
	}
}

// TestZeroTearKeepsPrevious is the tear=0 case handled one level up (the
// arena skips the write entirely); at this level a zero-byte tear still
// writes the header, which must also fail validation.
func TestZeroTearKeepsPrevious(t *testing.T) {
	opt := testOpts(t.TempDir())
	d := mustOpen(t, opt)
	if err := d.WriteMeta([]byte("kept"), -1); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteMeta([]byte("gone"), 0); err != nil {
		t.Fatal(err)
	}
	d2 := mustOpen(t, opt)
	if got := string(d2.Meta()); got != "kept" {
		t.Fatalf("Meta = %q, want kept", got)
	}
}

// TestGeometryMismatchRejected reopens with different geometry and expects a
// refusal, not a reinterpretation.
func TestGeometryMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, testOpts(dir))
	if err := d.WriteMeta([]byte("x"), -1); err != nil {
		t.Fatal(err)
	}
	d.Close()
	opt := testOpts(dir)
	opt.SegmentBytes *= 2
	if _, err := Open(opt); err == nil {
		t.Fatal("Open with mismatched geometry succeeded")
	}
}

// TestBootstrapCrashReinitializes models a crash after the manifest header
// became durable but before the first metadata record: nothing was ever
// acknowledged, so reopen must reinitialize rather than fail.
func TestBootstrapCrashReinitializes(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, testOpts(dir))
	// A segment file exists but no record was ever written.
	if err := d.WriteDurable(0, []byte("pre-ack garbage"), true); err != nil {
		t.Fatal(err)
	}
	d2 := mustOpen(t, testOpts(dir))
	if d2.Existing() {
		t.Fatal("directory with no metadata record reported as existing")
	}
	img := make([]byte, testOpts(dir).Capacity)
	if err := d2.LoadInto(img); err != nil {
		t.Fatal(err)
	}
	for _, b := range img {
		if b != 0 {
			t.Fatal("reinitialized directory still holds old segment data")
		}
	}
}

// TestZeroDurableSkipsMissingSegments zeroes a range with no backing file —
// it must be a no-op, not a file creation.
func TestZeroDurableSkipsMissingSegments(t *testing.T) {
	opt := testOpts(t.TempDir())
	d := mustOpen(t, opt)
	if err := d.ZeroDurable(opt.SegmentBytes*3, opt.SegmentBytes); err != nil {
		t.Fatalf("ZeroDurable: %v", err)
	}
	if _, err := os.Stat(filepath.Join(opt.Dir, "seg-000003.dat")); !os.IsNotExist(err) {
		t.Fatal("ZeroDurable created a segment file")
	}
}

// TestSegmentCreateSyncsDirectory: with the fix in place, a segment file's
// directory entry is fsync'd at creation (UnsyncedCreates stays empty), so a
// crash immediately after the creating persist cannot unlink it.
func TestSegmentCreateSyncsDirectory(t *testing.T) {
	opt := testOpts(t.TempDir())
	d := mustOpen(t, opt)
	base := d.DirSyncs() // initialize pays one
	if err := d.WriteDurable(0, []byte("durable"), true); err != nil {
		t.Fatal(err)
	}
	if got := d.UnsyncedCreates(); len(got) != 0 {
		t.Fatalf("UnsyncedCreates = %v, want none", got)
	}
	if d.DirSyncs() != base+1 {
		t.Fatalf("segment creation issued %d dir syncs, want 1", d.DirSyncs()-base)
	}
}

// TestCloseSyncsDirectory is the regression test for the Close bugfix: Close
// must fsync the manifest and the directory entry before returning, so a
// clean shutdown leaves nothing volatile even if creation-time syncs were
// elided. The counter shows the Close-time sync; the DisableDirSync leg
// demonstrates the data-loss scenario the sync prevents.
func TestCloseSyncsDirectory(t *testing.T) {
	opt := testOpts(t.TempDir())
	d := mustOpen(t, opt)
	if err := d.WriteDurable(0, []byte("x"), true); err != nil {
		t.Fatal(err)
	}
	before := d.DirSyncs()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if d.DirSyncs() != before+1 {
		t.Fatalf("Close issued %d dir syncs, want 1", d.DirSyncs()-before)
	}
}

// TestDirSyncLossScenario demonstrates what the creation-time and Close-time
// directory syncs prevent: with both disabled, a crash can unlink a freshly
// created segment file, silently zeroing everything it held — including data
// whose persist was acknowledged with a real fdatasync.
func TestDirSyncLossScenario(t *testing.T) {
	opt := testOpts(t.TempDir())
	opt.DisableDirSync = true
	d := mustOpen(t, opt)
	payload := []byte("acknowledged-but-doomed")
	if err := d.WriteDurable(opt.SegmentBytes*2, payload, true); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteMeta([]byte("meta"), -1); err != nil {
		t.Fatal(err)
	}
	lost := d.UnsyncedCreates()
	if len(lost) == 0 {
		t.Fatal("expected the new segment's directory entry to be unsynced")
	}
	// The simulated power failure: unsynced directory entries never became
	// durable, so the files they named do not exist after restart.
	for _, path := range lost {
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
	}
	reopened := mustOpen(t, testOpts(opt.Dir))
	img := make([]byte, opt.Capacity)
	if err := reopened.LoadInto(img); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(img, payload) {
		t.Fatal("data survived without directory syncs — the loss scenario no longer reproduces")
	}
}

// TestZeroDurableSyncedBeforeMeta is the regression test for the
// freed-region resurrection bug: zeroes written by ZeroDurable stay
// host-cached, so a metadata record that reuses the region must not become
// durable before them. The synced WriteMeta path must fdatasync every
// zero-dirty segment file (clearing the tracking); the torn path models a
// power failure and must sync nothing.
func TestZeroDurableSyncedBeforeMeta(t *testing.T) {
	opt := testOpts(t.TempDir())
	d := mustOpen(t, opt)
	// Put real bytes in segments 0 and 1 so ZeroDurable has files to dirty.
	if err := d.WriteDurable(0, bytes.Repeat([]byte{0xEE}, int(opt.SegmentBytes)+512), true); err != nil {
		t.Fatal(err)
	}
	if err := d.ZeroDurable(256, opt.SegmentBytes); err != nil { // spans seg 0 and 1
		t.Fatal(err)
	}
	if got := d.ZeroDirtySegments(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("ZeroDirtySegments after zeroing = %v, want [0 1]", got)
	}
	// A torn metadata persist is the power-cut image: nothing is synced, the
	// zeroes stay pending.
	if err := d.WriteMeta([]byte("torn"), 2); err != nil {
		t.Fatal(err)
	}
	if got := d.ZeroDirtySegments(); len(got) != 2 {
		t.Fatalf("torn WriteMeta synced pending zeroes: dirty = %v", got)
	}
	// The synced record is what can make the region reachable again; it must
	// carry the zeroes to stable storage first.
	if err := d.WriteMeta([]byte("committed"), -1); err != nil {
		t.Fatal(err)
	}
	if got := d.ZeroDirtySegments(); len(got) != 0 {
		t.Fatalf("synced WriteMeta left zero-dirty segments %v", got)
	}
}

// TestParseSegName rejects every non-canonical segment file name a directory
// scan can encounter, so junk names can never alias onto a real index.
func TestParseSegName(t *testing.T) {
	cases := []struct {
		name string
		idx  int64
		ok   bool
	}{
		{"seg-000000.dat", 0, true},
		{"seg-000042.dat", 42, true},
		{"seg-1000000.dat", 1000000, true}, // beyond the %06d padding width
		{"seg-1.dat", 0, false},            // non-canonical padding
		{"seg-0000001.dat", 0, false},      // over-padded
		{"seg-000001.dat.bak", 0, false},   // trailing suffix
		{"seg--00001.dat", 0, false},       // negative
		{"seg-+00001.dat", 0, false},       // signed
		{"seg-00000x.dat", 0, false},
		{"seg-.dat", 0, false},
		{"MANIFEST", 0, false},
	}
	for _, c := range cases {
		idx, ok := parseSegName(c.name)
		if ok != c.ok || (ok && idx != c.idx) {
			t.Errorf("parseSegName(%q) = (%d, %v), want (%d, %v)", c.name, idx, ok, c.idx, c.ok)
		}
	}
}

// TestScanIgnoresJunkNames drops non-canonical look-alike files into a valid
// store directory; reopen must ignore them instead of aliasing them onto
// canonical indices (which would fail with ErrNotExist or leak descriptors).
func TestScanIgnoresJunkNames(t *testing.T) {
	opt := testOpts(t.TempDir())
	d := mustOpen(t, opt)
	data := []byte("real segment data")
	if err := d.WriteDurable(0, data, true); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteMeta([]byte("meta"), -1); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	for _, junk := range []string{"seg-1.dat", "seg-000000.dat.bak", "seg--00001.dat"} {
		if err := os.WriteFile(filepath.Join(opt.Dir, junk), []byte("junk"), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	d2 := mustOpen(t, opt)
	defer d2.Close()
	if !d2.Existing() {
		t.Fatal("junk file names broke reattach")
	}
	img := make([]byte, opt.Capacity)
	if err := d2.LoadInto(img); err != nil {
		t.Fatalf("LoadInto: %v", err)
	}
	if !bytes.Equal(img[:len(data)], data) {
		t.Fatal("junk file content aliased onto a canonical segment")
	}
}

// TestAttachErrorClosesFiles forces attach to fail after the manifest and the
// first segment file were opened (the second canonical segment path is a
// directory) and checks no descriptors leak from the error path.
func TestAttachErrorClosesFiles(t *testing.T) {
	opt := testOpts(t.TempDir())
	d := mustOpen(t, opt)
	if err := d.WriteDurable(0, []byte("seg zero exists"), true); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteMeta([]byte("meta"), -1); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// A canonical segment name that cannot be opened as a file.
	if err := os.Mkdir(filepath.Join(opt.Dir, "seg-000001.dat"), 0o777); err != nil {
		t.Fatal(err)
	}
	openFDs := func() int {
		ents, err := os.ReadDir("/proc/self/fd")
		if err != nil {
			t.Skip("no /proc/self/fd on this platform")
		}
		return len(ents)
	}
	before := openFDs()
	if _, err := Open(opt); err == nil {
		t.Fatal("Open over an unopenable segment path succeeded")
	}
	if after := openFDs(); after != before {
		t.Fatalf("failed Open leaked descriptors: %d open before, %d after", before, after)
	}
}

// TestRecordChecksumCoversHeader corrupts a stale record's seq word to a
// higher value of the right parity — under a payload-only checksum it would
// win newest-record selection over the intact newer record. The header-covered
// checksum must reject it.
func TestRecordChecksumCoversHeader(t *testing.T) {
	opt := testOpts(t.TempDir())
	d := mustOpen(t, opt)
	if err := d.WriteMeta([]byte("stale"), -1); err != nil { // seq 1 -> slot 1
		t.Fatal(err)
	}
	if err := d.WriteMeta([]byte("newest"), -1); err != nil { // seq 2 -> slot 0
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(opt.Dir, ManifestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Bump slot 1's seq from 1 to 3: same parity (passes the slot check),
	// higher than the genuine newest record's seq 2.
	raw[slot0Off+opt.MetaSlotBytes] = 3
	if err := os.WriteFile(path, raw, 0o666); err != nil {
		t.Fatal(err)
	}
	d2 := mustOpen(t, opt)
	defer d2.Close()
	if got := string(d2.Meta()); got != "newest" {
		t.Fatalf("Meta = %q, want %q — a corrupted seq word won newest-record selection", got, "newest")
	}
}

// TestWriteOutsideCapacityRejected bounds-checks the write path.
func TestWriteOutsideCapacityRejected(t *testing.T) {
	opt := testOpts(t.TempDir())
	d := mustOpen(t, opt)
	if err := d.WriteDurable(opt.Capacity-4, make([]byte, 8), false); err == nil {
		t.Fatal("write past capacity succeeded")
	}
	if err := d.WriteMeta(make([]byte, opt.MetaSlotBytes), -1); err == nil {
		t.Fatal("oversized metadata record accepted")
	}
}
