package filedev

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzFileManifestDecode feeds arbitrary bytes to the MANIFEST parsing path —
// the geometry header and both record slots — by writing them as the
// superblock of an otherwise empty directory and attaching to it. Open must
// never panic; it either reinitializes (no segment data at risk), refuses
// (corrupt header over data), or attaches with a validated record. Torn
// record tails must be rejected by the checksum, never returned as metadata.
func FuzzFileManifestDecode(f *testing.F) {
	opt := Options{Capacity: 1 << 20, AccessUnit: 256, SegmentBytes: 64 << 10, MetaSlotBytes: 4096}

	// Seed with a valid superblock plus interesting mutations of it.
	valid := func() []byte {
		raw := make([]byte, slot0Off+2*opt.MetaSlotBytes)
		copy(raw, encodeHeader(opt))
		return raw
	}
	f.Add(valid())
	f.Add([]byte{})
	f.Add([]byte("CHAMFD01 but far too short"))
	torn := valid()
	copy(torn[slot0Off:], []byte{1, 0, 0, 0, 0, 0, 0, 0, 16, 0, 0, 0}) // seq=1, len=16, no payload
	f.Add(torn)
	half := valid()[:slot0Off+100]
	f.Add(half)

	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, ManifestName), raw, 0o666); err != nil {
			t.Skip()
		}
		o := opt
		o.Dir = dir
		d, err := Open(o)
		if err != nil {
			return
		}
		// Whatever Open accepted must be internally consistent: a reported
		// record decodes, and the device is usable.
		if d.Existing() && len(d.Meta()) == 0 {
			t.Fatal("Existing() with empty metadata record")
		}
		if err := d.WriteDurable(0, []byte("probe"), true); err != nil {
			t.Fatalf("post-attach write: %v", err)
		}
		if err := d.WriteMeta([]byte("probe-meta"), -1); err != nil {
			t.Fatalf("post-attach meta write: %v", err)
		}
		if err := d.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		// The probe record must round-trip through a reopen.
		d2, err := Open(o)
		if err != nil {
			t.Fatalf("reopen after probe writes: %v", err)
		}
		if !d2.Existing() || string(d2.Meta()) != "probe-meta" {
			t.Fatalf("probe metadata did not survive reopen: existing=%v meta=%q", d2.Existing(), d2.Meta())
		}
		d2.Close()
	})
}

// FuzzSegmentScan feeds arbitrary file names into the directory scan via real
// files: attach must ignore non-segment names and reject inconsistent
// segment/manifest combinations without panicking.
func FuzzSegmentScan(f *testing.F) {
	f.Add("seg-000001.dat", []byte{1, 2, 3})
	f.Add("seg-999999999999999999.dat", []byte{})
	f.Add("seg--00001.dat", []byte{0})
	f.Add("MANIFEST.bak", []byte("x"))
	f.Fuzz(func(t *testing.T, name string, content []byte) {
		dir := t.TempDir()
		if filepath.Base(name) != name || name == "" || name == "." || name == ".." {
			t.Skip()
		}
		if err := os.WriteFile(filepath.Join(dir, name), content, 0o666); err != nil {
			t.Skip()
		}
		opt := Options{Dir: dir, Capacity: 1 << 20, AccessUnit: 256, SegmentBytes: 64 << 10, MetaSlotBytes: 4096}
		d, err := Open(opt)
		if err != nil {
			return
		}
		img := make([]byte, opt.Capacity)
		_ = d.LoadInto(img)
		d.Close()
	})
}
