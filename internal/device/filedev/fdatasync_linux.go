//go:build linux

package filedev

import (
	"os"
	"syscall"
)

// fdatasync flushes file data (and any metadata needed to read it back)
// without forcing an mtime/atime journal commit — the cheapest durability
// point Linux offers, and the one every sync persist pays.
func fdatasync(f *os.File) error {
	return syscall.Fdatasync(int(f.Fd()))
}
