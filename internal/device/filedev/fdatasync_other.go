//go:build !linux

package filedev

import "os"

// fdatasync falls back to a full fsync where the platform has no separate
// data-only sync.
func fdatasync(f *os.File) error {
	return f.Sync()
}
