// Package filedev is the file-backed persistence backend behind the pmem
// arena: the second implementation of the device boundary, for running
// chameleon-server against a real directory instead of the simulated medium.
//
// The arena's flat address space is mirrored onto fixed-span segment files
// (seg-000000.dat covers [0, SegmentBytes), and so on), created lazily the
// first time a persist touches their span and fsync'd — file and directory
// entry — at creation, so a durable index can never reference a file a crash
// would unlink. Every sync persist issues an fdatasync on the touched files
// before returning: the persist point of the simulated device (clwb+sfence)
// maps one-to-one onto an fsync boundary here, which is what keeps the
// crash-sweep fault plans meaningful on both backends. The 256 B access-unit
// accounting stays in the device timing model, unchanged.
//
// A MANIFEST file carries a checksummed geometry header and two alternating
// checksummed record slots for the engine's host metadata (the wlog segment
// directory, allocator marks, shard manifest locations — see core's
// hostState). Records are framed as [seq, length, checksum, payload], the
// checksum covering the seq and length words as well as the payload; a torn
// or corrupted record fails it on reopen and recovery falls back to the
// other slot, exactly like the engine's own dual-slot shard manifests. The
// first record is written before any data can be acknowledged, so a directory
// with a valid header but no valid record is a store that crashed during
// bootstrap: nothing was ever acknowledged, and Open reinitializes it.
package filedev

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"chameleondb/internal/xhash"
)

const (
	// ManifestName is the superblock file inside the backend directory.
	ManifestName = "MANIFEST"

	magic       = "CHAMFD01"
	headerBytes = 64 // magic(8) version(8) capacity(8) segBytes(8) slotBytes(8) unit(8) sum(8) pad(8)
	slot0Off    = 4096

	recHeader = 24 // seq(8) len(4) pad(4) sum(8)
)

// ErrCorruptManifest is returned when the MANIFEST geometry header fails its
// checksum while segment files exist — durable state this process cannot
// safely interpret.
var ErrCorruptManifest = errors.New("filedev: corrupt manifest header over existing segment data")

// ErrGeometry is returned when an existing directory's recorded geometry does
// not match the requested options.
var ErrGeometry = errors.New("filedev: geometry mismatch with existing directory")

// Options configure a backend directory.
type Options struct {
	// Dir is the backing directory, created if absent.
	Dir string
	// Capacity is the arena size in bytes the directory mirrors.
	Capacity int64
	// AccessUnit is the media line size (256 for the Optane profile); segment
	// spans must be multiples of it.
	AccessUnit int64
	// SegmentBytes is the address span of one segment file. Defaults to 4 MiB.
	SegmentBytes int64
	// MetaSlotBytes sizes each of the two manifest record slots; it must
	// exceed the engine's largest host-metadata record by recHeader bytes.
	// Defaults to 64 KiB.
	MetaSlotBytes int64
	// DisableDirSync skips the directory-entry fsync after segment-file
	// creation and on Close. Test-only: it exists so the regression tests can
	// demonstrate the data loss the directory syncs prevent.
	DisableDirSync bool
}

func (o *Options) defaults() error {
	if o.Dir == "" {
		return fmt.Errorf("filedev: Dir required")
	}
	if o.Capacity <= 0 {
		return fmt.Errorf("filedev: Capacity must be positive")
	}
	if o.AccessUnit <= 0 {
		o.AccessUnit = 256
	}
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SegmentBytes < o.AccessUnit || o.SegmentBytes%o.AccessUnit != 0 {
		return fmt.Errorf("filedev: SegmentBytes %d must be a positive multiple of the access unit %d", o.SegmentBytes, o.AccessUnit)
	}
	if o.MetaSlotBytes == 0 {
		o.MetaSlotBytes = 64 << 10
	}
	if o.MetaSlotBytes < recHeader+8 {
		return fmt.Errorf("filedev: MetaSlotBytes %d too small", o.MetaSlotBytes)
	}
	return nil
}

// Dev is one backend directory. It implements pmem.Medium.
type Dev struct {
	opt Options

	mu       sync.Mutex
	dir      *os.File
	manifest *os.File
	segs     map[int64]*os.File
	metaSeq  uint64
	meta     []byte // newest valid record payload at Open, nil if fresh
	existing bool
	closed   bool

	// unsynced tracks files created since their directory entry was last
	// fsync'd. Always empty unless DisableDirSync is set.
	unsynced []string

	// zeroDirty holds the indices of segment files carrying zero writes
	// (ZeroDurable) that have not reached stable storage yet. WriteMeta
	// fdatasyncs and clears them before it makes the next metadata record
	// durable: the record is what can make a freed-then-reused arena region
	// reachable again (it carries the wlog segment directory), and a power
	// cut must never be able to roll back the zeroes while keeping the
	// mapping — that would resurrect the freed region's stale bytes at new
	// LSNs.
	zeroDirty map[int64]struct{}

	// dirSyncs counts directory-entry fsyncs, so the regression tests can
	// assert that creation and Close both pay one.
	dirSyncs atomic.Int64
}

// Open attaches to (or initializes) a backend directory. After Open, Existing
// reports whether valid prior state was found and Meta returns the newest
// host-metadata record.
func Open(opt Options) (*Dev, error) {
	if err := opt.defaults(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(opt.Dir, 0o777); err != nil {
		return nil, err
	}
	dir, err := os.Open(opt.Dir)
	if err != nil {
		return nil, err
	}
	d := &Dev{
		opt:       opt,
		dir:       dir,
		segs:      make(map[int64]*os.File),
		zeroDirty: make(map[int64]struct{}),
	}
	if err := d.attach(); err != nil {
		// attach can fail partway through opening the manifest and segment
		// files; close whatever it already opened so the error path does not
		// leak descriptors.
		if d.manifest != nil {
			d.manifest.Close()
		}
		for _, f := range d.segs {
			f.Close()
		}
		dir.Close()
		return nil, err
	}
	return d, nil
}

// attach reads or initializes the MANIFEST and opens existing segment files.
func (d *Dev) attach() error {
	segIdx, err := d.scanSegments()
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(filepath.Join(d.opt.Dir, ManifestName))
	switch {
	case errors.Is(err, fs.ErrNotExist):
		if len(segIdx) > 0 {
			return fmt.Errorf("%w: segment files without a MANIFEST", ErrCorruptManifest)
		}
		return d.initialize()
	case err != nil:
		return err
	}
	switch err := parseHeader(raw, &d.opt); {
	case errors.Is(err, ErrGeometry):
		// A checksum-valid header that disagrees with the requested geometry
		// is a real directory opened with the wrong config — never reinit.
		return err
	case err != nil:
		if len(segIdx) > 0 {
			return fmt.Errorf("%w: %v", ErrCorruptManifest, err)
		}
		// A manifest that never became durable, with no data behind it:
		// nothing was ever acknowledged, start over.
		return d.initialize()
	}
	seq, payload := newestRecord(raw, d.opt.MetaSlotBytes)
	if payload == nil {
		// Valid header, no valid record: the store crashed during bootstrap,
		// before the engine's first metadata persist — and the first record
		// is always durable before the first acknowledgement, so nothing
		// acknowledged can be behind these files. Reinitialize.
		for _, idx := range segIdx {
			if err := os.Remove(d.segPath(idx)); err != nil {
				return err
			}
		}
		return d.initialize()
	}
	d.metaSeq = seq
	d.meta = payload
	d.existing = true
	var oerr error
	d.manifest, oerr = os.OpenFile(filepath.Join(d.opt.Dir, ManifestName), os.O_RDWR, 0o666)
	if oerr != nil {
		return oerr
	}
	for _, idx := range segIdx {
		f, err := os.OpenFile(d.segPath(idx), os.O_RDWR, 0o666)
		if err != nil {
			return err
		}
		d.segs[idx] = f
	}
	return nil
}

// initialize writes a fresh geometry header and syncs it and its directory
// entry before any segment file can exist.
func (d *Dev) initialize() error {
	f, err := os.OpenFile(filepath.Join(d.opt.Dir, ManifestName), os.O_RDWR|os.O_CREATE, 0o666)
	if err != nil {
		return err
	}
	if err := f.Truncate(slot0Off + 2*d.opt.MetaSlotBytes); err != nil {
		f.Close()
		return err
	}
	if _, err := f.WriteAt(encodeHeader(d.opt), 0); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := d.syncDir(); err != nil {
		f.Close()
		return err
	}
	d.manifest = f
	return nil
}

func encodeHeader(opt Options) []byte {
	h := make([]byte, headerBytes)
	copy(h[0:8], magic)
	binary.LittleEndian.PutUint64(h[8:16], 1) // version
	binary.LittleEndian.PutUint64(h[16:24], uint64(opt.Capacity))
	binary.LittleEndian.PutUint64(h[24:32], uint64(opt.SegmentBytes))
	binary.LittleEndian.PutUint64(h[32:40], uint64(opt.MetaSlotBytes))
	binary.LittleEndian.PutUint64(h[40:48], uint64(opt.AccessUnit))
	binary.LittleEndian.PutUint64(h[48:56], xhash.Sum64(h[0:48]))
	return h
}

// parseHeader validates raw's geometry header against opt. It returns nil
// only for a checksum-valid header whose geometry matches exactly.
func parseHeader(raw []byte, opt *Options) error {
	if len(raw) < headerBytes {
		return fmt.Errorf("short manifest (%d bytes)", len(raw))
	}
	if string(raw[0:8]) != magic {
		return fmt.Errorf("bad magic %q", raw[0:8])
	}
	if binary.LittleEndian.Uint64(raw[48:56]) != xhash.Sum64(raw[0:48]) {
		return fmt.Errorf("header checksum mismatch")
	}
	if v := binary.LittleEndian.Uint64(raw[8:16]); v != 1 {
		return fmt.Errorf("unsupported version %d", v)
	}
	got := Options{
		Capacity:      int64(binary.LittleEndian.Uint64(raw[16:24])),
		SegmentBytes:  int64(binary.LittleEndian.Uint64(raw[24:32])),
		MetaSlotBytes: int64(binary.LittleEndian.Uint64(raw[32:40])),
		AccessUnit:    int64(binary.LittleEndian.Uint64(raw[40:48])),
	}
	if got.Capacity != opt.Capacity || got.SegmentBytes != opt.SegmentBytes ||
		got.MetaSlotBytes != opt.MetaSlotBytes || got.AccessUnit != opt.AccessUnit {
		return fmt.Errorf("%w: directory has capacity=%d seg=%d slot=%d unit=%d, want capacity=%d seg=%d slot=%d unit=%d",
			ErrGeometry, got.Capacity, got.SegmentBytes, got.MetaSlotBytes, got.AccessUnit,
			opt.Capacity, opt.SegmentBytes, opt.MetaSlotBytes, opt.AccessUnit)
	}
	return nil
}

// recordSum computes a record's checksum over the seq and len header words
// (hdr16, the first 16 header bytes) chained with the payload, matching the
// geometry header's whole-struct coverage: a corrupted-but-plausible seq or
// len over an intact payload region cannot win newest-record selection or
// misframe the payload.
func recordSum(hdr16, payload []byte) uint64 {
	return xhash.Seeded(xhash.Sum64(hdr16), payload)
}

// newestRecord decodes both record slots and returns the valid one with the
// highest sequence (nil payload if neither validates). Tolerant of arbitrary
// bytes: a torn or corrupted slot fails its checksum and is skipped.
func newestRecord(raw []byte, slotBytes int64) (seq uint64, payload []byte) {
	for slot := int64(0); slot < 2; slot++ {
		off := slot0Off + slot*slotBytes
		if off+recHeader > int64(len(raw)) {
			continue
		}
		hdr := raw[off : off+recHeader]
		s := binary.LittleEndian.Uint64(hdr[0:8])
		plen := int64(binary.LittleEndian.Uint32(hdr[8:12]))
		sum := binary.LittleEndian.Uint64(hdr[16:24])
		if s == 0 || plen <= 0 || plen > slotBytes-recHeader || off+recHeader+plen > int64(len(raw)) {
			continue
		}
		// Records alternate slots by sequence parity; a record sitting in the
		// wrong slot is framing garbage.
		if int64(s%2) != slot {
			continue
		}
		p := raw[off+recHeader : off+recHeader+plen]
		if recordSum(hdr[0:16], p) != sum {
			continue
		}
		if s > seq {
			seq, payload = s, append([]byte(nil), p...)
		}
	}
	return seq, payload
}

// Existing reports whether Open found valid prior state (a decodable
// host-metadata record).
func (d *Dev) Existing() bool { return d.existing }

// Meta returns the newest valid host-metadata record found at Open, nil for a
// fresh directory.
func (d *Dev) Meta() []byte { return d.meta }

// Dir returns the backing directory path.
func (d *Dev) Dir() string { return d.opt.Dir }

func (d *Dev) segPath(idx int64) string {
	return filepath.Join(d.opt.Dir, fmt.Sprintf("seg-%06d.dat", idx))
}

// parseSegName returns the index of a canonical segment file name
// ("seg-%06d.dat", as segPath writes them) and false for everything else:
// trailing suffixes, non-canonical zero-padding, signs, and out-of-range
// indices are all rejected, never aliased onto a canonical index.
func parseSegName(name string) (int64, bool) {
	const prefix, suffix = "seg-", ".dat"
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	digits := name[len(prefix) : len(name)-len(suffix)]
	idx, err := strconv.ParseInt(digits, 10, 64)
	if err != nil || idx < 0 || fmt.Sprintf("seg-%06d.dat", idx) != name {
		return 0, false
	}
	return idx, true
}

// scanSegments lists the indices of existing segment files.
func (d *Dev) scanSegments() ([]int64, error) {
	ents, err := os.ReadDir(d.opt.Dir)
	if err != nil {
		return nil, err
	}
	var out []int64
	for _, e := range ents {
		if idx, ok := parseSegName(e.Name()); ok {
			out = append(out, idx)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// segSpan returns the byte length segment idx covers (the last segment can be
// shorter than SegmentBytes).
func (d *Dev) segSpan(idx int64) int64 {
	span := d.opt.SegmentBytes
	if rem := d.opt.Capacity - idx*d.opt.SegmentBytes; rem < span {
		span = rem
	}
	return span
}

// segFile returns the open file for segment idx, creating (and syncing file
// and directory entry) on first touch. create=false returns nil for segments
// that have no file yet.
func (d *Dev) segFile(idx int64, create bool) (*os.File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, fmt.Errorf("filedev: closed")
	}
	if f, ok := d.segs[idx]; ok {
		return f, nil
	}
	if !create {
		return nil, nil
	}
	f, err := os.OpenFile(d.segPath(idx), os.O_RDWR|os.O_CREATE, 0o666)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(d.segSpan(idx)); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	// The directory entry must be durable before any index that references
	// data in this segment can be: a create whose entry is lost to a crash
	// would silently zero everything the segment held.
	if d.opt.DisableDirSync {
		d.unsynced = append(d.unsynced, d.segPath(idx))
	} else if err := d.syncDir(); err != nil {
		f.Close()
		return nil, err
	}
	d.segs[idx] = f
	return f, nil
}

func (d *Dev) syncDir() error {
	d.dirSyncs.Add(1)
	return d.dir.Sync()
}

// DirSyncs returns the number of directory-entry fsyncs issued so far (test
// introspection for the Close regression test).
func (d *Dev) DirSyncs() int64 { return d.dirSyncs.Load() }

// UnsyncedCreates returns the paths of segment files created since their
// directory entry was last fsync'd. Always empty unless DisableDirSync is
// set; the dir-sync regression tests use it to simulate the unlink a power
// failure performs on an unsynced directory entry.
func (d *Dev) UnsyncedCreates() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.unsynced...)
}

// WriteDurable implements pmem.Medium: pwrite the range into its segment
// files (creating them on first touch) and, for sync persists, fdatasync
// every touched file before returning.
func (d *Dev) WriteDurable(off int64, data []byte, sync bool) error {
	if off < 0 || off+int64(len(data)) > d.opt.Capacity {
		return fmt.Errorf("filedev: write [%d, +%d) outside capacity %d", off, len(data), d.opt.Capacity)
	}
	var touched []*os.File
	for len(data) > 0 {
		idx := off / d.opt.SegmentBytes
		in := off % d.opt.SegmentBytes
		n := d.segSpan(idx) - in
		if n > int64(len(data)) {
			n = int64(len(data))
		}
		f, err := d.segFile(idx, true)
		if err != nil {
			return err
		}
		if _, err := f.WriteAt(data[:n], in); err != nil {
			return err
		}
		touched = append(touched, f)
		off += n
		data = data[n:]
	}
	if sync {
		for _, f := range touched {
			if err := fdatasync(f); err != nil {
				return err
			}
		}
	}
	return nil
}

// ZeroDurable implements pmem.Medium: write zeroes over the range, skipping
// segments that have no file (they already read as zero). The writes are not
// synced here; the touched files are marked zero-dirty and fdatasync'd by the
// next synced WriteMeta, before the record that could make the freed region
// reachable again becomes durable (an fdatasync of the same file on any
// intervening sync persist also carries them to media).
func (d *Dev) ZeroDurable(off, size int64) error {
	if size <= 0 {
		return nil
	}
	if off < 0 || off+size > d.opt.Capacity {
		return fmt.Errorf("filedev: zero [%d, +%d) outside capacity %d", off, size, d.opt.Capacity)
	}
	var zeros [64 << 10]byte
	for size > 0 {
		idx := off / d.opt.SegmentBytes
		in := off % d.opt.SegmentBytes
		n := d.segSpan(idx) - in
		if n > size {
			n = size
		}
		f, err := d.segFile(idx, false)
		if err != nil {
			return err
		}
		if f != nil {
			for w := int64(0); w < n; {
				c := n - w
				if c > int64(len(zeros)) {
					c = int64(len(zeros))
				}
				if _, err := f.WriteAt(zeros[:c], in+w); err != nil {
					return err
				}
				w += c
			}
			// Mark after the writes have landed: WriteMeta holds the mutex
			// across its zero syncs, so a mark it observes is a write its
			// fdatasync covers.
			d.mu.Lock()
			d.zeroDirty[idx] = struct{}{}
			d.mu.Unlock()
		}
		off += n
		size -= n
	}
	return nil
}

// ZeroDirtySegments returns the indices of segment files holding zero writes
// not yet carried to stable storage (test introspection for the WriteMeta
// zero-durability barrier).
func (d *Dev) ZeroDirtySegments() []int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]int64, 0, len(d.zeroDirty))
	for idx := range d.zeroDirty {
		out = append(out, idx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WriteMeta implements pmem.Medium: frame payload as the next record and
// write it to the alternate slot. tear < 0 writes the whole record and
// fdatasyncs the manifest; otherwise only the record header plus the first
// tear payload bytes are written and nothing is synced — the slot then fails
// its checksum on reopen and the previous record stays authoritative.
func (d *Dev) WriteMeta(payload []byte, tear int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("filedev: closed")
	}
	if int64(len(payload))+recHeader > d.opt.MetaSlotBytes {
		return fmt.Errorf("filedev: metadata record %d bytes exceeds slot %d", len(payload), d.opt.MetaSlotBytes)
	}
	seq := d.metaSeq + 1
	rec := make([]byte, recHeader+len(payload))
	binary.LittleEndian.PutUint64(rec[0:8], seq)
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint64(rec[16:24], recordSum(rec[0:16], payload))
	copy(rec[recHeader:], payload)
	slotOff := slot0Off + int64(seq%2)*d.opt.MetaSlotBytes
	if tear >= 0 {
		end := recHeader + tear
		if end > int64(len(rec)) {
			end = int64(len(rec))
		}
		_, err := d.manifest.WriteAt(rec[:end], slotOff)
		return err
	}
	// Pending zeroes must be durable before this record is: once it commits,
	// it can carry a segment mapping that reuses a freed region, and a power
	// cut that rolled back unsynced zeroes while keeping the record would let
	// the region's stale bytes validate as fresh entries on replay.
	for idx := range d.zeroDirty {
		if f := d.segs[idx]; f != nil {
			if err := fdatasync(f); err != nil {
				return err
			}
		}
		delete(d.zeroDirty, idx)
	}
	if _, err := d.manifest.WriteAt(rec, slotOff); err != nil {
		return err
	}
	if err := fdatasync(d.manifest); err != nil {
		return err
	}
	d.metaSeq = seq
	return nil
}

// LoadInto reads every existing segment file into durable at its span —
// reattaching an arena's durable image after a process restart.
func (d *Dev) LoadInto(durable []byte) error {
	if int64(len(durable)) != d.opt.Capacity {
		return fmt.Errorf("filedev: image %d bytes, directory capacity %d", len(durable), d.opt.Capacity)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for idx, f := range d.segs {
		base := idx * d.opt.SegmentBytes
		span := d.segSpan(idx)
		if base < 0 || span <= 0 || base+span > int64(len(durable)) {
			return fmt.Errorf("filedev: segment %d outside capacity", idx)
		}
		n, err := f.ReadAt(durable[base:base+span], 0)
		if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
			return fmt.Errorf("filedev: segment %d: %w", idx, err)
		}
		// A short file is the crash image of an interrupted create: nothing
		// past its length was ever durably acknowledged, so the remainder of
		// the span reads as zero.
		clear(durable[base+int64(n) : base+span])
	}
	return nil
}

// Close implements pmem.Medium: it syncs the manifest, every segment file,
// and — crucially — the directory entry before closing the descriptors, so a
// segment created shortly before a clean shutdown cannot be lost to an
// unsynced directory even if its creation-time dir sync was elided.
func (d *Dev) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	if d.manifest != nil {
		keep(fdatasync(d.manifest))
		keep(d.manifest.Close())
	}
	for _, f := range d.segs {
		keep(fdatasync(f))
		keep(f.Close())
	}
	clear(d.zeroDirty) // every segment file was just fdatasync'd
	// The Close-time directory sync is the last line of defence for any
	// directory entry still volatile (see UnsyncedCreates); skipping it under
	// DisableDirSync is what the regression test exploits to model the loss.
	if !d.opt.DisableDirSync {
		keep(d.syncDir())
		d.unsynced = nil
	}
	keep(d.dir.Close())
	return first
}
