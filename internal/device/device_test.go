package device

import (
	"testing"
	"testing/quick"

	"chameleondb/internal/simclock"
)

func TestMediaSpanRounding(t *testing.T) {
	d := New(OptanePmem)
	cases := []struct {
		off, size, want int64
	}{
		{0, 1, 256},
		{0, 256, 256},
		{0, 257, 512},
		{255, 2, 512},     // straddles a unit boundary
		{256, 256, 256},   // exactly one aligned unit
		{300, 16, 256},    // small write inside one unit
		{0, 4096, 4096},   // 16 units
		{128, 4096, 4352}, // unaligned 4 KB touches 17 units
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := d.mediaSpan(c.off, c.size); got != c.want {
			t.Errorf("mediaSpan(%d, %d) = %d, want %d", c.off, c.size, got, c.want)
		}
	}
}

func TestWriteAmplificationSmallWrites(t *testing.T) {
	// A 16-byte in-place index update on Optane must cost a full 256 B media
	// write: amplification 16. This is the arithmetic behind Challenge 1.
	d := New(OptanePmem)
	c := simclock.New(0)
	for i := int64(0); i < 100; i++ {
		d.WritePersist(c, i*1024, 16) // non-contiguous 16 B writes
	}
	s := d.Stats()
	if s.LogicalBytesWritten != 1600 {
		t.Fatalf("logical = %d, want 1600", s.LogicalBytesWritten)
	}
	if s.MediaBytesWritten != 25600 {
		t.Fatalf("media = %d, want 25600", s.MediaBytesWritten)
	}
	if wa := s.WriteAmplification(); wa != 16.0 {
		t.Fatalf("WA = %v, want 16", wa)
	}
	// RMW: the untouched 240 bytes of each unit must have been read.
	if s.MediaBytesRead != 24000 {
		t.Fatalf("RMW reads = %d, want 24000", s.MediaBytesRead)
	}
}

func TestWriteAmplificationAlignedWrites(t *testing.T) {
	// 256 B-aligned whole-unit writes have no amplification and no RMW.
	d := New(OptanePmem)
	c := simclock.New(0)
	for i := int64(0); i < 100; i++ {
		d.WritePersist(c, i*256, 256)
	}
	s := d.Stats()
	if wa := s.WriteAmplification(); wa != 1.0 {
		t.Fatalf("WA = %v, want 1", wa)
	}
	if s.MediaBytesRead != 0 {
		t.Fatalf("aligned writes should not RMW, got %d read bytes", s.MediaBytesRead)
	}
}

func TestRandomReadChargesLatency(t *testing.T) {
	d := New(OptanePmem)
	c := simclock.New(0)
	d.ReadRandom(c, 0, 16)
	if c.Now() < OptanePmem.ReadLatency {
		t.Fatalf("read advanced clock by %d, want >= %d", c.Now(), OptanePmem.ReadLatency)
	}
	s := d.Stats()
	if s.MediaBytesRead != 256 {
		t.Fatalf("16 B random read should touch one 256 B unit, got %d", s.MediaBytesRead)
	}
}

func TestSeqReadAmortizesLatency(t *testing.T) {
	d := New(OptanePmem)
	cr := simclock.New(0)
	d.ReadSeq(cr, 0, 1<<20) // 1 MB at 12 GB/s ~ 87 us
	seq := cr.Now()
	d2 := New(OptanePmem)
	cs := simclock.New(0)
	for i := int64(0); i < 4096; i++ { // same bytes as 256 B random reads
		d2.ReadRandom(cs, i*256, 256)
	}
	if seq >= cs.Now() {
		t.Fatalf("sequential read (%d ns) should be faster than random (%d ns)", seq, cs.Now())
	}
}

func TestContentionCurve(t *testing.T) {
	// Write bandwidth should degrade beyond MaxParallel threads (Figure 1).
	bwAt := func(threads int) float64 {
		d := New(OptanePmem)
		d.SetConcurrency(threads)
		g := simclock.NewGroup(threads, 0)
		const perThread = 1000
		for i := 0; i < threads; i++ {
			c := g.Clock(i)
			for j := 0; j < perThread; j++ {
				d.WritePersist(c, int64(j)*256, 256)
			}
		}
		totalBytes := float64(threads * perThread * 256)
		return totalBytes / float64(g.Makespan())
	}
	bw1, bw4, bw16 := bwAt(1), bwAt(4), bwAt(16)
	if bw4 <= bw1 {
		t.Fatalf("bandwidth should rise from 1 to 4 threads: %v vs %v", bw1, bw4)
	}
	if bw16 >= bw4 {
		t.Fatalf("bandwidth should decline past saturation: 4 threads %v, 16 threads %v", bw4, bw16)
	}
}

func TestConcurrencyClamp(t *testing.T) {
	d := New(OptanePmem)
	d.SetConcurrency(0)
	if d.Concurrency() != 1 {
		t.Fatalf("Concurrency() = %d, want clamp to 1", d.Concurrency())
	}
}

func TestResetStats(t *testing.T) {
	d := New(OptanePmem)
	c := simclock.New(0)
	d.WritePersist(c, 0, 64)
	d.ResetStats()
	if s := d.Stats(); s != (Stats{}) {
		t.Fatalf("stats after reset = %+v, want zero", s)
	}
}

// Property: media bytes written are always >= logical bytes and always a
// multiple of the access unit.
func TestMediaAccountingProperty(t *testing.T) {
	d := New(OptanePmem)
	c := simclock.New(0)
	f := func(off uint16, size uint16) bool {
		if size == 0 {
			return true
		}
		before := d.Stats()
		d.WritePersist(c, int64(off), int64(size))
		after := d.Stats()
		dMedia := after.MediaBytesWritten - before.MediaBytesWritten
		dLogical := after.LogicalBytesWritten - before.LogicalBytesWritten
		return dMedia >= dLogical && dMedia%OptanePmem.AccessUnit == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroSizeWriteIsNoOp(t *testing.T) {
	d := New(OptanePmem)
	c := simclock.New(0)
	d.WritePersist(c, 100, 0)
	if s := d.Stats(); s.WriteOps != 0 || c.Now() != 0 {
		t.Fatalf("zero-size write should be a no-op, stats=%+v clock=%d", s, c.Now())
	}
}

func TestProfilesSane(t *testing.T) {
	for _, p := range []Profile{OptanePmem, DRAM, SATASSD, NVMeSSD} {
		if p.AccessUnit <= 0 || p.ReadBandwidth <= 0 || p.WriteBandwidth <= 0 {
			t.Errorf("profile %s has non-positive parameters: %+v", p.Name, p)
		}
	}
	// The relationships the paper relies on.
	if OptanePmem.ReadLatency <= DRAM.ReadLatency {
		t.Error("Optane reads must be slower than DRAM")
	}
	if OptanePmem.ReadLatency > 5*DRAM.ReadLatency {
		t.Error("Optane reads are ~3x DRAM in the paper, model is way off")
	}
	if SATASSD.ReadLatency <= NVMeSSD.ReadLatency {
		t.Error("SATA must be slower than NVMe")
	}
	if NVMeSSD.ReadLatency <= OptanePmem.ReadLatency {
		t.Error("NVMe must be slower than Optane")
	}
}
