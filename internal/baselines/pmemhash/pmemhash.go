// Package pmemhash implements the Pmem-Hash baseline: CCEH (Nam et al.,
// FAST'19), a persistent extendible hash table updated in place in the
// Optane Pmem, over the shared value log. Every put performs small persisted
// writes — the log entry and the 16-byte index slot — each of which the
// device amplifies to a 256 B read-modify-write. That amplification is why
// Pmem-Hash has the lowest put throughput in the paper (Figure 10) despite
// its simple structure, while its one-probe reads keep get latency
// competitive (Figure 13). Its index is persistent, so restart is fast
// (Table 4: 2 s), needing only the volatile directory rebuilt.
package pmemhash

import (
	"bytes"
	"errors"
	"sync"

	"chameleondb/internal/cceh"
	"chameleondb/internal/device"
	"chameleondb/internal/kvstore"
	"chameleondb/internal/obs"
	"chameleondb/internal/pmem"
	"chameleondb/internal/simclock"
	"chameleondb/internal/wlog"
	"chameleondb/internal/xhash"
)

// Config sizes the store.
type Config struct {
	// Stripes is the number of independent CCEH tables (power of two),
	// approximating CCEH's fine-grained segment locking.
	Stripes int
	// InitialDepth is each stripe's initial extendible-hashing depth.
	InitialDepth uint8
	ArenaBytes   int64
	LogBytes     int64
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig() Config {
	return Config{Stripes: 64, InitialDepth: 1, ArenaBytes: 2 << 30, LogBytes: 1 << 30}
}

type stripe struct {
	mu sync.Mutex
	tl simclock.Timeline
	t  *cceh.Table
}

// Store is a Pmem-Hash (CCEH) instance.
type Store struct {
	cfg   Config
	dev   *device.Device
	arena *pmem.Arena
	log   *wlog.Log

	stripes []*stripe
	shift   uint

	ops obs.OpCounters
	reg *obs.Registry

	mu        sync.Mutex
	crashed   bool
	recoverNs int64
}

var _ kvstore.Store = (*Store)(nil)

// ErrCrashed is returned between Crash and Recover.
var ErrCrashed = errors.New("pmemhash: store has crashed; call Recover first")

// Open creates a Pmem-Hash store on a fresh device.
func Open(cfg Config) (*Store, error) {
	return OpenOn(cfg, device.New(device.OptanePmem))
}

// OpenOn creates a Pmem-Hash store on an existing device.
func OpenOn(cfg Config, dev *device.Device) (*Store, error) {
	if cfg.Stripes <= 0 || cfg.Stripes&(cfg.Stripes-1) != 0 {
		return nil, errors.New("pmemhash: Stripes must be a power of two")
	}
	arena := pmem.NewArena(dev, cfg.ArenaBytes)
	log, err := wlog.New(arena, cfg.LogBytes)
	if err != nil {
		return nil, err
	}
	s := &Store{cfg: cfg, dev: dev, arena: arena, log: log, shift: 64 - uint(intLog2(cfg.Stripes))}
	s.reg = obs.NewRegistry("pmemhash")
	s.ops.Register(s.reg)
	obs.RegisterDevice(s.reg, dev)
	obs.RegisterLog(s.reg, log)
	s.stripes = make([]*stripe, cfg.Stripes)
	for i := range s.stripes {
		t, err := cceh.New(arena, cfg.InitialDepth)
		if err != nil {
			return nil, err
		}
		s.stripes[i] = &stripe{t: t}
	}
	return s, nil
}

func intLog2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Name implements kvstore.Store.
func (s *Store) Name() string { return "Pmem-Hash" }

// Registry returns the store's metrics registry (generic op, device, and log
// counters).
func (s *Store) Registry() *obs.Registry { return s.reg }

// DeviceStats implements kvstore.Store.
func (s *Store) DeviceStats() device.Stats { return s.dev.Stats() }

// Device exposes the simulated device (the bench harness tunes its
// contention model per thread count).
func (s *Store) Device() *device.Device { return s.dev }

// DRAMFootprint implements kvstore.Store: CCEH keeps its directory and
// per-segment bookkeeping volatile; the slots themselves are in Pmem.
func (s *Store) DRAMFootprint() int64 {
	var total int64
	for _, st := range s.stripes {
		total += st.t.DRAMFootprint()
	}
	return total
}

func (s *Store) stripeFor(h uint64) *stripe {
	// Stripe selection uses middle bits: CCEH's directory consumes the top
	// bits for extendible addressing and the segment slot position uses the
	// low bits, so striping must not correlate with either.
	return s.stripes[(h>>16)&uint64(len(s.stripes)-1)]
}

// Crash implements kvstore.Store. The CCEH segments and directory copy are
// persistent; the in-DRAM directory survives reconstruction (modeled below
// in Recover as a charged scan). Index slots persisted ahead of unflushed
// log entries become dangling and read as misses — the acknowledged-but-
// unbatched window every log-structured store here shares.
func (s *Store) Crash() {
	s.mu.Lock()
	s.crashed = true
	s.mu.Unlock()
	s.arena.Crash()
	s.dev.ResetTimelines()
	for _, st := range s.stripes {
		st.tl.Reset()
	}
}

// Recover implements kvstore.Store: reload the persisted directory and
// validate segment heads — cheap, which is why Pmem-Hash restarts fast.
func (s *Store) Recover(c *simclock.Clock) error {
	start := c.Now()
	for _, st := range s.stripes {
		// Directory copy read (sequential) plus one head probe per segment.
		s.arena.Device().ReadSeq(c, 0, int64(st.t.DirSize())*8)
		for i := 0; i < st.t.DirSize(); i++ {
			s.arena.Device().ReadRandom(c, 0, 64)
		}
	}
	s.mu.Lock()
	s.crashed = false
	s.mu.Unlock()
	s.recoverNs = c.Now() - start
	return nil
}

// RecoverTime reports the virtual duration of the last Recover.
func (s *Store) RecoverTime() int64 { return s.recoverNs }

// Close implements kvstore.Store.
func (s *Store) Close() error { return nil }

func (s *Store) isCrashed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed
}

// Session is a per-worker handle.
type Session struct {
	store *Store
	clock *simclock.Clock
	ap    *wlog.Appender
}

var _ kvstore.Session = (*Session)(nil)

// NewSession implements kvstore.Store.
func (s *Store) NewSession(c *simclock.Clock) kvstore.Session {
	return &Session{store: s, clock: c, ap: s.log.NewAppender()}
}

// Clock implements kvstore.Session.
func (se *Session) Clock() *simclock.Clock { return se.clock }

func (se *Session) write(key, value []byte, flags uint16) error {
	if se.store.isCrashed() {
		return ErrCrashed
	}
	c := se.clock
	c.Advance(device.CostHash64)
	h := xhash.Sum64(key)
	st := se.store.stripeFor(h)
	st.mu.Lock()
	opStart := c.Now()
	// Individual persisted writes, no batching (Section 3.3's explanation
	// of Pmem-Hash's put latency).
	lsn, err := se.ap.AppendSync(c, h, key, value, flags)
	if err == nil {
		if flags&wlog.FlagTombstone != 0 {
			st.t.Delete(c, h)
		} else {
			err = st.t.Insert(c, h, uint64(lsn))
		}
	}
	dur := c.Now() - opStart
	st.mu.Unlock()
	c.AdvanceTo(st.tl.Reserve(opStart, dur))
	if err == nil {
		se.store.ops.CountWrite(flags&wlog.FlagTombstone != 0)
	}
	return err
}

// Put implements kvstore.Session.
func (se *Session) Put(key, value []byte) error { return se.write(key, value, 0) }

// Delete implements kvstore.Session.
func (se *Session) Delete(key []byte) error { return se.write(key, nil, wlog.FlagTombstone) }

// Get implements kvstore.Session: directory lookup, segment probe in Pmem,
// then the log read.
func (se *Session) Get(key []byte) ([]byte, bool, error) {
	if se.store.isCrashed() {
		return nil, false, ErrCrashed
	}
	c := se.clock
	c.Advance(device.CostHash64)
	h := xhash.Sum64(key)
	st := se.store.stripeFor(h)
	st.mu.Lock()
	opStart := c.Now()
	ref, ok := st.t.Get(c, h)
	dur := c.Now() - opStart
	st.mu.Unlock()
	c.AdvanceTo(st.tl.Reserve(opStart, dur))
	if !ok {
		se.store.ops.CountGet(false)
		return nil, false, nil
	}
	e, err := se.store.log.Read(c, int64(ref))
	if err != nil {
		// Dangling slot: the index persisted ahead of a log entry that a
		// crash erased. Treat as missing.
		se.store.ops.CountGet(false)
		return nil, false, nil
	}
	if !bytes.Equal(e.Key, key) {
		se.store.ops.CountGet(false)
		return nil, false, nil
	}
	val := make([]byte, len(e.Value))
	copy(val, e.Value)
	se.store.ops.CountGet(true)
	return val, true, nil
}

// Flush implements kvstore.Session: Pmem-Hash has no write buffer (every
// put is already persisted), so only the appender chunk seal remains.
func (se *Session) Flush() error {
	if se.store.isCrashed() {
		return ErrCrashed
	}
	return se.ap.Flush(se.clock)
}
