package pmemhash

import (
	"fmt"
	"testing"

	"chameleondb/internal/kvstore"
	"chameleondb/internal/simclock"
	"chameleondb/internal/storetest"
)

func factory(t *testing.T) kvstore.Store {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Stripes = 8
	cfg.ArenaBytes = 512 << 20
	cfg.LogBytes = 128 << 20
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConformance(t *testing.T) {
	storetest.Run(t, "PmemHash", factory, storetest.Options{Keys: 5000, SupportsRecovery: true})
}

func TestPutWriteAmplificationIsLarge(t *testing.T) {
	s := factory(t).(*Store)
	se := s.NewSession(simclock.New(0))
	s.dev.ResetStats()
	const n = 5000
	for i := 0; i < n; i++ {
		se.Put([]byte(fmt.Sprintf("key-%08d", i)), []byte("12345678"))
	}
	wa := s.DeviceStats().WriteAmplification()
	// Per-put small writes: entry (~32 B -> 256 B) plus slot (16 B -> 256 B)
	// should amplify far beyond the batched stores' ~1.
	if wa < 4 {
		t.Fatalf("Pmem-Hash WA = %v, expected heavy amplification", wa)
	}
}

func TestFastRecovery(t *testing.T) {
	s := factory(t).(*Store)
	se := s.NewSession(simclock.New(0))
	const n = 20000
	for i := 0; i < n; i++ {
		se.Put([]byte(fmt.Sprintf("key-%08d", i)), []byte("v"))
	}
	se.Flush()
	s.Crash()
	c := simclock.New(0)
	if err := s.Recover(c); err != nil {
		t.Fatal(err)
	}
	// The persistent index means restart cost is directory-sized, not
	// log-sized: a small fraction of a full scan (~10 ns/entry floor used
	// in the Dram-Hash test).
	if s.RecoverTime() > int64(n)*10 {
		t.Fatalf("Pmem-Hash recovery too slow: %d ns", s.RecoverTime())
	}
	got, ok, _ := s.NewSession(simclock.New(0)).Get([]byte("key-00000042"))
	if !ok || string(got) != "v" {
		t.Fatal("data lost across fast recovery")
	}
}

func TestBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stripes = 5
	if _, err := Open(cfg); err == nil {
		t.Fatal("non-power-of-two stripes accepted")
	}
}
