// Package pmemlsm implements the Pmem-LSM baselines of Section 3.2: a
// hash-keyed LSM-tree KV store whose levels live entirely in the Optane
// Pmem, in three variants:
//
//   - NF: no bloom filters. Gets walk the levels in Pmem — the long
//     multi-level read path of Figure 6(a) and the slowest reader in
//     Figure 12.
//   - F: an in-DRAM bloom filter per table. Reads improve, but filter
//     construction makes the CPU the bottleneck on the write path
//     (Figure 10's 2-3x put-throughput gap to NF).
//   - PinK: every level except the last is mirrored in DRAM (after Im et
//     al.'s PinK, ATC'20), no filters. Same DRAM budget as ChameleonDB's
//     ABI, but reads still take multi-table checks — the comparison that
//     shows *how* DRAM is used matters, not just how much (Section 3.3).
//
// Structurally these stores are ChameleonDB stripped of its Auxiliary
// Bypass Index (the paper introduces them as the designs ChameleonDB
// hybridizes), so the implementation composes the core engine with the ABI
// disabled plus the per-table accelerator options. Write path, compaction
// scheme, recovery watermarks, and manifests are shared — exactly the
// "same substrate, different read acceleration" comparison the paper draws.
package pmemlsm

import (
	"fmt"

	"chameleondb/internal/core"
	"chameleondb/internal/device"
	"chameleondb/internal/kvstore"
)

// Variant selects the read-acceleration strategy.
type Variant int

const (
	// NF is Pmem-LSM-NF: multi-level Pmem reads, no filters.
	NF Variant = iota
	// F is Pmem-LSM-F: in-DRAM bloom filters per table.
	F
	// PinK is Pmem-LSM-PinK: upper levels pinned in DRAM.
	PinK
)

func (v Variant) String() string {
	switch v {
	case NF:
		return "Pmem-LSM-NF"
	case F:
		return "Pmem-LSM-F"
	case PinK:
		return "Pmem-LSM-PinK"
	}
	return fmt.Sprintf("Pmem-LSM(%d)", int(v))
}

// Store is a Pmem-LSM instance.
type Store struct {
	*core.Store
	variant Variant
}

var _ kvstore.Store = (*Store)(nil)

// Config returns the core configuration for a variant, starting from the
// given ChameleonDB-shaped geometry.
func Config(base core.Config, v Variant) (core.Config, error) {
	base.DisableABI = true
	base.BloomFilters = v == F
	base.PinUppers = v == PinK
	// Modes that depend on the ABI are not part of this baseline.
	base.WriteIntensive = false
	base.GetProtect = core.GPMConfig{}
	return base, nil
}

// Open creates a Pmem-LSM store of the given variant on a fresh device.
func Open(base core.Config, v Variant) (*Store, error) {
	return OpenOn(base, v, device.New(device.OptanePmem))
}

// OpenOn creates a Pmem-LSM store on an existing device.
func OpenOn(base core.Config, v Variant, dev *device.Device) (*Store, error) {
	cfg, err := Config(base, v)
	if err != nil {
		return nil, err
	}
	s, err := core.OpenOn(cfg, dev)
	if err != nil {
		return nil, err
	}
	return &Store{Store: s, variant: v}, nil
}

// Name implements kvstore.Store.
func (s *Store) Name() string { return s.variant.String() }

// Variant reports the store's read-acceleration strategy.
func (s *Store) Variant() Variant { return s.variant }
