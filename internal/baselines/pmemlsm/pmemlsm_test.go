package pmemlsm

import (
	"fmt"
	"testing"

	"chameleondb/internal/core"
	"chameleondb/internal/kvstore"
	"chameleondb/internal/simclock"
	"chameleondb/internal/storetest"
)

func factory(v Variant) storetest.Factory {
	return func(t *testing.T) kvstore.Store {
		t.Helper()
		s, err := Open(core.TestConfig(), v)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
}

func TestConformanceNF(t *testing.T) {
	storetest.Run(t, "PmemLSM-NF", factory(NF), storetest.Options{Keys: 5000, SupportsRecovery: true})
}

func TestConformanceF(t *testing.T) {
	storetest.Run(t, "PmemLSM-F", factory(F), storetest.Options{Keys: 5000, SupportsRecovery: true})
}

func TestConformancePinK(t *testing.T) {
	storetest.Run(t, "PmemLSM-PinK", factory(PinK), storetest.Options{Keys: 5000, SupportsRecovery: true})
}

func load(t *testing.T, v Variant, n int) (*Store, kvstore.Session) {
	t.Helper()
	s, err := Open(core.TestConfig(), v)
	if err != nil {
		t.Fatal(err)
	}
	se := s.NewSession(simclock.New(0))
	for i := 0; i < n; i++ {
		if err := se.Put([]byte(fmt.Sprintf("key-%08d", i)), []byte("valuevalue")); err != nil {
			t.Fatal(err)
		}
	}
	return s, se
}

// getTime measures the virtual time of a read phase. The phase continues on
// the loading session's clock: a fresh clock at time zero would queue behind
// shard timelines still busy at the load phase's end and measure the load
// instead.
func getTime(t *testing.T, s *Store, se kvstore.Session, n int) int64 {
	t.Helper()
	c := se.Clock()
	start := c.Now()
	for i := 0; i < n; i += 3 {
		if _, ok, err := se.Get([]byte(fmt.Sprintf("key-%08d", i))); err != nil || !ok {
			t.Fatalf("lost key %d: %v", i, err)
		}
	}
	return c.Now() - start
}

func TestVariantReadOrdering(t *testing.T) {
	// Figure 12/13 ordering: NF slowest; filters and pinning both help.
	const n = 12000
	nf, seNF := load(t, NF, n)
	f, seF := load(t, F, n)
	pink, sePinK := load(t, PinK, n)
	tNF, tF, tPinK := getTime(t, nf, seNF, n), getTime(t, f, seF, n), getTime(t, pink, sePinK, n)
	if tF >= tNF {
		t.Errorf("bloom filters did not speed up reads: F=%d NF=%d", tF, tNF)
	}
	if tPinK >= tNF {
		t.Errorf("pinning did not speed up reads: PinK=%d NF=%d", tPinK, tNF)
	}
}

func TestFilterConstructionSlowsPuts(t *testing.T) {
	// Figure 10: Pmem-LSM-F's put throughput is far below NF's because of
	// bloom filter construction during flushes and compactions.
	const n = 20000
	_, seNF := load(t, NF, n)
	_, seF := load(t, F, n)
	if seF.Clock().Now() <= seNF.Clock().Now() {
		t.Fatalf("filter construction should slow the write path: F=%d NF=%d",
			seF.Clock().Now(), seNF.Clock().Now())
	}
}

func TestPinKUsesMoreDRAM(t *testing.T) {
	const n = 12000
	nf, _ := load(t, NF, n)
	pink, _ := load(t, PinK, n)
	if pink.DRAMFootprint() <= nf.DRAMFootprint() {
		t.Fatalf("PinK must pay DRAM for its pinned levels: PinK=%d NF=%d",
			pink.DRAMFootprint(), nf.DRAMFootprint())
	}
}

func TestNames(t *testing.T) {
	for v, want := range map[Variant]string{NF: "Pmem-LSM-NF", F: "Pmem-LSM-F", PinK: "Pmem-LSM-PinK"} {
		s, err := Open(core.TestConfig(), v)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != want {
			t.Errorf("Name() = %q, want %q", s.Name(), want)
		}
		if s.Variant() != v {
			t.Errorf("Variant() mismatch")
		}
	}
}

func TestRecoveryRebuildsAccelerators(t *testing.T) {
	const n = 12000
	s, se := load(t, F, n)
	if err := se.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Crash()
	if err := s.Recover(simclock.New(0)); err != nil {
		t.Fatal(err)
	}
	// After recovery the filters exist again: reads must beat an equally
	// loaded NF store, and be correct.
	seF := s.NewSession(simclock.New(0))
	tF := getTime(t, s, seF, n)
	nf, seNF := load(t, NF, n)
	tNF := getTime(t, nf, seNF, n)
	if tF >= tNF {
		t.Fatalf("filters not rebuilt after recovery: F=%d NF=%d", tF, tNF)
	}
}
