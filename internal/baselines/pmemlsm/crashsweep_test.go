package pmemlsm

import (
	"testing"

	"chameleondb/internal/core"
	"chameleondb/internal/kvstore"
	"chameleondb/internal/storetest"
)

func sweepOpen(v Variant) func() (kvstore.Store, error) {
	return func() (kvstore.Store, error) {
		cfg := core.TestConfig()
		cfg.Shards = 4
		cfg.MemTableSlots = 32
		cfg.Levels = 3
		cfg.Ratio = 2
		cfg.ArenaBytes = 2 << 20
		cfg.LogBytes = 128 << 10
		s, err := Open(cfg, v)
		if err != nil {
			return nil, err
		}
		return s, nil
	}
}

// TestCrashSweep crashes the Pmem-LSM-NF baseline at every persist event of a
// scripted workload (with a torn-write variant per point) and checks the
// recovered state against the durability oracle.
func TestCrashSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep")
	}
	storetest.RunCrashSweep(t, "PmemLSM-NF", sweepOpen(NF), storetest.SweepConfig{
		Seed:          2,
		Ops:           600,
		Keys:          64,
		MaxValueLen:   100,
		FlushEvery:    20,
		MaintainEvery: 100,
		Maintenance:   storetest.StandardMaintenance(),
		Tear:          true,
	})
}

func TestCrashSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized soak")
	}
	storetest.RunCrashSoak(t, "PmemLSM-NF", sweepOpen(NF), storetest.SoakConfig{
		Seed:        3,
		Iterations:  4,
		Ops:         250,
		Keys:        48,
		MaxValueLen: 80,
		FlushEvery:  20,
		ErrorProb:   0.01,
	})
}
