package novelsm

import (
	"testing"

	"chameleondb/internal/kvstore"
	"chameleondb/internal/storetest"
)

func sweepOpen() (kvstore.Store, error) {
	cfg := DefaultConfig()
	cfg.MemTableBytes = 4 << 10
	cfg.ArenaBytes = 16 << 20
	return Open(cfg)
}

// TestCrashSweep crashes NoveLSM at every persist event of a scripted
// workload (with a torn-write variant per point) and checks the recovered
// state against the durability oracle. NoveLSM's persistent MemTable makes
// acknowledged puts durable immediately, so its oracle window is the
// tightest of the baselines.
func TestCrashSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep")
	}
	storetest.RunCrashSweep(t, "NoveLSM", sweepOpen, storetest.SweepConfig{
		Seed:        6,
		Ops:         300,
		Keys:        48,
		MaxValueLen: 80,
		FlushEvery:  20,
		Tear:        true,
	})
}

func TestCrashSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized soak")
	}
	storetest.RunCrashSoak(t, "NoveLSM", sweepOpen, storetest.SoakConfig{
		Seed:        7,
		Iterations:  4,
		Ops:         200,
		Keys:        40,
		MaxValueLen: 64,
		FlushEvery:  20,
		ErrorProb:   0.01,
	})
}
