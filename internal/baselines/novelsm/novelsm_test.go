package novelsm

import (
	"fmt"
	"testing"

	"chameleondb/internal/kvstore"
	"chameleondb/internal/simclock"
	"chameleondb/internal/storetest"
)

func factory(t *testing.T) kvstore.Store {
	t.Helper()
	cfg := DefaultConfig()
	cfg.MemTableBytes = 16 << 10
	cfg.ArenaBytes = 512 << 20
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConformance(t *testing.T) {
	storetest.Run(t, "NoveLSM", factory, storetest.Options{Keys: 4000, SupportsRecovery: true})
}

func TestCompactionsCascade(t *testing.T) {
	s := factory(t).(*Store)
	se := s.NewSession(simclock.New(0))
	for i := 0; i < 8000; i++ {
		if err := se.Put([]byte(fmt.Sprintf("key-%08d", i)), []byte("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	if s.Compactions() == 0 {
		t.Fatal("no compactions after 8000 puts with 16 KB memtables")
	}
	for i := 0; i < 8000; i += 37 {
		got, ok, err := se.Get([]byte(fmt.Sprintf("key-%08d", i)))
		if err != nil || !ok || string(got) != "0123456789abcdef" {
			t.Fatalf("key %d lost: %q %v %v", i, got, ok, err)
		}
	}
}

func TestMemtableInsertsAmplify(t *testing.T) {
	// NoveLSM's signature cost: building a mutable structure with small
	// in-place Pmem writes (Section 3.7).
	cfg := DefaultConfig()
	cfg.MemTableBytes = 64 << 20 // never flush during this test
	cfg.ArenaBytes = 512 << 20
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	se := s.NewSession(simclock.New(0))
	s.dev.ResetStats()
	for i := 0; i < 3000; i++ {
		se.Put([]byte(fmt.Sprintf("key-%08d", i)), []byte("vvvvvvvv"))
	}
	wa := s.DeviceStats().WriteAmplification()
	if wa < 2 {
		t.Fatalf("in-Pmem memtable WA = %v, expected substantial RMW amplification", wa)
	}
}

func TestEverythingPersistedCrash(t *testing.T) {
	// NoveLSM persists each put in place: even without Flush, a crash
	// loses nothing.
	s := factory(t).(*Store)
	se := s.NewSession(simclock.New(0))
	for i := 0; i < 3000; i++ {
		se.Put([]byte(fmt.Sprintf("key-%08d", i)), []byte("v"))
	}
	s.Crash()
	if err := s.Recover(simclock.New(0)); err != nil {
		t.Fatal(err)
	}
	se2 := s.NewSession(simclock.New(0))
	for i := 0; i < 3000; i += 101 {
		if _, ok, _ := se2.Get([]byte(fmt.Sprintf("key-%08d", i))); !ok {
			t.Fatalf("key %d lost despite in-place persistence", i)
		}
	}
}

func TestBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stripes = 3
	if _, err := Open(cfg); err == nil {
		t.Fatal("bad stripes accepted")
	}
	cfg = DefaultConfig()
	cfg.MaxLevels = 1
	if _, err := Open(cfg); err == nil {
		t.Fatal("bad levels accepted")
	}
}
