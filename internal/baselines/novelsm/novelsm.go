// Package novelsm implements the NoveLSM baseline (Kannan et al., ATC'18)
// as configured in the paper's Section 3.7: an LSM-tree whose mutable
// MemTable is a skip list in persistent memory (inserts are small in-place
// Pmem writes with heavy 256 B read-modify-write amplification), with all
// levels placed in the Pmem for the comparison, leveled compaction, bloom
// filters at every level, and no key/value separation — compactions rewrite
// values, which multiplies media writes (Figure 17(b)).
package novelsm

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"chameleondb/internal/blockcache"
	"chameleondb/internal/device"
	"chameleondb/internal/kvstore"
	"chameleondb/internal/obs"
	"chameleondb/internal/pmem"
	"chameleondb/internal/simclock"
	"chameleondb/internal/skiplist"
	"chameleondb/internal/sstable"
	"chameleondb/internal/xhash"
)

// Config sizes the store.
type Config struct {
	// Stripes is the number of independent LSM instances (the paper runs
	// one compaction thread; 1 reproduces that).
	Stripes int
	// MemTableBytes triggers a flush (the paper configures 128 MB total).
	MemTableBytes int64
	// L0Trigger is the number of L0 runs that triggers a compaction.
	L0Trigger int
	// Ratio is the leveled size ratio (LevelDB's 10).
	Ratio int
	// MaxLevels bounds the level count.
	MaxLevels int
	// ArenaBytes sizes the pmem arena.
	ArenaBytes int64
	// CacheBytes sizes the in-DRAM data cache (the paper grants NoveLSM
	// 8 GB in Section 3.7; 0 disables it).
	CacheBytes int64
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig() Config {
	return Config{
		Stripes:       1,
		MemTableBytes: 1 << 20,
		L0Trigger:     4,
		Ratio:         10,
		MaxLevels:     5,
		ArenaBytes:    2 << 30,
	}
}

type stripe struct {
	mu sync.Mutex
	tl simclock.Timeline

	mem      *skiplist.List
	memBytes int64
	l0       []*sstable.Run // oldest first
	levels   []*sstable.Run // levels[k] is L(k+1): one run each, leveled
	cache    *blockcache.Cache
}

// Store is a NoveLSM instance.
type Store struct {
	cfg   Config
	dev   *device.Device
	arena *pmem.Arena
	slab  *pmem.Slab

	stripes []*stripe

	mu      sync.Mutex
	crashed bool

	// compactions is atomic: stripes compact independently under their own
	// locks, so a plain counter would race when Stripes > 1.
	compactions atomic.Int64

	ops obs.OpCounters
	reg *obs.Registry
}

var _ kvstore.Store = (*Store)(nil)

// ErrCrashed is returned between Crash and Recover.
var ErrCrashed = errors.New("novelsm: store has crashed; call Recover first")

// Open creates a NoveLSM store on a fresh device.
func Open(cfg Config) (*Store, error) {
	return OpenOn(cfg, device.New(device.OptanePmem))
}

// OpenOn creates a NoveLSM store on an existing device.
func OpenOn(cfg Config, dev *device.Device) (*Store, error) {
	if cfg.Stripes <= 0 || cfg.Stripes&(cfg.Stripes-1) != 0 {
		return nil, errors.New("novelsm: Stripes must be a power of two")
	}
	if cfg.MaxLevels < 2 || cfg.Ratio < 2 || cfg.L0Trigger < 2 || cfg.MemTableBytes < 1024 {
		return nil, errors.New("novelsm: invalid geometry")
	}
	arena := pmem.NewArena(dev, cfg.ArenaBytes)
	s := &Store{cfg: cfg, dev: dev, arena: arena, slab: pmem.NewSlab(arena, 1<<20)}
	s.reg = obs.NewRegistry("novelsm")
	s.ops.Register(s.reg)
	obs.RegisterDevice(s.reg, dev)
	s.reg.CounterFunc("compactions", s.compactions.Load)
	s.stripes = make([]*stripe, cfg.Stripes)
	for i := range s.stripes {
		l, err := skiplist.New(arena, s.slab, int64(i)+1)
		if err != nil {
			return nil, err
		}
		s.stripes[i] = &stripe{
			mem:    l,
			levels: make([]*sstable.Run, cfg.MaxLevels),
			cache:  blockcache.New(cfg.CacheBytes / int64(cfg.Stripes)),
		}
	}
	return s, nil
}

// Name implements kvstore.Store.
func (s *Store) Name() string { return "NoveLSM" }

// DeviceStats implements kvstore.Store.
func (s *Store) DeviceStats() device.Stats { return s.dev.Stats() }

// Device exposes the simulated device (the bench harness tunes its
// contention model per thread count).
func (s *Store) Device() *device.Device { return s.dev }

// Compactions reports how many compactions have run.
func (s *Store) Compactions() int64 { return s.compactions.Load() }

// Registry returns the store's metrics registry (generic op, device, and
// compaction counters).
func (s *Store) Registry() *obs.Registry { return s.reg }

// DRAMFootprint implements kvstore.Store: NoveLSM's structures are in Pmem;
// only the bloom filters are volatile.
func (s *Store) DRAMFootprint() int64 {
	var total int64
	for _, st := range s.stripes {
		st.mu.Lock()
		for _, r := range st.l0 {
			total += r.DRAMFootprint()
		}
		for _, r := range st.levels {
			if r != nil {
				total += r.DRAMFootprint()
			}
		}
		total += st.cache.UsedBytes()
		st.mu.Unlock()
	}
	return total
}

func (s *Store) stripeFor(h uint64) *stripe {
	return s.stripes[(h>>8)&uint64(len(s.stripes)-1)]
}

// Crash implements kvstore.Store. NoveLSM's design point is that everything
// — including the mutable MemTable — is already persistent, so nothing
// volatile is lost except the bloom filters.
func (s *Store) Crash() {
	s.mu.Lock()
	s.crashed = true
	s.mu.Unlock()
	s.arena.Crash()
	s.dev.ResetTimelines()
	for _, st := range s.stripes {
		st.tl.Reset()
		st.cache.Reset()
	}
}

// Recover implements kvstore.Store: reattach the persistent structures and
// rebuild the volatile filters.
func (s *Store) Recover(c *simclock.Clock) error {
	for _, st := range s.stripes {
		st.mu.Lock()
		for _, r := range st.l0 {
			r.ChargeScan(c)
		}
		for _, r := range st.levels {
			if r != nil {
				r.ChargeScan(c)
			}
		}
		st.mu.Unlock()
	}
	s.mu.Lock()
	s.crashed = false
	s.mu.Unlock()
	return nil
}

// Close implements kvstore.Store.
func (s *Store) Close() error { return nil }

func (s *Store) isCrashed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed
}

// payload layout in the slab: [2 B keyLen][2 B flags][4 B valLen][key][value]
const payloadHeader = 8

func (s *Store) writePayload(c *simclock.Clock, key, value []byte, tomb bool) (int64, error) {
	sz := int64(payloadHeader+len(key)+len(value)+7) &^ 7
	off, err := s.slab.Alloc(sz)
	if err != nil {
		return 0, err
	}
	buf := s.arena.Bytes(off, sz)
	buf[0], buf[1] = byte(len(key)), byte(len(key)>>8)
	if tomb {
		buf[2] = 1
	}
	buf[4], buf[5], buf[6], buf[7] = byte(len(value)), byte(len(value)>>8), byte(len(value)>>16), byte(len(value)>>24)
	copy(buf[payloadHeader:], key)
	copy(buf[payloadHeader+len(key):], value)
	// An unaligned small persisted write: the RMW-amplified access pattern
	// of building a mutable structure directly in the Pmem.
	s.arena.Persist(c, off, sz)
	return off, nil
}

func (s *Store) readPayload(c *simclock.Clock, off int64) (key, value []byte, tomb bool) {
	hdr := s.arena.Bytes(off, payloadHeader)
	keyLen := int(hdr[0]) | int(hdr[1])<<8
	tomb = hdr[2]&1 != 0
	valLen := int(hdr[4]) | int(hdr[5])<<8 | int(hdr[6])<<16 | int(hdr[7])<<24
	sz := int64(payloadHeader+keyLen+valLen+7) &^ 7
	buf := s.arena.ReadRandom(c, off, sz)
	return buf[payloadHeader : payloadHeader+keyLen], buf[payloadHeader+keyLen : payloadHeader+keyLen+valLen], tomb
}

// flushLocked turns the MemTable into an L0 run and cascades compactions.
func (s *Store) flushLocked(c *simclock.Clock, st *stripe) error {
	if st.mem.Len() == 0 {
		return nil
	}
	entries := make([]sstable.Entry, 0, st.mem.Len())
	st.mem.Iterate(func(h, ref uint64) bool {
		key, val, tomb := s.readPayloadVolatile(ref)
		entries = append(entries, sstable.Entry{Hash: h, Key: key, Value: val, Tombstone: tomb})
		return true
	})
	// Reading the memtable out of Pmem for the flush.
	s.dev.ReadSeq(c, 0, st.memBytes)
	run, err := sstable.Build(c, s.arena, entries, sstable.BuildOptions{WithFilter: true})
	if err != nil {
		return err
	}
	// The stripe's run directory survives Crash (it models durable LSM
	// metadata): never commit a run whose build a power failure interrupted,
	// and never reset the persistent MemTable afterwards — its contents would
	// be the only surviving copy.
	if s.dev.PowerFailed() {
		run.Release()
		return device.ErrPowerFailed
	}
	st.l0 = append(st.l0, run)
	st.mem.Reset(c)
	st.memBytes = 0
	if len(st.l0) >= s.cfg.L0Trigger {
		return s.compactLocked(c, st)
	}
	return nil
}

func (s *Store) readPayloadVolatile(ref uint64) (key, value []byte, tomb bool) {
	off := int64(ref)
	hdr := s.arena.Bytes(off, payloadHeader)
	keyLen := int(hdr[0]) | int(hdr[1])<<8
	tomb = hdr[2]&1 != 0
	valLen := int(hdr[4]) | int(hdr[5])<<8 | int(hdr[6])<<16 | int(hdr[7])<<24
	buf := s.arena.Bytes(off, int64(payloadHeader+keyLen+valLen))
	return buf[payloadHeader : payloadHeader+keyLen], buf[payloadHeader+keyLen:], tomb
}

// compactLocked runs LevelDB-style leveled compaction: L0's runs merge with
// L1 into a new L1; an oversized L1 merges with L2; and so on. Every merge
// reads and rewrites whole runs including their values — the write
// amplification the paper measures with ipmwatch in Figure 17(b).
func (s *Store) compactLocked(c *simclock.Clock, st *stripe) error {
	s.compactions.Add(1)
	// L0 (+ L1) -> new L1, newest first: L0 runs from newest to oldest,
	// then the old L1.
	inputs := make([]*sstable.Run, 0, len(st.l0)+1)
	for i := len(st.l0) - 1; i >= 0; i-- {
		inputs = append(inputs, st.l0[i])
	}
	if st.levels[0] != nil {
		inputs = append(inputs, st.levels[0])
	}
	lastLevel := s.cfg.MaxLevels - 1
	merged, err := sstable.Merge(c, s.arena, inputs, sstable.BuildOptions{WithFilter: true}, lastLevel == 0)
	if err != nil {
		return err
	}
	if s.dev.PowerFailed() {
		merged.Release()
		return device.ErrPowerFailed
	}
	for _, r := range inputs {
		r.Release()
	}
	st.l0 = nil
	st.levels[0] = merged

	// Cascade down while a level exceeds its capacity.
	levelCap := s.cfg.MemTableBytes * int64(s.cfg.L0Trigger)
	for lvl := 0; lvl < s.cfg.MaxLevels-1; lvl++ {
		levelCap *= int64(s.cfg.Ratio)
		r := st.levels[lvl]
		if r == nil || r.SizeBytes() <= levelCap {
			break
		}
		inputs := []*sstable.Run{r}
		if st.levels[lvl+1] != nil {
			inputs = append(inputs, st.levels[lvl+1])
		}
		drop := lvl+1 == s.cfg.MaxLevels-1
		merged, err := sstable.Merge(c, s.arena, inputs, sstable.BuildOptions{WithFilter: true}, drop)
		if err != nil {
			return err
		}
		if s.dev.PowerFailed() {
			merged.Release()
			return device.ErrPowerFailed
		}
		for _, in := range inputs {
			in.Release()
		}
		st.levels[lvl] = nil
		st.levels[lvl+1] = merged
		s.compactions.Add(1)
	}
	return nil
}

// Session is a per-worker handle.
type Session struct {
	store *Store
	clock *simclock.Clock
}

var _ kvstore.Session = (*Session)(nil)

// NewSession implements kvstore.Store.
func (s *Store) NewSession(c *simclock.Clock) kvstore.Session {
	return &Session{store: s, clock: c}
}

// Clock implements kvstore.Session.
func (se *Session) Clock() *simclock.Clock { return se.clock }

func (se *Session) write(key, value []byte, tomb bool) error {
	if se.store.isCrashed() {
		return ErrCrashed
	}
	c := se.clock
	c.Advance(device.CostHash64)
	h := xhash.Sum64(key)
	st := se.store.stripeFor(h)
	st.mu.Lock()
	opStart := c.Now()
	off, err := se.store.writePayload(c, key, value, tomb)
	if err == nil {
		st.cache.Invalidate(h)
		err = st.mem.Insert(c, h, uint64(off))
	}
	if err == nil {
		st.memBytes += int64(payloadHeader + len(key) + len(value))
		if st.memBytes >= se.store.cfg.MemTableBytes {
			err = se.store.flushLocked(c, st)
		}
	}
	dur := c.Now() - opStart
	st.mu.Unlock()
	c.AdvanceTo(st.tl.Reserve(opStart, dur))
	if err == nil {
		se.store.ops.CountWrite(tomb)
	}
	return err
}

// Put implements kvstore.Session: a skip-list insert directly in the Pmem.
func (se *Session) Put(key, value []byte) error { return se.write(key, value, false) }

// Delete implements kvstore.Session.
func (se *Session) Delete(key []byte) error { return se.write(key, nil, true) }

// Get implements kvstore.Session: the in-Pmem MemTable (random Pmem reads),
// then L0 runs newest-first, then the levels — filters, binary searches,
// and block reads all the way down (Section 3.7).
func (se *Session) Get(key []byte) ([]byte, bool, error) {
	v, ok, err := se.get(key)
	if err == nil {
		se.store.ops.CountGet(ok)
	}
	return v, ok, err
}

func (se *Session) get(key []byte) ([]byte, bool, error) {
	if se.store.isCrashed() {
		return nil, false, ErrCrashed
	}
	c := se.clock
	c.Advance(device.CostHash64)
	h := xhash.Sum64(key)
	st := se.store.stripeFor(h)
	st.mu.Lock()
	defer st.mu.Unlock()
	opStart := c.Now()
	// Deferred functions run LIFO: this reservation executes before the
	// unlock above, covering the whole locked section.
	defer func() {
		c.AdvanceTo(st.tl.Reserve(opStart, c.Now()-opStart))
	}()

	if v, ok := st.cache.Get(c, h); ok {
		return append([]byte(nil), v...), true, nil
	}
	if ref, ok := st.mem.Get(c, h); ok {
		k, v, tomb := se.store.readPayload(c, int64(ref))
		if !bytes.Equal(k, key) || tomb {
			return nil, false, nil
		}
		return append([]byte(nil), v...), true, nil
	}
	check := func(r *sstable.Run) ([]byte, bool, bool) {
		k, v, tomb, ok := r.Get(c, h)
		if !ok {
			return nil, false, false
		}
		if tomb || !bytes.Equal(k, key) {
			return nil, false, true
		}
		st.cache.Put(h, v)
		return append([]byte(nil), v...), true, true
	}
	for i := len(st.l0) - 1; i >= 0; i-- {
		if v, found, done := check(st.l0[i]); done {
			return v, found, nil
		}
	}
	for _, r := range st.levels {
		if r == nil {
			continue
		}
		if v, found, done := check(r); done {
			return v, found, nil
		}
	}
	return nil, false, nil
}

// Flush implements kvstore.Session: NoveLSM persists every put in place, so
// there is nothing buffered.
func (se *Session) Flush() error {
	if se.store.isCrashed() {
		return ErrCrashed
	}
	return nil
}

// String implements fmt.Stringer.
func (s *Store) String() string {
	return fmt.Sprintf("NoveLSM(stripes=%d, memtable=%dB)", s.cfg.Stripes, s.cfg.MemTableBytes)
}
