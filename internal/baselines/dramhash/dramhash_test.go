package dramhash

import (
	"testing"

	"chameleondb/internal/kvstore"
	"chameleondb/internal/simclock"
	"chameleondb/internal/storetest"
)

func factory(t *testing.T) kvstore.Store {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Stripes = 16
	cfg.InitialCapacity = 64
	cfg.ArenaBytes = 256 << 20
	cfg.LogBytes = 128 << 20
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConformance(t *testing.T) {
	storetest.Run(t, "DramHash", factory, storetest.Options{Keys: 5000, SupportsRecovery: true})
}

func TestRecoveryScansWholeLog(t *testing.T) {
	s := factory(t).(*Store)
	se := s.NewSession(simclock.New(0))
	const n = 20000
	for i := 0; i < n; i++ {
		se.Put([]byte{byte(i), byte(i >> 8), byte(i >> 16), 'k'}, []byte("v"))
	}
	se.Flush()
	s.Crash()
	c := simclock.New(0)
	if err := s.Recover(c); err != nil {
		t.Fatal(err)
	}
	// Restart cost must scale with the log, not the memtable: at least one
	// sequential pass over ~n entries' bytes.
	if s.RecoverTime() < int64(n)*10 {
		t.Fatalf("recovery suspiciously fast for a full log scan: %d ns", s.RecoverTime())
	}
}

func TestBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stripes = 3
	if _, err := Open(cfg); err == nil {
		t.Fatal("non-power-of-two stripes accepted")
	}
}

func TestIndexGrowthSpikesLatency(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stripes = 1
	cfg.InitialCapacity = 64
	cfg.ArenaBytes = 256 << 20
	cfg.LogBytes = 128 << 20
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := simclock.New(0)
	se := s.NewSession(c)
	var maxPut int64
	for i := 0; i < 100000; i++ {
		before := c.Now()
		se.Put([]byte{byte(i), byte(i >> 8), byte(i >> 16), 'x'}, []byte("v"))
		if d := c.Now() - before; d > maxPut {
			maxPut = d
		}
	}
	// The largest put must be dominated by a rehash: orders of magnitude
	// above a typical put (Table 2's 3.23 s outlier shape).
	if maxPut < 100_000 {
		t.Fatalf("no rehash spike observed: max put %d ns", maxPut)
	}
}
