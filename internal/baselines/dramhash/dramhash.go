// Package dramhash implements the Dram-Hash baseline (paper Section 3.2): a
// robin-hood hash index held entirely in DRAM over a value log in persistent
// memory. It has the best put and get performance in the evaluation — no
// LSM maintenance, no Pmem index writes — but the largest DRAM footprint,
// and a crash loses the whole index: restart scans the entire log (Table 4's
// 102-second recovery).
package dramhash

import (
	"bytes"
	"errors"
	"sync"

	"chameleondb/internal/device"
	"chameleondb/internal/kvstore"
	"chameleondb/internal/obs"
	"chameleondb/internal/pmem"
	"chameleondb/internal/robinhood"
	"chameleondb/internal/simclock"
	"chameleondb/internal/wlog"
	"chameleondb/internal/xhash"
)

// Config sizes the store.
type Config struct {
	// Stripes is the number of independently locked index stripes (power of
	// two).
	Stripes int
	// InitialCapacity is each stripe's starting slot count.
	InitialCapacity int
	// ArenaBytes / LogBytes size the pmem arena and value log.
	ArenaBytes int64
	LogBytes   int64
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig() Config {
	return Config{Stripes: 256, InitialCapacity: 1024, ArenaBytes: 1 << 30, LogBytes: 1<<30 - 1<<24}
}

type stripe struct {
	mu sync.Mutex
	tl simclock.Timeline
	rh *robinhood.Table
}

// Store is a Dram-Hash instance.
type Store struct {
	cfg   Config
	dev   *device.Device
	arena *pmem.Arena
	log   *wlog.Log

	stripes []*stripe
	shift   uint

	ops obs.OpCounters
	reg *obs.Registry

	crashed   bool
	crashMu   sync.Mutex
	recoverNs int64
}

var _ kvstore.Store = (*Store)(nil)

// ErrCrashed is returned between Crash and Recover.
var ErrCrashed = errors.New("dramhash: store has crashed; call Recover first")

// Open creates a Dram-Hash store on a fresh device.
func Open(cfg Config) (*Store, error) {
	return OpenOn(cfg, device.New(device.OptanePmem))
}

// OpenOn creates a Dram-Hash store on an existing device.
func OpenOn(cfg Config, dev *device.Device) (*Store, error) {
	if cfg.Stripes <= 0 || cfg.Stripes&(cfg.Stripes-1) != 0 {
		return nil, errors.New("dramhash: Stripes must be a power of two")
	}
	arena := pmem.NewArena(dev, cfg.ArenaBytes)
	log, err := wlog.New(arena, cfg.LogBytes)
	if err != nil {
		return nil, err
	}
	s := &Store{cfg: cfg, dev: dev, arena: arena, log: log, shift: 64 - uint(intLog2(cfg.Stripes))}
	s.reg = obs.NewRegistry("dramhash")
	s.ops.Register(s.reg)
	obs.RegisterDevice(s.reg, dev)
	obs.RegisterLog(s.reg, log)
	s.stripes = make([]*stripe, cfg.Stripes)
	for i := range s.stripes {
		s.stripes[i] = &stripe{rh: robinhood.New(cfg.InitialCapacity)}
	}
	return s, nil
}

func intLog2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Name implements kvstore.Store.
func (s *Store) Name() string { return "Dram-Hash" }

// Registry returns the store's metrics registry (generic op, device, and log
// counters).
func (s *Store) Registry() *obs.Registry { return s.reg }

// DeviceStats implements kvstore.Store.
func (s *Store) DeviceStats() device.Stats { return s.dev.Stats() }

// Device exposes the simulated device (the bench harness tunes its
// contention model per thread count).
func (s *Store) Device() *device.Device { return s.dev }

// DRAMFootprint implements kvstore.Store: the full index lives in DRAM.
func (s *Store) DRAMFootprint() int64 {
	var total int64
	for _, st := range s.stripes {
		total += st.rh.DRAMFootprint()
	}
	return total
}

func (s *Store) stripeFor(h uint64) *stripe {
	if s.shift == 64 {
		return s.stripes[0]
	}
	return s.stripes[h>>s.shift]
}

// Crash implements kvstore.Store: the DRAM index is lost entirely.
func (s *Store) Crash() {
	s.crashMu.Lock()
	s.crashed = true
	s.crashMu.Unlock()
	s.arena.Crash()
	s.dev.ResetTimelines()
	for _, st := range s.stripes {
		st.rh = robinhood.New(s.cfg.InitialCapacity)
		st.tl.Reset()
	}
}

// Recover implements kvstore.Store: the entire log is scanned to rebuild the
// index — the slow restart that motivates keeping index structure in the
// Pmem (Challenge 3).
func (s *Store) Recover(c *simclock.Clock) error {
	start := c.Now()
	err := s.log.Scan(c, s.log.Base(), func(e wlog.Entry) bool {
		c.Advance(device.CostHash64)
		st := s.stripeFor(e.Hash)
		if e.Tombstone() {
			probes, _ := st.rh.Delete(e.Hash)
			c.Advance(device.DRAMProbeCost(probes))
			return true
		}
		probes, grown := st.rh.Insert(e.Hash, uint64(e.LSN))
		c.Advance(device.DRAMProbeCost(probes) + int64(grown)*device.CostDRAMRandAccess)
		return true
	})
	if err != nil {
		return err
	}
	s.crashMu.Lock()
	s.crashed = false
	s.crashMu.Unlock()
	s.recoverNs = c.Now() - start
	return nil
}

// RecoverTime reports the virtual duration of the last Recover.
func (s *Store) RecoverTime() int64 { return s.recoverNs }

// Close implements kvstore.Store.
func (s *Store) Close() error { return nil }

func (s *Store) isCrashed() bool {
	s.crashMu.Lock()
	defer s.crashMu.Unlock()
	return s.crashed
}

// Session is a per-worker handle.
type Session struct {
	store *Store
	clock *simclock.Clock
	ap    *wlog.Appender
}

var _ kvstore.Session = (*Session)(nil)

// NewSession implements kvstore.Store.
func (s *Store) NewSession(c *simclock.Clock) kvstore.Session {
	return &Session{store: s, clock: c, ap: s.log.NewAppender()}
}

// Clock implements kvstore.Session.
func (se *Session) Clock() *simclock.Clock { return se.clock }

func (se *Session) write(key, value []byte, flags uint16) error {
	if se.store.isCrashed() {
		return ErrCrashed
	}
	c := se.clock
	c.Advance(device.CostHash64)
	h := xhash.Sum64(key)
	c.Advance(int64(float64(wlog.EntrySize(len(key), len(value))) * device.CostDRAMSeqPerByte))
	st := se.store.stripeFor(h)
	st.mu.Lock()
	opStart := c.Now()
	lsn, err := se.ap.Append(c, h, key, value, flags)
	if err == nil {
		if flags&wlog.FlagTombstone != 0 {
			probes, _ := st.rh.Delete(h)
			c.Advance(device.DRAMProbeCost(probes))
		} else {
			probes, grown := st.rh.Insert(h, uint64(lsn))
			// A resize re-places every entry (streamed, cache-friendly):
			// the multi-second rehash spike behind Dram-Hash's worst-case
			// put latency (Table 2).
			c.Advance(device.DRAMProbeCost(probes) + int64(grown)*device.CostCompactionPerSlot)
		}
	}
	dur := c.Now() - opStart
	st.mu.Unlock()
	c.AdvanceTo(st.tl.Reserve(opStart, dur))
	if err == nil {
		se.store.ops.CountWrite(flags&wlog.FlagTombstone != 0)
	}
	return err
}

// Put implements kvstore.Session.
func (se *Session) Put(key, value []byte) error { return se.write(key, value, 0) }

// Delete implements kvstore.Session.
func (se *Session) Delete(key []byte) error { return se.write(key, nil, wlog.FlagTombstone) }

// Get implements kvstore.Session: one DRAM index lookup plus one Pmem log
// read — the latency floor the other stores are measured against.
func (se *Session) Get(key []byte) ([]byte, bool, error) {
	if se.store.isCrashed() {
		return nil, false, ErrCrashed
	}
	c := se.clock
	c.Advance(device.CostHash64)
	h := xhash.Sum64(key)
	st := se.store.stripeFor(h)
	st.mu.Lock()
	opStart := c.Now()
	ref, probes, ok := st.rh.Get(h)
	c.Advance(device.DRAMProbeCost(probes))
	dur := c.Now() - opStart
	st.mu.Unlock()
	c.AdvanceTo(st.tl.Reserve(opStart, dur))
	if !ok {
		se.store.ops.CountGet(false)
		return nil, false, nil
	}
	e, err := se.store.log.Read(c, int64(ref))
	if err != nil {
		se.store.ops.CountGet(false)
		return nil, false, err
	}
	if !bytes.Equal(e.Key, key) {
		se.store.ops.CountGet(false)
		return nil, false, nil // full hash collision; see core/session.go
	}
	val := make([]byte, len(e.Value))
	copy(val, e.Value)
	se.store.ops.CountGet(true)
	return val, true, nil
}

// Flush implements kvstore.Session.
func (se *Session) Flush() error {
	if se.store.isCrashed() {
		return ErrCrashed
	}
	return se.ap.Flush(se.clock)
}
