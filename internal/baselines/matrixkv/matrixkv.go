// Package matrixkv implements the MatrixKV baseline (Yao et al., ATC'20) as
// configured in the paper's Section 3.7: a RocksDB-style LSM whose L0 is a
// "matrix container" in persistent memory — one row per flushed MemTable,
// searched row by row with cross-row hints and no bloom filters — with
// leveled, filtered levels below (placed in the Pmem for this comparison).
// Each row carries RowTable metadata written next to the data (about 45% of
// the KV size at 64 B values), and compactions rewrite values, both of which
// inflate media writes (Figure 17(b)).
package matrixkv

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"

	"chameleondb/internal/blockcache"
	"chameleondb/internal/device"
	"chameleondb/internal/kvstore"
	"chameleondb/internal/obs"
	"chameleondb/internal/pmem"
	"chameleondb/internal/simclock"
	"chameleondb/internal/sstable"
	"chameleondb/internal/wlog"
	"chameleondb/internal/xhash"
)

// Config sizes the store.
type Config struct {
	// Stripes is the number of independent LSM instances.
	Stripes int
	// MemTableBytes triggers a flush into a matrix row.
	MemTableBytes int64
	// MaxRows is the matrix capacity before a column compaction into L1.
	MaxRows int
	// Ratio is the leveled size ratio below L0.
	Ratio int
	// MaxLevels bounds the level count (excluding the matrix L0).
	MaxLevels int
	// MetaBytesPerEntry models RowTable metadata per KV item.
	MetaBytesPerEntry int
	// ArenaBytes / WALBytes size the arena and the write-ahead log.
	ArenaBytes int64
	WALBytes   int64
	// CacheBytes sizes the in-DRAM data cache (the paper grants MatrixKV
	// 8 GB in Section 3.7; 0 disables it).
	CacheBytes int64
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig() Config {
	return Config{
		Stripes:           1,
		MemTableBytes:     1 << 20,
		MaxRows:           8,
		Ratio:             10,
		MaxLevels:         4,
		MetaBytesPerEntry: 36,
		ArenaBytes:        2 << 30,
		WALBytes:          256 << 20,
	}
}

type memEntry struct {
	key   []byte
	value []byte
	tomb  bool
	seq   int64
}

type stripe struct {
	mu sync.Mutex
	tl simclock.Timeline

	mem        map[uint64]*memEntry
	memBytes   int64
	memSeq     int64
	flushedLSN int64 // WAL watermark: rows cover everything below

	rows   []*sstable.Run // matrix L0, oldest first
	levels []*sstable.Run
	cache  *blockcache.Cache
}

// Store is a MatrixKV instance.
type Store struct {
	cfg   Config
	dev   *device.Device
	arena *pmem.Arena
	wal   *wlog.Log

	stripes []*stripe

	mu      sync.Mutex
	crashed bool

	// compactions is atomic: stripes compact independently under their own
	// locks, so a plain counter would race when Stripes > 1.
	compactions atomic.Int64

	ops obs.OpCounters
	reg *obs.Registry
}

var _ kvstore.Store = (*Store)(nil)

// ErrCrashed is returned between Crash and Recover.
var ErrCrashed = errors.New("matrixkv: store has crashed; call Recover first")

// Open creates a MatrixKV store on a fresh device.
func Open(cfg Config) (*Store, error) {
	return OpenOn(cfg, device.New(device.OptanePmem))
}

// OpenOn creates a MatrixKV store on an existing device.
func OpenOn(cfg Config, dev *device.Device) (*Store, error) {
	if cfg.Stripes <= 0 || cfg.Stripes&(cfg.Stripes-1) != 0 {
		return nil, errors.New("matrixkv: Stripes must be a power of two")
	}
	if cfg.MaxLevels < 1 || cfg.Ratio < 2 || cfg.MaxRows < 2 || cfg.MemTableBytes < 1024 {
		return nil, errors.New("matrixkv: invalid geometry")
	}
	arena := pmem.NewArena(dev, cfg.ArenaBytes)
	wal, err := wlog.New(arena, cfg.WALBytes)
	if err != nil {
		return nil, err
	}
	s := &Store{cfg: cfg, dev: dev, arena: arena, wal: wal}
	s.reg = obs.NewRegistry("matrixkv")
	s.ops.Register(s.reg)
	obs.RegisterDevice(s.reg, dev)
	obs.RegisterLog(s.reg, wal)
	s.reg.CounterFunc("compactions", s.compactions.Load)
	s.stripes = make([]*stripe, cfg.Stripes)
	for i := range s.stripes {
		s.stripes[i] = &stripe{
			mem:        make(map[uint64]*memEntry),
			levels:     make([]*sstable.Run, cfg.MaxLevels),
			flushedLSN: wal.Base(),
			cache:      blockcache.New(cfg.CacheBytes / int64(cfg.Stripes)),
		}
	}
	return s, nil
}

// Name implements kvstore.Store.
func (s *Store) Name() string { return "MatrixKV" }

// DeviceStats implements kvstore.Store.
func (s *Store) DeviceStats() device.Stats { return s.dev.Stats() }

// Device exposes the simulated device (the bench harness tunes its
// contention model per thread count).
func (s *Store) Device() *device.Device { return s.dev }

// Compactions reports how many compactions have run.
func (s *Store) Compactions() int64 { return s.compactions.Load() }

// Registry returns the store's metrics registry (generic op, device, WAL,
// and compaction counters).
func (s *Store) Registry() *obs.Registry { return s.reg }

// DRAMFootprint implements kvstore.Store: the DRAM MemTables plus filters.
func (s *Store) DRAMFootprint() int64 {
	var total int64
	for _, st := range s.stripes {
		st.mu.Lock()
		total += st.memBytes + int64(len(st.mem))*48 + st.cache.UsedBytes()
		for _, r := range st.levels {
			if r != nil {
				total += r.DRAMFootprint()
			}
		}
		st.mu.Unlock()
	}
	return total
}

func (s *Store) stripeFor(h uint64) *stripe {
	return s.stripes[(h>>8)&uint64(len(s.stripes)-1)]
}

// Crash implements kvstore.Store: DRAM MemTables are lost; the matrix, the
// levels, and the WAL survive.
func (s *Store) Crash() {
	s.mu.Lock()
	s.crashed = true
	s.mu.Unlock()
	s.arena.Crash()
	s.dev.ResetTimelines()
	for _, st := range s.stripes {
		st.mem = make(map[uint64]*memEntry)
		st.memBytes, st.memSeq = 0, 0
		st.tl.Reset()
		st.cache.Reset()
	}
}

// Recover implements kvstore.Store: replay the WAL tail into the MemTables.
func (s *Store) Recover(c *simclock.Clock) error {
	min := s.wal.Tail()
	for _, st := range s.stripes {
		if st.flushedLSN < min {
			min = st.flushedLSN
		}
	}
	err := s.wal.Scan(c, min, func(e wlog.Entry) bool {
		c.Advance(device.CostHash64)
		st := s.stripeFor(e.Hash)
		if e.LSN < st.flushedLSN {
			return true
		}
		st.insertMem(c, e.Hash, e.Key, e.Value, e.Tombstone())
		return true
	})
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.crashed = false
	s.mu.Unlock()
	return nil
}

// Close implements kvstore.Store.
func (s *Store) Close() error { return nil }

func (s *Store) isCrashed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed
}

func (st *stripe) insertMem(c *simclock.Clock, h uint64, key, value []byte, tomb bool) {
	c.Advance(device.CostDRAMRandAccess)
	if old, ok := st.mem[h]; ok {
		st.memBytes -= int64(len(old.key) + len(old.value))
	}
	st.memSeq++
	st.mem[h] = &memEntry{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
		tomb:  tomb,
		seq:   st.memSeq,
	}
	st.memBytes += int64(len(key) + len(value))
}

// flushLocked writes the MemTable as a new matrix row (data plus RowTable
// metadata, no filter) and compacts the matrix when it is full.
func (s *Store) flushLocked(c *simclock.Clock, st *stripe) error {
	if len(st.mem) == 0 {
		return nil
	}
	entries := make([]sstable.Entry, 0, len(st.mem))
	for h, e := range st.mem {
		entries = append(entries, sstable.Entry{Hash: h, Key: e.key, Value: e.value, Tombstone: e.tomb})
	}
	row, err := sstable.Build(c, s.arena, entries, sstable.BuildOptions{
		WithFilter:        false, // no filters in the matrix L0 (Section 3.7)
		MetaBytesPerEntry: s.cfg.MetaBytesPerEntry,
		SortCost:          true,
	})
	if err != nil {
		return err
	}
	// The stripe's row/level directory plays the role of a durable manifest
	// (it survives Crash): committing a row whose build was interrupted by
	// power failure would present partially-written data as durable.
	if s.dev.PowerFailed() {
		row.Release()
		return device.ErrPowerFailed
	}
	st.rows = append(st.rows, row)
	st.mem = make(map[uint64]*memEntry)
	st.memBytes, st.memSeq = 0, 0
	st.flushedLSN = s.wal.MinNextLSN()
	if len(st.rows) >= s.cfg.MaxRows {
		return s.compactLocked(c, st)
	}
	return nil
}

// compactLocked merges the matrix rows with L1 (fine-grained column
// compactions are modeled in aggregate), then cascades leveled compactions.
func (s *Store) compactLocked(c *simclock.Clock, st *stripe) error {
	s.compactions.Add(1)
	inputs := make([]*sstable.Run, 0, len(st.rows)+1)
	for i := len(st.rows) - 1; i >= 0; i-- {
		inputs = append(inputs, st.rows[i])
	}
	if st.levels[0] != nil {
		inputs = append(inputs, st.levels[0])
	}
	merged, err := sstable.Merge(c, s.arena, inputs, sstable.BuildOptions{WithFilter: true}, s.cfg.MaxLevels == 1)
	if err != nil {
		return err
	}
	if s.dev.PowerFailed() {
		merged.Release()
		return device.ErrPowerFailed
	}
	for _, r := range inputs {
		r.Release()
	}
	st.rows = nil
	st.levels[0] = merged

	levelCap := s.cfg.MemTableBytes * int64(s.cfg.MaxRows)
	for lvl := 0; lvl < s.cfg.MaxLevels-1; lvl++ {
		levelCap *= int64(s.cfg.Ratio)
		r := st.levels[lvl]
		if r == nil || r.SizeBytes() <= levelCap {
			break
		}
		inputs := []*sstable.Run{r}
		if st.levels[lvl+1] != nil {
			inputs = append(inputs, st.levels[lvl+1])
		}
		drop := lvl+1 == s.cfg.MaxLevels-1
		merged, err := sstable.Merge(c, s.arena, inputs, sstable.BuildOptions{WithFilter: true}, drop)
		if err != nil {
			return err
		}
		if s.dev.PowerFailed() {
			merged.Release()
			return device.ErrPowerFailed
		}
		for _, in := range inputs {
			in.Release()
		}
		st.levels[lvl] = nil
		st.levels[lvl+1] = merged
		s.compactions.Add(1)
	}
	return nil
}

// Session is a per-worker handle.
type Session struct {
	store *Store
	clock *simclock.Clock
	ap    *wlog.Appender
}

var _ kvstore.Session = (*Session)(nil)

// NewSession implements kvstore.Store.
func (s *Store) NewSession(c *simclock.Clock) kvstore.Session {
	return &Session{store: s, clock: c, ap: s.wal.NewAppender()}
}

// Clock implements kvstore.Session.
func (se *Session) Clock() *simclock.Clock { return se.clock }

func (se *Session) write(key, value []byte, flags uint16) error {
	if se.store.isCrashed() {
		return ErrCrashed
	}
	c := se.clock
	c.Advance(device.CostHash64)
	h := xhash.Sum64(key)
	st := se.store.stripeFor(h)
	st.mu.Lock()
	opStart := c.Now()
	_, err := se.ap.Append(c, h, key, value, flags)
	if err == nil {
		st.cache.Invalidate(h)
		st.insertMem(c, h, key, value, flags&wlog.FlagTombstone != 0)
		if st.memBytes >= se.store.cfg.MemTableBytes {
			err = se.store.flushLocked(c, st)
		}
	}
	dur := c.Now() - opStart
	st.mu.Unlock()
	c.AdvanceTo(st.tl.Reserve(opStart, dur))
	if err == nil {
		se.store.ops.CountWrite(flags&wlog.FlagTombstone != 0)
	}
	return err
}

// Put implements kvstore.Session: WAL append plus DRAM MemTable insert.
func (se *Session) Put(key, value []byte) error { return se.write(key, value, 0) }

// Delete implements kvstore.Session.
func (se *Session) Delete(key []byte) error { return se.write(key, nil, wlog.FlagTombstone) }

// Get implements kvstore.Session: DRAM MemTable, then the matrix rows one by
// one (hint + probe each, newest first), then the filtered levels.
func (se *Session) Get(key []byte) ([]byte, bool, error) {
	v, ok, err := se.get(key)
	if err == nil {
		se.store.ops.CountGet(ok)
	}
	return v, ok, err
}

func (se *Session) get(key []byte) ([]byte, bool, error) {
	if se.store.isCrashed() {
		return nil, false, ErrCrashed
	}
	c := se.clock
	c.Advance(device.CostHash64)
	h := xhash.Sum64(key)
	st := se.store.stripeFor(h)
	st.mu.Lock()
	defer st.mu.Unlock()
	opStart := c.Now()
	defer func() {
		c.AdvanceTo(st.tl.Reserve(opStart, c.Now()-opStart))
	}()

	if v, ok := st.cache.Get(c, h); ok {
		return append([]byte(nil), v...), true, nil
	}
	c.Advance(device.CostDRAMRandAccess)
	if e, ok := st.mem[h]; ok {
		if e.tomb || !bytes.Equal(e.key, key) {
			return nil, false, nil
		}
		return append([]byte(nil), e.value...), true, nil
	}
	for i := len(st.rows) - 1; i >= 0; i-- {
		k, v, tomb, ok := st.rows[i].GetHinted(c, h)
		if !ok {
			continue
		}
		if tomb || !bytes.Equal(k, key) {
			return nil, false, nil
		}
		st.cache.Put(h, v)
		return append([]byte(nil), v...), true, nil
	}
	for _, r := range st.levels {
		if r == nil {
			continue
		}
		k, v, tomb, ok := r.Get(c, h)
		if !ok {
			continue
		}
		if tomb || !bytes.Equal(k, key) {
			return nil, false, nil
		}
		st.cache.Put(h, v)
		return append([]byte(nil), v...), true, nil
	}
	return nil, false, nil
}

// Flush implements kvstore.Session: seals the WAL batch.
func (se *Session) Flush() error {
	if se.store.isCrashed() {
		return ErrCrashed
	}
	return se.ap.Flush(se.clock)
}
