package matrixkv

import (
	"testing"

	"chameleondb/internal/kvstore"
	"chameleondb/internal/storetest"
)

func sweepOpen() (kvstore.Store, error) {
	cfg := DefaultConfig()
	cfg.MemTableBytes = 2 << 10
	cfg.MaxRows = 4
	cfg.ArenaBytes = 16 << 20
	cfg.WALBytes = 1 << 20
	return Open(cfg)
}

// TestCrashSweep crashes MatrixKV at every persist event of a scripted
// workload (with a torn-write variant per point) and checks the recovered
// state against the durability oracle.
func TestCrashSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep")
	}
	storetest.RunCrashSweep(t, "MatrixKV", sweepOpen, storetest.SweepConfig{
		Seed:        4,
		Ops:         800,
		Keys:        48,
		MaxValueLen: 80,
		FlushEvery:  15,
		Tear:        true,
	})
}

func TestCrashSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized soak")
	}
	storetest.RunCrashSoak(t, "MatrixKV", sweepOpen, storetest.SoakConfig{
		Seed:        5,
		Iterations:  4,
		Ops:         200,
		Keys:        40,
		MaxValueLen: 64,
		FlushEvery:  20,
		ErrorProb:   0.01,
	})
}
