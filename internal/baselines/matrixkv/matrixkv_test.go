package matrixkv

import (
	"fmt"
	"testing"

	"chameleondb/internal/kvstore"
	"chameleondb/internal/simclock"
	"chameleondb/internal/storetest"
)

func factory(t *testing.T) kvstore.Store {
	t.Helper()
	cfg := DefaultConfig()
	cfg.MemTableBytes = 16 << 10
	cfg.ArenaBytes = 512 << 20
	cfg.WALBytes = 64 << 20
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConformance(t *testing.T) {
	storetest.Run(t, "MatrixKV", factory, storetest.Options{Keys: 4000, SupportsRecovery: true})
}

func TestMatrixRowsAccumulate(t *testing.T) {
	s := factory(t).(*Store)
	se := s.NewSession(simclock.New(0))
	for i := 0; i < 2000; i++ {
		se.Put([]byte(fmt.Sprintf("key-%08d", i)), []byte("0123456789abcdef"))
	}
	rows := 0
	for _, st := range s.stripes {
		rows += len(st.rows)
	}
	if rows == 0 && s.Compactions() == 0 {
		t.Fatal("no matrix rows and no compactions: flushes never happened")
	}
	for i := 0; i < 2000; i += 13 {
		got, ok, err := se.Get([]byte(fmt.Sprintf("key-%08d", i)))
		if err != nil || !ok || string(got) != "0123456789abcdef" {
			t.Fatalf("key %d lost: %q %v %v", i, got, ok, err)
		}
	}
}

func TestRowTableMetadataInflatesWrites(t *testing.T) {
	// Section 3.7: RowTable metadata adds ~45% write traffic at 64 B values.
	run := func(meta int) int64 {
		cfg := DefaultConfig()
		cfg.MemTableBytes = 16 << 10
		cfg.ArenaBytes = 512 << 20
		cfg.WALBytes = 64 << 20
		cfg.MetaBytesPerEntry = meta
		s, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		se := s.NewSession(simclock.New(0))
		for i := 0; i < 5000; i++ {
			se.Put([]byte(fmt.Sprintf("key-%08d", i)), make([]byte, 64))
		}
		return s.DeviceStats().MediaBytesWritten
	}
	withMeta, without := run(36), run(0)
	if withMeta <= without {
		t.Fatalf("metadata bytes not reflected in media writes: %d vs %d", withMeta, without)
	}
}

func TestWALReplayAfterCrash(t *testing.T) {
	s := factory(t).(*Store)
	se := s.NewSession(simclock.New(0))
	for i := 0; i < 3000; i++ {
		se.Put([]byte(fmt.Sprintf("key-%08d", i)), []byte("v"))
	}
	se.Flush()
	s.Crash()
	if err := s.Recover(simclock.New(0)); err != nil {
		t.Fatal(err)
	}
	se2 := s.NewSession(simclock.New(0))
	for i := 0; i < 3000; i += 97 {
		if _, ok, _ := se2.Get([]byte(fmt.Sprintf("key-%08d", i))); !ok {
			t.Fatalf("key %d lost after WAL replay", i)
		}
	}
}

func TestBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stripes = 6
	if _, err := Open(cfg); err == nil {
		t.Fatal("bad stripes accepted")
	}
	cfg = DefaultConfig()
	cfg.MaxRows = 1
	if _, err := Open(cfg); err == nil {
		t.Fatal("bad rows accepted")
	}
}
