// Package obs is the store-wide observability layer: a typed metrics
// registry (counters, gauges, latency histograms), a structured event trace
// (package trace.go), and HTTP surfacing (http.go) in expvar-style JSON and
// Prometheus text format.
//
// The registry does not own the hot-path counters: stores keep their cheap
// per-operation atomics (core.Stats, device.StatCounters, wlog's totals) and
// register read functions over them, so adding observability costs nothing on
// the operation path and virtual-time results stay bit-identical. What the
// registry adds is one coherent snapshot API over all of them — the
// per-structure get breakdowns of the paper's Figure 6, the latency tails of
// Figures 9-11, and the media write-amplification counters of Figures 1/17b
// all come from the same place.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"chameleondb/internal/histogram"
)

// Registry is a named collection of metrics. Registration happens at store
// construction; reads (Snapshot) may run concurrently with the store's
// operations — every registered read function must be safe to call from any
// goroutine.
type Registry struct {
	name string

	mu       sync.Mutex
	counters map[string]func() int64
	gauges   map[string]func() int64
	hists    map[string]*histogram.Histogram
}

// NewRegistry creates a registry; name prefixes every metric in Prometheus
// output (e.g. "chameleondb" -> chameleondb_puts).
func NewRegistry(name string) *Registry {
	return &Registry{
		name:     name,
		counters: make(map[string]func() int64),
		gauges:   make(map[string]func() int64),
		hists:    make(map[string]*histogram.Histogram),
	}
}

// Name returns the registry's name.
func (r *Registry) Name() string { return r.name }

// CounterFunc registers a monotonically non-decreasing metric read from fn.
// Atomic counter Load methods can be passed directly.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	r.mu.Lock()
	r.counters[name] = fn
	r.mu.Unlock()
}

// GaugeFunc registers a point-in-time metric read from fn.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	r.gauges[name] = fn
	r.mu.Unlock()
}

// Histogram registers h under name. The histogram stays owned by the caller,
// which records into it on its hot path.
func (r *Registry) Histogram(name string, h *histogram.Histogram) {
	r.mu.Lock()
	r.hists[name] = h
	r.mu.Unlock()
}

// HistSnapshot summarizes one latency histogram: the windowless percentiles
// the paper's tables report plus count/sum/mean for rate math.
type HistSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
	P9999 int64   `json:"p9999"`
	Max   int64   `json:"max"`
}

// SummarizeHistogram produces the snapshot summary of h.
func SummarizeHistogram(h *histogram.Histogram) HistSnapshot {
	t := h.Tails()
	return HistSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		P50:   t.P50,
		P99:   t.P99,
		P999:  t.P999,
		P9999: t.P9999,
		Max:   t.Max,
	}
}

// Snapshot is a point-in-time copy of every registered metric.
type Snapshot struct {
	Name       string                  `json:"name"`
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot reads every registered metric. Counters and gauges are read under
// the registry lock but not atomically with respect to each other — the same
// guarantee a /metrics scrape of any live system has.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Name:       r.name,
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, fn := range r.counters {
		s.Counters[name] = fn()
	}
	for name, fn := range r.gauges {
		s.Gauges[name] = fn()
	}
	for name, h := range r.hists {
		s.Histograms[name] = SummarizeHistogram(h)
	}
	return s
}

// WriteJSON writes the snapshot as indented expvar-style JSON. Map keys are
// emitted sorted, so the output is deterministic.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// promName sanitizes a metric name for Prometheus exposition.
func promName(prefix, name string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '_'
		}
	}, name)
	if prefix == "" {
		return clean
	}
	return strings.Map(func(r rune) rune {
		if r == '-' || r == ' ' {
			return '_'
		}
		return r
	}, strings.ToLower(prefix)) + "_" + clean
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format: counters and gauges as scalars, histograms as summaries with
// quantile labels plus _count and _sum series.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(s.Name, name)
		writef(&b, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(s.Name, name)
		writef(&b, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		pn := promName(s.Name, name)
		h := s.Histograms[name]
		writef(&b, "# TYPE %s summary\n", pn)
		for _, q := range []struct {
			label string
			v     int64
		}{
			{"0.5", h.P50}, {"0.99", h.P99}, {"0.999", h.P999}, {"0.9999", h.P9999},
		} {
			writef(&b, "%s{quantile=%q} %d\n", pn, q.label, q.v)
		}
		writef(&b, "%s_sum %d\n%s_count %d\n", pn, h.Sum, pn, h.Count)
		writef(&b, "# TYPE %s_max gauge\n%s_max %d\n", pn, pn, h.Max)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writef(b *strings.Builder, format string, args ...any) {
	// strings.Builder never errors; the helper keeps the call sites short.
	_, _ = fmt.Fprintf(b, format, args...)
}
