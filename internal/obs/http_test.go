package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"chameleondb/internal/histogram"
)

func testHandler(trace *Trace) (http.Handler, *atomic.Int64) {
	r := NewRegistry("chameleondb")
	var puts atomic.Int64
	r.CounterFunc("puts", puts.Load)
	var h histogram.Histogram
	h.Record(123)
	r.Histogram("put_latency_ns", &h)
	return Handler(r.Snapshot, trace), &puts
}

func TestHandlerStatsJSON(t *testing.T) {
	h, puts := testHandler(nil)
	srv := httptest.NewServer(h)
	defer srv.Close()

	puts.Store(9)
	resp, err := http.Get(srv.URL + "/stats.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content-type = %q", ct)
	}
	var s Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["puts"] != 9 {
		t.Errorf("served puts = %d, want 9 (handler must snapshot per request)", s.Counters["puts"])
	}
	if s.Histograms["put_latency_ns"].Count != 1 {
		t.Errorf("histogram missing from served snapshot: %+v", s.Histograms)
	}
}

func TestHandlerPrometheus(t *testing.T) {
	h, puts := testHandler(nil)
	srv := httptest.NewServer(h)
	defer srv.Close()

	puts.Store(5)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content-type = %q, want prometheus text format", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{"chameleondb_puts 5", "# TYPE chameleondb_put_latency_ns summary"} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestHandlerTrace(t *testing.T) {
	// No trace: 404.
	h, _ := testHandler(nil)
	srv := httptest.NewServer(h)
	resp, err := http.Get(srv.URL + "/trace.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	srv.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("trace status without trace = %d, want 404", resp.StatusCode)
	}

	// With a trace: the retained events as JSONL.
	tr := NewTrace(16)
	tr.Emit(10, EvFlush, 2, 64)
	h2, _ := testHandler(tr)
	srv2 := httptest.NewServer(h2)
	defer srv2.Close()
	resp2, err := http.Get(srv2.URL + "/trace.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var ev Event
	if err := json.NewDecoder(resp2.Body).Decode(&ev); err != nil {
		t.Fatal(err)
	}
	if ev.Type != EvFlush || ev.Shard != 2 || ev.N != 64 {
		t.Errorf("served event = %+v", ev)
	}
}

func TestHandlerPprofIndex(t *testing.T) {
	h, _ := testHandler(nil)
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status = %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "goroutine") {
		t.Error("pprof index does not list profiles")
	}
}
