package obs

import (
	"sync/atomic"

	"chameleondb/internal/device"
	"chameleondb/internal/wlog"
)

// RegisterDevice registers the simulated device's media counters — the
// ipmwatch-equivalent readings behind the paper's Figures 1 and 17b — so
// media write amplification is first-class in every store's registry.
func RegisterDevice(r *Registry, dev *device.Device) {
	r.CounterFunc("device_logical_bytes_written", func() int64 { return dev.Stats().LogicalBytesWritten })
	r.CounterFunc("device_media_bytes_written", func() int64 { return dev.Stats().MediaBytesWritten })
	r.CounterFunc("device_media_bytes_read", func() int64 { return dev.Stats().MediaBytesRead })
	r.CounterFunc("device_write_ops", func() int64 { return dev.Stats().WriteOps })
	r.CounterFunc("device_read_ops", func() int64 { return dev.Stats().ReadOps })
	r.GaugeFunc("device_concurrency", func() int64 { return int64(dev.Concurrency()) })
}

// RegisterLog registers the shared storage log's totals and watermarks.
func RegisterLog(r *Registry, log *wlog.Log) {
	r.CounterFunc("log_entries_appended", log.Entries)
	r.CounterFunc("log_bytes_appended", log.BytesAppended)
	r.GaugeFunc("log_live_bytes", log.LiveBytes)
	r.GaugeFunc("log_head_lsn", log.Base)
	r.GaugeFunc("log_tail_lsn", log.Tail)
	r.GaugeFunc("log_min_next_lsn", log.MinNextLSN)
}

// OpCounters is the generic operation counter block every store in the
// comparison set registers, so cross-store reports read the same names
// regardless of engine internals.
type OpCounters struct {
	Puts      atomic.Int64
	Deletes   atomic.Int64
	Gets      atomic.Int64
	GetHits   atomic.Int64
	GetMisses atomic.Int64
}

// Register wires the counters into r under the shared names.
func (o *OpCounters) Register(r *Registry) {
	r.CounterFunc("puts", o.Puts.Load)
	r.CounterFunc("deletes", o.Deletes.Load)
	r.CounterFunc("gets", o.Gets.Load)
	r.CounterFunc("get_hits", o.GetHits.Load)
	r.CounterFunc("get_misses", o.GetMisses.Load)
}

// CountWrite records one put or delete.
func (o *OpCounters) CountWrite(tombstone bool) {
	if tombstone {
		o.Deletes.Add(1)
	} else {
		o.Puts.Add(1)
	}
}

// CountGet records one get and its outcome.
func (o *OpCounters) CountGet(hit bool) {
	o.Gets.Add(1)
	if hit {
		o.GetHits.Add(1)
	} else {
		o.GetMisses.Add(1)
	}
}

// Provider is implemented by stores that expose a metrics registry; the
// benchmark harness and CLI discover it by type assertion so kvstore.Store
// stays minimal.
type Provider interface {
	Registry() *Registry
}
