package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// EventType names one kind of engine event.
type EventType string

// The engine event vocabulary: everything that changes the shape of the
// store's structures or its operating mode. Events are rare relative to
// operations (one per flush/compaction, not one per put), so tracing them
// costs nothing measurable.
const (
	EvFlush        EventType = "flush"         // MemTable persisted as an L0 table
	EvSpill        EventType = "spill"         // MemTable spilled into the ABI (WIM/GPM)
	EvDump         EventType = "dump"          // ABI dumped unmerged to Pmem (GPM)
	EvUpperCompact EventType = "compact-upper" // upper-level compaction
	EvLastCompact  EventType = "compact-last"  // last-level compaction
	EvGPMEnter     EventType = "gpm-enter"     // Get-Protect Mode engaged
	EvGPMExit      EventType = "gpm-exit"      // Get-Protect Mode released
	EvLogGC        EventType = "log-gc"        // log garbage collection completed
	EvCrash        EventType = "crash"         // simulated power failure
	EvRecoverReady EventType = "recover-ready" // recovery: store serving again
	EvRecoverFull  EventType = "recover-full"  // recovery: ABI rebuild complete
)

// Event is one structured trace record. VNanos is the virtual timestamp of
// the emitting worker's clock; Shard is the shard the event happened on, or
// -1 for store-wide events; N carries the event's magnitude (entries merged,
// bytes freed, nanoseconds elapsed — see the emit site).
type Event struct {
	Seq    int64     `json:"seq"`
	VNanos int64     `json:"vns"`
	Type   EventType `json:"type"`
	Shard  int       `json:"shard"`
	N      int64     `json:"n"`
}

// Trace is a bounded in-DRAM ring of engine events with an optional JSONL
// sink. All methods are safe on a nil *Trace (they no-op), so stores thread
// a possibly-nil trace through without guards.
type Trace struct {
	enabled atomic.Bool

	mu      sync.Mutex
	seq     int64
	ring    []Event
	next    int
	wrapped bool
	sink    io.Writer
	sinkErr error
}

// NewTrace creates an enabled trace ring holding the last capacity events.
func NewTrace(capacity int) *Trace {
	if capacity < 16 {
		capacity = 16
	}
	t := &Trace{ring: make([]Event, capacity)}
	t.enabled.Store(true)
	return t
}

// Enabled reports whether events are currently recorded.
func (t *Trace) Enabled() bool { return t != nil && t.enabled.Load() }

// SetEnabled toggles recording without discarding the ring.
func (t *Trace) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// SetSink installs an optional JSONL writer that receives every event as it
// is emitted. The first write error stops further sink writes (the ring keeps
// recording); Err reports it.
func (t *Trace) SetSink(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = w
	t.sinkErr = nil
	t.mu.Unlock()
}

// Err returns the first sink write error, if any.
func (t *Trace) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sinkErr
}

// Emit records one event.
func (t *Trace) Emit(vnanos int64, typ EventType, shard int, n int64) {
	if t == nil || !t.enabled.Load() {
		return
	}
	t.mu.Lock()
	t.seq++
	ev := Event{Seq: t.seq, VNanos: vnanos, Type: typ, Shard: shard, N: n}
	t.ring[t.next] = ev
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.wrapped = true
	}
	if t.sink != nil && t.sinkErr == nil {
		line, err := json.Marshal(ev)
		if err == nil {
			line = append(line, '\n')
			_, err = t.sink.Write(line)
		}
		if err != nil {
			t.sinkErr = err
		}
	}
	t.mu.Unlock()
}

// Events returns the retained events oldest-first.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrapped {
		out := make([]Event, t.next)
		copy(out, t.ring[:t.next])
		return out
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Len returns the number of retained events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.wrapped {
		return len(t.ring)
	}
	return t.next
}

// WriteJSONL writes the retained events oldest-first, one JSON object per
// line.
func (t *Trace) WriteJSONL(w io.Writer) error {
	for _, ev := range t.Events() {
		line, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	return nil
}
