package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
)

// Handler serves a registry (and optionally a trace) over HTTP:
//
//	/stats.json   expvar-style JSON snapshot
//	/metrics      Prometheus text exposition format
//	/trace.jsonl  retained event trace, one JSON object per line
//	/debug/pprof  the standard Go profiling endpoints
//
// snapshot is called per request, so handlers always serve live values.
func Handler(snapshot func() Snapshot, trace *Trace) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/stats.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := snapshot().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := snapshot().WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace.jsonl", func(w http.ResponseWriter, req *http.Request) {
		if trace == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
		if err := trace.WriteJSONL(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintf(w, "%s observability\n\n/stats.json\n/metrics\n/trace.jsonl\n/debug/pprof/\n", snapshot().Name)
	})
	return mux
}
