package obs

import (
	"strings"
	"sync/atomic"
	"testing"

	"chameleondb/internal/histogram"
)

func TestRegistrySnapshotReadsLiveValues(t *testing.T) {
	r := NewRegistry("test")
	var puts atomic.Int64
	var depth atomic.Int64
	r.CounterFunc("puts", puts.Load)
	r.GaugeFunc("depth", depth.Load)
	var h histogram.Histogram
	r.Histogram("lat", &h)

	s := r.Snapshot()
	if s.Name != "test" {
		t.Fatalf("snapshot name = %q, want test", s.Name)
	}
	if s.Counters["puts"] != 0 || s.Gauges["depth"] != 0 {
		t.Fatalf("fresh snapshot not zero: %+v", s)
	}

	puts.Add(7)
	depth.Store(-3)
	h.Record(100)
	h.Record(300)

	s = r.Snapshot()
	if s.Counters["puts"] != 7 {
		t.Errorf("puts = %d, want 7", s.Counters["puts"])
	}
	if s.Gauges["depth"] != -3 {
		t.Errorf("depth = %d, want -3", s.Gauges["depth"])
	}
	hs := s.Histograms["lat"]
	if hs.Count != 2 || hs.Sum != 400 {
		t.Errorf("lat count/sum = %d/%d, want 2/400", hs.Count, hs.Sum)
	}
	if hs.Max != 300 {
		t.Errorf("lat max = %d, want 300", hs.Max)
	}
}

// TestSnapshotConsistentSums checks the property the per-source breakdown
// relies on: a snapshot's parts sum to its whole even while writers advance
// the counters concurrently with the read.
func TestSnapshotConsistentSums(t *testing.T) {
	r := NewRegistry("test")
	var a, b atomic.Int64
	// total is derived from the same atomics, so parts can never exceed it
	// within one snapshot if each part is read before the derived total.
	r.CounterFunc("a", a.Load)
	r.CounterFunc("b", b.Load)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10000; i++ {
			a.Add(1)
			b.Add(1)
		}
	}()
	for i := 0; i < 100; i++ {
		s := r.Snapshot()
		if s.Counters["a"] < 0 || s.Counters["b"] < 0 {
			t.Fatalf("counter went negative: %+v", s.Counters)
		}
	}
	<-done
	s := r.Snapshot()
	if s.Counters["a"] != 10000 || s.Counters["b"] != 10000 {
		t.Fatalf("final counters = %+v, want 10000 each", s.Counters)
	}
}

// TestHistogramMergeSummaries checks that merged histograms summarize as the
// union of their inputs — the property the bench harness relies on when it
// aggregates per-phase histograms into one report.
func TestHistogramMergeSummaries(t *testing.T) {
	var h1, h2, merged histogram.Histogram
	for i := int64(1); i <= 1000; i++ {
		h1.Record(i)
	}
	for i := int64(1001); i <= 2000; i++ {
		h2.Record(i)
	}
	merged.Merge(&h1)
	merged.Merge(&h2)

	s1, s2, sm := SummarizeHistogram(&h1), SummarizeHistogram(&h2), SummarizeHistogram(&merged)
	if sm.Count != s1.Count+s2.Count {
		t.Errorf("merged count = %d, want %d", sm.Count, s1.Count+s2.Count)
	}
	if sm.Sum != s1.Sum+s2.Sum {
		t.Errorf("merged sum = %d, want %d", sm.Sum, s1.Sum+s2.Sum)
	}
	if sm.Max != s2.Max {
		t.Errorf("merged max = %d, want %d", sm.Max, s2.Max)
	}
	// The merged median must sit between the two inputs' medians.
	if sm.P50 < s1.P50 || sm.P50 > s2.P50 {
		t.Errorf("merged p50 = %d, want within [%d, %d]", sm.P50, s1.P50, s2.P50)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry("chameleondb")
	var n atomic.Int64
	n.Store(42)
	r.CounterFunc("puts", n.Load)
	r.GaugeFunc("gpm-active", func() int64 { return 1 })
	var h histogram.Histogram
	h.Record(500)
	r.Histogram("put_latency_ns", &h)

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE chameleondb_puts counter",
		"chameleondb_puts 42",
		"# TYPE chameleondb_gpm_active gauge", // '-' sanitized to '_'
		"chameleondb_gpm_active 1",
		"# TYPE chameleondb_put_latency_ns summary",
		`chameleondb_put_latency_ns{quantile="0.5"}`,
		"chameleondb_put_latency_ns_count 1",
		"chameleondb_put_latency_ns_sum 500",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestOpCounters(t *testing.T) {
	var ops OpCounters
	r := NewRegistry("x")
	ops.Register(r)
	ops.CountWrite(false)
	ops.CountWrite(false)
	ops.CountWrite(true)
	ops.CountGet(true)
	ops.CountGet(false)

	s := r.Snapshot()
	want := map[string]int64{"puts": 2, "deletes": 1, "gets": 2, "get_hits": 1, "get_misses": 1}
	for name, v := range want {
		if s.Counters[name] != v {
			t.Errorf("%s = %d, want %d", name, s.Counters[name], v)
		}
	}
}
