package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Emit(1, EvFlush, 0, 1) // must not panic
	if tr.Enabled() {
		t.Error("nil trace reports enabled")
	}
	if tr.Len() != 0 || tr.Events() != nil {
		t.Error("nil trace retains events")
	}
	if err := tr.Err(); err != nil {
		t.Errorf("nil trace err = %v", err)
	}
	tr.SetEnabled(true)
	tr.SetSink(&strings.Builder{})
}

func TestTraceRingWrap(t *testing.T) {
	tr := NewTrace(16)
	for i := 0; i < 40; i++ {
		tr.Emit(int64(i), EvFlush, i%4, int64(i))
	}
	if tr.Len() != 16 {
		t.Fatalf("len = %d, want 16", tr.Len())
	}
	evs := tr.Events()
	if len(evs) != 16 {
		t.Fatalf("events len = %d, want 16", len(evs))
	}
	// Oldest-first, the last 16 of the 40 emitted, consecutive seq.
	for i, ev := range evs {
		wantSeq := int64(25 + i) // seq is 1-based: events 25..40 survive
		if ev.Seq != wantSeq {
			t.Fatalf("events[%d].Seq = %d, want %d", i, ev.Seq, wantSeq)
		}
	}
}

func TestTraceDisabledEmitsNothing(t *testing.T) {
	tr := NewTrace(16)
	tr.SetEnabled(false)
	tr.Emit(1, EvFlush, 0, 1)
	if tr.Len() != 0 {
		t.Fatalf("disabled trace recorded %d events", tr.Len())
	}
	tr.SetEnabled(true)
	tr.Emit(2, EvSpill, 1, 2)
	if tr.Len() != 1 {
		t.Fatalf("re-enabled trace has %d events, want 1", tr.Len())
	}
}

func TestTraceSinkJSONL(t *testing.T) {
	tr := NewTrace(16)
	var sink strings.Builder
	tr.SetSink(&sink)
	tr.Emit(100, EvUpperCompact, 3, 256)
	tr.Emit(200, EvLastCompact, 3, 1024)

	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("sink lines = %d, want 2", len(lines))
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatalf("line 2 not JSON: %v", err)
	}
	if ev.Type != EvLastCompact || ev.Shard != 3 || ev.N != 1024 || ev.VNanos != 200 {
		t.Fatalf("decoded event = %+v", ev)
	}

	// WriteJSONL must round-trip the same events from the ring.
	var out strings.Builder
	if err := tr.WriteJSONL(&out); err != nil {
		t.Fatal(err)
	}
	if out.String() != sink.String() {
		t.Errorf("WriteJSONL differs from sink:\n%q\n%q", out.String(), sink.String())
	}
}

type failingWriter struct{ n int }

func (f *failingWriter) Write(p []byte) (int, error) {
	f.n++
	return 0, errors.New("disk full")
}

func TestTraceSinkErrorStopsSinkNotRing(t *testing.T) {
	tr := NewTrace(16)
	fw := &failingWriter{}
	tr.SetSink(fw)
	tr.Emit(1, EvFlush, 0, 1)
	tr.Emit(2, EvFlush, 0, 2)
	if tr.Err() == nil {
		t.Fatal("sink error not reported")
	}
	if fw.n != 1 {
		t.Errorf("sink written %d times after error, want 1", fw.n)
	}
	if tr.Len() != 2 {
		t.Errorf("ring stopped recording after sink error: len = %d, want 2", tr.Len())
	}
}
