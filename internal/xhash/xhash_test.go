package xhash

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	if Sum64([]byte("hello")) != Sum64([]byte("hello")) {
		t.Fatal("hash not deterministic")
	}
	if Seeded(1, []byte("hello")) == Seeded(2, []byte("hello")) {
		t.Fatal("seeds should change the hash")
	}
}

func TestEmptyAndShortKeys(t *testing.T) {
	seen := map[uint64]string{}
	for _, k := range []string{"", "a", "b", "ab", "ba", "abc", "abcdefgh", "abcdefghi"} {
		h := Sum64([]byte(k))
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision between %q and %q", prev, k)
		}
		seen[h] = k
	}
}

func TestLengthExtensionDistinct(t *testing.T) {
	// A key and the same key zero-padded must hash differently.
	a := Sum64([]byte{1, 2, 3})
	b := Sum64([]byte{1, 2, 3, 0})
	if a == b {
		t.Fatal("zero padding should change the hash")
	}
}

func TestNoCollisionsSequentialKeys(t *testing.T) {
	// The stores hash 8-byte little-endian counters; make sure the mixer
	// spreads them (no collisions, decent bucket balance).
	const n = 200000
	seen := make(map[uint64]struct{}, n)
	var buckets [256]int
	var k [8]byte
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(k[:], uint64(i))
		h := Sum64(k[:])
		if _, dup := seen[h]; dup {
			t.Fatalf("collision at i=%d", i)
		}
		seen[h] = struct{}{}
		buckets[h>>56]++
	}
	want := n / 256
	for b, c := range buckets {
		if c < want/2 || c > want*2 {
			t.Fatalf("bucket %d badly unbalanced: %d (expected ~%d)", b, c, want)
		}
	}
}

func TestQuickNoTrivialCollisions(t *testing.T) {
	f := func(a, b []byte) bool {
		if string(a) == string(b) {
			return true
		}
		return Sum64(a) != Sum64(b) // collisions astronomically unlikely here
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUint64Mixes(t *testing.T) {
	if Uint64(1) == Uint64(2) {
		t.Fatal("Uint64 mixer collision on adjacent inputs")
	}
	if Uint64(0) == 0 {
		t.Fatal("Uint64(0) should not be 0")
	}
}
