// Package xhash provides the 64-bit key hash used by every index structure
// in the repository. It is a wyhash-style multiply-xor mixer: fast, well
// distributed, and dependency-free (the stores cannot use hash/maphash
// because they need a stable, seedable value that survives process restart —
// the persistent tables store raw hash values).
package xhash

import "encoding/binary"

const (
	p0 = 0xa0761d6478bd642f
	p1 = 0xe7037ed1a0b428db
	p2 = 0x8ebc6af09c88c6e3
	p3 = 0x589965cc75374cc3
)

func mix(a, b uint64) uint64 {
	// 64x64 -> 128 multiply folded to 64 bits.
	hiA, loA := a>>32, a&0xffffffff
	hiB, loB := b>>32, b&0xffffffff
	t := loA * loB
	lo := t & 0xffffffff
	t = hiA*loB + t>>32
	mid1 := t & 0xffffffff
	hi := t >> 32
	t = loA*hiB + mid1
	hi += t >> 32
	hi += hiA * hiB
	lo |= (t & 0xffffffff) << 32
	return hi ^ lo
}

// Sum64 hashes key with the default seed.
func Sum64(key []byte) uint64 { return Seeded(0, key) }

// Seeded hashes key with the given seed. The same (seed, key) pair always
// produces the same value, across processes and architectures.
func Seeded(seed uint64, key []byte) uint64 {
	h := seed ^ p0
	n := len(key)
	h ^= uint64(n) * p3
	for len(key) >= 8 {
		h = mix(h^binary.LittleEndian.Uint64(key), p1)
		key = key[8:]
	}
	if len(key) > 0 {
		var tail [8]byte
		copy(tail[:], key)
		h = mix(h^binary.LittleEndian.Uint64(tail[:])^uint64(len(key)), p2)
	}
	return mix(h, h^p2)
}

// Uint64 mixes a raw integer; used for derived probe sequences.
func Uint64(x uint64) uint64 { return mix(x^p0, p1) }
