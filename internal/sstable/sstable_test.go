package sstable

import (
	"bytes"
	"fmt"
	"testing"

	"chameleondb/internal/device"
	"chameleondb/internal/pmem"
	"chameleondb/internal/simclock"
	"chameleondb/internal/xhash"
)

func newArena(t *testing.T) *pmem.Arena {
	t.Helper()
	return pmem.NewArena(device.New(device.OptanePmem), 256<<20)
}

func entriesN(n, valSize int) []Entry {
	out := make([]Entry, n)
	for i := range out {
		key := []byte(fmt.Sprintf("key-%08d", i))
		out[i] = Entry{
			Hash:  xhash.Sum64(key),
			Key:   key,
			Value: bytes.Repeat([]byte{byte(i)}, valSize),
		}
	}
	return out
}

func TestBuildAndGet(t *testing.T) {
	a := newArena(t)
	c := simclock.New(0)
	es := entriesN(500, 32)
	r, err := Build(c, a, es, BuildOptions{WithFilter: true, SortCost: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 500 {
		t.Fatalf("Len = %d", r.Len())
	}
	for _, e := range es {
		k, v, tomb, ok := r.Get(c, e.Hash)
		if !ok || tomb || !bytes.Equal(k, e.Key) || !bytes.Equal(v, e.Value) {
			t.Fatalf("get %q failed: %q %q %v %v", e.Key, k, v, tomb, ok)
		}
	}
	if _, _, _, ok := r.Get(c, xhash.Sum64([]byte("nope"))); ok {
		t.Fatal("found absent key")
	}
}

func TestBuildDedupNewestFirst(t *testing.T) {
	a := newArena(t)
	c := simclock.New(0)
	key := []byte("dup")
	h := xhash.Sum64(key)
	es := []Entry{
		{Hash: h, Key: key, Value: []byte("new")},
		{Hash: h, Key: key, Value: []byte("old")},
	}
	r, err := Build(c, a, es, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	_, v, _, ok := r.Get(c, h)
	if !ok || string(v) != "new" {
		t.Fatalf("dedup kept wrong version: %q", v)
	}
}

func TestTombstones(t *testing.T) {
	a := newArena(t)
	c := simclock.New(0)
	key := []byte("gone")
	h := xhash.Sum64(key)
	r, err := Build(c, a, []Entry{{Hash: h, Key: key, Tombstone: true}}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, _, tomb, ok := r.Get(c, h)
	if !ok || !tomb {
		t.Fatal("tombstone not preserved")
	}
}

func TestIterateSorted(t *testing.T) {
	a := newArena(t)
	c := simclock.New(0)
	r, err := Build(c, a, entriesN(300, 8), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var prev uint64
	n := 0
	r.Iterate(func(e Entry) bool {
		if n > 0 && e.Hash <= prev {
			t.Fatal("iteration not sorted by hash")
		}
		prev = e.Hash
		n++
		return true
	})
	if n != 300 {
		t.Fatalf("iterated %d", n)
	}
}

func TestMergeNewestWinsAndDropsTombstones(t *testing.T) {
	a := newArena(t)
	c := simclock.New(0)
	key := []byte("k1")
	h := xhash.Sum64(key)
	old, err := Build(c, a, []Entry{
		{Hash: h, Key: key, Value: []byte("v-old")},
		{Hash: xhash.Sum64([]byte("k2")), Key: []byte("k2"), Value: []byte("keep")},
	}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	newer, err := Build(c, a, []Entry{
		{Hash: h, Key: key, Value: []byte("v-new")},
		{Hash: xhash.Sum64([]byte("k3")), Key: []byte("k3"), Tombstone: true},
	}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Merge(c, a, []*Run{newer, old}, BuildOptions{WithFilter: true}, true)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != 2 {
		t.Fatalf("merged Len = %d, want 2 (tombstone dropped)", merged.Len())
	}
	_, v, _, ok := merged.Get(c, h)
	if !ok || string(v) != "v-new" {
		t.Fatalf("merge kept wrong version: %q", v)
	}
	if _, _, _, ok := merged.Get(c, xhash.Sum64([]byte("k3"))); ok {
		t.Fatal("dropped tombstone still present")
	}
}

func TestMergeKeepsTombstonesWhenAsked(t *testing.T) {
	a := newArena(t)
	c := simclock.New(0)
	key := []byte("k1")
	h := xhash.Sum64(key)
	r, err := Build(c, a, []Entry{{Hash: h, Key: key, Tombstone: true}}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Merge(c, a, []*Run{r}, BuildOptions{}, false)
	if err != nil {
		t.Fatal(err)
	}
	_, _, tomb, ok := merged.Get(c, h)
	if !ok || !tomb {
		t.Fatal("tombstone lost in non-dropping merge")
	}
}

func TestValuesRewrittenOnMerge(t *testing.T) {
	// The defining WA property: merging runs rewrites values. Media writes
	// during a merge must be at least the merged data bytes.
	a := newArena(t)
	c := simclock.New(0)
	r1, _ := Build(c, a, entriesN(1000, 256), BuildOptions{})
	es := entriesN(2000, 256)[1000:]
	r2, _ := Build(c, a, es, BuildOptions{})
	before := a.Device().Stats().MediaBytesWritten
	merged, err := Merge(c, a, []*Run{r2, r1}, BuildOptions{}, true)
	if err != nil {
		t.Fatal(err)
	}
	delta := a.Device().Stats().MediaBytesWritten - before
	if delta < merged.DataBytes() {
		t.Fatalf("merge wrote %d media bytes for %d data bytes: values not rewritten",
			delta, merged.DataBytes())
	}
}

func TestMetadataOverheadCharged(t *testing.T) {
	a := newArena(t)
	c := simclock.New(0)
	es := entriesN(1000, 64)
	plain, _ := Build(c, a, es, BuildOptions{})
	meta, _ := Build(c, a, es, BuildOptions{MetaBytesPerEntry: 36})
	if meta.SizeBytes() <= plain.SizeBytes() {
		t.Fatal("metadata bytes not added to the persisted size")
	}
	if meta.SizeBytes()-plain.SizeBytes() != 36*1000 {
		t.Fatalf("metadata delta = %d, want 36000", meta.SizeBytes()-plain.SizeBytes())
	}
}

func TestGetHintedCheaperThanGet(t *testing.T) {
	a := newArena(t)
	c := simclock.New(0)
	r, _ := Build(c, a, entriesN(100000, 8), BuildOptions{})
	h := xhash.Sum64([]byte(fmt.Sprintf("key-%08d", 55555)))
	// Both probes continue on one clock so neither queues behind the other's
	// device-pipe reservations.
	t0 := c.Now()
	r.Get(c, h)
	tGet := c.Now() - t0
	t1 := c.Now()
	r.GetHinted(c, h)
	tHinted := c.Now() - t1
	if tHinted >= tGet {
		t.Fatalf("hinted get (%d ns) should be cheaper than binary search (%d ns)", tHinted, tGet)
	}
}

func TestFilterSkipsAbsentProbes(t *testing.T) {
	a := newArena(t)
	r, _ := Build(simclock.New(0), a, entriesN(10000, 8), BuildOptions{WithFilter: true})
	reads0 := a.Device().Stats().ReadOps
	c := simclock.New(0)
	miss := 0
	for i := 0; i < 1000; i++ {
		if _, _, _, ok := r.Get(c, xhash.Sum64([]byte(fmt.Sprintf("absent-%d", i)))); !ok {
			miss++
		}
	}
	if miss != 1000 {
		t.Fatalf("%d false hits", 1000-miss)
	}
	reads := a.Device().Stats().ReadOps - reads0
	// ~1% false positive rate: almost all misses were filtered without reads.
	if reads > 300 {
		t.Fatalf("filter not consulted: %d reads for 1000 absent keys", reads)
	}
}

func TestRelease(t *testing.T) {
	a := newArena(t)
	c := simclock.New(0)
	r, _ := Build(c, a, entriesN(100, 8), BuildOptions{})
	inUse := a.InUse()
	r.Release()
	r2, _ := Build(c, a, entriesN(100, 8), BuildOptions{})
	if a.InUse() != inUse {
		t.Fatal("released run space not reused")
	}
	_ = r2
	if r.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestEmptyBuild(t *testing.T) {
	a := newArena(t)
	c := simclock.New(0)
	r, err := Build(c, a, nil, BuildOptions{WithFilter: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatal("empty run has entries")
	}
	if _, _, _, ok := r.Get(c, 42); ok {
		t.Fatal("found key in empty run")
	}
	if _, _, _, ok := r.GetHinted(c, 42); ok {
		t.Fatal("hinted get found key in empty run")
	}
}
