// Package sstable implements the sorted-run tables used by the NoveLSM and
// MatrixKV baselines (paper Section 3.7). Unlike ChameleonDB and the other
// hash stores, these designs keep whole KV items inside the tree — no
// key/value separation — so every compaction rewrites the values too. That
// is the dominant term in Figure 17(b)'s media-write comparison, and the
// comparison-based search (bloom check, binary search, block read) is the
// CPU/read-amplification story of Figure 17(d-f).
//
// Runs are ordered by 64-bit key hash (both baselines are evaluated with
// hash-placed keys in the paper's setup, which also excludes range scans).
package sstable

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"

	"chameleondb/internal/bloom"
	"chameleondb/internal/device"
	"chameleondb/internal/pmem"
	"chameleondb/internal/simclock"
)

// Entry is one KV item in a run.
type Entry struct {
	Hash      uint64
	Key       []byte
	Value     []byte
	Tombstone bool
}

const payloadHeader = 8 // keyLen(2) + flags(2) + valLen(4)

// Run is one immutable sorted run persisted in the arena: payloads followed
// by a slot index. The Go-side hash/ref slices mirror the persisted index
// (which lives in Pmem; searches are charged as Pmem reads).
type Run struct {
	arena *pmem.Arena
	off   int64
	size  int64

	hashes []uint64
	refs   []int64 // absolute payload offsets; negative = tombstone

	filter    *bloom.Filter
	dataBytes int64 // user payload bytes (excl. index and metadata)
}

// BuildOptions tune run construction.
type BuildOptions struct {
	// WithFilter builds an in-DRAM bloom filter for the run.
	WithFilter bool
	// MetaBytesPerEntry models per-entry table metadata written alongside
	// the data (MatrixKV's RowTable metadata, ~45% of KV size at 64 B
	// values — Section 3.7).
	MetaBytesPerEntry int
	// SortCost charges comparison-sort CPU per entry (memtable flushes of
	// already-sorted skiplists pass false).
	SortCost bool
}

// Build creates and persists a run from entries (any order; duplicates by
// hash keep the first occurrence, so pass newest first).
func Build(c *simclock.Clock, arena *pmem.Arena, entries []Entry, opt BuildOptions) (*Run, error) {
	// Dedup newest-first, then sort by hash.
	seen := make(map[uint64]int, len(entries))
	dedup := entries[:0:0]
	for _, e := range entries {
		if _, dup := seen[e.Hash]; dup {
			continue
		}
		seen[e.Hash] = 1
		dedup = append(dedup, e)
	}
	sort.Slice(dedup, func(i, j int) bool { return dedup[i].Hash < dedup[j].Hash })
	if opt.SortCost {
		c.Advance(int64(len(dedup)) * device.CostSortPerKey)
	}

	var payloadBytes int64
	for _, e := range dedup {
		payloadBytes += payloadSize(len(e.Key), len(e.Value))
	}
	indexBytes := int64(len(dedup)) * 16
	metaBytes := int64(len(dedup)) * int64(opt.MetaBytesPerEntry)
	total := payloadBytes + indexBytes + metaBytes
	if total == 0 {
		total = 8
	}
	off, err := arena.Alloc(total)
	if err != nil {
		return nil, err
	}
	r := &Run{arena: arena, off: off, size: total,
		hashes: make([]uint64, len(dedup)), refs: make([]int64, len(dedup))}
	pos := off
	for i, e := range dedup {
		sz := payloadSize(len(e.Key), len(e.Value))
		buf := arena.Bytes(pos, sz)
		binary.LittleEndian.PutUint16(buf[0:2], uint16(len(e.Key)))
		flags := uint16(0)
		if e.Tombstone {
			flags = 1
		}
		binary.LittleEndian.PutUint16(buf[2:4], flags)
		binary.LittleEndian.PutUint32(buf[4:8], uint32(len(e.Value)))
		copy(buf[payloadHeader:], e.Key)
		copy(buf[payloadHeader+len(e.Key):], e.Value)
		r.hashes[i] = e.Hash
		ref := pos
		if e.Tombstone {
			ref = -pos
		}
		r.refs[i] = ref
		r.dataBytes += sz
		pos += sz
		c.Advance(int64(float64(sz) * device.CostDRAMSeqPerByte))
	}
	// One large sequential persist: payloads, index, and metadata together.
	arena.Persist(c, off, total)
	if opt.WithFilter {
		r.filter = bloom.New(len(dedup))
		for _, h := range r.hashes {
			r.filter.Add(c, h)
		}
	}
	return r, nil
}

func payloadSize(keyLen, valLen int) int64 {
	return (int64(payloadHeader+keyLen+valLen) + 7) &^ 7
}

// Len returns the number of entries.
func (r *Run) Len() int { return len(r.hashes) }

// SizeBytes returns the persisted size (payloads + index + metadata).
func (r *Run) SizeBytes() int64 { return r.size }

// DataBytes returns the user payload bytes.
func (r *Run) DataBytes() int64 { return r.dataBytes }

// DRAMFootprint returns the volatile bytes (the bloom filter).
func (r *Run) DRAMFootprint() int64 {
	if r.filter == nil {
		return 0
	}
	return r.filter.SizeBytes()
}

// HasFilter reports whether the run carries a bloom filter.
func (r *Run) HasFilter() bool { return r.filter != nil }

// Get searches the run: optional filter check, binary search over the
// persisted index (charged as Pmem reads outside the cached tail of the
// search), then the payload read.
func (r *Run) Get(c *simclock.Clock, h uint64) (key, value []byte, tombstone, ok bool) {
	if r.filter != nil && !r.filter.Contains(c, h) {
		return nil, nil, false, false
	}
	if len(r.hashes) == 0 {
		return nil, nil, false, false
	}
	steps := bits.Len(uint(len(r.hashes)))
	// The first search steps are scattered random reads of index slots; the
	// last few land within one cached 256 B line.
	pmemSteps := steps - 4
	if pmemSteps < 1 {
		pmemSteps = 1
	}
	for i := 0; i < pmemSteps; i++ {
		r.arena.Device().ReadRandom(c, r.off, 16)
	}
	c.Advance(int64(steps) * device.CostKeyCompare)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i >= len(r.hashes) || r.hashes[i] != h {
		return nil, nil, false, false
	}
	return r.readPayload(c, r.refs[i])
}

// GetHinted searches the run using an in-DRAM positional hint instead of a
// binary search — MatrixKV's cross-row hints (Section 3.7): one DRAM hint
// lookup plus a single Pmem probe of the hinted index slot. The rows still
// have to be checked one by one; the hint only removes the per-row binary
// search.
func (r *Run) GetHinted(c *simclock.Clock, h uint64) (key, value []byte, tombstone, ok bool) {
	c.Advance(device.CostDRAMRandAccess) // cross-row hint lookup
	if len(r.hashes) == 0 {
		return nil, nil, false, false
	}
	r.arena.Device().ReadRandom(c, r.off, 16) // probe the hinted slot
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i >= len(r.hashes) || r.hashes[i] != h {
		return nil, nil, false, false
	}
	return r.readPayload(c, r.refs[i])
}

func (r *Run) readPayload(c *simclock.Clock, ref int64) (key, value []byte, tombstone, ok bool) {
	pos := ref
	if pos < 0 {
		pos = -pos
	}
	hdr := r.arena.Bytes(pos, payloadHeader)
	keyLen := int(binary.LittleEndian.Uint16(hdr[0:2]))
	valLen := int(binary.LittleEndian.Uint32(hdr[4:8]))
	sz := payloadSize(keyLen, valLen)
	buf := r.arena.ReadRandom(c, pos, sz)
	return buf[payloadHeader : payloadHeader+keyLen],
		buf[payloadHeader+keyLen : payloadHeader+keyLen+valLen],
		ref < 0, true
}

// Iterate yields entries in hash order without timing charges; merges charge
// ChargeScan instead.
func (r *Run) Iterate(fn func(Entry) bool) {
	for i, h := range r.hashes {
		pos := r.refs[i]
		tomb := pos < 0
		if tomb {
			pos = -pos
		}
		hdr := r.arena.Bytes(pos, payloadHeader)
		keyLen := int(binary.LittleEndian.Uint16(hdr[0:2]))
		valLen := int(binary.LittleEndian.Uint32(hdr[4:8]))
		buf := r.arena.Bytes(pos, payloadSize(keyLen, valLen))
		e := Entry{
			Hash:      h,
			Key:       buf[payloadHeader : payloadHeader+keyLen],
			Value:     buf[payloadHeader+keyLen : payloadHeader+keyLen+valLen],
			Tombstone: tomb,
		}
		if !fn(e) {
			return
		}
	}
}

// ChargeScan books the sequential read of the whole run (compaction input).
func (r *Run) ChargeScan(c *simclock.Clock) {
	r.arena.Device().ReadSeq(c, r.off, r.size)
}

// Release frees the run's arena region.
func (r *Run) Release() {
	r.arena.Free(r.off, r.size)
}

// Merge combines runs (newest first) into one new run, dropping tombstones
// when dropTombstones is set (bottom-level merges). Inputs are charged as
// sequential scans; the merge itself charges k-way comparison CPU.
func Merge(c *simclock.Clock, arena *pmem.Arena, newestFirst []*Run, opt BuildOptions, dropTombstones bool) (*Run, error) {
	var entries []Entry
	total := 0
	for _, r := range newestFirst {
		r.ChargeScan(c)
		total += r.Len()
	}
	seen := make(map[uint64]struct{}, total)
	for _, r := range newestFirst {
		r.Iterate(func(e Entry) bool {
			if _, dup := seen[e.Hash]; dup {
				return true
			}
			seen[e.Hash] = struct{}{}
			if dropTombstones && e.Tombstone {
				return true
			}
			entries = append(entries, e)
			return true
		})
	}
	// K-way merge comparisons.
	k := len(newestFirst)
	if k > 1 {
		c.Advance(int64(total) * int64(bits.Len(uint(k))) * device.CostKeyCompare)
	}
	opt.SortCost = false // inputs are sorted; the k-way cost was charged above
	return Build(c, arena, entries, opt)
}

// String implements fmt.Stringer for debugging.
func (r *Run) String() string {
	return fmt.Sprintf("run{n=%d, bytes=%d}", r.Len(), r.size)
}
