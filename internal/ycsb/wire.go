package ycsb

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"chameleondb/internal/histogram"
	"chameleondb/internal/resp"
)

// WireConfig drives a YCSB workload over a live RESP server: real
// connections, real framing, real group-commit waits. Unlike the in-process
// harness in internal/bench, latencies here are client-observed wall clock.
type WireConfig struct {
	Addr     string
	Workload Workload
	// Keys is the preloaded keyspace size the existing-key choosers draw
	// from (load it first — RunWire with Workload Load does exactly that).
	Keys int64
	// Ops is the total measured operation count across all workers.
	Ops       int64
	Workers   int
	Depth     int // pipeline window (1 = strict request/response)
	ValueSize int
	Seed      int64
	Timeout   time.Duration // per-connection deadline (default 10 min)

	// Burst phases: when BurstOps > 0, each worker alternates SteadyOps of
	// full-keyspace traffic with BurstOps drawn from only the hottest
	// BurstFrac of the rank space — a flash crowd on the steady-state hot
	// set (see Generator.SetHotFrac).
	SteadyOps int
	BurstOps  int
	BurstFrac float64
}

// ClassLatency summarizes one operation class's client-observed latency.
// Under pipelining a sample spans send to reply, so it includes time queued
// behind the rest of the window — what a caller actually waits.
type ClassLatency struct {
	Ops    int64
	P50us  float64
	P99us  float64
	P999us float64
}

// WireResult is one RunWire measurement.
type WireResult struct {
	Workload Workload
	Ops      int64
	Wall     time.Duration
	Reads    ClassLatency // GET legs (including the read half of RMW)
	Writes   ClassLatency // SET legs (updates, inserts, the write half of RMW)
}

// Kops returns throughput in thousands of operations per second.
func (r *WireResult) Kops() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Wall.Seconds() / 1e3
}

func (c WireConfig) withDefaults() WireConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Depth <= 0 {
		c.Depth = 1
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 8
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Minute
	}
	if c.BurstOps > 0 && c.SteadyOps <= 0 {
		c.SteadyOps = 4 * c.BurstOps
	}
	if c.BurstOps > 0 && (c.BurstFrac <= 0 || c.BurstFrac >= 1) {
		c.BurstFrac = 0.01
	}
	return c
}

// RunWire runs one workload phase against the server at cfg.Addr and reports
// throughput plus per-class latency percentiles. Workloads that read only
// pick keys guaranteed to exist (preloaded or inserted earlier on the same
// ordered connection), so any GET miss fails the run as a correctness bug.
func RunWire(cfg WireConfig) (*WireResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Ops <= 0 {
		return nil, fmt.Errorf("ycsb: RunWire needs Ops > 0")
	}
	var (
		wg     sync.WaitGroup
		reads  histogram.Histogram
		writes histogram.Histogram
		misses atomic.Int64
		firstE atomic.Value
	)
	per := cfg.Ops / int64(cfg.Workers)
	if per == 0 {
		per = 1
	}
	// Op streams are generated BEFORE the clock starts: the zipfian draw
	// (a math.Pow per op) is generator cost, not serving cost, and on a
	// shared CPU it would otherwise dilute every measured number.
	streams := make([][]Op, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		streams[w] = genOps(cfg, w, per)
	}
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := wireWorker(cfg, w, streams[w], &reads, &writes, &misses); err != nil {
				firstE.CompareAndSwap(nil, err)
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	if e := firstE.Load(); e != nil {
		return nil, e.(error)
	}
	if m := misses.Load(); m > 0 {
		return nil, fmt.Errorf("ycsb: %d GET misses on a loaded keyspace (workload %s)", m, cfg.Workload)
	}
	summarize := func(h *histogram.Histogram) ClassLatency {
		return ClassLatency{
			Ops:    h.Count(),
			P50us:  float64(h.Percentile(50)) / 1e3,
			P99us:  float64(h.Percentile(99)) / 1e3,
			P999us: float64(h.Percentile(99.9)) / 1e3,
		}
	}
	return &WireResult{
		Workload: cfg.Workload,
		Ops:      per * int64(cfg.Workers),
		Wall:     wall,
		Reads:    summarize(&reads),
		Writes:   summarize(&writes),
	}, nil
}

// genOps pre-generates one worker's op stream, including the burst-phase
// toggling (flash crowds are a property of the offered traffic, so they are
// baked into the stream, not improvised during the measured loop).
func genOps(cfg WireConfig, w int, ops int64) []Op {
	g := NewGenerator(cfg.Workload, cfg.Keys, w, cfg.Workers, cfg.Seed)
	out := make([]Op, 0, ops)
	var sinceSwitch int64
	inBurst := false
	for i := int64(0); i < ops; i++ {
		if cfg.BurstOps > 0 {
			limit := int64(cfg.SteadyOps)
			if inBurst {
				limit = int64(cfg.BurstOps)
			}
			if sinceSwitch >= limit {
				inBurst = !inBurst
				sinceSwitch = 0
				if inBurst {
					g.SetHotFrac(cfg.BurstFrac)
				} else {
					g.SetHotFrac(1)
				}
			}
			sinceSwitch++
		}
		out = append(out, g.Next())
	}
	return out
}

// wireWorker is one connection's measured loop: windows of up to Depth
// pre-generated commands, each timestamped at send and measured at its
// in-order reply.
func wireWorker(cfg WireConfig, w int, stream []Op, reads, writes *histogram.Histogram, misses *atomic.Int64) error {
	c, err := resp.Dial(cfg.Addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(cfg.Timeout))

	val := make([]byte, cfg.ValueSize)
	for i := range val {
		val[i] = byte('a' + (w+i)%26)
	}
	// A pipeline window holds up to Depth generated ops; an RMW op occupies
	// two wire slots (GET then SET), so slot arrays are sized for 2x.
	type slot struct {
		sent   time.Time
		isRead bool
	}
	slots := make([]slot, 0, 2*cfg.Depth)

	ops := int64(len(stream))
	var done int64
	for done < ops {
		n := int64(cfg.Depth)
		if rem := ops - done; n > rem {
			n = rem
		}
		slots = slots[:0]
		for i := int64(0); i < n; i++ {
			op := stream[done+i]
			switch op.Kind {
			case OpRead:
				c.Send([]byte("GET"), op.Key)
				slots = append(slots, slot{time.Now(), true})
			case OpUpdate, OpInsert:
				c.Send([]byte("SET"), op.Key, val)
				slots = append(slots, slot{time.Now(), false})
			case OpReadModifyWrite:
				// Both legs share a window; the server's per-connection
				// ordering runs the GET before the SET.
				c.Send([]byte("GET"), op.Key)
				slots = append(slots, slot{time.Now(), true})
				c.Send([]byte("SET"), op.Key, val)
				slots = append(slots, slot{time.Now(), false})
			}
		}
		if err := c.Flush(); err != nil {
			return err
		}
		for i := range slots {
			rp, err := c.Receive()
			if err != nil {
				return err
			}
			if rp.Type == resp.TypeError {
				return fmt.Errorf("ycsb: server error: %s", rp.Text())
			}
			lat := time.Since(slots[i].sent).Nanoseconds()
			if slots[i].isRead {
				if rp.Null {
					misses.Add(1)
				}
				reads.Record(lat)
			} else {
				writes.Record(lat)
			}
		}
		done += n
	}
	return nil
}
