// Package ycsb implements the Yahoo Cloud Serving Benchmark workload
// generators used in the paper's Section 3.4 (Table 5): LOAD, A, B, C, D,
// and F. Workload E (range scan) is excluded, as in the paper, because the
// stores are organized by hashed keys.
//
// Key choosers follow the YCSB reference: scrambled zipfian (theta 0.99,
// FNV-remapped over the inserted keyspace) for A/B/C/F, and a "latest"
// distribution skewed toward recently inserted keys for D's 95% reads, with
// the remaining 5% inserting new keys that advance the recency frontier.
package ycsb

import (
	"math"
	"math/rand"
)

// OpKind is the type of one generated operation.
type OpKind int

const (
	// OpInsert adds a new key.
	OpInsert OpKind = iota
	// OpRead fetches an existing key.
	OpRead
	// OpUpdate overwrites an existing key.
	OpUpdate
	// OpReadModifyWrite reads then writes one key.
	OpReadModifyWrite
)

// Op is one generated operation.
type Op struct {
	Kind OpKind
	Key  []byte
}

// Workload identifies one of the paper's YCSB workloads.
type Workload string

// The paper's Table 5 workloads.
const (
	Load Workload = "YCSB_LOAD" // 100% insert
	A    Workload = "YCSB_A"    // 50% read / 50% update
	B    Workload = "YCSB_B"    // 95% read / 5% update
	C    Workload = "YCSB_C"    // 100% read
	D    Workload = "YCSB_D"    // 95% read latest / 5% insert
	F    Workload = "YCSB_F"    // 50% read / 50% read-modify-write
)

// Workloads lists the paper's six workloads in presentation order.
var Workloads = []Workload{Load, A, B, C, D, F}

// Generator produces operations for one worker. Not safe for concurrent
// use; give each worker its own (seeded differently).
type Generator struct {
	workload Workload
	rng      *rand.Rand
	zipf     *zipfian
	inserted   int64 // keys already in the store (shared keyspace bound)
	next       int64 // next key index this worker inserts
	stride     int64
	ownInserts int64 // inserts this worker has issued (D's latest() frontier)

	hot      *zipfian // flash-crowd rank chooser; nil in steady state
	hotCache *zipfian // built once per span, kept across burst toggles
}

// NewGenerator creates a generator for the given workload over a store
// preloaded with `inserted` keys. Workers insert disjoint keys by (worker,
// stride) striding.
func NewGenerator(w Workload, inserted int64, worker, workers int, seed int64) *Generator {
	g := &Generator{
		workload: w,
		rng:      rand.New(rand.NewSource(seed ^ int64(worker)*0x5851F42D4C957F2D)),
		inserted: inserted,
		next:     inserted + int64(worker),
		stride:   int64(workers),
	}
	if inserted > 0 {
		g.zipf = newZipfian(inserted, 0.99, g.rng)
	}
	return g
}

// Key renders key index i in the fixed 8-byte format the paper evaluates
// (Section 3.2: 8 B keys): the index as eight lowercase hex digits, exactly
// fmt.Sprintf("%08x", uint32(i)) without the formatter on the driver's hot
// path.
func Key(i int64) []byte {
	const digits = "0123456789abcdef"
	b := make([]byte, 8)
	v := uint32(i)
	for j := 7; j >= 0; j-- {
		b[j] = digits[v&0xf]
		v >>= 4
	}
	return b
}

// Next returns the next operation.
func (g *Generator) Next() Op {
	switch g.workload {
	case Load:
		return g.insert()
	case A:
		if g.rng.Intn(100) < 50 {
			return g.read()
		}
		return g.update()
	case B:
		if g.rng.Intn(100) < 95 {
			return g.read()
		}
		return g.update()
	case C:
		return g.read()
	case D:
		if g.rng.Intn(100) < 95 {
			return Op{Kind: OpRead, Key: Key(g.latest())}
		}
		return g.insert()
	case F:
		if g.rng.Intn(100) < 50 {
			return g.read()
		}
		return Op{Kind: OpReadModifyWrite, Key: Key(g.existing())}
	default:
		return g.read()
	}
}

func (g *Generator) insert() Op {
	k := g.next
	g.next += g.stride
	g.ownInserts++
	return Op{Kind: OpInsert, Key: Key(k)}
}

func (g *Generator) read() Op   { return Op{Kind: OpRead, Key: Key(g.existing())} }
func (g *Generator) update() Op { return Op{Kind: OpUpdate, Key: Key(g.existing())} }

// existing picks an existing key: a zipfian rank remapped over the key space
// the way YCSB's ScrambledZipfianGenerator does (FNV hash of the rank, mod
// key count). Without the remap, rank r is key r — the hot head would be the
// first-inserted keys in index order, correlating popularity with insertion
// order and key bytes; scrambling spreads the hot set uniformly over the key
// space while preserving the zipfian popularity SHAPE (some key gets rank
// 0's mass, but which key is pseudo-random). The remap is seedless: every
// worker agrees on which keys are hot.
func (g *Generator) existing() int64 {
	z := g.zipf
	if g.hot != nil {
		z = g.hot
	}
	if z == nil {
		return 0
	}
	return int64(fnv64(uint64(z.next())) % uint64(g.inserted))
}

// SetHotFrac toggles flash-crowd mode: existing-key ranks are drawn from
// only the hottest frac of the rank space. Because ranks are remapped by the
// seedless scramble, the burst hammers exactly the keys that are already the
// hottest in steady state — a traffic spike on the working set, not a new
// working set. Any frac outside (0, 1) restores steady-state traffic; the
// restricted chooser is cached across toggles.
func (g *Generator) SetHotFrac(frac float64) {
	if frac <= 0 || frac >= 1 || g.inserted <= 0 {
		g.hot = nil
		return
	}
	span := int64(frac * float64(g.inserted))
	if span < 1 {
		span = 1
	}
	if g.hotCache == nil || g.hotCache.n != span {
		g.hotCache = newZipfian(span, 0.99, g.rng)
	}
	g.hot = g.hotCache
}

// fnv64 is YCSB's FNVhash64: FNV-1a folded over the integer's 8 low-order
// octets.
func fnv64(v uint64) uint64 {
	const (
		offset = 0xCBF29CE484222325
		prime  = 0x100000001B3
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		v >>= 8
		h *= prime
	}
	return h
}

// latest picks a recently inserted key: zipfian distance back from the
// newest key this worker KNOWS exists — its own inserts (newest first), then
// the preloaded key space. Distances are deliberately not scrambled
// (YCSB SkewedLatestGenerator): "latest" means recency order, and remapping
// would destroy exactly the recency correlation the workload models.
func (g *Generator) latest() int64 {
	if g.zipf == nil {
		return 0
	}
	d := g.zipf.next()
	if d < g.ownInserts {
		return g.next - g.stride*(d+1)
	}
	k := g.inserted - 1 - (d - g.ownInserts)
	if k < 0 {
		k = 0
	}
	return k
}

// zipfian implements the Gray et al. incremental zipfian generator used by
// the YCSB reference implementation.
type zipfian struct {
	n       int64
	theta   float64
	alpha   float64
	zetan   float64
	eta     float64
	halfPow float64 // math.Pow(0.5, theta), hoisted off the per-draw path
	rng     *rand.Rand
}

func newZipfian(n int64, theta float64, rng *rand.Rand) *zipfian {
	z := &zipfian{n: n, theta: theta, rng: rng}
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	z.halfPow = math.Pow(0.5, theta)
	return z
}

func zeta(n int64, theta float64) float64 {
	// Exact up to a cutoff, then the integral approximation: the generators
	// are created per worker per phase, so an O(n) sum at the paper's
	// billion-key scale would dominate runtime.
	const cutoff = 1 << 20
	if n <= cutoff {
		var sum float64
		for i := int64(1); i <= n; i++ {
			sum += 1 / math.Pow(float64(i), theta)
		}
		return sum
	}
	sum := zeta(cutoff, theta)
	// integral of x^-theta from cutoff to n
	sum += (math.Pow(float64(n), 1-theta) - math.Pow(float64(cutoff), 1-theta)) / (1 - theta)
	return sum
}

func (z *zipfian) next() int64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+z.halfPow {
		return 1
	}
	idx := int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if idx >= z.n {
		idx = z.n - 1
	}
	if idx < 0 {
		idx = 0
	}
	return idx
}

// Mix describes a workload's operation mix for documentation and reports.
func Mix(w Workload) string {
	switch w {
	case Load:
		return "100% insert"
	case A:
		return "50% read / 50% update"
	case B:
		return "95% read / 5% update"
	case C:
		return "100% read"
	case D:
		return "95% read latest / 5% insert"
	case F:
		return "50% read / 50% read-modify-write"
	}
	return "unknown"
}
