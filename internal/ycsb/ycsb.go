// Package ycsb implements the Yahoo Cloud Serving Benchmark workload
// generators used in the paper's Section 3.4 (Table 5): LOAD, A, B, C, D,
// and F. Workload E (range scan) is excluded, as in the paper, because the
// stores are organized by hashed keys.
//
// Key choosers follow the YCSB reference: zipfian with theta 0.99 over the
// inserted keyspace for A/B/C/F, and a "latest" distribution skewed toward
// recently inserted keys for D.
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
)

// OpKind is the type of one generated operation.
type OpKind int

const (
	// OpInsert adds a new key.
	OpInsert OpKind = iota
	// OpRead fetches an existing key.
	OpRead
	// OpUpdate overwrites an existing key.
	OpUpdate
	// OpReadModifyWrite reads then writes one key.
	OpReadModifyWrite
)

// Op is one generated operation.
type Op struct {
	Kind OpKind
	Key  []byte
}

// Workload identifies one of the paper's YCSB workloads.
type Workload string

// The paper's Table 5 workloads.
const (
	Load Workload = "YCSB_LOAD" // 100% insert
	A    Workload = "YCSB_A"    // 50% read / 50% update
	B    Workload = "YCSB_B"    // 95% read / 5% update
	C    Workload = "YCSB_C"    // 100% read
	D    Workload = "YCSB_D"    // read most recently inserted keys
	F    Workload = "YCSB_F"    // 50% read / 50% read-modify-write
)

// Workloads lists the paper's six workloads in presentation order.
var Workloads = []Workload{Load, A, B, C, D, F}

// Generator produces operations for one worker. Not safe for concurrent
// use; give each worker its own (seeded differently).
type Generator struct {
	workload Workload
	rng      *rand.Rand
	zipf     *zipfian
	inserted int64 // keys already in the store (shared keyspace bound)
	next     int64 // next key index this worker inserts
	stride   int64
}

// NewGenerator creates a generator for the given workload over a store
// preloaded with `inserted` keys. Workers insert disjoint keys by (worker,
// stride) striding.
func NewGenerator(w Workload, inserted int64, worker, workers int, seed int64) *Generator {
	g := &Generator{
		workload: w,
		rng:      rand.New(rand.NewSource(seed ^ int64(worker)*0x5851F42D4C957F2D)),
		inserted: inserted,
		next:     inserted + int64(worker),
		stride:   int64(workers),
	}
	if inserted > 0 {
		g.zipf = newZipfian(inserted, 0.99, g.rng)
	}
	return g
}

// Key renders key index i in the fixed 8-byte format the paper evaluates
// (Section 3.2: 8 B keys).
func Key(i int64) []byte {
	return []byte(fmt.Sprintf("%08x", uint32(i))[:8])
}

// Next returns the next operation.
func (g *Generator) Next() Op {
	switch g.workload {
	case Load:
		return g.insert()
	case A:
		if g.rng.Intn(100) < 50 {
			return g.read()
		}
		return g.update()
	case B:
		if g.rng.Intn(100) < 95 {
			return g.read()
		}
		return g.update()
	case C:
		return g.read()
	case D:
		return Op{Kind: OpRead, Key: Key(g.latest())}
	case F:
		if g.rng.Intn(100) < 50 {
			return g.read()
		}
		return Op{Kind: OpReadModifyWrite, Key: Key(g.existing())}
	default:
		return g.read()
	}
}

func (g *Generator) insert() Op {
	k := g.next
	g.next += g.stride
	return Op{Kind: OpInsert, Key: Key(k)}
}

func (g *Generator) read() Op   { return Op{Kind: OpRead, Key: Key(g.existing())} }
func (g *Generator) update() Op { return Op{Kind: OpUpdate, Key: Key(g.existing())} }

// existing picks a zipfian-distributed existing key.
func (g *Generator) existing() int64 {
	if g.zipf == nil {
		return 0
	}
	return g.zipf.next()
}

// latest picks a recently inserted key: zipfian distance from the newest
// key, the YCSB "latest" distribution.
func (g *Generator) latest() int64 {
	if g.zipf == nil {
		return 0
	}
	d := g.zipf.next()
	return g.inserted - 1 - d
}

// zipfian implements the Gray et al. incremental zipfian generator used by
// the YCSB reference implementation.
type zipfian struct {
	n     int64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	rng   *rand.Rand
}

func newZipfian(n int64, theta float64, rng *rand.Rand) *zipfian {
	z := &zipfian{n: n, theta: theta, rng: rng}
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

func zeta(n int64, theta float64) float64 {
	// Exact up to a cutoff, then the integral approximation: the generators
	// are created per worker per phase, so an O(n) sum at the paper's
	// billion-key scale would dominate runtime.
	const cutoff = 1 << 20
	if n <= cutoff {
		var sum float64
		for i := int64(1); i <= n; i++ {
			sum += 1 / math.Pow(float64(i), theta)
		}
		return sum
	}
	sum := zeta(cutoff, theta)
	// integral of x^-theta from cutoff to n
	sum += (math.Pow(float64(n), 1-theta) - math.Pow(float64(cutoff), 1-theta)) / (1 - theta)
	return sum
}

func (z *zipfian) next() int64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	idx := int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if idx >= z.n {
		idx = z.n - 1
	}
	if idx < 0 {
		idx = 0
	}
	return idx
}

// Mix describes a workload's operation mix for documentation and reports.
func Mix(w Workload) string {
	switch w {
	case Load:
		return "100% insert"
	case A:
		return "50% read / 50% update"
	case B:
		return "95% read / 5% update"
	case C:
		return "100% read"
	case D:
		return "read latest inserts"
	case F:
		return "50% read / 50% read-modify-write"
	}
	return "unknown"
}
