package ycsb

import (
	"math"
	"testing"
)

func TestLoadInsertsDisjointStrided(t *testing.T) {
	const workers = 4
	seen := map[string]int{}
	for w := 0; w < workers; w++ {
		g := NewGenerator(Load, 100, w, workers, 7)
		for i := 0; i < 50; i++ {
			op := g.Next()
			if op.Kind != OpInsert {
				t.Fatalf("LOAD produced %v", op.Kind)
			}
			seen[string(op.Key)]++
		}
	}
	for k, n := range seen {
		if n > 1 {
			t.Fatalf("key %q inserted %d times across workers", k, n)
		}
	}
	if len(seen) != workers*50 {
		t.Fatalf("expected %d distinct keys, got %d", workers*50, len(seen))
	}
}

func TestKeyFormat(t *testing.T) {
	k := Key(255)
	if len(k) != 8 {
		t.Fatalf("key length %d, want 8 (paper's 8 B keys)", len(k))
	}
	if string(Key(1)) == string(Key(2)) {
		t.Fatal("distinct indices produced equal keys")
	}
}

func TestMixRatios(t *testing.T) {
	const n = 100000
	cases := []struct {
		w         Workload
		wantReads float64
		wantRMW   float64
		tol       float64
	}{
		{A, 0.50, 0, 0.02},
		{B, 0.95, 0, 0.02},
		{C, 1.00, 0, 0},
		{F, 0.50, 0.50, 0.02},
	}
	for _, tc := range cases {
		g := NewGenerator(tc.w, 10000, 0, 1, 42)
		var reads, updates, rmw int
		for i := 0; i < n; i++ {
			switch g.Next().Kind {
			case OpRead:
				reads++
			case OpUpdate:
				updates++
			case OpReadModifyWrite:
				rmw++
			case OpInsert:
				t.Fatalf("%s produced an insert", tc.w)
			}
		}
		if r := float64(reads) / n; math.Abs(r-tc.wantReads) > tc.tol {
			t.Errorf("%s read ratio = %v, want ~%v", tc.w, r, tc.wantReads)
		}
		if r := float64(rmw) / n; math.Abs(r-tc.wantRMW) > tc.tol {
			t.Errorf("%s rmw ratio = %v, want ~%v", tc.w, r, tc.wantRMW)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	g := NewGenerator(C, 100000, 0, 1, 1)
	counts := map[int64]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		op := g.Next()
		_ = op
	}
	z := g.zipf
	for i := 0; i < n; i++ {
		counts[z.next()]++
	}
	// Zipf 0.99: rank 0 should dominate; the top-10 ranks should carry a
	// large share.
	top := 0
	for r := int64(0); r < 10; r++ {
		top += counts[r]
	}
	if float64(top)/n < 0.15 {
		t.Fatalf("top-10 share %v too small for zipf(0.99)", float64(top)/n)
	}
	if counts[0] < counts[1000] {
		t.Fatal("rank 0 less popular than rank 1000")
	}
}

func TestZipfianBounds(t *testing.T) {
	g := NewGenerator(C, 1000, 0, 1, 3)
	for i := 0; i < 100000; i++ {
		k := g.zipf.next()
		if k < 0 || k >= 1000 {
			t.Fatalf("zipfian out of range: %d", k)
		}
	}
}

func TestLatestSkewsRecent(t *testing.T) {
	g := NewGenerator(D, 100000, 0, 1, 5)
	recent := 0
	const n = 100000
	for i := 0; i < n; i++ {
		op := g.Next()
		if op.Kind != OpRead {
			t.Fatalf("D produced %v", op.Kind)
		}
	}
	// Sample the underlying latest distribution directly.
	for i := 0; i < n; i++ {
		k := g.latest()
		if k < 0 || k >= 100000 {
			t.Fatalf("latest key out of range: %d", k)
		}
		if k >= 99000 {
			recent++
		}
	}
	if float64(recent)/n < 0.2 {
		t.Fatalf("latest distribution not recent-skewed: %v in newest 1%%", float64(recent)/n)
	}
}

func TestZetaApproximationContinuity(t *testing.T) {
	// The integral approximation must be close to the exact sum around the
	// cutoff.
	exact := zeta(1<<20, 0.99)
	approx := zeta(1<<20+1000, 0.99)
	if approx <= exact {
		t.Fatal("zeta not increasing across cutoff")
	}
	if (approx-exact)/exact > 0.001 {
		t.Fatalf("zeta discontinuity too large: %v vs %v", exact, approx)
	}
}

func TestMixStrings(t *testing.T) {
	for _, w := range Workloads {
		if Mix(w) == "unknown" {
			t.Errorf("no mix description for %s", w)
		}
	}
}
