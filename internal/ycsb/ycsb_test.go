package ycsb

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestLoadInsertsDisjointStrided(t *testing.T) {
	const workers = 4
	seen := map[string]int{}
	for w := 0; w < workers; w++ {
		g := NewGenerator(Load, 100, w, workers, 7)
		for i := 0; i < 50; i++ {
			op := g.Next()
			if op.Kind != OpInsert {
				t.Fatalf("LOAD produced %v", op.Kind)
			}
			seen[string(op.Key)]++
		}
	}
	for k, n := range seen {
		if n > 1 {
			t.Fatalf("key %q inserted %d times across workers", k, n)
		}
	}
	if len(seen) != workers*50 {
		t.Fatalf("expected %d distinct keys, got %d", workers*50, len(seen))
	}
}

func TestKeyFormat(t *testing.T) {
	k := Key(255)
	if len(k) != 8 {
		t.Fatalf("key length %d, want 8 (paper's 8 B keys)", len(k))
	}
	if string(Key(1)) == string(Key(2)) {
		t.Fatal("distinct indices produced equal keys")
	}
}

func TestMixRatios(t *testing.T) {
	const n = 100000
	cases := []struct {
		w         Workload
		wantReads float64
		wantRMW   float64
		tol       float64
	}{
		{A, 0.50, 0, 0.02},
		{B, 0.95, 0, 0.02},
		{C, 1.00, 0, 0},
		{F, 0.50, 0.50, 0.02},
	}
	for _, tc := range cases {
		g := NewGenerator(tc.w, 10000, 0, 1, 42)
		var reads, updates, rmw int
		for i := 0; i < n; i++ {
			switch g.Next().Kind {
			case OpRead:
				reads++
			case OpUpdate:
				updates++
			case OpReadModifyWrite:
				rmw++
			case OpInsert:
				t.Fatalf("%s produced an insert", tc.w)
			}
		}
		if r := float64(reads) / n; math.Abs(r-tc.wantReads) > tc.tol {
			t.Errorf("%s read ratio = %v, want ~%v", tc.w, r, tc.wantReads)
		}
		if r := float64(rmw) / n; math.Abs(r-tc.wantRMW) > tc.tol {
			t.Errorf("%s rmw ratio = %v, want ~%v", tc.w, r, tc.wantRMW)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	g := NewGenerator(C, 100000, 0, 1, 1)
	counts := map[int64]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		op := g.Next()
		_ = op
	}
	z := g.zipf
	for i := 0; i < n; i++ {
		counts[z.next()]++
	}
	// Zipf 0.99: rank 0 should dominate; the top-10 ranks should carry a
	// large share.
	top := 0
	for r := int64(0); r < 10; r++ {
		top += counts[r]
	}
	if float64(top)/n < 0.15 {
		t.Fatalf("top-10 share %v too small for zipf(0.99)", float64(top)/n)
	}
	if counts[0] < counts[1000] {
		t.Fatal("rank 0 less popular than rank 1000")
	}
}

func TestZipfianBounds(t *testing.T) {
	g := NewGenerator(C, 1000, 0, 1, 3)
	for i := 0; i < 100000; i++ {
		k := g.zipf.next()
		if k < 0 || k >= 1000 {
			t.Fatalf("zipfian out of range: %d", k)
		}
	}
}

func TestLatestSkewsRecent(t *testing.T) {
	g := NewGenerator(D, 100000, 0, 1, 5)
	const n = 100000
	var reads, inserts int
	for i := 0; i < n; i++ {
		switch op := g.Next(); op.Kind {
		case OpRead:
			reads++
		case OpInsert:
			inserts++
		default:
			t.Fatalf("D produced %v", op.Kind)
		}
	}
	if r := float64(inserts) / n; math.Abs(r-0.05) > 0.01 {
		t.Fatalf("D insert ratio = %v, want ~0.05 (YCSB D: 95%% read-latest / 5%% insert)", r)
	}
	// Sample the underlying latest distribution directly. The recency
	// frontier has advanced past the preload by this worker's own inserts;
	// latest() must never name a key beyond it (it would not exist yet).
	recent := 0
	frontier := g.next // next key to insert; everything below exists
	for i := 0; i < n; i++ {
		k := g.latest()
		if k < 0 || k >= frontier {
			t.Fatalf("latest key out of range: %d (frontier %d)", k, frontier)
		}
		if frontier-k <= frontier/100 {
			recent++
		}
	}
	if float64(recent)/n < 0.2 {
		t.Fatalf("latest distribution not recent-skewed: %v in newest 1%%", float64(recent)/n)
	}
}

func TestLatestNeverReadsForeignUninsertedKeys(t *testing.T) {
	// With multiple strided workers, a worker's recency frontier includes
	// only its OWN inserts above the preload — peers' stripes may lag. Every
	// latest() pick must be preloaded or one of this worker's own inserts.
	const inserted, workers, worker = 5000, 4, 2
	g := NewGenerator(D, inserted, worker, workers, 13)
	for i := 0; i < 50000; i++ {
		g.Next() // interleave inserts so the frontier moves
		k := g.latest()
		if k < inserted {
			continue
		}
		if k >= g.next || (k-inserted-int64(worker))%int64(workers) != 0 {
			t.Fatalf("latest picked key %d: not preloaded, not worker %d's stripe (next=%d)",
				k, worker, g.next)
		}
	}
}

// TestZipfianShapeMatchesTheory checks the incremental generator against the
// true zipfian PMF p(r) = (r+1)^-θ / ζ(n,θ): exact head ranks, then
// cumulative mass at several prefixes (the continuous approximation for
// mid-tail ranks is only faithful cumulatively).
func TestZipfianShapeMatchesTheory(t *testing.T) {
	const (
		nKeys   = 10000
		samples = 1000000
		theta   = 0.99
	)
	z := newZipfian(nKeys, theta, rand.New(rand.NewSource(11)))
	counts := make([]int, nKeys)
	for i := 0; i < samples; i++ {
		counts[z.next()]++
	}
	zn := zeta(nKeys, theta)
	// Ranks 0 and 1 have closed forms in the generator; they must be tight.
	for r, tol := range []float64{0.03, 0.05} {
		want := math.Pow(float64(r+1), -theta) / zn
		got := float64(counts[r]) / samples
		if math.Abs(got-want)/want > tol {
			t.Errorf("rank %d: empirical %.5f vs theoretical %.5f", r, got, want)
		}
	}
	// Cumulative head mass: top-10, top-100, top-1000 within 10% of theory.
	cum := 0.0
	cdf := make([]float64, nKeys)
	for r := 0; r < nKeys; r++ {
		cum += math.Pow(float64(r+1), -theta) / zn
		cdf[r] = cum
	}
	for _, prefix := range []int{10, 100, 1000} {
		got := 0
		for r := 0; r < prefix; r++ {
			got += counts[r]
		}
		emp := float64(got) / samples
		want := cdf[prefix-1]
		if math.Abs(emp-want)/want > 0.10 {
			t.Errorf("top-%d mass: empirical %.4f vs theoretical %.4f", prefix, emp, want)
		}
	}
	// The hot head must actually be hot: rank 0 alone beats the entire
	// bottom half of the key space combined.
	bottom := 0
	for r := nKeys / 2; r < nKeys; r++ {
		bottom += counts[r]
	}
	if counts[0] <= bottom {
		t.Errorf("rank 0 (%d) not hotter than bottom half combined (%d)", counts[0], bottom)
	}
}

// TestScrambledZipfianSpreadsHotHead proves existing()'s FNV remap: the
// zipfian head keeps its mass but lands on pseudo-random keys spread across
// the key space, and the mapping is seed-independent so all workers hammer
// the same hot set.
func TestScrambledZipfianSpreadsHotHead(t *testing.T) {
	const nKeys = 100000
	const n = 300000
	g := NewGenerator(C, nKeys, 0, 1, 9)
	counts := map[int64]int{}
	for i := 0; i < n; i++ {
		k := g.existing()
		if k < 0 || k >= nKeys {
			t.Fatalf("scrambled key out of range: %d", k)
		}
		counts[k]++
	}
	type kc struct {
		k int64
		c int
	}
	all := make([]kc, 0, len(counts))
	for k, c := range counts {
		all = append(all, kc{k, c})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].c > all[j].c })
	mass := 0
	lo, hi := all[0].k, all[0].k
	for _, e := range all[:10] {
		mass += e.c
		if e.k < lo {
			lo = e.k
		}
		if e.k > hi {
			hi = e.k
		}
	}
	if float64(mass)/n < 0.15 {
		t.Fatalf("top-10 key mass %v: scramble destroyed the zipfian head", float64(mass)/n)
	}
	if hi < nKeys/10 {
		t.Fatalf("hot keys all in the first tenth of the key space (%d..%d): not scrambled", lo, hi)
	}
	if hi-lo < nKeys/10 {
		t.Fatalf("hot keys clustered (%d..%d): scramble not spreading", lo, hi)
	}
	// Seed independence: a differently seeded worker agrees on the hottest
	// key (the remap depends only on rank, so the hot set is shared).
	g2 := NewGenerator(C, nKeys, 3, 8, 777)
	counts2 := map[int64]int{}
	for i := 0; i < n; i++ {
		counts2[g2.existing()]++
	}
	best2, bestc := int64(-1), 0
	for k, c := range counts2 {
		if c > bestc {
			best2, bestc = k, c
		}
	}
	if best2 != all[0].k {
		t.Fatalf("hottest key differs across workers: %d vs %d", best2, all[0].k)
	}
}

func TestZetaApproximationContinuity(t *testing.T) {
	// The integral approximation must be close to the exact sum around the
	// cutoff.
	exact := zeta(1<<20, 0.99)
	approx := zeta(1<<20+1000, 0.99)
	if approx <= exact {
		t.Fatal("zeta not increasing across cutoff")
	}
	if (approx-exact)/exact > 0.001 {
		t.Fatalf("zeta discontinuity too large: %v vs %v", exact, approx)
	}
}

func TestMixStrings(t *testing.T) {
	for _, w := range Workloads {
		if Mix(w) == "unknown" {
			t.Errorf("no mix description for %s", w)
		}
	}
}
