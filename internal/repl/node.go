package repl

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"chameleondb/internal/core"
	"chameleondb/internal/kvstore"
	"chameleondb/internal/obs"
	"chameleondb/internal/simclock"
	"chameleondb/internal/wlog"
)

// Roles a node serves in.
const (
	RolePrimary = "primary"
	RoleReplica = "replica"
)

// ErrNeedsReset is reported (via Status.NeedsReset and the link status) when
// the primary demands a full resync but the local store holds diverged state
// and no ResetStore hook was configured. Restarting the process with a fresh
// (or wiped) data directory clears it; chameleon-server's -replicaof startup
// path does exactly that.
var ErrNeedsReset = errors.New("repl: full resync required; local store has diverged state and no reset hook")

// Config parametrizes a replication node. The zero value of every field gets
// a sensible default from Start except Addr/PrimaryAddr, which select the
// node's initial shape: Addr non-empty listens for replicas, PrimaryAddr
// non-empty starts catching up from that primary. Both may be set (a replica
// that can itself be replicated from after promotion — the normal serving
// shape).
type Config struct {
	// Addr is the replication listen address ("" = do not accept replicas).
	Addr string
	// PrimaryAddr, when non-empty, starts the node as a replica of the
	// primary's replication address.
	PrimaryAddr string
	// ID identifies this node to its primary (GC holds and INFO lines key
	// off it). Defaults to the dialing connection's local address.
	ID string
	// HoldTimeout is how long a disconnected replica's GC hold survives
	// before the primary releases it (and with it the chance of an
	// incremental reconnect). Default 30s.
	HoldTimeout time.Duration
	// Heartbeat is the primary's idle ping cadence. Default 100ms.
	Heartbeat time.Duration
	// WriteTimeout bounds every frame write from the primary to a replica. A
	// replica process that is alive but has stopped reading would otherwise
	// block the sender in TCP backpressure forever, with its GC hold pinning
	// the primary's log until it fills and all writes fail; the deadline
	// drops such a peer to the held state, whose HoldTimeout then bounds the
	// pin. Default 10s.
	WriteTimeout time.Duration
	// MaxChunk bounds one Entries frame's payload. Default 256 KiB.
	MaxChunk int
	// DialTimeout bounds replica connect attempts. Default 3s.
	DialTimeout time.Duration
	// ReconnectDelay is the replica's initial retry backoff (doubles to 16x).
	// Default 100ms.
	ReconnectDelay time.Duration
	// ResetStore, when set, is called to rebuild the local store from
	// scratch when the primary demands a full resync over diverged state
	// (epoch mismatch, or the primary GC'd past our watermark). It runs only
	// inside Start, before the store is served; later resync demands latch
	// ErrNeedsReset instead. The node adopts the returned store.
	ResetStore func() (*core.Store, error)
	// AckGate, when set, must return true for a durable ack to leave this
	// replica. The crash-sweep harness injects the simulated device's
	// power-failure latch here, so a "dead" replica can never confirm
	// durability the model already discarded. Production leaves it nil.
	AckGate func() bool
	// OnApply, when set, is called with each key after the replica has
	// applied the replicated record. Replicated applies bypass the serving
	// layer's sessions, so a node that fronts its store with a hot-key cache
	// (hotcache.Wrap) hooks the cache's Invalidate here — otherwise replica
	// reads could serve pre-catch-up values from DRAM. The key aliases the
	// wire frame buffer: use it during the call, do not retain it.
	OnApply func(key []byte)
}

func (c *Config) defaults() {
	if c.HoldTimeout <= 0 {
		c.HoldTimeout = 30 * time.Second
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 100 * time.Millisecond
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.MaxChunk <= 0 || c.MaxChunk > MaxFramePayload-1024 {
		c.MaxChunk = 256 << 10
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 3 * time.Second
	}
	if c.ReconnectDelay <= 0 {
		c.ReconnectDelay = 100 * time.Millisecond
	}
}

// counters is the node's wire accounting, registered as repl_* metrics.
type counters struct {
	framesSent     atomic.Int64
	framesReceived atomic.Int64
	bytesSent      atomic.Int64
	bytesReceived  atomic.Int64
	entriesShipped atomic.Int64
	entriesApplied atomic.Int64
	acksSent       atomic.Int64
	acksReceived   atomic.Int64
	fullSyncs      atomic.Int64
	reconnects     atomic.Int64
	waits          atomic.Int64
}

// Node is one store's replication identity: it can serve a hub of replicas
// (primary half, primary.go) and/or tail a primary (replica half,
// replica.go), and switches between the two at promotion.
type Node struct {
	cfg Config
	c   counters

	mu          sync.Mutex
	st          *core.Store
	role        string
	primaryAddr string
	link        *link
	hub         *hub
	needsReset  bool
	closed      bool
}

// Start builds a node around st. If cfg.PrimaryAddr is set, Start performs
// one synchronous handshake before returning: a full-resync demand over a
// non-empty store is resolved here — via cfg.ResetStore when provided (the
// node adopts and returns the fresh store) — so the caller serves a store
// that is already converging. A primary that cannot be reached yet is not an
// error; the replica keeps retrying in the background.
func Start(st *core.Store, cfg Config) (*Node, error) {
	cfg.defaults()
	n := &Node{cfg: cfg, st: st, role: RolePrimary}
	if cfg.Addr != "" {
		h, err := newHub(n, cfg.Addr)
		if err != nil {
			return nil, err
		}
		n.hub = h
	}
	if cfg.PrimaryAddr != "" {
		n.role = RoleReplica
		n.primaryAddr = cfg.PrimaryAddr
		st.SetReadOnly(true)
		n.startLink(cfg.PrimaryAddr, true)
	} else {
		// Every fresh primary lifetime gets a new lineage ID and epoch:
		// incremental resume is only ever valid within a single primary
		// lifetime, where the LSN → content mapping below the ship watermark
		// is immutable. The random ID is the actual lineage check — bare
		// epoch counters collide across unrelated nodes (every fresh primary
		// would start at 1) — so a replica of any other lifetime, including a
		// deposed primary's, fails the ID comparison at handshake and
		// full-resyncs instead of resuming over a possibly diverged history.
		_, epoch, applied := st.ReplState()
		st.SetReplState(newReplID(), epoch+1, applied)
	}
	n.registerMetrics(n.store().Registry())
	if n.hub != nil {
		n.hub.run()
	}
	return n, nil
}

// Store returns the store the node currently fronts. Start's synchronous
// full-resync path may have swapped it; callers building a serving layer must
// use this, not the store they passed in.
func (n *Node) Store() *core.Store {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.st
}

func (n *Node) store() *core.Store {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.st
}

// Role returns RolePrimary or RoleReplica.
func (n *Node) Role() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Addr returns the replication listen address ("" when not listening).
func (n *Node) Addr() string {
	if n.hub == nil {
		return ""
	}
	return n.hub.ln.Addr().String()
}

// Promote makes the node a primary: the replica link (if any) is torn down
// after finishing its in-flight frame, a fresh replication lineage ID is
// minted (and the epoch bumped), and the read-only gate opens. The new ID is
// the failover safety argument: a deposed primary reconnecting with the old
// lineage can never resume incrementally, so writes it acknowledged but never
// shipped die with its full resync instead of resurrecting (DESIGN.md §8).
func (n *Node) Promote() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return errors.New("repl: node closed")
	}
	l := n.link
	n.link = nil
	wasReplica := n.role == RoleReplica
	n.role = RolePrimary
	n.primaryAddr = ""
	n.needsReset = false
	st := n.st
	n.mu.Unlock()
	if l != nil {
		l.stop()
	}
	if wasReplica {
		_, epoch, applied := st.ReplState()
		st.SetReplState(newReplID(), epoch+1, applied)
	}
	st.SetReadOnly(false)
	return nil
}

// ReplicaOf redirects the node: addr "" (or "no one", case-insensitive, as
// the serving layer normalizes) promotes; otherwise the node becomes a
// replica of addr, tearing down any previous link. Becoming a replica of a
// primary whose history has diverged from the local store latches
// ErrNeedsReset (visible in Status and INFO) rather than serving wrong data.
func (n *Node) ReplicaOf(addr string) error {
	if addr == "" {
		return n.Promote()
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return errors.New("repl: node closed")
	}
	old := n.link
	n.link = nil
	n.role = RoleReplica
	n.primaryAddr = addr
	n.needsReset = false
	st := n.st
	n.mu.Unlock()
	if old != nil {
		old.stop()
	}
	st.SetReadOnly(true)
	n.startLink(addr, false)
	return nil
}

// Wait implements WAIT numreplicas timeout: it flushes the session, seals
// every appender so the ship watermark covers the session's writes, and
// blocks until numReplicas replicas have durably acknowledged that watermark
// or the timeout expires. It returns the number of replicas that had durably
// acknowledged the target when it returned — the WAIT reply. timeout <= 0
// means a 1h cap rather than forever (a server should not be unboundedly
// hostage to a dead replica).
func (n *Node) Wait(se kvstore.Session, numReplicas int, timeout time.Duration) (int, error) {
	n.c.waits.Add(1)
	if err := se.Flush(); err != nil {
		return 0, err
	}
	hub := n.hub
	if hub == nil {
		return 0, nil
	}
	st := n.store()
	if err := st.Log().SealAll(simclock.New(0)); err != nil {
		return 0, err
	}
	target := st.Log().MinNextLSN()
	if timeout <= 0 {
		timeout = time.Hour
	}
	return hub.waitDurable(target, numReplicas, timeout), nil
}

// PeerStatus describes one connected (or recently disconnected but still
// held) replica from the primary's side.
type PeerStatus struct {
	ID        string
	Connected bool
	Cursor    int64 // next LSN to ship
	Applied   int64
	Durable   int64
}

// Status is a point-in-time snapshot of the node for INFO, chameleonctl, and
// tests.
type Status struct {
	Role        string
	ReplID      string
	Epoch       int64
	PrimaryAddr string
	LinkUp      bool
	NeedsReset  bool
	AppliedLSN  int64 // replica: primary LSN applied up to
	DurableLSN  int64 // replica: primary LSN durably applied up to
	Watermark   int64 // primary: ship watermark (MinNextLSN)
	Peers       []PeerStatus
}

// Status snapshots the node.
func (n *Node) Status() Status {
	n.mu.Lock()
	st := n.st
	s := Status{
		Role:        n.role,
		PrimaryAddr: n.primaryAddr,
		NeedsReset:  n.needsReset,
	}
	l := n.link
	n.mu.Unlock()
	s.ReplID, s.Epoch, _ = st.ReplState()
	if l != nil {
		s.LinkUp = l.up.Load()
		s.AppliedLSN = l.applied.Load()
		s.DurableLSN = l.durable.Load()
	}
	if n.hub != nil {
		s.Watermark = st.Log().MinNextLSN()
		s.Peers = n.hub.peerStatus()
	}
	return s
}

// ConnectedReplicas returns how many replicas are currently attached.
func (n *Node) ConnectedReplicas() int {
	if n.hub == nil {
		return 0
	}
	return n.hub.connected()
}

// InfoSection appends a redis-style "# Replication" INFO section.
func (n *Node) InfoSection(b []byte) []byte {
	s := n.Status()
	app := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	app("# Replication\r\n")
	if s.Role == RolePrimary {
		app("role:master\r\n")
	} else {
		app("role:slave\r\n")
		host, port, _ := net.SplitHostPort(s.PrimaryAddr)
		app("master_host:%s\r\n", host)
		app("master_port:%s\r\n", port)
		switch {
		case s.NeedsReset:
			app("master_link_status:resync_needed\r\n")
		case s.LinkUp:
			app("master_link_status:up\r\n")
		default:
			app("master_link_status:down\r\n")
		}
		app("slave_read_only:1\r\n")
		app("slave_applied_lsn:%d\r\n", s.AppliedLSN)
		app("slave_durable_lsn:%d\r\n", s.DurableLSN)
	}
	app("master_replid:%s\r\n", s.ReplID)
	app("repl_epoch:%d\r\n", s.Epoch)
	connected := 0
	for _, p := range s.Peers {
		if p.Connected {
			connected++
		}
	}
	app("connected_slaves:%d\r\n", connected)
	for i, p := range s.Peers {
		state := "online"
		if !p.Connected {
			state = "held"
		}
		app("slave%d:id=%s,state=%s,cursor=%d,applied=%d,durable=%d,lag=%d\r\n",
			i, p.ID, state, p.Cursor, p.Applied, p.Durable, s.Watermark-p.Durable)
	}
	if s.Watermark != 0 {
		app("master_ship_lsn:%d\r\n", s.Watermark)
	}
	return b
}

// Close tears the node down: the hub stops accepting and drops its peers
// (releasing their GC holds), the replica link disconnects after its
// in-flight frame. The store itself is not closed.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	l := n.link
	n.link = nil
	n.mu.Unlock()
	if l != nil {
		l.stop()
	}
	if n.hub != nil {
		n.hub.close()
	}
	return nil
}

// registerMetrics exposes the node's counters and status gauges in the
// store's registry, so /metrics and INFO share one source.
func (n *Node) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("repl_frames_sent", n.c.framesSent.Load)
	reg.CounterFunc("repl_frames_received", n.c.framesReceived.Load)
	reg.CounterFunc("repl_bytes_sent", n.c.bytesSent.Load)
	reg.CounterFunc("repl_bytes_received", n.c.bytesReceived.Load)
	reg.CounterFunc("repl_entries_shipped", n.c.entriesShipped.Load)
	reg.CounterFunc("repl_entries_applied", n.c.entriesApplied.Load)
	reg.CounterFunc("repl_acks_sent", n.c.acksSent.Load)
	reg.CounterFunc("repl_acks_received", n.c.acksReceived.Load)
	reg.CounterFunc("repl_full_syncs", n.c.fullSyncs.Load)
	reg.CounterFunc("repl_reconnects", n.c.reconnects.Load)
	reg.CounterFunc("repl_waits", n.c.waits.Load)
	reg.GaugeFunc("repl_is_primary", func() int64 {
		if n.Role() == RolePrimary {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("repl_connected_replicas", func() int64 {
		return int64(n.ConnectedReplicas())
	})
	reg.GaugeFunc("repl_link_up", func() int64 {
		n.mu.Lock()
		l := n.link
		n.mu.Unlock()
		if l != nil && l.up.Load() {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("repl_applied_lsn", func() int64 {
		n.mu.Lock()
		l := n.link
		n.mu.Unlock()
		if l == nil {
			return 0
		}
		return l.applied.Load()
	})
}

// newReplID mints a replication lineage ID: 40 hex chars of entropy, unique
// per primary lifetime. Two stores share an LSN history iff their IDs match.
func newReplID() string {
	var b [20]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; if it somehow
		// does, a constant-free fallback is still better than panicking in
		// Start. The all-zero ID only risks an unnecessary full resync.
		return "0000000000000000000000000000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// exportRange encodes log entries in [from, to) into an Entries payload of at
// most maxBytes record bytes, returning the payload and the cursor it
// advances to (to when the range was exhausted, the first unshipped entry's
// LSN when the size limit stopped it early). The scan is race-free against
// live appenders because to never exceeds MinNextLSN — see wlog.ScanRange.
// Whatever maxBytes the config allows, the payload never exceeds
// MaxFramePayload: a record that would push it past stops the scan instead,
// so the replica's decoder can never reject a frame the primary would then
// deterministically rebuild (a livelock). The first record is always taken —
// one record always fits, since log entries are bounded by the segment size,
// far below MaxFramePayload — so the cursor always advances.
func exportRange(log *wlog.Log, clk *simclock.Clock, from, to int64, maxBytes int, flags byte) (payload []byte, next int64, count int, err error) {
	payload = appendEntriesHeader(make([]byte, 0, entriesHeader+maxBytes/4), from, to, flags)
	next = to
	err = log.ScanRange(clk, from, to, func(e wlog.Entry) bool {
		rec := recordHeader + len(e.Key) + len(e.Value)
		if count > 0 && (len(payload)-entriesHeader >= maxBytes || len(payload)+rec > MaxFramePayload) {
			next = e.LSN
			return false
		}
		payload = appendRecord(payload, e.LSN, e.Key, e.Value, e.Tombstone())
		count++
		return true
	})
	if err != nil {
		return nil, 0, 0, err
	}
	patchEntriesNext(payload, next)
	return payload, next, count, nil
}
