package repl

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"chameleondb/internal/core"
	"chameleondb/internal/simclock"
)

func openStore(t *testing.T, cfg core.Config) *core.Store {
	t.Helper()
	st, err := core.Open(cfg)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func fastConfig() Config {
	return Config{
		Heartbeat:      2 * time.Millisecond,
		ReconnectDelay: 5 * time.Millisecond,
		DialTimeout:    time.Second,
	}
}

func startPrimary(t *testing.T, st *core.Store, cfg Config) *Node {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	n, err := Start(st, cfg)
	if err != nil {
		t.Fatalf("start primary: %v", err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func startReplica(t *testing.T, st *core.Store, primaryAddr, id string, cfg Config) *Node {
	t.Helper()
	cfg.PrimaryAddr = primaryAddr
	cfg.ID = id
	n, err := Start(st, cfg)
	if err != nil {
		t.Fatalf("start replica: %v", err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func session(t *testing.T, st *core.Store) *core.Session {
	t.Helper()
	se, ok := st.NewSession(simclock.New(0)).(*core.Session)
	if !ok {
		t.Fatal("session type")
	}
	t.Cleanup(func() { se.Release() })
	return se
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// dump scans the full store into a map.
func dump(t *testing.T, se *core.Session) map[string]string {
	t.Helper()
	out := make(map[string]string)
	cursor := uint64(0)
	for {
		kvs, next, err := se.Scan(cursor, 64)
		if err != nil {
			t.Fatalf("scan: %v", err)
		}
		for _, kv := range kvs {
			out[string(kv.Key)] = string(kv.Value)
		}
		if next == 0 {
			return out
		}
		cursor = next
	}
}

func assertParity(t *testing.T, pse, rse *core.Session) {
	t.Helper()
	want, got := dump(t, pse), dump(t, rse)
	if len(want) != len(got) {
		t.Fatalf("replica holds %d keys, primary %d", len(got), len(want))
	}
	for k, v := range want {
		gv, ok := got[k]
		if !ok {
			t.Fatalf("replica missing key %q", k)
		}
		if gv != v {
			t.Fatalf("replica key %q = %q, want %q", k, gv, v)
		}
		// Point reads agree with the scan.
		rv, ok, err := rse.Get([]byte(k))
		if err != nil || !ok || string(rv) != v {
			t.Fatalf("replica Get(%q) = %q,%v,%v want %q", k, rv, ok, err, v)
		}
	}
}

// TestBootstrapCatchUpAndParity covers the main e2e: a replica bootstraps
// from a live primary with pre-existing state (including deletions), reaches
// parity, and then follows steady-state writes shipped off the seal hook.
func TestBootstrapCatchUpAndParity(t *testing.T) {
	pst := openStore(t, core.TestConfig())
	pn := startPrimary(t, pst, fastConfig())
	pse := session(t, pst)

	for i := 0; i < 200; i++ {
		if err := pse.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("val-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if err := pse.Delete([]byte(fmt.Sprintf("key-%04d", i*2))); err != nil {
			t.Fatal(err)
		}
	}
	if err := pse.Flush(); err != nil {
		t.Fatal(err)
	}

	rst := openStore(t, core.TestConfig())
	rn := startReplica(t, rst, pn.Addr(), "r1", fastConfig())
	if got, err := pn.Wait(pse, 1, 10*time.Second); err != nil || got != 1 {
		t.Fatalf("WAIT 1 = %d, %v", got, err)
	}
	rse := session(t, rst)
	assertParity(t, pse, rse)
	for i := 0; i < 50; i++ {
		if _, ok, _ := rse.Get([]byte(fmt.Sprintf("key-%04d", i*2))); ok {
			t.Fatalf("replica resurrected deleted key-%04d", i*2)
		}
	}

	// Steady state: new writes and deletes flow without a reconnect.
	for i := 0; i < 60; i++ {
		if err := pse.Put([]byte(fmt.Sprintf("live-%03d", i)), []byte("v2")); err != nil {
			t.Fatal(err)
		}
	}
	if err := pse.Delete([]byte("key-0001")); err != nil {
		t.Fatal(err)
	}
	if got, err := pn.Wait(pse, 1, 10*time.Second); err != nil || got != 1 {
		t.Fatalf("WAIT 1 = %d, %v", got, err)
	}
	assertParity(t, pse, rse)
	if s := rn.Status(); !s.LinkUp || s.Role != RoleReplica {
		t.Fatalf("replica status = %+v", s)
	}
	if pn.ConnectedReplicas() != 1 {
		t.Fatalf("connected replicas = %d", pn.ConnectedReplicas())
	}
}

// TestWaitSemantics pins down the WAIT contract: zero without replicas, the
// ack count with them, and a bounded wait for unreachable counts.
func TestWaitSemantics(t *testing.T) {
	pst := openStore(t, core.TestConfig())
	pn := startPrimary(t, pst, fastConfig())
	pse := session(t, pst)
	if err := pse.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}

	if got, err := pn.Wait(pse, 1, 50*time.Millisecond); err != nil || got != 0 {
		t.Fatalf("WAIT with no replicas = %d, %v", got, err)
	}

	rst := openStore(t, core.TestConfig())
	startReplica(t, rst, pn.Addr(), "r1", fastConfig())
	if got, err := pn.Wait(pse, 1, 10*time.Second); err != nil || got != 1 {
		t.Fatalf("WAIT 1 = %d, %v", got, err)
	}
	start := time.Now()
	if got, err := pn.Wait(pse, 2, 100*time.Millisecond); err != nil || got != 1 {
		t.Fatalf("WAIT 2 = %d, %v", got, err)
	}
	if time.Since(start) < 90*time.Millisecond {
		t.Fatal("WAIT 2 returned before its timeout")
	}
}

// TestReplicaReadOnlyAndPromote checks the -READONLY gate and that promotion
// opens writes and bumps the replication epoch.
func TestReplicaReadOnlyAndPromote(t *testing.T) {
	pst := openStore(t, core.TestConfig())
	pn := startPrimary(t, pst, fastConfig())
	pse := session(t, pst)
	if err := pse.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}

	rst := openStore(t, core.TestConfig())
	rn := startReplica(t, rst, pn.Addr(), "r1", fastConfig())
	if got, err := pn.Wait(pse, 1, 10*time.Second); err != nil || got != 1 {
		t.Fatalf("WAIT = %d, %v", got, err)
	}

	rse := session(t, rst)
	if err := rse.Put([]byte("x"), []byte("y")); !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("replica Put = %v, want ErrReadOnly", err)
	}
	if err := rse.Delete([]byte("k")); !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("replica Delete = %v, want ErrReadOnly", err)
	}
	if v, ok, err := rse.Get([]byte("k")); err != nil || !ok || string(v) != "v" {
		t.Fatalf("replica Get = %q,%v,%v", v, ok, err)
	}

	idBefore, epochBefore, _ := rst.ReplState()
	if err := rn.Promote(); err != nil {
		t.Fatal(err)
	}
	if rn.Role() != RolePrimary {
		t.Fatalf("role after promote = %s", rn.Role())
	}
	id, epoch, _ := rst.ReplState()
	if epoch != epochBefore+1 {
		t.Fatalf("epoch after promote = %d, want %d", epoch, epochBefore+1)
	}
	if id == idBefore || id == "" {
		t.Fatalf("repl ID after promote = %q, want a fresh lineage (was %q)", id, idBefore)
	}
	if err := rse.Put([]byte("x"), []byte("y")); err != nil {
		t.Fatalf("promoted Put = %v", err)
	}
}

// TestFailoverNoResurrection is the acceptance failover: the primary dies
// holding durable writes it never shipped; the replica is promoted; the old
// primary rejoins as a replica and must full-resync — every WAIT-acked write
// survives on the promoted node, and the old primary's unshipped writes are
// not resurrected.
func TestFailoverNoResurrection(t *testing.T) {
	pst := openStore(t, core.TestConfig())
	pn := startPrimary(t, pst, fastConfig())
	pse := session(t, pst)

	for i := 0; i < 100; i++ {
		if err := pse.Put([]byte(fmt.Sprintf("acked-%03d", i)), []byte("yes")); err != nil {
			t.Fatal(err)
		}
	}
	rst := openStore(t, core.TestConfig())
	rn := startReplica(t, rst, pn.Addr(), "r1", fastConfig())
	if got, err := pn.Wait(pse, 1, 10*time.Second); err != nil || got != 1 {
		t.Fatalf("WAIT = %d, %v", got, err)
	}

	// Partition the replica away, then write on the primary: durable locally,
	// never shipped, never acked.
	rn.Close()
	for i := 0; i < 40; i++ {
		if err := pse.Put([]byte(fmt.Sprintf("unacked-%03d", i)), []byte("no")); err != nil {
			t.Fatal(err)
		}
	}
	if err := pse.Flush(); err != nil {
		t.Fatal(err)
	}

	// Primary dies; stop its node first so no shipper touches the store
	// mid-wipe, then crash the store.
	pn.Close()
	pse.Release()
	pst.Crash()

	// Promote the survivor and serve writes from it.
	newPrimary := startPrimary(t, rst, fastConfig())
	if err := newPrimary.Promote(); err != nil {
		t.Fatal(err)
	}
	nse := session(t, rst)
	if err := nse.Put([]byte("post-failover"), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := nse.Flush(); err != nil {
		t.Fatal(err)
	}

	// Old primary recovers and rejoins as a replica. Its epoch predates the
	// promotion, so the handshake demands a full resync; the ResetStore hook
	// stands in for wiping the data directory.
	if err := pst.Recover(simclock.New(0)); err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	cfg.PrimaryAddr = newPrimary.Addr()
	cfg.ID = "old-primary"
	var reset bool
	cfg.ResetStore = func() (*core.Store, error) {
		reset = true
		fresh, err := core.Open(core.TestConfig())
		if err != nil {
			return nil, err
		}
		pst.Close()
		return fresh, nil
	}
	on, err := Start(pst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { on.Close() })
	if !reset {
		t.Fatal("old primary rejoined without a full reset")
	}
	ost := on.Store()
	if ost == pst {
		t.Fatal("node still fronts the diverged store")
	}
	t.Cleanup(func() { ost.Close() })

	if got, err := newPrimary.Wait(nse, 1, 10*time.Second); err != nil || got != 1 {
		t.Fatalf("WAIT on new primary = %d, %v", got, err)
	}
	ose := session(t, ost)
	assertParity(t, nse, ose)
	for i := 0; i < 40; i++ {
		if _, ok, _ := ose.Get([]byte(fmt.Sprintf("unacked-%03d", i))); ok {
			t.Fatalf("unacked-%03d resurrected after full resync", i)
		}
	}
	if _, ok, _ := ose.Get([]byte("post-failover")); !ok {
		t.Fatal("post-failover write missing on rejoined replica")
	}
}

// lazyReplica handshakes like a replica but never acks, pinning the
// primary's GC hold at its start LSN.
type lazyReplica struct {
	conn net.Conn
	acc  accept
}

func dialLazy(t *testing.T, addr, id string) *lazyReplica {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, frameHello, encodeHello(hello{Epoch: 0, Resume: 0, ID: id})); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(conn)
	if err != nil || typ != frameAccept {
		t.Fatalf("accept: type %d, %v", typ, err)
	}
	acc, err := decodeAccept(payload)
	if err != nil {
		t.Fatal(err)
	}
	return &lazyReplica{conn: conn, acc: acc}
}

// TestGCHoldForLaggingReplica asserts the log-GC coordination: while a
// replica that has acked nothing is connected, CompactLog cannot advance the
// log base past its start LSN; after it disconnects and HoldTimeout elapses,
// the hold is released and compaction reclaims the garbage.
func TestGCHoldForLaggingReplica(t *testing.T) {
	cfg := core.TestConfig()
	cfg.LogBytes = 1 << 20 // small segments so churn spans several
	st := openStore(t, cfg)
	rcfg := fastConfig()
	rcfg.HoldTimeout = 150 * time.Millisecond
	pn := startPrimary(t, st, rcfg)
	se := session(t, st)
	clk := simclock.New(0)

	lazy := dialLazy(t, pn.Addr(), "lazy")
	defer lazy.conn.Close()
	log := st.Log()
	base0 := log.Base()
	if lazy.acc.Start != base0 {
		t.Fatalf("lazy start = %d, want base %d", lazy.acc.Start, base0)
	}
	waitFor(t, "lazy replica registered", func() bool { return pn.ConnectedReplicas() == 1 })

	// Churn: overwrite the same keys so almost everything is garbage.
	val := make([]byte, 400)
	for round := 0; round < 8; round++ {
		for i := 0; i < 150; i++ {
			if err := se.Put([]byte(fmt.Sprintf("churn-%03d", i)), val); err != nil {
				t.Fatal(err)
			}
		}
		if err := se.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := st.CompactLog(clk, 1<<20); err != nil {
		t.Fatal(err)
	}
	if got := log.Base(); got != base0 {
		t.Fatalf("GC advanced base to %d past a connected replica's hold %d", got, base0)
	}
	if floor := log.GCFloor(); floor != base0 {
		t.Fatalf("GCFloor = %d, want %d", floor, base0)
	}

	// Disconnect. The hold must persist for HoldTimeout, then release.
	lazy.conn.Close()
	waitFor(t, "hold release after timeout", func() bool { return log.GCFloor() > base0 })
	if _, err := st.CompactLog(clk, 1<<20); err != nil {
		t.Fatal(err)
	}
	if got := log.Base(); got <= base0 {
		t.Fatalf("GC did not reclaim after hold release: base %d", got)
	}
}

// TestReconnectResumesIncrementally verifies that a replica that loses its
// connection resumes from its durable watermark (no full resync) while the
// primary retained its log, and catches up with the writes it missed.
func TestReconnectResumesIncrementally(t *testing.T) {
	pst := openStore(t, core.TestConfig())
	pn := startPrimary(t, pst, fastConfig())
	pse := session(t, pst)
	for i := 0; i < 50; i++ {
		if err := pse.Put([]byte(fmt.Sprintf("pre-%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	rst := openStore(t, core.TestConfig())
	rn := startReplica(t, rst, pn.Addr(), "r1", fastConfig())
	if got, err := pn.Wait(pse, 1, 10*time.Second); err != nil || got != 1 {
		t.Fatalf("WAIT = %d, %v", got, err)
	}
	syncsBefore := pn.c.fullSyncs.Load()

	// Sever the replica's connection out from under it; it should redial
	// and resume from its durable watermark.
	rn.mu.Lock()
	l := rn.link
	rn.mu.Unlock()
	l.mu.Lock()
	conn := l.conn
	l.mu.Unlock()
	conn.Close()

	for i := 0; i < 50; i++ {
		if err := pse.Put([]byte(fmt.Sprintf("post-%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if got, err := pn.Wait(pse, 1, 10*time.Second); err != nil || got != 1 {
		t.Fatalf("WAIT after reconnect = %d, %v", got, err)
	}
	if got := pn.c.fullSyncs.Load(); got != syncsBefore {
		t.Fatalf("reconnect triggered %d full resyncs", got-syncsBefore)
	}
	rse := session(t, rst)
	assertParity(t, pse, rse)
}

// TestRetargetUnrelatedPrimaryParks is the lineage regression: two unrelated
// primaries are both in their first lifetime, so their bare epoch counters
// collide, and the replica's resume LSN lies inside the second primary's
// retained log. Retargeting the replica must not pass the incremental-resume
// check — the random lineage ID differs — so the primary demands a full
// resync and the replica, holding diverged state with no reset hook, parks
// with NeedsReset instead of silently applying an unrelated LSN stream onto
// its existing data.
func TestRetargetUnrelatedPrimaryParks(t *testing.T) {
	pstA := openStore(t, core.TestConfig())
	pnA := startPrimary(t, pstA, fastConfig())
	pseA := session(t, pstA)
	for i := 0; i < 50; i++ {
		if err := pseA.Put([]byte(fmt.Sprintf("a-%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	rst := openStore(t, core.TestConfig())
	rn := startReplica(t, rst, pnA.Addr(), "r1", fastConfig())
	if got, err := pnA.Wait(pseA, 1, 10*time.Second); err != nil || got != 1 {
		t.Fatalf("WAIT = %d, %v", got, err)
	}

	pstB := openStore(t, core.TestConfig())
	pnB := startPrimary(t, pstB, fastConfig())
	pseB := session(t, pstB)
	for i := 0; i < 200; i++ {
		if err := pseB.Put([]byte(fmt.Sprintf("b-%03d", i)), []byte("w")); err != nil {
			t.Fatal(err)
		}
	}
	if err := pseB.Flush(); err != nil {
		t.Fatal(err)
	}

	// The trap must be armed for the test to mean anything: equal epoch
	// counters and a resume LSN inside B's retained log, so only the lineage
	// ID tells the histories apart.
	_, ea, resume := rst.ReplState()
	_, eb, _ := pstB.ReplState()
	if ea != eb {
		t.Fatalf("epochs differ (%d vs %d); the scenario needs colliding counters", ea, eb)
	}
	if logB := pstB.Log(); resume < logB.Base() || resume > logB.Tail() {
		t.Fatalf("resume %d outside B's log [%d, %d]; the scenario needs an in-range watermark",
			resume, logB.Base(), logB.Tail())
	}

	if err := rn.ReplicaOf(pnB.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "needs-reset latch", func() bool { return rn.Status().NeedsReset })

	// Nothing from B leaked into the replica, and A's replicated data is
	// intact.
	rse := session(t, rst)
	got := dump(t, rse)
	for k := range got {
		if strings.HasPrefix(k, "b-") {
			t.Fatalf("replica applied unrelated key %q", k)
		}
	}
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("a-%03d", i)
		if got[k] != "v" {
			t.Fatalf("replica lost key %q (have %q)", k, got[k])
		}
	}
}

// TestExportRangeProgress pins exportRange's no-livelock contract: however
// small the byte budget, every frame carries at least one record and advances
// the cursor, and the payload never exceeds MaxFramePayload.
func TestExportRangeProgress(t *testing.T) {
	st := openStore(t, core.TestConfig())
	se := session(t, st)
	for i := 0; i < 20; i++ {
		if err := se.Put([]byte(fmt.Sprintf("k-%03d", i)), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	if err := se.Flush(); err != nil {
		t.Fatal(err)
	}
	log := st.Log()
	clk := simclock.New(0)
	cursor, wm := log.Base(), log.MinNextLSN()
	total := 0
	for cursor < wm {
		payload, next, count, err := exportRange(log, clk, cursor, wm, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(payload) > MaxFramePayload {
			t.Fatalf("payload %d bytes exceeds MaxFramePayload", len(payload))
		}
		if next <= cursor {
			t.Fatalf("cursor stuck at %d (next %d)", cursor, next)
		}
		if count == 0 && next < wm {
			t.Fatalf("empty frame at cursor %d did not exhaust the range", cursor)
		}
		total += count
		cursor = next
	}
	if total != 20 {
		t.Fatalf("exported %d records, want 20", total)
	}
}
