package repl

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// validFrames returns one well-formed encoded frame of every type.
func validFrames() [][]byte {
	entries := appendEntriesHeader(nil, 100, 400, flagAckDurable)
	entries = appendRecord(entries, 100, []byte("alpha"), []byte("one"), false)
	entries = appendRecord(entries, 160, []byte("beta"), nil, true)
	entries = appendRecord(entries, 390, []byte("gamma"), bytes.Repeat([]byte("x"), 200), false)
	return [][]byte{
		appendFrame(nil, frameHello, encodeHello(hello{Epoch: 3, Resume: 8192, ID: "replica-1", ReplID: "4f2d1c0b9a87654321fedcba0123456789abcdef"})),
		appendFrame(nil, frameAccept, encodeAccept(accept{Epoch: 3, Start: 8192, Full: true, ReplID: "4f2d1c0b9a87654321fedcba0123456789abcdef"})),
		appendFrame(nil, frameEntries, entries),
		appendFrame(nil, frameAck, encodeAck(ack{Applied: 500, Durable: 400})),
		appendFrame(nil, framePing, encodePing(777, flagAckDurable)),
		appendFrame(nil, frameReject, encodeReject("diverged history")),
	}
}

func TestFrameRoundTrip(t *testing.T) {
	h := hello{Epoch: 7, Resume: 12345, ID: "node-a", ReplID: newReplID()}
	got, err := decodeHello(encodeHello(h))
	if err != nil || got != h {
		t.Fatalf("hello round trip: %+v, %v", got, err)
	}
	// A never-replicated node's empty lineage ID round-trips too.
	h.ReplID = ""
	if got, err = decodeHello(encodeHello(h)); err != nil || got != h {
		t.Fatalf("hello round trip (no replid): %+v, %v", got, err)
	}
	a := accept{Epoch: 7, Start: 4096, Full: true, ReplID: newReplID()}
	ga, err := decodeAccept(encodeAccept(a))
	if err != nil || ga != a {
		t.Fatalf("accept round trip: %+v, %v", ga, err)
	}
	// Oversized lineage IDs are rejected, not silently truncated.
	if _, err := decodeHello(encodeHello(hello{ID: "x", ReplID: string(make([]byte, maxReplIDLen+1))})); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized hello replid: %v not ErrBadFrame", err)
	}
	k := ack{Applied: 99, Durable: 98}
	gk, err := decodeAck(encodeAck(k))
	if err != nil || gk != k {
		t.Fatalf("ack round trip: %+v, %v", gk, err)
	}
	wm, fl, err := decodePing(encodePing(55, flagAckDurable))
	if err != nil || wm != 55 || fl != flagAckDurable {
		t.Fatalf("ping round trip: %d %d %v", wm, fl, err)
	}
	msg, err := decodeReject(encodeReject("nope"))
	if err != nil || msg != "nope" {
		t.Fatalf("reject round trip: %q %v", msg, err)
	}

	for _, raw := range validFrames() {
		typ, payload, err := readFrame(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("readFrame(%d): %v", typ, err)
		}
		if !bytes.Equal(appendFrame(nil, typ, payload), raw) {
			t.Fatalf("frame type %d did not round trip", typ)
		}
		if err := DecodeFrameBytes(raw); err != nil {
			t.Fatalf("DecodeFrameBytes type %d: %v", typ, err)
		}
	}
}

func TestEntriesRoundTrip(t *testing.T) {
	payload := appendEntriesHeader(nil, 1000, 2000, 0)
	payload = appendRecord(payload, 1000, []byte("k1"), []byte("v1"), false)
	payload = appendRecord(payload, 1500, []byte("k2"), nil, true)
	patchEntriesNext(payload, 2000)
	from, next, flags, recs, err := decodeEntries(payload)
	if err != nil {
		t.Fatal(err)
	}
	if from != 1000 || next != 2000 || flags != 0 || len(recs) != 2 {
		t.Fatalf("decoded %d %d %d %d records", from, next, flags, len(recs))
	}
	if recs[0].LSN != 1000 || string(recs[0].Key) != "k1" || string(recs[0].Value) != "v1" || recs[0].Tombstone {
		t.Fatalf("rec0 = %+v", recs[0])
	}
	if recs[1].LSN != 1500 || string(recs[1].Key) != "k2" || len(recs[1].Value) != 0 || !recs[1].Tombstone {
		t.Fatalf("rec1 = %+v", recs[1])
	}

	// An empty Entries frame (pure watermark advance) is legal.
	empty := appendEntriesHeader(nil, 2000, 2000, 0)
	if _, _, _, recs, err := decodeEntries(empty); err != nil || len(recs) != 0 {
		t.Fatalf("empty entries: %d recs, %v", len(recs), err)
	}
}

// TestEntriesAllOrNothing pins the torn-frame contract at the payload layer:
// structural violations reject the whole payload, never a prefix of it.
func TestEntriesAllOrNothing(t *testing.T) {
	base := appendEntriesHeader(nil, 100, 300, 0)
	base = appendRecord(base, 100, []byte("key"), []byte("value"), false)
	base = appendRecord(base, 200, []byte("key2"), []byte("value2"), false)

	// Every truncation of the record region must error — except at an exact
	// record boundary, where the shorter payload is structurally valid on its
	// own (the frame-layer checksum is what detects that kind of tear; see
	// TestFrameCorruptionRejected).
	rec1End := entriesHeader + recordHeader + len("key") + len("value")
	for n := entriesHeader + 1; n < len(base); n++ {
		if n == rec1End {
			continue
		}
		if _, _, _, recs, err := decodeEntries(base[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded %d records", n, len(recs))
		} else if !errors.Is(err, ErrBadFrame) {
			t.Fatalf("truncation to %d: %v not ErrBadFrame", n, err)
		}
	}

	corrupt := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), base...)
		mutate(b)
		return b
	}
	cases := map[string][]byte{
		"record LSN below range":  corrupt(func(b []byte) { b[entriesHeader] = 50; b[entriesHeader+1] = 0 }),
		"record flags invalid":    corrupt(func(b []byte) { b[entriesHeader+14] = 7 }),
		"record length overflows": corrupt(func(b []byte) { b[entriesHeader+10] = 0xff; b[entriesHeader+11] = 0xff }),
	}
	for name, b := range cases {
		if _, _, _, _, err := decodeEntries(b); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("%s: %v not ErrBadFrame", name, err)
		}
	}

	// Non-monotonic LSNs: swap the two records' order.
	swapped := appendEntriesHeader(nil, 100, 300, 0)
	swapped = appendRecord(swapped, 200, []byte("key2"), []byte("value2"), false)
	swapped = appendRecord(swapped, 100, []byte("key"), []byte("value"), false)
	if _, _, _, _, err := decodeEntries(swapped); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("non-monotonic LSNs: %v not ErrBadFrame", err)
	}
}

// TestFrameCorruptionRejected flips a bit at every byte position of every
// valid frame and requires a clean error — the checksum (or a structural
// check) must catch each one.
func TestFrameCorruptionRejected(t *testing.T) {
	for _, raw := range validFrames() {
		for i := range raw {
			b := append([]byte(nil), raw...)
			b[i] ^= 0x01
			if err := DecodeFrameBytes(b); err == nil {
				t.Fatalf("bit flip at byte %d of type-%d frame decoded cleanly", i, raw[4])
			}
		}
		// Truncations (torn writes) error too.
		for n := 0; n < len(raw); n++ {
			if err := DecodeFrameBytes(raw[:n]); err == nil {
				t.Fatalf("truncated type-%d frame (%d bytes) decoded cleanly", raw[4], n)
			}
		}
	}
}

func TestReadFrameShortStream(t *testing.T) {
	raw := appendFrame(nil, framePing, encodePing(1, 0))
	for n := 0; n < len(raw); n++ {
		_, _, err := readFrame(bytes.NewReader(raw[:n]))
		if err == nil {
			t.Fatalf("short stream of %d bytes decoded", n)
		}
		if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrBadFrame) {
			t.Fatalf("short stream of %d bytes: unexpected error %v", n, err)
		}
	}
}

// FuzzReplFrameDecode throws arbitrary bytes at the full frame decoder. The
// contract: never panic, never return records from a structurally invalid
// Entries payload (all-or-nothing), always fail cleanly on torn input.
func FuzzReplFrameDecode(f *testing.F) {
	for _, raw := range validFrames() {
		f.Add(raw)
		f.Add(raw[:len(raw)/2])
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, b []byte) {
		// Must not panic; error or nil are both fine.
		_ = DecodeFrameBytes(b)
	})
}
