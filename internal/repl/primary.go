package repl

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"chameleondb/internal/simclock"
)

// hub is the primary half of a node: it accepts replica connections, ships
// sealed log entries below the MinNextLSN watermark to each, tracks their
// acks, and pins log GC behind the slowest durable replica via named wlog
// holds.
type hub struct {
	n  *Node
	ln net.Listener

	mu     sync.Mutex
	peers  map[string]*peer // keyed by replica ID; includes held (disconnected) peers
	ackCh  chan struct{}    // closed and replaced on every durable-ack advance
	closed bool

	// waiters counts pending WAIT callers. While nonzero, senders stamp
	// flagAckDurable on outgoing frames so replicas flush and durably ack
	// immediately instead of on their own cadence.
	waiters atomic.Int64

	wg sync.WaitGroup
}

// peer is one replica, connected or recently disconnected but still holding
// its GC floor.
type peer struct {
	id     string
	conn   net.Conn      // nil while held
	notify chan struct{} // capacity 1; seal hook and WAIT prods poke it
	stopc  chan struct{}

	cursor  atomic.Int64 // next LSN the sender will ship
	applied atomic.Int64
	durable atomic.Int64

	holdTimer *time.Timer // pending hold release while disconnected
}

func holdKey(id string) string { return "replica:" + id }

func newHub(n *Node, addr string) (*hub, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &hub{
		n:     n,
		ln:    ln,
		peers: make(map[string]*peer),
		ackCh: make(chan struct{}),
	}, nil
}

// run starts the accept loop and wires the log's seal hook to the senders.
// Called once the node's store is final (Start's synchronous resync may have
// swapped it).
func (h *hub) run() {
	log := h.n.store().Log()
	log.SetSealHook(h.prodAll)
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		for {
			conn, err := h.ln.Accept()
			if err != nil {
				return
			}
			h.wg.Add(1)
			go func() {
				defer h.wg.Done()
				h.serve(conn)
			}()
		}
	}()
}

func (h *hub) close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	peers := make([]*peer, 0, len(h.peers))
	for _, p := range h.peers {
		peers = append(peers, p)
	}
	h.mu.Unlock()
	h.ln.Close()
	h.n.store().Log().SetSealHook(nil)
	for _, p := range peers {
		h.dropPeer(p, true)
	}
	h.wg.Wait()
}

// prodAll wakes every connected sender. Runs from the wlog seal hook (under
// an appender's mu), so it must never block: sends are non-blocking into
// capacity-1 channels.
func (h *hub) prodAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, p := range h.peers {
		if p.conn != nil {
			select {
			case p.notify <- struct{}{}:
			default:
			}
		}
	}
}

// serve performs the handshake for one inbound replica connection and, on
// success, runs its sender until the connection dies.
func (h *hub) serve(conn net.Conn) {
	p, err := h.handshake(conn)
	if err != nil {
		// Best-effort reject so the replica logs a reason instead of EOF.
		conn.SetWriteDeadline(time.Now().Add(time.Second))
		writeFrame(conn, frameReject, encodeReject(err.Error()))
		conn.Close()
		return
	}
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		h.readAcks(p, conn)
	}()
	h.sendLoop(p, conn)
}

// handshake reads the replica's Hello and decides between incremental resume
// and full resync. The GC hold is registered at 0 *before* reading Base, so
// no concurrent FreeBefore can slip between the decision and the hold: once
// the hold exists, Base cannot advance past it.
//
// Incremental resume is legal only when the replica's lineage ID and epoch
// both match ours (same primary lifetime — LSN → content below the ship
// watermark is immutable within one lifetime) and its watermark still lies
// inside our retained log. Anything else gets full=true: the replica wipes
// and replays our compacted prefix from Base, which reconstructs the full
// live state exactly like recovery does. Resuming across a GC'd gap would
// skip settled tombstones and resurrect deleted keys. The random lineage ID
// — not the bare epoch counter, which collides across unrelated primaries
// (every fresh one starts at 1) — is what stops a replica retargeted to a
// different or diverged primary, or a replica of a deposed primary, from
// resuming over an unrelated LSN stream whose epoch happens to match.
func (h *hub) handshake(conn net.Conn) (*peer, error) {
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, payload, err := h.read(conn)
	if err != nil {
		return nil, fmt.Errorf("hello: %w", err)
	}
	if typ != frameHello {
		return nil, fmt.Errorf("%w: expected hello, got type %d", ErrBadFrame, typ)
	}
	hl, err := decodeHello(payload)
	if err != nil {
		return nil, err
	}
	conn.SetReadDeadline(time.Time{})
	id := hl.ID
	if id == "" {
		id = conn.RemoteAddr().String()
	}

	st := h.n.store()
	log := st.Log()
	key := holdKey(id)

	h.mu.Lock()
	prev := h.peers[id]
	h.mu.Unlock()
	if prev != nil {
		// A reconnect replaces the old registration but inherits its hold —
		// releaseHold=false leaves the wlog floor in place across the swap.
		h.dropPeer(prev, false)
	}

	log.HoldGC(key, 0)
	replID, epoch, _ := st.ReplState()
	base := log.Base()
	tail := log.Tail()
	full := hl.ReplID != replID || hl.Epoch != epoch || hl.Resume < base || hl.Resume > tail
	start := hl.Resume
	if full {
		start = base
		h.n.c.fullSyncs.Add(1)
	}
	log.HoldGC(key, start)

	p := &peer{
		id:     id,
		conn:   conn,
		notify: make(chan struct{}, 1),
		stopc:  make(chan struct{}),
	}
	p.cursor.Store(start)
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		log.ReleaseGCHold(key)
		return nil, fmt.Errorf("hub closed")
	}
	h.peers[id] = p
	h.mu.Unlock()

	if err := h.writeTimed(conn, frameAccept, encodeAccept(accept{ReplID: replID, Epoch: epoch, Start: start, Full: full})); err != nil {
		h.dropPeer(p, true)
		return nil, err
	}
	return p, nil
}

// writeTimed writes one frame under cfg.WriteTimeout. A replica that is alive
// but has stopped reading stalls the sender in TCP backpressure; the deadline
// turns that into a write error, dropping the peer to the held state so its
// GC hold is bounded by HoldTimeout instead of pinning the log until it fills
// and every client write fails.
func (h *hub) writeTimed(conn net.Conn, typ byte, payload []byte) error {
	conn.SetWriteDeadline(time.Now().Add(h.n.cfg.WriteTimeout))
	err := h.write(conn, typ, payload)
	conn.SetWriteDeadline(time.Time{})
	return err
}

func (h *hub) write(conn net.Conn, typ byte, payload []byte) error {
	err := writeFrame(conn, typ, payload)
	if err == nil {
		h.n.c.framesSent.Add(1)
		h.n.c.bytesSent.Add(int64(headerLen + len(payload)))
	}
	return err
}

func (h *hub) read(conn net.Conn) (byte, []byte, error) {
	typ, payload, err := readFrame(conn)
	if err == nil {
		h.n.c.framesReceived.Add(1)
		h.n.c.bytesReceived.Add(int64(headerLen + len(payload)))
	}
	return typ, payload, err
}

// sendLoop ships log entries to one replica: catch up to the watermark, then
// block on seal notifications, falling back to heartbeat pings. Exits when
// the connection errors or the peer is stopped.
func (h *hub) sendLoop(p *peer, conn net.Conn) {
	log := h.n.store().Log()
	clk := simclock.New(0)
	hb := time.NewTimer(h.n.cfg.Heartbeat)
	defer hb.Stop()
	defer h.peerDisconnected(p)
	for {
		var flags byte
		if h.waiters.Load() > 0 {
			flags = flagAckDurable
		}
		cursor := p.cursor.Load()
		wm := log.MinNextLSN()
		if cursor < wm {
			payload, next, count, err := exportRange(log, clk, cursor, wm, h.n.cfg.MaxChunk, flags)
			if err != nil {
				return
			}
			if err := h.writeTimed(conn, frameEntries, payload); err != nil {
				return
			}
			h.n.c.entriesShipped.Add(int64(count))
			p.cursor.Store(next)
			continue
		}
		if !hb.Stop() {
			select {
			case <-hb.C:
			default:
			}
		}
		hb.Reset(h.n.cfg.Heartbeat)
		select {
		case <-p.notify:
		case <-hb.C:
			if err := h.writeTimed(conn, framePing, encodePing(wm, flags)); err != nil {
				return
			}
		case <-p.stopc:
			return
		}
	}
}

// readAcks consumes the replica's ack stream, advancing its watermarks and
// raising its GC hold to its durable LSN — the primary never frees a segment
// a connected replica has not durably applied past.
func (h *hub) readAcks(p *peer, conn net.Conn) {
	log := h.n.store().Log()
	for {
		typ, payload, err := h.read(conn)
		if err != nil {
			h.peerDisconnected(p)
			return
		}
		if typ != frameAck {
			h.peerDisconnected(p)
			return
		}
		a, err := decodeAck(payload)
		if err != nil {
			h.peerDisconnected(p)
			return
		}
		h.n.c.acksReceived.Add(1)
		p.applied.Store(a.Applied)
		if a.Durable > p.durable.Load() {
			p.durable.Store(a.Durable)
			log.HoldGC(holdKey(p.id), a.Durable)
			h.broadcastAck()
		}
	}
}

// broadcastAck wakes every waitDurable caller to re-check its target.
func (h *hub) broadcastAck() {
	h.mu.Lock()
	close(h.ackCh)
	h.ackCh = make(chan struct{})
	h.mu.Unlock()
}

// peerDisconnected transitions a peer to the held state: the connection is
// closed and forgotten but the GC hold stays for cfg.HoldTimeout, preserving
// the replica's chance to resume incrementally. The timer releases the hold
// (and the registration) if the replica has not reconnected by then.
func (h *hub) peerDisconnected(p *peer) {
	h.mu.Lock()
	if h.peers[p.id] != p || p.conn == nil {
		h.mu.Unlock()
		return
	}
	conn := p.conn
	p.conn = nil
	close(p.stopc)
	if !h.closed {
		p.holdTimer = time.AfterFunc(h.n.cfg.HoldTimeout, func() {
			h.expireHold(p)
		})
	}
	h.mu.Unlock()
	conn.Close()
	h.broadcastAck() // waiters must recount: a counted replica may be gone
}

// expireHold drops a disconnected peer whose HoldTimeout elapsed without a
// reconnect, releasing its wlog GC hold. The identity check makes a stale
// timer harmless: a reconnect replaced the registration with a new *peer.
// The release happens under h.mu (HoldGC/ReleaseGCHold take only the log
// mutex, so no lock-order cycle): released after unlocking, a reconnect
// landing in the window would register a fresh hold that this stale timer
// then strips, leaving log GC free to reclaim segments the new peer's sender
// has not shipped — which ScanRange would silently skip.
func (h *hub) expireHold(p *peer) {
	log := h.n.store().Log()
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.peers[p.id] != p || p.conn != nil {
		return
	}
	delete(h.peers, p.id)
	log.ReleaseGCHold(holdKey(p.id))
}

// dropPeer removes a peer immediately. releaseHold=false leaves the wlog hold
// in place for a successor registration (reconnect); true releases it
// (shutdown). The release only happens if p still owned the registration —
// and under h.mu, like expireHold — so a racing reconnect that already
// replaced the registration keeps its own hold.
func (h *hub) dropPeer(p *peer, releaseHold bool) {
	log := h.n.store().Log()
	h.mu.Lock()
	owned := h.peers[p.id] == p
	if owned {
		delete(h.peers, p.id)
	}
	if p.holdTimer != nil {
		p.holdTimer.Stop()
	}
	conn := p.conn
	if conn != nil {
		p.conn = nil
		close(p.stopc)
	}
	if releaseHold && owned {
		log.ReleaseGCHold(holdKey(p.id))
	}
	h.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// waitDurable blocks until want replicas have durably acknowledged target or
// the timeout expires, returning the count at return time. It prods every
// sender so replicas learn acks are wanted now (flagAckDurable) instead of on
// their own cadence.
func (h *hub) waitDurable(target int64, want int, timeout time.Duration) int {
	h.waiters.Add(1)
	defer h.waiters.Add(-1)
	h.prodAll()
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		h.mu.Lock()
		count := 0
		for _, p := range h.peers {
			if p.conn != nil && p.durable.Load() >= target {
				count++
			}
		}
		ch := h.ackCh
		h.mu.Unlock()
		if count >= want {
			return count
		}
		select {
		case <-ch:
		case <-deadline.C:
			return count
		}
	}
}

func (h *hub) connected() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, p := range h.peers {
		if p.conn != nil {
			n++
		}
	}
	return n
}

func (h *hub) peerStatus() []PeerStatus {
	h.mu.Lock()
	out := make([]PeerStatus, 0, len(h.peers))
	for _, p := range h.peers {
		out = append(out, PeerStatus{
			ID:        p.id,
			Connected: p.conn != nil,
			Cursor:    p.cursor.Load(),
			Applied:   p.applied.Load(),
			Durable:   p.durable.Load(),
		})
	}
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
