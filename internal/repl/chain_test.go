package repl

import (
	"fmt"
	"testing"
	"time"

	"chameleondb/internal/core"
	"chameleondb/internal/hotcache"
	"chameleondb/internal/kvstore"
	"chameleondb/internal/simclock"
)

// cachedNode is one chain member: a store fronted by a hot-key DRAM cache,
// with replicated applies invalidating the cache through Config.OnApply —
// exactly how chameleon-server wires a serving replica.
type cachedNode struct {
	st    *core.Store
	cache *hotcache.Cache
	node  *Node
	sess  kvstore.Session
}

func startCachedNode(t *testing.T, primaryAddr, id string) *cachedNode {
	t.Helper()
	st := openStore(t, core.TestConfig())
	cache := hotcache.New(256 << 10)
	cfg := fastConfig()
	cfg.Addr = "127.0.0.1:0" // every chain member can serve downstreams
	cfg.PrimaryAddr = primaryAddr
	cfg.ID = id
	cfg.OnApply = cache.Invalidate
	n, err := Start(st, cfg)
	if err != nil {
		t.Fatalf("start %s: %v", id, err)
	}
	t.Cleanup(func() { n.Close() })
	se := hotcache.Wrap(st, cache).NewSession(simclock.New(0))
	t.Cleanup(func() {
		if r, ok := se.(interface{ Release() error }); ok {
			r.Release()
		}
	})
	return &cachedNode{st: st, cache: cache, node: n, sess: se}
}

// mustGet reads k through the node's cache-fronted session.
func (cn *cachedNode) mustGet(t *testing.T, k string) (string, bool) {
	t.Helper()
	v, ok, err := cn.sess.Get([]byte(k))
	if err != nil {
		t.Fatalf("get %q: %v", k, err)
	}
	return string(v), ok
}

// waitChainDurable blocks until the downstream link has durably applied
// everything its upstream's log currently covers. The downstream watermark is
// in the upstream's LSN space, so the comparison is direct.
func waitChainDurable(t *testing.T, upstream *core.Store, down *Node, what string) {
	t.Helper()
	target := upstream.Log().MinNextLSN()
	waitFor(t, what, func() bool { return down.Status().DurableLSN >= target })
}

// TestChainedReplicasInvalidateCaches is the chain e2e: primary -> R1 -> R2,
// every node fronting its store with a hot-key DRAM cache. R1 both tails the
// primary and re-ships its applied stream to R2 off its own log's seal hook.
// The test proves the properties the chain must compose from per-link
// guarantees:
//   - data written at the primary reaches R2 through the intermediate hop;
//   - each hop's cache actually serves hits (the chain is measured warm, not
//     accidentally cold);
//   - replicated applies — which bypass the serving layer's sessions —
//     invalidate each hop's cache, so no node ever serves a pre-catch-up
//     value or a deleted key from DRAM.
func TestChainedReplicasInvalidateCaches(t *testing.T) {
	const keys = 100
	key := func(i int) string { return fmt.Sprintf("chain-%03d", i) }

	pst := openStore(t, core.TestConfig())
	pn := startPrimary(t, pst, fastConfig())
	pse := session(t, pst)
	for i := 0; i < keys; i++ {
		if err := pse.Put([]byte(key(i)), []byte("v1")); err != nil {
			t.Fatal(err)
		}
	}

	r1 := startCachedNode(t, pn.Addr(), "r1")
	r2 := startCachedNode(t, r1.node.Addr(), "r2")

	if got, err := pn.Wait(pse, 1, 10*time.Second); err != nil || got != 1 {
		t.Fatalf("WAIT on primary = %d, %v", got, err)
	}
	waitChainDurable(t, r1.st, r2.node, "R2 catch-up through R1")

	// Warm every cache: two passes, because TinyLFU admission deliberately
	// requires a second encounter (doorkeeper first). Then prove the caches
	// are live — a cold cache would make the staleness checks below vacuous.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < keys; i++ {
			for _, cn := range []*cachedNode{r1, r2} {
				if v, ok := cn.mustGet(t, key(i)); !ok || v != "v1" {
					t.Fatalf("%s pre-update read %q = %q,%v", cn.node.cfg.ID, key(i), v, ok)
				}
			}
		}
	}
	for _, cn := range []*cachedNode{r1, r2} {
		if s := cn.cache.Stats(); s.Hits == 0 {
			t.Fatalf("%s cache served no hits after warmup: %+v", cn.node.cfg.ID, s)
		}
	}

	// Overwrite everything at the primary and delete a slice of it. Both
	// mutations arrive at R1 and R2 as replicated applies, which bypass the
	// cache-wrapping sessions — only the OnApply hook stands between a
	// warmed cache and serving v1 (or a deleted key) forever.
	for i := 0; i < keys; i++ {
		if err := pse.Put([]byte(key(i)), []byte("v2")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < keys; i += 5 {
		if err := pse.Delete([]byte(key(i))); err != nil {
			t.Fatal(err)
		}
	}
	if got, err := pn.Wait(pse, 1, 10*time.Second); err != nil || got != 1 {
		t.Fatalf("WAIT after update = %d, %v", got, err)
	}
	waitChainDurable(t, r1.st, r2.node, "R2 convergence on v2")

	for _, cn := range []*cachedNode{r1, r2} {
		if s := cn.cache.Stats(); s.Invalidations == 0 {
			t.Fatalf("%s cache saw no invalidations from replicated applies", cn.node.cfg.ID)
		}
		for i := 0; i < keys; i++ {
			v, ok := cn.mustGet(t, key(i))
			if i%5 == 0 {
				if ok {
					t.Fatalf("%s served deleted key %q = %q from cache", cn.node.cfg.ID, key(i), v)
				}
				continue
			}
			if !ok || v != "v2" {
				t.Fatalf("%s stale read %q = %q,%v (want v2)", cn.node.cfg.ID, key(i), v, ok)
			}
		}
	}

	// The hop topology really is a chain: the primary sees one replica (R1),
	// R1 sees one (R2).
	if pn.ConnectedReplicas() != 1 || r1.node.ConnectedReplicas() != 1 {
		t.Fatalf("chain shape: primary=%d r1=%d connected replicas",
			pn.ConnectedReplicas(), r1.node.ConnectedReplicas())
	}
}
