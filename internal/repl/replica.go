package repl

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"chameleondb/internal/core"
	"chameleondb/internal/simclock"
)

// link is the replica half of a node: it dials the primary, hands over its
// durable watermark, and applies the shipped entry stream through the normal
// write path, acking durability back. It reconnects with backoff until
// stopped, and parks (latching Status.NeedsReset) if the primary demands a
// full resync that the local store cannot satisfy in place.
type link struct {
	n    *Node
	addr string

	stopc chan struct{}
	done  chan struct{}

	up      atomic.Bool
	applied atomic.Int64 // primary LSN applied up to
	durable atomic.Int64 // primary LSN durably applied and persisted up to

	mu   sync.Mutex
	conn net.Conn // live connection, severed by stop()
}

// startLink attaches a new link to the node and runs it. When syncFirst is
// set (only from Start), the first dial, handshake, and full-resync
// resolution happen synchronously — a store swap via cfg.ResetStore is only
// safe while nothing serves from the store, and Start returning is what opens
// it to serving. The stream itself then continues in the background. A
// primary that is not up yet is not an error — the background loop keeps
// retrying (without the reset privilege).
func (n *Node) startLink(addr string, syncFirst bool) {
	l := &link{
		n:     n,
		addr:  addr,
		stopc: make(chan struct{}),
		done:  make(chan struct{}),
	}
	n.mu.Lock()
	n.link = l
	n.mu.Unlock()

	if syncFirst {
		if conn, acc, ok := l.connect(false); ok {
			st, ok := l.prepare(acc, true)
			if !ok {
				conn.Close()
				go func() { // parked: restart with a clean directory clears it
					defer close(l.done)
					<-l.stopc
				}()
				return
			}
			go func() {
				defer close(l.done)
				if l.stream(conn, acc, st) {
					l.run(false)
				}
			}()
			return
		}
	}
	go func() {
		defer close(l.done)
		l.run(true)
	}()
}

// stop severs the connection and waits for the link's goroutine to finish
// its in-flight frame and exit.
func (l *link) stop() {
	close(l.stopc)
	l.mu.Lock()
	conn := l.conn
	l.conn = nil
	l.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	<-l.done
}

func (l *link) stopped() bool {
	select {
	case <-l.stopc:
		return true
	default:
		return false
	}
}

// run is the reconnect loop: dial, handshake, stream, back off, repeat.
// first suppresses the reconnect counter for the initial attempt.
func (l *link) run(first bool) {
	delay := l.n.cfg.ReconnectDelay
	for !l.stopped() {
		conn, acc, ok := l.connect(!first)
		first = false
		if ok {
			st, sok := l.prepare(acc, false)
			if !sok {
				conn.Close()
				return // parked on needs-reset
			}
			delay = l.n.cfg.ReconnectDelay
			if !l.stream(conn, acc, st) {
				return
			}
			continue
		}
		select {
		case <-l.stopc:
			return
		case <-time.After(delay):
		}
		if delay < 16*l.n.cfg.ReconnectDelay {
			delay *= 2
		}
	}
}

// connect dials the primary and performs the hello/accept handshake.
// countReconnect increments the reconnect metric on success (false for the
// link's very first attempt).
func (l *link) connect(countReconnect bool) (net.Conn, accept, bool) {
	st := l.n.store()
	replID, epoch, resume := st.ReplState()
	conn, err := net.DialTimeout("tcp", l.addr, l.n.cfg.DialTimeout)
	if err != nil {
		return nil, accept{}, false
	}
	id := l.n.cfg.ID
	if id == "" {
		id = conn.LocalAddr().String()
	}
	if err := l.write(conn, frameHello, encodeHello(hello{Epoch: epoch, Resume: resume, ID: id, ReplID: replID})); err != nil {
		conn.Close()
		return nil, accept{}, false
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, payload, err := l.read(conn)
	if err != nil || typ != frameAccept {
		conn.Close()
		return nil, accept{}, false
	}
	acc, err := decodeAccept(payload)
	if err != nil {
		conn.Close()
		return nil, accept{}, false
	}
	conn.SetReadDeadline(time.Time{})
	if countReconnect {
		l.n.c.reconnects.Add(1)
	}
	return conn, acc, true
}

// storeEmpty reports whether st holds no replicated or local writes: a fresh
// log (nothing ever appended, nothing ever freed) and a zero replication
// watermark. Only such a store may accept a full resync in place — anything
// else might hold keys whose tombstones the primary's GC already settled
// away, which replaying the compacted prefix would never delete.
func storeEmpty(st *core.Store) bool {
	log := st.Log()
	_, _, applied := st.ReplState()
	return applied == 0 && log.Base() == log.SegmentSize() && log.Tail() == log.SegmentSize()
}

// prepare resolves a full-resync demand. It returns the store to apply into,
// or false to park the link: the store has diverged state and either no
// ResetStore hook exists or the synchronous-start window has closed (a live
// server cannot have its store swapped out from under it).
func (l *link) prepare(acc accept, resetOK bool) (*core.Store, bool) {
	st := l.n.store()
	if !acc.Full {
		return st, true
	}
	l.n.c.fullSyncs.Add(1)
	if storeEmpty(st) {
		return st, true
	}
	if resetOK && l.n.cfg.ResetStore != nil {
		fresh, err := l.n.cfg.ResetStore()
		if err != nil {
			l.park()
			return nil, false
		}
		fresh.SetReadOnly(true)
		l.n.mu.Lock()
		l.n.st = fresh
		l.n.mu.Unlock()
		return fresh, true
	}
	l.park()
	return nil, false
}

func (l *link) park() {
	l.n.mu.Lock()
	l.n.needsReset = true
	l.n.mu.Unlock()
}

// stream applies one connection's frame stream until it errors or the link is
// stopped. It returns true to let the caller re-dial, false when the link
// must not reconnect (stopped).
func (l *link) stream(conn net.Conn, acc accept, st *core.Store) bool {
	sess, sok := st.NewSession(simclock.New(0)).(*core.Session)
	if !sok {
		conn.Close()
		return false
	}
	defer sess.Release()

	l.mu.Lock()
	if l.stopped() {
		l.mu.Unlock()
		conn.Close()
		return false
	}
	l.conn = conn
	l.mu.Unlock()

	l.applied.Store(acc.Start)
	l.durable.Store(acc.Start)
	l.up.Store(true)
	defer l.up.Store(false)
	defer func() {
		l.mu.Lock()
		if l.conn == conn {
			l.conn = nil
		}
		l.mu.Unlock()
		conn.Close()
	}()

	for {
		typ, payload, err := l.read(conn)
		if err != nil {
			return !l.stopped()
		}
		switch typ {
		case frameEntries:
			from, next, _, recs, err := decodeEntries(payload)
			if err != nil || from != l.applied.Load() {
				return !l.stopped()
			}
			onApply := l.n.cfg.OnApply
			for _, r := range recs {
				if err := sess.ApplyReplicated(r.Key, r.Value, r.Tombstone); err != nil {
					return !l.stopped()
				}
				if onApply != nil {
					onApply(r.Key)
				}
			}
			l.n.c.entriesApplied.Add(int64(len(recs)))
			l.applied.Store(next)
			// Durability cadence: flush and durably ack after every Entries
			// frame. The stream is already chunked at cfg.MaxChunk, so this
			// amortizes like the primary's own group commit.
			if !l.ackDurable(conn, sess, st, acc, next) {
				return !l.stopped()
			}
		case framePing:
			_, flags, err := decodePing(payload)
			if err != nil {
				return !l.stopped()
			}
			if flags&flagAckDurable != 0 {
				if !l.ackDurable(conn, sess, st, acc, l.applied.Load()) {
					return !l.stopped()
				}
			} else if !l.sendAck(conn) {
				return !l.stopped()
			}
		default:
			return !l.stopped()
		}
	}
}

// ackDurable makes everything applied so far durable — session flush first,
// then the persisted watermark, in that order, so the recorded watermark
// never runs ahead of the data it describes — and acks it to the primary.
// The persisted identity adopts the primary's lineage ID and epoch: from the
// first durable ack on, this store's history is the primary's.
// The AckGate hook can suppress the ack (never the flush): the crash-sweep
// harness wires the simulated device's power-failure latch here so a crashed
// replica cannot confirm durability the model has already discarded.
func (l *link) ackDurable(conn net.Conn, sess *core.Session, st *core.Store, acc accept, next int64) bool {
	if err := sess.Flush(); err != nil {
		return false
	}
	st.SetReplState(acc.ReplID, acc.Epoch, next)
	l.durable.Store(next)
	if gate := l.n.cfg.AckGate; gate != nil && !gate() {
		return true
	}
	l.n.c.acksSent.Add(1)
	return l.write(conn, frameAck, encodeAck(ack{Applied: l.applied.Load(), Durable: next})) == nil
}

// sendAck reports progress without forcing a flush.
func (l *link) sendAck(conn net.Conn) bool {
	if gate := l.n.cfg.AckGate; gate != nil && !gate() {
		return true
	}
	l.n.c.acksSent.Add(1)
	return l.write(conn, frameAck, encodeAck(ack{Applied: l.applied.Load(), Durable: l.durable.Load()})) == nil
}

func (l *link) write(conn net.Conn, typ byte, payload []byte) error {
	err := writeFrame(conn, typ, payload)
	if err == nil {
		l.n.c.framesSent.Add(1)
		l.n.c.bytesSent.Add(int64(headerLen + len(payload)))
	}
	return err
}

func (l *link) read(conn net.Conn) (byte, []byte, error) {
	typ, payload, err := readFrame(conn)
	if err == nil {
		l.n.c.framesReceived.Add(1)
		l.n.c.bytesReceived.Add(int64(headerLen + len(payload)))
	}
	return typ, payload, err
}
