// Package repl is ChameleonDB's replication subsystem: a primary streams its
// sealed wlog entries, in LSN order, over TCP to N replicas; replicas apply
// them through the same session write path recovery replay uses and serve
// reads from their epoch-published views while rejecting client writes.
//
// The protocol is deliberately small. Everything on the wire is a frame —
// length-prefixed, checksummed, typed — and the only stateful frame is
// ENTRIES, which carries a batch of log records tagged with the primary-LSN
// range [From, Next) it advances the replica's cursor across. A replica's
// position in the stream is therefore a single number (the primary LSN it has
// applied up to), which is what makes bootstrap, catch-up after a crash, WAIT
// acks, and the primary's GC holds all one mechanism. See DESIGN.md §8.
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"chameleondb/internal/xhash"
)

// Frame types.
const (
	// frameHello opens a replica->primary connection:
	// [8 epoch][8 resumeLSN][2 idLen][id][2 ridLen][rid]. epoch is the
	// replication epoch the replica last applied under (0 = never
	// replicated), resumeLSN the first primary LSN it has not durably
	// applied, rid the replication lineage ID it last applied under ("" =
	// never replicated).
	frameHello = byte(1)
	// frameAccept answers a Hello: [8 epoch][8 startLSN][1 full][2 ridLen]
	// [rid]. full means the replica's position is not resumable (lineage or
	// epoch mismatch, or the primary GC'd past resumeLSN) and the stream
	// restarts from the primary's log base — the replica must start from an
	// empty store. rid is the primary's lineage ID; the replica adopts it
	// with its first durable ack.
	frameAccept = byte(2)
	// frameEntries ships log records: [8 fromLSN][8 nextLSN][1 flags] then
	// records (see appendRecord). Applying the frame moves the replica's
	// cursor from fromLSN to nextLSN; the gap may exceed the records carried
	// (sealed-chunk padding, GC'd garbage) but records always lie inside it.
	frameEntries = byte(3)
	// frameAck reports replica progress: [8 appliedLSN][8 durableLSN].
	frameAck = byte(4)
	// framePing is the primary's heartbeat: [8 watermarkLSN][1 flags]. The
	// replica answers with an Ack.
	framePing = byte(5)
	// frameReject aborts a handshake with a reason: [2 len][msg].
	frameReject = byte(6)
)

// Entries/Ping flags.
const (
	// flagAckDurable asks the replica to flush and acknowledge durably now —
	// set while WAIT waiters are pending on the primary.
	flagAckDurable = byte(1)
)

const (
	frameMagic = uint32(0x4C505243) // "CRPL"
	headerLen  = 20

	// MaxFramePayload bounds any frame on the wire; the decoder rejects
	// larger claims before allocating.
	MaxFramePayload = 4 << 20

	recordHeader = 15 // [8 lsn][2 keyLen][4 valLen][1 flags]
)

// ErrBadFrame is wrapped by every decoder rejection: truncated, torn,
// bit-flipped, oversized, or structurally invalid frames all land here and
// never panic or yield a partial result.
var ErrBadFrame = errors.New("repl: bad frame")

func frameSum(typ byte, payload []byte) uint64 {
	s := xhash.Seeded(uint64(typ)<<40^uint64(len(payload)), payload)
	if s == 0 {
		s = 1
	}
	return s
}

// appendFrame encodes one frame onto buf and returns the extended slice.
func appendFrame(buf []byte, typ byte, payload []byte) []byte {
	var hdr [headerLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], frameMagic)
	hdr[4] = typ
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[12:20], frameSum(typ, payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// writeFrame encodes and writes one frame.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	_, err := w.Write(appendFrame(nil, typ, payload))
	return err
}

// readFrame reads exactly one frame from r, verifying the checksum. The
// payload is freshly allocated and owned by the caller.
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	return decodeFrameAfterHeader(hdr, r)
}

func decodeFrameAfterHeader(hdr [headerLen]byte, r io.Reader) (byte, []byte, error) {
	if binary.LittleEndian.Uint32(hdr[0:4]) != frameMagic {
		return 0, nil, fmt.Errorf("%w: bad magic %#x", ErrBadFrame, hdr[0:4])
	}
	typ := hdr[4]
	if typ < frameHello || typ > frameReject {
		return 0, nil, fmt.Errorf("%w: unknown type %d", ErrBadFrame, typ)
	}
	if hdr[5] != 0 || hdr[6] != 0 || hdr[7] != 0 {
		return 0, nil, fmt.Errorf("%w: nonzero reserved bytes", ErrBadFrame)
	}
	n := binary.LittleEndian.Uint32(hdr[8:12])
	if n > MaxFramePayload {
		return 0, nil, fmt.Errorf("%w: payload claims %d bytes", ErrBadFrame, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	if frameSum(typ, payload) != binary.LittleEndian.Uint64(hdr[12:20]) {
		return 0, nil, fmt.Errorf("%w: checksum mismatch on type %d", ErrBadFrame, typ)
	}
	return typ, payload, nil
}

// maxReplIDLen bounds the lineage ID on the wire; minted IDs are 40 hex
// chars, the bound rejects corrupt frames before allocating.
const maxReplIDLen = 64

// hello is the decoded Hello payload.
type hello struct {
	Epoch  int64
	Resume int64
	ID     string
	ReplID string
}

func encodeHello(h hello) []byte {
	b := make([]byte, 0, 20+len(h.ID)+len(h.ReplID))
	b = binary.LittleEndian.AppendUint64(b, uint64(h.Epoch))
	b = binary.LittleEndian.AppendUint64(b, uint64(h.Resume))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(h.ID)))
	b = append(b, h.ID...)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(h.ReplID)))
	return append(b, h.ReplID...)
}

func decodeHello(b []byte) (hello, error) {
	if len(b) < 20 {
		return hello{}, fmt.Errorf("%w: hello payload %d bytes", ErrBadFrame, len(b))
	}
	h := hello{
		Epoch:  int64(binary.LittleEndian.Uint64(b[0:8])),
		Resume: int64(binary.LittleEndian.Uint64(b[8:16])),
	}
	n := int(binary.LittleEndian.Uint16(b[16:18]))
	if len(b) < 20+n {
		return hello{}, fmt.Errorf("%w: hello id length %d in %d-byte payload", ErrBadFrame, n, len(b))
	}
	h.ID = string(b[18 : 18+n])
	rn := int(binary.LittleEndian.Uint16(b[18+n : 20+n]))
	if rn > maxReplIDLen || len(b) != 20+n+rn {
		return hello{}, fmt.Errorf("%w: hello repl ID length %d in %d-byte payload", ErrBadFrame, rn, len(b))
	}
	h.ReplID = string(b[20+n:])
	return h, nil
}

// accept is the decoded Accept payload.
type accept struct {
	Epoch  int64
	Start  int64
	Full   bool
	ReplID string
}

func encodeAccept(a accept) []byte {
	b := make([]byte, 0, 19+len(a.ReplID))
	b = binary.LittleEndian.AppendUint64(b, uint64(a.Epoch))
	b = binary.LittleEndian.AppendUint64(b, uint64(a.Start))
	full := byte(0)
	if a.Full {
		full = 1
	}
	b = append(b, full)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(a.ReplID)))
	return append(b, a.ReplID...)
}

func decodeAccept(b []byte) (accept, error) {
	if len(b) < 19 || b[16] > 1 {
		return accept{}, fmt.Errorf("%w: accept payload %d bytes", ErrBadFrame, len(b))
	}
	rn := int(binary.LittleEndian.Uint16(b[17:19]))
	if rn > maxReplIDLen || len(b) != 19+rn {
		return accept{}, fmt.Errorf("%w: accept repl ID length %d in %d-byte payload", ErrBadFrame, rn, len(b))
	}
	return accept{
		Epoch:  int64(binary.LittleEndian.Uint64(b[0:8])),
		Start:  int64(binary.LittleEndian.Uint64(b[8:16])),
		Full:   b[16] == 1,
		ReplID: string(b[19:]),
	}, nil
}

// ack is the decoded Ack payload.
type ack struct {
	Applied int64
	Durable int64
}

func encodeAck(a ack) []byte {
	b := make([]byte, 0, 16)
	b = binary.LittleEndian.AppendUint64(b, uint64(a.Applied))
	return binary.LittleEndian.AppendUint64(b, uint64(a.Durable))
}

func decodeAck(b []byte) (ack, error) {
	if len(b) != 16 {
		return ack{}, fmt.Errorf("%w: ack payload %d bytes", ErrBadFrame, len(b))
	}
	return ack{
		Applied: int64(binary.LittleEndian.Uint64(b[0:8])),
		Durable: int64(binary.LittleEndian.Uint64(b[8:16])),
	}, nil
}

func encodePing(watermark int64, flags byte) []byte {
	b := make([]byte, 0, 9)
	b = binary.LittleEndian.AppendUint64(b, uint64(watermark))
	return append(b, flags)
}

func decodePing(b []byte) (watermark int64, flags byte, err error) {
	if len(b) != 9 {
		return 0, 0, fmt.Errorf("%w: ping payload %d bytes", ErrBadFrame, len(b))
	}
	return int64(binary.LittleEndian.Uint64(b[0:8])), b[8], nil
}

func encodeReject(msg string) []byte {
	if len(msg) > 512 {
		msg = msg[:512]
	}
	b := binary.LittleEndian.AppendUint16(nil, uint16(len(msg)))
	return append(b, msg...)
}

func decodeReject(b []byte) (string, error) {
	if len(b) < 2 || len(b) != 2+int(binary.LittleEndian.Uint16(b[0:2])) {
		return "", fmt.Errorf("%w: reject payload %d bytes", ErrBadFrame, len(b))
	}
	return string(b[2:]), nil
}

// record is one shipped log entry.
type record struct {
	LSN       int64
	Key       []byte
	Value     []byte
	Tombstone bool
}

// entriesHeader is the fixed prefix of an Entries payload.
const entriesHeader = 17 // [8 fromLSN][8 nextLSN][1 flags]

// appendEntriesHeader starts an Entries payload.
func appendEntriesHeader(b []byte, from, next int64, flags byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(from))
	b = binary.LittleEndian.AppendUint64(b, uint64(next))
	return append(b, flags)
}

// patchEntriesNext rewrites the nextLSN field of an already-started Entries
// payload (the exporter learns the final cursor only after scanning).
func patchEntriesNext(b []byte, next int64) {
	binary.LittleEndian.PutUint64(b[8:16], uint64(next))
}

// appendRecord encodes one record onto an Entries payload.
func appendRecord(b []byte, lsn int64, key, value []byte, tombstone bool) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(lsn))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(key)))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(value)))
	flags := byte(0)
	if tombstone {
		flags = 1
	}
	b = append(b, flags)
	b = append(b, key...)
	return append(b, value...)
}

// decodeEntries validates a complete Entries payload and returns its cursor
// range and fully-decoded records. It is all-or-nothing: any structural
// violation — truncation, a record outside [from, next), non-monotonic LSNs,
// impossible lengths — errors without returning any records, so a torn or
// bit-flipped frame can never be half-applied. Records alias b.
func decodeEntries(b []byte) (from, next int64, flags byte, recs []record, err error) {
	if len(b) < entriesHeader {
		return 0, 0, 0, nil, fmt.Errorf("%w: entries payload %d bytes", ErrBadFrame, len(b))
	}
	from = int64(binary.LittleEndian.Uint64(b[0:8]))
	next = int64(binary.LittleEndian.Uint64(b[8:16]))
	flags = b[16]
	if from < 0 || next < from {
		return 0, 0, 0, nil, fmt.Errorf("%w: entries range [%d, %d)", ErrBadFrame, from, next)
	}
	pos := entriesHeader
	last := from - 1
	for pos < len(b) {
		if pos+recordHeader > len(b) {
			return 0, 0, 0, nil, fmt.Errorf("%w: truncated record header at %d", ErrBadFrame, pos)
		}
		lsn := int64(binary.LittleEndian.Uint64(b[pos : pos+8]))
		keyLen := int(binary.LittleEndian.Uint16(b[pos+8 : pos+10]))
		valLen := int(binary.LittleEndian.Uint32(b[pos+10 : pos+14]))
		rf := b[pos+14]
		if rf > 1 {
			return 0, 0, 0, nil, fmt.Errorf("%w: record flags %d", ErrBadFrame, rf)
		}
		if lsn < from || lsn >= next || lsn <= last {
			return 0, 0, 0, nil, fmt.Errorf("%w: record LSN %d outside (%d, %d)", ErrBadFrame, lsn, last, next)
		}
		pos += recordHeader
		if valLen > MaxFramePayload || pos+keyLen+valLen > len(b) {
			return 0, 0, 0, nil, fmt.Errorf("%w: record at LSN %d claims %d+%d bytes", ErrBadFrame, lsn, keyLen, valLen)
		}
		recs = append(recs, record{
			LSN:       lsn,
			Key:       b[pos : pos+keyLen],
			Value:     b[pos+keyLen : pos+keyLen+valLen],
			Tombstone: rf == 1,
		})
		pos += keyLen + valLen
		last = lsn
	}
	return from, next, flags, recs, nil
}

// DecodeFrameBytes decodes one frame from a raw byte buffer, including full
// payload validation for every typed payload. It exists for the fuzzer: the
// production path reads from a stream (readFrame) and validates payloads at
// the same call sites, but the fuzz target needs a single total function over
// arbitrary bytes.
func DecodeFrameBytes(b []byte) error {
	if len(b) < headerLen {
		return fmt.Errorf("%w: %d bytes", ErrBadFrame, len(b))
	}
	var hdr [headerLen]byte
	copy(hdr[:], b)
	typ, payload, err := decodeFrameAfterHeader(hdr, newSliceReader(b[headerLen:]))
	if err != nil {
		return err
	}
	switch typ {
	case frameHello:
		_, err = decodeHello(payload)
	case frameAccept:
		_, err = decodeAccept(payload)
	case frameEntries:
		_, _, _, _, err = decodeEntries(payload)
	case frameAck:
		_, err = decodeAck(payload)
	case framePing:
		_, _, err = decodePing(payload)
	case frameReject:
		_, err = decodeReject(payload)
	}
	return err
}

// sliceReader is a minimal io.Reader over a slice (bytes.Reader without the
// import weight in this hot decode path).
type sliceReader struct{ b []byte }

func newSliceReader(b []byte) *sliceReader { return &sliceReader{b} }

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}
