package bench

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"runtime"
	"strconv"
	"time"

	"chameleondb/internal/core"
	"chameleondb/internal/resp"
	"chameleondb/internal/server"
	"chameleondb/internal/simclock"
)

func init() {
	register("allocs", "Steady-state heap allocations per operation, embedded and over the wire", runAllocs)
}

// allocsWireDepth is the pipelined batch size the wire cases use: deep enough
// that per-batch costs (reply flush, group commit submission) amortize the
// way they do under a real pipelining client.
const allocsWireDepth = 16

// allocsMeasure runs f ops times after a warmup round and a GC, reading the
// global allocation counters around the loop. The counters cover every
// goroutine in the process — which is the point for the wire cases, where the
// serving goroutines do the work and the measuring loop is allocation-free by
// construction. A fixed op count (instead of testing.Benchmark's adaptive
// b.N) keeps the log-region footprint of the write cases bounded and the
// measurement deterministic.
func allocsMeasure(name string, ops int, f func() error) ([]string, error) {
	for i := 0; i < 64; i++ { // warm scratch buffers, pools, first-use paths
		if err := f(); err != nil {
			return nil, fmt.Errorf("%s warmup: %w", name, err)
		}
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	for i := 0; i < ops; i++ {
		if err := f(); err != nil {
			return nil, fmt.Errorf("%s op %d: %w", name, i, err)
		}
	}
	el := time.Since(t0)
	runtime.ReadMemStats(&m1)
	n := float64(ops)
	return []string{
		name,
		fmt.Sprintf("%.3f", float64(m1.Mallocs-m0.Mallocs)/n),
		fmt.Sprintf("%.1f", float64(m1.TotalAlloc-m0.TotalAlloc)/n),
		fmt.Sprintf("%.0f", float64(el.Nanoseconds())/n),
	}, nil
}

// runAllocs measures steady-state allocations per operation — the one number
// in this package that is machine-independent, which is why CI gates it with
// a hard ceiling instead of a baseline ratio. Embedded cases drive a Session
// directly (GetInto with a reused dst, Put); wire cases drive a live server
// over loopback TCP with a pre-encoded pipelined batch and an
// allocation-free client loop, so every counted allocation past the client's
// zero belongs to the serving stack: RESP decode, dispatch, engine call,
// reply encode, group commit.
func runAllocs(opt Options) ([]*Report, error) {
	opt = opt.withDefaults()
	rep := &Report{
		ID:      "allocs",
		Title:   "Heap allocations per op (steady state)",
		Columns: []string{"case", "allocs_op", "bytes_op", "ns_op"},
		Notes: []string{
			fmt.Sprintf("value=%dB wire-depth=%d; wire cases include client syscalls but zero client allocations", opt.ValueSize, allocsWireDepth),
			"allocs_op is machine-independent; CI enforces wire_get_hit and wire_set <= 2",
		},
	}

	embedded, err := runAllocsEmbedded(opt)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, embedded...)

	wire, err := runAllocsWire(opt)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, wire...)
	return []*Report{rep}, nil
}

func runAllocsEmbedded(opt Options) ([][]string, error) {
	cfg := core.TestConfig()
	cfg.MemTableSlots = 4096
	cfg.MaintenanceWorkers = 0
	s, err := core.Open(cfg)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	se := s.NewSession(simclock.New(0)).(*core.Session)
	key := []byte("allocs-bench-key")
	miss := []byte("allocs-bench-absent")
	val := make([]byte, opt.ValueSize)
	if err := se.Put(key, val); err != nil {
		return nil, err
	}
	dst := make([]byte, 0, opt.ValueSize+64)

	var rows [][]string
	row, err := allocsMeasure("embedded_get_hit", 100_000, func() error {
		_, ok, err := se.GetInto(key, dst)
		if err != nil || !ok {
			return fmt.Errorf("hit failed: ok=%v err=%v", ok, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	row, err = allocsMeasure("embedded_get_miss", 100_000, func() error {
		_, ok, err := se.GetInto(miss, dst)
		if err != nil || ok {
			return fmt.Errorf("miss failed: ok=%v err=%v", ok, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	// 100k single-key puts stay well inside TestConfig's log budget and, with
	// maintenance inline, never queue background work that would pollute the
	// counters.
	row, err = allocsMeasure("embedded_put", 100_000, func() error {
		return se.Put(key, val)
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)
	return rows, nil
}

func runAllocsWire(opt Options) ([][]string, error) {
	cfg := chameleonConfig(4096, opt.ValueSize)
	s, err := core.Open(cfg)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	key := []byte("allocs-wire-key")
	val := make([]byte, opt.ValueSize)
	loader := s.NewSession(simclock.New(0))
	if err := loader.Put(key, val); err != nil {
		return nil, err
	}
	if err := releaseSession(loader); err != nil {
		return nil, err
	}

	// No coalescing window: the single benchmark connection would only wait
	// the delay out, and the point here is allocation counting, not latency.
	srv := server.New(s, server.Config{Addr: "127.0.0.1:0", GroupCommitDelay: -1})
	if err := srv.Listen(); err != nil {
		return nil, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-serveErr
	}()

	nc, err := net.DialTimeout("tcp", srv.Addr().String(), 5*time.Second)
	if err != nil {
		return nil, err
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(10 * time.Minute))

	// Pre-encode one pipelined batch per case and its exact expected reply,
	// so the measurement loop is write-bytes / read-bytes and nothing else.
	var getReq, setReq bytes.Buffer
	w := resp.NewWriter(&getReq)
	for i := 0; i < allocsWireDepth; i++ {
		w.Command([]byte("GET"), key)
	}
	w.Flush()
	w = resp.NewWriter(&setReq)
	for i := 0; i < allocsWireDepth; i++ {
		w.Command([]byte("SET"), key, val)
	}
	w.Flush()
	getReply := bytes.Repeat([]byte("$"+strconv.Itoa(len(val))+"\r\n"+string(val)+"\r\n"), allocsWireDepth)
	setReply := bytes.Repeat([]byte("+OK\r\n"), allocsWireDepth)

	// 4000 batches of 16 = 64k ops per case; the SET case appends ~3 MB of
	// log, far inside the configured region.
	const batches = 4000
	runCase := func(name string, req, wantReply []byte) ([]string, error) {
		replyBuf := make([]byte, len(wantReply))
		row, err := allocsMeasure(name, batches, func() error {
			if _, err := nc.Write(req); err != nil {
				return err
			}
			if _, err := io.ReadFull(nc, replyBuf); err != nil {
				return err
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(replyBuf, wantReply) {
			return nil, fmt.Errorf("%s: unexpected reply %q", name, replyBuf)
		}
		// allocsMeasure normalized per batch; renormalize per op.
		for i := 1; i < len(row); i++ {
			v, perr := strconv.ParseFloat(row[i], 64)
			if perr != nil {
				return nil, perr
			}
			row[i] = fmt.Sprintf("%.3f", v/allocsWireDepth)
		}
		return row, nil
	}

	var rows [][]string
	row, err := runCase("wire_get_hit", getReq.Bytes(), getReply)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)
	row, err = runCase("wire_set", setReq.Bytes(), setReply)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)
	return rows, nil
}

// AllocsPerOp extracts the allocs_op value of the named case from an allocs
// report. The CI gate reads wire_get_hit and wire_set through this.
func AllocsPerOp(r *Report, name string) (float64, error) {
	col := -1
	for i, c := range r.Columns {
		if c == "allocs_op" {
			col = i
		}
	}
	if col < 0 {
		return 0, fmt.Errorf("allocs report has no allocs_op column")
	}
	for _, row := range r.Rows {
		if len(row) > col && row[0] == name {
			return strconv.ParseFloat(row[col], 64)
		}
	}
	return 0, fmt.Errorf("allocs report has no %q row", name)
}

// NetBenchPipelineGain extracts the netbench headline ratio the CI gate
// compares: throughput at the top connection count with the deepest pipeline
// over the same connections at depth 1. The ratio is what batching buys once
// per-command overheads (decode, dispatch, reply, group-commit submission)
// are amortized — machine-robust where raw kops is not, and the first number
// to fall if a per-command allocation or lock sneaks back into the hot path.
func NetBenchPipelineGain(r *Report) (int, float64, error) {
	maxConns := 0
	for _, row := range r.Rows {
		if len(row) < 4 {
			return 0, 0, fmt.Errorf("netbench row %v: too short", row)
		}
		conns, err := strconv.Atoi(row[0])
		if err != nil {
			return 0, 0, fmt.Errorf("netbench row %v: %w", row, err)
		}
		if conns > maxConns {
			maxConns = conns
		}
	}
	kopsAt := map[int]float64{}
	maxDepth := 0
	for _, row := range r.Rows {
		conns, _ := strconv.Atoi(row[0])
		if conns != maxConns {
			continue
		}
		depth, err1 := strconv.Atoi(row[1])
		kops, err2 := strconv.ParseFloat(row[3], 64)
		if err1 != nil || err2 != nil {
			return 0, 0, fmt.Errorf("netbench row %v: malformed", row)
		}
		kopsAt[depth] = kops
		if depth > maxDepth {
			maxDepth = depth
		}
	}
	base, ok1 := kopsAt[1]
	deep, ok2 := kopsAt[maxDepth]
	if !ok1 || !ok2 || maxDepth <= 1 || base <= 0 {
		return 0, 0, fmt.Errorf("netbench report lacks depth-1 and depth-%d rows at %d conns", maxDepth, maxConns)
	}
	return maxConns, deep / base, nil
}
