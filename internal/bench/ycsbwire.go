package bench

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"time"

	"chameleondb/internal/core"
	"chameleondb/internal/hotcache"
	"chameleondb/internal/server"
	"chameleondb/internal/simclock"
	"chameleondb/internal/wlog"
	"chameleondb/internal/ycsb"
)

func init() {
	register("ycsb", "YCSB A-F over the wire with the hot-key DRAM cache off/on/undersized", runYCSBWire)
}

// ycsbWirePhases is the measured phase order. The burst row reruns C with
// flash-crowd phases (steady traffic alternating with spikes onto the
// steady-state hot set) — the access pattern a read cache exists for.
var ycsbWirePhases = []struct {
	label string
	w     ycsb.Workload
	burst bool
}{
	{"A", ycsb.A, false},
	{"B", ycsb.B, false},
	{"C", ycsb.C, false},
	{"D", ycsb.D, false},
	{"F", ycsb.F, false},
	{"C+burst", ycsb.C, true},
}

const (
	ycsbWireDepth = 16 // pipeline window; amortizes syscalls so engine vs cache cost shows
	ycsbWireReps  = 3  // measured repetitions per cell; the best is reported
)

// ycsbCacheEntry approximates the cache's per-key DRAM cost at this value
// size (hotcache's accounted overhead plus key and value bytes).
func ycsbCacheEntry(valueSize int) int64 { return int64(64 + 8 + valueSize) }

// ycsbServer is one cache configuration's live serving stack.
type ycsbServer struct {
	name  string
	bytes int64
	store *core.Store
	cache *hotcache.Cache
	addr  string
	stop  func()
}

// runYCSBWire drives live chameleon servers over loopback with the YCSB wire
// driver in three cache configurations: off, sized for the zipfian head
// (~20% of the keyspace), and undersized by 32x so admission and eviction are
// under constant pressure. All three servers run side by side and every
// workload phase measures them back to back (best of ycsbWireReps runs), so
// machine-speed drift over the experiment's lifetime cannot masquerade as a
// configuration effect. The paper's evaluation stops at the engine; this
// experiment measures what a serving tier in front of it buys.
func runYCSBWire(opt Options) ([]*Report, error) {
	opt = opt.withDefaults()
	workers := opt.Threads
	if workers > 8 {
		workers = 8
	}
	if workers < 1 {
		workers = 1
	}
	onBytes := (opt.Keys / 5) * ycsbCacheEntry(opt.ValueSize)
	tinyBytes := onBytes / 32
	if tinyBytes < 8<<10 {
		tinyBytes = 8 << 10
	}
	rep := &Report{
		ID:    "ycsb",
		Title: "YCSB over loopback RESP: hot-key DRAM cache off vs sized vs undersized",
		Columns: []string{"cache", "workload", "conns", "wall_ms", "kops",
			"rd_p50_us", "rd_p99_us", "rd_p999_us", "wr_p99_us", "hit_pct"},
		Notes: []string{
			fmt.Sprintf("keys=%d ops/phase=%d value=%dB conns=%d depth=%d reps=%d GOMAXPROCS=%d",
				opt.Keys, opt.Ops, opt.ValueSize, workers, ycsbWireDepth, ycsbWireReps, runtime.GOMAXPROCS(0)),
			fmt.Sprintf("cache on=%dKiB tiny=%dKiB; latency is send->reply inside a depth-%d window",
				onBytes>>10, tinyBytes>>10, ycsbWireDepth),
			"C+burst alternates full-keyspace traffic with spikes onto the hottest 1% of ranks",
		},
	}

	var servers []*ycsbServer
	defer func() {
		for _, sv := range servers {
			sv.stop()
		}
	}()
	for _, cc := range []struct {
		name  string
		bytes int64
	}{{"off", 0}, {"on", onBytes}, {"tiny", tinyBytes}} {
		sv, err := startYCSBServer(opt, workers, cc.name, cc.bytes)
		if err != nil {
			return nil, fmt.Errorf("ycsb %s: %w", cc.name, err)
		}
		servers = append(servers, sv)
	}

	for _, ph := range ycsbWirePhases {
		rows, err := ycsbWirePhase(opt, workers, servers, ph.w, ph.label, ph.burst)
		if err != nil {
			return nil, fmt.Errorf("ycsb phase %s: %w", ph.label, err)
		}
		rep.Rows = append(rep.Rows, rows...)
	}
	for _, sv := range servers {
		attachMetrics(rep, sv.store)
	}
	return []*Report{rep}, nil
}

// startYCSBServer boots one cache configuration: store, in-process preload,
// and a RESP server wrapping the store with the given cache capacity.
func startYCSBServer(opt Options, workers int, name string, cacheBytes int64) (*ycsbServer, error) {
	cfg := chameleonConfig(opt.Keys, opt.ValueSize)
	// Every wire connection's session claims a private log segment (and a
	// released appender's partial segment is not refilled), so budget a
	// segment per connection this server will ever see — a warmup and
	// ycsbWireReps measured runs per phase — plus the measured phases' own
	// write volume (A and F are half writes), which lands on top of the
	// preload chameleonConfig sized for.
	headroom := int64((1+ycsbWireReps)*len(ycsbWirePhases)*workers+8)*wlog.DefaultSegmentSize +
		(1+ycsbWireReps)*opt.Ops*int64(40+opt.ValueSize)
	cfg.LogBytes += headroom
	cfg.ArenaBytes += headroom
	s, err := core.Open(cfg)
	if err != nil {
		return nil, err
	}
	loader := s.NewSession(simclock.New(0))
	val := make([]byte, opt.ValueSize)
	for i := int64(0); i < opt.Keys; i++ {
		if err := loader.Put(ycsb.Key(i), val); err != nil {
			s.Close()
			return nil, err
		}
	}
	if err := releaseSession(loader); err != nil {
		s.Close()
		return nil, err
	}

	cache := hotcache.New(cacheBytes)
	srv := server.New(s, server.Config{Addr: "127.0.0.1:0", Cache: cache})
	if err := srv.Listen(); err != nil {
		s.Close()
		return nil, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-serveErr
		s.Close()
	}
	return &ycsbServer{
		name: name, bytes: cacheBytes,
		store: s, cache: cache,
		addr: srv.Addr().String(), stop: stop,
	}, nil
}

// ycsbWirePhase measures one workload phase across ALL configurations with
// rep-level interleaving: after every server is quiesced and warmed, the
// measured runs round-robin off→on→tiny, ycsbWireReps times, and each server
// reports its best rep. A noisy machine drifts in multi-second epochs; cells
// measured back to back land in the same epoch, so an epoch cannot hand one
// configuration an advantage a neighboring configuration didn't get.
func ycsbWirePhase(opt Options, workers int, servers []*ycsbServer, w ycsb.Workload, label string, burst bool) ([][]string, error) {
	wcfg := ycsb.WireConfig{
		Workload:  w,
		Keys:      opt.Keys,
		Ops:       opt.Ops,
		Workers:   workers,
		Depth:     ycsbWireDepth,
		ValueSize: opt.ValueSize,
		Seed:      opt.Seed,
	}
	if burst {
		wcfg.BurstOps = 1000
		wcfg.SteadyOps = 4000
		wcfg.BurstFrac = 0.01
	}
	for _, sv := range servers {
		// Quiesce: flush memtables and settle log compaction so the previous
		// phase's maintenance debt is paid before this one starts, not
		// randomly during it.
		if err := sv.store.FlushAll(simclock.New(0)); err != nil {
			return nil, err
		}
		if _, err := sv.store.CompactLog(simclock.New(0), 1<<30); err != nil {
			return nil, err
		}
		// A full-length unmeasured warmup at a different seed: TinyLFU
		// admission is deliberately slow to fill (doorkeeper first, admission
		// on re-encounter), so the cache needs a couple of passes over the
		// traffic before its hit ratio — and the throughput it buys — reaches
		// steady state. The cache-off server gets the same warmup so its DRAM
		// structures are equally warm.
		warm := wcfg
		warm.Addr = sv.addr
		warm.Seed = opt.Seed + 7919
		if _, err := ycsb.RunWire(warm); err != nil {
			return nil, fmt.Errorf("%s warmup: %w", sv.name, err)
		}
	}
	best := make([]*ycsb.WireResult, len(servers))
	before := make([]cacheCounters, len(servers))
	for i, sv := range servers {
		before[i] = statsOf(sv)
	}
	for r := 0; r < ycsbWireReps; r++ {
		for i, sv := range servers {
			run := wcfg
			run.Addr = sv.addr
			res, err := ycsb.RunWire(run)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", sv.name, err)
			}
			if best[i] == nil || res.Kops() > best[i].Kops() {
				best[i] = res
			}
		}
	}
	rows := make([][]string, 0, len(servers))
	for i, sv := range servers {
		// Hit ratio over ALL reps, not just the best one: the op sequence is
		// seeded, so the combined ratio is stable run to run, which is what
		// lets the CI gate compare it; which rep wins on throughput is not.
		after := statsOf(sv)
		hit := "-"
		if sv.bytes > 0 {
			if lookups := (after.hits - before[i].hits) + (after.misses - before[i].misses); lookups > 0 {
				hit = fmt.Sprintf("%.1f", 100*float64(after.hits-before[i].hits)/float64(lookups))
			}
		}
		b := best[i]
		rows = append(rows, []string{
			sv.name,
			label,
			strconv.Itoa(workers),
			fmt.Sprintf("%d", b.Wall.Milliseconds()),
			fmt.Sprintf("%.1f", b.Kops()),
			fmt.Sprintf("%.1f", b.Reads.P50us),
			fmt.Sprintf("%.1f", b.Reads.P99us),
			fmt.Sprintf("%.1f", b.Reads.P999us),
			fmt.Sprintf("%.1f", b.Writes.P99us),
			hit,
		})
	}
	return rows, nil
}

// cacheCounters is the slice of cache counters the phase loop deltas.
type cacheCounters struct{ hits, misses int64 }

func statsOf(sv *ycsbServer) cacheCounters {
	st := sv.cache.Stats()
	return cacheCounters{hits: st.Hits, misses: st.Misses}
}

// YCSBCacheGain extracts the ycsb headline the CI gate compares: the sized
// cache's hit ratio (as a fraction) on the read-only zipfian workload C.
// The kops and p99 columns record the throughput gain for inspection, but
// they swing with machine noise; the hit ratio is deterministic for fixed
// flags (the workload, scramble, and admission policy are all seeded), so a
// drop means a real regression — admission stopped keeping the hot head
// resident, the interposition lost lookups, or invalidation grew spurious.
func YCSBCacheGain(r *Report) (int, float64, error) {
	for _, row := range r.Rows {
		if len(row) < 10 || row[0] != "on" || row[1] != "C" {
			continue
		}
		conns, err1 := strconv.Atoi(row[2])
		hitPct, err2 := strconv.ParseFloat(row[9], 64)
		if err1 != nil || err2 != nil {
			return 0, 0, fmt.Errorf("ycsb row %v: malformed", row)
		}
		return conns, hitPct / 100, nil
	}
	return 0, 0, fmt.Errorf("ycsb report lacks a cache-on workload-C row")
}
