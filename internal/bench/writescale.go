package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"chameleondb/internal/core"
	"chameleondb/internal/simclock"
	"chameleondb/internal/ycsb"
)

func init() {
	register("writescale", "Wall-clock put scaling across real writer goroutines (async maintenance pipeline)", runWriteScale)
}

// WriteScaleWorkerCounts is the sweep driven by the writescale experiment and
// by the CI regression gate.
var WriteScaleWorkerCounts = []int{1, 2, 4, 8}

// runWriteScale measures how put throughput scales with real concurrent
// writers when flushes and compactions run on the background maintenance
// pool instead of inline under the shard lock. Like readscale, every worker
// is a real goroutine (the virtual-time scheduler cannot observe lock
// contention) and the columns are wall-clock. Each round opens a fresh store
// with MaintenanceWorkers enabled, preloads the keyspace so updates carry
// steady compaction debt, and times the measured puts including each
// session's final Flush barrier — hiding the drain would credit the pipeline
// for work it merely deferred. The stall_ms column is the total wall-clock
// the round's puts spent in backpressure (slowdown sleeps plus stall waits).
//
// The checked-in BENCH_writepath.json is this experiment's output; CI re-runs
// it and fails if the top-end put-scaling speedup regresses by more than 10%
// (the ratio is compared, not absolute wall time, so the gate is portable
// across machines).
func runWriteScale(opt Options) ([]*Report, error) {
	opt = opt.withDefaults()
	rep := &Report{
		ID:      "writescale",
		Title:   "Wall-clock put throughput vs concurrent writers (real goroutines, background maintenance)",
		Columns: []string{"workers", "wall_ms", "mops", "speedup", "freezes", "stalls", "stall_ms"},
		Notes: []string{
			fmt.Sprintf("keys=%d ops=%d value=%dB GOMAXPROCS=%d maintenance_workers=%d",
				opt.Keys, opt.Ops, opt.ValueSize, runtime.GOMAXPROCS(0),
				core.DefaultMaintenanceWorkers(chameleonConfig(opt.Keys, opt.ValueSize).Shards)),
			"speedup is wall(1 worker)/wall(n workers) at constant total ops, Flush barrier included;",
			"stall_ms is total wall-clock puts spent in backpressure;",
			"CI gates on the final row's speedup, not on absolute wall time",
		},
	}

	var base time.Duration
	for _, n := range WriteScaleWorkerCounts {
		if n > opt.Threads {
			break
		}
		wall, s, err := writeScaleRound(opt, n)
		if err != nil {
			return nil, err
		}
		if n == 1 {
			base = wall
		}
		st := s.Stats()
		if st.InlineMaintenance != 0 {
			s.Close()
			return nil, fmt.Errorf("writescale: %d maintenance runs executed inline on the put path", st.InlineMaintenance)
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", wall.Milliseconds()),
			fmt.Sprintf("%.2f", float64(opt.Ops)/float64(wall.Nanoseconds())*1000),
			fmt.Sprintf("%.2f", float64(base)/float64(wall)),
			fmt.Sprintf("%d", st.MemFreezes),
			fmt.Sprintf("%d", st.PutSlowdowns+st.PutStalls),
			fmt.Sprintf("%d", s.PutStallLatency().Sum()/1e6),
		})
		if n == WriteScaleWorkerCounts[len(WriteScaleWorkerCounts)-1] || n == opt.Threads {
			attachMetrics(rep, s)
		}
		s.Close()
	}
	return []*Report{rep}, nil
}

// writeScaleRound opens a fresh async-maintenance store, preloads the
// keyspace through one session, then times opt.Ops update puts split across n
// writer goroutines, each ending with its session's Flush barrier.
func writeScaleRound(opt Options, n int) (time.Duration, *core.Store, error) {
	cfg := chameleonConfig(opt.Keys, opt.ValueSize)
	cfg.MaintenanceWorkers = core.DefaultMaintenanceWorkers(cfg.Shards)
	s, err := core.Open(cfg)
	if err != nil {
		return 0, nil, err
	}
	val := make([]byte, opt.ValueSize)
	loader := s.NewSession(simclock.New(0))
	for i := int64(0); i < opt.Keys; i++ {
		if err := loader.Put(ycsb.Key(i), val); err != nil {
			s.Close()
			return 0, nil, err
		}
	}
	if err := loader.Flush(); err != nil {
		s.Close()
		return 0, nil, err
	}
	if err := releaseSession(loader); err != nil {
		s.Close()
		return 0, nil, err
	}

	var (
		wg     sync.WaitGroup
		firstE atomic.Value
	)
	per := opt.Ops / int64(n)
	start := time.Now()
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			se := s.NewSession(simclock.New(0))
			defer releaseSession(se)
			rng := rand.New(rand.NewSource(opt.Seed + int64(w)*7919))
			for i := int64(0); i < per; i++ {
				if err := se.Put(ycsb.Key(rng.Int63n(opt.Keys)), val); err != nil {
					firstE.CompareAndSwap(nil, err)
					return
				}
			}
			if err := se.Flush(); err != nil {
				firstE.CompareAndSwap(nil, err)
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	if e := firstE.Load(); e != nil {
		s.Close()
		return 0, nil, e.(error)
	}
	return wall, s, nil
}

// WriteScaleSpeedup extracts the top-end put-scaling speedup from a
// writescale report — the number the CI regression gate compares against the
// checked-in baseline.
func WriteScaleSpeedup(rep *Report) (workers int, speedup float64, err error) {
	if rep.ID != "writescale" || len(rep.Rows) == 0 {
		return 0, 0, fmt.Errorf("bench: not a writescale report")
	}
	last := rep.Rows[len(rep.Rows)-1]
	if len(last) < 4 {
		return 0, 0, fmt.Errorf("bench: malformed writescale row %v", last)
	}
	if _, err := fmt.Sscanf(last[0], "%d", &workers); err != nil {
		return 0, 0, err
	}
	if _, err := fmt.Sscanf(last[3], "%f", &speedup); err != nil {
		return 0, 0, err
	}
	return workers, speedup, nil
}
