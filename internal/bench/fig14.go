package bench

import (
	"fmt"
	"runtime"

	"chameleondb/internal/kvstore"
	"chameleondb/internal/ycsb"
)

func init() {
	register("fig14tab5", "YCSB workloads: normalized throughput (Table 5 mixes)", runFig14)
}

// runFig14 reproduces Figure 14: the six YCSB workloads of Table 5 on every
// store, 16 threads, throughput normalized to Pmem-Hash. The shapes to
// reproduce: Dram-Hash highest everywhere except YCSB_D; Pmem-Hash worst on
// the write-heavy workloads; Pmem-LSM-NF worst on the read-heavy ones;
// ChameleonDB the best non-DRAM store throughout; the LSM stores tie for
// first on YCSB_D (recent keys hit the MemTable).
func runFig14(opt Options) ([]*Report, error) {
	opt = opt.withDefaults()
	rep := &Report{
		ID:      "fig14tab5",
		Title:   "YCSB throughput normalized to Pmem-Hash (absolute Mops/s for Pmem-Hash in last row)",
		Columns: []string{"store"},
	}
	for _, w := range ycsb.Workloads {
		rep.Columns = append(rep.Columns, string(w))
	}
	// Normalized per-workload against Pmem-Hash.
	results := make(map[StoreKind]map[ycsb.Workload]float64)
	for _, kind := range ComparisonSet {
		results[kind] = make(map[ycsb.Workload]float64)
		s, err := OpenStore(kind, opt)
		if err != nil {
			return nil, err
		}
		// Warm up with the full load (the paper warms with YCSB_LOAD), and
		// measure the load itself as YCSB_LOAD.
		loadDur, err := loadMeasured(s, opt, opt.Threads, nil)
		if err != nil {
			return nil, fmt.Errorf("%s load: %w", kind, err)
		}
		results[kind][ycsb.Load] = mopsVal(opt.Keys, loadDur)
		frontier := loadDur
		for _, w := range ycsb.Workloads[1:] {
			dur, err := runYCSBPhase(s, opt, w, frontier)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", kind, w, err)
			}
			frontier += dur
			results[kind][w] = mopsVal(ycsbPhaseOps(opt, w), dur)
		}
		s.Close()
		runtime.GC()
	}
	for _, kind := range ComparisonSet {
		row := []string{kind.String()}
		for _, w := range ycsb.Workloads {
			base := results[PmemHash][w]
			if base == 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.2f", results[kind][w]/base))
		}
		rep.Rows = append(rep.Rows, row)
	}
	abs := []string{"Pmem-Hash (Mops/s)"}
	for _, w := range ycsb.Workloads {
		abs = append(abs, fmt.Sprintf("%.2f", results[PmemHash][w]))
	}
	rep.Rows = append(rep.Rows, abs)
	rep.Notes = []string{"YCSB_E (range scan) excluded: hashed-key stores do not support scans (paper Section 3.4)"}
	return []*Report{rep}, nil
}

// YCSBResult is one workload's measured throughput (used by the
// chameleon-ycsb CLI).
type YCSBResult struct {
	Workload ycsb.Workload
	Mops     float64
}

// RunYCSB loads a store of the given kind and runs the listed workloads in
// order, returning virtual throughput for each.
func RunYCSB(kind StoreKind, opt Options, workloads []ycsb.Workload) ([]YCSBResult, error) {
	opt = opt.withDefaults()
	s, err := OpenStore(kind, opt)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	loadDur, err := loadMeasured(s, opt, opt.Threads, nil)
	if err != nil {
		return nil, err
	}
	var out []YCSBResult
	frontier := loadDur
	for _, w := range workloads {
		if w == ycsb.Load {
			out = append(out, YCSBResult{Workload: w, Mops: mopsVal(opt.Keys, loadDur)})
			continue
		}
		dur, err := runYCSBPhase(s, opt, w, frontier)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w, err)
		}
		frontier += dur
		out = append(out, YCSBResult{Workload: w, Mops: mopsVal(ycsbPhaseOps(opt, w), dur)})
	}
	return out, nil
}

// ycsbPhaseOps returns the operation count for a workload phase: YCSB_D is
// a smaller burst of reads for the most recently inserted keys, as in the
// paper (10K gets right after the load).
func ycsbPhaseOps(opt Options, w ycsb.Workload) int64 {
	if w != ycsb.D {
		return opt.Ops
	}
	ops := opt.Ops / 10
	if ops < 10000 {
		ops = 10000
	}
	return ops
}

// runYCSBPhase executes one workload phase over a warmed store.
func runYCSBPhase(s kvstore.Store, opt Options, w ycsb.Workload, start int64) (int64, error) {
	setConcurrency(s, opt.Threads)
	ops := ycsbPhaseOps(opt, w)
	per := ops / int64(opt.Threads)
	val := make([]byte, opt.ValueSize)
	g, err := workers(s, opt.Threads, start, func(worker int, se kvstore.Session) stepper {
		gen := ycsb.NewGenerator(w, opt.Keys, worker, opt.Threads, opt.Seed+int64(w[len(w)-1]))
		return countingStepper(per, func(i int64) error {
			op := gen.Next()
			switch op.Kind {
			case ycsb.OpRead:
				_, _, err := se.Get(op.Key)
				return err
			case ycsb.OpUpdate, ycsb.OpInsert:
				return se.Put(op.Key, val)
			case ycsb.OpReadModifyWrite:
				if _, _, err := se.Get(op.Key); err != nil {
					return err
				}
				return se.Put(op.Key, val)
			}
			return nil
		})
	})
	if err != nil {
		return 0, err
	}
	return g.Makespan(), nil
}
