package bench

import (
	"strings"
	"testing"
)

func tinyOpts() Options {
	return Options{Keys: 40_000, Ops: 40_000, Threads: 4, ValueSize: 8, Seed: 1}
}

// TestAllExperimentsRun executes every registered experiment at tiny scale:
// each must produce non-empty, well-formed reports.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			reports, err := e.Run(tinyOpts())
			if err != nil {
				t.Fatal(err)
			}
			if len(reports) == 0 {
				t.Fatal("no reports")
			}
			for _, r := range reports {
				if len(r.Columns) == 0 || len(r.Rows) == 0 {
					t.Fatalf("report %s is empty", r.ID)
				}
				for _, row := range r.Rows {
					if len(row) != len(r.Columns) {
						t.Fatalf("report %s: row %v has %d cells for %d columns", r.ID, row, len(row), len(r.Columns))
					}
				}
				var sb strings.Builder
				r.Print(&sb)
				if !strings.Contains(sb.String(), r.ID) {
					t.Fatalf("report rendering missing ID: %q", sb.String()[:80])
				}
			}
		})
	}
}

func TestLookupAndRegistry(t *testing.T) {
	if _, ok := Lookup("tab4"); !ok {
		t.Fatal("tab4 not registered")
	}
	if _, ok := Lookup("nonsense"); ok {
		t.Fatal("bogus experiment found")
	}
	ids := map[string]bool{}
	for _, e := range Experiments() {
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
		if e.Title == "" {
			t.Fatalf("experiment %s has no title", e.ID)
		}
	}
	for _, want := range []string{"fig1", "fig2", "fig3", "fig10", "fig11tab2", "fig12", "fig13tab3", "tab4", "fig14tab5", "fig15", "fig16", "fig17", "ablations", "gpmdumps", "fig6"} {
		if !ids[want] {
			t.Fatalf("experiment %s missing from registry", want)
		}
	}
}

func TestStoreKinds(t *testing.T) {
	for _, k := range ComparisonSet {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		s, err := OpenStore(k, tinyOpts())
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if s.Name() == "" {
			t.Fatalf("%s store has no name", k)
		}
		s.Close()
	}
	if _, err := OpenStore(StoreKind(99), tinyOpts()); err == nil {
		t.Fatal("bogus store kind accepted")
	}
}

func TestSweep(t *testing.T) {
	got := sweep(16)
	want := []int{1, 2, 4, 8, 16}
	if len(got) != len(want) {
		t.Fatalf("sweep(16) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sweep(16) = %v", got)
		}
	}
	got = sweep(6)
	if got[len(got)-1] != 6 {
		t.Fatalf("sweep(6) = %v, must end at 6", got)
	}
}

func TestWindowedP99(t *testing.T) {
	var samples []sample
	for i := int64(0); i < 1000; i++ {
		samples = append(samples, sample{at: i, lat: 100})
	}
	samples[550].lat = 9999 // spike lands in window 5 (at 550/1001*10)
	p := windowedP99(samples, 1000, 10)
	if len(p) != 10 {
		t.Fatalf("got %d windows", len(p))
	}
	if p[5] != 9999 {
		t.Fatalf("spike window p99 = %d", p[5])
	}
	if p[0] != 100 {
		t.Fatalf("quiet window p99 = %d", p[0])
	}
	if windowedP99(nil, 0, 4) != nil {
		t.Fatal("empty samples should give nil")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	d := DefaultOptions()
	if o != d {
		t.Fatalf("withDefaults() = %+v, want %+v", o, d)
	}
	o = Options{Keys: 5}.withDefaults()
	if o.Keys != 5 || o.Threads != d.Threads {
		t.Fatalf("partial defaults broken: %+v", o)
	}
}
