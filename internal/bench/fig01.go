package bench

import (
	"fmt"

	"chameleondb/internal/device"
	"chameleondb/internal/simclock"
)

func init() {
	register("fig1", "Random write bandwidth on Optane Pmem vs access size and thread count", runFig1)
}

// runFig1 reproduces Figure 1: ntstore+sfence writes of 8 B to 128 KB at
// 256 B-aligned random offsets with 1..16 threads. The shape to reproduce:
// bandwidth is crippled below the 256 B access unit (each doubling of write
// size up to 256 B roughly doubles throughput), peaks around 4 threads, and
// degrades beyond that from iMC contention.
func runFig1(opt Options) ([]*Report, error) {
	opt = opt.withDefaults()
	sizes := []int64{8, 16, 32, 64, 128, 256, 1024, 4096, 32768, 131072}
	threadCounts := []int{1, 2, 4, 8, 16}

	rep := &Report{
		ID:      "fig1",
		Title:   "Random ntstore bandwidth (GB/s), rows = access size",
		Columns: []string{"size(B)"},
		Notes: []string{
			"write unit is 256 B: sub-unit writes pay read-modify-write",
			"peak at ~4 threads, decline beyond = iMC contention",
		},
	}
	for _, tc := range threadCounts {
		rep.Columns = append(rep.Columns, fmt.Sprintf("%dthr", tc))
	}

	const regionBytes = int64(1) << 30
	for _, size := range sizes {
		row := []string{fmt.Sprintf("%d", size)}
		for _, tc := range threadCounts {
			dev := device.New(device.OptanePmem)
			dev.SetConcurrency(tc)
			g := simclock.NewGroup(tc, 0)
			// Enough writes per thread to saturate the pipe. Workers are
			// interleaved round-robin so their pipe reservations overlap in
			// virtual time the way concurrent threads' would.
			perThread := int64(2000)
			rngs := make([]uint64, tc)
			for w := range rngs {
				rngs[w] = uint64(opt.Seed) + uint64(w)*2654435761
			}
			var total int64
			for i := int64(0); i < perThread; i++ {
				for w := 0; w < tc; w++ {
					rngs[w] = rngs[w]*6364136223846793005 + 1442695040888963407
					// 256 B-aligned random offsets, as in the paper's setup.
					off := int64(rngs[w]%uint64(regionBytes-size)) &^ 255
					dev.WritePersist(g.Clock(w), off, size)
					total += size
				}
			}
			row = append(row, gbps(total, g.Makespan()))
		}
		rep.Rows = append(rep.Rows, row)
	}
	return []*Report{rep}, nil
}
