package bench

import (
	"container/heap"

	"chameleondb/internal/kvstore"
	"chameleondb/internal/simclock"
)

// The harness simulates N concurrent workers with a conservative
// discrete-event loop: every worker is a stepper that performs one operation
// per call, and the scheduler always advances the worker with the smallest
// virtual clock. This keeps the workers' timeline reservations interleaved
// in virtual-time order — running them as real goroutines would let a worker
// that happens to run first in wall-clock time book the device pipes far
// into the virtual future, serializing the phase and destroying the
// parallelism being measured. The event loop is also deterministic, which
// real goroutines are not.

// stepper performs one operation; it returns false when the worker is done.
type stepper func() (more bool, err error)

type workerHeap struct {
	clocks []*simclock.Clock
	ids    []int
}

func (h workerHeap) Len() int { return len(h.ids) }
func (h workerHeap) Less(i, j int) bool {
	ci, cj := h.clocks[h.ids[i]].Now(), h.clocks[h.ids[j]].Now()
	if ci != cj {
		return ci < cj
	}
	return h.ids[i] < h.ids[j]
}
func (h workerHeap) Swap(i, j int) { h.ids[i], h.ids[j] = h.ids[j], h.ids[i] }
func (h *workerHeap) Push(x any)   { h.ids = append(h.ids, x.(int)) }
func (h *workerHeap) Pop() any {
	old := h.ids
	n := len(old)
	x := old[n-1]
	h.ids = old[:n-1]
	return x
}

// workers simulates `threads` concurrent workers over the store, each built
// by mk with its own session. All clocks start at `start`; the returned
// group's makespan is the phase's virtual duration.
func workers(s kvstore.Store, threads int, start int64, mk func(w int, se kvstore.Session) stepper) (_ *simclock.Group, err error) {
	g := simclock.NewGroup(threads, start)
	sessions := make([]kvstore.Session, threads)
	steps := make([]stepper, threads)
	drained := make([]bool, threads)
	for w := 0; w < threads; w++ {
		sessions[w] = s.NewSession(g.Clock(w))
		steps[w] = mk(w, sessions[w])
	}
	// Every session must be drained on every exit path: a stepper error
	// abandons the remaining workers, and an abandoned session's half-full
	// batch chunk would pin the log's MinNextLSN watermark (and thus every
	// shard's recovery watermark) for the rest of the run. Release detaches
	// the appender entirely where the session supports it; Flush is the
	// fallback. The first drain error surfaces unless a stepper already
	// failed.
	defer func() {
		for w, se := range sessions {
			if drained[w] {
				continue
			}
			var derr error
			if rel, ok := se.(interface{ Release() error }); ok {
				derr = rel.Release()
			} else {
				derr = se.Flush()
			}
			if err == nil {
				err = derr
			}
		}
	}()
	h := &workerHeap{clocks: make([]*simclock.Clock, threads)}
	for w := 0; w < threads; w++ {
		h.clocks[w] = g.Clock(w)
		h.ids = append(h.ids, w)
	}
	heap.Init(h)
	for h.Len() > 0 {
		w := h.ids[0]
		more, serr := steps[w]()
		if serr != nil {
			return g, serr
		}
		if more {
			heap.Fix(h, 0)
			continue
		}
		heap.Pop(h)
		// Flush the finished worker's session immediately: a retired
		// worker must not hold the watermark back while the remaining
		// workers keep running.
		drained[w] = true
		if err := sessions[w].Flush(); err != nil {
			return g, err
		}
	}
	return g, nil
}

// countingStepper wraps a per-op body into a stepper running n operations.
func countingStepper(n int64, body func(i int64) error) stepper {
	i := int64(0)
	return func() (bool, error) {
		if i >= n {
			return false, nil
		}
		if err := body(i); err != nil {
			return false, err
		}
		i++
		return i < n, nil
	}
}
