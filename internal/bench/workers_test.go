package bench

import (
	"errors"
	"fmt"
	"testing"

	"chameleondb/internal/core"
	"chameleondb/internal/kvstore"
)

// TestWorkersDrainSessionsOnError is the regression for the appender leak: a
// stepper error used to abandon every other worker's session un-flushed,
// leaving their half-full batch chunks pinning the log's MinNextLSN watermark
// (and with it every shard's recovery watermark) for the rest of the run.
func TestWorkersDrainSessionsOnError(t *testing.T) {
	cfg := core.TestConfig()
	s, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	boom := errors.New("boom")
	_, werr := workers(s, 4, 0, func(w int, se kvstore.Session) stepper {
		i := 0
		return func() (bool, error) {
			// Every worker appends a few entries; worker 2 then fails while
			// the others still have more to do.
			if w == 2 && i == 3 {
				return false, boom
			}
			i++
			if err := se.Put([]byte(fmt.Sprintf("w%d-%04d", w, i)), []byte("v")); err != nil {
				return false, err
			}
			return i < 100, nil
		}
	})
	if !errors.Is(werr, boom) {
		t.Fatalf("workers err = %v, want the stepper error", werr)
	}
	// All sessions must have been drained: no appender may still hold the
	// recovery watermark below the log tail.
	log := s.Log()
	if got, tail := log.MinNextLSN(), log.Tail(); got != tail {
		t.Errorf("MinNextLSN = %d, Tail = %d: a session still pins the watermark", got, tail)
	}
}

// TestWorkersDrainOnSuccess checks the normal path still flushes every
// retiring worker (the pre-existing behaviour the fix must not regress).
func TestWorkersDrainOnSuccess(t *testing.T) {
	cfg := core.TestConfig()
	s, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	g, err := workers(s, 3, 0, func(w int, se kvstore.Session) stepper {
		return countingStepper(50, func(i int64) error {
			return se.Put([]byte(fmt.Sprintf("w%d-%04d", w, i)), []byte("v"))
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.Makespan() <= 0 {
		t.Error("zero makespan for non-empty phase")
	}
	log := s.Log()
	if got, tail := log.MinNextLSN(), log.Tail(); got != tail {
		t.Errorf("MinNextLSN = %d, Tail = %d after clean finish", got, tail)
	}
	if st := s.Stats(); st.Puts != 150 {
		t.Errorf("Puts = %d, want 150", st.Puts)
	}
}
