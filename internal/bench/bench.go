// Package bench regenerates every table and figure of the ChameleonDB
// paper's evaluation (Section 3). Each experiment builds the stores it
// needs at a laptop-scale geometry (EXPERIMENTS.md records the scaling),
// drives them with worker goroutines over virtual-time sessions, and prints
// the same rows or series the paper reports. Absolute numbers come from the
// simulated device model; the reproduction target is the shape — who wins,
// by what factor, where crossovers fall.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"chameleondb/internal/baselines/dramhash"
	"chameleondb/internal/baselines/pmemhash"
	"chameleondb/internal/baselines/pmemlsm"
	"chameleondb/internal/core"
	"chameleondb/internal/device"
	"chameleondb/internal/histogram"
	"chameleondb/internal/kvstore"
	"chameleondb/internal/obs"
)

// Options tune an experiment run.
type Options struct {
	// Keys is the dataset size (the paper loads 1 billion; the default
	// laptop scale is 1 million).
	Keys int64
	// ValueSize is the value size in bytes (the paper's default is 8).
	ValueSize int
	// Threads is the maximum worker count (the paper's machine has 16
	// hyperthreads; thread sweeps go 1..Threads).
	Threads int
	// Ops is the measured-phase operation count (requests after loading).
	Ops int64
	// Seed makes runs reproducible.
	Seed int64
}

// DefaultOptions returns the laptop-scale defaults.
func DefaultOptions() Options {
	return Options{Keys: 1_000_000, ValueSize: 8, Threads: 16, Ops: 1_000_000, Seed: 1}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.Keys <= 0 {
		o.Keys = d.Keys
	}
	if o.ValueSize <= 0 {
		o.ValueSize = d.ValueSize
	}
	if o.Threads <= 0 {
		o.Threads = d.Threads
	}
	if o.Ops <= 0 {
		o.Ops = d.Ops
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// Report is one regenerated table or figure series.
type Report struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
	// Metrics is the store's observability snapshot at the end of the
	// experiment phase, when the store exposes a registry (chameleon-bench
	// -json emits it into the figure JSON).
	Metrics []obs.Snapshot `json:"metrics,omitempty"`
}

// Print renders the report as an aligned text table.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(r.Columns, "\t"))
	for _, row := range r.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// StoreKind identifies a store under evaluation.
type StoreKind int

// The paper's comparison set (Section 3.2).
const (
	Chameleon StoreKind = iota
	PmemLSMPinK
	PmemLSMNF
	PmemLSMF
	PmemHash
	DramHash
)

// ComparisonSet is the store order used in the paper's tables.
var ComparisonSet = []StoreKind{Chameleon, PmemLSMPinK, PmemLSMNF, PmemLSMF, PmemHash, DramHash}

func (k StoreKind) String() string {
	switch k {
	case Chameleon:
		return "ChameleonDB"
	case PmemLSMPinK:
		return "Pmem-LSM-PinK"
	case PmemLSMNF:
		return "Pmem-LSM-NF"
	case PmemLSMF:
		return "Pmem-LSM-F"
	case PmemHash:
		return "Pmem-Hash"
	case DramHash:
		return "Dram-Hash"
	}
	return "unknown"
}

// chameleonConfig returns the bench-scale ChameleonDB geometry: the Table 1
// proportions (4 levels, ratio 4, randomized 0.65-0.85 load factors) with
// shard count and table sizes shrunk so `keys` keys exercise the full level
// hierarchy — the ABI covers the upper ~quarter of the index, most gets land
// in the last level, exactly as at paper scale.
func chameleonConfig(keys int64, valueSize int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Shards = 64
	cfg.MemTableSlots = 64
	cfg.ABISlots = 0 // derive from geometry
	// 24 B log-entry header plus a ~16 B key.
	entry := int64(40 + valueSize)
	logNeed := 6 * keys * entry
	if logNeed < 16<<20 {
		logNeed = 16 << 20
	}
	idxNeed := 24*keys*16 + int64(cfg.Shards)<<16
	if idxNeed < 64<<20 {
		idxNeed = 64 << 20
	}
	cfg.LogBytes = logNeed
	cfg.ArenaBytes = logNeed + idxNeed
	return cfg
}

// OpenStore builds a store of the given kind sized for the options.
func OpenStore(kind StoreKind, opt Options) (kvstore.Store, error) {
	switch kind {
	case Chameleon:
		return core.Open(chameleonConfig(opt.Keys, opt.ValueSize))
	case PmemLSMPinK:
		return pmemlsm.Open(chameleonConfig(opt.Keys, opt.ValueSize), pmemlsm.PinK)
	case PmemLSMNF:
		return pmemlsm.Open(chameleonConfig(opt.Keys, opt.ValueSize), pmemlsm.NF)
	case PmemLSMF:
		return pmemlsm.Open(chameleonConfig(opt.Keys, opt.ValueSize), pmemlsm.F)
	case PmemHash:
		cfg := pmemhash.DefaultConfig()
		cfg.Stripes = 64
		cfg.InitialDepth = 2
		entry := int64(40 + opt.ValueSize)
		cfg.LogBytes = 6 * opt.Keys * entry
		if cfg.LogBytes < 16<<20 {
			cfg.LogBytes = 16 << 20
		}
		cfg.ArenaBytes = cfg.LogBytes + 64*opt.Keys + (256 << 20)
		return pmemhash.Open(cfg)
	case DramHash:
		cfg := dramhash.DefaultConfig()
		// Few stripes: the paper's Dram-Hash is one robin-hood map, whose
		// whole-table rehashes produce the multi-second worst-case put
		// (Table 2). More stripes would dilute the spike.
		cfg.Stripes = 16
		cfg.InitialCapacity = 1024
		entry := int64(40 + opt.ValueSize)
		cfg.LogBytes = 6 * opt.Keys * entry
		if cfg.LogBytes < 16<<20 {
			cfg.LogBytes = 16 << 20
		}
		cfg.ArenaBytes = cfg.LogBytes + (64 << 20)
		return dramhash.Open(cfg)
	}
	return nil, fmt.Errorf("bench: unknown store kind %d", kind)
}

// attachMetrics appends the store's registry snapshot to the report when the
// store exposes one (ChameleonDB and every baseline with generic counters).
func attachMetrics(rep *Report, s kvstore.Store) {
	if p, ok := s.(obs.Provider); ok {
		if r := p.Registry(); r != nil {
			rep.Metrics = append(rep.Metrics, r.Snapshot())
		}
	}
}

// setConcurrency positions the store's device on its contention curve.
func setConcurrency(s kvstore.Store, threads int) {
	if d, ok := s.(interface{ Device() *device.Device }); ok {
		d.Device().SetConcurrency(threads)
	}
}

// mops formats ops/durationNs as millions of operations per second.
func mops(ops int64, durNs int64) string {
	if durNs <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", float64(ops)/float64(durNs)*1000)
}

func mopsVal(ops int64, durNs int64) float64 {
	if durNs <= 0 {
		return 0
	}
	return float64(ops) / float64(durNs) * 1000
}

// gbps formats bytes/durationNs as GB/s (1e9 bytes per second).
func gbps(bytes, durNs int64) string {
	if durNs <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", float64(bytes)/float64(durNs))
}

// cdfSummary renders a latency CDF as the fixed-fraction series the paper's
// CDF figures plot.
func cdfSummary(h *histogram.Histogram) []string {
	fracs := []float64{10, 25, 50, 75, 90, 99}
	out := make([]string, len(fracs))
	for i, q := range fracs {
		out[i] = fmt.Sprintf("%d", h.Percentile(q))
	}
	return out
}

var cdfColumns = []string{"p10(ns)", "p25(ns)", "p50(ns)", "p75(ns)", "p90(ns)", "p99(ns)"}

// Experiment is a registered regenerator for one paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) ([]*Report, error)
}

var registry []Experiment

func register(id, title string, run func(Options) ([]*Report, error)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// Experiments lists the registered experiments sorted by ID.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
