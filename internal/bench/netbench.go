package bench

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"chameleondb/internal/core"
	"chameleondb/internal/histogram"
	"chameleondb/internal/resp"
	"chameleondb/internal/server"
	"chameleondb/internal/simclock"
	"chameleondb/internal/wlog"
	"chameleondb/internal/ycsb"
)

func init() {
	register("netbench", "Wire-level RESP throughput and latency over loopback (connections x pipeline depth)", runNetBench)
}

// The netbench sweep: client connections crossed with pipeline depth. Depth 1
// is the request-response client every latency-sensitive app runs; depth 16
// is what a batching proxy achieves. The spread between the two columns is
// the value of pipelining, and the spread across connection counts is how
// well one server process multiplexes sessions.
var (
	NetBenchConns  = []int{1, 8, 32}
	NetBenchDepths = []int{1, 16}
)

const netBenchSetFrac = 10 // 1-in-10 ops is a SET (YCSB-B-shaped mix)

// runNetBench drives a real chameleon server over loopback TCP with the RESP
// client and measures wire-level throughput and batch round-trip latency.
// Unlike every virtual-time experiment in this package, the columns here are
// wall-clock: syscalls, TCP, RESP framing, the group-commit wait — the full
// serving stack the paper's evaluation leaves out.
func runNetBench(opt Options) ([]*Report, error) {
	opt = opt.withDefaults()
	cfg := chameleonConfig(opt.Keys, opt.ValueSize)
	// Every connection's session owns a log appender that claims a private
	// segment, and a released appender's partial segment is not refilled —
	// so the sweep needs a segment per connection it will ever create, not
	// just per concurrent connection.
	totalConns := 0
	for _, c := range NetBenchConns {
		totalConns += c * len(NetBenchDepths)
	}
	headroom := int64(totalConns+8) * wlog.DefaultSegmentSize
	cfg.LogBytes += headroom
	cfg.ArenaBytes += headroom
	s, err := core.Open(cfg)
	if err != nil {
		return nil, err
	}
	defer s.Close()

	// Preload the keyspace in-process: the wire phase reads only existing
	// keys, so every GET miss is a correctness bug, not workload noise.
	loader := s.NewSession(simclock.New(0))
	val := make([]byte, opt.ValueSize)
	for i := int64(0); i < opt.Keys; i++ {
		if err := loader.Put(ycsb.Key(i), val); err != nil {
			return nil, err
		}
	}
	if err := releaseSession(loader); err != nil {
		return nil, err
	}

	srv := server.New(s, server.Config{Addr: "127.0.0.1:0"})
	if err := srv.Listen(); err != nil {
		return nil, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-serveErr
	}()
	addr := srv.Addr().String()

	rep := &Report{
		ID:      "netbench",
		Title:   "RESP over loopback: throughput and batch RTT vs connections x pipeline depth",
		Columns: []string{"conns", "depth", "wall_ms", "kops", "rtt_p50_us", "rtt_p99_us", "rtt_p999_us"},
		Notes: []string{
			fmt.Sprintf("keys=%d ops/cell=%d value=%dB mix=%d%%GET/%d%%SET GOMAXPROCS=%d",
				opt.Keys, opt.Ops, opt.ValueSize, 100-100/netBenchSetFrac, 100/netBenchSetFrac, runtime.GOMAXPROCS(0)),
			"rtt is one pipelined window send->last reply, client-side wall clock;",
			"SET acks are durable (group commit), so depth-1 rtt includes the commit wait",
		},
	}
	for _, conns := range NetBenchConns {
		for _, depth := range NetBenchDepths {
			row, err := netBenchCell(addr, opt, conns, depth)
			if err != nil {
				return nil, err
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	attachMetrics(rep, s) // server metrics live in the store's registry
	return []*Report{rep}, nil
}

// netBenchCell runs one (connections, depth) cell: opt.Ops total operations
// split across conns clients, each sending pipelined windows of depth
// commands and reading the replies back in order.
func netBenchCell(addr string, opt Options, conns, depth int) ([]string, error) {
	var (
		wg     sync.WaitGroup
		rtt    histogram.Histogram
		misses atomic.Int64
		firstE atomic.Value
	)
	per := opt.Ops / int64(conns)
	if per == 0 {
		per = 1
	}
	val := make([]byte, opt.ValueSize)
	start := time.Now()
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := resp.Dial(addr, 5*time.Second)
			if err != nil {
				firstE.CompareAndSwap(nil, err)
				return
			}
			defer c.Close()
			c.SetDeadline(time.Now().Add(10 * time.Minute))
			rng := rand.New(rand.NewSource(opt.Seed + int64(w)*7919 + int64(depth)))
			isGet := make([]bool, depth)
			for done := int64(0); done < per; {
				n := depth
				if rem := per - done; int64(n) > rem {
					n = int(rem)
				}
				t0 := time.Now()
				for i := 0; i < n; i++ {
					key := ycsb.Key(rng.Int63n(opt.Keys))
					if rng.Intn(netBenchSetFrac) == 0 {
						c.Send([]byte("SET"), key, val)
						isGet[i] = false
					} else {
						c.Send([]byte("GET"), key)
						isGet[i] = true
					}
				}
				if err := c.Flush(); err != nil {
					firstE.CompareAndSwap(nil, err)
					return
				}
				for i := 0; i < n; i++ {
					rp, err := c.Receive()
					if err != nil {
						firstE.CompareAndSwap(nil, err)
						return
					}
					if rp.Type == resp.TypeError {
						firstE.CompareAndSwap(nil, fmt.Errorf("netbench: server error: %s", rp.Text()))
						return
					}
					if isGet[i] && rp.Null {
						misses.Add(1)
					}
				}
				rtt.Record(time.Since(t0).Nanoseconds())
				done += int64(n)
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	if e := firstE.Load(); e != nil {
		return nil, e.(error)
	}
	if m := misses.Load(); m > 0 {
		return nil, fmt.Errorf("netbench: %d GET misses on a fully loaded keyspace (conns=%d depth=%d)", m, conns, depth)
	}
	ops := per * int64(conns)
	return []string{
		fmt.Sprintf("%d", conns),
		fmt.Sprintf("%d", depth),
		fmt.Sprintf("%d", wall.Milliseconds()),
		fmt.Sprintf("%.1f", float64(ops)/float64(wall.Nanoseconds())*1e6),
		fmt.Sprintf("%.1f", float64(rtt.Percentile(50))/1e3),
		fmt.Sprintf("%.1f", float64(rtt.Percentile(99))/1e3),
		fmt.Sprintf("%.1f", float64(rtt.Percentile(99.9))/1e3),
	}, nil
}
