package bench

import (
	"fmt"
	"math/rand"
	"runtime"

	"chameleondb/internal/baselines/matrixkv"
	"chameleondb/internal/baselines/novelsm"
	"chameleondb/internal/core"
	"chameleondb/internal/device"
	"chameleondb/internal/kvstore"
	"chameleondb/internal/simclock"
	"chameleondb/internal/ycsb"
)

func init() {
	register("fig17", "ChameleonDB vs NoveLSM vs MatrixKV: throughput, media traffic, bandwidth by value size", runFig17)
}

// fig17Store opens one of the three contenders on its own device, sized for
// the experiment.
func fig17Store(name string, totalBytes int64, valueSize int) (kvstore.Store, *device.Device, error) {
	dev := device.New(device.OptanePmem)
	arena := 8*totalBytes + (512 << 20)
	switch name {
	case "ChameleonDB":
		keys := totalBytes / int64(valueSize+16)
		cfg := chameleonConfig(keys, valueSize)
		cfg.LogBytes = 4*totalBytes + (64 << 20)
		cfg.ArenaBytes = cfg.LogBytes + 24*keys*16 + (128 << 20)
		s, err := core.OpenOn(cfg, dev)
		return s, dev, err
	case "NoveLSM":
		cfg := novelsm.DefaultConfig()
		// Scale the memtable with the dataset so the leveled hierarchy
		// cascades as deeply as at paper scale (64 GB through 128 MB
		// memtables ~ 512 memtable generations).
		cfg.MemTableBytes = totalBytes / 128
		if cfg.MemTableBytes < 64<<10 {
			cfg.MemTableBytes = 64 << 10
		}
		cfg.L0Trigger = 4
		cfg.Ratio = 4
		cfg.MaxLevels = 5
		cfg.ArenaBytes = arena
		// The paper grants an 8 GB data cache against 64 GB written: 1/8.
		cfg.CacheBytes = totalBytes / 8
		s, err := novelsm.OpenOn(cfg, dev)
		return s, dev, err
	case "MatrixKV":
		cfg := matrixkv.DefaultConfig()
		cfg.MemTableBytes = totalBytes / 128
		if cfg.MemTableBytes < 64<<10 {
			cfg.MemTableBytes = 64 << 10
		}
		cfg.MaxRows = 4
		cfg.Ratio = 4
		cfg.MaxLevels = 4
		cfg.ArenaBytes = arena
		cfg.CacheBytes = totalBytes / 8 // the paper's 8 GB / 64 GB ratio
		cfg.WALBytes = 2*totalBytes + (64 << 20)
		s, err := matrixkv.OpenOn(cfg, dev)
		return s, dev, err
	}
	return nil, nil, fmt.Errorf("bench: unknown fig17 store %s", name)
}

// runFig17 reproduces Figure 17 (Section 3.7): write a fixed volume of data
// with varying value sizes, then read a fixed volume back, on ChameleonDB,
// NoveLSM, and MatrixKV — all levels in the Pmem, one worker (the paper runs
// a single compaction thread for fairness with NoveLSM). Reported per store
// and value size: put throughput, media bytes written (the ipmwatch numbers
// of 17(b)), write bandwidth, get throughput, media bytes read, read
// bandwidth. Shapes: ChameleonDB ahead on puts by 1-2 orders of magnitude
// (NoveLSM and MatrixKV rewrite values in every compaction and NoveLSM
// persists its memtable with small RMW writes); media written 8-15x
// ChameleonDB's; gets ahead similarly (hash probe vs multi-run search).
func runFig17(opt Options) ([]*Report, error) {
	opt = opt.withDefaults()
	// The paper writes 64 GB and reads 16 GB; default laptop scale is
	// keys*valueSize-derived (~64 MB written per value size).
	totalWrite := opt.Keys / 16 * 1024
	if totalWrite < 16<<20 {
		totalWrite = 16 << 20
	}
	totalRead := totalWrite / 4
	valueSizes := []int{64, 256, 1024, 4096, 16384, 65536}
	stores := []string{"ChameleonDB", "NoveLSM", "MatrixKV"}

	putTput := &Report{ID: "fig17a", Title: "Put throughput (Kops/s) by value size", Columns: []string{"store"}}
	mediaW := &Report{ID: "fig17b", Title: "Media bytes written per user byte (ipmwatch write amplification)", Columns: []string{"store"}}
	wbw := &Report{ID: "fig17c", Title: "Write bandwidth to Pmem (GB/s)", Columns: []string{"store"}}
	getTput := &Report{ID: "fig17d", Title: "Get throughput (Kops/s) by value size", Columns: []string{"store"}}
	mediaR := &Report{ID: "fig17e", Title: "Media bytes read per get", Columns: []string{"store"}}
	rbw := &Report{ID: "fig17f", Title: "Read bandwidth from Pmem (GB/s)", Columns: []string{"store"}}
	all := []*Report{putTput, mediaW, wbw, getTput, mediaR, rbw}
	for _, r := range all {
		for _, vs := range valueSizes {
			r.Columns = append(r.Columns, fmt.Sprintf("%dB", vs))
		}
	}

	rows := map[string]map[*Report][]string{}
	for _, name := range stores {
		rows[name] = map[*Report][]string{}
		for _, r := range all {
			rows[name][r] = []string{name}
		}
		for _, vs := range valueSizes {
			s, dev, err := fig17Store(name, totalWrite, vs)
			if err != nil {
				return nil, err
			}
			keys := totalWrite / int64(vs+16)
			if keys < 100 {
				keys = 100
			}
			// Put phase: single worker, as in the paper's one-compaction-
			// thread setup.
			se := s.NewSession(simclock.New(0))
			val := make([]byte, vs)
			for i := int64(0); i < keys; i++ {
				if err := se.Put(ycsb.Key(i), val); err != nil {
					return nil, fmt.Errorf("%s vs=%d put %d: %w", name, vs, i, err)
				}
			}
			if err := se.Flush(); err != nil {
				return nil, err
			}
			putDur := se.Clock().Now()
			st := dev.Stats()
			user := keys * int64(vs+8)
			rows[name][putTput] = append(rows[name][putTput], fmt.Sprintf("%.1f", float64(keys)/float64(putDur)*1e6))
			rows[name][mediaW] = append(rows[name][mediaW], fmt.Sprintf("%.2f", float64(st.MediaBytesWritten)/float64(user)))
			rows[name][wbw] = append(rows[name][wbw], gbps(st.MediaBytesWritten, putDur))

			// Get phase: random reads of a fixed volume.
			gets := totalRead / int64(vs+16)
			if gets < 100 {
				gets = 100
			}
			rng := rand.New(rand.NewSource(opt.Seed))
			gc := simclock.New(putDur)
			ge := s.NewSession(gc)
			r0 := dev.Stats().MediaBytesRead
			g0 := gc.Now()
			for i := int64(0); i < gets; i++ {
				key := ycsb.Key(rng.Int63n(keys))
				if _, ok, err := s2err(ge.Get(key)); err != nil {
					return nil, fmt.Errorf("%s vs=%d get: %w", name, vs, err)
				} else if !ok {
					return nil, fmt.Errorf("%s vs=%d: key missing", name, vs)
				}
			}
			getDur := gc.Now() - g0
			readBytes := dev.Stats().MediaBytesRead - r0
			rows[name][getTput] = append(rows[name][getTput], fmt.Sprintf("%.1f", float64(gets)/float64(getDur)*1e6))
			rows[name][mediaR] = append(rows[name][mediaR], fmt.Sprintf("%d", readBytes/gets))
			rows[name][rbw] = append(rows[name][rbw], gbps(readBytes, getDur))
			s.Close()
			runtime.GC()
		}
	}
	for _, r := range all {
		for _, name := range stores {
			r.Rows = append(r.Rows, rows[name][r])
		}
	}
	putTput.Notes = []string{"paper: ChameleonDB up to 44x NoveLSM, 19x MatrixKV on puts; 29x/17x on gets"}
	return all, nil
}

func s2err(v []byte, ok bool, err error) ([]byte, bool, error) { return v, ok, err }
