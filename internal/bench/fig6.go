package bench

import (
	"fmt"
	"math/rand"
	"runtime"

	"chameleondb/internal/histogram"
	"chameleondb/internal/kvstore"
	"chameleondb/internal/ycsb"
)

func init() {
	register("fig6", "Get latency breakdown by resolving structure (MemTable/ABI/dumped/upper/last/miss)", runFig6)
}

// latencySourced is implemented by stores that keep per-source get-latency
// histograms (ChameleonDB and the Pmem-LSM variants built on the core engine).
type latencySourced interface {
	GetLatencyBySource() map[string]*histogram.Histogram
	PutLatency() *histogram.Histogram
}

// fig6SourceOrder is the structure probe order of Figure 6: the fastest
// structures are consulted first, so rows read top-to-bottom as the get path.
var fig6SourceOrder = []string{"memtable", "abi", "dumped", "upper", "last", "miss"}

// runFig6 reproduces the Figure 6 breakdown from the live store: after a load
// and a mixed measured phase (gets over the loaded keyspace with a slice of
// updates and deliberate misses), every get's latency has been recorded into
// the histogram of the structure that resolved it. The rows show where gets
// land and what each structure costs — ChameleonDB resolves almost everything
// in the ABI or last level, while Pmem-LSM-NF walks the persisted levels.
func runFig6(opt Options) ([]*Report, error) {
	opt = opt.withDefaults()
	var reports []*Report
	for _, kind := range []StoreKind{Chameleon, PmemLSMNF} {
		s, err := OpenStore(kind, opt)
		if err != nil {
			return nil, err
		}
		ls, ok := s.(latencySourced)
		if !ok {
			s.Close()
			return nil, fmt.Errorf("bench: %s does not expose per-source latency histograms", kind)
		}
		loadDur, err := loadMeasured(s, opt, opt.Threads, nil)
		if err != nil {
			return nil, fmt.Errorf("%s load: %w", kind, err)
		}
		// Reset the per-source histograms after the load so the breakdown
		// reflects the measured phase only. Resetting is safe here: the load
		// workers have all retired.
		for _, h := range ls.GetLatencyBySource() {
			h.Reset()
		}
		if _, err := fig6Phase(s, opt, loadDur); err != nil {
			return nil, fmt.Errorf("%s measured phase: %w", kind, err)
		}
		rep := &Report{
			ID:      "fig6",
			Title:   fmt.Sprintf("%s get latency by resolving structure (measured phase)", kind),
			Columns: []string{"source", "gets", "share(%)", "mean(ns)", "p50(ns)", "p99(ns)", "p99.9(ns)"},
			Notes: []string{
				"expect: ChameleonDB resolves gets in the ABI/last level at flat latency;",
				"Pmem-LSM-NF spreads gets across upper levels with a long last-level tail",
			},
		}
		bySource := ls.GetLatencyBySource()
		var total int64
		for _, src := range fig6SourceOrder {
			if h := bySource[src]; h != nil {
				total += h.Count()
			}
		}
		for _, src := range fig6SourceOrder {
			h := bySource[src]
			if h == nil || h.Count() == 0 {
				continue
			}
			n := h.Count()
			mean := float64(h.Sum()) / float64(n)
			rep.Rows = append(rep.Rows, []string{
				src,
				fmt.Sprintf("%d", n),
				fmt.Sprintf("%.1f", 100*float64(n)/float64(total)),
				fmt.Sprintf("%.0f", mean),
				fmt.Sprintf("%d", h.Percentile(50)),
				fmt.Sprintf("%d", h.Percentile(99)),
				fmt.Sprintf("%d", h.Percentile(99.9)),
			})
		}
		attachMetrics(rep, s)
		reports = append(reports, rep)
		s.Close()
		runtime.GC()
	}
	return reports, nil
}

// fig6Phase drives the measured mix: 80% gets of loaded keys, 10% updates
// (keeping the MemTables and ABI populated so the fast sources appear in the
// breakdown), 10% gets of absent keys (populating the miss row).
func fig6Phase(s kvstore.Store, opt Options, start int64) (int64, error) {
	setConcurrency(s, opt.Threads)
	per := opt.Ops / int64(opt.Threads)
	val := make([]byte, opt.ValueSize)
	g, err := workers(s, opt.Threads, start, func(w int, se kvstore.Session) stepper {
		rng := rand.New(rand.NewSource(opt.Seed + int64(w)*104729))
		return countingStepper(per, func(i int64) error {
			switch r := rng.Intn(10); {
			case r == 0:
				return se.Put(ycsb.Key(rng.Int63n(opt.Keys)), val)
			case r == 1:
				// A key beyond the loaded range: a guaranteed miss.
				_, ok, err := se.Get(ycsb.Key(opt.Keys + rng.Int63n(opt.Keys)))
				if err != nil {
					return err
				}
				if ok {
					return fmt.Errorf("bench: unloaded key unexpectedly present")
				}
				return nil
			default:
				key := ycsb.Key(rng.Int63n(opt.Keys))
				if _, _, err := se.Get(key); err != nil {
					return err
				}
				return nil
			}
		})
	})
	if err != nil {
		return 0, err
	}
	return g.Makespan() - start, nil
}
