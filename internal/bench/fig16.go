package bench

import (
	"fmt"
	"math/rand"
	"sort"

	"chameleondb/internal/core"
	"chameleondb/internal/kvstore"
	"chameleondb/internal/ycsb"
)

func init() {
	register("fig16", "Tail get latency under put bursts, with and without Get-Protect Mode", runFig16)
	register("gpmdumps", "Ablation: Get-Protect Mode dump budget sweep", runGPMDumps)
}

// sample is one completed get.
type sample struct {
	at  int64 // completion virtual time
	lat int64
}

// burstRun drives the Figure 16 workload on a pre-loaded store: two cycles
// of a get-only phase followed by a phase where half the workers issue a put
// burst while the rest keep reading. It returns the get samples and the
// total virtual span.
func burstRun(s kvstore.Store, opt Options, burstPuts int64) ([]sample, int64, error) {
	setConcurrency(s, opt.Threads)
	loadDur, err := loadMeasured(s, opt, opt.Threads, nil)
	if err != nil {
		return nil, 0, err
	}
	var samples []sample
	frontier := loadDur
	getters := opt.Threads / 2
	putters := opt.Threads - getters
	quietGets := opt.Ops / 4

	runPhase := func(puts int64, gets int64) error {
		g, err := workers(s, opt.Threads, frontier, func(w int, se kvstore.Session) stepper {
			c := se.Clock()
			rng := rand.New(rand.NewSource(opt.Seed + int64(w)*101 + frontier))
			if w < putters && puts > 0 {
				gen := ycsb.NewGenerator(ycsb.Load, opt.Keys, w, putters, opt.Seed+frontier)
				val := make([]byte, opt.ValueSize)
				return countingStepper(puts/int64(putters), func(i int64) error {
					return se.Put(gen.Next().Key, val)
				})
			}
			n := gets / int64(getters)
			return countingStepper(n, func(i int64) error {
				key := ycsb.Key(rng.Int63n(opt.Keys))
				t0 := c.Now()
				if _, _, err := se.Get(key); err != nil {
					return err
				}
				samples = append(samples, sample{at: c.Now(), lat: c.Now() - t0})
				return nil
			})
		})
		if err != nil {
			return err
		}
		frontier += g.Makespan()
		return nil
	}
	for cycle := 0; cycle < 2; cycle++ {
		if err := runPhase(0, quietGets); err != nil {
			return nil, 0, err
		}
		if err := runPhase(burstPuts, quietGets); err != nil {
			return nil, 0, err
		}
	}
	// Cool-down phase: postponed compactions drain (the paper's recovery
	// tail after the burst subsides).
	if err := runPhase(0, quietGets); err != nil {
		return nil, 0, err
	}
	return samples, frontier - loadDur, nil
}

// windowedP99 buckets samples into n windows over the span and returns the
// per-window P99.
func windowedP99(samples []sample, span int64, n int) []int64 {
	if span <= 0 || len(samples) == 0 {
		return nil
	}
	start := samples[0].at
	buckets := make([][]int64, n)
	for _, s := range samples {
		i := int((s.at - start) * int64(n) / (span + 1))
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		buckets[i] = append(buckets[i], s.lat)
	}
	out := make([]int64, n)
	for i, b := range buckets {
		if len(b) == 0 {
			continue
		}
		sort.Slice(b, func(x, y int) bool { return b[x] < b[y] })
		out[i] = b[(len(b)*99)/100]
	}
	return out
}

func runFig16(opt Options) ([]*Report, error) {
	opt = opt.withDefaults()
	// The paper's burst (100M puts, 1.6 GB of index entries) fits inside
	// its 8 GB ABI plus one dump; size ours to the scaled ABI capacity the
	// same way so Get-Protect Mode faces the burst the paper designed it
	// for rather than a proportionally larger one.
	burst, err := fig16Burst(opt)
	if err != nil {
		return nil, err
	}
	const windows = 20

	type variant struct {
		name string
		open func() (kvstore.Store, error)
	}
	variants := []variant{
		{"Pmem-Hash", func() (kvstore.Store, error) { return OpenStore(PmemHash, opt) }},
		{"ChameleonDB", func() (kvstore.Store, error) { return OpenStore(Chameleon, opt) }},
		{"ChameleonDB+GPM", func() (kvstore.Store, error) {
			cfg := chameleonConfig(opt.Keys, opt.ValueSize)
			cfg.GetProtect = core.GPMConfig{
				Enabled:          true,
				EnterThresholdNs: 2000, // the paper's Figure 16 threshold
				ExitThresholdNs:  2000,
				MaxDumps:         1,
				WindowSize:       2048,
				SampleEvery:      4,
			}
			return core.Open(cfg)
		}},
	}

	rep := &Report{
		ID:      "fig16",
		Title:   "Windowed P99 get latency (ns) through get-only, put-burst, get-only, put-burst, cool-down phases",
		Columns: []string{"store"},
		Notes: []string{
			"expect: Pmem-Hash spikes highest during bursts; ChameleonDB spikes less;",
			"GPM caps the spike (paper: 2900 -> 2200 ns) at the cost of a short recovery tail",
		},
	}
	for i := 0; i < windows; i++ {
		rep.Columns = append(rep.Columns, fmt.Sprintf("w%d", i+1))
	}
	rep.Columns = append(rep.Columns, "peak")
	var gpmStats string
	for _, v := range variants {
		s, err := v.open()
		if err != nil {
			return nil, err
		}
		samples, span, err := burstRun(s, opt, burst)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		p99 := windowedP99(samples, span, windows)
		row := []string{v.name}
		peak := int64(0)
		for _, p := range p99 {
			row = append(row, fmt.Sprintf("%d", p))
			if p > peak {
				peak = p
			}
		}
		row = append(row, fmt.Sprintf("%d", peak))
		rep.Rows = append(rep.Rows, row)
		if cs, ok := s.(*core.Store); ok && cs.Config().GetProtect.Enabled {
			st := cs.Stats()
			gpmStats = fmt.Sprintf("GPM engaged %d times, exited %d, ABI dumps %d", st.GPMEntries, st.GPMExits, st.Dumps)
		}
		s.Close()
	}
	if gpmStats != "" {
		rep.Notes = append(rep.Notes, gpmStats)
	}
	return []*Report{rep}, nil
}

// fig16Burst sizes the put burst to the scaled ABI capacity, mirroring the
// paper's proportions (its 100M-put burst's 1.6 GB of index entries fit the
// 8 GB ABI plus one dump).
func fig16Burst(opt Options) (int64, error) {
	cfg := chameleonConfig(opt.Keys, opt.ValueSize)
	if err := core.ValidateConfig(&cfg); err != nil {
		return 0, err
	}
	burst := int64(cfg.Shards) * int64(cfg.ABISlots) / 2
	if burst > opt.Ops {
		burst = opt.Ops
	}
	return burst, nil
}

// runGPMDumps sweeps the Get-Protect dump budget (the paper fixes it at 1).
func runGPMDumps(opt Options) ([]*Report, error) {
	opt = opt.withDefaults()
	rep := &Report{
		ID:      "gpmdumps",
		Title:   "GPM dump budget sweep: burst-phase peak P99 and dumps taken",
		Columns: []string{"maxDumps", "peak-p99(ns)", "dumps", "last-compactions"},
	}
	for _, dumps := range []int{1, 2, 4} {
		cfg := chameleonConfig(opt.Keys, opt.ValueSize)
		cfg.GetProtect = core.GPMConfig{
			Enabled:          true,
			EnterThresholdNs: 2000,
			ExitThresholdNs:  2000,
			MaxDumps:         dumps,
			WindowSize:       2048,
			SampleEvery:      4,
		}
		s, err := core.Open(cfg)
		if err != nil {
			return nil, err
		}
		burst, err := fig16Burst(opt)
		if err != nil {
			return nil, err
		}
		samples, span, err := burstRun(s, opt, burst)
		if err != nil {
			return nil, err
		}
		peak := int64(0)
		for _, p := range windowedP99(samples, span, 20) {
			if p > peak {
				peak = p
			}
		}
		st := s.Stats()
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", dumps), fmt.Sprintf("%d", peak),
			fmt.Sprintf("%d", st.Dumps), fmt.Sprintf("%d", st.LastCompactions),
		})
		s.Close()
	}
	return []*Report{rep}, nil
}
