package bench

import (
	"fmt"

	"chameleondb/internal/kvstore"
	"chameleondb/internal/simclock"
	"chameleondb/internal/ycsb"
)

func init() {
	register("scan", "Snapshot scan cost vs point gets (virtual time, batch amortization)", runScan)
}

// ScanBatchSizes is the COUNT sweep driven by the scan experiment and the CI
// regression gate.
var ScanBatchSizes = []int{10, 100, 1000}

// runScan measures the merging iterator against the point-get path on the
// deterministic virtual clock. The store is loaded, flushed and dumped so the
// keyspace spans MemTable, ABI and dumped tables, then an overlay of fresh
// puts and deletes forces the scan to merge tiers and suppress tombstones.
//
// Each one-shot Scan call captures a lazy snapshot, so small COUNTs re-pay
// the capture cost on every page while large COUNTs amortize it across many
// keys. The gate metric is that amortization factor — virtual ns/key at the
// smallest COUNT over ns/key at the largest. It is a ratio of deterministic
// virtual-time measurements, so the checked-in BENCH_scanpath.json holds
// across machines; a >10% drop means batching stopped amortizing (e.g. the
// iterator re-captures per key or leaks per-page work into the page body).
func runScan(opt Options) ([]*Report, error) {
	opt = opt.withDefaults()
	s, err := OpenStore(Chameleon, opt)
	if err != nil {
		return nil, err
	}
	defer s.Close()

	c := simclock.New(0)
	loader := s.NewSession(c)
	val := make([]byte, opt.ValueSize)
	for i := int64(0); i < opt.Keys; i++ {
		if err := loader.Put(ycsb.Key(i), val); err != nil {
			return nil, err
		}
	}
	// Push the load into the persisted tiers, then write an overlay so the
	// scan exercises the full merge: fresh versions in the MemTable above
	// flushed slots, plus tombstones that must suppress dumped versions.
	if f, ok := s.(interface{ FlushAll(*simclock.Clock) error }); ok {
		if err := f.FlushAll(c); err != nil {
			return nil, err
		}
	}
	if d, ok := s.(interface{ DumpABIs(*simclock.Clock) error }); ok {
		if err := d.DumpABIs(c); err != nil {
			return nil, err
		}
	}
	var deleted int64
	for i := int64(0); i < opt.Keys; i++ {
		switch {
		case i%16 == 0:
			if err := loader.Delete(ycsb.Key(i)); err != nil {
				return nil, err
			}
			deleted++
		case i%8 == 0:
			if err := loader.Put(ycsb.Key(i), val); err != nil {
				return nil, err
			}
		}
	}
	if err := releaseSession(loader); err != nil {
		return nil, err
	}
	live := opt.Keys - deleted

	rep := &Report{
		ID:      "scan",
		Title:   "Merging-iterator scan cost vs point gets (virtual time)",
		Columns: []string{"phase", "batch", "keys", "virt_ns_per_key", "amort"},
		Notes: []string{
			fmt.Sprintf("keys=%d live=%d value=%dB; store flushed+dumped with a Mem overlay", opt.Keys, live, opt.ValueSize),
			"amort = ns/key at the smallest COUNT / ns/key at this COUNT;",
			"CI gates on the final row's amort (virtual time, portable across machines)",
		},
	}

	// Point-get baseline on the same store state.
	getClock := simclock.New(0)
	getter := s.NewSession(getClock)
	gets := opt.Ops
	if gets > 4*opt.Keys {
		gets = 4 * opt.Keys
	}
	start := getClock.Now()
	for i := int64(0); i < gets; i++ {
		k := (i * 7919) % opt.Keys
		if _, _, err := getter.Get(ycsb.Key(k)); err != nil {
			return nil, err
		}
	}
	nsPerGet := float64(getClock.Now()-start) / float64(gets)
	if err := releaseSession(getter); err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, []string{"get", "-", fmt.Sprintf("%d", gets), fmt.Sprintf("%.0f", nsPerGet), "-"})

	var smallest float64
	for _, batch := range ScanBatchSizes {
		clock := simclock.New(0)
		se := s.NewSession(clock)
		sc, ok := se.(kvstore.Scanner)
		if !ok {
			return nil, fmt.Errorf("scan: store session does not implement kvstore.Scanner")
		}
		var (
			cursor uint64
			total  int64
		)
		begin := clock.Now()
		for {
			kvs, next, err := sc.Scan(cursor, batch)
			if err != nil {
				return nil, err
			}
			total += int64(len(kvs))
			if next == 0 {
				break
			}
			cursor = next
		}
		span := clock.Now() - begin
		if err := releaseSession(se); err != nil {
			return nil, err
		}
		if total != live {
			return nil, fmt.Errorf("scan: COUNT=%d returned %d keys, want %d live (lost survivor or resurrected tombstone)", batch, total, live)
		}
		nsPerKey := float64(span) / float64(total)
		if smallest == 0 {
			smallest = nsPerKey
		}
		amort := smallest / nsPerKey
		rep.Rows = append(rep.Rows, []string{
			"scan",
			fmt.Sprintf("%d", batch),
			fmt.Sprintf("%d", total),
			fmt.Sprintf("%.0f", nsPerKey),
			fmt.Sprintf("%.2f", amort),
		})
	}
	attachMetrics(rep, s)
	return []*Report{rep}, nil
}

// ScanAmortization extracts the batch size and amortization factor of the
// final scan row — the numbers the CI regression gate compares against the
// checked-in baseline.
func ScanAmortization(rep *Report) (batch int, amort float64, err error) {
	if rep.ID != "scan" || len(rep.Rows) == 0 {
		return 0, 0, fmt.Errorf("bench: not a scan report")
	}
	last := rep.Rows[len(rep.Rows)-1]
	if len(last) < 5 || last[0] != "scan" {
		return 0, 0, fmt.Errorf("bench: malformed scan row %v", last)
	}
	if _, err := fmt.Sscanf(last[1], "%d", &batch); err != nil {
		return 0, 0, err
	}
	if _, err := fmt.Sscanf(last[4], "%f", &amort); err != nil {
		return 0, 0, err
	}
	return batch, amort, nil
}
