package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"chameleondb/internal/kvstore"
	"chameleondb/internal/simclock"
	"chameleondb/internal/ycsb"
)

func init() {
	register("readscale", "Wall-clock get scaling across real reader goroutines (lock-free read path)", runReadScale)
}

// ReadScaleWorkerCounts is the sweep driven by the readscale experiment and
// by the CI regression gate.
var ReadScaleWorkerCounts = []int{1, 2, 4, 8}

// runReadScale measures how get throughput scales with real concurrent
// readers. Every other experiment in this package runs on the deterministic
// virtual-time scheduler, which by construction cannot observe lock
// contention — here each worker is a real goroutine with its own session, and
// the columns are wall-clock. Before the read path went lock-free, every Get
// serialized on its shard mutex and the curve flattened immediately; with
// epoch-published views plus the seqlock MemTable the speedup column should
// track the worker count until the machine runs out of cores.
//
// The checked-in BENCH_readpath.json is this experiment's output; CI re-runs
// it and fails if the top-end speedup regresses by more than 10% (the
// speedup *ratio* is compared, not absolute wall time, so the gate is
// portable across machines).
func runReadScale(opt Options) ([]*Report, error) {
	opt = opt.withDefaults()
	s, err := OpenStore(Chameleon, opt)
	if err != nil {
		return nil, err
	}
	defer s.Close()

	// Load the keyspace through one session; the measured phase reads only
	// existing keys, so every miss is a correctness bug, not workload noise.
	loader := s.NewSession(simclock.New(0))
	val := make([]byte, opt.ValueSize)
	for i := int64(0); i < opt.Keys; i++ {
		if err := loader.Put(ycsb.Key(i), val); err != nil {
			return nil, err
		}
	}
	if err := releaseSession(loader); err != nil {
		return nil, err
	}

	rep := &Report{
		ID:      "readscale",
		Title:   "Wall-clock get throughput vs concurrent readers (real goroutines)",
		Columns: []string{"workers", "wall_ms", "mops", "speedup"},
		Notes: []string{
			fmt.Sprintf("keys=%d ops=%d value=%dB GOMAXPROCS=%d", opt.Keys, opt.Ops, opt.ValueSize, runtime.GOMAXPROCS(0)),
			"speedup is wall(1 worker)/wall(n workers) at constant total ops;",
			"CI gates on the final row's speedup, not on absolute wall time",
		},
	}

	var base time.Duration
	for _, n := range ReadScaleWorkerCounts {
		if n > opt.Threads {
			break
		}
		wall, misses, err := readScaleRound(s, opt, n)
		if err != nil {
			return nil, err
		}
		if misses > 0 {
			return nil, fmt.Errorf("readscale: %d misses on a fully loaded keyspace at %d workers", misses, n)
		}
		if n == 1 {
			base = wall
		}
		speedup := float64(base) / float64(wall)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", wall.Milliseconds()),
			fmt.Sprintf("%.2f", float64(opt.Ops)/float64(wall.Nanoseconds())*1000),
			fmt.Sprintf("%.2f", speedup),
		})
	}
	attachMetrics(rep, s)
	return []*Report{rep}, nil
}

// readScaleRound times opt.Ops gets split across n reader goroutines and
// returns the wall-clock span plus the number of unexpected misses.
func readScaleRound(s kvstore.Store, opt Options, n int) (time.Duration, int64, error) {
	var (
		wg     sync.WaitGroup
		misses atomic.Int64
		firstE atomic.Value
	)
	per := opt.Ops / int64(n)
	start := time.Now()
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			se := s.NewSession(simclock.New(0))
			defer releaseSession(se)
			rng := rand.New(rand.NewSource(opt.Seed + int64(w)*7919))
			for i := int64(0); i < per; i++ {
				_, ok, err := se.Get(ycsb.Key(rng.Int63n(opt.Keys)))
				if err != nil {
					firstE.CompareAndSwap(nil, err)
					return
				}
				if !ok {
					misses.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	if e := firstE.Load(); e != nil {
		return 0, 0, e.(error)
	}
	return wall, misses.Load(), nil
}

// releaseSession drains a session's log reservation when the implementation
// exposes one (core sessions do; the baselines' are no-ops).
func releaseSession(se kvstore.Session) error {
	if r, ok := se.(interface{ Release() error }); ok {
		return r.Release()
	}
	return nil
}

// ReadScaleSpeedup extracts the top-end speedup from a readscale report —
// the number the CI regression gate compares against the checked-in
// baseline.
func ReadScaleSpeedup(rep *Report) (workers int, speedup float64, err error) {
	if rep.ID != "readscale" || len(rep.Rows) == 0 {
		return 0, 0, fmt.Errorf("bench: not a readscale report")
	}
	last := rep.Rows[len(rep.Rows)-1]
	if len(last) < 4 {
		return 0, 0, fmt.Errorf("bench: malformed readscale row %v", last)
	}
	if _, err := fmt.Sscanf(last[0], "%d", &workers); err != nil {
		return 0, 0, err
	}
	if _, err := fmt.Sscanf(last[3], "%f", &speedup); err != nil {
		return 0, 0, err
	}
	return workers, speedup, nil
}
